(** Time-stepping driver with amortized preconditioner setup.

    The workload the handle/update API (ISSUE 10) exists for: a sequence
    of systems [A(t_k) x_k = b_k] whose sparsity pattern is fixed while
    the values drift — here a 2-D convection–diffusion operator whose
    y-velocity carries a compact perturbation window sweeping through
    the grid rows.  Each step is solved by IDR(s) through one live
    {!Vblu_precond.Block_jacobi} or {!Vblu_precond.Block_ilu0} handle;
    the {!refresh} policy decides {e when} the factors are refreshed and
    the {!mode} decides {e how much} is refactored — [Partial tol]
    refactors only the dirty blocks, [Partial 0.] being bit-identical to
    a full refresh at a fraction of the modelled setup transactions.

    Everything is deterministic: the drift schedule, the right-hand
    sides, the [On_stall] trigger (driven by recorded iteration counts)
    and all modelled setup costs reproduce bitwise across runs, domain
    counts and storage layouts. *)

open Vblu_sparse

type family = Jacobi | Ilu0

val family_name : family -> string
val family_of_string : string -> (family, string) result

(** When to refresh the preconditioner (step 0 always builds fresh):

    - {!Every_step}: refresh before every solve — the baseline;
    - [Every_k k]: refresh when [step mod k = 0];
    - [On_stall g]: refresh when the previous step's iteration count
      exceeded the count recorded at the last refresh by more than
      [iters_growth] — deterministic, since it reads only recorded
      solver statistics. *)
type refresh = Every_step | Every_k of int | On_stall of { iters_growth : int }

val refresh_name : refresh -> string

val refresh_of_string : string -> (refresh, string) result
(** Accepts ["every-step"], ["every:K"], ["on-stall"] (growth 8) and
    ["on-stall:G"]. *)

(** How much to refactor on a refresh: [Full] forces every block,
    [Partial tol] lets dirty-block tracking refactor only blocks whose
    entries moved by more than [tol]. *)
type mode = Full | Partial of float

val mode_name : mode -> string

val matrix :
  ?nx:int -> ?ny:int -> ?peclet:float -> ?drift:float -> step:int -> unit ->
  Csr.t
(** The drifting operator at a given step.  Same stencil and insertion
    order as {!Generators.convection_diffusion_2d}, so every step shares
    one sparsity pattern; [drift] (default [0.05]) scales the velocity
    perturbation inside a moving window of [max 1 (ny/8)] grid rows
    ([drift = 0.] makes every step bitwise identical). *)

val rhs : n:int -> step:int -> float array
(** Deterministic step-dependent right-hand side. *)

type step_stat = {
  step : int;
  refreshed : bool;  (** a build or policy-driven refresh ran. *)
  dirty : int;  (** blocks refactored by this step's refresh. *)
  reused : int;  (** blocks whose factors were reused bitwise. *)
  launches : int;  (** batched kernel launches issued by the refresh. *)
  setup_transactions : int;
      (** modelled 32-byte transactions of those launches. *)
  setup_modelled_seconds : float;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

type result = {
  steps : step_stat array;
  refreshes : int;  (** setups run, counting the step-0 build. *)
  guard_refreshes : int;
      (** full rebuilds forced by the solver's soft-error guard. *)
  total_launches : int;
  total_setup_transactions : int;
  total_setup_modelled_seconds : float;
  total_iterations : int;
  final_residual : float;
  solution_checksum : float;
      (** sum of |x_k|₁ over all steps — the cross-configuration
          equality witness. *)
  elapsed_seconds : float;
}

val run :
  ?pool:Vblu_par.Pool.t ->
  ?nx:int ->
  ?ny:int ->
  ?peclet:float ->
  ?drift:float ->
  ?steps:int ->
  ?family:family ->
  ?refresh:refresh ->
  ?mode:mode ->
  ?max_block_size:int ->
  ?layout:Vblu_core.Batch.layout ->
  ?config:Vblu_krylov.Solver.config ->
  ?obs:Vblu_obs.Ctx.t ->
  unit ->
  result
(** [run ()] steps the workload.  Defaults: a 24×24 grid at Péclet 10
    with [drift = 0.05], 20 steps, the [Jacobi] family, [Every_step]
    refresh, [Partial 0.] mode, [max_block_size = 16].  [?obs] threads
    the context through the handle and the solves and records
    [timestep.steps] / [timestep.iterations].
    @raise Invalid_argument on [steps < 1] or a degenerate grid. *)
