open Vblu_sparse
open Vblu_precond
open Vblu_krylov
module Ctx = Vblu_obs.Ctx

type family = Jacobi | Ilu0

let family_name = function Jacobi -> "jacobi" | Ilu0 -> "ilu0"

let family_of_string = function
  | "jacobi" -> Ok Jacobi
  | "ilu0" -> Ok Ilu0
  | s -> Error (Printf.sprintf "unknown timestep family %S" s)

type refresh = Every_step | Every_k of int | On_stall of { iters_growth : int }

let refresh_name = function
  | Every_step -> "every-step"
  | Every_k k -> Printf.sprintf "every:%d" k
  | On_stall { iters_growth } -> Printf.sprintf "on-stall:%d" iters_growth

let refresh_of_string s =
  match String.split_on_char ':' s with
  | [ "every-step" ] -> Ok Every_step
  | [ "every"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Every_k k)
    | _ -> Error (Printf.sprintf "bad refresh period %S" s))
  | [ "on-stall" ] -> Ok (On_stall { iters_growth = 8 })
  | [ "on-stall"; g ] -> (
    match int_of_string_opt g with
    | Some g when g >= 0 -> Ok (On_stall { iters_growth = g })
    | _ -> Error (Printf.sprintf "bad stall growth %S" s))
  | _ ->
    Error
      (Printf.sprintf
         "unknown refresh policy %S (every-step | every:K | on-stall[:G])" s)

type mode = Full | Partial of float

let mode_name = function
  | Full -> "full"
  | Partial tol -> Printf.sprintf "partial:%g" tol

(* The drifting operator: the 2-D upwind convection–diffusion stencil of
   [Generators.convection_diffusion_2d] whose y-velocity carries a
   compact bump sweeping through the grid rows — at step [t] the rows
   with [y] inside a moving window see a perturbed [cy], everything else
   reproduces the base coefficients bitwise.  The insertion order (hence
   the CSR pattern) never depends on the values, so every step shares
   one sparsity pattern and the dirty set is the window's block rows
   only.  [drift = 0.] makes every step bitwise identical. *)
let matrix ?(nx = 24) ?(ny = 24) ?(peclet = 10.0) ?(drift = 0.05) ~step () =
  let n = nx * ny in
  let h = 1.0 /. float_of_int (nx + 1) in
  let cx = peclet *. h in
  let cy0 = peclet *. h /. 2.0 in
  let w = max 1 (ny / 8) in
  let span = max 1 (ny - w + 1) in
  let y0 = 3 * step mod span in
  let wiggle = drift *. (1.0 +. (0.25 *. float_of_int (step * 37 mod 16))) in
  let cy y = if y >= y0 && y < y0 + w then cy0 *. (1.0 +. wiggle) else cy0 in
  let idx x y = x + (y * nx) in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  for y = 0 to ny - 1 do
    let cy = cy y in
    for x = 0 to nx - 1 do
      let i = idx x y in
      Coo.add coo i i (4.0 +. cx +. cy);
      if x > 0 then Coo.add coo i (idx (x - 1) y) (-1.0 -. cx);
      if x < nx - 1 then Coo.add coo i (idx (x + 1) y) (-1.0);
      if y > 0 then Coo.add coo i (idx x (y - 1)) (-1.0 -. cy);
      if y < ny - 1 then Coo.add coo i (idx x (y + 1)) (-1.0)
    done
  done;
  Coo.to_csr coo

(* Step-dependent right-hand side, shared by every refresh policy so
   end-to-end comparisons solve the same sequence of systems. *)
let rhs ~n ~step =
  Array.init n (fun i -> 1.0 +. (0.125 *. float_of_int ((i + step) mod 7)))

type step_stat = {
  step : int;
  refreshed : bool;
  dirty : int;
  reused : int;
  launches : int;
  setup_transactions : int;
  setup_modelled_seconds : float;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

type result = {
  steps : step_stat array;
  refreshes : int;
  guard_refreshes : int;
  total_launches : int;
  total_setup_transactions : int;
  total_setup_modelled_seconds : float;
  total_iterations : int;
  final_residual : float;
  solution_checksum : float;
  elapsed_seconds : float;
}

type handle_kind = Hj of Block_jacobi.handle | Hi of Block_ilu0.handle

let run ?pool ?(nx = 24) ?(ny = 24) ?(peclet = 10.0) ?(drift = 0.05)
    ?(steps = 20) ?(family = Jacobi) ?(refresh = Every_step)
    ?(mode = Partial 0.0) ?(max_block_size = 16)
    ?(layout = Vblu_core.Batch.Blocked) ?config ?obs () =
  if steps < 1 then invalid_arg "Timestep.run: steps < 1";
  let n = nx * ny in
  let t0 = Sys.time () in
  let a0 = matrix ~nx ~ny ~peclet ~drift ~step:0 () in
  let h =
    match family with
    | Jacobi ->
      Hj (Block_jacobi.handle ?pool ~layout ~max_block_size ?obs a0)
    | Ilu0 -> Hi (Block_ilu0.handle ?pool ~layout ~max_block_size ?obs a0)
  in
  let precond =
    match h with Hj h -> Block_jacobi.precond h | Hi h -> Block_ilu0.precond h
  in
  let build_stats =
    match h with Hj h -> Block_jacobi.last_update h | Hi h -> Block_ilu0.last_update h
  in
  let update a =
    let tol, force_all =
      match mode with Full -> (0.0, true) | Partial tol -> (tol, false)
    in
    match h with
    | Hj h -> Block_jacobi.update ~tol ~force_all h a
    | Hi h -> Block_ilu0.update ~tol ~force_all h a
  in
  (* The guard rebuild is always a full refresh on the current operator:
     a tripped solve should restart from factors as fresh as possible. *)
  let guard_refreshes = ref 0 in
  let refresh_precond a () =
    incr guard_refreshes;
    (match h with
    | Hj h -> ignore (Block_jacobi.update ~force_all:true h a)
    | Hi h -> ignore (Block_ilu0.update ~force_all:true h a));
    precond
  in
  let stats = Array.make steps None in
  let refreshes = ref 0 in
  let iters_at_refresh = ref 0 in
  let last_iters = ref 0 in
  let checksum = ref 0.0 in
  let final_residual = ref 0.0 in
  for step = 0 to steps - 1 do
    let a = if step = 0 then a0 else matrix ~nx ~ny ~peclet ~drift ~step () in
    let do_refresh =
      step > 0
      &&
      match refresh with
      | Every_step -> true
      | Every_k k -> step mod k = 0
      | On_stall { iters_growth } ->
        !last_iters > !iters_at_refresh + iters_growth
    in
    let ustats =
      if step = 0 then Some build_stats
      else if do_refresh then begin
        incr refreshes;
        Some (update a)
      end
      else None
    in
    let b = rhs ~n ~step in
    let x, st =
      Idr.solve ?config ~precond ~refresh_precond:(refresh_precond a) ?obs a b
    in
    if step = 0 || do_refresh then iters_at_refresh := st.Solver.iterations;
    last_iters := st.Solver.iterations;
    Array.iter (fun v -> checksum := !checksum +. Float.abs v) x;
    final_residual := st.Solver.residual_norm;
    Ctx.incr obs "timestep.steps" 1.0;
    Ctx.observe obs "timestep.iterations" (float_of_int st.Solver.iterations);
    let dirty, reused, launches, tx, ms =
      match ustats with
      | None -> (0, 0, 0, 0, 0.0)
      | Some u ->
        ( u.Block_jacobi.refactored,
          u.Block_jacobi.reused,
          u.Block_jacobi.launches,
          u.Block_jacobi.setup_transactions,
          u.Block_jacobi.modelled_seconds )
    in
    stats.(step) <-
      Some
        {
          step;
          refreshed = (step = 0 || do_refresh);
          dirty;
          reused;
          launches;
          setup_transactions = tx;
          setup_modelled_seconds = ms;
          iterations = st.Solver.iterations;
          residual_norm = st.Solver.residual_norm;
          converged = Solver.converged st;
        }
  done;
  let steps_arr = Array.map Option.get stats in
  {
    steps = steps_arr;
    refreshes = !refreshes + 1 (* the build counts *);
    guard_refreshes = !guard_refreshes;
    total_launches =
      Array.fold_left (fun acc s -> acc + s.launches) 0 steps_arr;
    total_setup_transactions =
      Array.fold_left (fun acc s -> acc + s.setup_transactions) 0 steps_arr;
    total_setup_modelled_seconds =
      Array.fold_left
        (fun acc s -> acc +. s.setup_modelled_seconds)
        0.0 steps_arr;
    total_iterations =
      Array.fold_left (fun acc s -> acc + s.iterations) 0 steps_arr;
    final_residual = !final_residual;
    solution_checksum = !checksum;
    elapsed_seconds = Sys.time () -. t0;
  }
