type symmetry = General | Symmetric | Skew
type field = Real | Pattern

exception Parse_error of { line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; msg } ->
      Some (Printf.sprintf "Mm_io.Parse_error (line %d: %s)" line msg)
    | _ -> None)

let fail ~line msg = raise (Parse_error { line; msg })

let parse_header ~line l =
  match String.split_on_char ' ' (String.lowercase_ascii (String.trim l)) with
  | "%%matrixmarket" :: "matrix" :: fmt :: field :: sym :: _ ->
    if fmt <> "coordinate" then
      fail ~line ("only coordinate format is supported, got " ^ fmt);
    let field =
      match field with
      | "real" | "integer" -> Real
      | "pattern" -> Pattern
      | other -> fail ~line ("unsupported field " ^ other)
    in
    let sym =
      match sym with
      | "general" -> General
      | "symmetric" -> Symmetric
      | "skew-symmetric" -> Skew
      | other -> fail ~line ("unsupported symmetry " ^ other)
    in
    (field, sym)
  | _ -> fail ~line "missing %%MatrixMarket header"

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let int_tok ~line ~what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail ~line (Printf.sprintf "%s is not an integer: %S" what s)

let float_tok ~line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail ~line (Printf.sprintf "entry value is not a number: %S" s)

let read_lines next_line =
  (* [lineno] tracks the last line handed out, so every error carries the
     1-based source line it came from. *)
  let lineno = ref 0 in
  let next () =
    match next_line () with
    | None -> None
    | Some l ->
      incr lineno;
      Some l
  in
  let header =
    match next () with Some l -> l | None -> fail ~line:0 "empty input"
  in
  let field, sym = parse_header ~line:!lineno header in
  let rec skip_comments () =
    match next () with
    | None -> fail ~line:!lineno "missing size line"
    | Some l ->
      let l = String.trim l in
      if l = "" || l.[0] = '%' then skip_comments () else l
  in
  let size_line = skip_comments () in
  let n_rows, n_cols, count =
    let line = !lineno in
    match tokens size_line with
    | [ r; c; z ] ->
      ( int_tok ~line ~what:"row count" r,
        int_tok ~line ~what:"column count" c,
        int_tok ~line ~what:"entry count" z )
    | toks ->
      fail ~line
        (Printf.sprintf "size line needs 3 fields (rows cols nnz), got %d"
           (List.length toks))
  in
  if n_rows < 0 || n_cols < 0 || count < 0 then
    fail ~line:!lineno "size line fields must be non-negative";
  let coo = Coo.create ~n_rows ~n_cols in
  let check_bounds ~line i j =
    if i < 1 || i > n_rows then
      fail ~line (Printf.sprintf "row index %d outside 1..%d" i n_rows);
    if j < 1 || j > n_cols then
      fail ~line (Printf.sprintf "column index %d outside 1..%d" j n_cols)
  in
  let parse_entry ~line l =
    match (tokens l, field) with
    | [ i; j ], Pattern ->
      ( int_tok ~line ~what:"row index" i,
        int_tok ~line ~what:"column index" j,
        1.0 )
    | [ i; j; v ], (Real | Pattern) ->
      ( int_tok ~line ~what:"row index" i,
        int_tok ~line ~what:"column index" j,
        float_tok ~line v )
    | _ -> fail ~line ("malformed entry line: " ^ l)
  in
  let seen = ref 0 in
  let rec loop () =
    match next () with
    | None -> ()
    | Some l ->
      let line = !lineno in
      let l = String.trim l in
      if l <> "" && l.[0] <> '%' then begin
        let i, j, v = parse_entry ~line l in
        check_bounds ~line i j;
        let i = i - 1 and j = j - 1 in
        incr seen;
        if !seen > count then
          fail ~line
            (Printf.sprintf "more than the %d announced entries" count);
        (match sym with
        | General -> Coo.add coo i j v
        | Symmetric ->
          Coo.add coo i j v;
          if i <> j then Coo.add coo j i v
        | Skew ->
          Coo.add coo i j v;
          if i <> j then Coo.add coo j i (-.v))
      end;
      loop ()
  in
  loop ();
  if !seen <> count then
    fail ~line:!lineno
      (Printf.sprintf "header announced %d entries, found %d" count !seen);
  Coo.to_csr coo

let read path =
  let ic = open_in path in
  let next_line () = In_channel.input_line ic in
  match read_lines next_line with
  | csr ->
    close_in ic;
    csr
  | exception e ->
    close_in ic;
    raise e

let read_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let next_line () =
    match !lines with
    | [] -> None
    | l :: rest ->
      lines := rest;
      Some l
  in
  read_lines next_line

let read_string_opt s =
  match read_string s with
  | csr -> Ok csr
  | exception Parse_error { line; msg } -> Error (line, msg)

let write_channel oc (m : Csr.t) =
  output_string oc "%%MatrixMarket matrix coordinate real general\n";
  Printf.fprintf oc "%d %d %d\n" m.n_rows m.n_cols (Csr.nnz m);
  for i = 0 to m.n_rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Printf.fprintf oc "%d %d %.17g\n" (i + 1) (m.col_idx.(k) + 1) m.values.(k)
    done
  done

let write path m =
  let oc = open_out path in
  (try write_channel oc m
   with e ->
     close_out oc;
     raise e);
  close_out oc

let write_string m =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "%%MatrixMarket matrix coordinate real general\n";
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" m.Csr.n_rows m.Csr.n_cols (Csr.nnz m));
  for i = 0 to m.Csr.n_rows - 1 do
    for k = m.Csr.row_ptr.(i) to m.Csr.row_ptr.(i + 1) - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%d %d %.17g\n" (i + 1)
           (m.Csr.col_idx.(k) + 1)
           m.Csr.values.(k))
    done
  done;
  Buffer.contents buf
