(** Matrix Market (coordinate) I/O.

    The paper's Table I suite comes from the SuiteSparse collection, whose
    interchange format is Matrix Market.  We cannot ship those matrices in
    a sealed container, but supporting the format means a user with the
    collection on disk can run the full Table I / Figures 8–9 pipeline on
    the real inputs. *)

exception Parse_error of { line : int; msg : string }
(** Raised by {!read} / {!read_string} on malformed input.  [line] is the
    1-based source line the problem was found on (0 for empty input), and
    [msg] says what was wrong — unsupported header, non-numeric token,
    1-based index outside the announced dimensions, or an entry count that
    does not match the size line.  A printer is registered, so uncaught it
    renders as [Mm_io.Parse_error (line N: ...)]. *)

val read : string -> Csr.t
(** Reads a [coordinate real/integer/pattern] Matrix Market file, expanding
    [symmetric] and [skew-symmetric] storage to the full matrix (pattern
    entries get value 1.0).  @raise Parse_error on a malformed file or an
    unsupported header ([complex], [array]). *)

val write : string -> Csr.t -> unit
(** Writes [coordinate real general] with 1-based indices. *)

val read_string : string -> Csr.t
(** {!read} from an in-memory buffer; used by the tests.
    @raise Parse_error as {!read}. *)

val read_string_opt : string -> (Csr.t, int * string) result
(** Exception-free {!read_string}: [Error (line, msg)] instead of raising
    {!Parse_error}. *)

val write_string : Csr.t -> string
