(** Level-set scheduling of block-triangular dependency DAGs.

    A sparse triangular solve looks sequential — row [i] needs the
    solution of every row its off-diagonal entries touch — but the
    dependency structure is a DAG, and rows at the same {e depth} of that
    DAG are mutually independent [Li & Saad, "On Parallel Solution of
    Sparse Triangular Linear Systems in CUDA"].  Grouping rows (here:
    diagonal {e blocks} of a partition) by depth yields level sets; each
    level executes as one batched wave on the simulator, and the level
    count is the serial critical path the hardware cannot hide.

    This module computes the block dependency DAG of a CSR matrix under a
    given diagonal partition ([starts]/[sizes], the same shape as
    [Supervariable.blocking] — passed as raw arrays so this library stays
    below the preconditioner layer), its level schedule, and the summary
    statistics that diagnose sequential-bottleneck matrices.  A scalar
    (row-level) analysis is the uniform size-1 partition. *)

type triangle =
  | Lower  (** strictly-lower coupling: block [i] depends on blocks [k < i]
               with a structural nonzero in block position [(i, k)] — the
               forward-substitution DAG. *)
  | Upper  (** strictly-upper coupling: block [i] depends on blocks [j > i]
               — the backward-substitution DAG. *)

val triangle_name : triangle -> string
(** ["lower" | "upper"]. *)

type schedule = {
  triangle : triangle;
  starts : int array;  (** first row of each block, ascending. *)
  sizes : int array;  (** block orders; [starts]/[sizes] tile [0..n-1]. *)
  deps : int array array;
      (** [deps.(i)] = blocks that must complete before block [i]
          (ascending): the strictly-lower (resp. strictly-upper) block
          pattern of block row [i]. *)
  level_of : int array;
      (** 0-based level of each block:
          [1 + max (level_of dependencies)], [0] for independent blocks. *)
  level_sets : int array array;
      (** [level_sets.(l)] = blocks at level [l], ascending.  Execution
          order: level [0] first — for {!Upper} the member blocks have
          {e higher} indices than their dependents, matching a backward
          sweep. *)
}

type stats = {
  blocks : int;
  edges : int;  (** dependency edges = off-diagonal block-pattern entries. *)
  levels : int;  (** sequential depth: batched waves per solve. *)
  max_width : int;  (** largest level (peak batch occupancy). *)
  avg_width : float;  (** blocks / levels — mean wave occupancy. *)
  critical_path_rows : int;
      (** rows along the heaviest dependency chain (chain weight = sum of
          member block sizes) — the work that cannot be overlapped even
          with unlimited parallelism. *)
}

val schedule :
  triangle -> starts:int array -> sizes:int array -> Csr.t -> schedule
(** Build the block dependency DAG and its level schedule.
    @raise Invalid_argument if the matrix is not square or [starts]/[sizes]
    do not tile [0..n-1]. *)

val scalar : triangle -> Csr.t -> schedule
(** Row-level analysis: {!schedule} under the uniform size-1 partition. *)

val stats : schedule -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One line: blocks, edges, levels, widths, critical path. *)
