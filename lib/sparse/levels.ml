type triangle = Lower | Upper

let triangle_name = function Lower -> "lower" | Upper -> "upper"

type schedule = {
  triangle : triangle;
  starts : int array;
  sizes : int array;
  deps : int array array;
  level_of : int array;
  level_sets : int array array;
}

type stats = {
  blocks : int;
  edges : int;
  levels : int;
  max_width : int;
  avg_width : float;
  critical_path_rows : int;
}

let validate_partition ~n ~starts ~sizes =
  let k = Array.length starts in
  if Array.length sizes <> k then false
  else begin
    let ok = ref true and next = ref 0 in
    for i = 0 to k - 1 do
      if starts.(i) <> !next || sizes.(i) < 1 then ok := false;
      next := !next + sizes.(i)
    done;
    !ok && !next = n
  end

let schedule triangle ~starts ~sizes (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Levels.schedule: matrix not square";
  if not (validate_partition ~n ~starts ~sizes) then
    invalid_arg "Levels.schedule: partition does not tile the matrix";
  let k = Array.length starts in
  let row_block = Array.make n 0 in
  for i = 0 to k - 1 do
    for r = starts.(i) to starts.(i) + sizes.(i) - 1 do
      row_block.(r) <- i
    done
  done;
  (* Strict block pattern of each block row, deduplicated with a
     timestamped mark array (one pass over the nonzeros, no per-row
     allocation beyond the result). *)
  let mark = Array.make k (-1) in
  let deps =
    Array.init k (fun i ->
        let acc = ref [] in
        for r = starts.(i) to starts.(i) + sizes.(i) - 1 do
          for p = a.Csr.row_ptr.(r) to a.Csr.row_ptr.(r + 1) - 1 do
            let b = row_block.(a.Csr.col_idx.(p)) in
            let keep =
              match triangle with Lower -> b < i | Upper -> b > i
            in
            if keep && mark.(b) <> i then begin
              mark.(b) <- i;
              acc := b :: !acc
            end
          done
        done;
        let d = Array.of_list !acc in
        Array.sort compare d;
        d)
  in
  (* Longest-path levels.  Dependencies always point toward the sweep's
     earlier blocks (smaller indices for Lower, larger for Upper), so one
     pass in sweep order fixes every level. *)
  let level_of = Array.make k 0 in
  let assign i =
    let lv = ref 0 in
    Array.iter (fun d -> if level_of.(d) + 1 > !lv then lv := level_of.(d) + 1)
      deps.(i);
    level_of.(i) <- !lv
  in
  (match triangle with
  | Lower -> for i = 0 to k - 1 do assign i done
  | Upper -> for i = k - 1 downto 0 do assign i done);
  let nlevels =
    Array.fold_left (fun m l -> if l + 1 > m then l + 1 else m) 0 level_of
  in
  let widths = Array.make nlevels 0 in
  Array.iter (fun l -> widths.(l) <- widths.(l) + 1) level_of;
  let fill = Array.make nlevels 0 in
  let level_sets = Array.map (fun w -> Array.make w 0) widths in
  (* Ascending block order within each level. *)
  for i = 0 to k - 1 do
    let l = level_of.(i) in
    level_sets.(l).(fill.(l)) <- i;
    fill.(l) <- fill.(l) + 1
  done;
  { triangle; starts; sizes; deps; level_of; level_sets }

let scalar triangle (a : Csr.t) =
  let n, _ = Csr.dims a in
  schedule triangle ~starts:(Array.init n Fun.id) ~sizes:(Array.make n 1) a

let stats s =
  let k = Array.length s.starts in
  let edges = Array.fold_left (fun acc d -> acc + Array.length d) 0 s.deps in
  let levels = Array.length s.level_sets in
  let max_width =
    Array.fold_left (fun m ls -> max m (Array.length ls)) 0 s.level_sets
  in
  let avg_width =
    if levels = 0 then 0.0 else float_of_int k /. float_of_int levels
  in
  (* Heaviest chain by rows: cp(i) = sizes(i) + max cp(deps) — dependencies
     are already resolved in sweep order, so one sweep-order pass again. *)
  let cp = Array.make k 0 in
  let weigh i =
    let best = ref 0 in
    Array.iter (fun d -> if cp.(d) > !best then best := cp.(d)) s.deps.(i);
    cp.(i) <- s.sizes.(i) + !best
  in
  (match s.triangle with
  | Lower -> for i = 0 to k - 1 do weigh i done
  | Upper -> for i = k - 1 downto 0 do weigh i done);
  let critical_path_rows = Array.fold_left max 0 cp in
  { blocks = k; edges; levels; max_width; avg_width; critical_path_rows }

let pp_stats ppf st =
  Format.fprintf ppf
    "%d blocks, %d edges, %d levels (max width %d, avg %.1f), critical path \
     %d rows"
    st.blocks st.edges st.levels st.max_width st.avg_width
    st.critical_path_rows
