(** Dense matrices in column-major (Fortran/LAPACK) storage.

    These represent the small diagonal blocks the paper factorizes
    (typically 4×4 … 32×32) as well as the small auxiliary matrices of the
    IDR(s) solver.  Storage is column-major because the paper's memory
    access analysis (coalesced column loads, one row per GPU thread) is
    phrased for that layout, and the simulated kernels replicate it. *)

type t = private {
  rows : int;
  cols : int;
  a : float array;  (** element (i,j) at [a.(i + j*rows)]. *)
}

val create : int -> int -> t
(** [create m n] is the [m]×[n] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init m n f] fills element (i,j) with [f i j]. *)

val identity : int -> t

val of_rows : float array array -> t
(** Builds a matrix from an array of rows (each a [float array] of equal
    length).  @raise Invalid_argument if the rows are ragged or empty. *)

val to_rows : t -> float array array

val copy : t -> t

val dims : t -> int * int

val get : t -> int -> int -> float
(** Bounds-checked element access. *)

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
val unsafe_set : t -> int -> int -> float -> unit

val col : t -> int -> float array
(** [col a j] is a fresh copy of column [j]. *)

val row : t -> int -> float array

val transpose : t -> t

val scale : ?prec:Precision.t -> float -> t -> t

val add : ?prec:Precision.t -> t -> t -> t
val sub : ?prec:Precision.t -> t -> t -> t

val matmul : ?prec:Precision.t -> t -> t -> t
(** Dense product; dimensions must agree. *)

val gemv : ?prec:Precision.t -> ?trans:bool -> t -> Vector.t -> Vector.t
(** [gemv a x] is [a * x]; with [~trans:true], [aᵀ * x]. *)

val gemv_into : ?prec:Precision.t -> t -> Vector.t -> Vector.t -> unit
(** [gemv_into a x y] overwrites [y] with [a * x] — the allocation-free
    [gemv], bitwise identical to it (same accumulation order). *)

val gemm_col_view :
  ?prec:Precision.t ->
  ?stride:int ->
  alpha:float ->
  beta:float ->
  ?c:float array ->
  a:float array ->
  b:float array ->
  dst:float array ->
  off:int ->
  n:int ->
  unit ->
  unit
(** Batch-view GEMM for the direct-execution fast path:
    [dst ← alpha·A·B (+ beta·C when ?c is given)] over column-major
    [n]×[n] blocks all stored at element offset [off] of their respective
    batch value arrays, every element [stride] apart (default 1; the
    cohort width for interleaved storage).  [beta] is ignored without
    [?c].  Bitwise identical to the batched GEMM warp kernel (same
    rounded-FMA accumulation order). *)

val permute_rows : t -> int array -> t
(** [permute_rows a perm] builds the matrix whose row [k] is row
    [perm.(k)] of [a] — the explicit application of the permutation matrix
    [P] of partial pivoting ([PA]).  @raise Invalid_argument if [perm] is
    not a permutation of [0..rows-1]. *)

val random : ?state:Random.State.t -> ?lo:float -> ?hi:float -> int -> int -> t

val random_diagdom : ?state:Random.State.t -> int -> t
(** A random strictly row-diagonally-dominant matrix of order [n]:
    guaranteed nonsingular, LU-factorizable without pivoting breakdown,
    and well conditioned — the standard workload for batched-kernel
    benchmarks. *)

val random_general : ?state:Random.State.t -> int -> t
(** A random dense matrix with entries in [\[-1,1)] but a guaranteed
    nonzero pivot structure (resampled until the explicit-pivot LU
    succeeds); exercises non-trivial pivoting paths. *)

val norm_frobenius : t -> float
val norm_inf : t -> float
(** Maximum absolute row sum. *)

val max_abs : t -> float

val max_abs_diff : t -> t -> float
(** Infinity distance between same-shaped matrices; handy in tests. *)

val is_lower_unit : ?tol:float -> t -> bool
(** True when the strict upper triangle is ≤ [tol] in magnitude and the
    diagonal is within [tol] of 1. *)

val is_upper : ?tol:float -> t -> bool

val pp : Format.formatter -> t -> unit
