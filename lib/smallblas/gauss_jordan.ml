(* Gauss-Jordan on the augmented system [A | I]: reduce the left half to
   the identity with partial pivoting; the right half becomes A⁻¹.  The
   batched kernel version works in place, but the augmented formulation is
   the clearest correct reference, and only the reference is used for
   numerics. *)

let invert_status ?(prec = Precision.Double) m =
  let rows, cols = Matrix.dims m in
  if rows <> cols then invalid_arg "Gauss_jordan.invert: matrix not square";
  let n = rows in
  let w = Array.make (n * 2 * n) 0.0 in
  let get i j = w.((j * n) + i) in
  let set i j v = w.((j * n) + i) <- v in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      set i j (Matrix.unsafe_get m i j);
      set i (n + j) (if i = j then 1.0 else 0.0)
    done
  done;
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let piv = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs (get i k) > Float.abs (get !piv k) then piv := i
       done;
       let d = get !piv k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       if !piv <> k then
         for j = 0 to (2 * n) - 1 do
           let tmp = get k j in
           set k j (get !piv j);
           set !piv j tmp
         done;
       for j = 0 to (2 * n) - 1 do
         set k j (Precision.div prec (get k j) d)
       done;
       for i = 0 to n - 1 do
         if i <> k then begin
           let l = get i k in
           if l <> 0.0 then
             for j = 0 to (2 * n) - 1 do
               set i j (Precision.fma prec (-.l) (get k j) (get i j))
             done
         end
       done
     done
   with Exit -> ());
  (* On breakdown at step k the reduction freezes: columns 0..k-1 of the
     left half are already identity and the right half holds the partial
     transform — returned as-is, flagged by info = k + 1. *)
  (Matrix.init n n (fun i j -> get i (n + j)), !info)

let invert ?prec m =
  let inv, info = invert_status ?prec m in
  if info <> 0 then raise (Error.Singular (info - 1));
  inv

let solve ?(prec = Precision.Double) inv b = Matrix.gemv ~prec inv b
