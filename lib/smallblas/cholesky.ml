exception Not_positive_definite of int

type factors = { l : Matrix.t }

let factor_status ?(prec = Precision.Double) m =
  let rows, cols = Matrix.dims m in
  if rows <> cols then invalid_arg "Cholesky.factor: matrix not square";
  let n = rows in
  (* Work on a lower-triangular copy; the strict upper part is ignored. *)
  let w = Matrix.init n n (fun i j -> if i >= j then Matrix.unsafe_get m i j else 0.0) in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let d = Matrix.unsafe_get w k k in
       if not (d > 0.0) then begin
         (* Non-positive (or NaN) diagonal: the matrix is not positive
            definite.  Freeze after steps 0..k-1, flag info = k + 1. *)
         info := k + 1;
         raise Exit
       end;
       let dk = Precision.round prec (sqrt d) in
       Matrix.unsafe_set w k k dk;
       for i = k + 1 to n - 1 do
         Matrix.unsafe_set w i k (Precision.div prec (Matrix.unsafe_get w i k) dk)
       done;
       (* Right-looking trailing update of the lower triangle. *)
       for j = k + 1 to n - 1 do
         let ljk = Matrix.unsafe_get w j k in
         if ljk <> 0.0 then
           for i = j to n - 1 do
             Matrix.unsafe_set w i j
               (Precision.fma prec
                  (-.Matrix.unsafe_get w i k)
                  ljk
                  (Matrix.unsafe_get w i j))
           done
       done
     done
   with Exit -> ());
  ({ l = w }, !info)

let factor ?prec m =
  let f, info = factor_status ?prec m in
  if info <> 0 then raise (Not_positive_definite (info - 1));
  f

let solve ?(prec = Precision.Double) { l } b =
  let n, _ = Matrix.dims l in
  if Array.length b <> n then invalid_arg "Cholesky.solve: dimension mismatch";
  let x = Array.copy b in
  (* Forward: L y = b (non-unit diagonal, eager). *)
  for k = 0 to n - 1 do
    x.(k) <- Precision.div prec x.(k) (Matrix.unsafe_get l k k);
    let xk = x.(k) in
    for i = k + 1 to n - 1 do
      x.(i) <- Precision.fma prec (-.Matrix.unsafe_get l i k) xk x.(i)
    done
  done;
  (* Backward: Lᵀ x = y — reading columns of L as rows of Lᵀ. *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for i = k + 1 to n - 1 do
      acc := Precision.fma prec (-.Matrix.unsafe_get l i k) x.(i) !acc
    done;
    x.(k) <- Precision.div prec !acc (Matrix.unsafe_get l k k)
  done;
  x

let flops n =
  let n = float_of_int n in
  (n *. n *. n /. 3.0) +. (n *. n /. 2.0)
