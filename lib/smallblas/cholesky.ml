exception Not_positive_definite of int

type factors = { l : Matrix.t }

let factor_status ?(prec = Precision.Double) m =
  let rows, cols = Matrix.dims m in
  if rows <> cols then invalid_arg "Cholesky.factor: matrix not square";
  let n = rows in
  (* Work on a lower-triangular copy; the strict upper part is ignored. *)
  let w = Matrix.init n n (fun i j -> if i >= j then Matrix.unsafe_get m i j else 0.0) in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let d = Matrix.unsafe_get w k k in
       if not (d > 0.0) then begin
         (* Non-positive (or NaN) diagonal: the matrix is not positive
            definite.  Freeze after steps 0..k-1, flag info = k + 1. *)
         info := k + 1;
         raise Exit
       end;
       let dk = Precision.round prec (sqrt d) in
       Matrix.unsafe_set w k k dk;
       for i = k + 1 to n - 1 do
         Matrix.unsafe_set w i k (Precision.div prec (Matrix.unsafe_get w i k) dk)
       done;
       (* Right-looking trailing update of the lower triangle. *)
       for j = k + 1 to n - 1 do
         let ljk = Matrix.unsafe_get w j k in
         if ljk <> 0.0 then
           for i = j to n - 1 do
             Matrix.unsafe_set w i j
               (Precision.fma prec
                  (-.Matrix.unsafe_get w i k)
                  ljk
                  (Matrix.unsafe_get w i j))
           done
       done
     done
   with Exit -> ());
  ({ l = w }, !info)

let factor ?prec m =
  let f, info = factor_status ?prec m in
  if info <> 0 then raise (Not_positive_definite (info - 1));
  f

let solve_in_place ?(prec = Precision.Double) { l } x =
  let n, _ = Matrix.dims l in
  if Array.length x <> n then invalid_arg "Cholesky.solve: dimension mismatch";
  (* Forward: L y = b (non-unit diagonal, eager). *)
  for k = 0 to n - 1 do
    x.(k) <- Precision.div prec x.(k) (Matrix.unsafe_get l k k);
    let xk = x.(k) in
    for i = k + 1 to n - 1 do
      x.(i) <- Precision.fma prec (-.Matrix.unsafe_get l i k) xk x.(i)
    done
  done;
  (* Backward: Lᵀ x = y — reading columns of L as rows of Lᵀ. *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for i = k + 1 to n - 1 do
      acc := Precision.fma prec (-.Matrix.unsafe_get l i k) x.(i) !acc
    done;
    x.(k) <- Precision.div prec !acc (Matrix.unsafe_get l k k)
  done

let solve ?prec f b =
  let x = Array.copy b in
  solve_in_place ?prec f x;
  x

(* Batch-view factor/solve for the direct-execution fast path, over the
   column-major block layout of Vblu_core.Batch.  Both replicate the
   batched warp kernels op-for-op: the factor is right-looking on the lower
   triangle with no [ljk <> 0.0] skip (the kernel issues its FMAs
   unconditionally), the solve pairs an eager forward sweep with a DOT
   backward sweep whose products are rounded individually and folded
   left-to-right. *)

let factor_view ?(prec = Precision.Double) ?(stride = 1) ~src ~dst ~off ~n () =
  let at i j = off + (stride * (i + (j * n))) in
  for j = 0 to n - 1 do
    for i = j to n - 1 do
      dst.(at i j) <- src.(at i j)
    done
  done;
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let dkk = dst.(at k k) in
       if not (dkk > 0.0) then begin
         info := k + 1;
         raise Exit
       end;
       let lkk = Precision.round prec (sqrt dkk) in
       dst.(at k k) <- lkk;
       for i = k + 1 to n - 1 do
         dst.(at i k) <- Precision.div prec dst.(at i k) lkk
       done;
       for j = k + 1 to n - 1 do
         let ljk = dst.(at j k) in
         for i = j to n - 1 do
           dst.(at i j) <-
             Precision.fma prec (-.dst.(at i k)) ljk dst.(at i j)
         done
       done
     done
   with Exit -> ());
  !info

let solve_view ?(prec = Precision.Double) ?(mstride = 1) ?(bstride = 1) ~m
    ~moff ~n ~b ~boff () =
  let ma i j = m.(moff + (mstride * (i + (j * n)))) in
  let bat i = boff + (bstride * i) in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let d = ma k k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       b.(bat k) <- Precision.div prec b.(bat k) d;
       let bk = b.(bat k) in
       for i = k + 1 to n - 1 do
         b.(bat i) <- Precision.fma prec (-.ma i k) bk b.(bat i)
       done
     done;
     (* Backward sweep with Lᵀ: the forward sweep has already certified
        every diagonal entry nonzero, so no further check. *)
     for k = n - 1 downto 0 do
       let acc = ref 0.0 in
       for i = k + 1 to n - 1 do
         acc := Precision.add prec (Precision.mul prec (ma i k) b.(bat i)) !acc
       done;
       b.(bat k) <-
         Precision.div prec (Precision.sub prec b.(bat k) !acc) (ma k k)
     done
   with Exit -> ());
  !info

let flops n =
  let n = float_of_int n in
  (n *. n *. n /. 3.0) +. (n *. n /. 2.0)
