exception Singular of int
