(** LU factorization with partial pivoting for small dense blocks.

    Two algorithmic variants of the same factorization are provided, both
    right-looking ("eager"), mirroring Figure 1 of the paper:

    - {!factor_explicit} performs classic partial pivoting with physical
      row swaps at every step (Figure 1, top) — the reference algorithm;
    - {!factor_implicit} performs the paper's {e implicit pivoting}
      (Figure 1, bottom): no rows move during the factorization; each row
      merely remembers at which step it was chosen as pivot, and the
      combined permutation is applied once at the end, fused with the
      write-back.

    Both produce identical factors in exact arithmetic {e and} in floating
    point (the operations performed on each row are the same, in the same
    order), which the test suite verifies. *)

type factors = {
  lu : Matrix.t;
      (** The packed factors: unit lower triangle of [L] strictly below the
          diagonal, [U] on and above it, rows already in pivoted order. *)
  perm : int array;
      (** [perm.(k)] is the original row index selected as the [k]-th pivot,
          so that [(PA)(k,:) = A(perm.(k),:)] and [PA = LU]. *)
}

exception Singular of int
(** [Singular k] signals a zero (or subnormal-tiny) pivot at elimination
    step [k]: the block is numerically singular. *)

(** {2 Status-returning factorizations}

    The [_status] variants never raise on numerical breakdown.  They
    return [(factors, info)] with the LAPACK convention: [info = 0] on
    success, [info = k + 1] when the first zero pivot was met at (0-based)
    elimination step [k].  On breakdown the elimination {e freezes}: steps
    [0 .. k-1] are fully applied and nothing after, and for the implicit
    variant the still-unpivoted rows take the remaining steps in
    increasing row order so [perm] is always a total permutation.  The
    batched register kernels implement the identical rule, keeping kernel
    and reference bit-for-bit comparable even on singular blocks. *)

val factor_explicit_status : ?prec:Precision.t -> Matrix.t -> factors * int

val factor_implicit_status : ?prec:Precision.t -> Matrix.t -> factors * int

val factor_nopivot_status : ?prec:Precision.t -> Matrix.t -> factors * int

val factor_explicit : ?prec:Precision.t -> Matrix.t -> factors
(** Reference LU with explicit partial pivoting.  The input matrix is not
    modified.  @raise Singular on pivot breakdown.
    @raise Invalid_argument if the matrix is not square. *)

val factor_implicit : ?prec:Precision.t -> Matrix.t -> factors
(** The paper's implicit-pivoting LU.  Same contract and — by construction —
    same result as {!factor_explicit}. *)

val factor_nopivot : ?prec:Precision.t -> Matrix.t -> factors
(** LU without any pivoting ([perm] is the identity).  Only safe for
    matrices that are known to need no pivoting (e.g. diagonally dominant);
    used by stability ablations.  @raise Singular on a zero pivot. *)

(** {2 Batch-view variants}

    Allocation-free restatements of the [_status] factorizations over a
    column-major [n]×[n] block stored at element offset [off] of a batch
    value array — the storage layout of {!Vblu_core.Batch} — for the
    direct-execution fast path.  [stride] (default 1) is the batch's
    element stride: 1 addresses a blocked batch, the cohort width
    addresses an interleaved one (element [e] lives at
    [off + stride*e]).  Outputs are bitwise identical to the batched warp
    kernels, including the frozen partial state and [info = k + 1] on a
    breakdown at step [k]. *)

val factor_implicit_view :
  ?prec:Precision.t ->
  ?stride:int ->
  src:float array ->
  dst:float array ->
  off:int ->
  n:int ->
  tile:float array ->
  step:int array ->
  perm:int array ->
  unit ->
  int
(** Implicit-pivoting factorization of the block at [src.(off ...)], written
    to [dst.(off ...)] packed in pivot order (the fused write-back row swap
    of the batched kernel).  [tile] (length ≥ [n²]) and [step] (length ≥
    [n]) are caller-owned scratch; [perm] (length ≥ [n]) receives the
    step-to-original-row permutation.  [src] and [dst] must be distinct
    arrays.  Returns [info]. *)

val factor_nopivot_view :
  ?prec:Precision.t -> ?stride:int -> src:float array -> dst:float array ->
  off:int -> n:int -> unit -> int
(** Unpivoted factorization, eliminating in place inside [dst] after a block
    copy from [src]; no scratch needed.  Returns [info]. *)

val unpack : factors -> Matrix.t * Matrix.t
(** [(l, u)] with [l] unit lower triangular and [u] upper triangular. *)

val solve : ?prec:Precision.t -> factors -> Vector.t -> Vector.t
(** [solve f b] returns [x] with [A x = b], i.e. applies the permutation to
    [b] then performs the two triangular solves (both "eager"/AXPY variant,
    as the batched kernel does).  The input vector is not modified. *)

val solve_in_place : ?prec:Precision.t -> factors -> Vector.t -> unit
(** Same, overwriting the argument with the solution. *)

val solve_status : ?prec:Precision.t -> factors -> Vector.t -> Vector.t * int
(** Non-raising {!solve}: [(x, info)] with [info = 0] on success or
    [k + 1] for a zero diagonal of [U] at step [k] (see
    {!Trsv.solve_status}). *)

val det : factors -> float
(** Determinant of the original matrix (product of pivots times the
    permutation sign). *)

val reconstruct : factors -> Matrix.t
(** [L*U] — equals [P*A] up to roundoff; used by tests. *)
