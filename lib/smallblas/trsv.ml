type variant = Lazy | Eager

let check m b name =
  let rows, cols = Matrix.dims m in
  if rows <> cols then invalid_arg (name ^ ": matrix not square");
  if Array.length b <> rows then invalid_arg (name ^ ": dimension mismatch")

let lower_unit_in_place ?(prec = Precision.Double) ?(variant = Eager) m b =
  check m b "Trsv.lower_unit_in_place";
  let n = Array.length b in
  match variant with
  | Lazy ->
    for k = 1 to n - 1 do
      let acc = ref b.(k) in
      for j = 0 to k - 1 do
        acc := Precision.fma prec (-.Matrix.unsafe_get m k j) b.(j) !acc
      done;
      b.(k) <- !acc
    done
  | Eager ->
    for k = 0 to n - 2 do
      let bk = b.(k) in
      for i = k + 1 to n - 1 do
        b.(i) <- Precision.fma prec (-.Matrix.unsafe_get m i k) bk b.(i)
      done
    done

let upper_in_place_status ?(prec = Precision.Double) ?(variant = Eager) m b =
  check m b "Trsv.upper_in_place";
  let n = Array.length b in
  (* On a zero diagonal entry at step [k] the sweep freezes: [info] is set
     to [k + 1], no further element of [b] is written, and the partial
     state (steps [n-1 .. k+1] already applied) is left in place — the same
     state the batched kernel stores back when a warp predicates off a dead
     problem. *)
  let info = ref 0 in
  (try
     match variant with
     | Lazy ->
       for k = n - 1 downto 0 do
         let acc = ref b.(k) in
         for j = k + 1 to n - 1 do
           acc := Precision.fma prec (-.Matrix.unsafe_get m k j) b.(j) !acc
         done;
         let d = Matrix.unsafe_get m k k in
         if d = 0.0 then begin
           info := k + 1;
           raise Exit
         end;
         b.(k) <- Precision.div prec !acc d
       done
     | Eager ->
       for k = n - 1 downto 0 do
         let d = Matrix.unsafe_get m k k in
         if d = 0.0 then begin
           info := k + 1;
           raise Exit
         end;
         b.(k) <- Precision.div prec b.(k) d;
         let bk = b.(k) in
         for i = 0 to k - 1 do
           b.(i) <- Precision.fma prec (-.Matrix.unsafe_get m i k) bk b.(i)
         done
       done
   with Exit -> ());
  !info

let upper_in_place ?(prec = Precision.Double) ?(variant = Eager) m b =
  let info = upper_in_place_status ~prec ~variant m b in
  if info <> 0 then raise (Error.Singular (info - 1))

(* Batch-view solves for the direct-execution fast path: the unit-lower /
   upper pair over a column-major n-by-n factor block at [moff] and a
   solution segment at [boff], solved in place.  [mstride]/[bstride]
   (default 1) are the batches' element strides — 1 for the blocked
   layout, the cohort width for interleaved storage, where consecutive
   elements of one problem sit a stride apart.  The op schedules replicate
   the batched warp kernels exactly — the eager (AXPY) form issues one FMA
   per column element, the lazy (DOT) form a rounded product per row
   element folded left-to-right — so results are bitwise identical. *)

let pair_eager_view ?(prec = Precision.Double) ?(mstride = 1) ?(bstride = 1)
    ~m ~moff ~n ~b ~boff () =
  let ma i j = m.(moff + (mstride * (i + (j * n)))) in
  let bat i = boff + (bstride * i) in
  for k = 0 to n - 2 do
    let bk = b.(bat k) in
    for i = k + 1 to n - 1 do
      b.(bat i) <- Precision.fma prec (-.ma i k) bk b.(bat i)
    done
  done;
  let info = ref 0 in
  (try
     for k = n - 1 downto 0 do
       let d = ma k k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       b.(bat k) <- Precision.div prec b.(bat k) d;
       let bk = b.(bat k) in
       for i = 0 to k - 1 do
         b.(bat i) <- Precision.fma prec (-.ma i k) bk b.(bat i)
       done
     done
   with Exit -> ());
  !info

let pair_lazy_view ?(prec = Precision.Double) ?(mstride = 1) ?(bstride = 1)
    ~m ~moff ~n ~b ~boff () =
  let ma i j = m.(moff + (mstride * (i + (j * n)))) in
  let bat i = boff + (bstride * i) in
  for k = 1 to n - 1 do
    let acc = ref 0.0 in
    for j = 0 to k - 1 do
      acc := Precision.add prec (Precision.mul prec (ma k j) b.(bat j)) !acc
    done;
    b.(bat k) <- Precision.sub prec b.(bat k) !acc
  done;
  let info = ref 0 in
  (try
     for k = n - 1 downto 0 do
       let acc = ref 0.0 in
       for j = k + 1 to n - 1 do
         acc := Precision.add prec (Precision.mul prec (ma k j) b.(bat j)) !acc
       done;
       let diag = ma k k in
       if diag = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       b.(bat k) <- Precision.div prec (Precision.sub prec b.(bat k) !acc) diag
     done
   with Exit -> ());
  !info

let apply_perm perm b =
  if Array.length perm <> Array.length b then
    invalid_arg "Trsv.apply_perm: dimension mismatch";
  Array.map (fun k -> b.(k)) perm

let apply_perm_inv perm b =
  if Array.length perm <> Array.length b then
    invalid_arg "Trsv.apply_perm_inv: dimension mismatch";
  let out = Array.make (Array.length b) 0.0 in
  Array.iteri (fun k p -> out.(p) <- b.(k)) perm;
  out

let solve_status ?(prec = Precision.Double) ?(variant = Eager) lu perm b =
  let x = apply_perm perm b in
  lower_unit_in_place ~prec ~variant lu x;
  let info = upper_in_place_status ~prec ~variant lu x in
  (x, info)

let solve ?(prec = Precision.Double) ?(variant = Eager) lu perm b =
  let x, info = solve_status ~prec ~variant lu perm b in
  if info <> 0 then raise (Error.Singular (info - 1));
  x
