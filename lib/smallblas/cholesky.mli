(** Cholesky factorization for symmetric positive definite blocks.

    The paper's stated future work (Section V): "a Cholesky-based variant
    for symmetric positive definite problems".  For an SPD block the
    factorization [A = L·Lᵀ] needs no pivoting, half the LU flop count,
    and half the register/storage traffic — the natural upgrade for the
    block-Jacobi setup when the system is SPD. *)

exception Not_positive_definite of int
(** Raised at step [k] when the pivot [a_kk - Σ l_kj²] is not strictly
    positive: the block is not SPD (or too ill-conditioned to tell). *)

type factors = {
  l : Matrix.t;  (** lower triangular Cholesky factor (upper part zero). *)
}

val factor : ?prec:Precision.t -> Matrix.t -> factors
(** Right-looking Cholesky of a square block; only the lower triangle of
    the input is read (the upper is assumed symmetric).
    @raise Not_positive_definite on breakdown.
    @raise Invalid_argument if the matrix is not square. *)

val factor_status : ?prec:Precision.t -> Matrix.t -> factors * int
(** Non-raising {!factor} with the LAPACK [info] convention: [info = 0] on
    success, [k + 1] when the pivot at (0-based) step [k] is not strictly
    positive (the block is not SPD).  On breakdown the factor holds the
    frozen partial state — steps [0 .. k-1] applied. *)

val solve : ?prec:Precision.t -> factors -> Vector.t -> Vector.t
(** [solve f b] returns [x] with [L·Lᵀ·x = b] (forward then transposed
    backward sweep, both "eager"). *)

val solve_in_place : ?prec:Precision.t -> factors -> Vector.t -> unit
(** Allocation-free {!solve}: overwrites [b] with the solution (the hot
    path of the block-Jacobi apply). *)

(** {2 Batch-view variants}

    Allocation-free factor/solve over a column-major [n]×[n] block at an
    element offset of a batch value array — the direct-execution
    counterparts of the batched Cholesky kernels, bitwise identical to them
    including the frozen partial state and [info = k + 1] on a non-positive
    pivot (factor) or zero diagonal (solve) at step [k]. *)

val factor_view :
  ?prec:Precision.t -> ?stride:int -> src:float array -> dst:float array ->
  off:int -> n:int -> unit -> int
(** Copies the lower triangle of the block at [src.(off ...)] into [dst]
    and factors it in place; the strict upper triangle of [dst] is left
    untouched (the kernel never stores it).  [stride] (default 1) is the
    batch's element stride — the cohort width for interleaved storage.
    Returns [info]. *)

val solve_view :
  ?prec:Precision.t -> ?mstride:int -> ?bstride:int ->
  m:float array -> moff:int -> n:int -> b:float array -> boff:int ->
  unit -> int
(** Solves [L·Lᵀ·x = b] in place on the segment [b.(boff ...)] against the
    packed lower factor at [m.(moff ...)].  Returns [info]. *)

val flops : int -> float
(** Useful flops of the factorization: [n³/3 + O(n²)]. *)
