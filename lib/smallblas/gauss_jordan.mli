(** Gauss-Jordan elimination for explicit inversion of small blocks.

    The inversion-based block-Jacobi variant [Anzt et al., PMAM 2017]
    computes each diagonal block's explicit inverse during the
    preconditioner setup (at [2 n^3] flops instead of [2/3 n^3]) so that
    every preconditioner application is a dense matrix-vector product.
    This module provides the reference inversion used by that variant and
    by the factorization-vs-inversion ablation. *)

val invert : ?prec:Precision.t -> Matrix.t -> Matrix.t
(** [invert a] returns [a⁻¹], computed by Gauss-Jordan elimination with
    partial (row) pivoting.
    @raise Error.Singular on pivot breakdown.
    @raise Invalid_argument if the matrix is not square. *)

val invert_status : ?prec:Precision.t -> Matrix.t -> Matrix.t * int
(** Non-raising {!invert} with the LAPACK [info] convention: [info = 0] on
    success, [k + 1] for a zero pivot at (0-based) step [k].  On breakdown
    the returned matrix holds the frozen partial transform and must be
    discarded by the caller. *)

val solve : ?prec:Precision.t -> Matrix.t -> Vector.t -> Vector.t
(** [solve inv b] applies a precomputed inverse: [inv * b].  Provided for
    symmetry with the factorization-based solvers. *)
