(** Gauss-Huard factorization with column pivoting.

    The Gauss-Huard (GH) algorithm [Huard 1979; Dekker, Hoffmann & Potma
    1997] solves a dense linear system with the same [2/3 n^3] cost and the
    same practical stability as LU with partial pivoting, but organizes the
    elimination differently: at step [k] it {e lazily} updates row [k]
    against all previous rows, pivots by {e column} exchange, and then
    {e eagerly} annihilates the entries of column [k] {e above} the
    diagonal.  This is the algorithm behind the paper's "Gauss-Huard" and
    "Gauss-Huard-T" baselines [Anzt et al., ICCS 2017].

    The "-T" variant performs the identical factorization but writes the
    factors back transposed, trading non-coalesced writes in the (one-off)
    factorization for coalesced reads in the (per-iteration) solve; on the
    CPU reference path the two variants are numerically identical, and the
    distinction matters only to the simulated kernels. *)

type storage =
  | Normal      (** factors stored as computed (column-major). *)
  | Transposed  (** factors stored transposed — the "GH-T" layout. *)

type factors = {
  gh : Matrix.t;
      (** Packed transformed matrix: multipliers of the lazy row update in
          the strict lower triangle, pivots on the diagonal, multipliers of
          the eager column elimination in the strict upper triangle.
          Stored according to {!field-storage}. *)
  cperm : int array;
      (** [cperm.(j)] is the original column (unknown) index sitting at
          permuted position [j] after the column exchanges, so the solution
          satisfies [x.(cperm.(j)) = y.(j)]. *)
  storage : storage;
}

val factor : ?prec:Precision.t -> ?storage:storage -> Matrix.t -> factors
(** Factorize a square block.  The input is not modified.
    @raise Error.Singular on a zero pivot (structurally singular block).
    @raise Invalid_argument if the matrix is not square. *)

val factor_status :
  ?prec:Precision.t -> ?storage:storage -> Matrix.t -> factors * int
(** Non-raising {!factor} with the LAPACK [info] convention: [info = 0] on
    success, [k + 1] when the first zero pivot (after the column exchange)
    appears at (0-based) step [k].  On breakdown the elimination freezes —
    steps [0 .. k-1] applied, the partial factors returned as-is. *)

val solve : ?prec:Precision.t -> factors -> Vector.t -> Vector.t
(** [solve f b] returns [x] with [A x = b]: a forward sweep combining a DOT
    against the lower multipliers with the pivot division, interleaved with
    AXPY updates against the upper multipliers, then the inverse column
    permutation.  Cost [2 n^2] flops, like a pair of triangular solves. *)

val solve_status : ?prec:Precision.t -> factors -> Vector.t -> Vector.t * int
(** Non-raising {!solve} for possibly-degenerate factors (e.g. from a
    frozen {!factor_status}): on a zero diagonal at step [k] the sweep
    stops, [info = k + 1], and the unpermuted tail of the solution keeps
    its frozen partial values. *)

val solve_in_place : ?prec:Precision.t -> factors -> Vector.t -> unit
