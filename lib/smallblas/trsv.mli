(** Triangular solves on small dense blocks.

    Both the "lazy" (DOT-based) and "eager" (AXPY-based) algorithmic
    variants of Figure 2 of the paper are provided.  The paper's batched
    kernel uses the eager variant because its AXPY parallelizes across the
    warp without a reduction and reads the matrix one column at a time
    (coalesced in column-major storage); the lazy variant exists as the
    baseline for the corresponding ablation.

    All solvers operate on the {e packed} LU storage: the lower solvers
    read only the strict lower triangle and assume a unit diagonal, the
    upper solvers read the upper triangle including the diagonal.  They can
    therefore be applied directly to {!Lu.factors}. *)

type variant =
  | Lazy   (** row-oriented, one DOT per step (Figure 2, top). *)
  | Eager  (** column-oriented, one AXPY per step (Figure 2, bottom). *)

val lower_unit_in_place :
  ?prec:Precision.t -> ?variant:variant -> Matrix.t -> Vector.t -> unit
(** [lower_unit_in_place m b] overwrites [b] with the solution of [L y = b]
    where [L] is the unit lower triangle packed in [m].
    @raise Invalid_argument on dimension mismatch. *)

val upper_in_place :
  ?prec:Precision.t -> ?variant:variant -> Matrix.t -> Vector.t -> unit
(** [upper_in_place m b] overwrites [b] with the solution of [U x = b]
    where [U] is the upper triangle (with diagonal) packed in [m].
    @raise Error.Singular on a zero diagonal entry. *)

val upper_in_place_status :
  ?prec:Precision.t -> ?variant:variant -> Matrix.t -> Vector.t -> int
(** Non-raising variant of {!upper_in_place} with the LAPACK [info]
    convention: returns [0] on success, or [k + 1] if the sweep hit a zero
    diagonal entry at (0-based) step [k].  On breakdown the sweep freezes —
    steps [n-1 .. k+1] have been applied, [b.(k) ..] are left untouched —
    mirroring exactly the state the batched kernel writes back for a dead
    problem, so the two stay bit-for-bit comparable. *)

(** {2 Batch-view variants}

    Allocation-free solve pairs (unit lower, then upper with diagonal) over
    a column-major [n]×[n] packed factor block at element offset [moff] of
    a batch value array, updating the solution segment [b.(boff ...)] in
    place — the direct-execution counterparts of the batched TRSV kernels,
    bitwise identical to them including the frozen partial state and
    [info = k + 1] on a zero diagonal at step [k].  [mstride]/[bstride]
    (default 1) are the element strides of the factor and solution
    batches: 1 for blocked storage, the cohort width for interleaved. *)

val pair_eager_view :
  ?prec:Precision.t -> ?mstride:int -> ?bstride:int ->
  m:float array -> moff:int -> n:int -> b:float array -> boff:int ->
  unit -> int
(** Eager (AXPY) schedule: one FMA per column element, one division per
    final solution element.  Returns [info]. *)

val pair_lazy_view :
  ?prec:Precision.t -> ?mstride:int -> ?bstride:int ->
  m:float array -> moff:int -> n:int -> b:float array -> boff:int ->
  unit -> int
(** Lazy (DOT) schedule: per step a rounded lanewise product folded
    left-to-right (the kernel's register reduction order), one subtract and
    — in the upper sweep — one division.  Returns [info]. *)

val apply_perm : int array -> Vector.t -> Vector.t
(** [apply_perm perm b] is the permuted right-hand side [Pb]:
    element [k] of the result is [b.(perm.(k))] — exactly the fused
    permutation-on-load the batched TRSV kernel performs. *)

val apply_perm_inv : int array -> Vector.t -> Vector.t
(** Inverse permutation: element [perm.(k)] of the result is [b.(k)]. *)

val solve : ?prec:Precision.t -> ?variant:variant -> Matrix.t -> int array -> Vector.t -> Vector.t
(** [solve lu perm b]: permute, lower solve, upper solve — the full GETRS
    sequence on packed factors, returning a fresh solution vector.
    @raise Error.Singular on a zero diagonal entry of [U]. *)

val solve_status :
  ?prec:Precision.t -> ?variant:variant -> Matrix.t -> int array -> Vector.t -> Vector.t * int
(** Non-raising {!solve}: returns [(x, info)] with [info = 0] on success or
    [k + 1] for a zero diagonal at step [k] of the upper sweep (see
    {!upper_in_place_status} for the frozen partial state of [x]). *)
