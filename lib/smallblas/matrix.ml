type t = { rows : int; cols : int; a : float array }

let create m n =
  if m < 0 || n < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows = m; cols = n; a = Array.make (m * n) 0.0 }

let init m n f =
  let t = create m n in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      t.a.(i + (j * m)) <- f i j
    done
  done;
  t

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows rows =
  let m = Array.length rows in
  if m = 0 then invalid_arg "Matrix.of_rows: empty";
  let n = Array.length rows.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Matrix.of_rows: ragged rows")
    rows;
  init m n (fun i j -> rows.(i).(j))

let to_rows t = Array.init t.rows (fun i -> Array.init t.cols (fun j -> t.a.(i + (j * t.rows))))

let copy t = { t with a = Array.copy t.a }

let dims t = (t.rows, t.cols)

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Matrix.get: out of bounds";
  t.a.(i + (j * t.rows))

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Matrix.set: out of bounds";
  t.a.(i + (j * t.rows)) <- v

let unsafe_get t i j = Array.unsafe_get t.a (i + (j * t.rows))
let unsafe_set t i j v = Array.unsafe_set t.a (i + (j * t.rows)) v

let col t j = Array.sub t.a (j * t.rows) t.rows

let row t i = Array.init t.cols (fun j -> t.a.(i + (j * t.rows)))

let transpose t = init t.cols t.rows (fun i j -> t.a.(j + (i * t.rows)))

let scale ?(prec = Precision.Double) alpha t =
  { t with a = Array.map (fun v -> Precision.mul prec alpha v) t.a }

let same_shape op x y =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg (Printf.sprintf "Matrix.%s: shape mismatch" op)

let add ?(prec = Precision.Double) x y =
  same_shape "add" x y;
  { x with a = Array.init (Array.length x.a) (fun k -> Precision.add prec x.a.(k) y.a.(k)) }

let sub ?(prec = Precision.Double) x y =
  same_shape "sub" x y;
  { x with a = Array.init (Array.length x.a) (fun k -> Precision.sub prec x.a.(k) y.a.(k)) }

let matmul ?(prec = Precision.Double) x y =
  if x.cols <> y.rows then invalid_arg "Matrix.matmul: inner dimension mismatch";
  let z = create x.rows y.cols in
  for j = 0 to y.cols - 1 do
    for k = 0 to x.cols - 1 do
      let ykj = y.a.(k + (j * y.rows)) in
      if ykj <> 0.0 then
        for i = 0 to x.rows - 1 do
          z.a.(i + (j * z.rows)) <-
            Precision.fma prec x.a.(i + (k * x.rows)) ykj z.a.(i + (j * z.rows))
        done
    done
  done;
  z

(* Column-order FMA accumulation into a caller buffer — shared by [gemv]
   and the allocation-free [gemv_into] so both fold identically. *)
let gemv_acc ~prec t x y =
  for j = 0 to t.cols - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for i = 0 to t.rows - 1 do
        y.(i) <- Precision.fma prec t.a.(i + (j * t.rows)) xj y.(i)
      done
  done

let gemv_into ?(prec = Precision.Double) t x y =
  if Array.length x <> t.cols || Array.length y <> t.rows then
    invalid_arg "Matrix.gemv_into: dimension mismatch";
  Array.fill y 0 t.rows 0.0;
  gemv_acc ~prec t x y

let gemv ?(prec = Precision.Double) ?(trans = false) t x =
  if trans then begin
    if Array.length x <> t.rows then invalid_arg "Matrix.gemv: dimension mismatch";
    Array.init t.cols (fun j ->
        let acc = ref 0.0 in
        for i = 0 to t.rows - 1 do
          acc := Precision.fma prec t.a.(i + (j * t.rows)) x.(i) !acc
        done;
        !acc)
  end
  else begin
    if Array.length x <> t.cols then invalid_arg "Matrix.gemv: dimension mismatch";
    let y = Array.make t.rows 0.0 in
    gemv_acc ~prec t x y;
    y
  end

(* Batch-view GEMM for the direct-execution fast path: the scaled product
   [alpha·A·B (+ beta·C)] of column-major n-by-n blocks all living at the
   same element offset of their batch value arrays (the layout
   Vblu_core.Batched_gemm enforces).  Element (i,j) accumulates its k-loop
   with the same once-rounded FMA sequence the warp kernel issues per
   column, then one rounded scale and an optional rounded [beta·C] FMA —
   bitwise identical to a simulated execution. *)
let gemm_col_view ?(prec = Precision.Double) ?(stride = 1) ~alpha ~beta ?c ~a
    ~b ~dst ~off ~n () =
  let at i j = off + (stride * (i + (j * n))) in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := Precision.fma prec a.(at i k) b.(at k j) !acc
      done;
      let v = Precision.mul prec !acc alpha in
      let v =
        match c with
        | None -> v
        | Some c -> Precision.fma prec c.(at i j) beta v
      in
      dst.(at i j) <- v
    done
  done

let is_permutation perm n =
  Array.length perm = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      p >= 0 && p < n && not seen.(p)
      &&
      (seen.(p) <- true;
       true))
    perm

let permute_rows t perm =
  if not (is_permutation perm t.rows) then
    invalid_arg "Matrix.permute_rows: not a permutation";
  init t.rows t.cols (fun i j -> t.a.(perm.(i) + (j * t.rows)))

let default_state = lazy (Random.State.make [| 0x5eed; 0x3a7 |])

let random ?state ?(lo = -1.0) ?(hi = 1.0) m n =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  init m n (fun _ _ -> lo +. ((hi -. lo) *. Random.State.float st 1.0))

let random_diagdom ?state n =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  let t = random ~state:st n n in
  for i = 0 to n - 1 do
    let rowsum = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then rowsum := !rowsum +. Float.abs t.a.(i + (j * n))
    done;
    let sign = if Random.State.bool st then 1.0 else -1.0 in
    t.a.(i + (i * n)) <- sign *. (!rowsum +. 1.0 +. Random.State.float st 1.0)
  done;
  t

(* Gaussian elimination with partial pivoting used only to reject
   (near-)singular samples in [random_general]; the real factorization
   routines live in [Lu]. *)
let well_pivoted t =
  let n = t.rows in
  let w = Array.copy t.a in
  let ok = ref true in
  (try
     for k = 0 to n - 1 do
       let piv = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs w.(i + (k * n)) > Float.abs w.(!piv + (k * n)) then piv := i
       done;
       if Float.abs w.(!piv + (k * n)) < 1e-6 then begin
         ok := false;
         raise Exit
       end;
       if !piv <> k then
         for j = 0 to n - 1 do
           let tmp = w.(k + (j * n)) in
           w.(k + (j * n)) <- w.(!piv + (j * n));
           w.(!piv + (j * n)) <- tmp
         done;
       for i = k + 1 to n - 1 do
         let l = w.(i + (k * n)) /. w.(k + (k * n)) in
         for j = k + 1 to n - 1 do
           w.(i + (j * n)) <- w.(i + (j * n)) -. (l *. w.(k + (j * n)))
         done
       done
     done
   with Exit -> ());
  !ok

let random_general ?state n =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  let rec draw () =
    let t = random ~state:st n n in
    if well_pivoted t then t else draw ()
  in
  draw ()

let norm_frobenius t =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 t.a)

let norm_inf t =
  let m = ref 0.0 in
  for i = 0 to t.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to t.cols - 1 do
      s := !s +. Float.abs t.a.(i + (j * t.rows))
    done;
    m := Float.max !m !s
  done;
  !m

let max_abs t = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 t.a

let max_abs_diff x y =
  same_shape "max_abs_diff" x y;
  let m = ref 0.0 in
  for k = 0 to Array.length x.a - 1 do
    m := Float.max !m (Float.abs (x.a.(k) -. y.a.(k)))
  done;
  !m

let is_lower_unit ?(tol = 0.0) t =
  t.rows = t.cols
  &&
  let ok = ref true in
  for j = 0 to t.cols - 1 do
    for i = 0 to t.rows - 1 do
      let v = t.a.(i + (j * t.rows)) in
      if i = j then begin
        if Float.abs (v -. 1.0) > tol then ok := false
      end
      else if i < j && Float.abs v > tol then ok := false
    done
  done;
  !ok

let is_upper ?(tol = 0.0) t =
  let ok = ref true in
  for j = 0 to t.cols - 1 do
    for i = j + 1 to t.rows - 1 do
      if Float.abs t.a.(i + (j * t.rows)) > tol then ok := false
    done
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" t.a.(i + (j * t.rows))
    done;
    Format.fprintf ppf "@]";
    if i < t.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
