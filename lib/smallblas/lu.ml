type factors = { lu : Matrix.t; perm : int array }

exception Singular = Error.Singular

let check_square m name =
  let rows, cols = Matrix.dims m in
  if rows <> cols then invalid_arg (name ^ ": matrix not square");
  rows

(* All [_status] factorizations share the breakdown ("freeze") contract:
   on the first zero pivot at (0-based) step [k] the elimination stops,
   [info = k + 1] is returned, and the factors hold the partial state as
   of that step — steps [0 .. k-1] fully applied, nothing after.  The
   batched kernels implement the same rule, so kernel and reference stay
   bit-for-bit identical even on singular blocks. *)

let factor_explicit_status ?(prec = Precision.Double) m =
  let n = check_square m "Lu.factor_explicit" in
  let w = Matrix.copy m in
  let perm = Array.init n (fun i -> i) in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       (* Partial pivoting: largest magnitude in column k, rows k..n-1. *)
       let piv = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs (Matrix.unsafe_get w i k) > Float.abs (Matrix.unsafe_get w !piv k)
         then piv := i
       done;
       if !piv <> k then begin
         for j = 0 to n - 1 do
           let tmp = Matrix.unsafe_get w k j in
           Matrix.unsafe_set w k j (Matrix.unsafe_get w !piv j);
           Matrix.unsafe_set w !piv j tmp
         done;
         let tmp = perm.(k) in
         perm.(k) <- perm.(!piv);
         perm.(!piv) <- tmp
       end;
       let d = Matrix.unsafe_get w k k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       for i = k + 1 to n - 1 do
         Matrix.unsafe_set w i k (Precision.div prec (Matrix.unsafe_get w i k) d)
       done;
       for j = k + 1 to n - 1 do
         let ukj = Matrix.unsafe_get w k j in
         if ukj <> 0.0 then
           for i = k + 1 to n - 1 do
             Matrix.unsafe_set w i j
               (Precision.fma prec
                  (-.Matrix.unsafe_get w i k)
                  ukj
                  (Matrix.unsafe_get w i j))
           done
       done
     done
   with Exit -> ());
  ({ lu = w; perm }, !info)

let factor_explicit ?prec m =
  let f, info = factor_explicit_status ?prec m in
  if info <> 0 then raise (Singular (info - 1));
  f

let factor_implicit_status ?(prec = Precision.Double) m =
  let n = check_square m "Lu.factor_implicit" in
  let w = Matrix.copy m in
  (* step.(r) = elimination step at which original row r was chosen as
     pivot, or -1 while the row is still unpivoted (the paper's [p]). *)
  let step = Array.make n (-1) in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       (* Pivot search restricted to rows not yet pivoted — in the kernel
          this is a predicated warp reduction over column k. *)
       let piv = ref (-1) in
       for r = 0 to n - 1 do
         if
           step.(r) < 0
           && (!piv < 0
               || Float.abs (Matrix.unsafe_get w r k)
                  > Float.abs (Matrix.unsafe_get w !piv k))
         then piv := r
       done;
       let d = Matrix.unsafe_get w !piv k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       step.(!piv) <- k;
       (* Every still-unpivoted row scales its k-th element and updates its
          trailing part against the pivot row — no data movement. *)
       for r = 0 to n - 1 do
         if step.(r) < 0 then begin
           Matrix.unsafe_set w r k (Precision.div prec (Matrix.unsafe_get w r k) d);
           let l = Matrix.unsafe_get w r k in
           for j = k + 1 to n - 1 do
             Matrix.unsafe_set w r j
               (Precision.fma prec (-.l)
                  (Matrix.unsafe_get w !piv j)
                  (Matrix.unsafe_get w r j))
           done
         end
       done
     done
   with Exit -> ());
  (* A breakdown at step k leaves rows unpivoted; they take the remaining
     steps k, k+1, ... in increasing row order so the fused write-back
     permutation below stays total (and deterministic — the kernel applies
     the same rule). *)
  if !info <> 0 then begin
    let next = ref (!info - 1) in
    for r = 0 to n - 1 do
      if step.(r) < 0 then begin
        step.(r) <- !next;
        incr next
      end
    done
  end;
  (* Combined row swap, fused with the write-back in the real kernel:
     the row pivoted at step k lands in row k of the packed factors. *)
  let perm = Array.make n 0 in
  Array.iteri (fun r k -> perm.(k) <- r) step;
  ({ lu = Matrix.permute_rows w perm; perm }, !info)

let factor_implicit ?prec m =
  let f, info = factor_implicit_status ?prec m in
  if info <> 0 then raise (Singular (info - 1));
  f

let factor_nopivot_status ?(prec = Precision.Double) m =
  let n = check_square m "Lu.factor_nopivot" in
  let w = Matrix.copy m in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let d = Matrix.unsafe_get w k k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       for i = k + 1 to n - 1 do
         Matrix.unsafe_set w i k (Precision.div prec (Matrix.unsafe_get w i k) d)
       done;
       for j = k + 1 to n - 1 do
         let ukj = Matrix.unsafe_get w k j in
         if ukj <> 0.0 then
           for i = k + 1 to n - 1 do
             Matrix.unsafe_set w i j
               (Precision.fma prec
                  (-.Matrix.unsafe_get w i k)
                  ukj
                  (Matrix.unsafe_get w i j))
           done
       done
     done
   with Exit -> ());
  ({ lu = w; perm = Array.init n (fun i -> i) }, !info)

let factor_nopivot ?prec m =
  let f, info = factor_nopivot_status ?prec m in
  if info <> 0 then raise (Singular (info - 1));
  f

(* ------------------------------------------------------------------ *)
(* In-place batch-view factorizations for the direct-execution fast path
   ([Vblu_simt.Sampling.run]'s [?direct]): the same freeze-on-breakdown
   numerics as the [_status] references above, restated over a column-major
   n-by-n block living at [off] inside a batch value array — no [Matrix]
   wrapper, no allocation.  Each element sees the same once-rounded
   [Precision] op sequence as under the warp interpreter, so outputs are
   bitwise identical to a simulated execution. *)

let factor_implicit_view ?(prec = Precision.Double) ?(stride = 1) ~src ~dst
    ~off ~n ~tile ~step ~perm () =
  (* [stride] is the batch's element stride (1 = blocked, cohort width for
     interleaved layouts): element e of the block lives at
     [off + stride*e].  The gather packs the block contiguously so the
     elimination runs stride-free; only the copy edges are strided. *)
  for e = 0 to (n * n) - 1 do
    tile.(e) <- src.(off + (stride * e))
  done;
  for r = 0 to n - 1 do
    step.(r) <- -1
  done;
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let piv = ref (-1) in
       for r = 0 to n - 1 do
         if
           step.(r) < 0
           && (!piv < 0
              || Float.abs tile.(r + (k * n)) > Float.abs tile.(!piv + (k * n)))
         then piv := r
       done;
       let d = tile.(!piv + (k * n)) in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       step.(!piv) <- k;
       for r = 0 to n - 1 do
         if step.(r) < 0 then begin
           let l = Precision.div prec tile.(r + (k * n)) d in
           tile.(r + (k * n)) <- l;
           for j = k + 1 to n - 1 do
             tile.(r + (j * n)) <-
               Precision.fma prec (-.l) tile.(!piv + (j * n)) tile.(r + (j * n))
           done
         end
       done
     done
   with Exit -> ());
  if !info <> 0 then begin
    let next = ref (!info - 1) in
    for r = 0 to n - 1 do
      if step.(r) < 0 then begin
        step.(r) <- !next;
        incr next
      end
    done
  end;
  for r = 0 to n - 1 do
    perm.(step.(r)) <- r
  done;
  (* Fused write-back permutation: row [r] lands in packed row [step.(r)]. *)
  for j = 0 to n - 1 do
    for r = 0 to n - 1 do
      dst.(off + (stride * (step.(r) + (j * n)))) <- tile.(r + (j * n))
    done
  done;
  !info

let factor_nopivot_view ?(prec = Precision.Double) ?(stride = 1) ~src ~dst ~off
    ~n () =
  if stride = 1 then Array.blit src off dst off (n * n)
  else
    for e = 0 to (n * n) - 1 do
      dst.(off + (stride * e)) <- src.(off + (stride * e))
    done;
  let at i j = off + (stride * (i + (j * n))) in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       let d = dst.(at k k) in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       for i = k + 1 to n - 1 do
         dst.(at i k) <- Precision.div prec dst.(at i k) d
       done;
       for j = k + 1 to n - 1 do
         (* No [ukj <> 0.0] skip here: the warp kernel issues the FMA
            unconditionally, and for non-finite multipliers the skipped and
            issued forms differ bitwise. *)
         let ukj = dst.(at k j) in
         for i = k + 1 to n - 1 do
           dst.(at i j) <-
             Precision.fma prec (-.dst.(at i k)) ukj dst.(at i j)
         done
       done
     done
   with Exit -> ());
  !info

let unpack { lu; _ } =
  let n, _ = Matrix.dims lu in
  let l =
    Matrix.init n n (fun i j ->
        if i > j then Matrix.unsafe_get lu i j else if i = j then 1.0 else 0.0)
  in
  let u = Matrix.init n n (fun i j -> if i <= j then Matrix.unsafe_get lu i j else 0.0) in
  (l, u)

let solve_in_place ?(prec = Precision.Double) f b =
  let x = Trsv.apply_perm f.perm b in
  Trsv.lower_unit_in_place ~prec f.lu x;
  Trsv.upper_in_place ~prec f.lu x;
  Array.blit x 0 b 0 (Array.length b)

let solve ?(prec = Precision.Double) f b =
  Trsv.solve ~prec f.lu f.perm b

let solve_status ?(prec = Precision.Double) f b =
  Trsv.solve_status ~prec f.lu f.perm b

let det f =
  let n, _ = Matrix.dims f.lu in
  (* Sign of the permutation by cycle counting. *)
  let seen = Array.make n false in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    if not seen.(k) then begin
      let len = ref 0 in
      let r = ref k in
      while not seen.(!r) do
        seen.(!r) <- true;
        r := f.perm.(!r);
        incr len
      done;
      if !len land 1 = 0 then sign := -. !sign
    end
  done;
  let d = ref !sign in
  for k = 0 to n - 1 do
    d := !d *. Matrix.unsafe_get f.lu k k
  done;
  !d

let reconstruct f =
  let l, u = unpack f in
  Matrix.matmul l u
