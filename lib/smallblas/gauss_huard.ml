type storage = Normal | Transposed

type factors = { gh : Matrix.t; cperm : int array; storage : storage }

(* Element accessors that hide the GH-T transposed layout. *)
let fget f i j =
  match f.storage with
  | Normal -> Matrix.unsafe_get f.gh i j
  | Transposed -> Matrix.unsafe_get f.gh j i

let factor_status ?(prec = Precision.Double) ?(storage = Normal) m =
  let rows, cols = Matrix.dims m in
  if rows <> cols then invalid_arg "Gauss_huard.factor: matrix not square";
  let n = rows in
  let w = Matrix.copy m in
  let cperm = Array.init n (fun j -> j) in
  let info = ref 0 in
  (try
  for k = 0 to n - 1 do
    (* Lazy update of row k, columns k..n-1, against the processed rows. *)
    for j = k to n - 1 do
      let acc = ref (Matrix.unsafe_get w k j) in
      for i = 0 to k - 1 do
        acc :=
          Precision.fma prec
            (-.Matrix.unsafe_get w k i)
            (Matrix.unsafe_get w i j)
            !acc
      done;
      Matrix.unsafe_set w k j !acc
    done;
    (* Column pivoting: largest magnitude in row k, columns k..n-1. *)
    let piv = ref k in
    for j = k + 1 to n - 1 do
      if Float.abs (Matrix.unsafe_get w k j) > Float.abs (Matrix.unsafe_get w k !piv)
      then piv := j
    done;
    if !piv <> k then begin
      for i = 0 to n - 1 do
        let tmp = Matrix.unsafe_get w i k in
        Matrix.unsafe_set w i k (Matrix.unsafe_get w i !piv);
        Matrix.unsafe_set w i !piv tmp
      done;
      let tmp = cperm.(k) in
      cperm.(k) <- cperm.(!piv);
      cperm.(!piv) <- tmp
    end;
    let d = Matrix.unsafe_get w k k in
    if d = 0.0 then begin
      info := k + 1;
      raise Exit
    end;
    (* Scale the trailing part of row k by the pivot. *)
    for j = k + 1 to n - 1 do
      Matrix.unsafe_set w k j (Precision.div prec (Matrix.unsafe_get w k j) d)
    done;
    (* Eager elimination of column k above the diagonal.  The multipliers
       w(i,k) stay in place: the solve needs them. *)
    for i = 0 to k - 1 do
      let l = Matrix.unsafe_get w i k in
      if l <> 0.0 then
        for j = k + 1 to n - 1 do
          Matrix.unsafe_set w i j
            (Precision.fma prec (-.l) (Matrix.unsafe_get w k j) (Matrix.unsafe_get w i j))
        done
    done
  done
  with Exit -> ());
  (* On breakdown the elimination freezes after steps 0..k-1; the partial
     factors are still returned (frozen state, matching the kernel). *)
  let f =
    match storage with
    | Normal -> { gh = w; cperm; storage }
    | Transposed -> { gh = Matrix.transpose w; cperm; storage }
  in
  (f, !info)

let factor ?prec ?storage m =
  let f, info = factor_status ?prec ?storage m in
  if info <> 0 then raise (Error.Singular (info - 1));
  f

let solve_permuted_status ?(prec = Precision.Double) f b =
  let n = Array.length f.cperm in
  if Array.length b <> n then invalid_arg "Gauss_huard.solve: dimension mismatch";
  let y = Array.copy b in
  let info = ref 0 in
  (try
     for k = 0 to n - 1 do
       (* DOT against the lower multipliers, then the pivot division ... *)
       let acc = ref y.(k) in
       for j = 0 to k - 1 do
         acc := Precision.fma prec (-.fget f k j) y.(j) !acc
       done;
       let d = fget f k k in
       if d = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       y.(k) <- Precision.div prec !acc d;
       (* ... then the eager AXPY against the upper multipliers. *)
       let yk = y.(k) in
       for i = 0 to k - 1 do
         y.(i) <- Precision.fma prec (-.fget f i k) yk y.(i)
       done
     done
   with Exit -> ());
  (y, !info)

let solve_status ?(prec = Precision.Double) f b =
  let y, info = solve_permuted_status ~prec f b in
  let x = Array.make (Array.length y) 0.0 in
  Array.iteri (fun j c -> x.(c) <- y.(j)) f.cperm;
  (x, info)

let solve ?(prec = Precision.Double) f b =
  fst (solve_status ~prec f b)

let solve_in_place ?(prec = Precision.Double) f b =
  let x = solve ~prec f b in
  Array.blit x 0 b 0 (Array.length b)
