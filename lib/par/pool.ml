type t = { domains : int }

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  { domains = max 1 n }

let sequential = { domains = 1 }

let num_domains t = t.domains

(* Split [lo, hi) into exactly [min t.domains (hi - lo)] contiguous chunks.
   [n mod chunks] leading chunks get one extra element, so chunk sizes differ
   by at most one and no chunk is ever empty — every spawned domain receives
   work.  (The former ceil-division split could produce empty trailing chunks,
   e.g. n=5 over 4 domains gave sizes 2,2,1,0.) *)
let chunk_bounds t ~lo ~hi =
  let n = hi - lo in
  if n <= 0 then [||]
  else begin
    let chunks = min t.domains n in
    let base = n / chunks and rem = n mod chunks in
    Array.init chunks (fun c ->
        let clo = lo + (c * base) + min c rem in
        let chi = clo + base + (if c < rem then 1 else 0) in
        (clo, chi))
  end

(* Run every chunk but the first in a fresh domain, and run the first chunk
   in the caller.  The first exception observed (caller's chunk first, then
   spawned chunks in order) is re-raised after all domains joined, so no work
   is leaked. *)
let parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if t.domains = 1 || n = 1 then
    for i = lo to hi - 1 do
      body i
    done
  else begin
    let bounds = chunk_bounds t ~lo ~hi in
    let chunks = Array.length bounds in
    let run_chunk c () =
      let clo, chi = bounds.(c) in
      for i = clo to chi - 1 do
        body i
      done
    in
    let spawned =
      Array.init (chunks - 1) (fun c -> Domain.spawn (run_chunk (c + 1)))
    in
    let caller_result =
      match run_chunk 0 () with
      | () -> None
      | exception e -> Some e
    in
    let spawned_result = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e ->
          if !spawned_result = None then spawned_result := Some e)
      spawned;
    match caller_result, !spawned_result with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f xs.(0)) in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f xs.(i));
    out
  end

let parallel_init t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f i);
    out
  end
