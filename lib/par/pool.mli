(** Minimal fork-join parallelism over OCaml 5 domains.

    The batched routines in this project are embarrassingly parallel across
    problem instances.  This module provides the small amount of scheduling
    machinery they need: a domain count probed from the machine, a chunked
    parallel [for], and a parallel [map] over arrays.  On a single-core
    machine every operation degrades to its sequential equivalent with no
    domain spawns, so the numerical results never depend on the topology. *)

type t
(** A handle describing how much parallelism to use. *)

val create : ?num_domains:int -> unit -> t
(** [create ()] probes [Domain.recommended_domain_count] and builds a handle
    that will fan work out over that many domains (including the calling
    one).  [?num_domains] overrides the probe; values [<= 1] force
    sequential execution. *)

val sequential : t
(** A handle that always runs work in the calling domain. *)

val num_domains : t -> int
(** Number of domains (including the caller) used by [parallel_*]. *)

val chunk_bounds : t -> lo:int -> hi:int -> (int * int) array
(** [chunk_bounds t ~lo ~hi] is the chunking policy used by {!parallel_for}:
    [min (num_domains t) (hi - lo)] contiguous [(clo, chi)] half-open ranges
    that partition [lo, hi) in order.  Every chunk is non-empty and chunk
    sizes differ by at most one (remainder elements go to the leading
    chunks).  Returns [[||]] when [hi <= lo].  Exposed for testing. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body i] for every [lo <= i < hi].
    Iterations must be independent; the order of execution is unspecified.
    Exceptions raised by [body] are re-raised in the caller after all
    domains have joined. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map t f xs] is [Array.map f xs] with independent applications
    of [f] distributed over the domains of [t]. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init t n f] is [Array.init n f] with the same contract as
    {!parallel_map}. *)
