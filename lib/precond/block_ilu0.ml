open Vblu_smallblas
open Vblu_sparse
open Vblu_core
open Vblu_fault
module Launch = Vblu_simt.Launch
module Counter = Vblu_simt.Counter
module Ctx = Vblu_obs.Ctx

exception Singular_block of { block : int }

type wave = {
  sweep : string;
  level : int;
  kernel : string;
  problems : int;
  transactions : int;
  modelled_us : float;
}

type apply_stats = { waves : wave array; modelled_seconds : float }

type info = {
  blocking : Supervariable.blocking;
  lower : Levels.schedule;
  upper : Levels.schedule;
  factor_info : int;
  degraded_blocks : int list;
  perturbed_blocks : int list;
  recovered_blocks : int list;
  corrupt_blocks : int list;
  setup_launches : int;
  setup_modelled_seconds : float;
  last_apply : apply_stats option ref;
}

(* Position of [j] in a sorted dependency array, -1 if absent. *)
let find_dep deps j =
  let lo = ref 0 and hi = ref (Array.length deps - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if deps.(mid) = j then res := mid
    else if deps.(mid) < j then lo := mid + 1
    else hi := mid - 1
  done;
  !res

(* Identity fallback factors: TRSV through them is a bitwise copy of the
   right-hand side and the right division a bitwise copy of the coupling
   block, so a degraded block is simply not preconditioned — the block
   generalization of patching a zero scalar pivot with [1.0]. *)
let identity_factors s = (Matrix.identity s, Array.init s (fun r -> r))

(* One level-scheduled GEMM wave of the apply sweeps.  [g_a] holds the
   coupling blocks (constant after setup); [g_b]/[g_c] are carriers whose
   column 0 is refilled from the iterate on every application.  Problems
   are padded square to [max (s_i, s_src)]: the padding stays zero, and a
   multiply-then-add chain with a zero operand leaves the live entries
   bit-exact, so padded lanes never perturb the result. *)
type gstep = {
  g_rows : int array;
  g_srcs : int array;
  g_a : Batch.t;
  g_b : Batch.t;
  g_c : Batch.t;
}

type tstep = {
  t_rows : int array;
  t_factors : Batch.t;
  t_pivots : int array array;
  t_rhs : Batch.vec;
}

(* Per-row elimination outcome, kept as an array so a partial refresh can
   rewrite just the re-eliminated rows and the info lists stay
   reconstructible (and deterministic) at any point. *)
type row_outcome = Row_ok | Row_degraded | Row_perturbed | Row_recovered | Row_corrupt

(* Apply staging, swapped wholesale by a refresh: the live apply closure
   reads these fields on every call, so the [Preconditioner.t] stays
   valid across updates. *)
type staging = {
  mutable forward : gstep array array;
  mutable backward : (gstep array * tstep) array;
}

(* Everything a factorization needs to be re-run incrementally: the
   kernel configuration, the pattern-derived schedules (invariant across
   refreshes), the dense working arenas, and the per-row factor
   storage. *)
type state = {
  c_pool : Vblu_par.Pool.t option;
  c_prec : Precision.t;
  c_layout : Batch.layout;
  c_policy : Block_jacobi.breakdown_policy;
  c_faults : Fault.Plan.t option;
  c_abft : bool;
  c_obs : Ctx.t option;
  s_n : int;
  s_blk : Supervariable.blocking;
  s_row_block : int array;
  s_lower : Levels.schedule;
  s_upper : Levels.schedule;
  s_row_ptr : int array;  (* pattern fingerprint, frozen at build *)
  s_col_idx : int array;
  s_values : float array;  (* CSR values as of the last refresh *)
  s_dmat : Matrix.t array;
  s_lmat : Matrix.t array array;
  s_umat : Matrix.t array array;
  (* Factor storage: normal factors feed the backward-sweep TRSV waves,
     transposed factors feed the right divisions [L_ik = A_ik·A_kk⁻¹]
     (solved as [L_ikᵀ = lu(A_kkᵀ) \ A_ikᵀ]). *)
  s_flu : Matrix.t array;
  s_fpiv : int array array;
  s_tlu : Matrix.t array;
  s_tpiv : int array array;
  s_outcome : row_outcome array;
  s_breakdown : bool array;  (* rows whose LU launch flagged a breakdown *)
  s_staging : staging;
  s_last_apply : apply_stats option ref;
}

let init_state ~pool ~prec ~layout ~policy ~faults ~abft ~obs ~blk (a : Csr.t) =
  let n, _ = Csr.dims a in
  let starts = blk.Supervariable.starts and sizes = blk.Supervariable.sizes in
  let k = Array.length starts in
  let lower = Levels.schedule Levels.Lower ~starts ~sizes a in
  let upper = Levels.schedule Levels.Upper ~starts ~sizes a in
  let row_block = Array.make n 0 in
  for i = 0 to k - 1 do
    for r = starts.(i) to starts.(i) + sizes.(i) - 1 do
      row_block.(r) <- i
    done
  done;
  {
    c_pool = pool;
    c_prec = prec;
    c_layout = layout;
    c_policy = policy;
    c_faults = faults;
    c_abft = abft;
    c_obs = obs;
    s_n = n;
    s_blk = blk;
    s_row_block = row_block;
    s_lower = lower;
    s_upper = upper;
    s_row_ptr = Array.copy a.Csr.row_ptr;
    s_col_idx = Array.copy a.Csr.col_idx;
    s_values = Array.copy a.Csr.values;
    s_dmat = Array.init k (fun i -> Matrix.identity sizes.(i));
    s_lmat = Array.make k [||];
    s_umat = Array.make k [||];
    s_flu = Array.make k (Matrix.identity 1);
    s_fpiv = Array.make k [||];
    s_tlu = Array.make k (Matrix.identity 1);
    s_tpiv = Array.make k [||];
    s_outcome = Array.make k Row_ok;
    s_breakdown = Array.make k false;
    s_staging = { forward = [||]; backward = [||] };
    s_last_apply = ref None;
  }

(* Refill the dense working copies of the masked block rows from [a] —
   the "re-extract values into the existing arenas" step.  [lmat.(i)] /
   [umat.(i)] run parallel to [ldeps.(i)] / [udeps.(i)].  Unmasked rows
   keep their post-elimination state, which is exactly what a later
   partial elimination reads (the upper blocks and transposed factors of
   finalized dependency rows). *)
let fill_state st (a : Csr.t) (mask : bool array) =
  let starts = st.s_blk.Supervariable.starts
  and sizes = st.s_blk.Supervariable.sizes in
  let ldeps = st.s_lower.Levels.deps and udeps = st.s_upper.Levels.deps in
  let k = Array.length starts in
  for i = 0 to k - 1 do
    if mask.(i) then begin
      st.s_dmat.(i) <-
        Csr.extract_block a ~row_start:starts.(i) ~size:sizes.(i);
      st.s_lmat.(i) <-
        Array.map (fun kb -> Matrix.create sizes.(i) sizes.(kb)) ldeps.(i);
      st.s_umat.(i) <-
        Array.map (fun j -> Matrix.create sizes.(i) sizes.(j)) udeps.(i);
      for r = starts.(i) to starts.(i) + sizes.(i) - 1 do
        for p = a.Csr.row_ptr.(r) to a.Csr.row_ptr.(r + 1) - 1 do
          let c = a.Csr.col_idx.(p) in
          let j = st.s_row_block.(c) in
          if j < i then
            Matrix.set
              st.s_lmat.(i).(find_dep ldeps.(i) j)
              (r - starts.(i))
              (c - starts.(j))
              a.Csr.values.(p)
          else if j > i then
            Matrix.set
              st.s_umat.(i).(find_dep udeps.(i) j)
              (r - starts.(i))
              (c - starts.(j))
              a.Csr.values.(p)
        done
      done
    end
  done

(* Elimination restricted to the masked block rows: one pass over the
   lower-DAG level sets.  Rows of a wave only write their own block row
   and read block rows finalized by strictly earlier waves, so each
   dependency rank [t] is one batched TRSM wave (the right divisions)
   plus one batched GEMM wave (the pattern-restricted trailing updates),
   and the wave closes with one batched LU launch over its eliminated
   diagonals — no scalar factorization anywhere.  Waves with no masked
   rows are skipped outright, which is where a partial refresh saves its
   launches.  Returns [(launches, transactions, modelled_seconds)]. *)
let eliminate st (mask : bool array) =
  let pool = st.c_pool
  and prec = st.c_prec
  and layout = st.c_layout
  and policy = st.c_policy
  and faults = st.c_faults
  and abft = st.c_abft
  and obs = st.c_obs in
  let sizes = st.s_blk.Supervariable.sizes in
  let ldeps = st.s_lower.Levels.deps and udeps = st.s_upper.Levels.deps in
  let dmat = st.s_dmat and lmat = st.s_lmat and umat = st.s_umat in
  let launches = ref 0 and transactions = ref 0 and modelled = ref 0.0 in
  let note (ls : Launch.stats) =
    incr launches;
    transactions := !transactions + Counter.transactions ls.Launch.total;
    modelled := !modelled +. (ls.Launch.time_us *. 1e-6)
  in
  let failed = function Fault.Failed -> true | _ -> false in
  let store i fn ft pn pt =
    st.s_flu.(i) <- fn;
    st.s_tlu.(i) <- ft;
    st.s_fpiv.(i) <- pn;
    st.s_tpiv.(i) <- pt
  in
  let degrade i =
    let fn, pn = identity_factors sizes.(i) in
    let ft, pt = identity_factors sizes.(i) in
    store i fn ft pn pt
  in
  Array.iter
    (fun all_rows ->
      let wave_rows =
        Array.of_list (List.filter (fun i -> mask.(i)) (Array.to_list all_rows))
      in
      if Array.length wave_rows > 0 then begin
        Array.iter
          (fun i ->
            st.s_outcome.(i) <- Row_ok;
            st.s_breakdown.(i) <- false)
          wave_rows;
        let max_t =
          Array.fold_left
            (fun m i -> max m (Array.length ldeps.(i)))
            0 wave_rows
        in
        for t = 0 to max_t - 1 do
          let sub =
            Array.of_list
              (List.filter
                 (fun i -> Array.length ldeps.(i) > t)
                 (Array.to_list wave_rows))
          in
          let srcs = Array.map (fun i -> ldeps.(i).(t)) sub in
          let vsz = Array.map (fun kb -> sizes.(kb)) srcs in
          let fb =
            Batch.of_matrices ~layout
              (Array.map (fun kb -> st.s_tlu.(kb)) srcs)
          in
          let piv = Array.map (fun kb -> st.s_tpiv.(kb)) srcs in
          (* GETRS wants a uniform rhs count: pad short problems with
             zero vectors (their solves are exact no-ops). *)
          let nrhs = Array.fold_left (fun m i -> max m sizes.(i)) 1 sub in
          let rhs_sets =
            Array.init nrhs (fun r ->
                let v = Batch.vec_create ~layout vsz in
                Array.iteri
                  (fun p i ->
                    if r < sizes.(i) then begin
                      let m = lmat.(i).(t) in
                      for e = 0 to vsz.(p) - 1 do
                        v.Batch.vvalues.(Batch.vec_index v p e) <-
                          Matrix.get m r e
                      done
                    end)
                  sub;
                v)
          in
          let tr =
            Batched_trsm.solve ?pool ~prec ?obs ~factors:fb ~pivots:piv
              rhs_sets
          in
          note tr.Batched_trsm.stats;
          Array.iteri
            (fun p i ->
              let m = lmat.(i).(t) in
              for r = 0 to sizes.(i) - 1 do
                let sol = tr.Batched_trsm.solutions.(r) in
                for e = 0 to vsz.(p) - 1 do
                  Matrix.set m r e
                    sol.Batch.vvalues.(Batch.vec_index sol p e)
                done
              done)
            sub;
          (* Trailing updates A_ij -= L_ik·A_kj over the intersection
             of block row k's upper pattern with block row i's
             pattern; distinct (i, j) targets, so one GEMM wave with
             no write conflicts. *)
          let gp = ref [] in
          Array.iteri
            (fun p i ->
              let kb = srcs.(p) in
              let l = lmat.(i).(t) in
              Array.iteri
                (fun tj j ->
                  let target =
                    if j = i then Some dmat.(i)
                    else if j < i then begin
                      let ti = find_dep ldeps.(i) j in
                      if ti >= 0 then Some lmat.(i).(ti) else None
                    end
                    else begin
                      let ti = find_dep udeps.(i) j in
                      if ti >= 0 then Some umat.(i).(ti) else None
                    end
                  in
                  match target with
                  | Some tgt ->
                    gp :=
                      ( tgt,
                        l,
                        umat.(kb).(tj),
                        sizes.(i),
                        sizes.(kb),
                        sizes.(j) )
                      :: !gp
                  | None -> ())
                udeps.(kb))
            sub;
          let gp = Array.of_list (List.rev !gp) in
          if Array.length gp > 0 then begin
            let psz =
              Array.map (fun (_, _, _, si, sk, sj) -> max si (max sk sj)) gp
            in
            let ab = Batch.create ~layout psz in
            let bb = Batch.create ~layout psz in
            let cb = Batch.create ~layout psz in
            Array.iteri
              (fun p (tgt, l, u, si, sk, sj) ->
                for r = 0 to si - 1 do
                  for c = 0 to sk - 1 do
                    ab.Batch.values.(Batch.index ab p r c) <- Matrix.get l r c
                  done
                done;
                for r = 0 to sk - 1 do
                  for c = 0 to sj - 1 do
                    bb.Batch.values.(Batch.index bb p r c) <- Matrix.get u r c
                  done
                done;
                for r = 0 to si - 1 do
                  for c = 0 to sj - 1 do
                    cb.Batch.values.(Batch.index cb p r c) <-
                      Matrix.get tgt r c
                  done
                done)
              gp;
            let res =
              Batched_gemm.multiply ?pool ~prec ?obs ~alpha:(-1.0) ~beta:1.0
                ~a:ab ~b:bb ~c:cb ()
            in
            note res.Batched_gemm.stats;
            let pr = res.Batched_gemm.products in
            Array.iteri
              (fun p (tgt, _, _, si, _, sj) ->
                for r = 0 to si - 1 do
                  for c = 0 to sj - 1 do
                    Matrix.set tgt r c pr.Batch.values.(Batch.index pr p r c)
                  done
                done)
              gp
          end
        done;
        (* One batched LU launch factors the wave's eliminated
           diagonals, normal and transposed problems side by side. *)
        let nw = Array.length wave_rows in
        let mats =
          Array.init (2 * nw) (fun p ->
              if p < nw then dmat.(wave_rows.(p))
              else Matrix.transpose dmat.(wave_rows.(p - nw)))
        in
        let db = Batch.of_matrices ~layout mats in
        let lu = Batched_lu.factor ?pool ~prec ?faults ~abft ?obs db in
        note lu.Batched_lu.stats;
        let broken p =
          lu.Batched_lu.info.(p) <> 0 || lu.Batched_lu.info.(nw + p) <> 0
        in
        let faulted p =
          (not (broken p))
          && abft
          && (failed lu.Batched_lu.verdicts.(p)
             || failed lu.Batched_lu.verdicts.(nw + p))
        in
        let rescue = ref [] in
        Array.iteri
          (fun p i ->
            if broken p then begin
              st.s_breakdown.(i) <- true;
              match policy with
              | Block_jacobi.Perturb eps ->
                rescue := (i, `Perturb eps) :: !rescue
              | Block_jacobi.Identity_block | Block_jacobi.Fail ->
                (* Fail still finishes the elimination on identity
                   factors (determinism); the raise happens after
                   setup completes, like Block_jacobi. *)
                st.s_outcome.(i) <- Row_degraded;
                degrade i
            end
            else if faulted p then rescue := (i, `Fault) :: !rescue
            else
              store i
                (Batch.get_matrix lu.Batched_lu.factors p)
                (Batch.get_matrix lu.Batched_lu.factors (nw + p))
                lu.Batched_lu.pivots.(p)
                lu.Batched_lu.pivots.(nw + p))
          wave_rows;
        (* One combined rescue launch per wave retries the Perturb
           diagonal shifts and the ABFT-flagged refactorizations
           (fault-plan claims are one-shot, so the retry runs
           clean). *)
        let rescue = Array.of_list (List.rev !rescue) in
        let nr = Array.length rescue in
        if nr > 0 then begin
          let rmats =
            Array.init (2 * nr) (fun q ->
                let i, kind = rescue.(q mod nr) in
                let m =
                  match kind with
                  | `Perturb eps -> Block_jacobi.perturbed_copy ~eps dmat.(i)
                  | `Fault -> dmat.(i)
                in
                if q < nr then m else Matrix.transpose m)
          in
          let rb = Batch.of_matrices ~layout rmats in
          let rlu = Batched_lu.factor ?pool ~prec ?faults ~abft ?obs rb in
          note rlu.Batched_lu.stats;
          Array.iteri
            (fun q (i, kind) ->
              let clean =
                rlu.Batched_lu.info.(q) = 0
                && rlu.Batched_lu.info.(nr + q) = 0
                && (not abft
                   || not
                        (failed rlu.Batched_lu.verdicts.(q)
                        || failed rlu.Batched_lu.verdicts.(nr + q)))
              in
              if clean then begin
                store i
                  (Batch.get_matrix rlu.Batched_lu.factors q)
                  (Batch.get_matrix rlu.Batched_lu.factors (nr + q))
                  rlu.Batched_lu.pivots.(q)
                  rlu.Batched_lu.pivots.(nr + q);
                st.s_outcome.(i) <-
                  (match kind with
                  | `Perturb _ -> Row_perturbed
                  | `Fault -> Row_recovered)
              end
              else begin
                degrade i;
                st.s_outcome.(i) <-
                  (match kind with
                  | `Perturb _ -> Row_degraded
                  | `Fault -> Row_corrupt)
              end)
            rescue
        end
      end)
    st.s_lower.Levels.level_sets;
  (!launches, !transactions, !modelled)

(* Rebuild the apply staging from the current post-elimination arenas —
   host-only work (no launches); the coupling batches are constant until
   the next refresh, only the vector carriers get refilled per apply. *)
let build_staging st =
  let layout = st.c_layout in
  let sizes = st.s_blk.Supervariable.sizes in
  let ldeps = st.s_lower.Levels.deps and udeps = st.s_upper.Levels.deps in
  let build_gsteps deps mats rows =
    let max_t =
      Array.fold_left (fun m i -> max m (Array.length deps.(i))) 0 rows
    in
    Array.init max_t (fun t ->
        let sub =
          Array.of_list
            (List.filter
               (fun i -> Array.length deps.(i) > t)
               (Array.to_list rows))
        in
        let srcs = Array.map (fun i -> deps.(i).(t)) sub in
        let psz = Array.mapi (fun p i -> max sizes.(i) sizes.(srcs.(p))) sub in
        let ga = Batch.create ~layout psz in
        Array.iteri
          (fun p i ->
            let m = mats.(i).(t) in
            for r = 0 to sizes.(i) - 1 do
              for c = 0 to sizes.(srcs.(p)) - 1 do
                ga.Batch.values.(Batch.index ga p r c) <- Matrix.get m r c
              done
            done)
          sub;
        {
          g_rows = sub;
          g_srcs = srcs;
          g_a = ga;
          g_b = Batch.create ~layout psz;
          g_c = Batch.create ~layout psz;
        })
  in
  st.s_staging.forward <-
    Array.map
      (fun rows -> build_gsteps ldeps st.s_lmat rows)
      st.s_lower.Levels.level_sets;
  st.s_staging.backward <-
    Array.map
      (fun rows ->
        let gs = build_gsteps udeps st.s_umat rows in
        let ts =
          {
            t_rows = rows;
            t_factors =
              Batch.of_matrices ~layout (Array.map (fun i -> st.s_flu.(i)) rows);
            t_pivots = Array.map (fun i -> st.s_fpiv.(i)) rows;
            t_rhs =
              Batch.vec_create ~layout (Array.map (fun i -> sizes.(i)) rows);
          }
        in
        (gs, ts))
      st.s_upper.Levels.level_sets

(* Level-scheduled sparse block-triangular solves: forward unit sweep is
   pure GEMM waves; backward sweep is GEMM waves plus one TRSV wave per
   level for the diagonal solves.  All staging is sequential host code,
   so the result is bit-identical across domain counts and layouts.  The
   closure reads the staging record on every call, so it survives
   refreshes. *)
let make_apply st =
  let pool = st.c_pool and prec = st.c_prec and obs = st.c_obs in
  let starts = st.s_blk.Supervariable.starts
  and sizes = st.s_blk.Supervariable.sizes in
  let n = st.s_n in
  let run_gstep waves sweep level y gs =
    Array.iteri
      (fun p i ->
        let kb = gs.g_srcs.(p) in
        let b = gs.g_b and c = gs.g_c in
        for e = 0 to sizes.(kb) - 1 do
          b.Batch.values.(Batch.index b p e 0) <- y.(starts.(kb) + e)
        done;
        for e = 0 to sizes.(i) - 1 do
          c.Batch.values.(Batch.index c p e 0) <- y.(starts.(i) + e)
        done)
      gs.g_rows;
    let res =
      Batched_gemm.multiply ?pool ~prec ?obs ~alpha:(-1.0) ~beta:1.0 ~a:gs.g_a
        ~b:gs.g_b ~c:gs.g_c ()
    in
    let pr = res.Batched_gemm.products in
    Array.iteri
      (fun p i ->
        for e = 0 to sizes.(i) - 1 do
          y.(starts.(i) + e) <- pr.Batch.values.(Batch.index pr p e 0)
        done)
      gs.g_rows;
    let ls = res.Batched_gemm.stats in
    waves :=
      {
        sweep;
        level;
        kernel = "gemm";
        problems = Array.length gs.g_rows;
        transactions = Counter.transactions ls.Launch.total;
        modelled_us = ls.Launch.time_us;
      }
      :: !waves
  in
  fun r ->
    if Array.length r <> n then
      invalid_arg "Block_ilu0.apply: dimension mismatch";
    let y = Array.copy r in
    let waves = ref [] in
    Array.iteri
      (fun level steps ->
        Array.iter (run_gstep waves "forward" level y) steps)
      st.s_staging.forward;
    Array.iteri
      (fun level (gs, ts) ->
        Array.iter (run_gstep waves "backward" level y) gs;
        Array.iteri
          (fun p i ->
            let v = ts.t_rhs in
            for e = 0 to sizes.(i) - 1 do
              v.Batch.vvalues.(Batch.vec_index v p e) <- y.(starts.(i) + e)
            done)
          ts.t_rows;
        let res =
          Batched_trsv.solve ?pool ~prec ?obs ~factors:ts.t_factors
            ~pivots:ts.t_pivots ts.t_rhs
        in
        let sol = res.Batched_trsv.solutions in
        Array.iteri
          (fun p i ->
            for e = 0 to sizes.(i) - 1 do
              y.(starts.(i) + e) <- sol.Batch.vvalues.(Batch.vec_index sol p e)
            done)
          ts.t_rows;
        let ls = res.Batched_trsv.stats in
        waves :=
          {
            sweep = "backward";
            level;
            kernel = "trsv";
            problems = Array.length ts.t_rows;
            transactions = Counter.transactions ls.Launch.total;
            modelled_us = ls.Launch.time_us;
          }
          :: !waves)
      st.s_staging.backward;
    let wv = Array.of_list (List.rev !waves) in
    let ms =
      Array.fold_left (fun acc w -> acc +. (w.modelled_us *. 1e-6)) 0.0 wv
    in
    st.s_last_apply := Some { waves = wv; modelled_seconds = ms };
    y

(* Outcome lists rebuilt from the per-row array — ascending and
   deterministic, matching the sequential fold of the original
   single-shot setup. *)
let outcome_lists st =
  let degraded = ref [] and perturbed = ref [] in
  let recovered = ref [] and corrupt = ref [] in
  for i = Array.length st.s_outcome - 1 downto 0 do
    match st.s_outcome.(i) with
    | Row_ok -> ()
    | Row_degraded -> degraded := i :: !degraded
    | Row_perturbed -> perturbed := i :: !perturbed
    | Row_recovered -> recovered := i :: !recovered
    | Row_corrupt ->
      corrupt := i :: !corrupt
  done;
  ( List.merge compare !degraded !corrupt,
    !perturbed,
    !recovered,
    !corrupt )

let factor_info_of st =
  let fi = ref 0 in
  for i = Array.length st.s_breakdown - 1 downto 0 do
    if st.s_breakdown.(i) then fi := i + 1
  done;
  !fi

let checked_blocking ~who ~n ?max_block_size ?blocking (a : Csr.t) =
  let blk =
    match blocking with
    | Some b ->
      if not (Supervariable.validate ~n b) then
        invalid_arg (who ^ ": invalid blocking");
      b
    | None ->
      Supervariable.blocking
        ~max_block_size:(Option.value max_block_size ~default:32)
        a
  in
  Array.iter
    (fun s ->
      if s > 32 then
        invalid_arg (who ^ ": diagonal block exceeds the warp width"))
    blk.Supervariable.sizes;
  blk

let create ?pool ?(prec = Precision.Double) ?(layout = Batch.Blocked)
    ?(policy = (Block_jacobi.Identity_block : Block_jacobi.breakdown_policy))
    ?faults ?(abft = false) ?(max_block_size = 32) ?blocking ?obs (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Block_ilu0.create: matrix not square";
  let blk =
    checked_blocking ~who:"Block_ilu0.create" ~n ~max_block_size ?blocking a
  in
  let k = Array.length blk.Supervariable.starts in
  let (st, setup_launches, setup_modelled_seconds), setup_seconds =
    Preconditioner.timed (fun () ->
        let st =
          init_state ~pool ~prec ~layout ~policy ~faults ~abft ~obs ~blk a
        in
        let mask = Array.make k true in
        fill_state st a mask;
        let launches, _tx, modelled = eliminate st mask in
        build_staging st;
        (st, launches, modelled))
  in
  let apply = make_apply st in
  let lower = st.s_lower and upper = st.s_upper in
  let factor_info = factor_info_of st in
  let degraded_blocks, perturbed_blocks, recovered_blocks, corrupt_blocks =
    outcome_lists st
  in
  let last_apply = st.s_last_apply in
  (if factor_info <> 0 then
     match policy with
     | Block_jacobi.Fail -> raise (Singular_block { block = factor_info - 1 })
     | _ -> ());
  let name = Printf.sprintf "block-ilu0(%d)" max_block_size in
  if Ctx.enabled obs then begin
    let ls = Levels.stats lower and us = Levels.stats upper in
    let count = List.length in
    Ctx.span_dur obs ~cat:"precond" ~dur:0.0 "ilu0.setup"
      ~args:
        [
          ("blocks", Vblu_obs.Trace.Int k);
          ("lower_levels", Vblu_obs.Trace.Int ls.Levels.levels);
          ("upper_levels", Vblu_obs.Trace.Int us.Levels.levels);
          ("launches", Vblu_obs.Trace.Int setup_launches);
          ("degraded", Vblu_obs.Trace.Int (count degraded_blocks));
          ("perturbed", Vblu_obs.Trace.Int (count perturbed_blocks));
          ("recovered", Vblu_obs.Trace.Int (count recovered_blocks));
          ("corrupt", Vblu_obs.Trace.Int (count corrupt_blocks));
        ];
    let l = [ ("precond", name) ] in
    Ctx.set_gauge_l obs "precond.ilu0.setup_seconds" l setup_seconds;
    Ctx.set_gauge_l obs "precond.ilu0.setup_modelled_seconds" l
      setup_modelled_seconds;
    Ctx.set_gauge_l obs "precond.ilu0.setup_launches" l
      (float_of_int setup_launches);
    Ctx.set_gauge_l obs "precond.ilu0.levels"
      [ ("sweep", "lower") ]
      (float_of_int ls.Levels.levels);
    Ctx.set_gauge_l obs "precond.ilu0.levels"
      [ ("sweep", "upper") ]
      (float_of_int us.Levels.levels);
    Array.iter
      (fun lset ->
        Ctx.observe_l obs "precond.ilu0.level_occupancy"
          [ ("sweep", "lower") ]
          (float_of_int (Array.length lset)))
      lower.Levels.level_sets;
    Array.iter
      (fun lset ->
        Ctx.observe_l obs "precond.ilu0.level_occupancy"
          [ ("sweep", "upper") ]
          (float_of_int (Array.length lset)))
      upper.Levels.level_sets;
    Ctx.incr_l obs "precond.ilu0.degraded" l
      (float_of_int (count degraded_blocks));
    Ctx.incr_l obs "precond.ilu0.perturbed" l
      (float_of_int (count perturbed_blocks));
    Ctx.incr_l obs "precond.ilu0.recovered" l
      (float_of_int (count recovered_blocks));
    Ctx.incr_l obs "precond.ilu0.corrupt" l
      (float_of_int (count corrupt_blocks))
  end;
  let apply =
    if Ctx.enabled obs then fun r ->
      Ctx.with_span obs ~cat:"precond" "ilu0.apply" (fun () ->
          Ctx.incr obs "precond.ilu0.apply.count" 1.0;
          apply r)
    else apply
  in
  ( { Preconditioner.name; dim = n; setup_seconds; apply },
    {
      blocking = blk;
      lower;
      upper;
      factor_info;
      degraded_blocks;
      perturbed_blocks;
      recovered_blocks;
      corrupt_blocks;
      setup_launches;
      setup_modelled_seconds;
      last_apply;
    } )

(* ───────────────────── Amortized setup (handles) ─────────────────────

   The pattern — hence the blocking, both level schedules, and every
   dependency list — is invariant under value drift, so a handle keeps
   the elimination state alive and [update] re-runs only the dirty part:
   block rows whose own CSR entries moved past the tolerance, closed
   over the lower DAG (a row whose dependency re-eliminates has changed
   inputs and must re-eliminate too).  Waves with no dirty rows issue no
   launches at all.  Clean rows keep their post-elimination blocks and
   factors bitwise, and since elimination of a row writes only that
   row's blocks, a [~tol:0.] refresh reproduces a fresh factorization
   bit for bit.  Handles take no fault plan and no ABFT — amortization
   targets the fault-free steady state. *)

type handle = {
  h_state : state;
  h_precond : Preconditioner.t;
  mutable h_last : Block_jacobi.update_stats;
}

(* Dirty test over one contiguous CSR value range (a block row's entries
   are contiguous in CSR order).  Same contract as the Block_jacobi
   per-block test: [tol = 0.] compares bit patterns, a positive
   tolerance compares max |Δa| with non-finite deltas always dirty. *)
let range_dirty ~tol old_vals new_vals lo hi =
  if tol <= 0.0 then begin
    let d = ref false in
    let p = ref lo in
    while (not !d) && !p < hi do
      if
        not
          (Int64.equal
             (Int64.bits_of_float old_vals.(!p))
             (Int64.bits_of_float new_vals.(!p)))
      then d := true;
      incr p
    done;
    !d
  end
  else begin
    let delta = ref 0.0 in
    for p = lo to hi - 1 do
      let d = Float.abs (new_vals.(p) -. old_vals.(p)) in
      if Float.is_nan d then delta := Float.infinity
      else if d > !delta then delta := d
    done;
    !delta > tol
  end

let handle ?pool ?(prec = Precision.Double) ?(layout = Batch.Blocked)
    ?(policy = (Block_jacobi.Identity_block : Block_jacobi.breakdown_policy))
    ?(max_block_size = 32) ?blocking ?obs (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Block_ilu0.handle: matrix not square";
  let blk =
    checked_blocking ~who:"Block_ilu0.handle" ~n ~max_block_size ?blocking a
  in
  let k = Array.length blk.Supervariable.starts in
  let (st, stats), setup_seconds =
    Preconditioner.timed (fun () ->
        let st =
          init_state ~pool ~prec ~layout ~policy ~faults:None ~abft:false ~obs
            ~blk a
        in
        let mask = Array.make k true in
        fill_state st a mask;
        let launches, setup_transactions, modelled_seconds =
          eliminate st mask
        in
        build_staging st;
        ( st,
          {
            Block_jacobi.dirty_blocks = List.init k Fun.id;
            refactored = k;
            reused = 0;
            launches;
            setup_transactions;
            modelled_seconds;
          } ))
  in
  (let fi = factor_info_of st in
   if fi <> 0 then
     match policy with
     | Block_jacobi.Fail -> raise (Singular_block { block = fi - 1 })
     | _ -> ());
  Vblu_obs.Setup_metrics.record obs ~family:"ilu0" ~fresh:k ~reused:0 ~dirty:0;
  let apply = make_apply st in
  let apply =
    if Ctx.enabled obs then fun r ->
      Ctx.with_span obs ~cat:"precond" "ilu0.apply" (fun () ->
          Ctx.incr obs "precond.ilu0.apply.count" 1.0;
          apply r)
    else apply
  in
  let name = Printf.sprintf "block-ilu0(%d)" max_block_size in
  {
    h_state = st;
    h_precond = { Preconditioner.name; dim = n; setup_seconds; apply };
    h_last = stats;
  }

let update ?(tol = 0.0) ?(force_all = false) h (a : Csr.t) =
  let st = h.h_state in
  let n, cols = Csr.dims a in
  if n <> cols || n <> st.s_n then
    invalid_arg "Block_ilu0.update: dimension mismatch";
  if not (a.Csr.row_ptr = st.s_row_ptr && a.Csr.col_idx = st.s_col_idx) then
    invalid_arg
      "Block_ilu0.update: sparsity pattern changed (build a new handle)";
  let starts = st.s_blk.Supervariable.starts
  and sizes = st.s_blk.Supervariable.sizes in
  let k = Array.length starts in
  let mask = Array.make k force_all in
  if not force_all then begin
    for i = 0 to k - 1 do
      let lo = st.s_row_ptr.(starts.(i)) in
      let hi = st.s_row_ptr.(starts.(i) + sizes.(i)) in
      mask.(i) <- range_dirty ~tol st.s_values a.Csr.values lo hi
    done;
    (* Close over the lower DAG in level order: dependencies live in
       strictly earlier levels, so one pass settles the closure. *)
    Array.iter
      (fun rows ->
        Array.iter
          (fun i ->
            if not mask.(i) then
              mask.(i) <-
                Array.exists
                  (fun kb -> mask.(kb))
                  st.s_lower.Levels.deps.(i))
          rows)
      st.s_lower.Levels.level_sets
  end;
  let dirty = ref [] in
  for i = k - 1 downto 0 do
    if mask.(i) then dirty := i :: !dirty
  done;
  let nd = List.length !dirty in
  let launches, setup_transactions, modelled_seconds =
    if nd = 0 then (0, 0, 0.0)
    else begin
      fill_state st a mask;
      let r = eliminate st mask in
      build_staging st;
      r
    end
  in
  Array.blit a.Csr.values 0 st.s_values 0 (Array.length st.s_values);
  (match st.c_policy with
  | Block_jacobi.Fail ->
    for i = 0 to k - 1 do
      if mask.(i) && st.s_breakdown.(i) then
        raise (Singular_block { block = i })
    done
  | _ -> ());
  let stats =
    {
      Block_jacobi.dirty_blocks = !dirty;
      refactored = nd;
      reused = k - nd;
      launches;
      setup_transactions;
      modelled_seconds;
    }
  in
  h.h_last <- stats;
  Vblu_obs.Setup_metrics.record st.c_obs ~family:"ilu0" ~fresh:nd
    ~reused:(k - nd) ~dirty:nd;
  stats

let precond h = h.h_precond
let last_update h = h.h_last

let handle_info h =
  let st = h.h_state in
  let degraded_blocks, perturbed_blocks, recovered_blocks, corrupt_blocks =
    outcome_lists st
  in
  {
    blocking = st.s_blk;
    lower = st.s_lower;
    upper = st.s_upper;
    factor_info = factor_info_of st;
    degraded_blocks;
    perturbed_blocks;
    recovered_blocks;
    corrupt_blocks;
    setup_launches = h.h_last.Block_jacobi.launches;
    setup_modelled_seconds = h.h_last.Block_jacobi.modelled_seconds;
    last_apply = st.s_last_apply;
  }

let handle_factors h =
  let st = h.h_state in
  Array.init (Array.length st.s_flu) (fun i -> (st.s_flu.(i), st.s_fpiv.(i)))

type ras_info = {
  subdomains : int;
  overlap : int;
  owned : (int * int) array;
  extended : (int * int) array;
  local_info : info array;
}

(* The principal submatrix on rows/columns [lo, hi), indices shifted. *)
let principal_submatrix (a : Csr.t) lo hi =
  let m = hi - lo in
  let row_ptr = Array.make (m + 1) 0 in
  let nnz = ref 0 in
  for r = lo to hi - 1 do
    for p = a.Csr.row_ptr.(r) to a.Csr.row_ptr.(r + 1) - 1 do
      let c = a.Csr.col_idx.(p) in
      if c >= lo && c < hi then incr nnz
    done;
    row_ptr.(r - lo + 1) <- !nnz
  done;
  let col_idx = Array.make !nnz 0 and values = Array.make !nnz 0.0 in
  let q = ref 0 in
  for r = lo to hi - 1 do
    for p = a.Csr.row_ptr.(r) to a.Csr.row_ptr.(r + 1) - 1 do
      let c = a.Csr.col_idx.(p) in
      if c >= lo && c < hi then begin
        col_idx.(!q) <- c - lo;
        values.(!q) <- a.Csr.values.(p);
        incr q
      end
    done
  done;
  Csr.create ~n_rows:m ~n_cols:m ~row_ptr ~col_idx ~values

let ras ?pool ?(prec = Precision.Double) ?(layout = Batch.Blocked)
    ?(policy = (Block_jacobi.Identity_block : Block_jacobi.breakdown_policy))
    ?faults ?(abft = false) ?(max_block_size = 32) ?(subdomains = 4)
    ?(overlap = 8) ?obs (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Block_ilu0.ras: matrix not square";
  if subdomains < 1 then invalid_arg "Block_ilu0.ras: subdomains < 1";
  if overlap < 0 then invalid_arg "Block_ilu0.ras: negative overlap";
  let sd = max 1 (min subdomains n) in
  let owned = Array.init sd (fun d -> (d * n / sd, (d + 1) * n / sd)) in
  let extended =
    Array.map
      (fun (lo, hi) -> (max 0 (lo - overlap), min n (hi + overlap)))
      owned
  in
  let (locals, infos), setup_seconds =
    Preconditioner.timed (fun () ->
        let pairs =
          Array.map
            (fun (elo, ehi) ->
              let sub = principal_submatrix a elo ehi in
              create ?pool ~prec ~layout ~policy ?faults ~abft ~max_block_size
                ?obs sub)
            extended
        in
        (Array.map fst pairs, Array.map snd pairs))
  in
  let name = Printf.sprintf "ras-ilu0(%d,%d)" sd overlap in
  (* Restricted scatter: every subdomain solves on its extended range but
     writes only its owned rows — disjoint writes, so the result does not
     depend on the subdomain visit order. *)
  let apply r =
    if Array.length r <> n then
      invalid_arg "Block_ilu0.ras: dimension mismatch";
    let y = Array.make n 0.0 in
    Array.iteri
      (fun d (elo, ehi) ->
        let lr = Array.sub r elo (ehi - elo) in
        let ly = Preconditioner.apply locals.(d) lr in
        let lo, hi = owned.(d) in
        Array.blit ly (lo - elo) y lo (hi - lo))
      extended;
    y
  in
  let apply =
    if Ctx.enabled obs then fun r ->
      Ctx.with_span obs ~cat:"precond" "ras.apply" (fun () ->
          Ctx.incr obs "precond.ilu0.ras.apply.count" 1.0;
          apply r)
    else apply
  in
  ( { Preconditioner.name; dim = n; setup_seconds; apply },
    { subdomains = sd; overlap; owned; extended; local_info = infos } )
