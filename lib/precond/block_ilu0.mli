(** Block-ILU(0): pattern-restricted block incomplete LU with
    level-scheduled batched triangular solves.

    The second preconditioner family (ROADMAP item 3).  Where
    block-Jacobi factorizes the diagonal blocks and ignores everything
    else, block-ILU(0) keeps the whole matrix coupled [Bollhöfer et al.,
    "High Performance Block Incomplete LU Factorization"]: the rows are
    partitioned with the same {!Supervariable} blocking, and a block
    elimination restricted to the {e block} sparsity pattern computes

    - [L_ik = A_ik · A_kk⁻¹] for every strictly-lower pattern block, and
    - [A_ij := A_ij - L_ik · A_kj] for the pattern-restricted trailing
      updates,

    with every diagonal block factored by {e one} variable-size
    {!Vblu_core.Batched_lu.factor} launch per elimination wave (a level
    set of the lower block DAG from {!Vblu_sparse.Levels}), every right
    division by one {!Vblu_core.Batched_trsm} wave (via the transposed
    factors: [L_ikᵀ = solve(lu(A_kkᵀ), A_ikᵀ)]), and every trailing
    update by one {!Vblu_core.Batched_gemm} wave — no per-block scalar
    factorizations anywhere.

    Application solves [M x = r] with [M = L·U] ([L] unit block lower,
    [U] block upper whose diagonal blocks carry their LU factors) as
    {e level-scheduled sparse block-triangular solves} [Li & Saad]: each
    level of the dependency DAG executes as batched GEMM waves (the
    off-diagonal couplings) plus one batched TRSV wave (the diagonal
    solves of the backward sweep), so the simulator's coalescing and
    transaction model prices the real parallel cost of every level.

    Numerics: the GEMM wave rounds each product and the accumulation
    separately (multiply-then-subtract); with every block of size 1 the
    whole construction collapses bitwise onto the scalar {!Ilu0}
    factorization and solve — the equivalence the test suite checks.
    Apply is bit-identical across domain counts and storage layouts.

    Breakdown of a diagonal block never raises mid-elimination: the
    batched kernels flag it in [info], and the {!Block_jacobi}
    [breakdown_policy] decides between identity fallback, an
    [eps·scale] diagonal shift (retried in one batched rescue launch per
    wave), or failing after setup completes.  [~abft:true] verifies the
    factor launches by row checksums; a flagged block is refactored once
    in the wave's rescue launch and degraded to the identity if still
    failing.

    Concurrency caveat (same as {!Block_jacobi}): one preconditioner
    value must not be applied from several threads at once — the staged
    wave buffers are reused across applies. *)

open Vblu_smallblas
open Vblu_sparse

exception Singular_block of { block : int }
(** Raised by {!create} under the [Fail] breakdown policy for the first
    (smallest index) block whose eliminated diagonal was singular. *)

(** Modelled cost of one batched wave of the most recent apply. *)
type wave = {
  sweep : string;  (** ["forward"] or ["backward"]. *)
  level : int;  (** DAG level the wave belongs to. *)
  kernel : string;  (** ["gemm"] or ["trsv"]. *)
  problems : int;  (** batch occupancy of the wave. *)
  transactions : int;  (** 32-byte global-memory transactions. *)
  modelled_us : float;
}

type apply_stats = {
  waves : wave array;  (** in execution order. *)
  modelled_seconds : float;  (** sum of the wave times. *)
}

type info = {
  blocking : Supervariable.blocking;
  lower : Levels.schedule;  (** forward-sweep dependency DAG. *)
  upper : Levels.schedule;  (** backward-sweep dependency DAG. *)
  factor_info : int;
      (** LAPACK-style first-breakdown status: [0] when every diagonal
          block factored cleanly, [i + 1] when block [i] was the first
          to break down (whatever the policy then did about it). *)
  degraded_blocks : int list;
      (** blocks whose diagonal factors fell back to the identity,
          ascending (singular blocks plus exhausted-recovery corrupt
          ones). *)
  perturbed_blocks : int list;
      (** blocks salvaged by the [Perturb] diagonal shift, ascending. *)
  recovered_blocks : int list;
      (** blocks whose ABFT failure a rescue refactorization repaired,
          ascending. *)
  corrupt_blocks : int list;
      (** blocks still failing ABFT after rescue (identity fallback),
          ascending; also counted in [degraded_blocks]. *)
  setup_launches : int;  (** batched kernel launches issued by setup. *)
  setup_modelled_seconds : float;
      (** summed modelled time of the setup launches. *)
  last_apply : apply_stats option ref;
      (** per-wave breakdown of the most recent apply (modelled numbers:
          bit-identical across runs, domains and layouts). *)
}

val create :
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?layout:Vblu_core.Batch.layout ->
  ?policy:Block_jacobi.breakdown_policy ->
  ?faults:Vblu_fault.Fault.Plan.t ->
  ?abft:bool ->
  ?max_block_size:int ->
  ?blocking:Supervariable.blocking ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Preconditioner.t * info
(** [create a] partitions, eliminates and packages the preconditioner.
    [max_block_size] (default 32) bounds the supervariable agglomeration;
    [blocking] overrides the partition; [layout] (default [Blocked])
    selects the storage layout of every staged batch; [policy] (default
    [Identity_block]) handles singular diagonal blocks.

    [?obs] records the setup (an ["ilu0.setup"] span, the
    [precond.ilu0.*] labelled registry metrics — setup seconds, level
    counts, per-level occupancy, degraded blocks — plus every kernel
    launch) and wraps the returned apply in an ["ilu0.apply"] span.
    @raise Invalid_argument if [a] is not square, a diagonal block
    exceeds the warp width, or the blocking is invalid.
    @raise Singular_block under the [Fail] policy. *)

(** {1 Amortized setup}

    The sparsity pattern — hence the blocking, both level schedules, and
    every dependency list — is invariant under value drift, so a
    {!handle} keeps the elimination state alive across time steps and
    {!update} re-runs only the dirty part: block rows whose own entries
    moved past the tolerance, closed over the lower elimination DAG (a
    row whose dependency re-eliminated has changed inputs and must
    re-eliminate too).  Elimination waves with no dirty rows issue no
    launches.  Clean rows keep their post-elimination blocks and factors
    bitwise, so [update ~tol:0.] is bit-identical to a fresh setup.
    Handles take no fault plan and no ABFT — amortization targets the
    fault-free steady state. *)

type handle

val handle :
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?layout:Vblu_core.Batch.layout ->
  ?policy:Block_jacobi.breakdown_policy ->
  ?max_block_size:int ->
  ?blocking:Supervariable.blocking ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  handle
(** [handle a] runs the same batched elimination as {!create} (same
    launches, same factors bitwise) but keeps the working state for
    later {!update} calls.  The returned {!precond} stays valid across
    refreshes — updates swap the staged apply waves in place.
    @raise Invalid_argument / [Singular_block] as {!create}. *)

val update :
  ?tol:float -> ?force_all:bool -> handle -> Csr.t -> Block_jacobi.update_stats
(** [update h a] re-extracts values from [a] (same pattern as the handle
    matrix), marks dirty the block rows whose entries changed by more
    than [tol] (default [0.] — any bitwise change) plus the DAG closure,
    and re-eliminates exactly those rows through the filtered batched
    waves.  [~force_all:true] re-eliminates everything (full-refresh
    baseline).  [dirty_blocks]/[refactored]/[reused] in the returned
    stats count block rows; [launches]/[setup_transactions]/
    [modelled_seconds] cover the TRSM/GEMM/LU waves actually issued.
    Records [precond.setup.*] metrics when the handle carries an
    observability context.
    @raise Invalid_argument on a dimension or sparsity-pattern mismatch.
    @raise Singular_block under the [Fail] policy when a dirty row
    breaks down (the handle is left partially refreshed). *)

val precond : handle -> Preconditioner.t
val last_update : handle -> Block_jacobi.update_stats
(** Stats of the most recent build or refresh. *)

val handle_info : handle -> info
(** The {!info} record rebuilt from the current per-row state;
    [setup_launches]/[setup_modelled_seconds] cover the most recent
    build or refresh. *)

val handle_factors : handle -> (Matrix.t * int array) array
(** Per-block-row diagonal factors (normal storage) and pivots —
    read-only; exposed so tests can assert bitwise reuse and
    fresh/update identity. *)

type ras_info = {
  subdomains : int;
  overlap : int;  (** rows of one-sided overlap. *)
  owned : (int * int) array;  (** per-subdomain owned range [lo, hi). *)
  extended : (int * int) array;  (** overlapped range actually solved. *)
  local_info : info array;  (** per-subdomain block-ILU(0) info. *)
}

val ras :
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?layout:Vblu_core.Batch.layout ->
  ?policy:Block_jacobi.breakdown_policy ->
  ?faults:Vblu_fault.Fault.Plan.t ->
  ?abft:bool ->
  ?max_block_size:int ->
  ?subdomains:int ->
  ?overlap:int ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Preconditioner.t * ras_info
(** Restricted additive Schwarz over block-ILU(0) local solves (the
    ChiDG production pattern): the rows are split into [subdomains]
    (default 4) contiguous owned ranges, each extended by [overlap]
    (default 8) rows on both sides; a block-ILU(0) preconditioner is
    built on every extended principal submatrix, and apply restricts the
    residual to each extended range, solves locally, and scatters {e
    only the owned rows} back — the restricted variant, whose disjoint
    writes keep the result deterministic and domain-count independent.
    With [subdomains = 1] and [overlap = 0] this is exactly {!create}.
    @raise Invalid_argument on [subdomains < 1], [overlap < 0], or a
    non-square matrix. *)
