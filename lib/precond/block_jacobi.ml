open Vblu_smallblas
open Vblu_sparse
open Vblu_par
open Vblu_fault

let log_src = Logs.Src.create "vblu.block_jacobi" ~doc:"block-Jacobi setup"

module Log = (val Logs.src_log log_src : Logs.LOG)

type variant = Lu | Gh | Ght | Gje_inverse | Cholesky | Scalar

let variant_name = function
  | Lu -> "lu"
  | Gh -> "gh"
  | Ght -> "gh-t"
  | Gje_inverse -> "gje-inverse"
  | Cholesky -> "cholesky"
  | Scalar -> "scalar"

(* Declared before [breakdown_policy] on purpose: both carry a [Fail]
   constructor, and declaring the breakdown one last keeps every
   unqualified [Fail] in pre-existing code meaning "breakdown". *)
type recovery_policy = Recompute of int | Degrade_to_identity | Fail

let recovery_name = function
  | Recompute n -> Printf.sprintf "recompute:%d" n
  | Degrade_to_identity -> "degrade"
  | (Fail : recovery_policy) -> "fail"

type breakdown_policy = Fail | Identity_block | Perturb of float

let policy_name = function
  | Fail -> "fail"
  | Identity_block -> "identity"
  | Perturb eps -> Printf.sprintf "perturb:%g" eps

exception Singular_block of { block : int; variant : variant }
exception Fault_detected of { block : int; variant : variant }

let () =
  Printexc.register_printer (function
    | Singular_block { block; variant } ->
      Some
        (Printf.sprintf
           "Block_jacobi.Singular_block: diagonal block %d is singular \
            (variant %s, policy fail)"
           block (variant_name variant))
    | Fault_detected { block; variant } ->
      Some
        (Printf.sprintf
           "Block_jacobi.Fault_detected: diagonal block %d failed its ABFT \
            check (variant %s, recovery fail)"
           block (variant_name variant))
    | _ -> None)

type info = {
  blocking : Supervariable.blocking;
  singular_blocks : int list;
  degraded_blocks : int list;
  perturbed_blocks : int list;
  recovered_blocks : int list;
  corrupt_blocks : int list;
}

(* Per-block setup outcome, recorded race-free: each pool worker writes
   only its own index of the [outcomes] array during [parallel_init], and
   the array is folded sequentially (in block order) after the join — so
   the resulting lists, and any [Fail]-policy exception, are deterministic
   across domain counts. *)
type outcome = Healthy | Degraded | Perturbed | Recovered | Corrupt

(* Per-block solver closures.  [solve] is the allocating form (the ABFT
   residual check feeds it standalone vectors); [solve_into r st y] reads
   the segment [r.(st .. st+s-1)] and writes the same segment of [y]
   without allocating — every scratch buffer is sized once at setup, per
   block, so pool workers applying distinct blocks never share state.
   (One preconditioner value applied concurrently from several threads
   would race on that scratch; Krylov applies are sequential per solve.) *)
type block_solver = {
  solve : Vector.t -> Vector.t;
  solve_into : Vector.t -> int -> Vector.t -> unit;
}

let identity_solver s =
  {
    solve = (fun (r : Vector.t) -> Array.copy r);
    solve_into = (fun r st y -> Array.blit r st y st s);
  }

(* Fallback [solve_into] for variants without a dedicated in-place path:
   one setup-time segment buffer replaces the per-apply [Array.sub]. *)
let into_of_solve ~s solve =
  let seg = Array.make s 0.0 in
  fun r st y ->
    Array.blit r st seg 0 s;
    Array.blit (solve seg) 0 y st s

(* [m] with [eps * scale] added to every diagonal entry, where [scale] is
   the largest absolute entry of the block (1.0 for an all-zero block) —
   the standard diagonal-shift rescue for a broken-down factorization. *)
let perturbed_copy ~eps m =
  let n, _ = Matrix.dims m in
  let scale = ref 0.0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let v = Float.abs (Matrix.unsafe_get m r c) in
      if v > !scale then scale := v
    done
  done;
  let scale = if !scale = 0.0 then 1.0 else !scale in
  let m' = Matrix.copy m in
  for r = 0 to n - 1 do
    Matrix.unsafe_set m' r r (Matrix.unsafe_get m' r r +. (eps *. scale))
  done;
  m'

(* Corrupt one entry of a factor matrix in place — the hook a claimed
   fault site uses to model a setup-time soft error. *)
let matrix_corrupt mat (site : Fault.site) =
  let n, _ = Matrix.dims mat in
  let r = site.Fault.lane mod n and c = site.Fault.step mod n in
  Matrix.unsafe_set mat r c
    (Fault.corrupt site.Fault.kind (Matrix.unsafe_get mat r c))

(* ABFT residual check for a factored block: solve against the row-sum
   vector w = A·e and accept iff A·u - w stays within the backward-stable
   envelope rowwise, evaluated against the matrix that was actually
   factored (the perturbed copy under a [Perturb] rescue — a deliberate
   diagonal shift must not read as corruption). *)
let abft_ok ~prec mfact (solver : block_solver) =
  let s, _ = Matrix.dims mfact in
  let e = Array.make s 1.0 in
  let w = Matrix.gemv ~prec mfact e in
  let u = solver.solve w in
  let au = Matrix.gemv ~prec mfact u in
  let eps = Precision.eps prec in
  let ok = ref true in
  for r = 0 to s - 1 do
    let scale = ref (Float.abs w.(r)) in
    for c = 0 to s - 1 do
      scale := !scale +. Float.abs (Matrix.unsafe_get mfact r c *. u.(c))
    done;
    let tol = 1024.0 *. float_of_int s *. eps *. !scale in
    if (not (Float.is_finite au.(r))) || Float.abs (au.(r) -. w.(r)) > tol then
      ok := false
  done;
  !ok

let block_solvers ~pool ~prec ~variant ~policy ~faults ~abft ~recovery blocks =
  let k = Array.length blocks in
  let outcomes = Array.make k Healthy in
  (* [attempt m] factorizes one block via the status API and returns the
     solver closure plus the corruption hook into its factor storage, or
     [None] on breakdown — no exceptions cross the worker boundary. *)
  let attempt (m : Matrix.t) : (block_solver * (Fault.site -> unit)) option =
    (* The implicit-pivoting factorization — identical floats to the
       simulated register kernel (cross-checked by the test suite).  The
       in-place apply replays Lu.solve step for step: permuted gather,
       unit-lower sweep, upper sweep (a clean factorization has no zero
       pivot, so the upper sweep cannot raise). *)
    let lu_solver (m : Matrix.t) =
      let f, inf = Lu.factor_implicit_status ~prec m in
      if inf <> 0 then None
      else
        let s, _ = Matrix.dims m in
        let buf = Array.make s 0.0 in
        let solve_into r st y =
          for k = 0 to s - 1 do
            buf.(k) <- r.(st + f.Lu.perm.(k))
          done;
          Trsv.lower_unit_in_place ~prec f.Lu.lu buf;
          Trsv.upper_in_place ~prec f.Lu.lu buf;
          Array.blit buf 0 y st s
        in
        Some
          ( { solve = (fun rhs -> Lu.solve ~prec f rhs); solve_into },
            matrix_corrupt f.Lu.lu )
    in
    match variant with
    | Scalar ->
      (* Handled at the top level; never reaches here. *)
      assert false
    | Lu -> lu_solver m
    | Gh | Ght ->
      let storage =
        if variant = Ght then Gauss_huard.Transposed else Gauss_huard.Normal
      in
      let f, inf = Gauss_huard.factor_status ~prec ~storage m in
      if inf = 0 then
        let s, _ = Matrix.dims m in
        let solve rhs = Gauss_huard.solve ~prec f rhs in
        Some
          ( { solve; solve_into = into_of_solve ~s solve },
            matrix_corrupt f.Gauss_huard.gh )
      else None
    | Gje_inverse ->
      let inv, inf = Gauss_jordan.invert_status ~prec m in
      if inf = 0 then
        let s, _ = Matrix.dims m in
        let xb = Array.make s 0.0 and yb = Array.make s 0.0 in
        let solve_into r st y =
          Array.blit r st xb 0 s;
          Matrix.gemv_into ~prec inv xb yb;
          Array.blit yb 0 y st s
        in
        Some
          ( { solve = (fun rhs -> Matrix.gemv ~prec inv rhs); solve_into },
            matrix_corrupt inv )
      else None
    | Cholesky ->
      (* SPD fast path.  Cholesky reads only the lower triangle, so a
         nonsymmetric block would be silently mis-factored — check
         symmetry first, and fall back to the pivoted LU when the block is
         nonsymmetric or fails the positivity test (that switch is a
         variant detail, not a breakdown; only a failure of the LU rescue
         counts as one). *)
      let symmetric =
        let n, _ = Matrix.dims m in
        let ok = ref true in
        for r = 0 to n - 1 do
          for c = r + 1 to n - 1 do
            if Matrix.unsafe_get m r c <> Matrix.unsafe_get m c r then
              ok := false
          done
        done;
        !ok
      in
      if not symmetric then lu_solver m
      else
        let f, inf = Cholesky.factor_status ~prec m in
        if inf = 0 then
          let s, _ = Matrix.dims m in
          let buf = Array.make s 0.0 in
          let solve_into r st y =
            Array.blit r st buf 0 s;
            Cholesky.solve_in_place ~prec f buf;
            Array.blit buf 0 y st s
          in
          Some
            ( { solve = (fun rhs -> Cholesky.solve ~prec f rhs); solve_into },
              matrix_corrupt f.Cholesky.l )
        else lu_solver m
  in
  (* Factorize block [i] under the breakdown policy, then let any armed
     fault sites corrupt the factors.  Returns the solver plus the matrix
     actually factored (for the ABFT check), or [None] when the block
     degraded to the identity.  Plan claims are one-shot per (problem,
     step), so calling [build] again — the [Recompute] retry — runs
     clean and converges. *)
  let build i (m : Matrix.t) : (block_solver * Matrix.t) option =
    let factored =
      match attempt m with
      | Some (s, corrupt) -> Some (s, corrupt, m)
      | None -> (
        match policy with
        | Fail | Identity_block ->
          (* Under [Fail] the caller raises after the join (block order,
             so the reported index is deterministic); the solver built
             here is never applied. *)
          outcomes.(i) <- Degraded;
          None
        | Perturb eps -> (
          let m' = perturbed_copy ~eps m in
          match attempt m' with
          | Some (s, corrupt) ->
            outcomes.(i) <- Perturbed;
            Some (s, corrupt, m')
          | None ->
            outcomes.(i) <- Degraded;
            None))
    in
    match factored with
    | None -> None
    | Some (solver, corrupt, mfact) ->
      (match faults with
      | None -> ()
      | Some plan ->
        let s, _ = Matrix.dims m in
        List.iter
          (fun (site : Fault.site) ->
            if Fault.Plan.claim plan ~problem:i ~step:site.Fault.step then begin
              corrupt site;
              Fault.Plan.note_injected plan
            end)
          (Fault.Plan.sites_for plan ~problem:i ~size:s));
      Some (solver, mfact)
  in
  let make i (m : Matrix.t) : block_solver =
    let s, _ = Matrix.dims m in
    match build i m with
    | None -> identity_solver s
    | Some (solver, mfact) ->
      if (not abft) || abft_ok ~prec mfact solver then solver
      else begin
        match recovery with
        | Recompute max_retries ->
          let rec retry left =
            if left <= 0 then begin
              outcomes.(i) <- Corrupt;
              identity_solver s
            end
            else
              match build i m with
              | None -> identity_solver s
              | Some (solver, mfact) ->
                if abft_ok ~prec mfact solver then begin
                  outcomes.(i) <- Recovered;
                  solver
                end
                else retry (left - 1)
          in
          retry max_retries
        | Degrade_to_identity | (Fail : recovery_policy) ->
          (* Under recovery [Fail] the caller raises after the join. *)
          outcomes.(i) <- Corrupt;
          identity_solver s
      end
  in
  let solvers = Pool.parallel_init pool k (fun i -> make i blocks.(i)) in
  (solvers, outcomes)

let create ?(pool = Pool.sequential) ?(prec = Precision.Double) ?(variant = Lu)
    ?(policy = Identity_block) ?faults ?(abft = false)
    ?(recovery = Recompute 1) ?(max_block_size = 32) ?blocking ?obs
    (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Block_jacobi.create: matrix not square";
  let (name, blk, apply, outcomes), setup_seconds =
    Preconditioner.timed (fun () ->
        match variant with
        | Scalar ->
          let d = Csr.diagonal a in
          let outcomes = Array.make n Healthy in
          let inv =
            Array.mapi
              (fun i di ->
                if di = 0.0 then
                  match policy with
                  | Fail | Identity_block ->
                    outcomes.(i) <- Degraded;
                    1.0
                  | Perturb eps ->
                    (* A zero 1x1 block has no scale of its own: shift by
                       [eps] outright (same rule as [perturbed_copy]). *)
                    outcomes.(i) <- Perturbed;
                    1.0 /. eps
                else 1.0 /. di)
              d
          in
          let blk = Supervariable.uniform ~n ~block_size:1 in
          let apply r =
            Array.init n (fun i -> Precision.mul prec inv.(i) r.(i))
          in
          ("jacobi", blk, apply, outcomes)
        | Lu | Gh | Ght | Gje_inverse | Cholesky ->
          let blk =
            match blocking with
            | Some b ->
              if not (Supervariable.validate ~n b) then
                invalid_arg "Block_jacobi.create: invalid blocking";
              b
            | None -> Supervariable.blocking ~max_block_size a
          in
          let k = Array.length blk.Supervariable.starts in
          let blocks =
            Pool.parallel_init pool k (fun i ->
                Csr.extract_block a ~row_start:blk.Supervariable.starts.(i)
                  ~size:blk.Supervariable.sizes.(i))
          in
          let solvers, outcomes =
            block_solvers ~pool ~prec ~variant ~policy ~faults ~abft ~recovery
              blocks
          in
          let apply r =
            let y = Array.make n 0.0 in
            (* Allocation-free hot loop: each block solver reads and
               writes its own segment in place (no Array.sub / result
               copies per apply). *)
            Pool.parallel_for pool ~lo:0 ~hi:k (fun i ->
                solvers.(i).solve_into r blk.Supervariable.starts.(i) y);
            y
          in
          let name =
            Printf.sprintf "block-jacobi(%s,%d)" (variant_name variant)
              max_block_size
          in
          (name, blk, apply, outcomes))
  in
  (* Sequential fold in block order: deterministic lists whatever the
     domain count. *)
  let degraded = ref [] and perturbed = ref [] in
  let recovered = ref [] and corrupt = ref [] in
  for i = Array.length outcomes - 1 downto 0 do
    match outcomes.(i) with
    | Healthy -> ()
    | Degraded -> degraded := i :: !degraded
    | Perturbed -> perturbed := i :: !perturbed
    | Recovered -> recovered := i :: !recovered
    | Corrupt -> corrupt := i :: !corrupt
  done;
  (match (policy, !degraded) with
  | Fail, i :: _ -> raise (Singular_block { block = i; variant })
  | _ -> ());
  (match (recovery, !corrupt) with
  | (Fail : recovery_policy), i :: _ -> raise (Fault_detected { block = i; variant })
  | _ -> ());
  List.iter
    (fun i ->
      Log.warn (fun m -> m "singular diagonal block %d: identity fallback" i))
    !degraded;
  List.iter
    (fun i ->
      Log.info (fun m ->
          m "singular diagonal block %d: factored after diagonal shift" i))
    !perturbed;
  List.iter
    (fun i ->
      Log.info (fun m ->
          m "fault detected in diagonal block %d: recomputed cleanly" i))
    !recovered;
  List.iter
    (fun i ->
      Log.warn (fun m ->
          m "fault detected in diagonal block %d: identity fallback" i))
    !corrupt;
  (* Observability: outcome counters, a block-size histogram, and a
     zero-duration setup span (this CPU path has no modelled kernel time;
     [setup_seconds] is wall-clock and deliberately kept out of the
     trace).  The returned apply closure is wrapped only when a context is
     present, so disabled runs get the original closure untouched. *)
  (if Vblu_obs.Ctx.enabled obs then begin
     let k = Array.length blk.Supervariable.sizes in
     let count = List.length in
     Vblu_obs.Ctx.span_dur obs ~cat:"precond" ~dur:0.0 "bj.setup"
       ~args:
         [
           ("variant", Vblu_obs.Trace.Str (variant_name variant));
           ("blocks", Vblu_obs.Trace.Int k);
           ("degraded", Vblu_obs.Trace.Int (count !degraded));
           ("perturbed", Vblu_obs.Trace.Int (count !perturbed));
           ("recovered", Vblu_obs.Trace.Int (count !recovered));
           ("corrupt", Vblu_obs.Trace.Int (count !corrupt));
         ];
     Vblu_obs.Ctx.incr obs "bj.setup.count" 1.0;
     Vblu_obs.Ctx.incr obs "bj.blocks" (float_of_int k);
     Vblu_obs.Ctx.incr obs "bj.degraded" (float_of_int (count !degraded));
     Vblu_obs.Ctx.incr obs "bj.perturbed" (float_of_int (count !perturbed));
     Vblu_obs.Ctx.incr obs "bj.recovered" (float_of_int (count !recovered));
     Vblu_obs.Ctx.incr obs "bj.corrupt" (float_of_int (count !corrupt));
     Array.iter
       (fun s -> Vblu_obs.Ctx.observe obs "bj.block_size" (float_of_int s))
       blk.Supervariable.sizes
   end);
  let apply =
    if Vblu_obs.Ctx.enabled obs then fun r ->
      Vblu_obs.Ctx.with_span obs ~cat:"precond" "bj.apply" (fun () ->
          Vblu_obs.Ctx.incr obs "bj.apply.count" 1.0;
          apply r)
    else apply
  in
  ( { Preconditioner.name; dim = n; setup_seconds; apply },
    {
      blocking = blk;
      singular_blocks = !degraded;
      (* Residual corruption counts as degradation too: the block ends up
         unpreconditioned exactly like a singular one. *)
      degraded_blocks = List.merge compare !degraded !corrupt;
      perturbed_blocks = !perturbed;
      recovered_blocks = !recovered;
      corrupt_blocks = !corrupt;
    } )

(* ───────────────────── Amortized setup (handles) ─────────────────────

   Time-stepping drivers re-solve a slowly drifting system whose sparsity
   pattern — hence the supervariable blocking — never changes.  A
   [handle] keeps the extracted-value snapshot and per-block factors
   alive across steps so a refresh only refactors the blocks whose
   entries actually moved: the dirty set is collected into ONE
   variable-size [Batched_lu.factor] launch (the paper's kernel, sized by
   the drift rather than the matrix), and clean blocks keep their
   factors, pivots and outcome bitwise.  The batched kernel is
   bit-identical to [Lu.factor_implicit_status] per problem (the repo's
   core parity contract), so [update ~tol:0.] reproduces a fresh setup
   bit for bit.  Handles cover the [Lu] variant — the batched family the
   paper integrates — and take no fault plan: amortization targets the
   fault-free steady state, and a guard-triggered rebuild goes through
   [update ~force_all:true]. *)

module Batch = Vblu_core.Batch
module Batched_lu = Vblu_core.Batched_lu
module Launch = Vblu_simt.Launch
module Counter = Vblu_simt.Counter

type update_stats = {
  dirty_blocks : int list;  (** indices refactored this refresh, ascending. *)
  refactored : int;
  reused : int;
  launches : int;  (** batched LU launches issued (0 when nothing moved). *)
  setup_transactions : int;
  modelled_seconds : float;
}

let no_update_stats =
  {
    dirty_blocks = [];
    refactored = 0;
    reused = 0;
    launches = 0;
    setup_transactions = 0;
    modelled_seconds = 0.0;
  }

type handle = {
  u_pool : Pool.t;
  u_prec : Precision.t;
  u_policy : breakdown_policy;
  u_layout : Batch.layout;
  u_obs : Vblu_obs.Ctx.t option;
  u_blocking : Supervariable.blocking;
  u_row_ptr : int array;  (* pattern fingerprint, frozen at build *)
  u_col_idx : int array;
  u_values : float array;  (* CSR values as of the last refresh (copy) *)
  u_entries : int array array;
      (* per block: CSR value indices inside the diagonal block *)
  u_factors : Lu.factors option array;  (* [None] = identity fallback *)
  u_outcomes : outcome array;
  u_solvers : block_solver array;  (* cells swapped in place by [update] *)
  u_precond : Preconditioner.t;  (* applies through [u_solvers]; stays valid *)
  mutable u_last : update_stats;
}

(* CSR value indices falling inside each diagonal block — computed once
   per handle so every refresh's dirty test is a flat sweep over the
   block's own entries (off-diagonal drift cannot dirty a Jacobi block). *)
let diag_entries blk (a : Csr.t) =
  let starts = blk.Supervariable.starts and sizes = blk.Supervariable.sizes in
  Array.init (Array.length starts) (fun i ->
      let lo = starts.(i) in
      let hi = lo + sizes.(i) in
      let acc = ref [] in
      for r = hi - 1 downto lo do
        for p = a.Csr.row_ptr.(r + 1) - 1 downto a.Csr.row_ptr.(r) do
          let c = a.Csr.col_idx.(p) in
          if c >= lo && c < hi then acc := p :: !acc
        done
      done;
      Array.of_list !acc)

(* Dirty test for one block.  [tol = 0.] compares bit patterns — any
   changed representation (including ±0 flips and NaN payloads) must
   refactor for the fresh-setup bit-identity contract to hold; a positive
   tolerance compares max |Δa|, with a non-finite delta always dirty. *)
let block_dirty ~tol old_vals new_vals entries =
  if tol <= 0.0 then
    Array.exists
      (fun p ->
        not
          (Int64.equal
             (Int64.bits_of_float old_vals.(p))
             (Int64.bits_of_float new_vals.(p))))
      entries
  else begin
    let delta = ref 0.0 in
    Array.iter
      (fun p ->
        let d = Float.abs (new_vals.(p) -. old_vals.(p)) in
        if Float.is_nan d then delta := Float.infinity
        else if d > !delta then delta := d)
      entries;
    !delta > tol
  end

(* The same in-place apply closure [lu_solver] builds, reconstructed from
   batched factors (identical floats by the kernel/reference parity). *)
let solver_of_factors ~prec s (f : Lu.factors) =
  let buf = Array.make s 0.0 in
  let solve_into r st y =
    for k = 0 to s - 1 do
      buf.(k) <- r.(st + f.Lu.perm.(k))
    done;
    Trsv.lower_unit_in_place ~prec f.Lu.lu buf;
    Trsv.upper_in_place ~prec f.Lu.lu buf;
    Array.blit buf 0 y st s
  in
  { solve = (fun rhs -> Lu.solve ~prec f rhs); solve_into }

(* Refactor the [dirty] blocks of [h] from matrix [a]: one batched LU
   launch over the dirty set, plus one rescue launch over the perturbed
   copies of any broken blocks under [Perturb].  Raises [Singular_block]
   under [Fail] (smallest index, after the launch completes). *)
let handle_refactor h (a : Csr.t) (dirty : int array) : update_stats =
  let blk = h.u_blocking in
  let starts = blk.Supervariable.starts and sizes = blk.Supervariable.sizes in
  let k = Array.length starts in
  let nd = Array.length dirty in
  let launches = ref 0 and transactions = ref 0 and modelled = ref 0.0 in
  let note (st : Launch.stats) =
    incr launches;
    transactions := !transactions + Counter.transactions st.Launch.total;
    modelled := !modelled +. (st.Launch.time_us *. 1e-6)
  in
  if nd > 0 then begin
    let mats =
      Array.map
        (fun i -> Csr.extract_block a ~row_start:starts.(i) ~size:sizes.(i))
        dirty
    in
    let res =
      Batched_lu.factor ~pool:h.u_pool ~prec:h.u_prec ?obs:h.u_obs
        (Batch.of_matrices ~layout:h.u_layout mats)
    in
    note res.Batched_lu.stats;
    (* Rescue pass: all broken blocks' diagonal-shifted copies share one
       follow-up launch, mirroring the fresh path's per-block retry. *)
    let rescued = Hashtbl.create 8 in
    (match h.u_policy with
    | Perturb eps ->
      let broken = ref [] in
      for p = nd - 1 downto 0 do
        if res.Batched_lu.info.(p) <> 0 then broken := p :: !broken
      done;
      if !broken <> [] then begin
        let broken = Array.of_list !broken in
        let pmats = Array.map (fun p -> perturbed_copy ~eps mats.(p)) broken in
        let rres =
          Batched_lu.factor ~pool:h.u_pool ~prec:h.u_prec ?obs:h.u_obs
            (Batch.of_matrices ~layout:h.u_layout pmats)
        in
        note rres.Batched_lu.stats;
        Array.iteri
          (fun q p ->
            if rres.Batched_lu.info.(q) = 0 then
              Hashtbl.replace rescued p
                {
                  Lu.lu = Batch.get_matrix rres.Batched_lu.factors q;
                  perm = rres.Batched_lu.pivots.(q);
                })
          broken
      end
    | Fail | Identity_block -> ());
    for p = 0 to nd - 1 do
      let i = dirty.(p) in
      let s = sizes.(i) in
      if res.Batched_lu.info.(p) = 0 then begin
        let f =
          {
            Lu.lu = Batch.get_matrix res.Batched_lu.factors p;
            perm = res.Batched_lu.pivots.(p);
          }
        in
        h.u_factors.(i) <- Some f;
        h.u_solvers.(i) <- solver_of_factors ~prec:h.u_prec s f;
        h.u_outcomes.(i) <- Healthy
      end
      else
        match Hashtbl.find_opt rescued p with
        | Some f ->
          h.u_factors.(i) <- Some f;
          h.u_solvers.(i) <- solver_of_factors ~prec:h.u_prec s f;
          h.u_outcomes.(i) <- Perturbed
        | None ->
          h.u_factors.(i) <- None;
          h.u_solvers.(i) <- identity_solver s;
          h.u_outcomes.(i) <- Degraded
    done;
    (match h.u_policy with
    | Fail ->
      Array.iter
        (fun i ->
          if h.u_outcomes.(i) = Degraded then
            raise (Singular_block { block = i; variant = Lu }))
        dirty
    | Identity_block | Perturb _ -> ())
  end;
  {
    dirty_blocks = Array.to_list dirty;
    refactored = nd;
    reused = k - nd;
    launches = !launches;
    setup_transactions = !transactions;
    modelled_seconds = !modelled;
  }

let handle ?(pool = Pool.sequential) ?(prec = Precision.Double)
    ?(policy = Identity_block) ?(layout = Batch.Blocked)
    ?(max_block_size = 32) ?blocking ?obs (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Block_jacobi.handle: matrix not square";
  let blk =
    match blocking with
    | Some b ->
      if not (Supervariable.validate ~n b) then
        invalid_arg "Block_jacobi.handle: invalid blocking";
      b
    | None -> Supervariable.blocking ~max_block_size a
  in
  let starts = blk.Supervariable.starts and sizes = blk.Supervariable.sizes in
  let k = Array.length starts in
  let solvers = Array.init k (fun i -> identity_solver sizes.(i)) in
  let apply_into r =
    let y = Array.make n 0.0 in
    Pool.parallel_for pool ~lo:0 ~hi:k (fun i ->
        solvers.(i).solve_into r starts.(i) y);
    y
  in
  let apply =
    if Vblu_obs.Ctx.enabled obs then fun r ->
      Vblu_obs.Ctx.with_span obs ~cat:"precond" "bj.apply" (fun () ->
          Vblu_obs.Ctx.incr obs "bj.apply.count" 1.0;
          apply_into r)
    else apply_into
  in
  let h, setup_seconds =
    Preconditioner.timed (fun () ->
        let h =
          {
            u_pool = pool;
            u_prec = prec;
            u_policy = policy;
            u_layout = layout;
            u_obs = obs;
            u_blocking = blk;
            u_row_ptr = Array.copy a.Csr.row_ptr;
            u_col_idx = Array.copy a.Csr.col_idx;
            u_values = Array.copy a.Csr.values;
            u_entries = diag_entries blk a;
            u_factors = Array.make k None;
            u_outcomes = Array.make k Healthy;
            u_solvers = solvers;
            u_precond = Preconditioner.identity 0 (* replaced below *);
            u_last = no_update_stats;
          }
        in
        let stats = handle_refactor h a (Array.init k Fun.id) in
        h.u_last <- stats;
        Vblu_obs.Setup_metrics.record obs ~family:"jacobi"
          ~fresh:stats.refactored ~reused:0 ~dirty:0;
        h)
  in
  let name = Printf.sprintf "block-jacobi(lu,%d)" max_block_size in
  { h with u_precond = { Preconditioner.name; dim = n; setup_seconds; apply } }

let update ?(tol = 0.0) ?(force_all = false) h (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols || n <> h.u_precond.Preconditioner.dim then
    invalid_arg "Block_jacobi.update: dimension mismatch";
  if
    not
      (a.Csr.row_ptr = h.u_row_ptr && a.Csr.col_idx = h.u_col_idx)
  then
    invalid_arg
      "Block_jacobi.update: sparsity pattern changed (build a new handle)";
  let k = Array.length h.u_blocking.Supervariable.starts in
  let dirty =
    if force_all then Array.init k Fun.id
    else begin
      let acc = ref [] in
      for i = k - 1 downto 0 do
        if block_dirty ~tol h.u_values a.Csr.values h.u_entries.(i) then
          acc := i :: !acc
      done;
      Array.of_list !acc
    end
  in
  let stats = handle_refactor h a dirty in
  Array.blit a.Csr.values 0 h.u_values 0 (Array.length h.u_values);
  h.u_last <- stats;
  Vblu_obs.Setup_metrics.record h.u_obs ~family:"jacobi"
    ~fresh:stats.refactored ~reused:stats.reused ~dirty:stats.refactored;
  stats

let precond h = h.u_precond
let handle_blocking h = h.u_blocking
let last_update h = h.u_last
let handle_factors h = h.u_factors

let handle_info h =
  let degraded = ref [] and perturbed = ref [] in
  for i = Array.length h.u_outcomes - 1 downto 0 do
    match h.u_outcomes.(i) with
    | Healthy | Recovered | Corrupt -> ()
    | Degraded -> degraded := i :: !degraded
    | Perturbed -> perturbed := i :: !perturbed
  done;
  {
    blocking = h.u_blocking;
    singular_blocks = !degraded;
    degraded_blocks = !degraded;
    perturbed_blocks = !perturbed;
    recovered_blocks = [];
    corrupt_blocks = [];
  }
