open Vblu_smallblas
open Vblu_sparse

type factors = {
  pattern : Csr.t;  (** original matrix (for the index structure). *)
  values : float array;  (** factored values on the same pattern. *)
  diag_pos : int array;  (** position of (i,i) within [values]. *)
}

let values f = f.values

let factorize ?(prec = Precision.Double)
    ?(policy = (Block_jacobi.Identity_block : Block_jacobi.breakdown_policy))
    (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Ilu0.factorize: matrix not square";
  let diag_pos = Array.make n (-1) in
  for i = 0 to n - 1 do
    for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
      if a.Csr.col_idx.(p) = i then diag_pos.(i) <- p
    done;
    if diag_pos.(i) < 0 then
      invalid_arg "Ilu0.factorize: structurally missing diagonal entry"
  done;
  let v = Array.copy a.Csr.values in
  (* IKJ elimination restricted to the pattern.  [where.(c)] maps a column
     to its position in the current row, -1 elsewhere.  The trailing
     update multiplies and subtracts with separate roundings — the scalar
     shadow of the block path's GEMM wave (alpha = -1, beta = 1), so a
     size-1-block Block_ilu0 reproduces these values bitwise.  A row's
     pivot is final once its own elimination completes (later rows never
     write into it), so breakdown is decided there, like the block path
     decides at the row's elimination wave. *)
  let where = Array.make n (-1) in
  let info = ref 0 in
  let frozen = ref false in
  let i = ref 0 in
  while (not !frozen) && !i < n do
    let row_lo = a.Csr.row_ptr.(!i) and row_hi = a.Csr.row_ptr.(!i + 1) in
    for p = row_lo to row_hi - 1 do
      where.(a.Csr.col_idx.(p)) <- p
    done;
    for p = row_lo to row_hi - 1 do
      let k = a.Csr.col_idx.(p) in
      if k < !i then begin
        (* Earlier breakdown rows were already patched (or froze the
           sweep), so the pivot here is nonzero by construction. *)
        v.(p) <- Precision.div prec v.(p) v.(diag_pos.(k));
        let lik = v.(p) in
        (* Update the intersection of row i's pattern with row k's tail. *)
        for q = diag_pos.(k) + 1 to a.Csr.row_ptr.(k + 1) - 1 do
          let j = a.Csr.col_idx.(q) in
          let pj = where.(j) in
          if pj >= 0 then
            v.(pj) <- Precision.sub prec v.(pj) (Precision.mul prec lik v.(q))
        done
      end
    done;
    if v.(diag_pos.(!i)) = 0.0 then begin
      if !info = 0 then info := !i + 1;
      match policy with
      | Block_jacobi.Identity_block -> v.(diag_pos.(!i)) <- 1.0
      | Block_jacobi.Perturb eps ->
        (* A zero pivot means the 1x1 breakdown "block" is all zero, so
           the [eps * scale] shift of [Block_jacobi.perturbed_copy]
           reduces to [eps] ([scale = 1.0]). *)
        v.(diag_pos.(!i)) <- eps
      | Block_jacobi.Fail -> frozen := true
    end;
    for p = row_lo to row_hi - 1 do
      where.(a.Csr.col_idx.(p)) <- -1
    done;
    incr i
  done;
  ({ pattern = a; values = v; diag_pos }, !info)

let solve ?(prec = Precision.Double) f b =
  let a = f.pattern in
  let n, _ = Csr.dims a in
  if Array.length b <> n then invalid_arg "Ilu0.solve: dimension mismatch";
  let x = Array.copy b in
  (* Forward: unit-lower sweep over the strictly-lower entries
     (multiply-then-subtract, like the level-scheduled GEMM waves). *)
  for i = 0 to n - 1 do
    let acc = ref x.(i) in
    for p = a.Csr.row_ptr.(i) to f.diag_pos.(i) - 1 do
      acc :=
        Precision.sub prec !acc
          (Precision.mul prec f.values.(p) x.(a.Csr.col_idx.(p)))
    done;
    x.(i) <- !acc
  done;
  (* Backward: upper sweep including the diagonal. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for p = f.diag_pos.(i) + 1 to a.Csr.row_ptr.(i + 1) - 1 do
      acc :=
        Precision.sub prec !acc
          (Precision.mul prec f.values.(p) x.(a.Csr.col_idx.(p)))
    done;
    x.(i) <- Precision.div prec !acc f.values.(f.diag_pos.(i))
  done;
  x

let preconditioner ?(prec = Precision.Double)
    ?(policy = (Block_jacobi.Identity_block : Block_jacobi.breakdown_policy))
    (a : Csr.t) =
  let (f, info), setup_seconds =
    Preconditioner.timed (fun () -> factorize ~prec ~policy a)
  in
  (if info <> 0 then
     match policy with
     | Block_jacobi.Fail -> raise (Error.Singular (info - 1))
     | _ -> ());
  let n, _ = Csr.dims a in
  {
    Preconditioner.name = "ilu0";
    dim = n;
    setup_seconds;
    apply = (fun r -> solve ~prec f r);
  }
