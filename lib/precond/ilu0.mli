(** ILU(0): incomplete LU factorization with zero fill-in.

    The classic global preconditioner [Saad 2003, ch. 10] the paper's
    introduction positions block-Jacobi against: stronger per iteration
    (it couples the whole matrix), but inherently sequential in both setup
    and application.  {!Block_ilu0} is its batched, level-scheduled block
    generalization; this scalar version is kept as the comparison baseline
    and as the size-1-block reference the block path must reproduce
    bitwise.

    Numerics contract: the pattern-restricted update
    [a_ij := a_ij - l_ik * a_kj] rounds the product and the subtraction
    {e separately} (multiply-then-subtract), matching the batched GEMM
    wave the block path issues for the same update — so a block-ILU(0)
    with size-1 blocks reproduces these factors bit for bit in either
    precision.

    The factorization keeps exactly the sparsity pattern of [A] (no
    fill-in) and requires structurally present diagonal entries.  Zero
    pivots never raise: they are reported LAPACK-style through the [info]
    status and handled by the same {!Block_jacobi.breakdown_policy} the
    block preconditioners use. *)

open Vblu_smallblas
open Vblu_sparse

type factors

val factorize :
  ?prec:Precision.t ->
  ?policy:Block_jacobi.breakdown_policy ->
  Csr.t ->
  factors * int
(** IKJ-variant ILU(0).  The second component is the LAPACK-style status:
    [0] when every pivot was nonzero, [k + 1] when the first zero pivot
    appeared on (0-based) row [k].  What happens to a zero pivot is the
    [policy] (default {!Block_jacobi.Identity_block}, matching
    {!Block_jacobi.create}):

    - [Identity_block]: the pivot is replaced by [1.0] — that row of the
      factorization acts as the identity (the size-1 instance of the
      block identity fallback);
    - [Perturb eps]: the pivot is replaced by [eps] (the size-1 instance
      of the [eps * scale] diagonal shift — a 1x1 breakdown block is all
      zero, so [scale = 1.0]);
    - [Fail]: elimination stops at the breakdown row; the factors hold
      the frozen partial state (rows [0 .. k-1] final), like the batched
      kernels' non-raising breakdown convention.  Callers wanting the old
      exception behaviour test [info] themselves.

    @raise Invalid_argument if the matrix is not square or a diagonal
    entry is structurally missing. *)

val solve : ?prec:Precision.t -> factors -> Vector.t -> Vector.t
(** Apply [((LU)⁻¹ ≈ A⁻¹)]: one sparse forward and one sparse backward
    substitution (multiply-then-subtract sweeps, diagonal division last —
    the scalar shadow of the block path's GEMM + TRSV waves). *)

val values : factors -> float array
(** The factored values on the matrix pattern (CSR entry order) — for
    tests that compare factorizations bitwise. *)

val preconditioner :
  ?prec:Precision.t ->
  ?policy:Block_jacobi.breakdown_policy ->
  Csr.t ->
  Preconditioner.t
(** Package as a {!Preconditioner.t} (setup time measured like the
    block-Jacobi variants).
    @raise Vblu_smallblas.Error.Singular under the [Fail] policy when the
    factorization broke down ([info - 1] is the offending row). *)
