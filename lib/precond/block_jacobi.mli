(** The factorization-based block-Jacobi preconditioner — the paper's
    target application (Sections II-A, III-C, IV-D).

    Setup: partition the unknowns with supervariable blocking, extract the
    dense diagonal blocks from the CSR matrix, and factorize the whole
    collection with a batched routine.  Application (once per Krylov
    iteration): solve the small triangular systems block by block.

    The [variant] selects the batched factorization the paper compares:

    - {!Lu}: the small-size batched LU with implicit partial pivoting plus
      batched eager triangular solves — the paper's contribution;
    - {!Gh} / {!Ght}: Gauss-Huard with column pivoting (normal and
      transpose-friendly storage);
    - {!Gje_inverse}: the inversion-based variant — Gauss-Jordan explicit
      inverses at setup, dense GEMV at application;
    - {!Cholesky}: the paper's future-work variant for SPD systems — LLᵀ
      factors at half the LU cost; blocks that fail the positivity test
      fall back to pivoted LU;
    - {!Scalar}: plain (point) Jacobi — Table I's leftmost baseline.

    All variants run on the CPU reference path (the numerics are identical
    to the simulated kernels, which the test suite cross-checks).  Block
    factorizations use the non-raising status API, so a singular diagonal
    block never aborts the parallel setup — what happens to it is decided
    by the {!breakdown_policy}, and the affected indices are reported in
    {!info}. *)

open Vblu_smallblas
open Vblu_sparse
open Vblu_par
open Vblu_fault

type variant =
  | Lu
  | Gh
  | Ght
  | Gje_inverse
  | Cholesky
  | Scalar

val variant_name : variant -> string

(** What to do with a diagonal block whose ABFT check fails after setup
    (only reachable with [~abft:true]):

    - [Recompute n]: re-factorize the block, up to [n] times — fault-plan
      claims are one-shot per (problem, step), so the retry runs clean
      and restores bit-identical factors; a block whose retries are
      exhausted degrades to the identity and is reported corrupt;
    - {!Degrade_to_identity}: give up immediately — identity on that
      block, reported corrupt;
    - [Fail]: raise {!Fault_detected} (after the parallel setup joins, so
      the reported block index is the smallest and deterministic).

    Declared before {!breakdown_policy} so that the unqualified [Fail]
    constructor keeps meaning "breakdown" everywhere else. *)
type recovery_policy = Recompute of int | Degrade_to_identity | Fail

val recovery_name : recovery_policy -> string
(** ["recompute:N"], ["degrade"], or ["fail"] — the spelling the CLI
    accepts. *)

(** What to do with a diagonal block whose factorization breaks down:

    - {!Fail}: raise {!Singular_block} (after the parallel setup joins, so
      the reported block index is the smallest one and deterministic);
    - {!Identity_block} (the default): use the identity on that block —
      the preconditioner stays well-defined, the block is merely not
      preconditioned (mirrors MAGMA-sparse);
    - [Perturb eps]: retry after adding [eps * scale] to the block's
      diagonal ([scale] = largest absolute entry of the block, [1.0] if
      the block is all zero); if the shifted block still breaks down, fall
      back to the identity as in {!Identity_block}. *)
type breakdown_policy = Fail | Identity_block | Perturb of float

val policy_name : breakdown_policy -> string
(** ["fail"], ["identity"], or ["perturb:EPS"] — the spelling the CLI
    accepts. *)

val perturbed_copy : eps:float -> Matrix.t -> Matrix.t
(** [m] with [eps * scale] added to every diagonal entry, where [scale] is
    the largest absolute entry of the block ([1.0] for an all-zero block)
    — the diagonal-shift rescue behind the [Perturb] policy, shared with
    {!Block_ilu0} so both families patch broken blocks identically. *)

exception Singular_block of { block : int; variant : variant }
(** Raised by {!create} under the {!Fail} policy for the first (smallest
    index) block whose factorization broke down. *)

exception Fault_detected of { block : int; variant : variant }
(** Raised by {!create} under recovery policy [Fail] for the first
    (smallest index) block whose ABFT check failed. *)

type info = {
  blocking : Supervariable.blocking;
  singular_blocks : int list;
      (** back-compatible alias of the singular part of
          [degraded_blocks]. *)
  degraded_blocks : int list;
      (** indices that fell back to the identity, ascending — singular
          blocks plus blocks left corrupt after exhausted recovery. *)
  perturbed_blocks : int list;
      (** indices salvaged by a [Perturb] diagonal shift, ascending. *)
  recovered_blocks : int list;
      (** indices whose detected fault was repaired by a [Recompute]
          retry, ascending. *)
  corrupt_blocks : int list;
      (** indices whose ABFT check still failed after recovery (identity
          fallback), ascending; also counted in [degraded_blocks]. *)
}

val create :
  ?pool:Pool.t ->
  ?prec:Precision.t ->
  ?variant:variant ->
  ?policy:breakdown_policy ->
  ?faults:Fault.Plan.t ->
  ?abft:bool ->
  ?recovery:recovery_policy ->
  ?max_block_size:int ->
  ?blocking:Supervariable.blocking ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Preconditioner.t * info
(** [create a] builds the preconditioner.  [blocking] overrides the
    supervariable partition (e.g. {!Supervariable.uniform} for the kernel
    studies); [max_block_size] (default 32) is the supervariable
    agglomeration bound otherwise; [policy] (default {!Identity_block})
    decides what happens to singular blocks.
    [Preconditioner.t.setup_seconds] covers blocking + extraction +
    factorization.

    [?obs] records setup into an observability context — a zero-duration
    ["bj.setup"] span (the CPU reference path carries no modelled kernel
    time; wall-clock never enters a trace) with block/outcome counts as
    args, per-outcome registry counters and a block-size histogram — and
    wraps the returned [apply] so every application records a ["bj.apply"]
    span and bumps [bj.apply.count].  Absent means no recording and a
    closure identical to the uninstrumented one.

    [?faults] lets each claimed site corrupt one entry of the affected
    block's stored factors after setup (claims are one-shot, keyed by
    block index, so injection is deterministic across domain counts; the
    {!Scalar} variant carries no factor storage and ignores the plan).
    [~abft:true] verifies every factored block by a residual check
    against the matrix actually factored and applies [?recovery]
    (default [Recompute 1]) to the blocks that fail.  With both left at
    their defaults the setup is bit-identical to the unprotected path.
    @raise Invalid_argument if [a] is not square or the blocking invalid.
    @raise Singular_block under the {!Fail} breakdown policy.
    @raise Fault_detected under the [Fail] recovery policy. *)

(** {1 Amortized setup}

    Time-stepping drivers re-solve a drifting system whose sparsity
    pattern — hence the supervariable blocking — is fixed.  A {!handle}
    keeps the value snapshot and per-block factors alive across steps so
    {!update} only refactors the blocks whose entries moved: the dirty
    set (per-block max |Δa| against a tolerance) is gathered into one
    small variable-size batched-LU launch, and clean blocks keep their
    factors, pivots and outcome bitwise.  Because the batched kernel is
    bit-identical to the CPU reference factorization per problem,
    [update ~tol:0.] is bit-identical to a fresh setup.  Handles cover
    the {!Lu} variant and take no fault plan — amortization targets the
    fault-free steady state. *)

type handle

type update_stats = {
  dirty_blocks : int list;
      (** indices refactored by this refresh, ascending. *)
  refactored : int;  (** [List.length dirty_blocks]. *)
  reused : int;  (** blocks whose factors were reused bitwise. *)
  launches : int;
      (** batched LU launches issued: 0 when nothing moved, 1 for a
          clean refresh, 2 when a [Perturb] rescue pass ran. *)
  setup_transactions : int;
      (** modelled 32-byte global-memory transactions of those
          launches. *)
  modelled_seconds : float;  (** modelled kernel time of those launches. *)
}

val handle :
  ?pool:Pool.t ->
  ?prec:Precision.t ->
  ?policy:breakdown_policy ->
  ?layout:Vblu_core.Batch.layout ->
  ?max_block_size:int ->
  ?blocking:Supervariable.blocking ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  handle
(** [handle a] builds a reusable block-Jacobi setup: every diagonal block
    is factored through one variable-size batched LU launch (bit-identical
    to {!create}[ ~variant:Lu] by the kernel/reference parity contract).
    The returned {!precond} stays valid across {!update} calls — refreshes
    swap the per-block solvers in place.
    @raise Invalid_argument if [a] is not square or the blocking invalid.
    @raise Singular_block under the {!Fail} breakdown policy. *)

val update : ?tol:float -> ?force_all:bool -> handle -> Csr.t -> update_stats
(** [update h a] re-extracts values from [a] (same pattern as the matrix
    the handle was built from) and refactors only the dirty blocks — the
    blocks whose diagonal-block entries changed by more than [tol]
    (default [0.], meaning any bitwise change) — through one batched LU
    launch sized by the drift.  [~force_all:true] refactors every block
    regardless of the tolerance (the full-refresh baseline; also the
    guard-rebuild path).  With [tol = 0.] the handle's factors, pivots
    and outcomes afterwards are bit-identical to a fresh {!handle} on
    [a].  Records [precond.setup.*] metrics when the handle carries an
    observability context.
    @raise Invalid_argument on a dimension or sparsity-pattern mismatch.
    @raise Singular_block under the {!Fail} breakdown policy when a dirty
    block breaks down (the handle is left partially refreshed). *)

val precond : handle -> Preconditioner.t
(** The live preconditioner; [setup_seconds] covers the initial build. *)

val handle_blocking : handle -> Supervariable.blocking
val last_update : handle -> update_stats
(** Stats of the most recent build or refresh. *)

val handle_info : handle -> info
(** Outcome lists rebuilt from the current per-block state (recovery
    outcomes are impossible on a handle: no faults, no ABFT). *)

val handle_factors : handle -> Lu.factors option array
(** Per-block factors ([None] = identity fallback) — read-only; exposed
    so tests can assert bitwise reuse and fresh/update identity. *)
