(** Drivers for the kernel-performance figures (4–7) and the kernel-level
    ablations.

    All of these run the batched routines through the simulator in
    [Sampled] mode (one functional warp per size class, counters scaled by
    the class population — see {!Vblu_simt.Sampling}) and print the same
    series the paper plots.  The expected qualitative shapes are recorded
    in EXPERIMENTS.md.

    Every driver takes an optional [?pool] ({!Vblu_par.Pool.t}); the rows
    of each sweep are independent (fixed per-row seeds) and are mapped
    over the pool's domains, so the printed numbers are identical for any
    domain count. *)

val fig4 :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout ->
  Format.formatter -> unit
(** Figure 4: GFLOPS of batched factorization (small-size LU, GH, GH-T,
    cuBLAS model) vs batch size, for block sizes 16 and 32, SP and DP.
    [?layout] (default [Blocked]) selects the batch storage layout the
    sweep runs in; the figure and ablation drivers all accept it the same
    way. *)

val fig4_series :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout -> unit ->
  Report.series list
(** The raw data behind {!fig4} — for CSV export ({!Report.csv_of_series})
    and for the shape-assertion tests.  When [?obs] is supplied, every
    kernel launch of the sweep is recorded into it; rows run in one child
    context each and are grafted back in row order after the parallel
    join, so the trace and metrics are identical for any domain count. *)

val fig5_series :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout -> unit ->
  Report.series list

val fig6_series :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout -> unit ->
  Report.series list

val fig7_series :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout -> unit ->
  Report.series list

val bench_points :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t -> unit ->
  Vblu_obs.Artifact.entry list
(** One {!Vblu_obs.Artifact.entry} per (kernel, precision, size, batch)
    point of a fixed sweep: factorization ([getrf.lu] / [getrf.gh] /
    [getrf.ght] / [getrf.cublas]) and triangular solve ([trsv.*]) at
    sizes 8–32 and batches 5,000 / 40,000 (sizes 16/32, batch 5,000 when
    [quick]).  Deterministic for any [?pool]. *)

val bench_artifact :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  target:string -> unit -> Vblu_obs.Artifact.t
(** {!bench_points} wrapped into a schema-versioned artifact (see
    {!Vblu_obs.Artifact.make}; [config] is ["p100"], [domains] from the
    pool). *)

val fig5 :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout ->
  Format.formatter -> unit
(** Figure 5: factorization GFLOPS vs matrix size (2…32) at batch
    40,000, SP and DP. *)

val fig6 :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout ->
  Format.formatter -> unit
(** Figure 6: triangular-solve GFLOPS vs batch size, sizes 16 and 32. *)

val fig7 :
  ?quick:bool -> ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t ->
  ?layout:Vblu_core.Batch.layout ->
  Format.formatter -> unit
(** Figure 7: triangular-solve GFLOPS vs matrix size at batch 40,000. *)

val ablation_pivot : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** Implicit vs explicit vs no pivoting in the register LU kernel
    (Section III-A's motivation for implicit pivoting). *)

val ablation_trsv : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** Eager (AXPY) vs lazy (DOT) triangular-solve variants
    (Section III-B / Figure 2). *)

val ablation_extraction : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** Shared-memory vs row-per-thread extraction on a balanced (Laplacian)
    and an unbalanced (circuit-like) matrix (Section III-C / Figure 3). *)

val ablation_cholesky : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** The paper's future-work Cholesky kernel vs the pivoted LU on SPD
    batches: factorization and solve throughput by block size. *)

val abft_overhead : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** The cost of soft-error detection: GFLOPS of the ABFT-protected LU and
    eager TRSV kernels against their unprotected twins per block size
    (both charge the same useful flops, so the gap is exactly the
    checksum work — the encode/verify passes for LU, the factor re-read
    for TRSV). *)

val layout_sweep : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** Blocked vs interleaved (SoA) storage: gmem transactions and modelled
    GFLOPS of the strided kernels (LU, eager/lazy TRSV, GEMM) over uniform
    and variable size mixes, both layouts on bitwise-identical data —
    Exact mode, so the coalescing model sees every warp's real addresses.
    The expected shape (interleaved strictly fewer transactions, widening
    on variable sizes) is recorded in EXPERIMENTS.md. *)

val ablation_variable_size : ?quick:bool -> ?pool:Vblu_par.Pool.t -> Format.formatter -> unit
(** The scenario the paper's title is about and no figure isolates:
    batches whose block-size distribution comes from actual supervariable
    blockings of the workload suite.  Compares the variable-size LU/GH
    kernels on the real size mix against (a) each other and (b) the
    fixed-size strategy a cuBLAS-style API forces (padding every block to
    the batch maximum). *)
