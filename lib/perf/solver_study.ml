open Vblu_workloads
open Vblu_precond
open Vblu_krylov
module Pool = Vblu_par.Pool

type run = {
  entry : Suite.entry;
  variant : Block_jacobi.variant;
  bound : int;
  converged : bool;
  iterations : int;
  setup_seconds : float;
  solve_seconds : float;
  blocks : int;
  degraded : int;
  perturbed : int;
  recovered : int;
  corrupt : int;
}

type t = {
  runs : run list;
  bounds : int list;
}

let bounds = [ 8; 12; 16; 24; 32 ]

let one_run ~policy ?faults ?(abft = false) ?recovery ?obs entry a b variant
    bound =
  let precond, info =
    Block_jacobi.create ~variant ~policy ?faults ~abft ?recovery ?obs
      ~max_block_size:bound a
  in
  (* With ABFT active the solve gets the matching soft-error guard: a
     refresh rebuilds the preconditioner cleanly (fault-plan claims are
     one-shot, so the rebuild is uncorrupted). *)
  let refresh_precond =
    if abft then
      Some
        (fun () ->
          fst
            (Block_jacobi.create ~variant ~policy ?faults ~abft ?recovery
               ~max_block_size:bound a))
    else None
  in
  let _, stats = Idr.solve ~precond ?refresh_precond ?obs ~s:4 a b in
  {
    entry;
    variant;
    bound;
    converged = Solver.converged stats;
    iterations = stats.Solver.iterations;
    setup_seconds = precond.Preconditioner.setup_seconds;
    solve_seconds = stats.Solver.solve_seconds;
    blocks = Array.length info.Block_jacobi.blocking.Supervariable.starts;
    degraded = List.length info.Block_jacobi.degraded_blocks;
    perturbed = List.length info.Block_jacobi.perturbed_blocks;
    recovered = List.length info.Block_jacobi.recovered_blocks;
    corrupt = List.length info.Block_jacobi.corrupt_blocks;
  }

let run_suite ?(quick = false) ?(pool = Pool.sequential)
    ?(policy = Block_jacobi.Identity_block) ?faults ?(abft = false) ?recovery
    ?obs ?(progress = fun _ -> ()) () =
  let entries =
    if quick then List.filteri (fun i _ -> i < 12) Suite.all else Suite.all
  in
  let swept_bounds = if quick then [ 8; 32 ] else bounds in
  (* One task per suite matrix, mapped over the pool's domains.  Numerics
     are deterministic per entry, and parallel_map preserves entry order,
     so iteration counts and run ordering are identical for any domain
     count — only the wall-clock fields vary. *)
  let per_entry obs entry =
    let a = Suite.matrix entry in
    let n, _ = Vblu_sparse.Csr.dims a in
    let b = Array.make n 1.0 in
    progress
      (Printf.sprintf "%2d/%d %s (n=%d, nnz=%d)" entry.Suite.id
         (List.length entries) entry.Suite.name n (Vblu_sparse.Csr.nnz a));
    let run = one_run ~policy ?faults ~abft ?recovery ?obs entry a b in
    let scalar = run Block_jacobi.Scalar 1 in
    let swept =
      List.concat_map
        (fun bound ->
          [ run Block_jacobi.Lu bound; run Block_jacobi.Gh bound ])
        swept_bounds
    in
    let extra = [ run Block_jacobi.Ght 32; run Block_jacobi.Gje_inverse 32 ] in
    (scalar :: swept) @ extra
  in
  (* One obs child context per matrix, grafted back in entry order after
     the join — traces and metrics are identical for any domain count. *)
  let entries_arr = Array.of_list entries in
  let n_entries = Array.length entries_arr in
  let subs = Array.init n_entries (fun _ -> Vblu_obs.Ctx.sub obs) in
  let per_entry_runs =
    Pool.parallel_init pool n_entries (fun i -> per_entry subs.(i) entries_arr.(i))
  in
  Array.iter (fun child -> Vblu_obs.Ctx.graft ~into:obs child) subs;
  let runs = List.concat (Array.to_list per_entry_runs) in
  { runs; bounds = swept_bounds }

let find t entry variant bound =
  List.find_opt
    (fun r ->
      r.entry.Suite.id = entry.Suite.id && r.variant = variant && r.bound = bound)
    t.runs

let total_seconds r = r.setup_seconds +. r.solve_seconds
