open Vblu_workloads
open Vblu_precond
open Vblu_krylov
module Pool = Vblu_par.Pool
module Batch = Vblu_core.Batch
module Ctx = Vblu_obs.Ctx

type family = Jacobi | Ilu0 | Ras

let family_label = function
  | Jacobi -> "block-jacobi"
  | Ilu0 -> "block-ilu0"
  | Ras -> "ras-ilu0"

let family_of_string = function
  | "block-jacobi" | "jacobi" -> Ok Jacobi
  | "block-ilu0" | "ilu0" -> Ok Ilu0
  | "ras-ilu0" | "ras" -> Ok Ras
  | s -> Error (Printf.sprintf "unknown preconditioner family %S" s)

type run = {
  entry : Suite.entry;
  family : family;
  converged : bool;
  iterations : int;
  setup_seconds : float;
  solve_seconds : float;
  blocks : int;
  degraded : int;
  lower_levels : int;
  upper_levels : int;
  apply_waves : int;
  apply_transactions : int;
  modelled_apply_seconds : float;
}

type t = {
  runs : run list;
  max_block_size : int;
  subdomains : int;
  overlap : int;
}

(* Block-Jacobi's whole application is one batched TRSV wave over the
   diagonal blocks; model it as exactly that launch so the per-iteration
   comparison against the level-scheduled waves is like for like. *)
let jacobi_apply_model ?pool blocking a =
  let starts = blocking.Supervariable.starts
  and sizes = blocking.Supervariable.sizes in
  let blocks =
    Array.init (Array.length starts) (fun i ->
        Vblu_sparse.Csr.extract_block a ~row_start:starts.(i) ~size:sizes.(i))
  in
  let batch = Batch.of_matrices blocks in
  let lu = Vblu_core.Batched_lu.factor ?pool batch in
  let rhs = Batch.vec_create sizes in
  let tr =
    Vblu_core.Batched_trsv.solve ?pool ~factors:lu.Vblu_core.Batched_lu.factors
      ~pivots:lu.Vblu_core.Batched_lu.pivots rhs
  in
  let st = tr.Vblu_core.Batched_trsv.stats in
  ( Vblu_simt.Counter.transactions st.Vblu_simt.Launch.total,
    st.Vblu_simt.Launch.time_us *. 1e-6 )

let ilu0_apply_stats (stats : Block_ilu0.apply_stats) =
  let tx =
    Array.fold_left
      (fun acc w -> acc + w.Block_ilu0.transactions)
      0 stats.Block_ilu0.waves
  in
  (Array.length stats.Block_ilu0.waves, tx, stats.Block_ilu0.modelled_seconds)

let one_run ?pool ~policy ~max_block_size ~subdomains ~overlap ?obs entry a b
    family =
  let precond, solve_and_finish =
    match family with
    | Jacobi ->
      let precond, info =
        Block_jacobi.create ?pool ~variant:Block_jacobi.Lu ~policy ?obs
          ~max_block_size a
      in
      let blocking = info.Block_jacobi.blocking in
      let finish () =
        let tx, modelled = jacobi_apply_model ?pool blocking a in
        ( Array.length blocking.Supervariable.starts,
          List.length info.Block_jacobi.degraded_blocks,
          1,
          1,
          1,
          tx,
          modelled )
      in
      (precond, finish)
    | Ilu0 ->
      let precond, info =
        Block_ilu0.create ?pool ~policy ?obs ~max_block_size a
      in
      let finish () =
        (* One explicit application pins down the per-apply waves
           deterministically (the solve's last iteration would do, but an
           unconverged 0-iteration run records nothing). *)
        let _ = Preconditioner.apply precond b in
        let waves, tx, modelled =
          match !(info.Block_ilu0.last_apply) with
          | Some s -> ilu0_apply_stats s
          | None -> (0, 0, 0.0)
        in
        ( Array.length info.Block_ilu0.blocking.Supervariable.starts,
          List.length info.Block_ilu0.degraded_blocks,
          Array.length info.Block_ilu0.lower.Vblu_sparse.Levels.level_sets,
          Array.length info.Block_ilu0.upper.Vblu_sparse.Levels.level_sets,
          waves,
          tx,
          modelled )
      in
      (precond, finish)
    | Ras ->
      let precond, rinfo =
        Block_ilu0.ras ?pool ~policy ?obs ~max_block_size ~subdomains ~overlap
          a
      in
      let finish () =
        let _ = Preconditioner.apply precond b in
        let blocks = ref 0
        and degraded = ref 0
        and lower = ref 1
        and upper = ref 1
        and waves = ref 0
        and tx = ref 0
        and modelled = ref 0.0 in
        Array.iter
          (fun (li : Block_ilu0.info) ->
            blocks :=
              !blocks + Array.length li.Block_ilu0.blocking.Supervariable.starts;
            degraded := !degraded + List.length li.Block_ilu0.degraded_blocks;
            lower :=
              max !lower
                (Array.length li.Block_ilu0.lower.Vblu_sparse.Levels.level_sets);
            upper :=
              max !upper
                (Array.length li.Block_ilu0.upper.Vblu_sparse.Levels.level_sets);
            match !(li.Block_ilu0.last_apply) with
            | Some s ->
              let w, t, m = ilu0_apply_stats s in
              waves := !waves + w;
              tx := !tx + t;
              modelled := !modelled +. m
            | None -> ())
          rinfo.Block_ilu0.local_info;
        (!blocks, !degraded, !lower, !upper, !waves, !tx, !modelled)
      in
      (precond, finish)
  in
  let _, stats = Idr.solve ~precond ?obs ~s:4 a b in
  let blocks, degraded, lower_levels, upper_levels, waves, tx, modelled =
    solve_and_finish ()
  in
  {
    entry;
    family;
    converged = Solver.converged stats;
    iterations = stats.Solver.iterations;
    setup_seconds = precond.Preconditioner.setup_seconds;
    solve_seconds = stats.Solver.solve_seconds;
    blocks;
    degraded;
    lower_levels;
    upper_levels;
    apply_waves = waves;
    apply_transactions = tx;
    modelled_apply_seconds = modelled;
  }

let run_suite ?(quick = false) ?entries ?(families = [ Jacobi; Ilu0; Ras ])
    ?(max_block_size = 16) ?(subdomains = 4) ?(overlap = 8)
    ?(pool = Pool.sequential) ?(policy = Block_jacobi.Identity_block) ?obs
    ?(progress = fun _ -> ()) () =
  let entries =
    match entries with
    | Some es -> es
    | None ->
      if quick then List.filteri (fun i _ -> i < 12) Suite.all else Suite.all
  in
  let prepared =
    List.map
      (fun entry ->
        let a = Suite.matrix entry in
        let n, _ = Vblu_sparse.Csr.dims a in
        let b = Array.make n 1.0 in
        progress
          (Printf.sprintf "%2d/%d %s (n=%d, nnz=%d)" entry.Suite.id
             (List.length entries) entry.Suite.name n (Vblu_sparse.Csr.nnz a));
        (entry, a, b))
      entries
  in
  let jobs =
    Array.of_list
      (List.concat_map
         (fun (entry, a, b) -> List.map (fun f -> (entry, a, b, f)) families)
         prepared)
  in
  (* A one-domain pool reproduces the historical path exactly: jobs run in
     order with the pool handed to the preconditioners.  A multi-domain
     pool instead fans the (entry × family) jobs across the domains — the
     study loop itself parallelizes — with sequential inner
     preconditioners, so the total domain count stays bounded.  Either
     way every run's iteration counts and modelled numbers are bitwise
     identical (the batched kernels are domain-count invariant), which is
     what the CI cross-domain gate checks; only wall-clock fields vary.
     Observability: each parallel job records into a [Ctx.sub] child
     grafted back in job order, so traces and metrics stay
     deterministic. *)
  let runs =
    if Pool.num_domains pool <= 1 || Array.length jobs <= 1 then
      Array.to_list
        (Array.map
           (fun (entry, a, b, family) ->
             one_run ~pool ~policy ~max_block_size ~subdomains ~overlap ?obs
               entry a b family)
           jobs)
    else begin
      let subs = Array.map (fun _ -> Ctx.sub obs) jobs in
      let results =
        Pool.parallel_init pool (Array.length jobs) (fun i ->
            let entry, a, b, family = jobs.(i) in
            one_run ~pool:Pool.sequential ~policy ~max_block_size ~subdomains
              ~overlap ?obs:subs.(i) entry a b family)
      in
      Array.iter (fun s -> Ctx.graft ~into:obs s) subs;
      Array.to_list results
    end
  in
  { runs; max_block_size; subdomains; overlap }

let find t entry family =
  List.find_opt
    (fun r -> r.entry.Suite.id = entry.Suite.id && r.family = family)
    t.runs

let iteration_improvements t =
  List.filter_map
    (fun e ->
      match (find t e Jacobi, find t e Ilu0) with
      | Some j, Some i -> Some (j, i)
      | _ -> None)
    (List.sort_uniq
       (fun a b -> compare a.Suite.id b.Suite.id)
       (List.map (fun r -> r.entry) t.runs))

let total_seconds r = r.setup_seconds +. r.solve_seconds
