open Vblu_workloads
open Vblu_precond

let fig8 ppf (study : Solver_study.t) =
  Report.section ppf
    "Figure 8 — IDR(4) iteration overhead: LU-based vs GH-based block-Jacobi";
  (* Buckets of iteration overhead in percent.  A case lands left of
     centre when LU needed fewer iterations (GH pays the overhead), right
     of centre when GH was the better preconditioner. *)
  let edges = [ -50.0; -20.0; -5.0; -2.0; 0.0; 0.0001; 2.0; 5.0; 20.0; 50.0 ] in
  let bucket_names =
    [
      "LU>50%";
      "20-50%";
      "5-20%";
      "2-5%";
      "0-2%";
      "equal";
      "0-2%";
      "2-5%";
      "5-20%";
      "20-50%";
      "GH>50%";
    ]
  in
  let bucket_of overhead =
    let rec go i = function
      | [] -> i
      | e :: rest -> if overhead < e then i else go (i + 1) rest
    in
    go 0 edges
  in
  let rows =
    List.map
      (fun bound ->
        let counts = Array.make (List.length bucket_names) 0 in
        let considered = ref 0 in
        List.iter
          (fun (e : Suite.entry) ->
            match
              ( Solver_study.find study e Block_jacobi.Lu bound,
                Solver_study.find study e Block_jacobi.Gh bound )
            with
            | Some lu, Some gh when lu.Solver_study.converged && gh.Solver_study.converged ->
              incr considered;
              (* Positive overhead: GH converged faster, LU pays. *)
              let lu_i = float_of_int lu.Solver_study.iterations in
              let gh_i = float_of_int gh.Solver_study.iterations in
              let overhead = 100.0 *. (lu_i -. gh_i) /. Float.min lu_i gh_i in
              (* Map to the histogram orientation: negative = LU better. *)
              let b = bucket_of overhead in
              counts.(b) <- counts.(b) + 1
            | _ -> ())
          Suite.all;
        ignore !considered;
        string_of_int bound
        :: Array.to_list (Array.map string_of_int counts))
      study.Solver_study.bounds
  in
  Report.print_table ppf
    ~title:
      "test cases per overhead bucket (rows: block-size bound; left of centre \
       = LU-based better)"
    ~header:("bound" :: bucket_names)
    ~rows

let fig9 ppf (study : Solver_study.t) =
  Report.section ppf
    "Figure 9 — IDR(4) total time (setup+solve), block-Jacobi bound 32";
  let cases =
    List.filter_map
      (fun (e : Suite.entry) ->
        match
          ( Solver_study.find study e Block_jacobi.Lu 32,
            Solver_study.find study e Block_jacobi.Gh 32,
            Solver_study.find study e Block_jacobi.Ght 32 )
        with
        | Some lu, Some gh, Some ght ->
          if lu.Solver_study.converged then Some (e, lu, gh, ght) else None
        | _ -> None)
      Suite.all
  in
  let sorted =
    List.sort
      (fun (_, a, _, _) (_, b, _, _) ->
        compare (Solver_study.total_seconds a) (Solver_study.total_seconds b))
      cases
  in
  let rows =
    List.map
      (fun ((e : Suite.entry), lu, gh, ght) ->
        let t (r : Solver_study.run) =
          if r.Solver_study.converged then
            Printf.sprintf "%.3f" (Solver_study.total_seconds r)
          else "-"
        in
        [ string_of_int e.Suite.id; e.Suite.name; t lu; t gh; t ght ])
      sorted
  in
  Report.print_table ppf
    ~title:"total runtime [s], matrices sorted by LU-based runtime"
    ~header:[ "ID"; "matrix"; "LU-based"; "GH-based"; "GHT-based" ]
    ~rows

let table1 ppf (study : Solver_study.t) =
  Report.section ppf
    "Table I — IDR(4) iterations and runtime: scalar Jacobi vs block-Jacobi";
  let cell (r : Solver_study.run option) =
    match r with
    | Some r when r.Solver_study.converged ->
      ( string_of_int r.Solver_study.iterations,
        Printf.sprintf "%.3f" (Solver_study.total_seconds r) )
    | _ -> ("-", "-")
  in
  let header =
    [ "matrix"; "size"; "nnz"; "ID"; "jacobi its"; "time[s]" ]
    @ List.concat_map
        (fun b -> [ Printf.sprintf "bj(%d) its" b; "time[s]" ])
        study.Solver_study.bounds
  in
  let rows =
    List.map
      (fun (e : Suite.entry) ->
        let a = Suite.matrix e in
        let n, _ = Vblu_sparse.Csr.dims a in
        let ji, jt = cell (Solver_study.find study e Block_jacobi.Scalar 1) in
        let bj =
          List.concat_map
            (fun b ->
              let i, t = cell (Solver_study.find study e Block_jacobi.Lu b) in
              [ i; t ])
            study.Solver_study.bounds
        in
        [
          e.Suite.name;
          string_of_int n;
          string_of_int (Vblu_sparse.Csr.nnz a);
          string_of_int e.Suite.id;
          ji;
          jt;
        ]
        @ bj)
      Suite.all
  in
  Report.print_table ppf ~title:"per-matrix convergence and runtime" ~header ~rows;
  (* Breakdown accounting: any run whose setup degraded blocks to the
     identity (or salvaged them by perturbation) is listed so the
     iteration counts above can be read with that caveat. *)
  let flagged =
    List.filter
      (fun (r : Solver_study.run) ->
        r.Solver_study.degraded > 0 || r.Solver_study.perturbed > 0)
      study.Solver_study.runs
  in
  if flagged = [] then
    Format.fprintf ppf "degraded blocks: none (every diagonal block factored)@."
  else
    List.iter
      (fun (r : Solver_study.run) ->
        Format.fprintf ppf
          "degraded blocks: %s %s(%d): %d of %d identity-fallback, %d perturbed@."
          r.Solver_study.entry.Suite.name
          (Block_jacobi.variant_name r.Solver_study.variant)
          r.Solver_study.bound r.Solver_study.degraded r.Solver_study.blocks
          r.Solver_study.perturbed)
      flagged

let ablation_variants ppf (study : Solver_study.t) =
  Report.section ppf
    "Ablation D — factorization-based vs inversion-based block-Jacobi (bound 32)";
  let rows =
    List.filter_map
      (fun (e : Suite.entry) ->
        match
          ( Solver_study.find study e Block_jacobi.Lu 32,
            Solver_study.find study e Block_jacobi.Gje_inverse 32 )
        with
        | Some lu, Some gje ->
          let fmt (r : Solver_study.run) =
            if r.Solver_study.converged then
              Printf.sprintf "%d its %.3f+%.3fs" r.Solver_study.iterations
                r.Solver_study.setup_seconds r.Solver_study.solve_seconds
            else "no convergence"
          in
          Some [ string_of_int e.Suite.id; e.Suite.name; fmt lu; fmt gje ]
        | _ -> None)
      Suite.all
  in
  Report.print_table ppf ~title:"LU factors vs GJE explicit inverse"
    ~header:[ "ID"; "matrix"; "LU (setup+solve)"; "GJE (setup+solve)" ]
    ~rows
