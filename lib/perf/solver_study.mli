(** The full IDR(4) solver sweep behind Figures 8–9 and Table I.

    For every matrix of the 48-entry suite, runs IDR(4) preconditioned
    with:
    - scalar Jacobi,
    - LU-based block-Jacobi with block-size bounds 8/12/16/24/32,
    - GH-based block-Jacobi with the same bounds,
    - GH-T-based and GJE-inversion-based block-Jacobi with bound 32,

    recording iteration counts, setup time, and solve time for each —
    one pass that the three reporting drivers share.  Runs on the CPU
    reference path (real numerics, host wall-clock). *)

open Vblu_workloads
open Vblu_precond

type run = {
  entry : Suite.entry;
  variant : Block_jacobi.variant;
  bound : int;  (** block-size upper bound (1 for scalar Jacobi). *)
  converged : bool;
  iterations : int;
  setup_seconds : float;
  solve_seconds : float;
  blocks : int;  (** diagonal blocks in the partition. *)
  degraded : int;
      (** blocks that fell back to the identity (singular under the active
          breakdown policy). *)
  perturbed : int;
      (** blocks salvaged by a [Perturb] diagonal shift. *)
  recovered : int;
      (** blocks whose ABFT check failed and that a [Recompute] recovery
          refactored successfully (0 unless faults + ABFT are active). *)
  corrupt : int;
      (** blocks left corrupt after recovery was exhausted (replaced by
          the identity). *)
}

type t = {
  runs : run list;
  bounds : int list;  (** the block-size bounds swept (Table I columns). *)
}

val bounds : int list
(** [8; 12; 16; 24; 32] — the paper's sweep. *)

val run_suite :
  ?quick:bool ->
  ?pool:Vblu_par.Pool.t ->
  ?policy:Block_jacobi.breakdown_policy ->
  ?faults:Vblu_fault.Fault.Plan.t ->
  ?abft:bool ->
  ?recovery:Block_jacobi.recovery_policy ->
  ?obs:Vblu_obs.Ctx.t ->
  ?progress:(string -> unit) ->
  unit ->
  t
(** Execute the sweep.  [quick] restricts to the first 12 matrices and
    bounds [8; 32].  [policy] (default [Identity_block]) is the
    block-Jacobi breakdown policy for every run; the per-run [degraded]
    and [perturbed] counts record its effect.  [faults], [abft], and
    [recovery] are forwarded to {!Block_jacobi.create} for every run
    (the per-run [recovered] and [corrupt] counts record their effect);
    when [abft] is set, each IDR solve additionally gets a
    [refresh_precond] soft-error guard.  [progress] receives one
    message per matrix (messages may interleave when [pool] has several
    domains).

    With [pool], the 48 matrices run embarrassingly parallel, one task per
    entry.  Iteration counts, convergence flags, and run order are
    identical for any domain count; only the recorded wall-clock seconds
    differ.

    [obs] records every preconditioner setup, kernel launch, and Krylov
    iteration of the sweep; each matrix runs in its own child context and
    the children are grafted back in entry order after the parallel join,
    so the trace and metrics are also identical for any domain count
    (wall-clock never enters them). *)

val find : t -> Suite.entry -> Block_jacobi.variant -> int -> run option

val total_seconds : run -> float
(** setup + solve — Figure 9's y-axis. *)
