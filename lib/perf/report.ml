type series = {
  title : string;
  xlabel : string;
  columns : string list;
  rows : (float * float option list) list;
}

let pad width s =
  let len = String.length s in
  if len >= width then s else String.make (width - len) ' ' ^ s

let print_series ppf s =
  Format.fprintf ppf "@.## %s@." s.title;
  let width = 12 in
  let header =
    pad width s.xlabel :: List.map (pad width) s.columns |> String.concat " "
  in
  Format.fprintf ppf "%s@." header;
  List.iter
    (fun (x, ys) ->
      let cells =
        Printf.sprintf "%.0f" x
        :: List.map
             (function Some y -> Printf.sprintf "%.2f" y | None -> "-")
             ys
      in
      Format.fprintf ppf "%s@."
        (String.concat " " (List.map (pad width) cells)))
    s.rows

let print_table ppf ~title ~header ~rows =
  Format.fprintf ppf "@.## %s@." title;
  let cols = List.length header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let print_row row =
    Format.fprintf ppf "%s@."
      (String.concat "  " (List.mapi (fun i c -> pad widths.(i) c) row))
  in
  print_row header;
  List.iter print_row rows

let csv_of_series s =
  let buf = Buffer.create 1024 in
  (* Header fields are free-form (several curve names contain commas);
     quote per RFC 4180 so the columns stay aligned.  Data cells are
     numeric and never need quoting, but go through [row] anyway. *)
  Buffer.add_string buf (Vblu_obs.Csvx.row (s.xlabel :: s.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun (x, ys) ->
      let cells =
        Printf.sprintf "%g" x
        :: List.map (function Some y -> Printf.sprintf "%g" y | None -> "") ys
      in
      Buffer.add_string buf (Vblu_obs.Csvx.row cells);
      Buffer.add_char buf '\n')
    s.rows;
  Buffer.contents buf

let section ppf title =
  Format.fprintf ppf "@.%s@.# %s@.%s@." (String.make 72 '=') title
    (String.make 72 '=')
