(** Plain-text reporting for the experiment drivers.

    Each figure of the paper becomes a column-aligned series table (x-axis
    value in the first column, one column per plotted curve), each table a
    row-per-matrix listing — the same rows/series the paper plots, in a
    form that diffs cleanly and imports into any plotting tool. *)

type series = {
  title : string;
  xlabel : string;
  columns : string list;  (** curve names. *)
  rows : (float * float option list) list;
      (** x value and one y per column ([None] prints as "-"). *)
}

val print_series : Format.formatter -> series -> unit

val print_table :
  Format.formatter ->
  title:string ->
  header:string list ->
  rows:string list list ->
  unit

val csv_of_series : series -> string
(** The same data as comma-separated values (for plotting scripts).
    Fields containing commas, quotes or newlines are quoted per RFC 4180
    ({!Vblu_obs.Csvx.quote}); purely numeric cells pass through
    unchanged. *)

val section : Format.formatter -> string -> unit
(** A visual separator with a heading. *)
