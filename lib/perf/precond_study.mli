(** Preconditioner-family head-to-head: block-Jacobi vs block-ILU(0) vs
    RAS-ILU(0).

    Where {!Solver_study} sweeps block-Jacobi variants and block sizes,
    this study fixes one blocking bound and compares the {e families}
    (ROADMAP item 3): for every suite matrix it runs IDR(4) under each
    preconditioner and records iterations, setup/solve wall-clock, and
    the {e modelled} per-application cost — for block-ILU(0) the actual
    per-level batched wave times and transaction counts of
    {!Vblu_precond.Block_ilu0.apply_stats}, for block-Jacobi one batched
    TRSV launch over its diagonal blocks (the whole application is a
    single wave), so time-per-iteration compares like for like.  The
    trade the table exposes is the paper's: the coupled factorization
    buys fewer iterations, the level-scheduled solve pays more waves per
    iteration. *)

open Vblu_workloads
open Vblu_precond

type family =
  | Jacobi  (** LU-variant block-Jacobi — the baseline. *)
  | Ilu0  (** block-ILU(0), level-scheduled apply. *)
  | Ras  (** restricted additive Schwarz over block-ILU(0) locals. *)

val family_label : family -> string
(** ["block-jacobi" | "block-ilu0" | "ras-ilu0"] — CLI spelling. *)

val family_of_string : string -> (family, string) result

type run = {
  entry : Suite.entry;
  family : family;
  converged : bool;
  iterations : int;
  setup_seconds : float;  (** host wall-clock of the setup. *)
  solve_seconds : float;
  blocks : int;  (** diagonal blocks of the partition. *)
  degraded : int;  (** identity-fallback blocks. *)
  lower_levels : int;  (** forward-sweep DAG depth (1 for Jacobi). *)
  upper_levels : int;  (** backward-sweep DAG depth (1 for Jacobi). *)
  apply_waves : int;  (** batched kernel waves per application. *)
  apply_transactions : int;
      (** modelled 32-byte transactions summed over one application's
          waves. *)
  modelled_apply_seconds : float;
      (** modelled kernel time of one application. *)
}

type t = {
  runs : run list;
  max_block_size : int;
  subdomains : int;
  overlap : int;
}

val run_suite :
  ?quick:bool ->
  ?entries:Suite.entry list ->
  ?families:family list ->
  ?max_block_size:int ->
  ?subdomains:int ->
  ?overlap:int ->
  ?pool:Vblu_par.Pool.t ->
  ?policy:Block_jacobi.breakdown_policy ->
  ?obs:Vblu_obs.Ctx.t ->
  ?progress:(string -> unit) ->
  unit ->
  t
(** Execute the comparison.  [quick] restricts to the first 12 suite
    matrices; [entries] overrides the matrix list entirely (e.g. the
    convection–diffusion subset the CI gate asserts on); [families]
    defaults to all three; [max_block_size]
    (default 16) is the shared supervariable bound; [subdomains]/[overlap]
    (defaults 4/8) parameterize the RAS runs.  [pool] (default
    sequential): with one domain it is handed to every preconditioner as
    before; with more, the {e study loop itself} fans the
    (entry × family) jobs across the domains, each job running its
    preconditioner sequentially.  Iteration counts and modelled numbers
    are bit-identical for any domain count — only the wall-clock fields
    vary (the cross-domain assertion the CI precond gate makes).  [obs]
    records every setup and kernel launch; parallel jobs record into
    {!Vblu_obs.Ctx.sub} children grafted back in job order, so the
    registry and traces stay deterministic too. *)

val find : t -> Suite.entry -> family -> run option

val iteration_improvements : t -> (run * run) list
(** Pairs [(jacobi, ilu0)] over entries where both ran: the raw material
    of the head-to-head table, in suite order. *)

val total_seconds : run -> float
