open Vblu_smallblas
open Vblu_core
module S = Vblu_simt.Sampling
module L = Vblu_simt.Launch
module Pool = Vblu_par.Pool

(* Order-preserving parallel map over the rows of a sweep.  Each row builds
   its own batches from fixed seeds and runs its kernels sequentially, so
   rows are independent and the printed series is identical for any domain
   count; parallelism is applied here (one level only) rather than inside
   the Sampled-mode kernels, which execute just one warp per size class. *)
let pmap pool f lst = Array.to_list (Pool.parallel_map pool f (Array.of_list lst))

(* Observability-aware variant: one child context per row (not per
   domain), grafted back in row order after the join, so the merged trace
   and metrics are bit-identical for any domain count. *)
let pmap_obs obs pool f lst =
  let arr = Array.of_list lst in
  let n = Array.length arr in
  let subs = Array.init n (fun _ -> Vblu_obs.Ctx.sub obs) in
  let results = Pool.parallel_init pool n (fun i -> f subs.(i) arr.(i)) in
  Array.iter (fun child -> Vblu_obs.Ctx.graft ~into:obs child) subs;
  Array.to_list results

(* A uniform batch where only the representative block (index 0) carries
   data — all Sampled-mode runs execute exactly that block. *)
let representative_batch ?(layout = Batch.Blocked) ~count ~size () =
  let sizes = Batch.uniform_sizes ~count ~size in
  let b = Batch.create ~layout sizes in
  let st = Random.State.make [| 0xf19; size |] in
  Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st size);
  b

let gflops (s : L.stats) = Some s.L.gflops

type routine = R_lu | R_gh | R_ght | R_cublas

let routine_name = function
  | R_lu -> "small-LU"
  | R_gh -> "GH"
  | R_ght -> "GH-T"
  | R_cublas -> "cuBLAS"

let routines = [ R_lu; R_gh; R_ght; R_cublas ]

let getrf_stats ?obs ?layout ~prec ~count ~size r =
  let b = representative_batch ?layout ~count ~size () in
  match r with
  | R_lu -> (Batched_lu.factor ~prec ~mode:S.Sampled ?obs b).Batched_lu.stats
  | R_gh -> (Batched_gh.factor ~prec ~mode:S.Sampled ?obs b).Batched_gh.stats
  | R_ght ->
    (Batched_gh.factor ~prec ~mode:S.Sampled ~storage:Gauss_huard.Transposed
       ?obs b)
      .Batched_gh.stats
  | R_cublas ->
    (Cublas_model.factor ~prec ~mode:S.Sampled ?obs b).Cublas_model.stats

let trsv_stats ?obs ?layout ~prec ~count ~size r =
  let b = representative_batch ?layout ~count ~size () in
  let rhs = Batch.vec_random ?layout b.Batch.sizes in
  match r with
  | R_lu ->
    let f = Batched_lu.factor ~prec ~mode:S.Sampled b in
    (Batched_trsv.solve ~prec ~mode:S.Sampled ?obs ~factors:f.Batched_lu.factors
       ~pivots:f.Batched_lu.pivots rhs)
      .Batched_trsv.stats
  | R_gh ->
    let f = Batched_gh.factor ~prec ~mode:S.Sampled b in
    (Batched_gh.solve ~prec ~mode:S.Sampled ?obs f rhs).Batched_gh.solve_stats
  | R_ght ->
    let f =
      Batched_gh.factor ~prec ~mode:S.Sampled ~storage:Gauss_huard.Transposed b
    in
    (Batched_gh.solve ~prec ~mode:S.Sampled ?obs f rhs).Batched_gh.solve_stats
  | R_cublas ->
    let f = Cublas_model.factor ~prec ~mode:S.Sampled b in
    (Cublas_model.solve ~prec ~mode:S.Sampled ?obs f rhs)
      .Cublas_model.solve_stats

let batch_sweep quick =
  if quick then [ 500; 5_000; 40_000 ]
  else [ 500; 1_000; 2_000; 5_000; 10_000; 15_000; 20_000; 30_000; 40_000 ]

let size_sweep quick =
  if quick then [ 4; 8; 16; 24; 32 ]
  else List.init 31 (fun i -> i + 2)

let precisions = [ Precision.Single; Precision.Double ]

(* Titles only mention the layout when it is not the default, so the
   blocked series keep their historical names (shape tests key on them). *)
let layout_suffix = function
  | None | Some Batch.Blocked -> ""
  | Some Batch.Interleaved -> ", interleaved"

let vs_batch_series ?obs ?layout ~stats_of ~what ~pool quick =
  List.concat_map
    (fun prec ->
      List.map
        (fun size ->
          let rows =
            pmap_obs obs pool
              (fun obs count ->
                ( float_of_int count,
                  List.map
                    (fun r ->
                      gflops (stats_of ?obs ?layout ~prec ~count ~size r))
                    routines ))
              (batch_sweep quick)
          in
          {
            Report.title =
              Printf.sprintf "%s GFLOPS vs batch size — block size %d, %s%s"
                what size (Precision.to_string prec) (layout_suffix layout);
            xlabel = "batch";
            columns = List.map routine_name routines;
            rows;
          })
        [ 16; 32 ])
    precisions

let vs_size_series ?obs ?layout ~stats_of ~what ~count ~pool quick =
  List.map
    (fun prec ->
      let rows =
        pmap_obs obs pool
          (fun obs size ->
            ( float_of_int size,
              List.map
                (fun r -> gflops (stats_of ?obs ?layout ~prec ~count ~size r))
                routines ))
          (size_sweep quick)
      in
      {
        Report.title =
          Printf.sprintf "%s GFLOPS vs matrix size — batch %d, %s%s" what
            count (Precision.to_string prec) (layout_suffix layout);
        xlabel = "size";
        columns = List.map routine_name routines;
        rows;
      })
    precisions

let fig4_series ?(quick = false) ?(pool = Pool.sequential) ?obs ?layout () =
  vs_batch_series ?obs ?layout ~stats_of:getrf_stats ~what:"GETRF" ~pool quick

let fig5_series ?(quick = false) ?(pool = Pool.sequential) ?obs ?layout () =
  vs_size_series ?obs ?layout ~stats_of:getrf_stats ~what:"GETRF"
    ~count:(if quick then 5_000 else 40_000)
    ~pool quick

let fig6_series ?(quick = false) ?(pool = Pool.sequential) ?obs ?layout () =
  vs_batch_series ?obs ?layout ~stats_of:trsv_stats ~what:"TRSV" ~pool quick

let fig7_series ?(quick = false) ?(pool = Pool.sequential) ?obs ?layout () =
  vs_size_series ?obs ?layout ~stats_of:trsv_stats ~what:"TRSV"
    ~count:(if quick then 5_000 else 40_000)
    ~pool quick

let print_all ppf series = List.iter (Report.print_series ppf) series

let fig4 ?quick ?pool ?obs ?layout ppf =
  Report.section ppf "Figure 4 — batched factorization vs batch size";
  print_all ppf (fig4_series ?quick ?pool ?obs ?layout ())

let fig5 ?quick ?pool ?obs ?layout ppf =
  Report.section ppf "Figure 5 — batched factorization vs matrix size";
  print_all ppf (fig5_series ?quick ?pool ?obs ?layout ())

let fig6 ?quick ?pool ?obs ?layout ppf =
  Report.section ppf "Figure 6 — batched triangular solves vs batch size";
  print_all ppf (fig6_series ?quick ?pool ?obs ?layout ())

let fig7 ?quick ?pool ?obs ?layout ppf =
  Report.section ppf "Figure 7 — batched triangular solves vs matrix size";
  print_all ppf (fig7_series ?quick ?pool ?obs ?layout ())

(* The pivoting ablation needs blocks that actually pivot: a diagonally
   dominant representative would never swap and the explicit kernel's row
   exchanges would never fire. *)
let pivoting_batch ~count ~size =
  let sizes = Batch.uniform_sizes ~count ~size in
  let b = Batch.create sizes in
  let st = Random.State.make [| 0xf20; size |] in
  Batch.set_matrix b 0 (Matrix.random_general ~state:st size);
  b

let ablation_pivot ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf
    "Ablation A — pivoting strategies in the register LU kernel";
  let count = if quick then 5_000 else 40_000 in
  List.iter
    (fun prec ->
      let rows =
        pmap pool
          (fun size ->
            let b = pivoting_batch ~count ~size in
            let run pivoting =
              gflops
                (Batched_lu.factor ~prec ~mode:S.Sampled ~pivoting b)
                  .Batched_lu.stats
            in
            ( float_of_int size,
              [
                run Batched_lu.Implicit;
                run Batched_lu.Explicit;
                run Batched_lu.No_pivoting;
              ] ))
          (size_sweep quick)
      in
      Report.print_series ppf
        {
          Report.title =
            Printf.sprintf "GETRF GFLOPS by pivoting — batch %d, %s" count
              (Precision.to_string prec);
          xlabel = "size";
          columns = [ "implicit"; "explicit"; "none" ];
          rows;
        })
    precisions

let ablation_trsv ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf "Ablation B — eager vs lazy triangular solve";
  let count = if quick then 5_000 else 40_000 in
  List.iter
    (fun prec ->
      let rows =
        pmap pool
          (fun size ->
            let b = representative_batch ~count ~size () in
            let f = Batched_lu.factor ~prec ~mode:S.Sampled b in
            let rhs = Batch.vec_random b.Batch.sizes in
            let run variant =
              gflops
                (Batched_trsv.solve ~prec ~mode:S.Sampled ~variant
                   ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots rhs)
                  .Batched_trsv.stats
            in
            ( float_of_int size,
              [ run Batched_trsv.Eager; run Batched_trsv.Lazy ] ))
          (size_sweep quick)
      in
      Report.print_series ppf
        {
          Report.title =
            Printf.sprintf "TRSV GFLOPS by variant — batch %d, %s" count
              (Precision.to_string prec);
          xlabel = "size";
          columns = [ "eager"; "lazy" ];
          rows;
        })
    precisions

(* SPD representative: B·Bᵀ + n·I. *)
let spd_representative_batch ~count ~size =
  let sizes = Batch.uniform_sizes ~count ~size in
  let b = Batch.create sizes in
  let st = Random.State.make [| 0x59d; size |] in
  let r = Matrix.random ~state:st size size in
  let a = Matrix.matmul r (Matrix.transpose r) in
  let spd =
    Matrix.init size size (fun i j ->
        Matrix.get a i j +. if i = j then float_of_int size else 0.0)
  in
  Batch.set_matrix b 0 spd;
  b

let ablation_cholesky ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf
    "Ablation E — Cholesky (future-work kernel) vs pivoted LU on SPD batches";
  let count = if quick then 5_000 else 40_000 in
  List.iter
    (fun prec ->
      let rows =
        pmap pool
          (fun size ->
            let b = spd_representative_batch ~count ~size in
            let rhs = Batch.vec_random b.Batch.sizes in
            let lu = Batched_lu.factor ~prec ~mode:S.Sampled b in
            let ch = Batched_cholesky.factor ~prec ~mode:S.Sampled b in
            let lu_trsv =
              Batched_trsv.solve ~prec ~mode:S.Sampled
                ~factors:lu.Batched_lu.factors ~pivots:lu.Batched_lu.pivots rhs
            in
            let ch_trsv =
              Batched_cholesky.solve ~prec ~mode:S.Sampled
                ~factors:ch.Batched_cholesky.factors rhs
            in
            ( float_of_int size,
              [
                gflops lu.Batched_lu.stats;
                gflops ch.Batched_cholesky.stats;
                (* GFLOPS hide that Cholesky is credited half the flops
                   while SIMT lane masking prevents halving the issue
                   slots — the time ratio is the honest comparison. *)
                Some
                  (lu.Batched_lu.stats.L.time_us
                  /. ch.Batched_cholesky.stats.L.time_us);
                gflops lu_trsv.Batched_trsv.stats;
                gflops ch_trsv.Batched_trsv.stats;
              ] ))
          (size_sweep quick)
      in
      Report.print_series ppf
        {
          Report.title =
            Printf.sprintf
              "SPD factorization/solve — batch %d, %s (GFLOPS credit: 2/3 n^3 \
               LU vs n^3/3 Cholesky; chol-speedup = LU time / chol time)"
              count (Precision.to_string prec);
          xlabel = "size";
          columns =
            [ "LU-getrf"; "chol-getrf"; "chol-speedup"; "LU-trsv"; "chol-trsv" ];
          rows;
        })
    precisions

(* Draw a realistic variable-size batch: the supervariable blocking of a
   suite matrix, with the sizes replicated out to [target] blocks and one
   representative block per distinct size. *)
let blocking_batch ~target (entry : Vblu_workloads.Suite.entry) ~bound =
  let a = Vblu_workloads.Suite.matrix entry in
  let blk = Vblu_precond.Supervariable.blocking ~max_block_size:bound a in
  let base = blk.Vblu_precond.Supervariable.sizes in
  let sizes = Array.init target (fun i -> base.(i mod Array.length base)) in
  let b = Batch.create sizes in
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun i s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        let st = Random.State.make [| 0xab1e; s |] in
        Batch.set_matrix b i (Matrix.random_diagdom ~state:st s)
      end)
    sizes;
  (b, Array.fold_left max 0 sizes)

let ablation_variable_size ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf
    "Ablation F — variable-size batches from real supervariable blockings";
  let target = if quick then 5_000 else 40_000 in
  let prec = Precision.Double in
  let entries =
    List.filter
      (fun (e : Vblu_workloads.Suite.entry) ->
        List.mem e.Vblu_workloads.Suite.name
          [ "bcsstk38"; "F2"; "s1rmq4m1"; "ecology2" ])
      Vblu_workloads.Suite.all
  in
  (* Synthetic size mixes complement the (near-uniform) suite blockings:
     with homogeneous supervariables, agglomeration packs every block to
     the bound, so heterogeneous mixes must be injected explicitly. *)
  let synthetic =
    [
      ( "uniform 4..32",
        Batch.random_sizes
          ~state:(Random.State.make [| 0x51ce; 1 |])
          ~count:target ~min_size:4 ~max_size:32 () );
      ( "bimodal 5|32",
        Array.init target (fun i -> if i mod 2 = 0 then 5 else 32) );
      ( "small-heavy 4..12",
        Batch.random_sizes
          ~state:(Random.State.make [| 0x51ce; 2 |])
          ~count:target ~min_size:4 ~max_size:12 () );
    ]
  in
  let batch_of_sizes sizes =
    let b = Batch.create sizes in
    let seen = Hashtbl.create 8 in
    Array.iteri
      (fun i s ->
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.add seen s ();
          let st = Random.State.make [| 0xab1e; s |] in
          Batch.set_matrix b i (Matrix.random_diagdom ~state:st s)
        end)
      sizes;
    (b, Array.fold_left max 0 sizes)
  in
  let cases =
    List.map
      (fun (e : Vblu_workloads.Suite.entry) ->
        ( "blocking of " ^ e.Vblu_workloads.Suite.name,
          blocking_batch ~target e ~bound:32 ))
      entries
    @ List.map (fun (name, sizes) -> (name, batch_of_sizes sizes)) synthetic
  in
  let rows =
    pmap pool
      (fun (name, (b, max_size)) ->
        let lu = Batched_lu.factor ~prec ~mode:S.Sampled b in
        let gh = Batched_gh.factor ~prec ~mode:S.Sampled b in
        (* The fixed-size strategy a cuBLAS-style API forces: pad every
           block to the batch maximum and run the uniform kernel. *)
        let padded =
          let sizes = Batch.uniform_sizes ~count:target ~size:max_size in
          let pb = Batch.create sizes in
          let st = Random.State.make [| 0xab1e; max_size |] in
          Batch.set_matrix pb 0 (Matrix.random_diagdom ~state:st max_size);
          Cublas_model.factor ~prec ~mode:S.Sampled pb
        in
        let mean =
          Array.fold_left ( + ) 0 b.Batch.sizes
          |> fun t -> float_of_int t /. float_of_int target
        in
        [
          name;
          Printf.sprintf "%.1f" mean;
          string_of_int max_size;
          Printf.sprintf "%.1f" lu.Batched_lu.stats.L.gflops;
          Printf.sprintf "%.1f" gh.Batched_gh.stats.L.gflops;
          Printf.sprintf "%.1f" padded.Cublas_model.stats.L.time_us;
          Printf.sprintf "%.1f" lu.Batched_lu.stats.L.time_us;
          Printf.sprintf "%.2fx"
            (padded.Cublas_model.stats.L.time_us
            /. lu.Batched_lu.stats.L.time_us);
        ])
      cases
  in
  Report.print_table ppf
    ~title:
      (Printf.sprintf
         "GETRF on supervariable-blocked batches (%d blocks, double): \
          variable-size kernels vs pad-to-max cuBLAS strategy"
         target)
    ~header:
      [
        "size mix"; "mean size"; "max"; "LU GFLOPS"; "GH GFLOPS";
        "padded us"; "LU us"; "LU speedup";
      ]
    ~rows

(* Both runs credit the same useful flops, so the GFLOPS gap IS the
   checksum work: encode + register verify for LU, the factor re-read for
   TRSV. *)
let abft_overhead ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf
    "ABFT overhead — protected vs unprotected batched kernels";
  let count = if quick then 5_000 else 40_000 in
  let prec = Precision.Double in
  let pct (plain : L.stats) (prot : L.stats) =
    100.0 *. (prot.L.time_us -. plain.L.time_us) /. plain.L.time_us
  in
  let rows =
    pmap pool
      (fun size ->
        let b = representative_batch ~count ~size () in
        let rhs = Batch.vec_random b.Batch.sizes in
        let lu_plain = Batched_lu.factor ~prec ~mode:S.Sampled b in
        let lu_abft = Batched_lu.factor ~prec ~mode:S.Sampled ~abft:true b in
        let tr_plain =
          Batched_trsv.solve ~prec ~mode:S.Sampled
            ~factors:lu_plain.Batched_lu.factors
            ~pivots:lu_plain.Batched_lu.pivots rhs
        in
        let tr_abft =
          Batched_trsv.solve ~prec ~mode:S.Sampled ~abft:true
            ~factors:lu_plain.Batched_lu.factors
            ~pivots:lu_plain.Batched_lu.pivots rhs
        in
        [
          string_of_int size;
          Printf.sprintf "%.1f" lu_plain.Batched_lu.stats.L.gflops;
          Printf.sprintf "%.1f" lu_abft.Batched_lu.stats.L.gflops;
          Printf.sprintf "%.1f%%"
            (pct lu_plain.Batched_lu.stats lu_abft.Batched_lu.stats);
          Printf.sprintf "%.1f" tr_plain.Batched_trsv.stats.L.gflops;
          Printf.sprintf "%.1f" tr_abft.Batched_trsv.stats.L.gflops;
          Printf.sprintf "%.1f%%"
            (pct tr_plain.Batched_trsv.stats tr_abft.Batched_trsv.stats);
        ])
      (size_sweep quick)
  in
  Report.print_table ppf
    ~title:
      (Printf.sprintf
         "ABFT-protected vs unprotected GFLOPS — batch %d, double (ovh = \
          modelled time increase)"
         count)
    ~header:
      [ "size"; "LU"; "LU+abft"; "LU ovh"; "TRSV"; "TRSV+abft"; "TRSV ovh" ]
    ~rows

let ablation_extraction ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf
    "Ablation C — diagonal-block extraction strategies (balanced vs unbalanced)";
  let block_size = 16 in
  let mk_blocking n =
    let k = n / block_size in
    ( Array.init k (fun i -> i * block_size),
      Array.make k block_size )
  in
  let cases =
    [
      ( "laplacian (balanced)",
        Vblu_workloads.Generators.laplacian_2d
          ~nx:(if quick then 16 else 32)
          ~ny:(if quick then 16 else 32)
          () );
      ( "circuit (unbalanced)",
        Vblu_workloads.Generators.circuit_like
          ~n:(if quick then 512 else 2048)
          ~hubs:(if quick then 8 else 16)
          ~hub_degree:(if quick then 128 else 500)
          () );
    ]
  in
  let rows =
    pmap pool
      (fun (name, a) ->
        let n, _ = Vblu_sparse.Csr.dims a in
        let starts, sizes = mk_blocking n in
        let run strategy =
          (Extraction.extract ~strategy a ~block_starts:starts
             ~block_sizes:sizes)
            .Extraction.stats
        in
        let naive = run Extraction.Row_per_thread in
        let shared = run Extraction.Shared_memory in
        [
          name;
          Printf.sprintf "%.2f" (Vblu_sparse.Csr.row_imbalance a);
          Printf.sprintf "%.1f" naive.L.time_us;
          Printf.sprintf "%.1f" shared.L.time_us;
          Printf.sprintf "%.2fx" (naive.L.time_us /. shared.L.time_us);
        ])
      cases
  in
  Report.print_table ppf ~title:"extraction kernel time (modelled, us)"
    ~header:[ "matrix"; "row imbalance"; "row-per-thread"; "shared-memory"; "speedup" ]
    ~rows

(* Layout sweep: the same kernels over the same data in both storage
   layouts, Exact mode (the coalescing model needs every warp's real
   addresses, not one representative per size class).  Counts are small —
   the point is the transaction ratio, not occupancy. *)
let layout_sweep ?(quick = false) ?(pool = Pool.sequential) ppf =
  Report.section ppf "Layout sweep — blocked vs interleaved (SoA) batches";
  let count = if quick then 128 else 512 in
  let prec = Precision.Double in
  let mixes =
    [
      ("uniform 8", Batch.uniform_sizes ~count ~size:8);
      ("uniform 16", Batch.uniform_sizes ~count ~size:16);
      ("uniform 32", Batch.uniform_sizes ~count ~size:32);
      ( "variable 5..30",
        Batch.random_sizes
          ~state:(Random.State.make [| 0x1a9; 7 |])
          ~count ~min_size:5 ~max_size:30 () );
    ]
  in
  let kernels = [ "getrf.lu"; "trsv.eager"; "trsv.lazy"; "gemm" ] in
  let cases =
    List.concat_map (fun k -> List.map (fun m -> (k, m)) mixes) kernels
  in
  let rows =
    pmap pool
      (fun (kernel, (mix, sizes)) ->
        let run layout =
          let st = Random.State.make [| 0x7a90; Hashtbl.hash (kernel, mix) |] in
          let b = Batch.random_diagdom ~state:st ~layout sizes in
          match kernel with
          | "getrf.lu" -> (Batched_lu.factor ~prec b).Batched_lu.stats
          | "trsv.eager" | "trsv.lazy" ->
            let variant =
              if kernel = "trsv.eager" then Batched_trsv.Eager
              else Batched_trsv.Lazy
            in
            let f = Batched_lu.factor ~prec b in
            let rhs = Batch.vec_random ~state:st ~layout sizes in
            (Batched_trsv.solve ~prec ~variant ~factors:f.Batched_lu.factors
               ~pivots:f.Batched_lu.pivots rhs)
              .Batched_trsv.stats
          | _ ->
            let b2 = Batch.random_diagdom ~state:st ~layout sizes in
            (Batched_gemm.multiply ~prec ~a:b ~b:b2 ()).Batched_gemm.stats
        in
        let blocked = run Batch.Blocked
        and interleaved = run Batch.Interleaved in
        let txns (s : L.stats) = s.L.total.Vblu_simt.Counter.gmem_transactions in
        [
          kernel;
          mix;
          Printf.sprintf "%.0f" (txns blocked);
          Printf.sprintf "%.0f" (txns interleaved);
          Printf.sprintf "%.2fx" (txns blocked /. txns interleaved);
          Printf.sprintf "%.1f" blocked.L.gflops;
          Printf.sprintf "%.1f" interleaved.L.gflops;
        ])
      cases
  in
  Report.print_table ppf
    ~title:
      (Printf.sprintf
         "gmem transactions and modelled GFLOPS by layout — %d blocks, \
          double (ratio = blocked / interleaved txns)"
         count)
    ~header:
      [
        "kernel"; "size mix"; "blocked txn"; "interleaved txn"; "txn ratio";
        "blocked GFLOPS"; "interleaved GFLOPS";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark points (BENCH_*.json artifacts).         *)

let routine_slug = function
  | R_lu -> "lu"
  | R_gh -> "gh"
  | R_ght -> "ght"
  | R_cublas -> "cublas"

let bench_points ?(quick = false) ?(pool = Pool.sequential) ?obs () =
  let sizes = if quick then [ 16; 32 ] else [ 8; 16; 24; 32 ] in
  let batches = if quick then [ 5_000 ] else [ 5_000; 40_000 ] in
  let points =
    List.concat_map
      (fun prec ->
        List.concat_map
          (fun size ->
            List.concat_map
              (fun count ->
                List.concat_map
                  (fun r ->
                    [
                      (`Getrf, r, prec, size, count);
                      (`Trsv, r, prec, size, count);
                    ])
                  routines)
              batches)
          sizes)
      precisions
  in
  pmap_obs obs pool
    (fun obs (kind, r, prec, size, count) ->
      let stats =
        match kind with
        | `Getrf -> getrf_stats ?obs ~prec ~count ~size r
        | `Trsv -> trsv_stats ?obs ~prec ~count ~size r
      in
      let family = match kind with `Getrf -> "getrf." | `Trsv -> "trsv." in
      {
        Vblu_obs.Artifact.kernel = family ^ routine_slug r;
        prec = (match prec with Precision.Single -> "fp32" | Double -> "fp64");
        size;
        batch = count;
        gflops = stats.L.gflops;
        bandwidth_gbs = stats.L.bandwidth_gbs;
        time_us = stats.L.time_us;
      })
    points

let bench_artifact ?(quick = false) ?(pool = Pool.sequential) ?obs ~target () =
  let entries = bench_points ~quick ~pool ?obs () in
  Vblu_obs.Artifact.make ~target ~config:"p100"
    ~domains:(Pool.num_domains pool) ~quick entries
