(** Simulated global (device) memory.

    A flat array of scalars addressed by element index.  All traffic goes
    through {!Warp.load} / {!Warp.store}, which count memory transactions
    with the coalescing rule of the hardware model: the distinct
    [transaction_bytes]-sized segments touched by the active lanes of one
    access, each charged in full — so a warp reading 32 consecutive
    doubles costs 4 transactions of 64 B, while the same 32 doubles strided
    by a matrix row cost 32 transactions (the paper's coalesced vs
    non-coalesced distinction). *)

open Vblu_smallblas

type t

val create : Precision.t -> int -> t
(** [create prec n] allocates [n] scalars of zero. *)

val of_array : Precision.t -> float array -> t
(** Stages host data; values are rounded to [prec] on the way in, as a
    host-to-device copy of a narrower type would. *)

val length : t -> int

val prec : t -> Precision.t

val get : t -> int -> float
(** Direct host-side access (no traffic counted); for staging and tests. *)

val set : t -> int -> float -> unit

val corrupt : t -> int -> (float -> float) -> unit
(** [corrupt t i f] replaces cell [i] with [f] of its current value,
    {e bypassing} the precision rounding of {!set} — the hook fault
    injection uses to model a raw DRAM bit flip. *)

val to_array : t -> float array
(** Host-side copy of the full contents. *)

val raw : t -> float array
(** The live backing store — no copy, no traffic counted.  The
    direct-execution fast path reads and writes device values in place
    through it.  Writers must store only values already representable at
    {!prec}: the batch-view kernels do, since every value they produce went
    through a rounding [Precision] op (and {!of_array} pre-rounds staged
    inputs). *)
