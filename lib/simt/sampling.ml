open Vblu_par

type mode = Exact | Sampled

(* [Sampled] with an armed fault plan would silently drop every fault
   addressed to a non-representative problem — the plan's sites are keyed
   by problem index, but only the first problem of each size class
   executes.  Rather than quietly under-inject, an armed launch degrades
   to per-problem execution. *)
let effective_mode ?faults mode =
  match (mode, faults) with Sampled, Some _ -> Exact | m, _ -> m

(* Both modes funnel every observed warp counter through a single sequential
   fold ([observe]) in problem-index (resp. sorted-class) order.  The
   parallel paths only parallelize the *kernel execution*, storing each
   warp's counter at its own index; the fold then runs in the caller in the
   same fixed order as the sequential path, so float accumulation order and
   max-warp tie-breaking — and therefore the modelled time — are
   bit-identical regardless of the domain count. *)
(* Record one launch into an observability context: a span of the modelled
   kernel time (advancing the simulated clock), plus registry totals.  Runs
   in the sequential caller after the stats are folded, so the recording
   order — and thus the trace — is independent of the domain count.  The
   stats themselves are computed before and unaffected. *)
let record_launch obs ~name ~prec (stats : Launch.stats) =
  if Vblu_obs.Ctx.enabled obs then begin
    let prec_s = Vblu_smallblas.Precision.to_string prec in
    Vblu_obs.Ctx.span_dur obs ~cat:"kernel" ~dur:stats.Launch.time_us name
      ~args:
        [
          ("prec", Vblu_obs.Trace.Str prec_s);
          ("warps", Vblu_obs.Trace.Int stats.Launch.warps);
          ("gflops", Vblu_obs.Trace.Float stats.Launch.gflops);
          ("bandwidth_gbs", Vblu_obs.Trace.Float stats.Launch.bandwidth_gbs);
          ("faults_injected", Vblu_obs.Trace.Int stats.Launch.faults_injected);
        ];
    Vblu_obs.Ctx.incr obs "launch.count" 1.0;
    Vblu_obs.Ctx.incr_l obs "launch.count" [ ("kernel", name) ] 1.0;
    Vblu_obs.Ctx.incr obs "launch.time_us" stats.Launch.time_us;
    Vblu_obs.Ctx.incr obs "launch.warps" (float_of_int stats.Launch.warps);
    Vblu_obs.Ctx.incr obs "launch.useful_flops"
      stats.Launch.total.Counter.useful_flops;
    Vblu_obs.Ctx.incr obs "launch.gmem_bytes" stats.Launch.total.Counter.gmem_bytes;
    if stats.Launch.faults_injected > 0 then
      Vblu_obs.Ctx.incr obs "faults.injected"
        (float_of_int stats.Launch.faults_injected);
    Vblu_obs.Ctx.observe obs "launch.time_us.hist" stats.Launch.time_us;
    Vblu_obs.Ctx.observe obs "launch.gflops.hist" stats.Launch.gflops
  end

(* Per-domain warp recycling: warps now own a preallocated scratch arena,
   so creating one per problem would dominate small launches.  Each domain
   keeps one warp per (config fingerprint, precision) — one int compare
   per lookup instead of hashing the whole device record — and resets it
   between problems; re-entrant use (a kernel callback that itself
   launches) falls back to a fresh throwaway warp, as does the rare
   fingerprint-0 collision between hand-built, unvalidated configs. *)
let domain_warps :
    (int * Vblu_smallblas.Precision.t, Warp.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let with_warp ~cfg ?inject prec f =
  let tbl = Domain.DLS.get domain_warps in
  let k = (cfg.Config.fingerprint, prec) in
  let w =
    match Hashtbl.find_opt tbl k with
    | Some w when Warp.cfg w == cfg || Warp.cfg w = cfg -> Some w
    | Some _ -> None
    | None ->
      let w = Warp.create ~cfg prec () in
      Hashtbl.add tbl k w;
      Some w
  in
  match w with
  | Some w when Warp.acquire w ->
    Fun.protect
      ~finally:(fun () -> Warp.release w)
      (fun () ->
        Warp.reset ?inject w;
        f w)
  | _ -> f (Warp.create ~cfg ?inject prec ())

let run ?(cfg = Config.p100) ?(pool = Pool.sequential) ?faults ?obs
    ?(name = "launch") ?cache ?direct ~prec ~mode ~sizes ~kernel () =
  let n = Array.length sizes in
  if n = 0 then Launch.empty_stats ()
  else begin
    let mode = effective_mode ?faults mode in
    (* Faults fired by earlier launches stay claimed (one-shot per plan
       lifetime); this launch reports only its own firings. *)
    let fired_before =
      match faults with None -> 0 | Some p -> Vblu_fault.Fault.Plan.injected p
    in
    let total = Counter.create () in
    let max_warp = ref (Counter.create ()) in
    let max_cycles = ref (-1.0) in
    let observe c =
      Counter.add total c;
      let cy = Launch.warp_cycles cfg prec c in
      if cy > !max_cycles then begin
        max_cycles := cy;
        max_warp := c
      end
    in
    (* The counter cache applies only to injection-free launches: an armed
       plan must both fire its faults and charge real counters, so it
       bypasses lookups and stores entirely.  Hand-built configs that never
       went through [Config.validate] carry fingerprint 0 and are
       uncacheable (their keys could alias). *)
    let use_cache =
      match (cache, faults) with
      | Some _, None ->
        Launch.Cache.enabled () && cfg.Config.fingerprint <> 0
      | _ -> false
    in
    (* Direct execution serves only cache hits certified at store time,
       and only when nothing observes the interpreted stream: an enabled
       [?obs] context wants real spans, so it keeps the simulated path. *)
    let direct_exec =
      if use_cache && not (Vblu_obs.Ctx.enabled obs) then direct else None
    in
    let salt_of = match cache with Some f -> f | None -> fun _ -> 0 in
    (* First (or healing) execution of a key class: certify the direct
       closure by running it — [direct_ok] iff it completes without
       breakdown — then run the charging kernel, whose interpreted writes
       are authoritative (they overwrite everything the probe wrote;
       the two agree bitwise whenever [direct_ok]). *)
    let charge_and_store w key i =
      let direct_ok = match direct with None -> false | Some d -> d i = 0 in
      kernel w i;
      let c = Counter.copy (Warp.counter w) in
      Launch.Cache.store key ~counter:(Counter.copy c)
        ~events:(Warp.events w) ~direct_ok;
      c
    in
    (* Replay charge-free; the event signature certifies the stream
       matched the cached one.  A mismatch (a data-dependent path, e.g. a
       breakdown early-exit) reruns the problem charging — kernels are
       idempotent per problem, inputs and outputs are separate buffers —
       and re-stores, so a poisoned first entry heals. *)
    let replay entry key i =
      with_warp ~cfg prec (fun w ->
          Warp.set_charging w false;
          kernel w i;
          if Warp.events_equal w entry.Launch.Cache.events then
            Counter.copy entry.Launch.Cache.counter
          else begin
            Launch.Cache.demote_hit ();
            Warp.reset w;
            charge_and_store w key i
          end)
    in
    let run_cached key i =
      match Launch.Cache.find key with
      | None -> with_warp ~cfg prec (fun w -> charge_and_store w key i)
      | Some entry -> (
        match direct_exec with
        | Some d when entry.Launch.Cache.direct_ok ->
          (* The fast path: no warp, no interpretation — the problem's
             numerics run straight through host loops and the cached
             counters are attached.  A breakdown ([info <> 0]) means the
             cached charge stream no longer applies either, so the
             problem reruns charging and the entry is de-certified. *)
          if d i = 0 then begin
            Launch.Cache.note_direct ();
            Counter.copy entry.Launch.Cache.counter
          end
          else begin
            Launch.Cache.demote_hit ();
            with_warp ~cfg prec (fun w -> charge_and_store w key i)
          end
        | _ -> replay entry key i)
    in
    let run_warp i =
      if use_cache then
        run_cached
          (Launch.Cache.key ~kernel:name ~prec ~size:sizes.(i)
             ~salt:(salt_of i) ~cfg)
          i
      else begin
        let inject =
          match faults with
          | None -> None
          | Some p ->
            Vblu_fault.Fault.Injector.create p ~problem:i ~size:sizes.(i)
        in
        with_warp ~cfg ?inject prec (fun w ->
            kernel w i;
            Counter.copy (Warp.counter w))
      end
    in
    (match mode with
    | Exact ->
      if Pool.num_domains pool = 1 || n = 1 then
        for i = 0 to n - 1 do
          observe (run_warp i)
        done
      else begin
        let counters = Pool.parallel_init pool n run_warp in
        Array.iter observe counters
      end
    | Sampled ->
      (* One representative (the first occurrence) per distinct size. *)
      let seen = Hashtbl.create 8 in
      Array.iteri
        (fun i s ->
          match Hashtbl.find_opt seen s with
          | Some (rep, count) -> Hashtbl.replace seen s (rep, count + 1)
          | None -> Hashtbl.add seen s (i, 1))
        sizes;
      let classes =
        Hashtbl.fold (fun _ (rep, count) acc -> (rep, count) :: acc) seen []
        |> List.sort compare |> Array.of_list
      in
      let counters =
        if Pool.num_domains pool = 1 || Array.length classes = 1 then
          Array.map (fun (rep, _) -> run_warp rep) classes
        else Pool.parallel_map pool (fun (rep, _) -> run_warp rep) classes
      in
      Array.iteri
        (fun k (_, count) ->
          let c = counters.(k) in
          let cy = Launch.warp_cycles cfg prec c in
          if cy > !max_cycles then begin
            max_cycles := cy;
            max_warp := c
          end;
          Counter.add total (Counter.scale_into c (float_of_int count)))
        classes);
    let faults_injected =
      match faults with
      | None -> 0
      | Some p -> Vblu_fault.Fault.Plan.injected p - fired_before
    in
    let stats =
      Launch.time ~cfg ~faults_injected ~prec ~warps:n ~total
        ~max_warp:!max_warp ()
    in
    record_launch obs ~name ~prec stats;
    stats
  end
