(** The analytic kernel-timing model.

    Converts the event counts of a kernel's warps into a modelled execution
    time.  The model captures the three effects the paper's performance
    discussion rests on:

    - {b occupancy ramp}: an SM needs many resident warps to hide latency
      and fill its issue slots, so throughput grows with batch size and
      saturates — the left-to-right shape of Figures 4 and 6;
    - {b bandwidth bound}: total transaction bytes divided by memory
      bandwidth floor the runtime — what makes TRSV memory-bound and
      punishes non-coalesced access;
    - {b serial floor}: a single warp's critical path (issue slots plus one
      memory latency per dependent round-trip) bounds tiny batches.

    [time = launch_overhead + max(compute, bandwidth, serial)]. *)

open Vblu_smallblas

type stats = {
  time_us : float;  (** modelled kernel time. *)
  gflops : float;  (** useful flops / time. *)
  bandwidth_gbs : float;  (** achieved transaction bandwidth. *)
  warps : int;
  total : Counter.t;  (** aggregate event counts. *)
  faults_injected : int;
      (** soft errors fired into this launch by a {!Vblu_fault.Fault.Plan}
          ([0] when injection is off — the default). *)
}

val warp_cycles : Config.t -> Precision.t -> Counter.t -> float
(** Issue-slot cycles of one warp's instruction stream (no memory). *)

val time :
  ?cfg:Config.t ->
  ?faults_injected:int ->
  prec:Precision.t ->
  warps:int ->
  total:Counter.t ->
  max_warp:Counter.t ->
  unit ->
  stats
(** [time ~prec ~warps ~total ~max_warp ()] models a kernel launch of
    [warps] warps whose aggregate counters are [total] and whose heaviest
    single warp is [max_warp].
    @raise Invalid_argument when [warps <= 0]; empty batches are handled
    upstream with {!empty_stats}. *)

val empty_stats : unit -> stats
(** The defined result for an empty batch: zero time, zero rates, zero
    warps, and a fresh all-zero counter. *)

val pp_stats : Format.formatter -> stats -> unit
