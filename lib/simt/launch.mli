(** The analytic kernel-timing model.

    Converts the event counts of a kernel's warps into a modelled execution
    time.  The model captures the three effects the paper's performance
    discussion rests on:

    - {b occupancy ramp}: an SM needs many resident warps to hide latency
      and fill its issue slots, so throughput grows with batch size and
      saturates — the left-to-right shape of Figures 4 and 6;
    - {b bandwidth bound}: total transaction bytes divided by memory
      bandwidth floor the runtime — what makes TRSV memory-bound and
      punishes non-coalesced access;
    - {b serial floor}: a single warp's critical path (issue slots plus one
      memory latency per dependent round-trip) bounds tiny batches.

    [time = launch_overhead + max(compute, bandwidth, serial)]. *)

open Vblu_smallblas

type stats = {
  time_us : float;  (** modelled kernel time. *)
  gflops : float;  (** useful flops / time. *)
  bandwidth_gbs : float;  (** achieved transaction bandwidth. *)
  warps : int;
  total : Counter.t;  (** aggregate event counts. *)
  faults_injected : int;
      (** soft errors fired into this launch by a {!Vblu_fault.Fault.Plan}
          ([0] when injection is off — the default). *)
}

val warp_cycles : Config.t -> Precision.t -> Counter.t -> float
(** Issue-slot cycles of one warp's instruction stream (no memory). *)

val time :
  ?cfg:Config.t ->
  ?faults_injected:int ->
  prec:Precision.t ->
  warps:int ->
  total:Counter.t ->
  max_warp:Counter.t ->
  unit ->
  stats
(** [time ~prec ~warps ~total ~max_warp ()] models a kernel launch of
    [warps] warps whose aggregate counters are [total] and whose heaviest
    single warp is [max_warp].
    @raise Invalid_argument when [warps <= 0]; empty batches are handled
    upstream with {!empty_stats}. *)

val empty_stats : unit -> stats
(** The defined result for an empty batch: zero time, zero rates, zero
    warps, and a fresh all-zero counter. *)

val pp_stats : Format.formatter -> stats -> unit

(** Cross-launch per-warp counter cache.

    A cacheable kernel's counters are a pure function of the cache {!Cache.key}
    — kernel name, precision, problem size, device config and an integer
    [salt] encoding option flags that change the charge stream (ABFT
    on/off, number of right-hand sides, …).  [Sampling.run ?cache] runs the
    first warp of each size class charging and stores a snapshot; later
    warps of the class execute charge-free (numerics and faults untouched)
    and receive a copy of the cached counter.  Safety: the warp's
    always-on event signature is compared against the entry's — any
    divergence (a data-dependent path, e.g. a breakdown early-exit)
    triggers a charging rerun of that problem instead of using the cache.
    Injection-armed launches bypass the cache entirely.

    The device config is keyed by its precomputed {!Config.t.fingerprint}
    (one int compare per lookup); {!Config.validate} asserts distinct
    presets get distinct fingerprints.  Entries also record whether the
    kernel's direct-execution closure reproduced the simulator's result
    when the entry was stored ([direct_ok]) — a certified hit may run the
    problem's numerics straight through host loops with no op
    interpretation at all (see [Sampling.run]'s [?direct]).

    The cache is global and thread-safe; entries are never invalidated
    (keys are value-types and the mapping is pure), but {!Cache.clear}
    empties it for tests and {!Cache.set_enabled} turns lookups off. *)
module Cache : sig
  type key = private {
    kernel : string;
    prec : Precision.t;
    size : int;
    salt : int;
    cfg_fp : int;  (** {!Config.t.fingerprint} of the device config. *)
  }

  type entry = {
    counter : Counter.t;
    events : int array;
    direct_ok : bool;
        (** the kernel's direct closure ran clean (returned [info = 0])
            when this entry was stored, certifying direct execution for
            later hits on the key. *)
  }

  val key :
    kernel:string -> prec:Precision.t -> size:int -> salt:int -> cfg:Config.t ->
    key

  val find : key -> entry option
  (** One mutex acquisition; counts its own outcome as a hit or miss (a
      caller whose replay check subsequently fails reclassifies with
      {!demote_hit}).  The returned counter is shared — callers must
      {!Counter.copy} before mutating (as [Sampling] does). *)

  val store : key -> counter:Counter.t -> events:int array -> direct_ok:bool -> unit
  (** [counter] and [events] are owned by the cache after the call; pass
      detached snapshots. *)

  val enabled : unit -> bool

  val set_enabled : bool -> unit
  (** Default: enabled.  Disabling stops lookups {e and} stores — and with
      them the direct fast path, which only runs off certified entries. *)

  val demote_hit : unit -> unit
  (** Reclassify the most recent provisional hit as a miss (the cached
      signature did not match the replayed stream, or a certified direct
      run hit a breakdown). *)

  val note_direct : unit -> unit

  val stats : unit -> int * int
  (** [(hits, misses)] since start (or the last {!clear}). *)

  val direct_hits : unit -> int
  (** How many hits were served by direct execution (no interpreter);
      always [<= fst (stats ())]. *)

  val entries : unit -> int
  (** Number of distinct keys currently cached. *)

  val export_gauges : Vblu_obs.Metrics.t -> unit
  (** Publish the cache tallies as registry gauges —
      [launch.cache.hits] / [.misses] / [.direct_hits] / [.entries] plus
      the derived [.hit_rate] and [.direct_fraction] — so health
      snapshots and bench artifacts can report cache effectiveness
      without poking internals.  Gauges are last-set-wins: refresh per
      reporting window at will. *)

  val clear : unit -> unit
end
