open Vblu_smallblas

type t = {
  name : string;
  num_sms : int;
  clock_ghz : float;
  warp_size : int;
  max_warps_per_sm : int;
  fma_cycles_sp : float;
  fma_cycles_dp : float;
  div_cycles_sp : float;
  div_cycles_dp : float;
  shfl_cycles : float;
  dp_shfl_factor : float;
  smem_cycles : float;
  gmem_issue_cycles : float;
  mem_bandwidth_gbs : float;
  mem_efficiency : float;
  mem_latency_cycles : float;
  transaction_bytes : int;
  smem_banks : int;
  launch_overhead_us : float;
  max_issue_efficiency : float;
  occupancy_tau : float;
  fingerprint : int;
}

(* Nonzero hash over every descriptive field, stamped by [validate] —
   hot-path consumers (Launch.Cache keys, the per-domain warp-recycle
   table) compare this one int instead of hashing the whole record per
   problem.  [fingerprint] itself is excluded, so revalidation is
   idempotent. *)
let compute_fingerprint t =
  let h = ref 0x811c9dc5 in
  let mix v = h := (!h * 0x01000193) lxor Hashtbl.hash v in
  mix t.name;
  mix t.num_sms;
  mix t.clock_ghz;
  mix t.warp_size;
  mix t.max_warps_per_sm;
  mix t.fma_cycles_sp;
  mix t.fma_cycles_dp;
  mix t.div_cycles_sp;
  mix t.div_cycles_dp;
  mix t.shfl_cycles;
  mix t.dp_shfl_factor;
  mix t.smem_cycles;
  mix t.gmem_issue_cycles;
  mix t.mem_bandwidth_gbs;
  mix t.mem_efficiency;
  mix t.mem_latency_cycles;
  mix t.transaction_bytes;
  mix t.smem_banks;
  mix t.launch_overhead_us;
  mix t.max_issue_efficiency;
  mix t.occupancy_tau;
  let fp = !h land max_int in
  if fp = 0 then 1 else fp

(* Fingerprint-to-config registry: every validated config lands here, so
   two {e distinct} presets colliding on one fingerprint — which would
   silently cross-pollute the counter cache — fail loudly at definition
   time instead. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

(* Every preset funnels through [validate], so a miscalibrated constant
   (zeroed bandwidth, negative cycle count, non-warp-sized warp) fails at
   definition time instead of silently producing NaN/inf modelled times. *)
let validate t =
  let fail field what =
    invalid_arg
      (Printf.sprintf "Config.validate (%s): %s must be %s" t.name field what)
  in
  let positive_f field v = if not (v > 0.0) then fail field "positive" in
  let positive_i field v = if v <= 0 then fail field "positive" in
  positive_i "num_sms" t.num_sms;
  positive_f "clock_ghz" t.clock_ghz;
  if t.warp_size <> 32 then fail "warp_size" "32 (the SIMT width this project assumes)";
  positive_i "max_warps_per_sm" t.max_warps_per_sm;
  positive_f "fma_cycles_sp" t.fma_cycles_sp;
  positive_f "fma_cycles_dp" t.fma_cycles_dp;
  positive_f "div_cycles_sp" t.div_cycles_sp;
  positive_f "div_cycles_dp" t.div_cycles_dp;
  positive_f "shfl_cycles" t.shfl_cycles;
  positive_f "dp_shfl_factor" t.dp_shfl_factor;
  positive_f "smem_cycles" t.smem_cycles;
  positive_f "gmem_issue_cycles" t.gmem_issue_cycles;
  positive_f "mem_bandwidth_gbs" t.mem_bandwidth_gbs;
  if not (t.mem_efficiency > 0.0 && t.mem_efficiency <= 1.0) then
    fail "mem_efficiency" "in (0, 1]";
  positive_f "mem_latency_cycles" t.mem_latency_cycles;
  positive_i "transaction_bytes" t.transaction_bytes;
  positive_i "smem_banks" t.smem_banks;
  if t.launch_overhead_us < 0.0 then fail "launch_overhead_us" "non-negative";
  if not (t.max_issue_efficiency > 0.0 && t.max_issue_efficiency <= 1.0) then
    fail "max_issue_efficiency" "in (0, 1]";
  positive_f "occupancy_tau" t.occupancy_tau;
  let t = { t with fingerprint = compute_fingerprint t } in
  Mutex.lock registry_lock;
  let prev = Hashtbl.find_opt registry t.fingerprint in
  (match prev with
  | Some p when p <> t -> ()
  | _ -> Hashtbl.replace registry t.fingerprint t);
  Mutex.unlock registry_lock;
  (match prev with
  | Some p when p <> t ->
    invalid_arg
      (Printf.sprintf
         "Config.validate (%s): fingerprint collides with distinct preset %s"
         t.name p.name)
  | _ -> ());
  t

let p100 =
  validate
  {
    name = "Tesla P100 (model)";
    num_sms = 56;
    clock_ghz = 1.328;
    warp_size = 32;
    max_warps_per_sm = 64;
    fma_cycles_sp = 0.5;
    fma_cycles_dp = 1.0;
    div_cycles_sp = 4.0;
    div_cycles_dp = 8.0;
    shfl_cycles = 1.0;
    dp_shfl_factor = 2.0;
    smem_cycles = 1.0;
    gmem_issue_cycles = 8.0;
    mem_bandwidth_gbs = 732.0;
    mem_efficiency = 0.45;
    mem_latency_cycles = 450.0;
    transaction_bytes = 32;
    smem_banks = 32;
    launch_overhead_us = 4.0;
    max_issue_efficiency = 0.65;
    occupancy_tau = 73.0;
    fingerprint = 0;
  }

let fma_cycles t = function
  | Precision.Single -> t.fma_cycles_sp
  | Precision.Double -> t.fma_cycles_dp

let div_cycles t = function
  | Precision.Single -> t.div_cycles_sp
  | Precision.Double -> t.div_cycles_dp

let elements_per_transaction t prec =
  max 1 (t.transaction_bytes / Precision.bytes prec)
