(** One simulated warp: 32 lanes executing in lockstep.

    Kernels are written exactly as warp-synchronous CUDA: a lane-indexed
    value is a [float array] of length {!size} (the "register" each thread
    holds), operations apply to all lanes at once under an optional
    predication mask, and cross-lane data movement goes through shuffles.
    Every operation charges the warp's {!Counter.t}; predicated-off lanes
    still cost full issue slots (the SIMT execution rule that makes the
    paper's explicit row swap expensive: two active lanes, thirty idle). *)

open Vblu_smallblas
open Vblu_fault

type t

val create : ?cfg:Config.t -> ?inject:Fault.Injector.t -> Precision.t -> unit -> t
(** A fresh warp with zeroed counters.  [cfg] defaults to {!Config.p100}.
    [inject] attaches a fault injector (default: none — the zero-overhead
    path; without an injector, results and counters are bit-identical to a
    fault-free build). *)

val fault_step : t -> int -> unit
(** Announce elimination step [k] to the attached injector: plan sites
    addressed at [(problem, k)] arm (one-shot) and fire on the next
    operation of their target class — arithmetic results for [Register],
    shared-memory accesses for [Shared], global loads/stores for
    [Global].  A no-op without an injector.  Fired faults corrupt data
    only; they never charge the counters. *)

val size : t -> int

val prec : t -> Precision.t

val counter : t -> Counter.t

val cfg : t -> Config.t

val lanes : t -> int array
(** [|0; 1; …; size-1|] — the lane indices ("threadIdx"). *)

(** {1 Arithmetic} — one warp instruction each, lanewise, rounded to the
    warp's precision.  [?active] defaults to all lanes; inactive lanes
    pass their [c]/first-operand value through unchanged. *)

val fma : t -> ?active:bool array -> float array -> float array -> float array -> float array
(** [fma w a b c] is lanewise [a*b + c] (single rounding). *)

val fnma : t -> ?active:bool array -> float array -> float array -> float array -> float array
(** [fnma w a b c] is lanewise [c - a*b] (single rounding) — the
    elimination update, one instruction like {!fma}. *)

val add : t -> ?active:bool array -> float array -> float array -> float array
val sub : t -> ?active:bool array -> float array -> float array -> float array
val mul : t -> ?active:bool array -> float array -> float array -> float array

val div : t -> ?active:bool array -> float array -> float array -> float array
(** Charged at the hardware model's division expansion cost. *)

val sqrt_lanes : t -> ?active:bool array -> float array -> float array
(** Lanewise square root; like division, GPUs expand it into a
    multi-instruction sequence, so it is charged at the division cost. *)

val select : t -> bool array -> float array -> float array -> float array
(** [select w m a b] is lanewise [if m then a else b]; one instruction. *)

(** {1 Cross-lane communication} *)

val broadcast : t -> float array -> src:int -> float array
(** [broadcast w x ~src] gives every lane [x.(src)] — [__shfl_sync] from a
    single source lane; one shuffle instruction. *)

val argmax_abs : t -> ?active:bool array -> float array -> int
(** Index of the lane holding the largest magnitude among active lanes —
    the pivot search, realized as a [log₂ 32]-step butterfly reduction
    (5 shuffles + 5 compare/select pairs are charged).  Ties resolve to the
    lowest lane index, matching the sequential reference.
    @raise Invalid_argument if no lane is active. *)

(** {1 Global memory} *)

val load : t -> Gmem.t -> ?active:bool array -> int array -> float array
(** [load w mem addrs] reads [mem\[addrs.(lane)\]] into each active lane
    (inactive lanes read 0); charges the coalescing-derived number of
    transactions and their full bytes. *)

val store : t -> Gmem.t -> ?active:bool array -> int array -> float array -> unit

val round_barrier : t -> unit
(** Marks the end of a dependent global-memory round-trip: the next load
    cannot be overlapped with the previous one.  Adds one latency term to
    this warp's serial critical path. *)

(** {1 Shared memory} *)

type smem
(** A per-thread-block shared-memory tile. *)

val smem_alloc : t -> int -> smem

val smem_store : t -> smem -> ?active:bool array -> int array -> float array -> unit
(** Bank conflicts are detected per access (lanes hitting the same bank at
    different addresses serialize) and charged as extra issue slots. *)

val smem_load : t -> smem -> ?active:bool array -> int array -> float array

val smem_read : smem -> int -> float
(** Host-side peek (no cost); for tests. *)
