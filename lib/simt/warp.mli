(** One simulated warp: 32 lanes executing in lockstep.

    Kernels are written exactly as warp-synchronous CUDA: a lane-indexed
    value is a [float array] of length {!size} (the "register" each thread
    holds), operations apply to all lanes at once under an optional
    predication mask, and cross-lane data movement goes through shuffles.
    Every operation charges the warp's {!Counter.t}; predicated-off lanes
    still cost full issue slots (the SIMT execution rule that makes the
    paper's explicit row swap expensive: two active lanes, thirty idle).

    {b Zero-allocation discipline.}  A warp owns a scratch arena —
    preallocated register, mask and address slots plus the internal
    coalescing/bank-conflict scratch — and every operation has an
    [*_into] variant writing a caller-chosen destination.  Kernel inner
    loops run allocation-free: they borrow arena slots ({!reg},
    {!mask_slot}, {!addr_slot}), fill masks/addresses with plain loops,
    and chain [*_into] ops.  The allocating API remains as thin wrappers
    (fresh destination + the same in-place primitive), so both surfaces
    charge identically.

    {b Charge-free replay.}  {!set_charging}[ w false] turns off the
    floating-point counter work (including the coalescing segment count)
    while numerics proceed unchanged; the integer {!events} signature keeps
    counting issuing calls in both modes, witnessing that a replayed
    instruction stream matches the one whose counters were cached
    (see [Launch.Cache]). *)

open Vblu_smallblas
open Vblu_fault

type t

val create : ?cfg:Config.t -> ?inject:Fault.Injector.t -> Precision.t -> unit -> t
(** A fresh warp with zeroed counters and its own scratch arena.  [cfg]
    defaults to {!Config.p100}.  [inject] attaches a fault injector
    (default: none — the zero-overhead path; without an injector, results
    and counters are bit-identical to a fault-free build). *)

val reset : ?inject:Fault.Injector.t -> t -> unit
(** Recycle the warp for the next problem: zero the counters and event
    signature, re-enable charging, and replace the injector ([None] when
    omitted).  Arena contents are left stale — kernels overwrite every
    slot lane they read (loads write inactive lanes as 0), so no wiping
    pass is needed. *)

val fault_step : t -> int -> unit
(** Announce elimination step [k] to the attached injector: plan sites
    addressed at [(problem, k)] arm (one-shot) and fire on the next
    operation of their target class — arithmetic results for [Register],
    shared-memory accesses for [Shared], global loads/stores for
    [Global].  A no-op without an injector.  Fired faults corrupt data
    only; they never charge the counters. *)

val size : t -> int

val prec : t -> Precision.t

val counter : t -> Counter.t

val cfg : t -> Config.t

val lanes : t -> int array
(** [|0; 1; …; size-1|] — the lane indices ("threadIdx"). *)

(** {1 Scratch arena} *)

val reg : t -> int -> float array
(** [reg w i] borrows arena register slot [i] (a lane-width float array).
    72 slots exist — enough for two full 32-column tiles plus temporaries.
    Slots keep their contents across operations but are clobbered by
    whoever borrows the same index; a kernel owns the whole arena for the
    duration of its problem.
    @raise Invalid_argument on an out-of-range slot. *)

val mask_slot : t -> int -> bool array
(** Arena predication-mask slot (8 exist); fill with a plain loop. *)

val addr_slot : t -> int -> int array
(** Arena address-vector slot (4 exist). *)

val all_lanes : t -> bool array
(** The cached all-true mask (what [?active:None] uses internally).
    {b Never mutate it} — it is shared by every unpredicated op. *)

(** {1 Charge-free replay} *)

val set_charging : t -> bool -> unit
(** Enable/disable counter charging.  Charge-free mode skips all float
    counter updates and the coalescing/bank analyses; numerics, faults and
    the {!events} signature are unaffected.  {!reset} re-enables. *)

val charging : t -> bool

val events : t -> int array
(** The op-event signature: issuing-call counts
    [|fma; div; shfl; gmem; smem; rounds|], bumped once per API call in
    both charging modes.  Two runs of a data-independent kernel produce
    equal signatures; a divergent (e.g. breakdown) path shows up as a
    mismatch — the safety check behind [Launch.Cache] hits. *)

val events_equal : t -> int array -> bool
(** [events_equal w e] compares the warp's current signature against a
    previously captured {!events} array without allocating — the
    per-problem replay check of [Launch.Cache] hits (an array per problem
    would break the engine's allocation-free hot-path invariant). *)

val acquire : t -> bool
(** Try to mark the warp busy; [false] if it already is (re-entrant use —
    the caller must then fall back to a fresh warp). *)

val release : t -> unit

(** {1 Explicit charging} — for analytically modelled kernels.  Amounts
    are warp-instruction counts; each call also bumps the corresponding
    event once. *)

val charge_fma : t -> float -> unit
val charge_div : t -> float -> unit
val charge_shfl : t -> float -> unit

val charge_smem : t -> float -> unit
(** Shared-memory access slots, conflict serializations included by the
    caller. *)

val charge_gmem : t -> instrs:float -> txns:int -> unit
(** Global-memory issue slots plus [txns] transactions and their bytes. *)

val charge_gmem_frac : t -> instrs:float -> txns:float -> unit
(** Fractional {!charge_gmem} for cohort-amortized analytic charges: one
    problem's [1/width] share of a collective access.  Same event bump. *)

val charge_gmem_elems : t -> int -> unit
(** Logical elements touched (the pre-coalescing data volume). *)

(** {1 Cohort-cooperative coalescing} — interleaved batch layouts.

    With an interleaved (SoA) batch, one modelled warp serves a whole
    same-size cohort, one problem per lane: an element touched by this
    kernel is touched simultaneously for all cohort members, so the
    collective footprint of a lane address [a] is the contiguous strip
    [\[a - slot, a - slot + width)].  While a cohort context is set, the
    coalescing model counts the distinct transaction segments of the
    union of those strips and charges this problem its [1/width] share —
    fewer (often fractional) transactions per problem than the blocked
    layout's scattered accesses.  With [width <= 1] (the default) the
    charge is byte-identical to the classic per-lane model. *)

val set_cohort : t -> width:int -> slot:int -> unit
(** Enter cohort-cooperative charging: this warp computes cohort member
    [slot] of a [width]-member interleaved cohort.
    @raise Invalid_argument on a negative width/slot or [slot >= width]
    (when [width > 1]). *)

val clear_cohort : t -> unit
(** Back to per-lane coalescing (also done by {!reset}). *)

val cohort_width : t -> int
(** Current cohort width; [0] outside a cohort context. *)

val credit_flops : t -> float -> unit
(** Credit useful flops (no event — not an instruction).  A no-op in
    charge-free mode. *)

(** {1 Arithmetic} — one warp instruction each, lanewise, rounded to the
    warp's precision.  [?active] defaults to all lanes; inactive lanes
    pass their [c]/first-operand value through unchanged.  The [*_into]
    forms write [~dst] (which may alias any operand — lanes are
    independent); the plain forms allocate the result. *)

val fma_into :
  t -> ?active:bool array -> dst:float array -> float array -> float array ->
  float array -> unit
(** [fma_into w ~dst a b c] is lanewise [dst ← a*b + c] (single rounding);
    inactive lanes get [c]. *)

val fnma_into :
  t -> ?active:bool array -> dst:float array -> float array -> float array ->
  float array -> unit
(** [dst ← c - a*b] (single rounding) — the elimination update. *)

val add_into :
  t -> ?active:bool array -> dst:float array -> float array -> float array -> unit

val sub_into :
  t -> ?active:bool array -> dst:float array -> float array -> float array -> unit

val mul_into :
  t -> ?active:bool array -> dst:float array -> float array -> float array -> unit

val div_into :
  t -> ?active:bool array -> dst:float array -> float array -> float array -> unit

val sqrt_into : t -> ?active:bool array -> dst:float array -> float array -> unit

val select_into :
  t -> dst:float array -> bool array -> float array -> float array -> unit
(** [select_into w ~dst m a b] is lanewise [dst ← if m then a else b]. *)

val broadcast_into : t -> dst:float array -> float array -> src:int -> unit
(** Every lane of [dst] gets [x.(src)] ([x] read before [dst] is filled,
    so aliasing is fine); one shuffle instruction. *)

val fma : t -> ?active:bool array -> float array -> float array -> float array -> float array
(** [fma w a b c] is lanewise [a*b + c] (single rounding). *)

val fnma : t -> ?active:bool array -> float array -> float array -> float array -> float array
(** [fnma w a b c] is lanewise [c - a*b] (single rounding) — the
    elimination update, one instruction like {!fma}. *)

val add : t -> ?active:bool array -> float array -> float array -> float array
val sub : t -> ?active:bool array -> float array -> float array -> float array
val mul : t -> ?active:bool array -> float array -> float array -> float array

val div : t -> ?active:bool array -> float array -> float array -> float array
(** Charged at the hardware model's division expansion cost. *)

val sqrt_lanes : t -> ?active:bool array -> float array -> float array
(** Lanewise square root; like division, GPUs expand it into a
    multi-instruction sequence, so it is charged at the division cost. *)

val select : t -> bool array -> float array -> float array -> float array
(** [select w m a b] is lanewise [if m then a else b]; one instruction. *)

(** {1 Cross-lane communication} *)

val broadcast : t -> float array -> src:int -> float array
(** [broadcast w x ~src] gives every lane [x.(src)] — [__shfl_sync] from a
    single source lane; one shuffle instruction. *)

val argmax_abs : t -> ?active:bool array -> float array -> int
(** Index of the lane holding the largest magnitude among active lanes —
    the pivot search, realized as a [log₂ 32]-step butterfly reduction
    (5 shuffles + 5 compare/select pairs are charged; the round count is
    the exact integer ceiling log, not a float round-trip).  Ties resolve
    to the lowest lane index, matching the sequential reference.
    @raise Invalid_argument if no lane is active. *)

(** {1 Global memory} *)

val load_into :
  t -> Gmem.t -> ?active:bool array -> int array -> dst:float array -> unit
(** In-place {!load}: active lanes read [mem\[addrs.(lane)\]] into [dst],
    inactive lanes write 0 — every lane of [dst] is written, so reused
    arena slots carry no stale data into the kernel. *)

val load : t -> Gmem.t -> ?active:bool array -> int array -> float array
(** [load w mem addrs] reads [mem\[addrs.(lane)\]] into each active lane
    (inactive lanes read 0); charges the coalescing-derived number of
    transactions and their full bytes. *)

val store : t -> Gmem.t -> ?active:bool array -> int array -> float array -> unit

val round_barrier : t -> unit
(** Marks the end of a dependent global-memory round-trip: the next load
    cannot be overlapped with the previous one.  Adds one latency term to
    this warp's serial critical path. *)

(** {1 Shared memory} *)

type smem
(** A per-thread-block shared-memory tile. *)

val smem_alloc : t -> int -> smem

val smem_store : t -> smem -> ?active:bool array -> int array -> float array -> unit
(** Bank conflicts are detected per access (lanes hitting the same bank at
    different addresses serialize) and charged as extra issue slots. *)

val smem_load_into :
  t -> smem -> ?active:bool array -> int array -> dst:float array -> unit

val smem_load : t -> smem -> ?active:bool array -> int array -> float array

val smem_read : smem -> int -> float
(** Host-side peek (no cost); for tests. *)
