open Vblu_smallblas
open Vblu_fault

(* Arena geometry: enough lane-width register slots for the widest kernel
   (batched GEMM holds two full 32-column tiles plus a handful of vector
   temporaries), plus predication-mask and address scratch.  At 32 lanes
   the whole arena is ~20 KB per warp, and warps are reused across
   problems, so the cost is per-domain, not per-problem. *)
let reg_slots = 72
let mask_slots = 8
let addr_slots = 4

(* Segment scratch for the coalescing counter: open-addressed, generation
   stamped.  A blocked warp access touches at most [warp_size] distinct
   segments (32); a cohort-cooperative access (interleaved batch layout)
   expands every lane address into its cohort strip of up to 32 elements —
   at most 32 × 9 = 288 distinct segments — so 512 slots keep the load
   factor at or below ~0.6 in the worst case. *)
let seg_slots = 512

type t = {
  cfg : Config.t;
  prec : Precision.t;
  counter : Counter.t;
  size : int;
  mutable inject : Fault.Injector.t option;
  mutable charging : bool;
  (* Op-event signature: always-on integer call counts, one bump per
     issuing API call.  Cheap enough to keep in charge-free mode, where
     they witness that a cached counter's instruction stream was replayed
     unchanged (see Launch.Cache). *)
  mutable ev_fma : int;
  mutable ev_div : int;
  mutable ev_shfl : int;
  mutable ev_gmem : int;
  mutable ev_smem : int;
  mutable ev_rounds : int;
  (* Cohort-cooperative coalescing context (interleaved batch layout):
     when [co_width > 1], each lane address is the slot-[co_slot] member of
     a [co_width]-wide same-size cohort, and global accesses are charged as
     this problem's 1/width share of the cohort's collective transactions
     (on the modelled GPU one warp serves the whole cohort, one problem per
     lane).  [co_width <= 1] is the classic blocked path, bit-identical to
     the pre-cohort engine. *)
  mutable co_width : int;
  mutable co_slot : int;
  (* Scratch arena. *)
  all_true : bool array;
  seg_slot : int array;
  seg_gen : int array;
  mutable gen : int;
  bank_hits : int array;
  regs : float array array;
  masks : bool array array;
  addrs : int array array;
  mutable in_use : bool;
}

let create ?(cfg = Config.p100) ?inject prec () =
  let size = cfg.Config.warp_size in
  {
    cfg;
    prec;
    counter = Counter.create ();
    size;
    inject;
    charging = true;
    ev_fma = 0;
    ev_div = 0;
    ev_shfl = 0;
    ev_gmem = 0;
    ev_smem = 0;
    ev_rounds = 0;
    co_width = 0;
    co_slot = 0;
    all_true = Array.make size true;
    seg_slot = Array.make seg_slots 0;
    seg_gen = Array.make seg_slots 0;
    gen = 0;
    bank_hits = Array.make cfg.Config.smem_banks 0;
    regs = Array.init reg_slots (fun _ -> Array.make size 0.0);
    masks = Array.init mask_slots (fun _ -> Array.make size false);
    addrs = Array.init addr_slots (fun _ -> Array.make size 0);
    in_use = false;
  }

let reset ?inject t =
  Counter.reset t.counter;
  t.inject <- inject;
  t.charging <- true;
  t.ev_fma <- 0;
  t.ev_div <- 0;
  t.ev_shfl <- 0;
  t.ev_gmem <- 0;
  t.ev_smem <- 0;
  t.ev_rounds <- 0;
  t.co_width <- 0;
  t.co_slot <- 0

let set_charging t b = t.charging <- b
let charging t = t.charging

let set_cohort t ~width ~slot =
  if width < 0 || slot < 0 || (width > 1 && slot >= width) then
    invalid_arg "Warp.set_cohort";
  t.co_width <- width;
  t.co_slot <- slot

let clear_cohort t =
  t.co_width <- 0;
  t.co_slot <- 0

let cohort_width t = t.co_width

let events t =
  [| t.ev_fma; t.ev_div; t.ev_shfl; t.ev_gmem; t.ev_smem; t.ev_rounds |]

let events_equal t e =
  Array.length e = 6
  && t.ev_fma = e.(0)
  && t.ev_div = e.(1)
  && t.ev_shfl = e.(2)
  && t.ev_gmem = e.(3)
  && t.ev_smem = e.(4)
  && t.ev_rounds = e.(5)

let acquire t = if t.in_use then false else (t.in_use <- true; true)
let release t = t.in_use <- false

let fault_step t k =
  match t.inject with None -> () | Some inj -> Fault.Injector.step inj k

(* The injection fast path: with no injector attached ([inject = None] —
   the default) every operation pays exactly one immediate match and
   returns its result unchanged, so counters and numerics are bit-identical
   to a build without fault support.  A fired fault corrupts {e data} only;
   it never charges the counters (soft errors are free — only the ABFT
   checks that hunt them cost instructions). *)
let apply_fault t target (a : float array) =
  match t.inject with
  | None -> a
  | Some inj -> (
    match Fault.Injector.take inj target with
    | None -> a
    | Some (lane, kind) ->
      if lane < Array.length a then a.(lane) <- Fault.corrupt kind a.(lane);
      a)

let size t = t.size
let prec t = t.prec
let counter t = t.counter
let cfg t = t.cfg
let lanes t = Array.init t.size (fun i -> i)

let reg t i = t.regs.(i)
let mask_slot t i = t.masks.(i)
let addr_slot t i = t.addrs.(i)
let all_lanes t = t.all_true

let check_lanes t a name =
  if Array.length a <> t.size then
    invalid_arg (name ^ ": lane array of wrong width")

let active_or_all t = function
  | Some a ->
    check_lanes t a "Warp.active";
    a
  | None -> t.all_true

(* {1 Charging} — every issuing call bumps its event; the float counter
   work is skipped when the warp runs charge-free. *)

let charge_fma t n =
  t.ev_fma <- t.ev_fma + 1;
  if t.charging then
    t.counter.Counter.fma_instrs <- t.counter.Counter.fma_instrs +. n

let charge_div t n =
  t.ev_div <- t.ev_div + 1;
  if t.charging then
    t.counter.Counter.div_instrs <- t.counter.Counter.div_instrs +. n

let charge_shfl t n =
  t.ev_shfl <- t.ev_shfl + 1;
  if t.charging then
    t.counter.Counter.shfl_instrs <- t.counter.Counter.shfl_instrs +. n

let charge_smem t n =
  t.ev_smem <- t.ev_smem + 1;
  if t.charging then
    t.counter.Counter.smem_accesses <- t.counter.Counter.smem_accesses +. n

let charge_gmem t ~instrs ~txns =
  t.ev_gmem <- t.ev_gmem + 1;
  if t.charging then begin
    t.counter.Counter.gmem_instrs <- t.counter.Counter.gmem_instrs +. instrs;
    t.counter.Counter.gmem_transactions <-
      t.counter.Counter.gmem_transactions +. float_of_int txns;
    t.counter.Counter.gmem_bytes <-
      t.counter.Counter.gmem_bytes
      +. float_of_int (txns * t.cfg.Config.transaction_bytes)
  end

(* Fractional-transaction variant for cohort-amortized charges: a cohort
   access costs the collective transactions divided by the cohort width,
   which is not an integer per problem. *)
let charge_gmem_frac t ~instrs ~txns =
  t.ev_gmem <- t.ev_gmem + 1;
  if t.charging then begin
    t.counter.Counter.gmem_instrs <- t.counter.Counter.gmem_instrs +. instrs;
    t.counter.Counter.gmem_transactions <-
      t.counter.Counter.gmem_transactions +. txns;
    t.counter.Counter.gmem_bytes <-
      t.counter.Counter.gmem_bytes
      +. (txns *. float_of_int t.cfg.Config.transaction_bytes)
  end

let charge_gmem_elems t n =
  t.ev_gmem <- t.ev_gmem + 1;
  if t.charging then
    t.counter.Counter.gmem_elems <-
      t.counter.Counter.gmem_elems +. float_of_int n

let credit_flops t f = if t.charging then Counter.credit_flops t.counter f

(* {1 Arithmetic} — in-place primitives first; the allocating API wraps
   them with a fresh destination, so both share one charging path. *)

let fma_into t ?active ~dst a b c =
  check_lanes t a "Warp.fma";
  check_lanes t b "Warp.fma";
  check_lanes t c "Warp.fma";
  check_lanes t dst "Warp.fma";
  let act = active_or_all t active in
  charge_fma t 1.0;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if act.(i) then Precision.fma t.prec a.(i) b.(i) c.(i) else c.(i))
  done;
  ignore (apply_fault t Register dst)

let fnma_into t ?active ~dst a b c =
  check_lanes t a "Warp.fnma";
  check_lanes t b "Warp.fnma";
  check_lanes t c "Warp.fnma";
  check_lanes t dst "Warp.fnma";
  let act = active_or_all t active in
  charge_fma t 1.0;
  for i = 0 to t.size - 1 do
    dst.(i) <-
      (if act.(i) then Precision.fma t.prec (-.a.(i)) b.(i) c.(i) else c.(i))
  done;
  ignore (apply_fault t Register dst)

let lanewise2_into t ?active op name ~dst a b =
  check_lanes t a name;
  check_lanes t b name;
  check_lanes t dst name;
  let act = active_or_all t active in
  charge_fma t 1.0;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if act.(i) then Precision.round t.prec (op a.(i) b.(i)) else a.(i))
  done;
  ignore (apply_fault t Register dst)

let add_into t ?active ~dst a b = lanewise2_into t ?active ( +. ) "Warp.add" ~dst a b
let sub_into t ?active ~dst a b = lanewise2_into t ?active ( -. ) "Warp.sub" ~dst a b
let mul_into t ?active ~dst a b = lanewise2_into t ?active ( *. ) "Warp.mul" ~dst a b

let div_into t ?active ~dst a b =
  check_lanes t a "Warp.div";
  check_lanes t b "Warp.div";
  check_lanes t dst "Warp.div";
  let act = active_or_all t active in
  charge_div t 1.0;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if act.(i) then Precision.div t.prec a.(i) b.(i) else a.(i))
  done;
  ignore (apply_fault t Register dst)

let sqrt_into t ?active ~dst a =
  check_lanes t a "Warp.sqrt_lanes";
  check_lanes t dst "Warp.sqrt_lanes";
  let act = active_or_all t active in
  charge_div t 1.0;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if act.(i) then Precision.round t.prec (sqrt a.(i)) else a.(i))
  done;
  ignore (apply_fault t Register dst)

let select_into t ~dst m a b =
  check_lanes t m "Warp.select";
  check_lanes t a "Warp.select";
  check_lanes t b "Warp.select";
  check_lanes t dst "Warp.select";
  charge_fma t 1.0;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if m.(i) then a.(i) else b.(i))
  done

let broadcast_into t ~dst x ~src =
  check_lanes t x "Warp.broadcast";
  check_lanes t dst "Warp.broadcast";
  if src < 0 || src >= t.size then invalid_arg "Warp.broadcast: bad source lane";
  charge_shfl t 1.0;
  (* Read before fill: [dst] may alias [x]. *)
  let v = x.(src) in
  Array.fill dst 0 t.size v

let fma t ?active a b c =
  let dst = Array.make t.size 0.0 in
  fma_into t ?active ~dst a b c;
  dst

let fnma t ?active a b c =
  let dst = Array.make t.size 0.0 in
  fnma_into t ?active ~dst a b c;
  dst

let add t ?active a b =
  let dst = Array.make t.size 0.0 in
  add_into t ?active ~dst a b;
  dst

let sub t ?active a b =
  let dst = Array.make t.size 0.0 in
  sub_into t ?active ~dst a b;
  dst

let mul t ?active a b =
  let dst = Array.make t.size 0.0 in
  mul_into t ?active ~dst a b;
  dst

let div t ?active a b =
  let dst = Array.make t.size 0.0 in
  div_into t ?active ~dst a b;
  dst

let sqrt_lanes t ?active a =
  let dst = Array.make t.size 0.0 in
  sqrt_into t ?active ~dst a;
  dst

let select t m a b =
  let dst = Array.make t.size 0.0 in
  select_into t ~dst m a b;
  dst

let broadcast t x ~src =
  let dst = Array.make t.size 0.0 in
  broadcast_into t ~dst x ~src;
  dst

(* Exact integer ceil(log2 n) — the float round-trip through [log] it
   replaces was correct only by luck of the libm at the sizes we use. *)
let ceil_log2 n =
  let r = ref 0 and v = ref 1 in
  while !v < n do
    incr r;
    v := !v * 2
  done;
  !r

let argmax_abs t ?active x =
  check_lanes t x "Warp.argmax_abs";
  let act = active_or_all t active in
  (* Butterfly reduction: log2(size) shuffle + compare/select rounds. *)
  let rounds = ceil_log2 t.size in
  charge_shfl t (float_of_int rounds);
  charge_fma t (float_of_int rounds);
  let best = ref (-1) in
  for i = 0 to t.size - 1 do
    if act.(i) && (!best < 0 || Float.abs x.(i) > Float.abs x.(!best)) then
      best := i
  done;
  if !best < 0 then invalid_arg "Warp.argmax_abs: no active lane";
  !best

(* Coalescing: distinct transaction segments touched by the active lanes.
   A perfectly coalesced access costs one issue slot; address divergence
   serializes into replays — charged as the ratio of touched segments to
   the coalesced minimum (two segments per replay slot).  The distinct-
   segment count runs over the warp's generation-stamped scratch table:
   no per-access table allocation, and a single stamp bump retires the
   previous access's entries.

   Cohort-cooperative mode ([co_width > 1], interleaved batch layout): on
   the modelled GPU one warp serves a whole same-size cohort, one problem
   per lane, so the element this kernel touches per lane address is
   touched {e simultaneously} for all [co_width] cohort members — the
   collective footprint of the access is, per lane, the contiguous strip
   [addr - slot, addr - slot + width).  We count the distinct segments of
   the union of those strips and charge this problem its 1/width share of
   the collective transactions, bytes and replays.  [gmem_elems] (the
   logical pre-coalescing volume) stays per-problem. *)
let count_transactions t mem addrs act =
  t.ev_gmem <- t.ev_gmem + 1;
  if t.charging then begin
    let seg_elems = Config.elements_per_transaction t.cfg (Gmem.prec mem) in
    t.gen <- t.gen + 1;
    let stamp = t.gen in
    let n = ref 0 in
    let active = ref 0 in
    let insert s =
      let h = ref (s * 0x9e3779b1 land (seg_slots - 1)) in
      let scanning = ref true in
      while !scanning do
        if t.seg_gen.(!h) <> stamp then begin
          t.seg_gen.(!h) <- stamp;
          t.seg_slot.(!h) <- s;
          incr n;
          scanning := false
        end
        else if t.seg_slot.(!h) = s then scanning := false
        else h := (!h + 1) land (seg_slots - 1)
      done
    in
    if t.co_width <= 1 then begin
      for i = 0 to t.size - 1 do
        if act.(i) then begin
          incr active;
          insert (addrs.(i) / seg_elems)
        end
      done;
      let n = !n in
      let min_txns = max 1 ((!active + seg_elems - 1) / seg_elems) in
      let replays =
        Float.max 1.0 (float_of_int n /. float_of_int min_txns /. 2.0)
      in
      t.counter.Counter.gmem_instrs <- t.counter.Counter.gmem_instrs +. replays;
      t.counter.Counter.gmem_transactions <-
        t.counter.Counter.gmem_transactions +. float_of_int n;
      t.counter.Counter.gmem_bytes <-
        t.counter.Counter.gmem_bytes
        +. float_of_int (n * t.cfg.Config.transaction_bytes);
      t.counter.Counter.gmem_elems <-
        t.counter.Counter.gmem_elems +. float_of_int !active
    end
    else begin
      let width = t.co_width and slot = t.co_slot in
      for i = 0 to t.size - 1 do
        if act.(i) then begin
          incr active;
          let lo = addrs.(i) - slot in
          let s0 = lo / seg_elems and s1 = (lo + width - 1) / seg_elems in
          for s = s0 to s1 do
            insert s
          done
        end
      done;
      let n = !n in
      let wf = float_of_int width in
      (* Collective coalesced minimum: the cohort touches active·width
         elements per access. *)
      let min_txns =
        max 1 (((!active * width) + seg_elems - 1) / seg_elems)
      in
      let replays =
        Float.max 1.0 (float_of_int n /. float_of_int min_txns /. 2.0)
      in
      t.counter.Counter.gmem_instrs <-
        t.counter.Counter.gmem_instrs +. (replays /. wf);
      t.counter.Counter.gmem_transactions <-
        t.counter.Counter.gmem_transactions +. (float_of_int n /. wf);
      t.counter.Counter.gmem_bytes <-
        t.counter.Counter.gmem_bytes
        +. (float_of_int (n * t.cfg.Config.transaction_bytes) /. wf);
      t.counter.Counter.gmem_elems <-
        t.counter.Counter.gmem_elems +. float_of_int !active
    end
  end

let load_into t mem ?active addrs ~dst =
  check_lanes t addrs "Warp.load";
  check_lanes t dst "Warp.load";
  let act = active_or_all t active in
  count_transactions t mem addrs act;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if act.(i) then Gmem.get mem addrs.(i) else 0.0)
  done;
  ignore (apply_fault t Global dst)

let load t mem ?active addrs =
  let dst = Array.make t.size 0.0 in
  load_into t mem ?active addrs ~dst;
  dst

let store t mem ?active addrs values =
  check_lanes t addrs "Warp.store";
  check_lanes t values "Warp.store";
  let act = active_or_all t active in
  count_transactions t mem addrs act;
  Array.iteri (fun i a -> if act.(i) then Gmem.set mem a values.(i)) addrs;
  (* A global-memory fault on a store corrupts the cell in DRAM itself,
     after (and bypassing) the precision rounding of the store path. *)
  match t.inject with
  | None -> ()
  | Some inj -> (
    match Fault.Injector.take inj Global with
    | Some (lane, kind) when act.(lane) ->
      Gmem.corrupt mem addrs.(lane) (Fault.corrupt kind)
    | _ -> ())

let round_barrier t =
  t.ev_rounds <- t.ev_rounds + 1;
  if t.charging then
    t.counter.Counter.gmem_rounds <- t.counter.Counter.gmem_rounds + 1

type smem = { data : float array }

let smem_alloc _t n = { data = Array.make n 0.0 }

let charge_smem_access t sm addrs act =
  (* Serialized passes = worst bank multiplicity (same-address lanes would
     broadcast, but the small-block kernels never co-address, so we charge
     the simple rule). *)
  t.ev_smem <- t.ev_smem + 1;
  ignore sm;
  if t.charging then begin
    let banks = t.cfg.Config.smem_banks in
    let hits = t.bank_hits in
    Array.fill hits 0 banks 0;
    Array.iteri
      (fun i a -> if act.(i) then hits.(a mod banks) <- hits.(a mod banks) + 1)
      addrs;
    let passes = Array.fold_left max 1 hits in
    t.counter.Counter.smem_accesses <-
      t.counter.Counter.smem_accesses +. float_of_int passes
  end

let smem_store t sm ?active addrs values =
  check_lanes t addrs "Warp.smem_store";
  check_lanes t values "Warp.smem_store";
  let act = active_or_all t active in
  charge_smem_access t sm addrs act;
  Array.iteri
    (fun i a -> if act.(i) then sm.data.(a) <- Precision.round t.prec values.(i))
    addrs;
  (match t.inject with
  | None -> ()
  | Some inj -> (
    match Fault.Injector.take inj Shared with
    | Some (lane, kind) when act.(lane) ->
      sm.data.(addrs.(lane)) <- Fault.corrupt kind sm.data.(addrs.(lane))
    | _ -> ()))

let smem_load_into t sm ?active addrs ~dst =
  check_lanes t addrs "Warp.smem_load";
  check_lanes t dst "Warp.smem_load";
  let act = active_or_all t active in
  charge_smem_access t sm addrs act;
  for i = 0 to t.size - 1 do
    dst.(i) <- (if act.(i) then sm.data.(addrs.(i)) else 0.0)
  done;
  ignore (apply_fault t Shared dst)

let smem_load t sm ?active addrs =
  let dst = Array.make t.size 0.0 in
  smem_load_into t sm ?active addrs ~dst;
  dst

let smem_read sm i = sm.data.(i)
