open Vblu_smallblas
open Vblu_fault

type t = {
  cfg : Config.t;
  prec : Precision.t;
  counter : Counter.t;
  size : int;
  inject : Fault.Injector.t option;
}

let create ?(cfg = Config.p100) ?inject prec () =
  { cfg; prec; counter = Counter.create (); size = cfg.Config.warp_size; inject }

let fault_step t k =
  match t.inject with None -> () | Some inj -> Fault.Injector.step inj k

(* The injection fast path: with no injector attached ([inject = None] —
   the default) every operation pays exactly one immediate match and
   returns its result unchanged, so counters and numerics are bit-identical
   to a build without fault support.  A fired fault corrupts {e data} only;
   it never charges the counters (soft errors are free — only the ABFT
   checks that hunt them cost instructions). *)
let apply_fault t target (a : float array) =
  match t.inject with
  | None -> a
  | Some inj -> (
    match Fault.Injector.take inj target with
    | None -> a
    | Some (lane, kind) ->
      if lane < Array.length a then a.(lane) <- Fault.corrupt kind a.(lane);
      a)

let size t = t.size
let prec t = t.prec
let counter t = t.counter
let cfg t = t.cfg
let lanes t = Array.init t.size (fun i -> i)

let check_lanes t a name =
  if Array.length a <> t.size then
    invalid_arg (name ^ ": lane array of wrong width")

let active_or_all t = function
  | Some a ->
    check_lanes t a "Warp.active";
    a
  | None -> Array.make t.size true

let charge_fma t = t.counter.Counter.fma_instrs <- t.counter.Counter.fma_instrs +. 1.0

let charge_div t = t.counter.Counter.div_instrs <- t.counter.Counter.div_instrs +. 1.0

let charge_shfl t n =
  t.counter.Counter.shfl_instrs <- t.counter.Counter.shfl_instrs +. n

let lanewise2 t ?active op name a b =
  check_lanes t a name;
  check_lanes t b name;
  let act = active_or_all t active in
  charge_fma t;
  apply_fault t Register
    (Array.init t.size (fun i ->
         if act.(i) then Precision.round t.prec (op a.(i) b.(i)) else a.(i)))

let fma t ?active a b c =
  check_lanes t a "Warp.fma";
  check_lanes t b "Warp.fma";
  check_lanes t c "Warp.fma";
  let act = active_or_all t active in
  charge_fma t;
  apply_fault t Register
    (Array.init t.size (fun i ->
         if act.(i) then Precision.fma t.prec a.(i) b.(i) c.(i) else c.(i)))

let fnma t ?active a b c =
  check_lanes t a "Warp.fnma";
  check_lanes t b "Warp.fnma";
  check_lanes t c "Warp.fnma";
  let act = active_or_all t active in
  charge_fma t;
  apply_fault t Register
    (Array.init t.size (fun i ->
         if act.(i) then Precision.fma t.prec (-.a.(i)) b.(i) c.(i) else c.(i)))

let add t ?active a b = lanewise2 t ?active ( +. ) "Warp.add" a b
let sub t ?active a b = lanewise2 t ?active ( -. ) "Warp.sub" a b
let mul t ?active a b = lanewise2 t ?active ( *. ) "Warp.mul" a b

let div t ?active a b =
  check_lanes t a "Warp.div";
  check_lanes t b "Warp.div";
  let act = active_or_all t active in
  charge_div t;
  apply_fault t Register
    (Array.init t.size (fun i ->
         if act.(i) then Precision.div t.prec a.(i) b.(i) else a.(i)))

let sqrt_lanes t ?active a =
  check_lanes t a "Warp.sqrt_lanes";
  let act = active_or_all t active in
  charge_div t;
  apply_fault t Register
    (Array.init t.size (fun i ->
         if act.(i) then Precision.round t.prec (sqrt a.(i)) else a.(i)))

let select t m a b =
  check_lanes t m "Warp.select";
  check_lanes t a "Warp.select";
  check_lanes t b "Warp.select";
  charge_fma t;
  Array.init t.size (fun i -> if m.(i) then a.(i) else b.(i))

let broadcast t x ~src =
  check_lanes t x "Warp.broadcast";
  if src < 0 || src >= t.size then invalid_arg "Warp.broadcast: bad source lane";
  charge_shfl t 1.0;
  Array.make t.size x.(src)

let argmax_abs t ?active x =
  check_lanes t x "Warp.argmax_abs";
  let act = active_or_all t active in
  (* Butterfly reduction: log2(size) shuffle + compare/select rounds. *)
  let rounds = int_of_float (ceil (log (float_of_int t.size) /. log 2.0)) in
  charge_shfl t (float_of_int rounds);
  t.counter.Counter.fma_instrs <-
    t.counter.Counter.fma_instrs +. float_of_int rounds;
  let best = ref (-1) in
  for i = 0 to t.size - 1 do
    if act.(i) && (!best < 0 || Float.abs x.(i) > Float.abs x.(!best)) then
      best := i
  done;
  if !best < 0 then invalid_arg "Warp.argmax_abs: no active lane";
  !best

(* Coalescing: distinct transaction segments touched by the active lanes.
   A perfectly coalesced access costs one issue slot; address divergence
   serializes into replays — charged as the ratio of touched segments to
   the coalesced minimum (two segments per replay slot). *)
let count_transactions t mem addrs act =
  let seg_elems = Config.elements_per_transaction t.cfg (Gmem.prec mem) in
  let segs = Hashtbl.create 8 in
  let active = ref 0 in
  Array.iteri
    (fun i a ->
      if act.(i) then begin
        incr active;
        Hashtbl.replace segs (a / seg_elems) ()
      end)
    addrs;
  let n = Hashtbl.length segs in
  let min_txns = max 1 ((!active + seg_elems - 1) / seg_elems) in
  let replays = Float.max 1.0 (float_of_int n /. float_of_int min_txns /. 2.0) in
  t.counter.Counter.gmem_instrs <- t.counter.Counter.gmem_instrs +. replays;
  t.counter.Counter.gmem_transactions <-
    t.counter.Counter.gmem_transactions +. float_of_int n;
  t.counter.Counter.gmem_bytes <-
    t.counter.Counter.gmem_bytes
    +. float_of_int (n * t.cfg.Config.transaction_bytes);
  t.counter.Counter.gmem_elems <-
    t.counter.Counter.gmem_elems +. float_of_int !active

let load t mem ?active addrs =
  check_lanes t addrs "Warp.load";
  let act = active_or_all t active in
  count_transactions t mem addrs act;
  apply_fault t Global
    (Array.init t.size (fun i ->
         if act.(i) then Gmem.get mem addrs.(i) else 0.0))

let store t mem ?active addrs values =
  check_lanes t addrs "Warp.store";
  check_lanes t values "Warp.store";
  let act = active_or_all t active in
  count_transactions t mem addrs act;
  Array.iteri (fun i a -> if act.(i) then Gmem.set mem a values.(i)) addrs;
  (* A global-memory fault on a store corrupts the cell in DRAM itself,
     after (and bypassing) the precision rounding of the store path. *)
  match t.inject with
  | None -> ()
  | Some inj -> (
    match Fault.Injector.take inj Global with
    | Some (lane, kind) when act.(lane) ->
      Gmem.corrupt mem addrs.(lane) (Fault.corrupt kind)
    | _ -> ())

let round_barrier t =
  t.counter.Counter.gmem_rounds <- t.counter.Counter.gmem_rounds + 1

type smem = { data : float array }

let smem_alloc _t n = { data = Array.make n 0.0 }

let charge_smem t sm addrs act =
  (* Serialized passes = worst bank multiplicity (same-address lanes would
     broadcast, but the small-block kernels never co-address, so we charge
     the simple rule). *)
  let banks = t.cfg.Config.smem_banks in
  let hits = Array.make banks 0 in
  Array.iteri (fun i a -> if act.(i) then hits.(a mod banks) <- hits.(a mod banks) + 1) addrs;
  let passes = Array.fold_left max 1 hits in
  ignore sm;
  t.counter.Counter.smem_accesses <-
    t.counter.Counter.smem_accesses +. float_of_int passes

let smem_store t sm ?active addrs values =
  check_lanes t addrs "Warp.smem_store";
  check_lanes t values "Warp.smem_store";
  let act = active_or_all t active in
  charge_smem t sm addrs act;
  Array.iteri
    (fun i a -> if act.(i) then sm.data.(a) <- Precision.round t.prec values.(i))
    addrs;
  (match t.inject with
  | None -> ()
  | Some inj -> (
    match Fault.Injector.take inj Shared with
    | Some (lane, kind) when act.(lane) ->
      sm.data.(addrs.(lane)) <- Fault.corrupt kind sm.data.(addrs.(lane))
    | _ -> ()))

let smem_load t sm ?active addrs =
  check_lanes t addrs "Warp.smem_load";
  let act = active_or_all t active in
  charge_smem t sm addrs act;
  apply_fault t Shared
    (Array.init t.size (fun i -> if act.(i) then sm.data.(addrs.(i)) else 0.0))

let smem_read sm i = sm.data.(i)
