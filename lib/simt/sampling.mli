(** Batch execution over the simulator: exact and sampled modes.

    A batched kernel is one warp per problem.  Running all 40,000 warps of
    a paper-sized benchmark through the functional simulator would be
    pointlessly slow, and — because the small-block kernels are
    warp-synchronous with data-independent control flow — unnecessary: two
    problems of the same size execute the same instruction stream.

    [Exact] runs every warp (and thus computes every result); [Sampled]
    runs one representative warp per distinct problem size and scales its
    counters by the class population.  The test suite checks that the two
    modes agree on the modelled counters; result-consuming code (the
    preconditioner setup) always uses [Exact].

    Both modes optionally fan the independent warps (resp. size-class
    representatives) out over the domains of a {!Vblu_par.Pool.t}.  Each
    warp owns a private {!Counter.t} stored at its problem index; the
    counters are merged by a single sequential fold in problem-index order
    after all domains join, so totals, max-warp selection and the modelled
    time are bit-identical to the sequential run for every domain count. *)

open Vblu_smallblas
open Vblu_par

type mode =
  | Exact
  | Sampled

val effective_mode : ?faults:Vblu_fault.Fault.Plan.t -> mode -> mode
(** The mode {!run} will actually execute under: [Sampled] with an armed
    fault plan degrades to [Exact].  A plan's sites are keyed by problem
    index, but [Sampled] executes only the first problem of each size
    class — faults addressed to any other problem would be silently
    dropped, so the launch runs every problem instead.  Exposed so
    result-shaping code (e.g. the [exact] flag in kernel results) can
    agree with the engine about what ran. *)

val run :
  ?cfg:Config.t ->
  ?pool:Pool.t ->
  ?faults:Vblu_fault.Fault.Plan.t ->
  ?obs:Vblu_obs.Ctx.t ->
  ?name:string ->
  ?cache:(int -> int) ->
  ?direct:(int -> int) ->
  prec:Precision.t ->
  mode:mode ->
  sizes:int array ->
  kernel:(Warp.t -> int -> unit) ->
  unit ->
  Launch.stats
(** [run ~prec ~mode ~sizes ~kernel ()] executes [kernel warp i] for every
    problem [i] (or one representative per size class in [Sampled] mode;
    representatives are the first index of each class) on a fresh warp, and
    feeds the counters to {!Launch.time}.

    [?pool] (default {!Pool.sequential}) distributes the independent warps
    over domains; results are deterministic and bit-identical to the
    sequential path.  Kernels must confine their writes to per-problem
    state (all kernels in [lib/core] do).

    [?faults] attaches a fault plan: each warp whose problem index holds
    plan sites gets an injector ({!Warp.create}'s [?inject]); the number
    of faults fired by {e this} launch is reported in
    [stats.faults_injected].  Plan claims are one-shot and keyed by
    problem index, so injection is deterministic across domain counts.
    [Sampled] with an armed plan degrades to [Exact] (see
    {!effective_mode}): sampling executes only class representatives, so
    any other problem's faults would silently never fire — per-problem
    execution keeps the plan's addressing meaningful.

    [?obs] records the launch into an observability context: a trace span
    named [?name] (default ["launch"]) whose duration is the modelled
    [time_us] — advancing the simulated clock — plus registry counters and
    histograms.  Recording happens in the sequential caller after the
    counter fold, never in worker domains, so traces and metrics are
    bit-identical for every domain count; when [?obs] is absent nothing is
    evaluated and the launch is bit-identical to pre-instrumentation
    behaviour.

    [?cache] opts the launch into the cross-launch counter cache
    ({!Launch.Cache}): [cache i] is problem [i]'s key salt, and must
    injectively encode everything besides (kernel name, precision, size,
    config) that the problem's counters depend on — option flags that
    change the charge stream (ABFT on/off, rhs count, …) {e and} the
    alignment classes ([offset mod] elements-per-transaction) of every
    device buffer the kernel addresses, since coalescing charges see raw
    addresses.  Only kernels whose counters are a pure function of the
    resulting key may opt in — per-warp counters for cached problems are
    copied from the first charging execution of the key class while the
    kernel replays charge-free (numerics unchanged).  Every replay's op-event signature is checked against the
    cached one; a divergent stream (e.g. a breakdown early-exit) falls
    back to a charging rerun of that problem, so even value-dependent
    corner paths stay exact.  Launches with [?faults] armed bypass the
    cache entirely, as do configs that never went through
    {!Config.validate} (fingerprint 0).  Warps are recycled per domain
    across problems and launches; kernels must not retain lane arrays
    borrowed from the warp arena beyond their own invocation.

    [?direct] (requires [?cache]) is the kernel's direct-execution
    closure: [direct i] performs problem [i]'s {e complete} observable
    effect — output values, pivots, [info] — through plain host loops,
    bit-identically to interpreting [kernel], and returns the problem's
    [info].  Kernels only pass it when every rounding step of the
    interpreted stream is reproduced exactly (and never under options,
    such as ABFT, whose side effects live in the interpreter).  The
    engine uses it two ways: on every charging store the closure runs
    first as a certification probe (the interpreted kernel then
    overwrites its writes, so the simulator's result stays
    authoritative), and entries it completed cleanly ([info = 0]) are
    marked [direct_ok]; on a later hit of such an entry the problem
    executes through [direct] {e alone} — no warp, no op interpretation —
    and receives a copy of the cached counters.  A breakdown surfacing in
    a direct run ([info <> 0]) demotes the hit and reruns the problem
    through the charging interpreter, so values, [info] and counters
    remain exactly those of the simulated path in every case.  An
    enabled [?obs] context disables direct execution for the launch
    (spans must reflect interpreted streams); [Launch.Cache.set_enabled
    false] disables it with the rest of the cache.  Direct-served hits
    are counted by {!Launch.Cache.direct_hits}.

    An empty batch is a defined no-op returning {!Launch.empty_stats}
    and records nothing. *)
