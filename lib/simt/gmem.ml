open Vblu_smallblas

type t = { data : float array; prec : Precision.t }

let create prec n = { data = Array.make n 0.0; prec }

let of_array prec a = { data = Array.map (Precision.round prec) a; prec }

let length t = Array.length t.data

let prec t = t.prec

let get t i = t.data.(i)

let set t i v = t.data.(i) <- Precision.round t.prec v

let corrupt t i f = t.data.(i) <- f t.data.(i)

let to_array t = Array.copy t.data

let raw t = t.data
