(** Hardware description for the SIMT execution model.

    The paper evaluates on an NVIDIA Tesla P100 (Pascal, 56 SMs at
    1.33 GHz, 732 GB/s HBM2, 2:1 SP:DP throughput).  The simulator is not
    cycle-accurate silicon; it is an analytic model over the quantities the
    paper's analysis actually reasons about — issue slots, memory
    transactions, occupancy and latency — with the constants below
    calibrated so that the reproduced figures land in the paper's GFLOPS
    ballpark.  All constants live here so the calibration is explicit and
    auditable. *)

open Vblu_smallblas

type t = {
  name : string;
  num_sms : int;  (** streaming multiprocessors. *)
  clock_ghz : float;
  warp_size : int;  (** lanes per warp; 32 everywhere in this project. *)
  max_warps_per_sm : int;  (** resident-warp (occupancy) limit. *)
  fma_cycles_sp : float;
      (** SM-cycles consumed by one single-precision warp-wide FMA/ALU
          instruction at full occupancy (0.5 = two such instructions per
          cycle per SM). *)
  fma_cycles_dp : float;  (** same, double precision (Pascal: 2× SP). *)
  div_cycles_sp : float;
      (** SM-cycles of one warp-wide division — GPUs expand division into a
          multi-instruction sequence, so this is several times an FMA. *)
  div_cycles_dp : float;
  shfl_cycles : float;  (** warp shuffle instruction (single precision). *)
  dp_shfl_factor : float;
      (** shuffles move 32-bit registers, so moving a double costs this
          multiple (2.0) — one reason the register-heavy kernels lose more
          than the arithmetic ratio when switching to double. *)
  smem_cycles : float;  (** conflict-free shared-memory access. *)
  gmem_issue_cycles : float;
      (** issue/address-generation cost of one global load/store
          instruction, independent of the data transfer itself. *)
  mem_bandwidth_gbs : float;  (** peak memory bandwidth. *)
  mem_efficiency : float;
      (** fraction of peak bandwidth a batched kernel's access stream
          sustains in practice. *)
  mem_latency_cycles : float;  (** global-memory round-trip latency. *)
  transaction_bytes : int;  (** memory transaction granularity. *)
  smem_banks : int;
  launch_overhead_us : float;  (** fixed kernel-launch cost. *)
  max_issue_efficiency : float;
      (** fraction of an SM's issue slots a fully occupied SM fills for
          kernels of this class (dependency stalls never vanish). *)
  occupancy_tau : float;
      (** exponential time-constant (in resident warps per SM) of the
          occupancy ramp: efficiency =
          [max_issue_efficiency * (1 - exp(-resident/occupancy_tau))].
          This single knob produces the saturating GFLOPS-vs-batch-size
          shape of Figures 4 and 6. *)
  fingerprint : int;
      (** precomputed nonzero hash over every other field, stamped by
          {!validate} (write [0] in preset literals).  Hot-path consumers —
          [Launch.Cache] keys, the per-domain warp-recycle table — compare
          this one int per problem instead of hashing the 20-odd-field
          record.  A config whose fingerprint is [0] (i.e. one that never
          went through [validate]) is treated as uncacheable. *)
}

val validate : t -> t
(** Sanity-checks a hardware description and returns it with its
    {!field-fingerprint} stamped: positive SM / clock / bandwidth / cycle
    constants, [warp_size = 32] (the SIMT width every kernel in this
    project assumes), positive [transaction_bytes] and [smem_banks],
    efficiencies in [(0, 1]], non-negative launch overhead.  All presets
    are defined through [validate], so a miscalibrated constant fails at
    definition time rather than producing NaN modelled times downstream.
    Validated configs are registered by fingerprint; two distinct presets
    colliding on one fingerprint fail here too, so distinct presets are
    guaranteed distinct cache keys.
    @raise Invalid_argument naming the offending field (or the collision). *)

val p100 : t
(** The paper's evaluation platform (validated). *)

val fma_cycles : t -> Precision.t -> float
val div_cycles : t -> Precision.t -> float

val elements_per_transaction : t -> Precision.t -> int
(** How many scalars one memory transaction carries (8 doubles or 16
    singles for 64-byte transactions). *)
