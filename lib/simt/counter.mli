(** Event counters for one simulated warp.

    Every {!Warp} operation charges the counters; {!Launch} turns the
    totals into modelled kernel time.  [useful_flops] is credited
    explicitly by the kernels with the {!Vblu_smallblas.Flops} formulas, so
    padding and other overheads show up as a gap between executed work and
    useful work — the mechanism behind the paper's Figure 5 crossovers. *)

type t = {
  mutable fma_instrs : float;
      (** warp-wide arithmetic instructions (FMA/add/mul/compare). *)
  mutable div_instrs : float;  (** warp-wide divisions. *)
  mutable shfl_instrs : float;  (** warp shuffles (incl. reductions). *)
  mutable smem_accesses : float;
      (** shared-memory access instructions, bank-conflict serializations
          already included. *)
  mutable gmem_instrs : float;
      (** global load/store instructions issued (issue cost, distinct from
          the transferred bytes). *)
  mutable gmem_transactions : float;
      (** 32-byte global-memory transactions.  Held as a float so that
          size-class scaling ({!scale_into}) stays exact; round once when
          the total is consumed (see {!transactions}). *)
  mutable gmem_bytes : float;
      (** bytes moved over the global-memory interface (float, same
          rationale as [gmem_transactions]). *)
  mutable gmem_elems : float;
      (** matrix/vector elements touched by active lanes, before
          coalescing.  Whereas [gmem_transactions] depends on the access
          pattern (a strided read of [n] elements can cost [n]
          transactions, a unit-stride one far fewer), [gmem_elems] counts
          the logical data volume — the quantity two algorithmic variants
          of the same routine must agree on.  The eager/lazy TRSV parity
          test is stated in these units. *)
  mutable gmem_rounds : int;
      (** dependent global-memory round-trips (each adds a latency term to
          the single-warp critical path).  NOTE: unlike every other field,
          {!add} merges this with [max], not [+] — see {!add}. *)
  mutable useful_flops : float;
}

val create : unit -> t

val copy : t -> t
(** A detached snapshot — used to bank a reused warp's per-problem counts
    before the warp is reset for the next problem, and to hand out private
    copies of cached counters (callers mutate their copy via {!add}). *)

val reset : t -> unit
(** Zero every field in place — the counter half of [Warp.reset]. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc].  Every field sums, with one
    exception: [gmem_rounds] merges with [max], not [+].  Rounds model the
    {e critical-path depth} of dependent memory round-trips within one
    warp; warps in a batch overlap those latencies, so the batch-level
    depth is the deepest single warp, not the sum over warps.  Summing
    would make modelled latency grow linearly with batch size and bury the
    throughput terms.  (For the same reason {!scale_into} leaves
    [gmem_rounds] unscaled.) *)

val scale_into : t -> float -> t
(** [scale_into x f] returns a fresh counter holding [x] scaled by [f] —
    used when one representative warp stands for a whole size class.  The
    scaled transaction/byte counts are kept exact (no per-class rounding),
    so [Sampled] extrapolation matches [Exact] accumulation. *)

val transactions : t -> int
(** Global-memory transaction total, rounded to the nearest integer. *)

val bytes : t -> int
(** Global-memory byte total, rounded to the nearest integer. *)

val elems : t -> int
(** Global-memory element total (active-lane accesses before coalescing),
    rounded to the nearest integer. *)

val credit_flops : t -> float -> unit

val total_instrs : t -> float

val pp : Format.formatter -> t -> unit
