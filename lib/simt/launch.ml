
type stats = {
  time_us : float;
  gflops : float;
  bandwidth_gbs : float;
  warps : int;
  total : Counter.t;
  faults_injected : int;
}

let warp_cycles cfg prec (c : Counter.t) =
  let shfl_cost =
    cfg.Config.shfl_cycles
    *. match prec with
       | Vblu_smallblas.Precision.Double -> cfg.Config.dp_shfl_factor
       | Vblu_smallblas.Precision.Single -> 1.0
  in
  (c.fma_instrs *. Config.fma_cycles cfg prec)
  +. (c.div_instrs *. Config.div_cycles cfg prec)
  +. (c.shfl_instrs *. shfl_cost)
  +. (c.smem_accesses *. cfg.Config.smem_cycles)
  +. (c.gmem_instrs *. cfg.Config.gmem_issue_cycles)

let time ?(cfg = Config.p100) ?(faults_injected = 0) ~prec ~warps ~total
    ~max_warp () =
  if warps <= 0 then invalid_arg "Launch.time: no warps";
  let clock_hz = cfg.Config.clock_ghz *. 1e9 in
  let sms_used = min cfg.Config.num_sms warps in
  let resident = (warps + cfg.Config.num_sms - 1) / cfg.Config.num_sms in
  (* Occupancy ramp: more resident warps (and deeper wave pipelines) fill
     more issue slots, saturating exponentially. *)
  let efficiency =
    cfg.Config.max_issue_efficiency
    *. (1.0 -. exp (-.float_of_int resident /. cfg.Config.occupancy_tau))
  in
  let total_cycles = warp_cycles cfg prec total in
  let compute_s =
    total_cycles /. float_of_int sms_used /. efficiency /. clock_hz
  in
  let serial_s =
    (warp_cycles cfg prec max_warp
    +. (float_of_int max_warp.Counter.gmem_rounds *. cfg.Config.mem_latency_cycles))
    /. clock_hz
  in
  let mem_s =
    total.Counter.gmem_bytes
    /. (cfg.Config.mem_bandwidth_gbs *. cfg.Config.mem_efficiency *. 1e9)
  in
  let time_s =
    (cfg.Config.launch_overhead_us *. 1e-6)
    +. Float.max compute_s (Float.max serial_s mem_s)
  in
  {
    time_us = time_s *. 1e6;
    gflops = total.Counter.useful_flops /. time_s /. 1e9;
    bandwidth_gbs = total.Counter.gmem_bytes /. time_s /. 1e9;
    warps;
    total;
    faults_injected;
  }

(* Defined result for an empty batch: no warps ran, no time was modelled.
   [time] itself still rejects [warps <= 0] — callers that reach it must
   have work — so empty batches short-circuit here instead. *)
let empty_stats () =
  {
    time_us = 0.0;
    gflops = 0.0;
    bandwidth_gbs = 0.0;
    warps = 0;
    total = Counter.create ();
    faults_injected = 0;
  }

(* Cross-launch counter cache.  The cacheable kernels are warp-synchronous
   with data-independent instruction streams: the per-warp counters are a
   pure function of (kernel, precision, problem size, device config) plus
   an integer salt for kernel options that change the charge stream (ABFT
   on/off, rhs count, …).  After the first charging execution of a size
   class, later warps run charge-free and take the cached counters — the
   event signature recorded with the entry verifies the replayed stream
   matched, and a mismatch (a value-dependent path such as a breakdown
   early-exit) falls back to a charging rerun.

   The device config enters the key as its precomputed [Config.fingerprint]
   — one int compare per lookup instead of a polymorphic hash + structural
   compare of the whole 20-odd-field record; [Config.validate] guarantees
   distinct presets get distinct fingerprints.

   Entries additionally certify whether the kernel's direct-execution
   closure reproduced the simulator's result at store time ([direct_ok]);
   certified hits may skip op interpretation entirely (see [Sampling.run]).

   Hit/miss accounting is folded into [find]/[store] on atomics so the hot
   path takes the table mutex exactly once per problem: [find] counts its
   own outcome provisionally, and a caller whose replay check then fails
   reclassifies with [demote_hit]. *)
module Cache = struct
  type key = {
    kernel : string;
    prec : Vblu_smallblas.Precision.t;
    size : int;
    salt : int;
    cfg_fp : int;
  }

  type entry = { counter : Counter.t; events : int array; direct_ok : bool }

  let tbl : (key, entry) Hashtbl.t = Hashtbl.create 64
  let lock = Mutex.create ()
  let enabled_flag = ref true
  let hit_count = Atomic.make 0
  let miss_count = Atomic.make 0
  let direct_count = Atomic.make 0

  let enabled () = !enabled_flag
  let set_enabled b = enabled_flag := b

  let key ~kernel ~prec ~size ~salt ~cfg =
    { kernel; prec; size; salt; cfg_fp = cfg.Config.fingerprint }

  let find k =
    Mutex.lock lock;
    let r = Hashtbl.find_opt tbl k in
    Mutex.unlock lock;
    (match r with
    | Some _ -> Atomic.incr hit_count
    | None -> Atomic.incr miss_count);
    r

  let store k ~counter ~events ~direct_ok =
    Mutex.lock lock;
    (* Last writer wins: counters of a cacheable kernel are deterministic
       per key, so racing first executions store equal entries. *)
    Hashtbl.replace tbl k { counter; events; direct_ok };
    Mutex.unlock lock

  let demote_hit () =
    Atomic.decr hit_count;
    Atomic.incr miss_count

  let note_direct () = Atomic.incr direct_count

  let stats () = (Atomic.get hit_count, Atomic.get miss_count)

  let direct_hits () = Atomic.get direct_count

  let entries () =
    Mutex.lock lock;
    let n = Hashtbl.length tbl in
    Mutex.unlock lock;
    n

  (* Health-snapshot export: last-set-wins gauges, so callers may refresh
     them every reporting window without compounding. *)
  let export_gauges m =
    let hits = Atomic.get hit_count and misses = Atomic.get miss_count in
    let direct = Atomic.get direct_count in
    let lookups = hits + misses in
    let f = float_of_int in
    Vblu_obs.Metrics.set_gauge m "launch.cache.hits" (f hits);
    Vblu_obs.Metrics.set_gauge m "launch.cache.misses" (f misses);
    Vblu_obs.Metrics.set_gauge m "launch.cache.direct_hits" (f direct);
    Vblu_obs.Metrics.set_gauge m "launch.cache.entries" (f (entries ()));
    Vblu_obs.Metrics.set_gauge m "launch.cache.hit_rate"
      (if lookups = 0 then 0.0 else f hits /. f lookups);
    Vblu_obs.Metrics.set_gauge m "launch.cache.direct_fraction"
      (if lookups = 0 then 0.0 else f direct /. f lookups)

  let clear () =
    Mutex.lock lock;
    Hashtbl.reset tbl;
    Atomic.set hit_count 0;
    Atomic.set miss_count 0;
    Atomic.set direct_count 0;
    Mutex.unlock lock
end

let pp_stats ppf s =
  Format.fprintf ppf "%d warps, %.1f us, %.1f GFLOPS, %.1f GB/s" s.warps
    s.time_us s.gflops s.bandwidth_gbs
