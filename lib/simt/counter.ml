type t = {
  mutable fma_instrs : float;
  mutable div_instrs : float;
  mutable shfl_instrs : float;
  mutable smem_accesses : float;
  mutable gmem_instrs : float;
  mutable gmem_transactions : float;
  mutable gmem_bytes : float;
  mutable gmem_elems : float;
  mutable gmem_rounds : int;
  mutable useful_flops : float;
}

let create () =
  {
    fma_instrs = 0.0;
    div_instrs = 0.0;
    shfl_instrs = 0.0;
    smem_accesses = 0.0;
    gmem_instrs = 0.0;
    gmem_transactions = 0.0;
    gmem_bytes = 0.0;
    gmem_elems = 0.0;
    gmem_rounds = 0;
    useful_flops = 0.0;
  }

let copy x =
  {
    fma_instrs = x.fma_instrs;
    div_instrs = x.div_instrs;
    shfl_instrs = x.shfl_instrs;
    smem_accesses = x.smem_accesses;
    gmem_instrs = x.gmem_instrs;
    gmem_transactions = x.gmem_transactions;
    gmem_bytes = x.gmem_bytes;
    gmem_elems = x.gmem_elems;
    gmem_rounds = x.gmem_rounds;
    useful_flops = x.useful_flops;
  }

let reset t =
  t.fma_instrs <- 0.0;
  t.div_instrs <- 0.0;
  t.shfl_instrs <- 0.0;
  t.smem_accesses <- 0.0;
  t.gmem_instrs <- 0.0;
  t.gmem_transactions <- 0.0;
  t.gmem_bytes <- 0.0;
  t.gmem_elems <- 0.0;
  t.gmem_rounds <- 0;
  t.useful_flops <- 0.0

let add acc x =
  acc.fma_instrs <- acc.fma_instrs +. x.fma_instrs;
  acc.div_instrs <- acc.div_instrs +. x.div_instrs;
  acc.shfl_instrs <- acc.shfl_instrs +. x.shfl_instrs;
  acc.smem_accesses <- acc.smem_accesses +. x.smem_accesses;
  acc.gmem_instrs <- acc.gmem_instrs +. x.gmem_instrs;
  acc.gmem_transactions <- acc.gmem_transactions +. x.gmem_transactions;
  acc.gmem_bytes <- acc.gmem_bytes +. x.gmem_bytes;
  acc.gmem_elems <- acc.gmem_elems +. x.gmem_elems;
  (* Rounds measure critical-path depth, not volume: parallel warps overlap
     their latency, so merging takes the max rather than the sum. *)
  acc.gmem_rounds <- max acc.gmem_rounds x.gmem_rounds;
  acc.useful_flops <- acc.useful_flops +. x.useful_flops

let scale_into x f =
  {
    fma_instrs = x.fma_instrs *. f;
    div_instrs = x.div_instrs *. f;
    shfl_instrs = x.shfl_instrs *. f;
    smem_accesses = x.smem_accesses *. f;
    gmem_instrs = x.gmem_instrs *. f;
    (* Scaled exactly; consumers round once on the final totals, so Sampled
       extrapolation no longer picks up a spurious transaction per class. *)
    gmem_transactions = x.gmem_transactions *. f;
    gmem_bytes = x.gmem_bytes *. f;
    gmem_elems = x.gmem_elems *. f;
    gmem_rounds = x.gmem_rounds;
    useful_flops = x.useful_flops *. f;
  }

let credit_flops t f = t.useful_flops <- t.useful_flops +. f

let total_instrs t =
  t.fma_instrs +. t.div_instrs +. t.shfl_instrs +. t.smem_accesses

let transactions t = int_of_float (Float.round t.gmem_transactions)

let bytes t = int_of_float (Float.round t.gmem_bytes)

let elems t = int_of_float (Float.round t.gmem_elems)

let pp ppf t =
  Format.fprintf ppf
    "fma=%.0f div=%.0f shfl=%.0f smem=%.0f gmem_ld=%.0f gmem_txn=%.0f gmem_bytes=%.0f gmem_elems=%.0f rounds=%d flops=%.0f"
    t.fma_instrs t.div_instrs t.shfl_instrs t.smem_accesses t.gmem_instrs t.gmem_transactions
    t.gmem_bytes t.gmem_elems t.gmem_rounds t.useful_flops
