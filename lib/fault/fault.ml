type target = Register | Shared | Global

type kind = Bit_flip of int | Scale of float | Set_value of float

type site = {
  problem : int;
  step : int;
  lane : int;
  target : target;
  kind : kind;
}

type verdict = Unchecked | Passed | Failed

let target_name = function
  | Register -> "reg"
  | Shared -> "smem"
  | Global -> "gmem"

let kind_name = function
  | Bit_flip b -> Printf.sprintf "flip:%d" b
  | Scale f -> Printf.sprintf "scale:%g" f
  | Set_value v -> Printf.sprintf "set:%g" v

let corrupt kind v =
  match kind with
  | Bit_flip b ->
    Int64.float_of_bits
      (Int64.logxor (Int64.bits_of_float v) (Int64.shift_left 1L (b land 63)))
  | Scale f -> v *. f
  | Set_value x -> x

module Plan = struct
  type t = {
    seed : int;
    every : int;
    phase : int;
    target : target;
    kind : kind;
    at : site list;
    mutex : Mutex.t;
    fired : (int * int, unit) Hashtbl.t;
    mutable injected : int;
  }

  let make ?(seed = 1) ?(every = 1) ?(phase = 0) ?(target = Register)
      ?(kind = Bit_flip 55) ?(at = []) () =
    if every < 0 then invalid_arg "Fault.Plan.make: every < 0";
    if phase < 0 || (every > 0 && phase >= every) then
      invalid_arg "Fault.Plan.make: phase out of range";
    {
      seed;
      every;
      phase;
      target;
      kind;
      at;
      mutex = Mutex.create ();
      fired = Hashtbl.create 16;
      injected = 0;
    }

  (* Site placement is a pure function of (seed, problem): the generated
     step/lane come from a problem-keyed PRNG stream, so two runs of the
     same plan — at any domain count — fault the same places. *)
  let sites_for t ~problem ~size =
    if size <= 0 then []
    else begin
      let clamp s =
        {
          s with
          problem;
          step = ((s.step mod size) + size) mod size;
          lane = ((s.lane mod size) + size) mod size;
        }
      in
      let explicit =
        List.filter_map
          (fun s -> if s.problem = problem then Some (clamp s) else None)
          t.at
      in
      let generated =
        if t.every > 0 && problem mod t.every = t.phase then begin
          let st = Random.State.make [| 0x5eed; t.seed; problem |] in
          [
            {
              problem;
              step = Random.State.int st size;
              lane = Random.State.int st size;
              target = t.target;
              kind = t.kind;
            };
          ]
        end
        else []
      in
      explicit @ generated
    end

  let targeted t ~problems ~sizes =
    List.filter
      (fun i -> sites_for t ~problem:i ~size:sizes.(i) <> [])
      (List.init problems (fun i -> i))

  let claim t ~problem ~step =
    Mutex.lock t.mutex;
    let key = (problem, step) in
    let fresh = not (Hashtbl.mem t.fired key) in
    if fresh then Hashtbl.replace t.fired key ();
    Mutex.unlock t.mutex;
    fresh

  let injected t = t.injected

  let note_injected t =
    Mutex.lock t.mutex;
    t.injected <- t.injected + 1;
    Mutex.unlock t.mutex

  let reset t =
    Mutex.lock t.mutex;
    Hashtbl.reset t.fired;
    t.injected <- 0;
    Mutex.unlock t.mutex

  let to_spec t =
    let base =
      Printf.sprintf "seed=%d,every=%d,phase=%d,target=%s,kind=%s" t.seed
        t.every t.phase (target_name t.target) (kind_name t.kind)
    in
    List.fold_left
      (fun acc s ->
        acc ^ Printf.sprintf ",at=%d.%d.%d" s.problem s.step s.lane)
      base t.at

  let of_spec spec =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let parse_int k v =
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok n
      | _ -> err "invalid %s=%s: expected a non-negative integer" k v
    in
    let parse_target = function
      | "reg" | "register" -> Ok Register
      | "smem" | "shared" -> Ok Shared
      | "gmem" | "global" -> Ok Global
      | v -> err "invalid target=%s: expected reg, smem or gmem" v
    in
    let parse_kind v =
      match String.index_opt v ':' with
      | Some i -> (
        let name = String.sub v 0 i
        and arg = String.sub v (i + 1) (String.length v - i - 1) in
        match name with
        | "flip" -> (
          match int_of_string_opt arg with
          | Some b when b >= 0 && b <= 63 -> Ok (Bit_flip b)
          | _ -> err "invalid kind=%s: flip bit must be 0..63" v)
        | "scale" -> (
          match float_of_string_opt arg with
          | Some f -> Ok (Scale f)
          | None -> err "invalid kind=%s" v)
        | "set" -> (
          match float_of_string_opt arg with
          | Some f -> Ok (Set_value f)
          | None -> err "invalid kind=%s" v)
        | _ -> err "invalid kind=%s: expected flip:BIT, scale:F or set:F" v)
      | None -> err "invalid kind=%s: expected flip:BIT, scale:F or set:F" v
    in
    let parse_at v =
      match String.split_on_char '.' v with
      | [ p; s; l ] -> (
        match
          (int_of_string_opt p, int_of_string_opt s, int_of_string_opt l)
        with
        | Some p, Some s, Some l when p >= 0 && s >= 0 && l >= 0 ->
          Ok (p, s, l)
        | _ -> err "invalid at=%s: expected PROBLEM.STEP.LANE" v)
      | _ -> err "invalid at=%s: expected PROBLEM.STEP.LANE" v
    in
    let ( let* ) = Result.bind in
    let rec fold fields acc =
      match fields with
      | [] -> Ok acc
      | f :: rest -> (
        match String.index_opt f '=' with
        | None -> err "invalid fault spec field %S: expected key=value" f
        | Some i ->
          let k = String.sub f 0 i
          and v = String.sub f (i + 1) (String.length f - i - 1) in
          let seed, every, phase, target, kind, at = acc in
          let* acc =
            match k with
            | "seed" ->
              let* n = parse_int k v in
              Ok (n, every, phase, target, kind, at)
            | "every" ->
              let* n = parse_int k v in
              Ok (seed, n, phase, target, kind, at)
            | "phase" ->
              let* n = parse_int k v in
              Ok (seed, every, n, target, kind, at)
            | "target" ->
              let* t = parse_target v in
              Ok (seed, every, phase, t, kind, at)
            | "kind" ->
              let* kd = parse_kind v in
              Ok (seed, every, phase, target, kd, at)
            | "at" ->
              let* p, s, l = parse_at v in
              Ok (seed, every, phase, target, kind, (p, s, l) :: at)
            | _ ->
              err "unknown fault spec key %S (seed, every, phase, target, \
                   kind, at)" k
          in
          fold rest acc)
    in
    let fields =
      String.split_on_char ',' (String.trim spec)
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let* seed, every, phase, target, kind, at =
      fold fields (1, 1, 0, Register, Bit_flip 55, [])
    in
    if every > 0 && phase >= every then
      err "invalid fault spec: phase=%d must be < every=%d" phase every
    else
      let at =
        List.rev_map
          (fun (problem, step, lane) -> { problem; step; lane; target; kind })
          at
      in
      Ok (make ~seed ~every ~phase ~target ~kind ~at ())
end

module Injector = struct
  type t = {
    plan : Plan.t;
    sites : site list;
    mutable pending : site list;
  }

  let create plan ~problem ~size =
    match Plan.sites_for plan ~problem ~size with
    | [] -> None
    | sites -> Some { plan; sites; pending = [] }

  let step t k =
    List.iter
      (fun s ->
        if s.step = k && Plan.claim t.plan ~problem:s.problem ~step:s.step
        then t.pending <- s :: t.pending)
      t.sites

  let take t target =
    let rec split acc = function
      | [] -> None
      | s :: rest when s.target = target ->
        t.pending <- List.rev_append acc rest;
        Plan.note_injected t.plan;
        Some (s.lane, s.kind)
      | s :: rest -> split (s :: acc) rest
    in
    match t.pending with [] -> None | pending -> split [] pending
end
