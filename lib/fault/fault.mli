(** Deterministic soft-error injection and ABFT verdicts.

    GPUs running the paper's kernels are exposed to soft errors — bit
    flips in registers, shared memory and DRAM that silently corrupt a
    factor and, through a block-Jacobi preconditioner, a whole Krylov
    solve.  This module provides the machinery the rest of the stack
    threads through: a seedable {e fault plan} describing where faults
    land (problem index × elimination step × lane × storage class), the
    per-warp {e injector} that fires them inside the simulated kernels,
    and the per-problem {e verdict} ABFT verification reports next to the
    [info] breakdown array.

    Two invariants make fault campaigns reproducible and recoverable:

    - {b Determinism}: the sites of a plan are a pure function of
      [(seed, problem, size)].  Two runs with the same plan fault the
      same lanes at the same steps, whatever the domain count.
    - {b One-shot firing}: each [(problem, step)] site fires at most once
      per plan lifetime (claims are serialized under a mutex, and the
      key space is partitioned by problem, so claiming is race-free and
      deterministic under parallel execution).  A recovery policy that
      recomputes a flagged problem therefore converges: the retry runs
      clean. *)

(** Where the corrupted value lives. *)
type target =
  | Register  (** a register operand — fires on the next arithmetic result. *)
  | Shared    (** a shared-memory tile — fires on the next smem access. *)
  | Global    (** global memory — fires on the next gmem load/store. *)

(** How the value is corrupted. *)
type kind =
  | Bit_flip of int
      (** XOR the given bit (0–63) of the IEEE-754 representation.  The
          default plan flips bit 55 — an exponent bit, scaling the value
          by 2^±8 so the corruption is far outside rounding noise. *)
  | Scale of float   (** multiply by the factor. *)
  | Set_value of float  (** overwrite outright. *)

type site = {
  problem : int;  (** batch problem (or diagonal-block) index. *)
  step : int;  (** elimination step at which the fault arms. *)
  lane : int;  (** lane (thread/row) whose value is corrupted. *)
  target : target;
  kind : kind;
}

(** Per-problem ABFT verdict, reported alongside the [info] array. *)
type verdict =
  | Unchecked  (** verification was off, or the problem broke down. *)
  | Passed
  | Failed  (** the checksum test flagged a corrupted result. *)

val target_name : target -> string
val kind_name : kind -> string

val corrupt : kind -> float -> float
(** Apply a corruption to a value ([Bit_flip] works on the raw IEEE
    bits, bypassing any precision rounding). *)

module Plan : sig
  type t

  val make :
    ?seed:int ->
    ?every:int ->
    ?phase:int ->
    ?target:target ->
    ?kind:kind ->
    ?at:site list ->
    unit ->
    t
  (** A plan faults problem [i] iff [i mod every = phase] (defaults:
      [every = 1], [phase = 0], i.e. every problem), placing one site per
      faulted problem at a step/lane derived deterministically from
      [(seed, i)] and clamped to the problem size, with the given
      [target] (default [Register]) and [kind] (default [Bit_flip 55]).
      [at] adds explicit sites on top (their step/lane are clamped to the
      problem size when the sites are materialized); when [at] is
      non-empty and [every = 0], only the explicit sites fire.
      @raise Invalid_argument if [every < 0], [phase < 0] or
      [phase >= every] (for [every > 0]). *)

  val of_spec : string -> (t, string) result
  (** Parse a CLI spec: comma-separated [key=value] settings among
      [seed=N], [every=N], [phase=N], [target=reg|smem|gmem],
      [kind=flip:BIT|scale:F|set:F], and any number of
      [at=PROBLEM.STEP.LANE] explicit sites.  Examples:
      ["seed=7,every=3"], ["every=0,at=2.1.0,target=gmem"]. *)

  val to_spec : t -> string
  (** Round-trips through {!of_spec}. *)

  val sites_for : t -> problem:int -> size:int -> site list
  (** The sites this plan places in the given problem, step/lane clamped
      to [size]; pure and deterministic.  Empty for [size <= 0]. *)

  val targeted : t -> problems:int -> sizes:int array -> int list
  (** The problem indices [0 .. problems-1] holding at least one site —
      what a test or CI assertion should expect ABFT to flag. *)

  val claim : t -> problem:int -> step:int -> bool
  (** [claim p ~problem ~step] atomically claims the site key; [true]
      exactly once per key per plan lifetime ({e one-shot}). *)

  val injected : t -> int
  (** Number of corruptions actually applied so far (incremented by the
      injector, or by host-level injection sites, after a successful
      claim + corruption). *)

  val note_injected : t -> unit
  (** Count one applied corruption (used by host-level injection paths;
      warp-level injection counts through {!Injector}). *)

  val reset : t -> unit
  (** Forget all claims and the injected count, so the same plan can
      drive a fresh, identical campaign. *)
end

module Injector : sig
  (** The per-warp view of a plan: created for one problem, it arms the
      problem's sites as the kernel announces elimination steps and
      fires each site on the next operation of the matching target
      class. *)

  type t

  val create : Plan.t -> problem:int -> size:int -> t option
  (** [None] when the plan places no site in this problem — the kernel
      keeps its zero-overhead disabled path. *)

  val step : t -> int -> unit
  (** Announce elimination step [k]: sites with [site.step = k] that win
      their one-shot claim become pending. *)

  val take : t -> target -> (int * kind) option
  (** Consume the pending fault for a target class, if any: returns the
      lane to corrupt and how.  At most one fire per armed site. *)
end
