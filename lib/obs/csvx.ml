let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row fields = String.concat "," (List.map quote fields)
