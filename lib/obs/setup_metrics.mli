(** Labelled [precond.setup.*] instruments for amortized preconditioner
    setup (dirty-block refresh).

    Every refresh event — a fresh construction, a partial [update], or a
    serve-side cache hit — records the same four counters, labelled by
    preconditioner family, so amortization is observable per time step
    and per serve wave from one place:

    - [precond.setup.fresh{family=..}]        blocks factored from scratch
      (full setups and [~force_all] refreshes included);
    - [precond.setup.reused{family=..}]       blocks whose factors, pivots
      and info were reused bitwise;
    - [precond.setup.partial{family=..}]      refresh events that
      refactored a strict subset of the blocks;
    - [precond.setup.dirty_blocks{family=..}] blocks flagged dirty
      (max |Δa| above tolerance) and re-batched.

    All helpers are no-ops on [None], preserving the [Ctx] fast path. *)

val record :
  Ctx.t option ->
  family:string ->
  fresh:int ->
  reused:int ->
  dirty:int ->
  unit
(** Record one refresh event.  [fresh] is the number of blocks factored
    from scratch, [reused] the number reused bitwise, [dirty] the number
    flagged dirty by the tolerance test.  The event counts as partial
    when it reused at least one block while refactoring at least one. *)
