type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal form that round-trips; integral values print without
   an exponent so sizes and counts stay readable in the artifacts. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  let nl indent =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * indent) ' ')
    end
  in
  let rec emit indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | Str s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          emit (indent + 1) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          emit (indent + 1) item)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the raw string.                      *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Parse (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
            Buffer.add_char buf e;
            go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "invalid \\u escape"
            in
            (* UTF-8 encode the code point (no surrogate pairing — the
               artifacts this parser reads never emit them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
          | _ -> fail "invalid escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        fields []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        items []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
