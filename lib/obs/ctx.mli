(** Observability context: the single handle threaded through the stack.

    A context bundles an optional trace buffer and an optional metrics
    registry.  Every instrumented call site takes [?obs : Ctx.t] and calls
    the helpers below with the [t option] it received; when the option is
    [None] (or the relevant pillar is absent) each helper is a single
    pattern match that returns immediately and evaluates none of its lazy
    payload — the None fast path that keeps disabled runs bit-identical
    to uninstrumented code, the same discipline as [Fault.Injector].

    For parallel phases, create one child per {e work item} with {!sub},
    hand each worker its item's child, and after the pool joins fold the
    children back in item order with {!graft} — trace clocks and metric
    totals then match the sequential run bit-for-bit regardless of the
    domain count. *)

type t = { trace : Trace.t option; metrics : Metrics.t option }

val v : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t
val enabled : t option -> bool

(** {1 Tracing} — no-ops when the context or its trace buffer is absent. *)

val with_span :
  t option -> ?cat:string -> ?args:(unit -> (string * Trace.arg) list) ->
  string -> (unit -> 'a) -> 'a

val span_dur :
  t option -> ?cat:string -> ?args:(string * Trace.arg) list -> dur:float ->
  string -> unit

val instant :
  t option -> ?cat:string -> ?args:(string * Trace.arg) list -> string -> unit

val sample : t option -> string -> (unit -> (string * float) list) -> unit
(** The value list is a thunk, evaluated only when tracing is on. *)

val advance : t option -> float -> unit

(** {1 Metrics} — no-ops when the context or its registry is absent. *)

val incr : t option -> string -> float -> unit
val set_gauge : t option -> string -> float -> unit
val observe : t option -> string -> float -> unit

val incr_l : t option -> string -> (string * string) list -> float -> unit
(** Labelled counter: [incr_l obs base labels v] bumps the instrument
    {!Metrics.labelled}[ base labels].  The canonical name is built only
    when a registry is attached — the disabled fast path stays
    allocation-free. *)

val set_gauge_l : t option -> string -> (string * string) list -> float -> unit
val observe_l : t option -> string -> (string * string) list -> float -> unit

val record_verdicts : t option -> Vblu_fault.Fault.verdict array -> unit
(** Bump [abft.passed] / [abft.failed] / [abft.unchecked] counters. *)

(** {1 Parallel-phase plumbing} *)

val sub : t option -> t option
(** A fresh child context with the same pillars enabled (fresh buffers)
    — or [None] if the parent is [None], so workers inherit the fast
    path. *)

val graft : into:t option -> t option -> unit
(** Merge a {!sub} child back into its parent: trace events are appended
    (shifted to the parent's clock) and metrics are folded in.  Call in
    work-item order after the pool joins. *)
