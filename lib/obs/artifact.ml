type entry = {
  kernel : string;
  prec : string;
  size : int;
  batch : int;
  gflops : float;
  bandwidth_gbs : float;
  time_us : float;
}

type meta = {
  schema : string;
  target : string;
  git_rev : string;
  config : string;
  domains : int;
  quick : bool;
}

type t = { meta : meta; entries : entry list }

let schema_version = "vblu-bench/1"

let entry_key e = Printf.sprintf "%s/%s/n%d/b%d" e.kernel e.prec e.size e.batch

let compare_entries a b =
  match String.compare a.kernel b.kernel with
  | 0 -> (
    match String.compare a.prec b.prec with
    | 0 -> ( match compare a.size b.size with 0 -> compare a.batch b.batch | c -> c)
    | c -> c)
  | c -> c

let default_git_rev () =
  match Sys.getenv_opt "VBLU_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
    match Sys.getenv_opt "GITHUB_SHA" with
    | Some r when r <> "" -> r
    | _ -> "unknown")

let make ?git_rev ~target ~config ~domains ~quick entries =
  let git_rev = match git_rev with Some r -> r | None -> default_git_rev () in
  {
    meta = { schema = schema_version; target; git_rev; config; domains; quick };
    entries = List.sort compare_entries entries;
  }

(* ------------------------------------------------------------------ *)
(* JSON round-trip.                                                    *)

let json_of_entry e =
  Jsonx.Obj
    [
      ("kernel", Jsonx.Str e.kernel);
      ("prec", Jsonx.Str e.prec);
      ("size", Jsonx.Num (float_of_int e.size));
      ("batch", Jsonx.Num (float_of_int e.batch));
      ("gflops", Jsonx.Num e.gflops);
      ("bandwidth_gbs", Jsonx.Num e.bandwidth_gbs);
      ("time_us", Jsonx.Num e.time_us);
    ]

let to_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str t.meta.schema);
      ("target", Jsonx.Str t.meta.target);
      ("git_rev", Jsonx.Str t.meta.git_rev);
      ("config", Jsonx.Str t.meta.config);
      ("domains", Jsonx.Num (float_of_int t.meta.domains));
      ("quick", Jsonx.Bool t.meta.quick);
      ("entries", Jsonx.List (List.map json_of_entry t.entries));
    ]

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Jsonx.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let entry_of_json j =
  let* kernel = field "kernel" Jsonx.to_str j in
  let* prec = field "prec" Jsonx.to_str j in
  let* size = field "size" Jsonx.to_int j in
  let* batch = field "batch" Jsonx.to_int j in
  let* gflops = field "gflops" Jsonx.to_float j in
  let* bandwidth_gbs = field "bandwidth_gbs" Jsonx.to_float j in
  let* time_us = field "time_us" Jsonx.to_float j in
  Ok { kernel; prec; size; batch; gflops; bandwidth_gbs; time_us }

let of_json j =
  let* schema = field "schema" Jsonx.to_str j in
  if schema <> schema_version then
    Error
      (Printf.sprintf "unsupported bench artifact schema %S (expected %S)"
         schema schema_version)
  else
    let* target = field "target" Jsonx.to_str j in
    let* git_rev = field "git_rev" Jsonx.to_str j in
    let* config = field "config" Jsonx.to_str j in
    let* domains = field "domains" Jsonx.to_int j in
    let* quick = field "quick" Jsonx.to_bool j in
    let* entries_j = field "entries" Jsonx.to_list j in
    let* entries =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* e = entry_of_json e in
          Ok (e :: acc))
        (Ok []) entries_j
    in
    Ok
      {
        meta = { schema; target; git_rev; config; domains; quick };
        entries = List.sort compare_entries (List.rev entries);
      }

let write path t =
  let oc = open_out path in
  output_string oc (Jsonx.to_string ~pretty:true (to_json t));
  output_char oc '\n';
  close_out oc

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Jsonx.of_string contents with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok j -> (
      match of_json j with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok t -> Ok t))

(* ------------------------------------------------------------------ *)
(* Regression gate.                                                    *)

type delta = {
  key : string;
  base_gflops : float;
  cur_gflops : float;
  pct : float;
}

type comparison = {
  passed : bool;
  tolerance_pct : float;
  deltas : delta list;
  missing : string list;
  added : string list;
}

let compare ~tolerance_pct ~base ~cur =
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace cur_tbl (entry_key e) e) cur.entries;
  let base_keys = Hashtbl.create 64 in
  let deltas, missing =
    List.fold_left
      (fun (deltas, missing) b ->
        let key = entry_key b in
        Hashtbl.replace base_keys key ();
        match Hashtbl.find_opt cur_tbl key with
        | None -> (deltas, key :: missing)
        | Some c ->
          let pct =
            if b.gflops = 0.0 then if c.gflops = 0.0 then 0.0 else 100.0
            else (c.gflops -. b.gflops) /. b.gflops *. 100.0
          in
          ( { key; base_gflops = b.gflops; cur_gflops = c.gflops; pct } :: deltas,
            missing ))
      ([], []) base.entries
  in
  let added =
    List.filter_map
      (fun e ->
        let key = entry_key e in
        if Hashtbl.mem base_keys key then None else Some key)
      cur.entries
  in
  let deltas = List.rev deltas and missing = List.rev missing in
  let passed =
    missing = [] && List.for_all (fun d -> d.pct >= -.tolerance_pct) deltas
  in
  { passed; tolerance_pct; deltas; missing; added }

let pp_comparison ppf c =
  let worst_first =
    List.sort (fun a b -> Float.compare a.pct b.pct) c.deltas
  in
  Format.fprintf ppf "bench-compare: tolerance %.2f%%@." c.tolerance_pct;
  List.iter
    (fun d ->
      let flag = if d.pct < -.c.tolerance_pct then "  REGRESSION" else "" in
      Format.fprintf ppf "  %-32s %10.3f -> %10.3f GFLOPS  %+7.2f%%%s@." d.key
        d.base_gflops d.cur_gflops d.pct flag)
    worst_first;
  List.iter
    (fun k -> Format.fprintf ppf "  %-32s MISSING from current artifact@." k)
    c.missing;
  List.iter (fun k -> Format.fprintf ppf "  %-32s new (not in base)@." k) c.added;
  Format.fprintf ppf "result: %s@." (if c.passed then "PASS" else "FAIL")
