type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;
      dur : float;
      args : (string * arg) list;
    }
  | Instant of { name : string; cat : string; ts : float; args : (string * arg) list }
  | Sample of { name : string; ts : float; values : (string * float) list }

type t = {
  mutable now : float;
  mutable events : event list;  (* reverse recording order *)
  mutable count : int;
}

let create () = { now = 0.0; events = []; count = 0 }
let now t = t.now
let advance t dt = if dt > 0.0 then t.now <- t.now +. dt

let push t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1

let with_span t ?(cat = "host") ?(args = fun () -> []) name f =
  let ts = t.now in
  let r = f () in
  push t (Span { name; cat; ts; dur = t.now -. ts; args = args () });
  r

let span_dur t ?(cat = "kernel") ?(args = []) ~dur name =
  push t (Span { name; cat; ts = t.now; dur; args });
  advance t dur

let instant t ?(cat = "host") ?(args = []) name =
  push t (Instant { name; cat; ts = t.now; args })

let sample t name values = push t (Sample { name; ts = t.now; values })

let events t = List.rev t.events
let num_events t = t.count

let shift dt = function
  | Span s -> Span { s with ts = s.ts +. dt }
  | Instant i -> Instant { i with ts = i.ts +. dt }
  | Sample s -> Sample { s with ts = s.ts +. dt }

let merge_into ~into child =
  let off = into.now in
  (* Append in the child's recording order, preserving reverse storage. *)
  List.iter (fun e -> push into (shift off e)) (events child);
  advance into child.now

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export.                                          *)

let json_of_arg = function
  | Int i -> Jsonx.Num (float_of_int i)
  | Float f -> Jsonx.Num f
  | Str s -> Jsonx.Str s
  | Bool b -> Jsonx.Bool b

(* Empty args are omitted entirely — Chrome/Perfetto treat a missing
   "args" like an empty one, and the traces stay smaller. *)
let json_of_args args =
  match args with
  | [] -> []
  | _ -> [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]

let json_of_event e =
  let common name cat ph ts =
    [
      ("name", Jsonx.Str name);
      ("cat", Jsonx.Str cat);
      ("ph", Jsonx.Str ph);
      ("ts", Jsonx.Num ts);
      ("pid", Jsonx.Num 1.0);
      ("tid", Jsonx.Num 1.0);
    ]
  in
  match e with
  | Span { name; cat; ts; dur; args } ->
    Jsonx.Obj
      (common name cat "X" ts
      @ (("dur", Jsonx.Num dur) :: json_of_args args))
  | Instant { name; cat; ts; args } ->
    Jsonx.Obj
      (common name cat "i" ts
      @ (("s", Jsonx.Str "t") :: json_of_args args))
  | Sample { name; ts; values } ->
    Jsonx.Obj
      (common name "counter" "C" ts
      @ [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Num v)) values)) ])

let to_chrome_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "vblu-trace/1");
      ("displayTimeUnit", Jsonx.Str "ms");
      ("traceEvents", Jsonx.List (List.map json_of_event (events t)));
    ]

let write path t =
  let oc = open_out path in
  output_string oc (Jsonx.to_string ~pretty:true (to_chrome_json t));
  output_char oc '\n';
  close_out oc
