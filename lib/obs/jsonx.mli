(** Minimal JSON tree, emitter and parser.

    The observability artifacts (Chrome traces, metrics dumps, bench
    artifacts) must be machine-readable without adding an opam dependency,
    so this module implements the small JSON subset they need: the full
    value grammar, a deterministic emitter (object keys are printed in the
    order given; floats use the shortest representation that round-trips),
    and a recursive-descent parser for [bench-compare] to read artifacts
    back.

    Non-finite floats have no JSON encoding; they are emitted as [null]
    (and [null] never parses back as a number), so writers are expected to
    keep NaN/infinity out of artifacts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Deterministic serialization.  [pretty] (default [false]) adds
    newlines and two-space indentation — used for the checked-in golden
    artifacts so diffs stay readable. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Errors carry a byte offset and a short description. *)

val float_repr : float -> string
(** The emitter's number format: the shortest ["%.15g"]/["%.16g"]/
    ["%.17g"] form that round-trips through [float_of_string], with
    integral values up to 1e15 printed without an exponent.  Exposed so
    golden tests can state expectations exactly. *)

(** {1 Accessors} — total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
