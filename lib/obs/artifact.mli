(** Machine-readable benchmark artifacts and the regression gate.

    An artifact is a schema-versioned JSON document ([vblu-bench/1])
    holding one entry per (kernel, precision, size, batch) point with the
    modelled GFLOPS, bandwidth and time, plus run metadata (git revision,
    config preset, domain count, quick flag).  Because the performance
    model is fully deterministic, two runs of the same code produce equal
    numbers and CI can diff artifacts exactly; the tolerance only has to
    absorb intentional model changes.

    [compare] gates on the relative GFLOPS delta per entry: the gate fails
    if any entry regresses by more than [tolerance_pct] percent, or if an
    entry present in the base is missing from the current artifact.
    Improvements and new entries never fail. *)

type entry = {
  kernel : string;  (** e.g. ["getrf"], ["trsv"], ["gemm"]. *)
  prec : string;  (** ["fp64"] / ["fp32"] / ["fp16"]. *)
  size : int;  (** matrix order of the size class. *)
  batch : int;  (** number of problems in the batch. *)
  gflops : float;
  bandwidth_gbs : float;
  time_us : float;
}

type meta = {
  schema : string;  (** always ["vblu-bench/1"] for writers. *)
  target : string;  (** bench target that produced it, e.g. ["kernels"]. *)
  git_rev : string;  (** from [VBLU_GIT_REV] / [GITHUB_SHA], else ["unknown"]. *)
  config : string;  (** GPU config preset, e.g. ["p100"]. *)
  domains : int;
  quick : bool;
}

type t = { meta : meta; entries : entry list }

val schema_version : string

val entry_key : entry -> string
(** ["kernel/prec/nSIZE/bBATCH"] — the key entries are compared under. *)

val make :
  ?git_rev:string -> target:string -> config:string -> domains:int ->
  quick:bool -> entry list -> t
(** Build an artifact; entries are sorted into canonical (kernel, prec,
    size, batch) order.  [git_rev] defaults to the [VBLU_GIT_REV] or
    [GITHUB_SHA] environment variable, else ["unknown"]. *)

val to_json : t -> Jsonx.t
val of_json : Jsonx.t -> (t, string) result
(** Rejects missing/mistyped fields and unknown schema versions. *)

val write : string -> t -> unit
val read : string -> (t, string) result

type delta = {
  key : string;  (** ["kernel/prec/nXX/bYY"]. *)
  base_gflops : float;
  cur_gflops : float;
  pct : float;  (** relative change in percent; negative = regression. *)
}

type comparison = {
  passed : bool;
  tolerance_pct : float;
  deltas : delta list;  (** entries present in both, sorted by key. *)
  missing : string list;  (** keys in base but not in current — a failure. *)
  added : string list;  (** keys in current only — informational. *)
}

val compare : tolerance_pct:float -> base:t -> cur:t -> comparison

val pp_comparison : Format.formatter -> comparison -> unit
(** Human-readable report: worst regressions first, then missing/added. *)
