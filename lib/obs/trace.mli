(** Structured tracing over simulated time.

    A trace buffer records spans (slices with a duration), instant events
    and counter samples against a {e simulated} clock: [now] starts at 0
    and advances only when a caller accounts modelled kernel time
    ({!advance}, or {!span_dur} which advances by the span's duration) or
    an explicit deterministic tick.  Wall-clock never enters the buffer,
    so two runs of the same workload produce byte-identical traces — the
    foundation of the cross-domain determinism contract.

    Concurrency discipline: a buffer is single-writer.  Parallel phases
    record into one fresh child buffer {e per work item} (not per domain),
    and the children are appended in item order by {!merge_into} after the
    pool joins — mirroring the sequential counter-fold of
    [Vblu_simt.Sampling] — so the merged buffer is bit-identical for every
    domain count.

    Export is Chrome trace-event JSON ([chrome://tracing], Perfetto):
    spans become complete ("X") events, instants "i", counter samples "C";
    timestamps are microseconds of simulated time.  Host-side phases that
    carry no modelled time appear as zero-duration slices. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;  (** start, simulated µs. *)
      dur : float;  (** simulated µs; 0 for unmodelled host phases. *)
      args : (string * arg) list;
    }
  | Instant of { name : string; cat : string; ts : float; args : (string * arg) list }
  | Sample of { name : string; ts : float; values : (string * float) list }
      (** a counter-track sample ("C" event). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in µs. *)

val advance : t -> float -> unit
(** Move the clock forward (negative amounts are ignored). *)

val with_span :
  t -> ?cat:string -> ?args:(unit -> (string * arg) list) -> string ->
  (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] and records a span from the clock value
    at entry to the clock value after [f] — so a span's duration is
    exactly the modelled time accounted inside it, and sibling spans never
    overlap.  [args] is evaluated {e after} [f] returns, letting callers
    attach results.  If [f] raises, nothing is recorded. *)

val span_dur :
  t -> ?cat:string -> ?args:(string * arg) list -> dur:float -> string -> unit
(** Record a completed span of [dur] µs starting at [now], then advance
    the clock by [dur] — the primitive kernel launches use. *)

val instant :
  t -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val sample : t -> string -> (string * float) list -> unit
(** Record a counter sample at [now]. *)

val events : t -> event list
(** Events in recording order (spans order by completion). *)

val num_events : t -> int

val merge_into : into:t -> t -> unit
(** [merge_into ~into child] appends the child's events shifted by
    [now into], then advances [into]'s clock by the child's total time.
    The child buffer is not modified and must not be reused. *)

val to_chrome_json : t -> Jsonx.t
(** The whole buffer as a Chrome trace-event document:
    [{"schema": "vblu-trace/1", "displayTimeUnit": "ms",
      "traceEvents": [...]}]. *)

val write : string -> t -> unit
(** Write {!to_chrome_json} (pretty-printed) to a file. *)
