(* Bucket k (k = 0 .. span-1) has inclusive upper bound 2^(k + lo_exp);
   the final bucket catches everything larger. *)
let lo_exp = -10
let hi_exp = 30
let span = hi_exp - lo_exp + 1
let num_buckets = span + 1

let bucket_le i =
  if i < 0 || i >= num_buckets then invalid_arg "Metrics.bucket_le"
  else if i = span then infinity
  else Float.of_int 2 ** Float.of_int (i + lo_exp)

let bucket_of v =
  if Float.is_nan v then span
  else begin
    let i = ref 0 in
    while !i < span && v > bucket_le !i do
      incr i
    done;
    !i
  end

type hist = { counts : int array; mutable sum : float; mutable count : int }

type instr =
  | C of float ref
  | G of float ref
  | H of hist

type t = (string, instr) Hashtbl.t

let create () : t = Hashtbl.create 32

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let clash name instr want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, used as a %s" name (kind_name instr)
       want)

let incr t name v =
  match Hashtbl.find_opt t name with
  | Some (C r) -> r := !r +. v
  | Some instr -> clash name instr "counter"
  | None -> Hashtbl.add t name (C (ref v))

let set_gauge t name v =
  match Hashtbl.find_opt t name with
  | Some (G r) -> r := v
  | Some instr -> clash name instr "gauge"
  | None -> Hashtbl.add t name (G (ref v))

let get_hist t name =
  match Hashtbl.find_opt t name with
  | Some (H h) -> h
  | Some instr -> clash name instr "histogram"
  | None ->
    let h = { counts = Array.make num_buckets 0; sum = 0.0; count = 0 } in
    Hashtbl.add t name (H h);
    h

let observe t name v =
  let h = get_hist t name in
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

(* ------------------------------------------------------------------ *)
(* Labelled instruments.                                               *)

(* The canonical encoding [base{k1=v1,k2=v2}] must round-trip unambiguously
   through the name-keyed registry, so the separator characters are banned
   from every component. *)
let check_component what banned s =
  if s = "" then invalid_arg (Printf.sprintf "Metrics.labelled: empty %s" what);
  String.iter
    (fun c ->
      if String.contains banned c then
        invalid_arg
          (Printf.sprintf "Metrics.labelled: %s %S contains %C" what s c))
    s

let labelled base labels =
  check_component "base name" "{}," base;
  match labels with
  | [] -> base
  | _ ->
    List.iter
      (fun (k, v) ->
        check_component "label key" "{},=" k;
        check_component "label value" "{},=" v)
      labels;
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    let rec dup = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then
          invalid_arg
            (Printf.sprintf "Metrics.labelled: duplicate label key %S" a);
        dup rest
      | _ -> ()
    in
    dup sorted;
    let buf = Buffer.create (String.length base + 16) in
    Buffer.add_string buf base;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v)
      sorted;
    Buffer.add_char buf '}';
    Buffer.contents buf

let incr_l t base labels v = incr t (labelled base labels) v
let set_gauge_l t base labels v = set_gauge t (labelled base labels) v
let observe_l t base labels v = observe t (labelled base labels) v

type snapshot =
  | Counter of float
  | Gauge of float
  | Histogram of { counts : int array; sum : float; count : int }

let snapshot t =
  Hashtbl.fold
    (fun name instr acc ->
      let s =
        match instr with
        | C r -> Counter !r
        | G r -> Gauge !r
        | H h -> Histogram { counts = Array.copy h.counts; sum = h.sum; count = h.count }
      in
      (name, s) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter_value t name =
  match Hashtbl.find_opt t name with Some (C r) -> !r | _ -> 0.0

let merge_into ~into child =
  (* Iterate the child's instruments in sorted name order so counter float
     sums accumulate in a fixed order regardless of hash layout. *)
  List.iter
    (fun (name, s) ->
      match s with
      | Counter v -> incr into name v
      | Gauge v -> set_gauge into name v
      | Histogram { counts; sum; count } ->
        let h = get_hist into name in
        Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) counts;
        h.sum <- h.sum +. sum;
        h.count <- h.count + count)
    (snapshot child)

(* ------------------------------------------------------------------ *)
(* Emitters.                                                           *)

let le_label i =
  if i = span then "+Inf" else Jsonx.float_repr (bucket_le i)

let json_of_snapshot = function
  | Counter v ->
    Jsonx.Obj [ ("type", Jsonx.Str "counter"); ("value", Jsonx.Num v) ]
  | Gauge v -> Jsonx.Obj [ ("type", Jsonx.Str "gauge"); ("value", Jsonx.Num v) ]
  | Histogram { counts; sum; count } ->
    let buckets =
      Array.to_list counts
      |> List.mapi (fun i c -> (le_label i, Jsonx.Num (float_of_int c)))
      |> List.filter (fun (_, v) -> v <> Jsonx.Num 0.0)
    in
    Jsonx.Obj
      [
        ("type", Jsonx.Str "histogram");
        ("count", Jsonx.Num (float_of_int count));
        ("sum", Jsonx.Num sum);
        ("buckets", Jsonx.Obj buckets);
      ]

let to_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "vblu-metrics/1");
      ( "metrics",
        Jsonx.Obj (List.map (fun (n, s) -> (n, json_of_snapshot s)) (snapshot t))
      );
    ]

let to_csv t =
  let buf = Buffer.create 256 in
  let line name kind field value =
    Buffer.add_string buf (Csvx.row [ name; kind; field; value ]);
    Buffer.add_char buf '\n'
  in
  line "name" "kind" "field" "value";
  List.iter
    (fun (name, s) ->
      match s with
      | Counter v -> line name "counter" "value" (Jsonx.float_repr v)
      | Gauge v -> line name "gauge" "value" (Jsonx.float_repr v)
      | Histogram { counts; sum; count } ->
        line name "histogram" "count" (string_of_int count);
        line name "histogram" "sum" (Jsonx.float_repr sum);
        Array.iteri
          (fun i c ->
            if c > 0 then
              line name "histogram" ("le_" ^ le_label i) (string_of_int c))
          counts)
    (snapshot t);
  Buffer.contents buf

let write path t =
  let oc = open_out path in
  output_string oc (Jsonx.to_string ~pretty:true (to_json t));
  output_char oc '\n';
  close_out oc
