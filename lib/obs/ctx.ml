type t = { trace : Trace.t option; metrics : Metrics.t option }

let v ?trace ?metrics () = { trace; metrics }
let enabled = function None -> false | Some _ -> true

let with_span obs ?cat ?args name f =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.with_span tr ?cat ?args name f
  | _ -> f ()

let span_dur obs ?cat ?args ~dur name =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.span_dur tr ?cat ?args ~dur name
  | _ -> ()

let instant obs ?cat ?args name =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.instant tr ?cat ?args name
  | _ -> ()

let sample obs name values =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.sample tr name (values ())
  | _ -> ()

let advance obs dt =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.advance tr dt
  | _ -> ()

let incr obs name v =
  match obs with
  | Some { metrics = Some m; _ } -> Metrics.incr m name v
  | _ -> ()

let set_gauge obs name v =
  match obs with
  | Some { metrics = Some m; _ } -> Metrics.set_gauge m name v
  | _ -> ()

let observe obs name v =
  match obs with
  | Some { metrics = Some m; _ } -> Metrics.observe m name v
  | _ -> ()

(* Labelled variants: the canonical name is only built when a registry is
   actually attached, so the disabled path allocates nothing. *)
let incr_l obs base labels v =
  match obs with
  | Some { metrics = Some m; _ } -> Metrics.incr_l m base labels v
  | _ -> ()

let set_gauge_l obs base labels v =
  match obs with
  | Some { metrics = Some m; _ } -> Metrics.set_gauge_l m base labels v
  | _ -> ()

let observe_l obs base labels v =
  match obs with
  | Some { metrics = Some m; _ } -> Metrics.observe_l m base labels v
  | _ -> ()

let record_verdicts obs verdicts =
  match obs with
  | Some { metrics = Some m; _ } ->
    let passed = ref 0 and failed = ref 0 and unchecked = ref 0 in
    Array.iter
      (fun (v : Vblu_fault.Fault.verdict) ->
        match v with
        | Vblu_fault.Fault.Passed -> Stdlib.incr passed
        | Vblu_fault.Fault.Failed -> Stdlib.incr failed
        | Vblu_fault.Fault.Unchecked -> Stdlib.incr unchecked)
      verdicts;
    if !passed > 0 then Metrics.incr m "abft.passed" (float_of_int !passed);
    if !failed > 0 then Metrics.incr m "abft.failed" (float_of_int !failed);
    if !unchecked > 0 then
      Metrics.incr m "abft.unchecked" (float_of_int !unchecked)
  | _ -> ()

let sub = function
  | None -> None
  | Some parent ->
    Some
      {
        trace = Option.map (fun _ -> Trace.create ()) parent.trace;
        metrics = Option.map (fun _ -> Metrics.create ()) parent.metrics;
      }

let graft ~into child =
  match (into, child) with
  | Some p, Some c ->
    (match (p.trace, c.trace) with
    | Some pt, Some ct -> Trace.merge_into ~into:pt ct
    | _ -> ());
    (match (p.metrics, c.metrics) with
    | Some pm, Some cm -> Metrics.merge_into ~into:pm cm
    | _ -> ())
  | _ -> ()
