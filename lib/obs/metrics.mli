(** Typed metrics registry.

    Three instrument kinds, all keyed by name in a single registry:

    - {b counters} — monotone sums of floats ([incr]);
    - {b gauges} — last-set-wins values ([set_gauge]);
    - {b histograms} — fixed log2-scale buckets ([observe]): bucket [k]
      (for [k] in -10..30) counts observations [<= 2^k], plus one overflow
      bucket.  The bucket layout is static so histograms from different
      runs or domains merge bucketwise with no re-binning.

    A name is bound to one kind for the registry's lifetime; using it as a
    different kind raises [Invalid_argument] — catching instrument-kind
    clashes at the call site rather than producing silently-wrong output.

    {b Labels.}  Dimensioned instruments (per-tenant counters, per-kernel
    launch tallies) use the [_l] variants, which take a [(key, value)]
    label list and derive the canonical registry name [base{k1=v1,k2=v2}]
    — labels sorted by key, validated once — instead of every caller
    string-concatenating its own ad-hoc encoding.  Two label lists that
    differ only in order address the same instrument.

    Determinism: output ([to_json], [to_csv]) sorts instruments by name,
    and [merge_into] combines registries commutatively enough for the
    sequential-join discipline (counters sum, gauges last-set-wins,
    histograms add bucketwise) — so merging per-item registries in item
    order yields bit-identical totals for every domain count. *)

type t

val create : unit -> t

val incr : t -> string -> float -> unit
(** Add to a counter (creating it at 0). *)

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record one observation into a histogram. *)

(** {2 Labelled instruments} *)

val labelled : string -> (string * string) list -> string
(** [labelled base labels] is the canonical registry name
    [base{k1=v1,k2=v2}] with labels sorted by key.  An empty label list
    returns [base] unchanged.
    @raise Invalid_argument when [base] is empty or contains ['{'], ['}']
    or [',']; when a key or value is empty or contains ['{'], ['}'],
    [','] or ['=']; or on a duplicate key. *)

val incr_l : t -> string -> (string * string) list -> float -> unit
(** [incr_l t base labels v] is [incr t (labelled base labels) v]. *)

val set_gauge_l : t -> string -> (string * string) list -> float -> unit
val observe_l : t -> string -> (string * string) list -> float -> unit

val num_buckets : int
(** Number of buckets per histogram, including the overflow bucket. *)

val bucket_le : int -> float
(** Upper bound of bucket [i] (inclusive); [infinity] for the overflow
    bucket. *)

type snapshot =
  | Counter of float
  | Gauge of float
  | Histogram of { counts : int array; sum : float; count : int }

val snapshot : t -> (string * snapshot) list
(** All instruments, sorted by name. *)

val counter_value : t -> string -> float
(** Current value of a counter, 0 if absent. *)

val merge_into : into:t -> t -> unit
(** Fold a child registry into [into]: counters sum, gauges last-set-wins
    (the child's value overwrites if the child set it), histograms add
    bucketwise.  Raises [Invalid_argument] on a kind clash. *)

val to_json : t -> Jsonx.t
(** [{"schema": "vblu-metrics/1", "metrics": {...}}] with instruments
    sorted by name. *)

val to_csv : t -> string
(** Flat RFC-4180 CSV: [name,kind,field,value] rows, sorted by name;
    histogram rows carry [le_<bound>] fields plus [sum] and [count]. *)

val write : string -> t -> unit
(** Write {!to_json} (pretty-printed) to a file. *)
