(** RFC-4180 CSV field quoting.

    Series titles and curve names contain commas ("LU, partial pivoting"),
    which the plain [String.concat ","] emitters turned into misaligned
    columns.  These helpers quote exactly when needed. *)

val quote : string -> string
(** Wrap the field in double quotes — doubling any embedded quotes — iff
    it contains a comma, double quote, CR or LF; otherwise return it
    unchanged. *)

val row : string list -> string
(** Join quoted fields with commas (no trailing newline). *)
