let record obs ~family ~fresh ~reused ~dirty =
  match obs with
  | None -> ()
  | Some _ ->
    let labels = [ ("family", family) ] in
    if fresh > 0 then
      Ctx.incr_l obs "precond.setup.fresh" labels (float_of_int fresh);
    if reused > 0 then
      Ctx.incr_l obs "precond.setup.reused" labels (float_of_int reused);
    if dirty > 0 then
      Ctx.incr_l obs "precond.setup.dirty_blocks" labels (float_of_int dirty);
    if reused > 0 && fresh > 0 then
      Ctx.incr_l obs "precond.setup.partial" labels 1.0
