open Vblu_smallblas
open Vblu_simt

type result = {
  solutions : Batch.vec array;
  info : int array;
  stats : Launch.stats;
  exact : bool;
}

let kernel w gmat gvecs gouts ~moff ~voff ~s ~perm =
  let p = Warp.size w in
  let nrhs = Array.length gvecs in
  let active = Array.init p (fun lane -> lane < s) in
  (* Load every right-hand side with the fused permutation. *)
  let addrs =
    Array.init p (fun lane -> voff + if lane < s then perm.(lane) else 0)
  in
  let b = Array.map (fun g -> Warp.load w g ~active addrs) gvecs in
  Warp.round_barrier w;
  (* Unit lower solve: one column load serves all right-hand sides. *)
  for k = 0 to s - 2 do
    let below = Array.init p (fun lane -> lane > k && lane < s) in
    let col =
      Warp.load w gmat ~active:below
        (Array.init p (fun lane -> moff + (if lane < s then lane else 0) + (k * s)))
    in
    for r = 0 to nrhs - 1 do
      let bk = Warp.broadcast w b.(r) ~src:k in
      b.(r) <- Warp.fnma w ~active:below col bk b.(r)
    done
  done;
  (* Upper solve.  Same freeze-on-breakdown rule as {!Batched_trsv}: a
     zero diagonal sets info, predicates off the remaining steps for every
     right-hand side, and the partial solutions are stored back. *)
  let info = ref 0 in
  (try
     for k = s - 1 downto 0 do
       let upto = Array.init p (fun lane -> lane <= k) in
       let col =
         Warp.load w gmat ~active:upto
           (Array.init p (fun lane -> moff + min lane (s - 1) + (k * s)))
       in
       let d = Warp.broadcast w col ~src:k in
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let only_k = Array.init p (fun lane -> lane = k) in
       let above = Array.init p (fun lane -> lane < k) in
       for r = 0 to nrhs - 1 do
         b.(r) <- Warp.div w ~active:only_k b.(r) d;
         let bk = Warp.broadcast w b.(r) ~src:k in
         b.(r) <- Warp.fnma w ~active:above col bk b.(r)
       done
     done
   with Exit -> ());
  let out_addrs = Array.init p (fun lane -> voff + min lane (s - 1)) in
  Array.iteri (fun r g -> Warp.store w g ~active out_addrs b.(r)) gouts;
  Counter.credit_flops (Warp.counter w)
    (float_of_int nrhs *. Flops.trsv_pair s);
  !info

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs ~(factors : Batch.t)
    ~pivots (rhs_sets : Batch.vec array) =
  if Array.length rhs_sets = 0 then
    invalid_arg "Batched_trsm.solve: no right-hand sides";
  if Array.length pivots <> factors.Batch.count then
    invalid_arg
      (Printf.sprintf
         "Batched_trsm.solve: pivots array has %d entries for %d blocks"
         (Array.length pivots) factors.Batch.count);
  Array.iter
    (fun (rhs : Batch.vec) ->
      if rhs.Batch.vcount <> factors.Batch.count then
        invalid_arg "Batched_trsm.solve: batch count mismatch";
      Array.iteri
        (fun i s ->
          if rhs.Batch.vsizes.(i) <> s then
            invalid_arg "Batched_trsm.solve: block size mismatch")
        factors.Batch.sizes)
    rhs_sets;
  let gmat = Gmem.of_array prec factors.Batch.values in
  let gvecs =
    Array.map (fun (r : Batch.vec) -> Gmem.of_array prec r.Batch.vvalues) rhs_sets
  in
  let gouts =
    Array.map
      (fun (r : Batch.vec) -> Gmem.create prec (Array.length r.Batch.vvalues))
      rhs_sets
  in
  let info = Array.make factors.Batch.count 0 in
  let kernel w i =
    let s = factors.Batch.sizes.(i) in
    let perm =
      if Array.length pivots.(i) = 0 then Array.init s (fun k -> k)
      else pivots.(i)
    in
    info.(i) <-
      kernel w gmat gvecs gouts ~moff:factors.Batch.offsets.(i)
        ~voff:rhs_sets.(0).Batch.voffsets.(i) ~s ~perm
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"trsm" ~prec ~mode
      ~sizes:factors.Batch.sizes ~kernel ()
  in
  let solutions =
    Array.mapi
      (fun r g ->
        let out = Batch.vec_create rhs_sets.(r).Batch.vsizes in
        let values = Gmem.to_array g in
        Array.blit values 0 out.Batch.vvalues 0 (Array.length values);
        out)
      gouts
  in
  { solutions; info; stats; exact = (mode = Sampling.Exact) }
