open Vblu_smallblas
open Vblu_simt

type result = {
  solutions : Batch.vec array;
  info : int array;
  stats : Launch.stats;
  exact : bool;
}

(* Arena slot map: regs 0..nrhs-1 hold the right-hand sides (falling back
   to fresh buffers for the unlikely nrhs > 64), 64 = column load, 65 =
   diagonal broadcast, 66 = solution-element broadcast. *)
let rhs_arena_slots = 64
let t_col = 64
let t_d = 65
let t_bk = 66

let kernel w gmat gvecs gouts ~moff ~mst ~voff ~vst ~s ~perm =
  let p = Warp.size w in
  let nrhs = Array.length gvecs in
  let active = Warp.mask_slot w 0 in
  for lane = 0 to p - 1 do
    active.(lane) <- lane < s
  done;
  let addrs = Warp.addr_slot w 0 in
  let step = Warp.mask_slot w 1 in
  let b =
    if nrhs <= rhs_arena_slots then Array.init nrhs (Warp.reg w)
    else Array.init nrhs (fun _ -> Array.make p 0.0)
  in
  let col = Warp.reg w t_col
  and d = Warp.reg w t_d
  and bk = Warp.reg w t_bk in
  (* Load every right-hand side with the fused permutation. *)
  for lane = 0 to p - 1 do
    addrs.(lane) <- (voff + if lane < s then vst * perm.(lane) else 0)
  done;
  Array.iteri (fun r g -> Warp.load_into w g ~active addrs ~dst:b.(r)) gvecs;
  Warp.round_barrier w;
  (* Unit lower solve: one column load serves all right-hand sides. *)
  for k = 0 to s - 2 do
    for lane = 0 to p - 1 do
      step.(lane) <- lane > k && lane < s;
      addrs.(lane) <- moff + (mst * ((if lane < s then lane else 0) + (k * s)))
    done;
    Warp.load_into w gmat ~active:step addrs ~dst:col;
    for r = 0 to nrhs - 1 do
      Warp.broadcast_into w ~dst:bk b.(r) ~src:k;
      Warp.fnma_into w ~active:step ~dst:b.(r) col bk b.(r)
    done
  done;
  (* Upper solve.  Same freeze-on-breakdown rule as {!Batched_trsv}: a
     zero diagonal sets info, predicates off the remaining steps for every
     right-hand side, and the partial solutions are stored back. *)
  let info = ref 0 in
  (try
     for k = s - 1 downto 0 do
       for lane = 0 to p - 1 do
         step.(lane) <- lane <= k;
         addrs.(lane) <- moff + (mst * (min lane (s - 1) + (k * s)))
       done;
       Warp.load_into w gmat ~active:step addrs ~dst:col;
       Warp.broadcast_into w ~dst:d col ~src:k;
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let only_k = Warp.mask_slot w 1 in
       let above = Warp.mask_slot w 2 in
       for lane = 0 to p - 1 do
         only_k.(lane) <- lane = k;
         above.(lane) <- lane < k
       done;
       for r = 0 to nrhs - 1 do
         Warp.div_into w ~active:only_k ~dst:b.(r) b.(r) d;
         Warp.broadcast_into w ~dst:bk b.(r) ~src:k;
         Warp.fnma_into w ~active:above ~dst:b.(r) col bk b.(r)
       done
     done
   with Exit -> ());
  for lane = 0 to p - 1 do
    addrs.(lane) <- voff + (vst * min lane (s - 1))
  done;
  Array.iteri (fun r g -> Warp.store w g ~active addrs b.(r)) gouts;
  Warp.credit_flops w (float_of_int nrhs *. Flops.trsv_pair s);
  !info

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs ~(factors : Batch.t)
    ~pivots (rhs_sets : Batch.vec array) =
  if Array.length rhs_sets = 0 then
    invalid_arg "Batched_trsm.solve: no right-hand sides";
  if Array.length pivots <> factors.Batch.count then
    invalid_arg
      (Printf.sprintf
         "Batched_trsm.solve: pivots array has %d entries for %d blocks"
         (Array.length pivots) factors.Batch.count);
  Array.iter
    (fun (rhs : Batch.vec) ->
      if rhs.Batch.vcount <> factors.Batch.count then
        invalid_arg "Batched_trsm.solve: batch count mismatch";
      if rhs.Batch.vlayout <> Batch.layout factors then
        invalid_arg "Batched_trsm.solve: factors/rhs layout mismatch";
      Array.iteri
        (fun i s ->
          if rhs.Batch.vsizes.(i) <> s then
            invalid_arg "Batched_trsm.solve: block size mismatch")
        factors.Batch.sizes)
    rhs_sets;
  let gmat = Gmem.of_array prec factors.Batch.values in
  let gvecs =
    Array.map (fun (r : Batch.vec) -> Gmem.of_array prec r.Batch.vvalues) rhs_sets
  in
  let gouts =
    Array.map
      (fun (r : Batch.vec) -> Gmem.create prec (Array.length r.Batch.vvalues))
      rhs_sets
  in
  let info = Array.make factors.Batch.count 0 in
  let kernel w i =
    Staging.set_cohort w factors i;
    let s = factors.Batch.sizes.(i) in
    let perm =
      if Array.length pivots.(i) = 0 then Array.init s (fun k -> k)
      else pivots.(i)
    in
    info.(i) <-
      kernel w gmat gvecs gouts ~moff:(Batch.base factors i)
        ~mst:(Batch.stride factors i)
        ~voff:(Batch.vec_base rhs_sets.(0) i)
        ~vst:(Batch.vec_stride rhs_sets.(0) i) ~s ~perm
  in
  (* The charge stream scales with the rhs count, and coalescing charges
     with the buffer alignments, so both go into the cache salt (all rhs
     sets share one offset table — checked above). *)
  let cache =
    let align = Config.elements_per_transaction cfg prec in
    let nrhs = Array.length rhs_sets in
    Some
      (fun i ->
        Staging.mix
          (Staging.mix nrhs (Batch.salt_class factors i ~align))
          (Batch.vec_salt_class rhs_sets.(0) i ~align))
  in
  (* Direct execution: the kernel's interleaved multi-rhs schedule carries
     no data flow between right-hand sides, so solving each one through
     the eager batch-view pair reproduces it bitwise, rhs by rhs. *)
  let direct =
    let vmat = Gmem.raw gmat in
    let vvecs = Array.map Gmem.raw gvecs
    and vouts = Array.map Gmem.raw gouts in
    Some
      (fun i ->
        let s = factors.Batch.sizes.(i) in
        let moff = Batch.base factors i
        and mst = Batch.stride factors i
        and voff = Batch.vec_base rhs_sets.(0) i
        and vst = Batch.vec_stride rhs_sets.(0) i in
        let piv = pivots.(i) in
        let inf = ref 0 in
        for r = 0 to Array.length vvecs - 1 do
          let vvec = vvecs.(r) and vout = vouts.(r) in
          if Array.length piv = 0 && vst = 1 then
            Array.blit vvec voff vout voff s
          else if Array.length piv = 0 then
            for k = 0 to s - 1 do
              vout.(voff + (vst * k)) <- vvec.(voff + (vst * k))
            done
          else
            for k = 0 to s - 1 do
              vout.(voff + (vst * k)) <- vvec.(voff + (vst * piv.(k)))
            done;
          inf :=
            Trsv.pair_eager_view ~prec ~mstride:mst ~bstride:vst ~m:vmat ~moff
              ~n:s ~b:vout ~boff:voff ()
        done;
        info.(i) <- !inf;
        !inf)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"trsm" ?cache ?direct ~prec ~mode
      ~sizes:factors.Batch.sizes ~kernel ()
  in
  let solutions =
    Array.mapi
      (fun r g ->
        let out =
          Batch.vec_create ~layout:rhs_sets.(r).Batch.vlayout
            rhs_sets.(r).Batch.vsizes
        in
        let values = Gmem.to_array g in
        Array.blit values 0 out.Batch.vvalues 0 (Array.length values);
        out)
      gouts
  in
  { solutions; info; stats; exact = (mode = Sampling.Exact) }
