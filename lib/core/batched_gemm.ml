open Vblu_smallblas
open Vblu_simt

type result = {
  products : Batch.t;
  stats : Launch.stats;
  exact : bool;
}

let load_rows w g ~off ~s =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  Array.init s (fun j ->
      Warp.load w g ~active
        (Array.init p (fun lane -> off + (if lane < s then lane else 0) + (j * s))))

let kernel w ga gb gc gout ~off ~s ~alpha ~beta ~with_c =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  (* Registers: lane i holds row i of a (one register per column) and the
     row of c under construction. *)
  let a = load_rows w ga ~off ~s in
  let b = load_rows w gb ~off ~s in
  Warp.round_barrier w;
  let alpha_v = Array.make p alpha and beta_v = Array.make p beta in
  for j = 0 to s - 1 do
    (* c(:,j) = alpha * Σ_k a(:,k) * b(k,j) (+ beta * c(:,j)). *)
    let acc = ref (Array.make p 0.0) in
    for k = 0 to s - 1 do
      let bkj = Warp.broadcast w b.(j) ~src:k in
      acc := Warp.fma w ~active a.(k) bkj !acc
    done;
    let scaled = Warp.mul w ~active !acc alpha_v in
    let out =
      if with_c then begin
        let cj =
          Warp.load w gc ~active
            (Array.init p (fun lane ->
                 off + (if lane < s then lane else 0) + (j * s)))
        in
        Warp.fma w ~active cj beta_v scaled
      end
      else scaled
    in
    Warp.store w gout ~active
      (Array.init p (fun lane -> off + (if lane < s then lane else 0) + (j * s)))
      out
  done;
  let m = float_of_int s in
  Counter.credit_flops (Warp.counter w) (2.0 *. m *. m *. m)

let multiply ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs ?(alpha = 1.0)
    ?(beta = 0.0) ~(a : Batch.t) ~(b : Batch.t) ?c () =
  if a.Batch.sizes <> b.Batch.sizes then
    invalid_arg "Batched_gemm.multiply: size mismatch between a and b";
  (match c with
  | Some (c : Batch.t) ->
    if c.Batch.sizes <> a.Batch.sizes then
      invalid_arg "Batched_gemm.multiply: size mismatch with c"
  | None -> ());
  Array.iter
    (fun s ->
      if s > cfg.Config.warp_size then
        invalid_arg "Batched_gemm.multiply: block exceeds warp width")
    a.Batch.sizes;
  let ga = Gmem.of_array prec a.Batch.values in
  let gb = Gmem.of_array prec b.Batch.values in
  let with_c = c <> None in
  let gc =
    match c with
    | Some c -> Gmem.of_array prec c.Batch.values
    | None -> Gmem.create prec 1
  in
  let gout = Gmem.create prec (Batch.total_values a) in
  let kern w i =
    kernel w ga gb gc gout ~off:a.Batch.offsets.(i) ~s:a.Batch.sizes.(i) ~alpha
      ~beta ~with_c
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"gemm" ~prec ~mode ~sizes:a.Batch.sizes
      ~kernel:kern ()
  in
  let products = Batch.create a.Batch.sizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 products.Batch.values 0 (Array.length values);
  { products; stats; exact = (mode = Sampling.Exact) }
