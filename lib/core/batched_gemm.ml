open Vblu_smallblas
open Vblu_simt

type result = {
  products : Batch.t;
  stats : Launch.stats;
  exact : bool;
}

(* Arena slot map: 0..31 columns of a, 32..63 columns of b, 64 running
   accumulator, 65 broadcast of b(k,j), 66/67 alpha/beta splats, 68 loaded
   column of c. *)
let a_base = 0
let b_base = 32
let t_acc = 64
let t_bkj = 65
let t_alpha = 66
let t_beta = 67
let t_c = 68

let load_rows w g ~off ~st ~s ~base =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  let addrs = Warp.addr_slot w 0 in
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      addrs.(lane) <- off + (st * ((if lane < s then lane else 0) + (j * s)))
    done;
    Warp.load_into w g ~active addrs ~dst:(Warp.reg w (base + j))
  done

let kernel w ga gb gc gout ~off ~st ~s ~alpha ~beta ~with_c =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  let addrs = Warp.addr_slot w 0 in
  for lane = 0 to p - 1 do
    active.(lane) <- lane < s
  done;
  (* Registers: lane i holds row i of a (one register per column) and the
     row of c under construction. *)
  load_rows w ga ~off ~st ~s ~base:a_base;
  load_rows w gb ~off ~st ~s ~base:b_base;
  Warp.round_barrier w;
  let acc = Warp.reg w t_acc
  and bkj = Warp.reg w t_bkj
  and alpha_v = Warp.reg w t_alpha
  and beta_v = Warp.reg w t_beta
  and cj = Warp.reg w t_c in
  Array.fill alpha_v 0 p alpha;
  Array.fill beta_v 0 p beta;
  for j = 0 to s - 1 do
    (* c(:,j) = alpha * Σ_k a(:,k) * b(k,j) (+ beta * c(:,j)). *)
    Array.fill acc 0 p 0.0;
    for k = 0 to s - 1 do
      Warp.broadcast_into w ~dst:bkj (Warp.reg w (b_base + j)) ~src:k;
      Warp.fma_into w ~active ~dst:acc (Warp.reg w (a_base + k)) bkj acc
    done;
    Warp.mul_into w ~active ~dst:acc acc alpha_v;
    for lane = 0 to p - 1 do
      addrs.(lane) <- off + (st * ((if lane < s then lane else 0) + (j * s)))
    done;
    if with_c then begin
      Warp.load_into w gc ~active addrs ~dst:cj;
      Warp.fma_into w ~active ~dst:acc cj beta_v acc
    end;
    Warp.store w gout ~active addrs acc
  done;
  let m = float_of_int s in
  Warp.credit_flops w (2.0 *. m *. m *. m)

let multiply ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs ?(alpha = 1.0)
    ?(beta = 0.0) ~(a : Batch.t) ~(b : Batch.t) ?c () =
  if a.Batch.sizes <> b.Batch.sizes then
    invalid_arg "Batched_gemm.multiply: size mismatch between a and b";
  if Batch.layout a <> Batch.layout b then
    invalid_arg "Batched_gemm.multiply: layout mismatch between a and b";
  (match c with
  | Some (c : Batch.t) ->
    if c.Batch.sizes <> a.Batch.sizes then
      invalid_arg "Batched_gemm.multiply: size mismatch with c";
    if Batch.layout c <> Batch.layout a then
      invalid_arg "Batched_gemm.multiply: layout mismatch with c"
  | None -> ());
  Array.iter
    (fun s ->
      if s > cfg.Config.warp_size then
        invalid_arg "Batched_gemm.multiply: block exceeds warp width")
    a.Batch.sizes;
  let ga = Gmem.of_array prec a.Batch.values in
  let gb = Gmem.of_array prec b.Batch.values in
  let with_c = c <> None in
  let gc =
    match c with
    | Some c -> Gmem.of_array prec c.Batch.values
    | None -> Gmem.create prec 1
  in
  let gout = Gmem.create prec (Batch.total_values a) in
  let kern w i =
    Staging.set_cohort w a i;
    kernel w ga gb gc gout ~off:(Batch.base a i) ~st:(Batch.stride a i)
      ~s:a.Batch.sizes.(i) ~alpha ~beta ~with_c
  in
  (* a, b, c and the product share one offset table (sizes are checked
     equal), so a single alignment class plus the with_c flag keys the
     charge stream. *)
  let cache =
    let align = Config.elements_per_transaction cfg prec in
    Some
      (fun i ->
        Staging.mix (Bool.to_int with_c) (Batch.salt_class a i ~align))
  in
  (* Direct execution: the column-order host GEMM view repeats the
     kernel's rounding sequence exactly (fma chain from zero, then the
     alpha multiply, then the optional beta fma) — reading the staged
     device buffers so single-precision inputs see the same pre-rounded
     values.  GEMM has no breakdown, so the closure always reports 0. *)
  let direct =
    let va = Gmem.raw ga
    and vb = Gmem.raw gb
    and vout = Gmem.raw gout in
    let vc = if with_c then Some (Gmem.raw gc) else None in
    Some
      (fun i ->
        Matrix.gemm_col_view ~prec ~stride:(Batch.stride a i) ~alpha ~beta
          ?c:vc ~a:va ~b:vb ~dst:vout ~off:(Batch.base a i)
          ~n:a.Batch.sizes.(i) ();
        0)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"gemm" ?cache ?direct ~prec ~mode
      ~sizes:a.Batch.sizes ~kernel:kern ()
  in
  let products = Batch.create ~layout:(Batch.layout a) a.Batch.sizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 products.Batch.values 0 (Array.length values);
  { products; stats; exact = (mode = Sampling.Exact) }
