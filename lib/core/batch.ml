open Vblu_smallblas

type layout = Blocked | Interleaved

let layout_name = function Blocked -> "blocked" | Interleaved -> "interleaved"

let layout_of_string s =
  match String.lowercase_ascii s with
  | "blocked" -> Ok Blocked
  | "interleaved" -> Ok Interleaved
  | _ ->
    Error
      (Printf.sprintf "invalid layout %S: expected blocked or interleaved" s)

(* Interleaved cohorts hold at most [chunk] problems (one warp's worth:
   lane = cohort slot on the modelled GPU) and start at [chunk]-aligned
   element offsets, so a cohort base is aligned for every transaction size
   that divides the warp width. *)
let chunk = 32

type t = {
  count : int;
  layout : layout;
  sizes : int array;
  offsets : int array;
  widths : int array;
  slots : int array;
  values : float array;
}

(* Storage geometry shared by matrix and vector batches; [per_block] is the
   element count of one problem (s² or s).

   Blocked: back-to-back, [offsets] the prefix sums.

   Interleaved: problems are grouped into same-size cohorts in batch order —
   each problem joins the open cohort of its size while it has fewer than
   [chunk] members, else opens a new one.  The grouping is a pure function
   of the size array alone (not of [per_block]), so a matrix batch and a
   vector batch over the same sizes agree on cohort membership, width and
   slot.  Within a cohort of width [w], element [e] of the member in slot
   [t] lives at [base + e*w + t]: element [e] of every member is
   contiguous.  Returns [(offsets, widths, slots)] with [offsets.(i)] the
   member base ([cohort base + slot]), [offsets.(count)] the total storage
   (padding included), and [widths.(i)] the element stride. *)
let geometry ~layout ~per_block sizes =
  let count = Array.length sizes in
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Batch: non-positive block size")
    sizes;
  match layout with
  | Blocked ->
    let offsets = Array.make (count + 1) 0 in
    for i = 0 to count - 1 do
      offsets.(i + 1) <- offsets.(i) + per_block sizes.(i)
    done;
    (offsets, Array.make count 1, Array.make count 0)
  | Interleaved ->
    let offsets = Array.make (count + 1) 0 in
    let widths = Array.make count 0 in
    let slots = Array.make count 0 in
    let cohort_of = Array.make count 0 in
    let members = Array.make count 0 in
    let open_cohort = Hashtbl.create 16 in
    let n_cohorts = ref 0 in
    for i = 0 to count - 1 do
      let s = sizes.(i) in
      let c =
        match Hashtbl.find_opt open_cohort s with
        | Some c when members.(c) < chunk -> c
        | _ ->
          let c = !n_cohorts in
          incr n_cohorts;
          Hashtbl.replace open_cohort s c;
          c
      in
      cohort_of.(i) <- c;
      slots.(i) <- members.(c);
      members.(c) <- members.(c) + 1
    done;
    let cbase = Array.make (max 1 !n_cohorts) 0 in
    let celems = Array.make (max 1 !n_cohorts) 0 in
    for i = 0 to count - 1 do
      celems.(cohort_of.(i)) <- per_block sizes.(i)
    done;
    let off = ref 0 in
    for c = 0 to !n_cohorts - 1 do
      let aligned = (!off + chunk - 1) / chunk * chunk in
      cbase.(c) <- aligned;
      off := aligned + (celems.(c) * members.(c))
    done;
    for i = 0 to count - 1 do
      let c = cohort_of.(i) in
      widths.(i) <- members.(c);
      offsets.(i) <- cbase.(c) + slots.(i)
    done;
    offsets.(count) <- !off;
    (offsets, widths, slots)

let create ?(layout = Blocked) sizes =
  let sizes = Array.copy sizes in
  let offsets, widths, slots = geometry ~layout ~per_block:(fun s -> s * s) sizes in
  {
    count = Array.length sizes;
    layout;
    sizes;
    offsets;
    widths;
    slots;
    values = Array.make offsets.(Array.length sizes) 0.0;
  }

let layout b = b.layout
let base b i = b.offsets.(i)
let stride b i = b.widths.(i)

let index b p r j =
  b.offsets.(p) + (b.widths.(p) * (r + (j * b.sizes.(p))))

let cohort b i =
  match b.layout with
  | Blocked -> None
  | Interleaved -> Some (b.widths.(i), b.slots.(i))

(* Transaction-alignment class for Launch.Cache salts.  Blocked charges
   depend on the raw base offset modulo the transaction width; interleaved
   charges depend only on the cohort width (the slot cancels out of the
   cooperative coalescing model and cohort bases are [chunk]-aligned).  The
   two layouts map to disjoint ranges — [0, align) vs [align+1, align+chunk]
   — so a blocked cache entry can never be replayed for an interleaved
   launch or vice versa. *)
let salt_class b i ~align =
  match b.layout with
  | Blocked -> b.offsets.(i) mod align
  | Interleaved -> align + b.widths.(i)

(* Layout tag for analytically charged kernels whose traffic never consults
   raw addresses: 0 for blocked, the cohort width for interleaved. *)
let cohort_salt b i =
  match b.layout with Blocked -> 0 | Interleaved -> b.widths.(i)

let of_matrices ?layout ms =
  let sizes =
    Array.map
      (fun m ->
        let r, c = Matrix.dims m in
        if r <> c then invalid_arg "Batch.of_matrices: non-square block";
        r)
      ms
  in
  let b = create ?layout sizes in
  Array.iteri
    (fun i m ->
      let s = sizes.(i) and off = b.offsets.(i) and st = b.widths.(i) in
      for j = 0 to s - 1 do
        for r = 0 to s - 1 do
          b.values.(off + (st * (r + (j * s)))) <- Matrix.unsafe_get m r j
        done
      done)
    ms;
  b

let get_matrix b i =
  let s = b.sizes.(i) and off = b.offsets.(i) and st = b.widths.(i) in
  Matrix.init s s (fun r j -> b.values.(off + (st * (r + (j * s)))))

let get_matrix_into b i m =
  let r, c = Matrix.dims m in
  if r <> b.sizes.(i) || c <> b.sizes.(i) then
    invalid_arg "Batch.get_matrix_into: size mismatch";
  let s = b.sizes.(i) and off = b.offsets.(i) and st = b.widths.(i) in
  for j = 0 to s - 1 do
    for row = 0 to s - 1 do
      Matrix.unsafe_set m row j b.values.(off + (st * (row + (j * s))))
    done
  done

let to_matrices b = Array.init b.count (get_matrix b)

let set_matrix b i m =
  let r, c = Matrix.dims m in
  if r <> b.sizes.(i) || c <> b.sizes.(i) then
    invalid_arg "Batch.set_matrix: size mismatch";
  let s = b.sizes.(i) and off = b.offsets.(i) and st = b.widths.(i) in
  for j = 0 to s - 1 do
    for row = 0 to s - 1 do
      b.values.(off + (st * (row + (j * s)))) <- Matrix.unsafe_get m row j
    done
  done

let with_layout layout b =
  if layout = b.layout then b
  else begin
    let out = create ~layout b.sizes in
    for i = 0 to b.count - 1 do
      let s = b.sizes.(i) in
      let soff = b.offsets.(i) and sst = b.widths.(i) in
      let doff = out.offsets.(i) and dst = out.widths.(i) in
      for e = 0 to (s * s) - 1 do
        out.values.(doff + (dst * e)) <- b.values.(soff + (sst * e))
      done
    done;
    out
  end

let count b = b.count

let max_size b = Array.fold_left max 0 b.sizes

let total_values b = Array.length b.values

let uniform_sizes ~count ~size =
  if count < 0 then invalid_arg "Batch.uniform_sizes: negative count";
  if size <= 0 then invalid_arg "Batch.uniform_sizes: non-positive size";
  (* An empty batch is a defined no-op everywhere else in the container
     API, so [count = 0] yields [[||]] rather than raising. *)
  Array.make count size

(* Seeding discipline: a call without [?state] gets a {e fresh} state
   derived from a per-function salt, never a shared mutable stream.  The
   previous single [lazy] state made unseeded results depend on every
   earlier unseeded call anywhere in the process — reordering two launches
   silently changed the data.  Now unseeded calls are pure: same function,
   same arguments, same data, in any order and on any domain. *)
let derived_state salt = Random.State.make [| 0x5eed; 0xbacc; salt |]

let state_or ~salt = function
  | Some s -> s
  | None -> derived_state salt

let random_sizes ?state ~count ~min_size ~max_size () =
  if count < 0 || min_size <= 0 || max_size < min_size then
    invalid_arg "Batch.random_sizes";
  let st = state_or ~salt:1 state in
  Array.init count (fun _ -> min_size + Random.State.int st (max_size - min_size + 1))

let random_with gen ~salt ?state ?layout sizes =
  let st = state_or ~salt state in
  of_matrices ?layout (Array.map (fun s -> gen st s) sizes)

let random_diagdom ?state ?layout sizes =
  random_with (fun st s -> Matrix.random_diagdom ~state:st s) ~salt:2 ?state
    ?layout sizes

let random_general ?state ?layout sizes =
  random_with (fun st s -> Matrix.random_general ~state:st s) ~salt:3 ?state
    ?layout sizes

type vec = {
  vcount : int;
  vlayout : layout;
  vsizes : int array;
  voffsets : int array;
  vwidths : int array;
  vslots : int array;
  vvalues : float array;
}

let vec_create ?(layout = Blocked) sizes =
  let vsizes = Array.copy sizes in
  let voffsets, vwidths, vslots =
    geometry ~layout ~per_block:(fun s -> s) vsizes
  in
  {
    vcount = Array.length vsizes;
    vlayout = layout;
    vsizes;
    voffsets;
    vwidths;
    vslots;
    vvalues = Array.make voffsets.(Array.length vsizes) 0.0;
  }

let vec_layout v = v.vlayout
let vec_base v i = v.voffsets.(i)
let vec_stride v i = v.vwidths.(i)
let vec_index v p k = v.voffsets.(p) + (v.vwidths.(p) * k)

let vec_cohort v i =
  match v.vlayout with
  | Blocked -> None
  | Interleaved -> Some (v.vwidths.(i), v.vslots.(i))

let vec_salt_class v i ~align =
  match v.vlayout with
  | Blocked -> v.voffsets.(i) mod align
  | Interleaved -> align + v.vwidths.(i)

let vec_cohort_salt v i =
  match v.vlayout with Blocked -> 0 | Interleaved -> v.vwidths.(i)

let vec_of_vectors ?layout vs =
  let v = vec_create ?layout (Array.map Array.length vs) in
  Array.iteri
    (fun i x ->
      let off = v.voffsets.(i) and st = v.vwidths.(i) in
      Array.iteri (fun k xv -> v.vvalues.(off + (st * k)) <- xv) x)
    vs;
  v

let vec_get_into v i dst =
  if Array.length dst <> v.vsizes.(i) then
    invalid_arg "Batch.vec_get_into: size mismatch";
  let off = v.voffsets.(i) and st = v.vwidths.(i) in
  for k = 0 to v.vsizes.(i) - 1 do
    dst.(k) <- v.vvalues.(off + (st * k))
  done

let vec_get v i =
  let dst = Array.make v.vsizes.(i) 0.0 in
  vec_get_into v i dst;
  dst

let vec_to_vectors v = Array.init v.vcount (vec_get v)

let vec_set v i x =
  if Array.length x <> v.vsizes.(i) then invalid_arg "Batch.vec_set: size mismatch";
  let off = v.voffsets.(i) and st = v.vwidths.(i) in
  Array.iteri (fun k xv -> v.vvalues.(off + (st * k)) <- xv) x

let vec_with_layout layout v =
  if layout = v.vlayout then v
  else begin
    let out = vec_create ~layout v.vsizes in
    for i = 0 to v.vcount - 1 do
      let soff = v.voffsets.(i) and sst = v.vwidths.(i) in
      let doff = out.voffsets.(i) and dst = out.vwidths.(i) in
      for k = 0 to v.vsizes.(i) - 1 do
        out.vvalues.(doff + (dst * k)) <- v.vvalues.(soff + (sst * k))
      done
    done;
    out
  end

(* Random data is drawn per problem in batch order (not in storage order),
   so the same seed yields the same per-problem vectors in either layout —
   the cross-layout bit-identity the kernel tests rely on. *)
let vec_random ?state ?layout sizes =
  let st = state_or ~salt:4 state in
  let v = vec_create ?layout sizes in
  for i = 0 to v.vcount - 1 do
    let off = v.voffsets.(i) and stw = v.vwidths.(i) in
    for k = 0 to v.vsizes.(i) - 1 do
      v.vvalues.(off + (stw * k)) <- -1.0 +. (2.0 *. Random.State.float st 1.0)
    done
  done;
  v

let vec_of_flat ?layout ~sizes x =
  let v = vec_create ?layout sizes in
  let total = Array.fold_left ( + ) 0 v.vsizes in
  if Array.length x <> total then
    invalid_arg "Batch.vec_of_flat: length mismatch";
  let pos = ref 0 in
  for i = 0 to v.vcount - 1 do
    let off = v.voffsets.(i) and st = v.vwidths.(i) in
    for k = 0 to v.vsizes.(i) - 1 do
      v.vvalues.(off + (st * k)) <- x.(!pos);
      incr pos
    done
  done;
  v

let vec_to_flat v =
  let total = Array.fold_left ( + ) 0 v.vsizes in
  let out = Array.make total 0.0 in
  let pos = ref 0 in
  for i = 0 to v.vcount - 1 do
    let off = v.voffsets.(i) and st = v.vwidths.(i) in
    for k = 0 to v.vsizes.(i) - 1 do
      out.(!pos) <- v.vvalues.(off + (st * k));
      incr pos
    done
  done;
  out
