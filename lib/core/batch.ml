open Vblu_smallblas

type t = {
  count : int;
  sizes : int array;
  offsets : int array;
  values : float array;
}

let offsets_of_sizes per_block sizes =
  let count = Array.length sizes in
  let offsets = Array.make (count + 1) 0 in
  for i = 0 to count - 1 do
    if sizes.(i) <= 0 then invalid_arg "Batch: non-positive block size";
    offsets.(i + 1) <- offsets.(i) + per_block sizes.(i)
  done;
  offsets

let create sizes =
  let sizes = Array.copy sizes in
  let offsets = offsets_of_sizes (fun s -> s * s) sizes in
  {
    count = Array.length sizes;
    sizes;
    offsets;
    values = Array.make offsets.(Array.length sizes) 0.0;
  }

let of_matrices ms =
  let sizes =
    Array.map
      (fun m ->
        let r, c = Matrix.dims m in
        if r <> c then invalid_arg "Batch.of_matrices: non-square block";
        r)
      ms
  in
  let b = create sizes in
  Array.iteri
    (fun i m ->
      let s = sizes.(i) and off = b.offsets.(i) in
      for j = 0 to s - 1 do
        for r = 0 to s - 1 do
          b.values.(off + r + (j * s)) <- Matrix.unsafe_get m r j
        done
      done)
    ms;
  b

let get_matrix b i =
  let s = b.sizes.(i) and off = b.offsets.(i) in
  Matrix.init s s (fun r j -> b.values.(off + r + (j * s)))

let to_matrices b = Array.init b.count (get_matrix b)

let set_matrix b i m =
  let r, c = Matrix.dims m in
  if r <> b.sizes.(i) || c <> b.sizes.(i) then
    invalid_arg "Batch.set_matrix: size mismatch";
  let s = b.sizes.(i) and off = b.offsets.(i) in
  for j = 0 to s - 1 do
    for row = 0 to s - 1 do
      b.values.(off + row + (j * s)) <- Matrix.unsafe_get m row j
    done
  done

let count b = b.count

let max_size b = Array.fold_left max 0 b.sizes

let total_values b = Array.length b.values

let uniform_sizes ~count ~size =
  if count <= 0 || size <= 0 then invalid_arg "Batch.uniform_sizes";
  Array.make count size

(* Seeding discipline: a call without [?state] gets a {e fresh} state
   derived from a per-function salt, never a shared mutable stream.  The
   previous single [lazy] state made unseeded results depend on every
   earlier unseeded call anywhere in the process — reordering two launches
   silently changed the data.  Now unseeded calls are pure: same function,
   same arguments, same data, in any order and on any domain. *)
let derived_state salt = Random.State.make [| 0x5eed; 0xbacc; salt |]

let state_or ~salt = function
  | Some s -> s
  | None -> derived_state salt

let random_sizes ?state ~count ~min_size ~max_size () =
  if count <= 0 || min_size <= 0 || max_size < min_size then
    invalid_arg "Batch.random_sizes";
  let st = state_or ~salt:1 state in
  Array.init count (fun _ -> min_size + Random.State.int st (max_size - min_size + 1))

let random_with gen ~salt ?state sizes =
  let st = state_or ~salt state in
  of_matrices (Array.map (fun s -> gen st s) sizes)

let random_diagdom ?state sizes =
  random_with (fun st s -> Matrix.random_diagdom ~state:st s) ~salt:2 ?state sizes

let random_general ?state sizes =
  random_with (fun st s -> Matrix.random_general ~state:st s) ~salt:3 ?state sizes

type vec = {
  vcount : int;
  vsizes : int array;
  voffsets : int array;
  vvalues : float array;
}

let vec_create sizes =
  let vsizes = Array.copy sizes in
  let voffsets = offsets_of_sizes (fun s -> s) vsizes in
  {
    vcount = Array.length vsizes;
    vsizes;
    voffsets;
    vvalues = Array.make voffsets.(Array.length vsizes) 0.0;
  }

let vec_of_vectors vs =
  let v = vec_create (Array.map Array.length vs) in
  Array.iteri (fun i x -> Array.blit x 0 v.vvalues v.voffsets.(i) (Array.length x)) vs;
  v

let vec_get v i = Array.sub v.vvalues v.voffsets.(i) v.vsizes.(i)

let vec_to_vectors v = Array.init v.vcount (vec_get v)

let vec_set v i x =
  if Array.length x <> v.vsizes.(i) then invalid_arg "Batch.vec_set: size mismatch";
  Array.blit x 0 v.vvalues v.voffsets.(i) (Array.length x)

let vec_random ?state sizes =
  let st = state_or ~salt:4 state in
  let v = vec_create sizes in
  for k = 0 to Array.length v.vvalues - 1 do
    v.vvalues.(k) <- -1.0 +. (2.0 *. Random.State.float st 1.0)
  done;
  v

let vec_of_flat ~sizes x =
  let v = vec_create sizes in
  if Array.length x <> Array.length v.vvalues then
    invalid_arg "Batch.vec_of_flat: length mismatch";
  Array.blit x 0 v.vvalues 0 (Array.length x);
  v

let vec_to_flat v = Array.copy v.vvalues
