open Vblu_smallblas
open Vblu_simt
open Vblu_sparse

type strategy = Row_per_thread | Shared_memory

type result = {
  blocks : Batch.t;
  stats : Launch.stats;
  exact : bool;
}

let blocks_cover ~n ~block_starts ~block_sizes =
  let k = Array.length block_starts in
  Array.length block_sizes = k
  &&
  let pos = ref 0 in
  let ok = ref true in
  for i = 0 to k - 1 do
    if block_starts.(i) <> !pos || block_sizes.(i) <= 0 then ok := false;
    pos := !pos + block_sizes.(i)
  done;
  !ok && !pos = n

let validate cfg (a : Csr.t) ~block_starts ~block_sizes =
  let k = Array.length block_starts in
  if Array.length block_sizes <> k then
    invalid_arg "Extraction: starts/sizes mismatch";
  let last = ref (-1) in
  for i = 0 to k - 1 do
    let st = block_starts.(i) and s = block_sizes.(i) in
    if s <= 0 || s > cfg.Config.warp_size then
      invalid_arg "Extraction: block size out of range";
    if st <= !last then invalid_arg "Extraction: blocks must be disjoint and sorted";
    if st + s > a.Csr.n_rows || st + s > a.Csr.n_cols then
      invalid_arg "Extraction: block exceeds matrix";
    last := st + s - 1
  done

(* Device staging of the CSR structure.  Indices live in a single-precision
   buffer: exact for indices < 2^24 and 4 bytes wide like the int32 arrays
   of the real implementation, so transaction counts match. *)
type device_csr = {
  d_row_ptr : Gmem.t;
  d_col_idx : Gmem.t;
  d_values : Gmem.t;
}

let stage prec (a : Csr.t) =
  if Csr.nnz a >= 1 lsl 24 then
    invalid_arg "Extraction: matrix too large for 32-bit index staging";
  {
    d_row_ptr = Gmem.of_array Precision.Single (Array.map float_of_int a.Csr.row_ptr);
    d_col_idx = Gmem.of_array Precision.Single (Array.map float_of_int a.Csr.col_idx);
    d_values = Gmem.of_array prec a.Csr.values;
  }

(* Arena slot map shared by both strategies: regs 0/1 row-pointer loads,
   2 column indices, 3 values, 4 staging for stores, 5 zero splat; masks
   0 = lane<s, 1 = per-chunk activity, 2 = in-block matches; addr slot 0
   for addresses (lo/hi row pointers live in host int arrays — the CSR
   walk is host bookkeeping, not lane traffic). *)
let t_ptr_lo = 0
let t_ptr_hi = 1
let t_cols = 2
let t_vals = 3
let t_stage = 4
let t_zero = 5

let store_block w gout ~off ~s tile =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  let addrs = Warp.addr_slot w 0 in
  let vals = Warp.reg w t_stage in
  for lane = 0 to p - 1 do
    active.(lane) <- lane < s
  done;
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      addrs.(lane) <- off + (if lane < s then lane + (j * s) else 0);
      vals.(lane) <- (if lane < s then tile.(lane).(j) else 0.0)
    done;
    Warp.store w gout ~active addrs vals
  done

let load_row_ptrs w dev ~start ~s =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  let addrs = Warp.addr_slot w 0 in
  for lane = 0 to p - 1 do
    active.(lane) <- lane < s;
    addrs.(lane) <- start + min lane (s - 1)
  done;
  Warp.load_into w dev.d_row_ptr ~active addrs ~dst:(Warp.reg w t_ptr_lo);
  for lane = 0 to p - 1 do
    addrs.(lane) <- start + min lane (s - 1) + 1
  done;
  Warp.load_into w dev.d_row_ptr ~active addrs ~dst:(Warp.reg w t_ptr_hi);
  Warp.round_barrier w;
  let lo = Array.map int_of_float (Warp.reg w t_ptr_lo)
  and hi = Array.map int_of_float (Warp.reg w t_ptr_hi) in
  (lo, hi)

(* Naive strategy: lane r walks CSR row (start + r) alone; the warp spins
   for the longest row. *)
let kernel_naive w dev gout ~off ~start ~s =
  let p = Warp.size w in
  let lo, hi = load_row_ptrs w dev ~start ~s in
  let act = Warp.mask_slot w 1 in
  let matched = Warp.mask_slot w 2 in
  let addrs = Warp.addr_slot w 0 in
  let cols = Warp.reg w t_cols
  and vals = Warp.reg w t_vals in
  let maxlen = ref 0 in
  for lane = 0 to s - 1 do
    maxlen := max !maxlen (hi.(lane) - lo.(lane))
  done;
  let tile = Array.make_matrix s s 0.0 in
  for it = 0 to !maxlen - 1 do
    for lane = 0 to p - 1 do
      act.(lane) <- lane < s && lo.(lane) + it < hi.(lane);
      addrs.(lane) <- (if act.(lane) then lo.(lane) + it else lo.(0))
    done;
    Warp.load_into w dev.d_col_idx ~active:act addrs ~dst:cols;
    (* In-block test: two compare instructions. *)
    Charge.fma w 2.0;
    let any = ref false in
    for lane = 0 to p - 1 do
      matched.(lane) <-
        act.(lane)
        && int_of_float cols.(lane) >= start
        && int_of_float cols.(lane) < start + s;
      if matched.(lane) then any := true
    done;
    if !any then begin
      Warp.load_into w dev.d_values ~active:matched addrs ~dst:vals;
      for lane = 0 to s - 1 do
        if matched.(lane) then
          tile.(lane).(int_of_float cols.(lane) - start) <- vals.(lane)
      done
    end
  done;
  store_block w gout ~off ~s tile

(* The paper's strategy: the whole warp streams each row in coalesced
   chunks and parks matches in shared memory. *)
let kernel_shared w dev gout ~off ~start ~s =
  let p = Warp.size w in
  let lo, hi = load_row_ptrs w dev ~start ~s in
  let act = Warp.mask_slot w 1 in
  let matched = Warp.mask_slot w 2 in
  let addrs = Warp.addr_slot w 0 in
  let cols = Warp.reg w t_cols
  and vals = Warp.reg w t_vals in
  let tile = Warp.smem_alloc w (s * s) in
  (* Zero the tile cooperatively. *)
  let zero = Warp.reg w t_zero in
  Array.fill zero 0 p 0.0;
  let words = s * s in
  let rec zero_chunk base =
    if base < words then begin
      for lane = 0 to p - 1 do
        act.(lane) <- base + lane < words;
        addrs.(lane) <- min (base + lane) (words - 1)
      done;
      Warp.smem_store w tile ~active:act addrs zero;
      zero_chunk (base + p)
    end
  in
  zero_chunk 0;
  for r = 0 to s - 1 do
    let len = hi.(r) - lo.(r) in
    let chunks = (len + p - 1) / p in
    for c = 0 to chunks - 1 do
      let base = lo.(r) + (c * p) in
      for lane = 0 to p - 1 do
        act.(lane) <- base + lane < hi.(r);
        addrs.(lane) <- min (base + lane) (hi.(r) - 1)
      done;
      Warp.load_into w dev.d_col_idx ~active:act addrs ~dst:cols;
      Charge.fma w 2.0;
      let any = ref false in
      for lane = 0 to p - 1 do
        matched.(lane) <-
          act.(lane)
          && int_of_float cols.(lane) >= start
          && int_of_float cols.(lane) < start + s;
        if matched.(lane) then any := true
      done;
      if !any then begin
        Warp.load_into w dev.d_values ~active:matched addrs ~dst:vals;
        for lane = 0 to p - 1 do
          addrs.(lane) <-
            (if matched.(lane) then r + ((int_of_float cols.(lane) - start) * s)
             else 0)
        done;
        Warp.smem_store w tile ~active:matched addrs vals
      end
    done
  done;
  (* Hand each row to the thread that will factorize it, then write back. *)
  let dense = Array.make_matrix s s 0.0 in
  let active = Warp.mask_slot w 0 in
  for lane = 0 to p - 1 do
    active.(lane) <- lane < s
  done;
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      addrs.(lane) <- min lane (s - 1) + (j * s)
    done;
    Warp.smem_load_into w tile ~active addrs ~dst:vals;
    for lane = 0 to s - 1 do
      dense.(lane).(j) <- vals.(lane)
    done
  done;
  store_block w gout ~off ~s dense

let extract ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact)
    ?(strategy = Shared_memory) ?obs (a : Csr.t) ~block_starts ~block_sizes =
  validate cfg a ~block_starts ~block_sizes;
  let dev = stage prec a in
  let blocks = Batch.create block_sizes in
  let gout = Gmem.create prec (Batch.total_values blocks) in
  let kernel w i =
    let start = block_starts.(i)
    and s = block_sizes.(i)
    and off = blocks.Batch.offsets.(i) in
    match strategy with
    | Row_per_thread -> kernel_naive w dev gout ~off ~start ~s
    | Shared_memory -> kernel_shared w dev gout ~off ~start ~s
  in
  (* No ?cache here: the charge stream depends on the CSR sparsity pattern
     of each block, which no compact salt can encode. *)
  let stats =
    Sampling.run ~cfg ~pool ?obs
      ~name:
        (match strategy with
        | Row_per_thread -> "extract.naive"
        | Shared_memory -> "extract.shared")
      ~prec ~mode ~sizes:block_sizes ~kernel ()
  in
  let out = Batch.create block_sizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 out.Batch.values 0 (Array.length values);
  { blocks = out; stats; exact = (mode = Sampling.Exact) }
