open Vblu_smallblas
open Vblu_simt
open Vblu_sparse

type strategy = Row_per_thread | Shared_memory

type result = {
  blocks : Batch.t;
  stats : Launch.stats;
  exact : bool;
}

let blocks_cover ~n ~block_starts ~block_sizes =
  let k = Array.length block_starts in
  Array.length block_sizes = k
  &&
  let pos = ref 0 in
  let ok = ref true in
  for i = 0 to k - 1 do
    if block_starts.(i) <> !pos || block_sizes.(i) <= 0 then ok := false;
    pos := !pos + block_sizes.(i)
  done;
  !ok && !pos = n

let validate cfg (a : Csr.t) ~block_starts ~block_sizes =
  let k = Array.length block_starts in
  if Array.length block_sizes <> k then
    invalid_arg "Extraction: starts/sizes mismatch";
  let last = ref (-1) in
  for i = 0 to k - 1 do
    let st = block_starts.(i) and s = block_sizes.(i) in
    if s <= 0 || s > cfg.Config.warp_size then
      invalid_arg "Extraction: block size out of range";
    if st <= !last then invalid_arg "Extraction: blocks must be disjoint and sorted";
    if st + s > a.Csr.n_rows || st + s > a.Csr.n_cols then
      invalid_arg "Extraction: block exceeds matrix";
    last := st + s - 1
  done

(* Device staging of the CSR structure.  Indices live in a single-precision
   buffer: exact for indices < 2^24 and 4 bytes wide like the int32 arrays
   of the real implementation, so transaction counts match. *)
type device_csr = {
  d_row_ptr : Gmem.t;
  d_col_idx : Gmem.t;
  d_values : Gmem.t;
}

let stage prec (a : Csr.t) =
  if Csr.nnz a >= 1 lsl 24 then
    invalid_arg "Extraction: matrix too large for 32-bit index staging";
  {
    d_row_ptr = Gmem.of_array Precision.Single (Array.map float_of_int a.Csr.row_ptr);
    d_col_idx = Gmem.of_array Precision.Single (Array.map float_of_int a.Csr.col_idx);
    d_values = Gmem.of_array prec a.Csr.values;
  }

let store_block w gout ~off ~s tile =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  for j = 0 to s - 1 do
    let addrs =
      Array.init p (fun lane -> off + (if lane < s then lane + (j * s) else 0))
    in
    let vals = Array.init p (fun lane -> if lane < s then tile.(lane).(j) else 0.0) in
    Warp.store w gout ~active addrs vals
  done

(* Naive strategy: lane r walks CSR row (start + r) alone; the warp spins
   for the longest row. *)
let kernel_naive w dev gout ~off ~start ~s =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  let ptr_lo =
    Warp.load w dev.d_row_ptr ~active
      (Array.init p (fun lane -> start + min lane (s - 1)))
  in
  let ptr_hi =
    Warp.load w dev.d_row_ptr ~active
      (Array.init p (fun lane -> start + min lane (s - 1) + 1))
  in
  Warp.round_barrier w;
  let lo = Array.map int_of_float ptr_lo and hi = Array.map int_of_float ptr_hi in
  let maxlen = ref 0 in
  for lane = 0 to s - 1 do
    maxlen := max !maxlen (hi.(lane) - lo.(lane))
  done;
  let tile = Array.make_matrix s s 0.0 in
  for it = 0 to !maxlen - 1 do
    let act = Array.init p (fun lane -> lane < s && lo.(lane) + it < hi.(lane)) in
    let addrs =
      Array.init p (fun lane ->
          if act.(lane) then lo.(lane) + it else lo.(0))
    in
    let cols = Warp.load w dev.d_col_idx ~active:act addrs in
    (* In-block test: two compare instructions. *)
    Charge.fma w 2.0;
    let matched =
      Array.init p (fun lane ->
          act.(lane)
          && int_of_float cols.(lane) >= start
          && int_of_float cols.(lane) < start + s)
    in
    if Array.exists (fun x -> x) matched then begin
      let vals = Warp.load w dev.d_values ~active:matched addrs in
      for lane = 0 to s - 1 do
        if matched.(lane) then
          tile.(lane).(int_of_float cols.(lane) - start) <- vals.(lane)
      done
    end
  done;
  store_block w gout ~off ~s tile

(* The paper's strategy: the whole warp streams each row in coalesced
   chunks and parks matches in shared memory. *)
let kernel_shared w dev gout ~off ~start ~s =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  let ptr_lo =
    Warp.load w dev.d_row_ptr ~active
      (Array.init p (fun lane -> start + min lane (s - 1)))
  in
  let ptr_hi =
    Warp.load w dev.d_row_ptr ~active
      (Array.init p (fun lane -> start + min lane (s - 1) + 1))
  in
  Warp.round_barrier w;
  let lo = Array.map int_of_float ptr_lo and hi = Array.map int_of_float ptr_hi in
  let tile = Warp.smem_alloc w (s * s) in
  (* Zero the tile cooperatively. *)
  let zero = Array.make p 0.0 in
  let words = s * s in
  let rec zero_chunk base =
    if base < words then begin
      let act = Array.init p (fun lane -> base + lane < words) in
      Warp.smem_store w tile ~active:act
        (Array.init p (fun lane -> min (base + lane) (words - 1)))
        zero;
      zero_chunk (base + p)
    end
  in
  zero_chunk 0;
  for r = 0 to s - 1 do
    let len = hi.(r) - lo.(r) in
    let chunks = (len + p - 1) / p in
    for c = 0 to chunks - 1 do
      let base = lo.(r) + (c * p) in
      let act = Array.init p (fun lane -> base + lane < hi.(r)) in
      let addrs = Array.init p (fun lane -> min (base + lane) (hi.(r) - 1)) in
      let cols = Warp.load w dev.d_col_idx ~active:act addrs in
      Charge.fma w 2.0;
      let matched =
        Array.init p (fun lane ->
            act.(lane)
            && int_of_float cols.(lane) >= start
            && int_of_float cols.(lane) < start + s)
      in
      if Array.exists (fun x -> x) matched then begin
        let vals = Warp.load w dev.d_values ~active:matched addrs in
        Warp.smem_store w tile ~active:matched
          (Array.init p (fun lane ->
               if matched.(lane) then r + ((int_of_float cols.(lane) - start) * s)
               else 0))
          vals
      end
    done
  done;
  (* Hand each row to the thread that will factorize it, then write back. *)
  let dense = Array.make_matrix s s 0.0 in
  for j = 0 to s - 1 do
    let vals =
      Warp.smem_load w tile ~active
        (Array.init p (fun lane -> min lane (s - 1) + (j * s)))
    in
    for lane = 0 to s - 1 do
      dense.(lane).(j) <- vals.(lane)
    done
  done;
  store_block w gout ~off ~s dense

let extract ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact)
    ?(strategy = Shared_memory) ?obs (a : Csr.t) ~block_starts ~block_sizes =
  validate cfg a ~block_starts ~block_sizes;
  let dev = stage prec a in
  let blocks = Batch.create block_sizes in
  let gout = Gmem.create prec (Batch.total_values blocks) in
  let kernel w i =
    let start = block_starts.(i)
    and s = block_sizes.(i)
    and off = blocks.Batch.offsets.(i) in
    match strategy with
    | Row_per_thread -> kernel_naive w dev gout ~off ~start ~s
    | Shared_memory -> kernel_shared w dev gout ~off ~start ~s
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs
      ~name:
        (match strategy with
        | Row_per_thread -> "extract.naive"
        | Shared_memory -> "extract.shared")
      ~prec ~mode ~sizes:block_sizes ~kernel ()
  in
  let out = Batch.create block_sizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 out.Batch.values 0 (Array.length values);
  { blocks = out; stats; exact = (mode = Sampling.Exact) }
