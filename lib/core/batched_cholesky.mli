(** Variable-size batched Cholesky — the paper's future-work kernel
    (Section V) realized in the same register style as the batched LU.

    One warp per SPD block, one row per thread.  No pivoting is needed, so
    the kernel is the implicit-pivoting LU minus the pivot search and the
    write-back scatter, with a lanewise square root per step and the
    trailing update restricted to the lower triangle (half the register
    work of LU).  Like the LU kernel, a block of size [k < 32] pads to the
    full register width and performs only the first [k] steps. *)

open Vblu_smallblas
open Vblu_simt

type result = {
  factors : Batch.t;
      (** lower-triangular Cholesky factors, packed like the input
          (upper parts zero).  Complete in [Exact] mode. *)
  info : int array;
      (** per-problem status: [0] for an SPD block factored cleanly,
          [k + 1] when the pivot at (0-based) step [k] was not strictly
          positive (the block is not SPD).  The flagged block holds the
          frozen partial factor; the warp completes without raising.  In
          [Sampled] mode only class representatives are flagged. *)
  stats : Launch.stats;
  exact : bool;
}

val factor :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  Batch.t ->
  result
(** Factorize every (assumed SPD) block; only lower triangles are read.
    Non-SPD blocks never raise — they are flagged in [info].
    @raise Invalid_argument if a block exceeds the warp width. *)

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  factors:Batch.t ->
  Batch.vec ->
  Batched_trsv.result
(** Batched [L·Lᵀ] solves: a forward sweep over the columns of [L]
    (coalesced) and a backward sweep reading the same columns as rows of
    [Lᵀ] — on the simulated hardware both passes stream each factor
    element exactly once.  A zero diagonal (factors of a block flagged by
    {!factor}) is reported through the result's [info], never raised. *)
