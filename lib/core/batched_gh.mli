(** Batched Gauss-Huard factorization and solve — the paper's primary
    comparison kernels ("Gauss-Huard" and "Gauss-Huard-T", from the
    companion ICCS'17 paper).

    Numerics come from the {!Vblu_smallblas.Gauss_huard} reference (the
    same algorithm the GPU kernel executes); the performance counters are
    charged analytically following the kernel structure:

    {b Factorization} (lane = column, registers hold one column each,
    implicit {e column} pivoting): step [k] performs the lazy update of row
    [k] and the eager elimination of column [k] above the diagonal — both
    are rank-1 register updates driven by one shuffled scalar per processed
    step, so the executed work grows with [k] (lazy), not with the padded
    width (eager): the reason GH beats LU on small blocks in Figure 5.  GH
    pivoting additionally replicates the pivot-index list in every thread
    (one bookkeeping op per step — the overhead the paper notes implicit LU
    avoids).  The "-T" variant writes the factors back transposed:
    non-coalesced stores, charged accordingly.

    {b Solve}: the natural GH solve replays the row transformations — a
    DOT against row [k]'s lower multipliers plus the pivot division, then
    the unit-upper backward sweep, all reading the matrix {e by rows}:
    non-coalesced loads in normal storage (slow, Figure 7), coalesced in
    the "-T" layout (the payoff). *)

open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type result = {
  factors : Gauss_huard.factors array;
      (** complete in [Exact] mode; representatives only in [Sampled]. *)
  info : int array;
      (** per-problem status: [0] on success, [k + 1] for the first zero
          pivot at (0-based) step [k] ({!Vblu_smallblas.Gauss_huard.factor_status});
          flagged blocks hold frozen partial factors. *)
  verdicts : Fault.verdict array;
      (** per-problem ABFT verdict ([Unchecked] unless [~abft:true]): a
          checksum solve against the row-sum vector [A·e], accepted iff
          the residual stays within the backward-stable envelope. *)
  stats : Launch.stats;
  exact : bool;
}

type solve_result = {
  solutions : Batch.vec;
  solve_info : int array;
      (** [0] on success; [k + 1] when the forward sweep of problem [i]
          met a zero diagonal at step [k] (degenerate factors from a
          flagged factorization). *)
  solve_verdicts : Fault.verdict array;
      (** per-problem verdict ([Unchecked] unless [~abft:true]): dual
          modular redundancy — the deterministic reference solve is redone
          and compared bitwise, so any mismatch is corruption. *)
  solve_stats : Launch.stats;
  solve_exact : bool;
}

val factor :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?storage:Gauss_huard.storage ->
  ?faults:Fault.Plan.t ->
  ?abft:bool ->
  ?obs:Vblu_obs.Ctx.t ->
  Batch.t ->
  result
(** Factorize every block.  [storage] selects GH (default) or GH-T.
    Singular blocks never raise — they are flagged in [info].

    GH numerics run on the CPU reference with analytically charged
    counters, so [?faults] injects at the same level: each claimed site
    corrupts one factor entry (row = site lane, column = site step)
    after factorization; claims are one-shot, so a retry runs clean.
    [~abft:true] fills [verdicts] via the checksum solve, whose cost is
    charged to [stats] like the kernel's own work. *)

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?faults:Fault.Plan.t ->
  ?abft:bool ->
  ?obs:Vblu_obs.Ctx.t ->
  result ->
  Batch.vec ->
  solve_result
(** Apply the factors to a batch of right-hand sides.  [?faults] corrupts
    one solution entry per claimed site; [~abft:true] re-runs the solve
    and compares bitwise (charged as a second solve in [solve_stats]). *)
