open Vblu_smallblas
open Vblu_simt

type result = {
  factors : Batch.t;
  info : int array;
  stats : Launch.stats;
  exact : bool;
}

let kernel_factor w gin gout ~off ~s =
  let p = Warp.size w in
  let zero = Array.make p 0.0 in
  (* Load only the lower triangle: column j needs lanes j..s-1. *)
  let reg =
    Array.init p (fun j ->
        if j < s then begin
          let active = Array.init p (fun lane -> lane >= j && lane < s) in
          Warp.load w gin ~active
            (Array.init p (fun lane ->
                 off + (if lane < s then lane + (j * s) else 0)))
        end
        else Array.copy zero)
  in
  Warp.round_barrier w;
  (* Freeze on breakdown: a non-positive pivot at step k sets info = k+1,
     predicates the remaining steps off, and the partial factor is written
     back — matching Cholesky.factor_status bit-for-bit. *)
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       let dkk = reg.(k).(k) in
       if not (dkk > 0.0) then begin
         info := k + 1;
         raise Exit
       end;
       (* Lanewise sqrt on the pivot lane, then broadcast, then scale the
          column below the diagonal. *)
       let only_k = Array.init p (fun lane -> lane = k) in
       reg.(k) <- Warp.sqrt_lanes w ~active:only_k reg.(k);
       let d = Warp.broadcast w reg.(k) ~src:k in
       let below = Array.init p (fun lane -> lane > k) in
       reg.(k) <- Warp.div w ~active:below reg.(k) d;
       (* Trailing update of the lower triangle, padded width like LU. *)
       for j = k + 1 to p - 1 do
         let ljk = Warp.broadcast w reg.(k) ~src:(min j (p - 1)) in
         let mask = Array.init p (fun lane -> lane >= j) in
         reg.(j) <- Warp.fnma w ~active:mask reg.(k) ljk reg.(j)
       done
     done
   with Exit -> ());
  (* Write back the lower triangle (coalesced per column). *)
  for j = 0 to s - 1 do
    let active = Array.init p (fun lane -> lane >= j && lane < s) in
    Warp.store w gout ~active
      (Array.init p (fun lane -> off + (if lane < s then lane + (j * s) else 0)))
      reg.(j)
  done;
  Counter.credit_flops (Warp.counter w) (Cholesky.flops s);
  !info

let factor ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs (b : Batch.t) =
  Array.iter
    (fun s ->
      if s > cfg.Config.warp_size then
        invalid_arg "Batched_cholesky.factor: block exceeds warp width")
    b.Batch.sizes;
  let gin = Gmem.of_array prec b.Batch.values in
  let gout = Gmem.create prec (Batch.total_values b) in
  let info = Array.make b.Batch.count 0 in
  let kernel w i =
    info.(i) <-
      kernel_factor w gin gout ~off:b.Batch.offsets.(i) ~s:b.Batch.sizes.(i)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"potrf" ~prec ~mode ~sizes:b.Batch.sizes
      ~kernel ()
  in
  let factors = Batch.create b.Batch.sizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 factors.Batch.values 0 (Array.length values);
  { factors; info; stats; exact = (mode = Sampling.Exact) }

let kernel_solve w gmat gvec gout ~moff ~voff ~s =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  let b =
    ref
      (Warp.load w gvec ~active
         (Array.init p (fun lane -> voff + min lane (s - 1))))
  in
  Warp.round_barrier w;
  let info = ref 0 in
  (try
  (* Forward sweep with L (non-unit diagonal): column reads, coalesced.  A
     zero diagonal (factors of a flagged, non-SPD block) freezes the solve:
     info = k+1, everything after — including the backward sweep — is
     predicated off, and the partial vector is stored. *)
  for k = 0 to s - 1 do
    let from_k = Array.init p (fun lane -> lane >= k && lane < s) in
    let col =
      Warp.load w gmat ~active:from_k
        (Array.init p (fun lane -> moff + min lane (s - 1) + (k * s)))
    in
    let d = Warp.broadcast w col ~src:k in
    if d.(0) = 0.0 then begin
      info := k + 1;
      raise Exit
    end;
    let only_k = Array.init p (fun lane -> lane = k) in
    b := Warp.div w ~active:only_k !b d;
    let bk = Warp.broadcast w !b ~src:k in
    let below = Array.init p (fun lane -> lane > k && lane < s) in
    b := Warp.fnma w ~active:below col bk !b
  done;
  (* Backward sweep with Lᵀ: lane i accumulates -L(k,i)·x(k) for k > i; we
     re-read column k of L (its elements L(k..s-1, k) are the row k of Lᵀ
     used lanewise) — still one coalesced column load per step. *)
  for k = s - 1 downto 0 do
    let from_k = Array.init p (fun lane -> lane >= k && lane < s) in
    let col =
      Warp.load w gmat ~active:from_k
        (Array.init p (fun lane -> moff + min lane (s - 1) + (k * s)))
    in
    let d = Warp.broadcast w col ~src:k in
    (* x(k) = (b(k) - Σ_{i>k} L(i,k)·x(i)) / L(k,k): the partial products
       live one per lane; reduce them into lane k. *)
    let prods =
      let mask = Array.init p (fun lane -> lane > k && lane < s) in
      Warp.mul w ~active:mask col !b
    in
    let c = Warp.counter w in
    c.Vblu_simt.Counter.shfl_instrs <- c.Vblu_simt.Counter.shfl_instrs +. 5.0;
    c.Vblu_simt.Counter.fma_instrs <- c.Vblu_simt.Counter.fma_instrs +. 5.0;
    let acc = ref 0.0 in
    for lane = k + 1 to s - 1 do
      acc := Precision.add (Warp.prec w) prods.(lane) !acc
    done;
    let bnew = Array.copy !b in
    bnew.(k) <-
      Precision.div (Warp.prec w)
        (Precision.sub (Warp.prec w) !b.(k) !acc)
        d.(k);
    c.Vblu_simt.Counter.div_instrs <- c.Vblu_simt.Counter.div_instrs +. 1.0;
    b := bnew
  done
  with Exit -> ());
  Warp.store w gout ~active (Array.init p (fun lane -> voff + min lane (s - 1))) !b;
  Counter.credit_flops (Warp.counter w) (Flops.trsv_pair s);
  !info

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs
    ~(factors : Batch.t) (rhs : Batch.vec) =
  if factors.Batch.count <> rhs.Batch.vcount then
    invalid_arg "Batched_cholesky.solve: batch count mismatch";
  let gmat = Gmem.of_array prec factors.Batch.values in
  let gvec = Gmem.of_array prec rhs.Batch.vvalues in
  let gout = Gmem.create prec (Array.length rhs.Batch.vvalues) in
  let info = Array.make factors.Batch.count 0 in
  let kernel w i =
    info.(i) <-
      kernel_solve w gmat gvec gout ~moff:factors.Batch.offsets.(i)
        ~voff:rhs.Batch.voffsets.(i) ~s:factors.Batch.sizes.(i)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"potrs" ~prec ~mode
      ~sizes:factors.Batch.sizes ~kernel ()
  in
  let solutions = Batch.vec_create rhs.Batch.vsizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 solutions.Batch.vvalues 0 (Array.length values);
  {
    Batched_trsv.solutions;
    info;
    (* Cholesky solves carry no ABFT instrumentation (yet). *)
    verdicts = Array.make factors.Batch.count Vblu_fault.Fault.Unchecked;
    stats;
    exact = (mode = Sampling.Exact);
  }
