open Vblu_smallblas
open Vblu_simt

type result = {
  factors : Batch.t;
  info : int array;
  stats : Launch.stats;
  exact : bool;
}

(* Factor arena slots: 0..p-1 hold the matrix columns, 64 the pivot
   broadcast, 65 the trailing-update multiplier. *)
let t_d = 64
let t_ljk = 65

let kernel_factor w gin gout ~off ~st ~s =
  let p = Warp.size w in
  let step = Warp.mask_slot w 0 in
  let addrs = Warp.addr_slot w 0 in
  (* Load only the lower triangle: column j needs lanes j..s-1.  Padding
     columns are zeroed explicitly — the arena is recycled across
     problems. *)
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      step.(lane) <- lane >= j && lane < s;
      addrs.(lane) <- off + (if lane < s then st * (lane + (j * s)) else 0)
    done;
    Warp.load_into w gin ~active:step addrs ~dst:(Warp.reg w j)
  done;
  for j = s to p - 1 do
    Array.fill (Warp.reg w j) 0 p 0.0
  done;
  Warp.round_barrier w;
  (* Freeze on breakdown: a non-positive pivot at step k sets info = k+1,
     predicates the remaining steps off, and the partial factor is written
     back — matching Cholesky.factor_status bit-for-bit. *)
  let info = ref 0 in
  let d = Warp.reg w t_d
  and ljk = Warp.reg w t_ljk in
  let only_k = Warp.mask_slot w 1
  and below = Warp.mask_slot w 2
  and trailing = Warp.mask_slot w 3 in
  (try
     for k = 0 to s - 1 do
       let colk = Warp.reg w k in
       let dkk = colk.(k) in
       if not (dkk > 0.0) then begin
         info := k + 1;
         raise Exit
       end;
       (* Lanewise sqrt on the pivot lane, then broadcast, then scale the
          column below the diagonal. *)
       for lane = 0 to p - 1 do
         only_k.(lane) <- lane = k;
         below.(lane) <- lane > k
       done;
       Warp.sqrt_into w ~active:only_k ~dst:colk colk;
       Warp.broadcast_into w ~dst:d colk ~src:k;
       Warp.div_into w ~active:below ~dst:colk colk d;
       (* Trailing update of the lower triangle, padded width like LU. *)
       for j = k + 1 to p - 1 do
         Warp.broadcast_into w ~dst:ljk colk ~src:(min j (p - 1));
         for lane = 0 to p - 1 do
           trailing.(lane) <- lane >= j
         done;
         let colj = Warp.reg w j in
         Warp.fnma_into w ~active:trailing ~dst:colj colk ljk colj
       done
     done
   with Exit -> ());
  (* Write back the lower triangle (coalesced per column). *)
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      step.(lane) <- lane >= j && lane < s;
      addrs.(lane) <- off + (if lane < s then st * (lane + (j * s)) else 0)
    done;
    Warp.store w gout ~active:step addrs (Warp.reg w j)
  done;
  Warp.credit_flops w (Cholesky.flops s);
  !info

let factor ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs (b : Batch.t) =
  Array.iter
    (fun s ->
      if s > cfg.Config.warp_size then
        invalid_arg "Batched_cholesky.factor: block exceeds warp width")
    b.Batch.sizes;
  let gin = Gmem.of_array prec b.Batch.values in
  let gout = Gmem.create prec (Batch.total_values b) in
  let info = Array.make b.Batch.count 0 in
  let kernel w i =
    Staging.set_cohort w b i;
    info.(i) <-
      kernel_factor w gin gout ~off:(Batch.base b i) ~st:(Batch.stride b i)
        ~s:b.Batch.sizes.(i)
  in
  (* Input and output factors share one offset table; a breakdown
     early-exit diverges the op-event signature and falls back to a
     charging rerun, so value-dependent freezes stay exact. *)
  let cache =
    let align = Config.elements_per_transaction cfg prec in
    Some (fun i -> Batch.salt_class b i ~align)
  in
  (* Direct execution: the lower-triangle batch-view factorization repeats
     the kernel's op order (check, sqrt, scale, unconditional trailing
     FNMA) bitwise, freeze included. *)
  let direct =
    let vin = Gmem.raw gin and vout = Gmem.raw gout in
    Some
      (fun i ->
        let inf =
          Cholesky.factor_view ~prec ~stride:(Batch.stride b i) ~src:vin
            ~dst:vout ~off:(Batch.base b i) ~n:b.Batch.sizes.(i) ()
        in
        info.(i) <- inf;
        inf)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"potrf" ?cache ?direct ~prec ~mode
      ~sizes:b.Batch.sizes ~kernel ()
  in
  let factors = Batch.create ~layout:(Batch.layout b) b.Batch.sizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 factors.Batch.values 0 (Array.length values);
  { factors; info; stats; exact = (mode = Sampling.Exact) }

(* Solve arena slots. *)
let t_b = 0
let t_col = 1
let t_dv = 2
let t_bk = 3
let t_prods = 4

let kernel_solve w gmat gvec gout ~moff ~mst ~voff ~vst ~s =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  let from_k = Warp.mask_slot w 1 in
  let only_k = Warp.mask_slot w 2 in
  let below = Warp.mask_slot w 3 in
  let addrs = Warp.addr_slot w 0 in
  let b = Warp.reg w t_b
  and col = Warp.reg w t_col
  and d = Warp.reg w t_dv
  and bk = Warp.reg w t_bk
  and prods = Warp.reg w t_prods in
  for lane = 0 to p - 1 do
    active.(lane) <- lane < s;
    addrs.(lane) <- voff + (vst * min lane (s - 1))
  done;
  Warp.load_into w gvec ~active addrs ~dst:b;
  Warp.round_barrier w;
  let info = ref 0 in
  (try
     (* Forward sweep with L (non-unit diagonal): column reads, coalesced.
        A zero diagonal (factors of a flagged, non-SPD block) freezes the
        solve: info = k+1, everything after — including the backward sweep
        — is predicated off, and the partial vector is stored. *)
     for k = 0 to s - 1 do
       for lane = 0 to p - 1 do
         from_k.(lane) <- lane >= k && lane < s;
         addrs.(lane) <- moff + (mst * (min lane (s - 1) + (k * s)))
       done;
       Warp.load_into w gmat ~active:from_k addrs ~dst:col;
       Warp.broadcast_into w ~dst:d col ~src:k;
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       for lane = 0 to p - 1 do
         only_k.(lane) <- lane = k;
         below.(lane) <- lane > k && lane < s
       done;
       Warp.div_into w ~active:only_k ~dst:b b d;
       Warp.broadcast_into w ~dst:bk b ~src:k;
       Warp.fnma_into w ~active:below ~dst:b col bk b
     done;
     (* Backward sweep with Lᵀ: lane i accumulates -L(k,i)·x(k) for k > i;
        we re-read column k of L (its elements L(k..s-1, k) are the row k
        of Lᵀ used lanewise) — still one coalesced column load per step. *)
     for k = s - 1 downto 0 do
       for lane = 0 to p - 1 do
         from_k.(lane) <- lane >= k && lane < s;
         addrs.(lane) <- moff + (mst * (min lane (s - 1) + (k * s)))
       done;
       Warp.load_into w gmat ~active:from_k addrs ~dst:col;
       Warp.broadcast_into w ~dst:d col ~src:k;
       (* x(k) = (b(k) - Σ_{i>k} L(i,k)·x(i)) / L(k,k): the partial
          products live one per lane; reduce them into lane k. *)
       for lane = 0 to p - 1 do
         below.(lane) <- lane > k && lane < s
       done;
       Warp.mul_into w ~active:below ~dst:prods col b;
       Warp.charge_shfl w 5.0;
       Warp.charge_fma w 5.0;
       let acc = ref 0.0 in
       for lane = k + 1 to s - 1 do
         acc := Precision.add (Warp.prec w) prods.(lane) !acc
       done;
       b.(k) <-
         Precision.div (Warp.prec w)
           (Precision.sub (Warp.prec w) b.(k) !acc)
           d.(k);
       Warp.charge_div w 1.0
     done
   with Exit -> ());
  for lane = 0 to p - 1 do
    addrs.(lane) <- voff + (vst * min lane (s - 1))
  done;
  Warp.store w gout ~active addrs b;
  Warp.credit_flops w (Flops.trsv_pair s);
  !info

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs
    ~(factors : Batch.t) (rhs : Batch.vec) =
  if factors.Batch.count <> rhs.Batch.vcount then
    invalid_arg "Batched_cholesky.solve: batch count mismatch";
  if Batch.layout factors <> Batch.vec_layout rhs then
    invalid_arg "Batched_cholesky.solve: factors/rhs layout mismatch";
  let gmat = Gmem.of_array prec factors.Batch.values in
  let gvec = Gmem.of_array prec rhs.Batch.vvalues in
  let gout = Gmem.create prec (Array.length rhs.Batch.vvalues) in
  let info = Array.make factors.Batch.count 0 in
  let kernel w i =
    Staging.set_cohort w factors i;
    info.(i) <-
      kernel_solve w gmat gvec gout ~moff:(Batch.base factors i)
        ~mst:(Batch.stride factors i) ~voff:(Batch.vec_base rhs i)
        ~vst:(Batch.vec_stride rhs i) ~s:factors.Batch.sizes.(i)
  in
  let cache =
    let align = Config.elements_per_transaction cfg prec in
    Some
      (fun i ->
        Staging.mix
          (Batch.salt_class factors i ~align)
          (Batch.vec_salt_class rhs i ~align))
  in
  (* Direct execution: rhs copy into the output segment, then the in-place
     forward/backward batch-view solve. *)
  let direct =
    let vmat = Gmem.raw gmat
    and vvec = Gmem.raw gvec
    and vout = Gmem.raw gout in
    Some
      (fun i ->
        let s = factors.Batch.sizes.(i) in
        let voff = Batch.vec_base rhs i
        and vst = Batch.vec_stride rhs i in
        if vst = 1 then Array.blit vvec voff vout voff s
        else
          for k = 0 to s - 1 do
            vout.(voff + (vst * k)) <- vvec.(voff + (vst * k))
          done;
        let inf =
          Cholesky.solve_view ~prec ~mstride:(Batch.stride factors i)
            ~bstride:vst ~m:vmat ~moff:(Batch.base factors i) ~n:s ~b:vout
            ~boff:voff ()
        in
        info.(i) <- inf;
        inf)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"potrs" ?cache ?direct ~prec ~mode
      ~sizes:factors.Batch.sizes ~kernel ()
  in
  let solutions = Batch.vec_create ~layout:rhs.Batch.vlayout rhs.Batch.vsizes in
  let values = Gmem.to_array gout in
  Array.blit values 0 solutions.Batch.vvalues 0 (Array.length values);
  {
    Batched_trsv.solutions;
    info;
    (* Cholesky solves carry no ABFT instrumentation (yet). *)
    verdicts = Array.make factors.Batch.count Vblu_fault.Fault.Unchecked;
    stats;
    exact = (mode = Sampling.Exact);
  }
