(** Diagonal-block extraction from CSR (Section III-C).

    Block-Jacobi setup must pull dense diagonal blocks out of the sparse
    system matrix.  Two strategies, both simulated functionally:

    - {!Row_per_thread} (the naive baseline): thread [r] of the warp scans
      CSR row [r] of the block on its own.  Lanes sit at unrelated offsets
      into [col_idx], so the index loads are non-coalesced, and the warp
      iterates as long as its {e longest} row — severe imbalance on
      matrices with skewed nonzero distributions (circuit simulation).

    - {!Shared_memory} (the paper's strategy): all 32 threads cooperate on
      {e each} row in turn, streaming its column indices in coalesced
      32-wide chunks; lanes that hit an element of the diagonal block fetch
      the value and drop it into the shared-memory tile at its final
      position.  Imbalance now only exists between the rows of one block,
      and every index load is coalesced.  A final pass moves each row from
      the tile into the registers of the thread that will factorize it.

    Both produce identical batches (tested against the dense
    {!Vblu_sparse.Csr.extract_block} gather). *)

open Vblu_simt
open Vblu_sparse

type strategy =
  | Row_per_thread
  | Shared_memory

type result = {
  blocks : Batch.t;
      (** the extracted dense diagonal blocks (complete in [Exact] mode). *)
  stats : Launch.stats;
  exact : bool;
}

val extract :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Vblu_smallblas.Precision.t ->
  ?mode:Sampling.mode ->
  ?strategy:strategy ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  block_starts:int array ->
  block_sizes:int array ->
  result
(** [extract a ~block_starts ~block_sizes] gathers the square diagonal
    blocks [a(start, start) .. (start+size-1, start+size-1)].
    Blocks must be disjoint, in-range, and no larger than the warp.
    @raise Invalid_argument otherwise.

    In [Sampled] mode the representative of a size class is the block with
    that size encountered first, so modelled imbalance is workload-specific
    only in [Exact] mode (benches use [Exact]; this kernel is cheap). *)

val blocks_cover : n:int -> block_starts:int array -> block_sizes:int array -> bool
(** Whether the blocks exactly tile [0..n-1] — the supervariable-blocking
    postcondition block-Jacobi requires. *)
