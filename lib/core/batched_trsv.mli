(** The paper's variable-size batched triangular solves (Section III-B).

    One warp per block; thread [k] holds element [k] of the right-hand
    side in a register.  The triangular factors offer no reuse, so each
    matrix element is read exactly once — one coalesced column load per
    elimination step (the "eager"/AXPY variant; column-major storage makes
    the column reads coalesced, which is why the paper selects it).  The
    pivoting permutation of the factorization is applied {e while reading}
    the right-hand side: each lane simply loads its permuted element, at no
    extra cost.

    The DOT-based "lazy" variant is provided for the paper's Figure 2
    ablation: it reads one {e row} per step (non-coalesced) and needs a
    warp reduction per step. *)

open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type variant =
  | Eager  (** AXPY-based, column reads; the paper's kernel. *)
  | Lazy   (** DOT-based, row reads; ablation baseline. *)

type result = {
  solutions : Batch.vec;
      (** per-block solutions; complete in [Exact] mode, representatives
          only in [Sampled] mode. *)
  info : int array;
      (** per-problem status: [0] on success, [k + 1] when the upper sweep
          of problem [i] hit a zero diagonal at (0-based) step [k].  The
          flagged problem's solution holds the frozen partial state (steps
          [s-1 .. k+1] applied); other problems are unaffected.  In
          [Sampled] mode only class representatives are flagged. *)
  verdicts : Fault.verdict array;
      (** per-problem ABFT verdict; [Unchecked] unless [~abft:true] was
          passed (or when the sweep broke down — a nonzero [info] already
          flags it).  The check re-evaluates [L·(U·x)] from fresh factor
          reads and compares it against the permuted right-hand side
          captured at load time. *)
  stats : Launch.stats;
  exact : bool;
}

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?variant:variant ->
  ?faults:Fault.Plan.t ->
  ?abft:bool ->
  ?obs:Vblu_obs.Ctx.t ->
  factors:Batch.t ->
  pivots:int array array ->
  Batch.vec ->
  result
(** [solve ~factors ~pivots rhs] solves every block system using the packed
    LU factors and pivot permutations of {!Batched_lu.factor} (GETRS:
    permute, unit-lower solve, upper solve).  [?pool] distributes blocks
    over domains with bit-identical results (including [info]); an empty
    batch is a no-op.  A zero diagonal never raises — it is flagged in
    [info].

    [?faults] arms a deterministic fault plan for the targeted problems
    (one-shot claims; see {!Vblu_fault.Fault.Plan}).  [~abft:true]
    verifies each clean solution against the right-hand side by
    re-reading the factors (roughly doubling the traffic — the honest
    cost of solve-phase detection) and fills [verdicts]; both default
    off, leaving the kernels bit-identical to the unprotected path.
    @raise Invalid_argument on shape mismatch between factors and rhs, or
    when [pivots] does not have exactly one (possibly empty) entry per
    block. *)
