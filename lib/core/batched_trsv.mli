(** The paper's variable-size batched triangular solves (Section III-B).

    One warp per block; thread [k] holds element [k] of the right-hand
    side in a register.  The triangular factors offer no reuse, so each
    matrix element is read exactly once — one coalesced column load per
    elimination step (the "eager"/AXPY variant; column-major storage makes
    the column reads coalesced, which is why the paper selects it).  The
    pivoting permutation of the factorization is applied {e while reading}
    the right-hand side: each lane simply loads its permuted element, at no
    extra cost.

    The DOT-based "lazy" variant is provided for the paper's Figure 2
    ablation: it reads one {e row} per step (non-coalesced) and needs a
    warp reduction per step. *)

open Vblu_smallblas
open Vblu_simt

type variant =
  | Eager  (** AXPY-based, column reads; the paper's kernel. *)
  | Lazy   (** DOT-based, row reads; ablation baseline. *)

type result = {
  solutions : Batch.vec;
      (** per-block solutions; complete in [Exact] mode, representatives
          only in [Sampled] mode. *)
  info : int array;
      (** per-problem status: [0] on success, [k + 1] when the upper sweep
          of problem [i] hit a zero diagonal at (0-based) step [k].  The
          flagged problem's solution holds the frozen partial state (steps
          [s-1 .. k+1] applied); other problems are unaffected.  In
          [Sampled] mode only class representatives are flagged. *)
  stats : Launch.stats;
  exact : bool;
}

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?variant:variant ->
  factors:Batch.t ->
  pivots:int array array ->
  Batch.vec ->
  result
(** [solve ~factors ~pivots rhs] solves every block system using the packed
    LU factors and pivot permutations of {!Batched_lu.factor} (GETRS:
    permute, unit-lower solve, upper solve).  [?pool] distributes blocks
    over domains with bit-identical results (including [info]); an empty
    batch is a no-op.  A zero diagonal never raises — it is flagged in
    [info].
    @raise Invalid_argument on shape mismatch between factors and rhs, or
    when [pivots] does not have exactly one (possibly empty) entry per
    block. *)
