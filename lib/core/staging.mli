(** Batch → warp staging: cohort contexts and cache-salt mixing.

    The glue the batched kernels share for layout-polymorphic execution:
    entering the warp's cohort-cooperative coalescing context for the
    problem at hand, and folding layout-aware alignment classes into
    [Launch.Cache] salts. *)

open Vblu_simt

val set_cohort : Warp.t -> Batch.t -> int -> unit
(** [set_cohort w b i] enters problem [i]'s cohort context on [w]
    (clears it for blocked batches).  A matrix batch and a vector batch
    over the same sizes and layout agree on cohort geometry
    ({!Batch.vec_create}), so one call serves both buffers. *)

val set_vec_cohort : Warp.t -> Batch.vec -> int -> unit

val mix : int -> int -> int
(** [mix h v] chains salt component [v] onto accumulator [h] injectively
    for components below 8191 — all {!Batch.salt_class} and flag values
    qualify. *)
