open Vblu_simt

(* Batch → Warp bridge: enter/leave the cohort-cooperative coalescing
   context for one problem of a (possibly interleaved) batch.  Kernels
   call [set_cohort] right after [Warp.reset] — for blocked batches this
   is a no-op-equivalent (width 0), so the blocked charge stream stays
   byte-identical to the pre-layout engine. *)

let set_cohort w b i =
  match Batch.cohort b i with
  | None -> Warp.clear_cohort w
  | Some (width, slot) -> Warp.set_cohort w ~width ~slot

let set_vec_cohort w v i =
  match Batch.vec_cohort v i with
  | None -> Warp.clear_cohort w
  | Some (width, slot) -> Warp.set_cohort w ~width ~slot

(* Injective salt mixer for Launch.Cache keys.  Every salt component in
   the batched kernels is a [Batch.salt_class] / [vec_salt_class] value
   (< align + 33 ≤ 41) or a small flag, so chaining [mix] with a radix
   far above any component keeps distinct component tuples distinct —
   unlike the old [((a * align) + b) * align + c] packings, which
   overflowed the component ranges once layouts widened them. *)
let mix h v = (h * 8191) + v
