open Vblu_smallblas
open Vblu_simt

type result = {
  factors : Batch.t;
  pivots : int array array;
  info : int array;
  stats : Launch.stats;
  exact : bool;
}

type solve_result = {
  solutions : Batch.vec;
  solve_info : int array;
  solve_stats : Launch.stats;
  solve_exact : bool;
}

let tile_sizes = [ 8; 16; 32 ]

(* Residual slowdown of the closed-source kernel relative to what the
   structural shared-memory model explains; calibrated once against the
   paper's 3.5x factorization gap at size 32. *)
let generic_overhead = 2.0

let tile_for s =
  match List.find_opt (fun t -> s <= t) tile_sizes with
  | Some t -> t
  | None -> invalid_arg "Cublas_model: block size exceeds the largest tile"

(* An empty batch is uniform by convention (size 0, handled as a no-op by
   Sampling.run); [tile_for] is only consulted when there is work. *)
let check_uniform (sizes : int array) name =
  if Array.length sizes = 0 then 0
  else begin
    let s = sizes.(0) in
    Array.iter
      (fun x ->
        if x <> s then
          invalid_arg
            (name ^ ": variable block size is not supported by the cuBLAS model"))
      sizes;
    s
  end

let charge_scaled w f =
  (* Apply the generic overhead to compute slots only (memory traffic is
     structural). *)
  Charge.fma w (f *. generic_overhead)

let charge_factor w ~s =
  let t = tile_for s in
  for _j = 1 to s do
    Charge.gmem_coalesced w ~elems:s
  done;
  Charge.round w;
  (* Stage into shared memory. *)
  Charge.smem w (float_of_int (s * s / 32 * 2));
  for k = 0 to s - 1 do
    (* Pivot search through shared memory. *)
    Charge.smem w (float_of_int (t / 8));
    Charge.reduction w;
    (* Explicit two-row exchange across the tile width. *)
    Charge.smem w (float_of_int (2 * t) *. generic_overhead);
    (* Scale column k. *)
    Charge.div w 1.0;
    Charge.smem w 2.0;
    (* Trailing update: operands cycle through shared memory and the
       generic (non-register) inner loop spends several ALU ops per
       updated column on addressing and predication. *)
    let width = max 0 (t - 1 - k) in
    Charge.smem w (float_of_int width *. generic_overhead);
    charge_scaled w (float_of_int width *. 2.5)
  done;
  for _j = 1 to s do
    Charge.gmem_coalesced w ~elems:s
  done;
  Charge.gmem_coalesced w ~elems:s;
  Warp.credit_flops w (Flops.getrf s)

let factor ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs (b : Batch.t) =
  let s = check_uniform b.Batch.sizes "Cublas_model.factor" in
  if b.Batch.count > 0 then ignore (tile_for s);
  let factors = Batch.create ~layout:(Batch.layout b) b.Batch.sizes in
  let pivots = Array.make b.Batch.count [||] in
  let info = Array.make b.Batch.count 0 in
  let kernel w i =
    Staging.set_cohort w b i;
    let f, inf = Lu.factor_explicit_status ~prec (Batch.get_matrix b i) in
    Batch.set_matrix factors i f.Lu.lu;
    pivots.(i) <- f.Lu.perm;
    info.(i) <- inf;
    (* Full charge regardless of breakdown: getrfBatched runs its fixed
       instruction stream and reports per-problem info, like this model. *)
    charge_factor w ~s
  in
  let stats =
    (* Analytic charges: pure function of the (uniform) size and the
       layout's cohort width. *)
    Sampling.run ~cfg ~pool ?obs ~name:"cublas.getrf"
      ~cache:(fun i -> Batch.cohort_salt b i) ~prec ~mode ~sizes:b.Batch.sizes
      ~kernel ()
  in
  { factors; pivots; info; stats; exact = (mode = Sampling.Exact) }

let charge_solve w ~s =
  (* Pass 1: apply the pivot sequence to the right-hand side in global
     memory (the LAPACK-style row-interchange loop). *)
  Charge.gmem_coalesced w ~elems:s;
  for _k = 0 to s - 1 do
    Charge.fma w generic_overhead
  done;
  Charge.gmem_coalesced w ~elems:s;
  Charge.round w;
  (* Passes 2 and 3: triangular solves with the right-hand side kept in
     global memory — each step re-loads the column and re-writes the
     updated rhs elements. *)
  let pass () =
    for k = 0 to s - 1 do
      Charge.gmem_coalesced w ~elems:(s - k);
      Charge.gmem_coalesced w ~elems:(s - k);
      Charge.gmem_coalesced w ~elems:(s - k);
      charge_scaled w 1.0;
      Charge.shfl w 1.0
    done;
    Charge.round w
  in
  pass ();
  Charge.div w (float_of_int s);
  pass ();
  Charge.gmem_coalesced w ~elems:s;
  Warp.credit_flops w (Flops.trsv_pair s)

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs (r : result)
    (rhs : Batch.vec) =
  let s = check_uniform rhs.Batch.vsizes "Cublas_model.solve" in
  if r.factors.Batch.count <> rhs.Batch.vcount then
    invalid_arg "Cublas_model.solve: batch count mismatch";
  let solutions = Batch.vec_create ~layout:rhs.Batch.vlayout rhs.Batch.vsizes in
  let solve_info = Array.make rhs.Batch.vcount 0 in
  let kernel w i =
    Staging.set_vec_cohort w rhs i;
    let lu = Batch.get_matrix r.factors i in
    let x, inf = Trsv.solve_status ~prec lu r.pivots.(i) (Batch.vec_get rhs i) in
    Batch.vec_set solutions i x;
    solve_info.(i) <- inf;
    charge_solve w ~s
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"cublas.getrs"
      ~cache:(fun i -> Batch.vec_cohort_salt rhs i) ~prec ~mode
      ~sizes:rhs.Batch.vsizes ~kernel ()
  in
  { solutions; solve_info; solve_stats = stats; solve_exact = (mode = Sampling.Exact) }
