(** A model of NVIDIA's cuBLAS batched LU ([getrfBatched] /
    [getrsBatched]) — the vendor baseline of Figures 4–7.

    cuBLAS is closed source, so this is the paper's own characterization
    turned into a model, written in the conventional batched style the
    paper contrasts with its register kernels:

    - the block is staged in {e shared memory}, not registers, so every
      elimination step re-reads and re-writes its operands (three
      shared-memory slots per updated element instead of zero);
    - pivoting is {e explicit}: a physical two-row exchange through shared
      memory at every step;
    - the kernel is compiled for fixed {e tile sizes} (8, 16, 32 here);
      a batch of order [s] runs in the smallest tile that fits, so the
      GFLOPS-vs-size curve shows local peaks at tile-friendly sizes and
      cliffs just past them — the size-specific optimization the paper
      observes at 8/16/29 (SP) and 8/20 (DP);
    - only {e uniform} batches are supported: [factor] rejects
      variable-size input exactly as the real API does (which is why the
      paper's block-Jacobi comparison cannot include cuBLAS);
    - the solve stages nothing: right-hand sides stay in global memory and
      are re-touched at every step, and the permutation runs as its own
      pass.

    An overall slowdown factor (documented in the implementation) absorbs
    what the structural model cannot see of a closed-source library; it is
    calibrated once against the paper's size-32 gap and applied uniformly
    across sizes and precisions.  Numerics come from the explicit-pivot CPU
    reference. *)

open Vblu_smallblas
open Vblu_simt

type result = {
  factors : Batch.t;
  pivots : int array array;
  info : int array;
      (** per-problem status, LAPACK [getrfBatched] convention: [0] on
          success, [k + 1] for the first zero pivot column at (0-based)
          step [k].  Flagged blocks hold frozen partial factors.  In
          [Sampled] mode only class representatives are flagged. *)
  stats : Launch.stats;
  exact : bool;
}

type solve_result = {
  solutions : Batch.vec;
  solve_info : int array;
      (** [0] on success; [k + 1] when the triangular solve of problem [i]
          met a zero diagonal at step [k]. *)
  solve_stats : Launch.stats;
  solve_exact : bool;
}

val tile_sizes : int list
(** The modelled kernel specializations, ascending. *)

val factor :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  Batch.t ->
  result
(** [getrfBatched].  An empty batch is a defined no-op.  Numerically
    singular blocks never raise — they are flagged in [info], exactly as
    the real API reports them.
    @raise Invalid_argument if the batch is not uniform in size or exceeds
    the largest tile. *)

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  result ->
  Batch.vec ->
  solve_result
(** [getrsBatched]: permutation pass, then the two triangular solves. *)
