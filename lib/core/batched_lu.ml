open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type pivoting = Implicit | Explicit | No_pivoting

type result = {
  factors : Batch.t;
  pivots : int array array;
  info : int array;
  verdicts : Fault.verdict array;
  stats : Launch.stats;
  exact : bool;
}

let check_batch cfg (b : Batch.t) =
  let w = cfg.Config.warp_size in
  Array.iter
    (fun s ->
      if s > w then
        invalid_arg
          (Printf.sprintf "Batched_lu: block size %d exceeds warp width %d" s w))
    b.Batch.sizes

(* Arena slot map (the kernels below own the whole warp arena per problem):
   regs 0..p-1 hold the padded tile columns; the slots from [t_bcast] up
   are broadcast/checksum temporaries.  Masks: 0 = lane<s, 1 and 2 are
   step-local.  Addrs: 0 = column addresses, 1 = pivot steps, 2 = store
   destinations. *)
let t_bcast = 32
let t_urow = 33
let t_chk = 34
let t_chkabs = 35
let t_abs = 36
let t_y = 37
let t_z = 38
let t_ybc = 39
let t_vals = 40
let t_vals2 = 41

let fill_lt w m s =
  let p = Warp.size w in
  for lane = 0 to p - 1 do
    m.(lane) <- lane < s
  done

(* Load the block at [off] of order [s] into the padded register tile:
   reg slot j holds column j, element (lane, j) in lane [lane]; one
   coalesced load per column.  [st] is the batch's element stride (1 for
   blocked, cohort width for interleaved — addresses walk same-element
   strips).  Padding columns are zero-filled — arena slots are reused
   across problems, so the fill replaces the fresh-array guarantee the
   allocating tile had. *)
let load_tile w gin ~off ~st ~s =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  fill_lt w active s;
  let addrs = Warp.addr_slot w 0 in
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      addrs.(lane) <- off + (if lane < s then st * (lane + (j * s)) else 0)
    done;
    Warp.load_into w gin ~active addrs ~dst:(Warp.reg w j)
  done;
  for j = s to p - 1 do
    Array.fill (Warp.reg w j) 0 p 0.0
  done;
  Warp.round_barrier w

let store_tile w gout ~off ~st ~s ~dest =
  (* One store per column; [dest.(lane)] is the output row of lane's row —
     the identity for explicit pivoting, the accumulated permutation for
     implicit pivoting (the "combined row swap fused with the off-load"). *)
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  fill_lt w active s;
  let addrs = Warp.addr_slot w 0 in
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      addrs.(lane) <- off + (if lane < s then st * (dest.(lane) + (j * s)) else 0)
    done;
    Warp.store w gout ~active addrs (Warp.reg w j)
  done

(* ------------------------------------------------------------------ *)
(* ABFT row checksums (Huang-Abraham style, register-resident).

   Encode: before elimination each lane captures the row sum [t] of its
   row of A — and the absolute row sum [tabs] that scales the comparison
   tolerance.  Verify: at write-back the identity  A·e = Pᵀ·(L·(U·e))  is
   evaluated from the factors still in registers — y = U·e per packed row
   via masked column sums, then z = L·y via pivot-row broadcasts and FMAs
   — and compared lanewise against [t].  Both passes go through the
   normal warp ops, so the modelled ABFT overhead (the gap the
   [abft-overhead] perf table measures) is charged honestly. *)

let abft_tolerance prec ~s ~tabs ~t ~z =
  let eps = Precision.eps prec in
  1024.0 *. float_of_int s *. eps *. (tabs +. Float.abs t +. Float.abs z)

let abft_encode w ~s =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  fill_lt w active s;
  let t = Warp.reg w t_chk
  and tabs = Warp.reg w t_chkabs
  and tmp = Warp.reg w t_abs in
  Array.blit (Warp.reg w 0) 0 t 0 p;
  for lane = 0 to p - 1 do
    tabs.(lane) <- Float.abs (Warp.reg w 0).(lane)
  done;
  for j = 1 to s - 1 do
    Warp.add_into w ~active ~dst:t t (Warp.reg w j);
    (* |·| is an operand modifier on GPU ALUs, so the abs-checksum pass
       costs the same single add per column. *)
    for lane = 0 to p - 1 do
      tmp.(lane) <- Float.abs (Warp.reg w j).(lane)
    done;
    Warp.add_into w ~active ~dst:tabs tabs tmp
  done

(* [srow.(lane)] is the packed (pivot-order) row index lane holds — the
   accumulated [step] for the implicit kernel, the lane itself for
   explicit/no pivoting.  [src_of_row m] is the lane holding packed row
   [m]; [tsrc lane] the lane whose encoded checksum lane's packed row
   must reproduce. *)
let abft_verify w ~s ~srow ~src_of_row ~tsrc =
  let p = Warp.size w in
  let prec = Warp.prec w in
  let t = Warp.reg w t_chk and tabs = Warp.reg w t_chkabs in
  let y = Warp.reg w t_y
  and z = Warp.reg w t_z
  and ybc = Warp.reg w t_ybc in
  let act = Warp.mask_slot w 2 in
  Array.fill y 0 p 0.0;
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      act.(lane) <- lane < s && srow.(lane) <= j
    done;
    Warp.add_into w ~active:act ~dst:y y (Warp.reg w j)
  done;
  Array.blit y 0 z 0 p;
  for m = 0 to s - 2 do
    Warp.broadcast_into w ~dst:ybc y ~src:(src_of_row m);
    for lane = 0 to p - 1 do
      act.(lane) <- lane < s && srow.(lane) > m
    done;
    Warp.fma_into w ~active:act ~dst:z (Warp.reg w m) ybc z
  done;
  (* One subtract + one predicated compare against the tolerance. *)
  Charge.fma w 2.0;
  let ok = ref true in
  for lane = 0 to s - 1 do
    let zv = z.(lane) in
    let tv = t.(tsrc lane) and ta = tabs.(tsrc lane) in
    let tol = abft_tolerance prec ~s ~tabs:ta ~t:tv ~z:zv in
    if (not (Float.is_finite zv)) || Float.abs (zv -. tv) > tol then
      ok := false
  done;
  if !ok then Fault.Passed else Fault.Failed

(* Shared verify for the kernels whose rows end up physically in pivot
   order (explicit and no pivoting): lane [k] holds packed row [k], and
   [perm.(k)] names the original row whose checksum it must reproduce. *)
let verify_in_place w ~s ~perm ~abft ~info =
  if abft && info = 0 then begin
    let p = Warp.size w in
    let srow = Warp.addr_slot w 3 in
    for lane = 0 to p - 1 do
      srow.(lane) <- (if lane < s then lane else p + lane)
    done;
    abft_verify w ~s ~srow
      ~src_of_row:(fun m -> m)
      ~tsrc:(fun lane -> perm.(lane))
  end
  else Fault.Unchecked

(* All three kernels follow the "freeze on breakdown" rule: the first zero
   pivot at (0-based) step [k] sets [info = k + 1], the elimination loop is
   predicated off and the partial tile is written back unchanged from that
   point on.  The warp itself always completes — no exception ever leaves a
   kernel — so a poisoned problem cannot take down its batch (or, under
   [?pool], its worker domain).  The [Vblu_smallblas.Lu] [_status]
   references freeze at exactly the same point, keeping kernel and
   reference bit-for-bit identical even on singular blocks. *)

let kernel_implicit w gin gout ~off ~st ~s ~abft =
  let p = Warp.size w in
  load_tile w gin ~off ~st ~s;
  (* Checksums are encoded after the load and before any fault can arm
     (sites arm at [Warp.fault_step]), so a corruption always lands on
     checksum-protected state. *)
  if abft then abft_encode w ~s;
  (* step.(lane) = pivot step of this lane's row; padded lanes start
     "already pivoted" so they never win the pivot search. *)
  let step = Warp.addr_slot w 1 in
  for lane = 0 to p - 1 do
    step.(lane) <- (if lane < s then -1 else p + lane)
  done;
  let mask = Warp.mask_slot w 1 in
  let fill_unpivoted () =
    for lane = 0 to p - 1 do
      mask.(lane) <- step.(lane) < 0
    done
  in
  let d = Warp.reg w t_bcast and urow = Warp.reg w t_urow in
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       Warp.fault_step w k;
       fill_unpivoted ();
       let piv = Warp.argmax_abs w ~active:mask (Warp.reg w k) in
       Warp.broadcast_into w ~dst:d (Warp.reg w k) ~src:piv;
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       step.(piv) <- k;
       fill_unpivoted ();
       Warp.div_into w ~active:mask ~dst:(Warp.reg w k) (Warp.reg w k) d;
       (* Trailing update over the full padded width: the eager-variant
          padding overhead of Figure 5. *)
       for j = k + 1 to p - 1 do
         let col = Warp.reg w j in
         Warp.broadcast_into w ~dst:urow col ~src:piv;
         Warp.fnma_into w ~active:mask ~dst:col (Warp.reg w k) urow col
       done
     done
   with Exit -> ());
  (* On breakdown the still-unpivoted lanes take the remaining steps in
     increasing lane order, so the fused write-back permutation stays
     total (same rule as Lu.factor_implicit_status). *)
  if !info <> 0 then begin
    let next = ref (!info - 1) in
    for lane = 0 to s - 1 do
      if step.(lane) < 0 then begin
        step.(lane) <- !next;
        incr next
      end
    done
  end;
  let perm = Array.make s 0 in
  for lane = 0 to s - 1 do
    perm.(step.(lane)) <- lane
  done;
  let verdict =
    if abft && !info = 0 then
      abft_verify w ~s ~srow:step
        ~src_of_row:(fun m -> perm.(m))
        ~tsrc:(fun lane -> lane)
    else Fault.Unchecked
  in
  (* Fused permutation: lane's row goes to its pivot position. *)
  let dest = Warp.addr_slot w 2 in
  for lane = 0 to p - 1 do
    dest.(lane) <- (if lane < s then step.(lane) else 0)
  done;
  store_tile w gout ~off ~st ~s ~dest;
  (perm, !info, verdict)

let kernel_explicit w gin gout ~off ~st ~s ~abft =
  let p = Warp.size w in
  load_tile w gin ~off ~st ~s;
  if abft then abft_encode w ~s;
  let perm = Array.init s (fun i -> i) in
  let active = Warp.mask_slot w 1 in
  let d = Warp.reg w t_bcast and urow = Warp.reg w t_urow in
  let from_piv = Warp.reg w t_vals and from_k = Warp.reg w t_vals2 in
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       Warp.fault_step w k;
       for lane = 0 to p - 1 do
         active.(lane) <- lane >= k && lane < s
       done;
       let piv = Warp.argmax_abs w ~active (Warp.reg w k) in
       if piv <> k then begin
         (* Physical row exchange: two lanes trade registers column by
            column through shuffles while the rest of the warp idles — the
            cost the implicit scheme removes. *)
         for j = 0 to p - 1 do
           let col = Warp.reg w j in
           Warp.broadcast_into w ~dst:from_piv col ~src:piv;
           Warp.broadcast_into w ~dst:from_k col ~src:k;
           col.(k) <- from_piv.(k);
           col.(piv) <- from_k.(piv)
         done;
         let tmp = perm.(k) in
         perm.(k) <- perm.(piv);
         perm.(piv) <- tmp
       end;
       Warp.broadcast_into w ~dst:d (Warp.reg w k) ~src:k;
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let below = Warp.mask_slot w 1 in
       for lane = 0 to p - 1 do
         below.(lane) <- lane > k
       done;
       Warp.div_into w ~active:below ~dst:(Warp.reg w k) (Warp.reg w k) d;
       for j = k + 1 to p - 1 do
         let col = Warp.reg w j in
         Warp.broadcast_into w ~dst:urow col ~src:k;
         Warp.fnma_into w ~active:below ~dst:col (Warp.reg w k) urow col
       done
     done
   with Exit -> ());
  let verdict = verify_in_place w ~s ~perm ~abft ~info:!info in
  let dest = Warp.addr_slot w 2 in
  for lane = 0 to p - 1 do
    dest.(lane) <- (if lane < s then lane else 0)
  done;
  store_tile w gout ~off ~st ~s ~dest;
  (perm, !info, verdict)

let kernel_nopivot w gin gout ~off ~st ~s ~abft =
  let p = Warp.size w in
  load_tile w gin ~off ~st ~s;
  if abft then abft_encode w ~s;
  let d = Warp.reg w t_bcast and urow = Warp.reg w t_urow in
  let below = Warp.mask_slot w 1 in
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       Warp.fault_step w k;
       Warp.broadcast_into w ~dst:d (Warp.reg w k) ~src:k;
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       for lane = 0 to p - 1 do
         below.(lane) <- lane > k
       done;
       Warp.div_into w ~active:below ~dst:(Warp.reg w k) (Warp.reg w k) d;
       for j = k + 1 to p - 1 do
         let col = Warp.reg w j in
         Warp.broadcast_into w ~dst:urow col ~src:k;
         Warp.fnma_into w ~active:below ~dst:col (Warp.reg w k) urow col
       done
     done
   with Exit -> ());
  let perm = Array.init s (fun i -> i) in
  let verdict = verify_in_place w ~s ~perm ~abft ~info:!info in
  let dest = Warp.addr_slot w 2 in
  for lane = 0 to p - 1 do
    dest.(lane) <- (if lane < s then lane else 0)
  done;
  store_tile w gout ~off ~st ~s ~dest;
  (perm, !info, verdict)

let factor ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?(pivoting = Implicit)
    ?faults ?(abft = false) ?obs (b : Batch.t) =
  check_batch cfg b;
  let gin = Gmem.of_array prec b.Batch.values in
  let gout = Gmem.create prec (Batch.total_values b) in
  (* Pivot vectors live in their own device buffer, one entry per row,
     laid out like the batch (a vector batch over the same sizes shares
     the matrix batch's cohort geometry). *)
  let pvec = Batch.vec_create ~layout:(Batch.layout b) b.Batch.sizes in
  let gpiv = Gmem.create prec (Array.length pvec.Batch.vvalues) in
  let pivots = Array.make b.Batch.count [||] in
  let info = Array.make b.Batch.count 0 in
  let verdicts = Array.make b.Batch.count Fault.Unchecked in
  let kernel w i =
    Staging.set_cohort w b i;
    let off = Batch.base b i
    and st = Batch.stride b i
    and s = b.Batch.sizes.(i) in
    let perm, inf, verdict =
      match pivoting with
      | Implicit -> kernel_implicit w gin gout ~off ~st ~s ~abft
      | Explicit -> kernel_explicit w gin gout ~off ~st ~s ~abft
      | No_pivoting -> kernel_nopivot w gin gout ~off ~st ~s ~abft
    in
    pivots.(i) <- perm;
    info.(i) <- inf;
    verdicts.(i) <- verdict;
    (* The pivot vector also goes to memory for the subsequent solves. *)
    let p = Warp.size w in
    let active = Warp.mask_slot w 0 in
    fill_lt w active s;
    let addrs = Warp.addr_slot w 0 and vals = Warp.reg w t_vals in
    for lane = 0 to p - 1 do
      addrs.(lane) <- Batch.vec_index pvec i (min (s - 1) lane);
      vals.(lane) <- (if lane < s then float_of_int perm.(lane) else 0.0)
    done;
    Warp.store w gpiv ~active addrs vals;
    Warp.credit_flops w (Flops.getrf s)
  in
  let name =
    match pivoting with
    | Implicit -> "getrf.implicit"
    | Explicit -> "getrf.explicit"
    | No_pivoting -> "getrf.nopivot"
  in
  (* Implicit and unpivoted streams are data-independent (store-address
     sets are permutation-invariant), so their counters cache; the
     explicit kernel's conditional row swaps make its instruction stream
     value-dependent — caching it would just rerun every problem twice.
     The salt carries the ABFT flag plus the layout-aware
     transaction-alignment class of both device buffers a problem
     addresses (tile and pivot vector) — coalescing charges depend on
     [offset mod] elements-per-transaction for blocked launches and on
     the cohort width for interleaved ones, and [Batch.salt_class] keeps
     the two layouts' classes disjoint so an entry recorded under one
     layout can never replay for the other. *)
  let cache =
    match pivoting with
    | Explicit -> None
    | Implicit | No_pivoting ->
      let align = Config.elements_per_transaction cfg prec in
      Some
        (fun i ->
          Staging.mix
            (Staging.mix (Bool.to_int abft) (Batch.salt_class b i ~align))
            (Batch.vec_salt_class pvec i ~align))
  in
  (* Direct execution: the cacheable schedules restated as smallblas
     batch-view loops, producing every observable effect of the kernel —
     packed factors, pivot vector (host and device), [info] — bitwise
     identically.  ABFT verdicts live in the interpreter, so ABFT launches
     keep the simulated path. *)
  let direct =
    match pivoting with
    | Explicit -> None
    | _ when abft -> None
    | Implicit ->
      let vin = Gmem.raw gin and vout = Gmem.raw gout and vpiv = Gmem.raw gpiv in
      Some
        (fun i ->
          let off = Batch.base b i
          and st = Batch.stride b i
          and s = b.Batch.sizes.(i) in
          let sc = Hostexec.get () in
          let perm = Array.make s 0 in
          let inf =
            Lu.factor_implicit_view ~prec ~src:vin ~dst:vout ~off ~stride:st
              ~n:s ~tile:sc.Hostexec.tile ~step:sc.Hostexec.ints ~perm ()
          in
          pivots.(i) <- perm;
          info.(i) <- inf;
          verdicts.(i) <- Fault.Unchecked;
          for lane = 0 to s - 1 do
            vpiv.(Batch.vec_index pvec i lane) <- float_of_int perm.(lane)
          done;
          inf)
    | No_pivoting ->
      let vin = Gmem.raw gin and vout = Gmem.raw gout and vpiv = Gmem.raw gpiv in
      Some
        (fun i ->
          let off = Batch.base b i
          and st = Batch.stride b i
          and s = b.Batch.sizes.(i) in
          let inf =
            Lu.factor_nopivot_view ~prec ~src:vin ~dst:vout ~off ~stride:st
              ~n:s ()
          in
          pivots.(i) <- Array.init s (fun k -> k);
          info.(i) <- inf;
          verdicts.(i) <- Fault.Unchecked;
          for lane = 0 to s - 1 do
            vpiv.(Batch.vec_index pvec i lane) <- float_of_int lane
          done;
          inf)
  in
  let stats =
    Sampling.run ~cfg ~pool ?faults ?obs ~name ?cache ?direct ~prec ~mode
      ~sizes:b.Batch.sizes ~kernel ()
  in
  Vblu_obs.Ctx.record_verdicts obs verdicts;
  let values = Gmem.to_array gout in
  let factors =
    (* Rebuild a batch sharing the shape (and layout) of the input. *)
    let out = Batch.create ~layout:(Batch.layout b) b.Batch.sizes in
    Array.blit values 0 out.Batch.values 0 (Array.length values);
    out
  in
  {
    factors;
    pivots;
    info;
    verdicts;
    stats;
    exact = (Sampling.effective_mode ?faults mode = Sampling.Exact);
  }
