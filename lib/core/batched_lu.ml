open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type pivoting = Implicit | Explicit | No_pivoting

type result = {
  factors : Batch.t;
  pivots : int array array;
  info : int array;
  verdicts : Fault.verdict array;
  stats : Launch.stats;
  exact : bool;
}

let check_batch cfg (b : Batch.t) =
  let w = cfg.Config.warp_size in
  Array.iter
    (fun s ->
      if s > w then
        invalid_arg
          (Printf.sprintf "Batched_lu: block size %d exceeds warp width %d" s w))
    b.Batch.sizes

(* Load the block at [off] of order [s] into the padded register tile:
   reg.(j).(lane) = element (lane, j); one coalesced load per column. *)
let load_tile w gin ~off ~s =
  let p = Warp.size w in
  let zero = Array.make p 0.0 in
  let active = Array.init p (fun lane -> lane < s) in
  let reg =
    Array.init p (fun j ->
        if j < s then
          Warp.load w gin ~active
            (Array.init p (fun lane -> off + (if lane < s then lane + (j * s) else 0)))
        else Array.copy zero)
  in
  Warp.round_barrier w;
  reg

let store_tile w gout ~off ~s ~dest reg =
  (* One store per column; [dest.(lane)] is the output row of lane's row —
     the identity for explicit pivoting, the accumulated permutation for
     implicit pivoting (the "combined row swap fused with the off-load"). *)
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  for j = 0 to s - 1 do
    let addrs =
      Array.init p (fun lane ->
          off + (if lane < s then dest.(lane) + (j * s) else 0))
    in
    Warp.store w gout ~active addrs reg.(j)
  done

(* ------------------------------------------------------------------ *)
(* ABFT row checksums (Huang-Abraham style, register-resident).

   Encode: before elimination each lane captures the row sum [t] of its
   row of A — and the absolute row sum [tabs] that scales the comparison
   tolerance.  Verify: at write-back the identity  A·e = Pᵀ·(L·(U·e))  is
   evaluated from the factors still in registers — y = U·e per packed row
   via masked column sums, then z = L·y via pivot-row broadcasts and FMAs
   — and compared lanewise against [t].  Both passes go through the
   normal warp ops, so the modelled ABFT overhead (the gap the
   [abft-overhead] perf table measures) is charged honestly. *)

let abft_tolerance prec ~s ~tabs ~t ~z =
  let eps = Precision.eps prec in
  1024.0 *. float_of_int s *. eps *. (tabs +. Float.abs t +. Float.abs z)

let abft_encode w reg ~s =
  let p = Warp.size w in
  let active = Array.init p (fun lane -> lane < s) in
  let t = ref (Array.copy reg.(0)) in
  let tabs = ref (Array.map Float.abs reg.(0)) in
  for j = 1 to s - 1 do
    t := Warp.add w ~active !t reg.(j);
    (* |·| is an operand modifier on GPU ALUs, so the abs-checksum pass
       costs the same single add per column. *)
    tabs := Warp.add w ~active !tabs (Array.map Float.abs reg.(j))
  done;
  (!t, !tabs)

(* [srow.(lane)] is the packed (pivot-order) row index lane holds — the
   accumulated [step] for the implicit kernel, the lane itself for
   explicit/no pivoting.  [src_of_row m] is the lane holding packed row
   [m]; [tsrc lane] the lane whose encoded checksum lane's packed row
   must reproduce. *)
let abft_verify w reg ~s ~srow ~src_of_row ~tsrc ~t ~tabs =
  let p = Warp.size w in
  let prec = Warp.prec w in
  let y = ref (Array.make p 0.0) in
  for j = 0 to s - 1 do
    let act = Array.init p (fun lane -> lane < s && srow.(lane) <= j) in
    y := Warp.add w ~active:act !y reg.(j)
  done;
  let z = ref (Array.copy !y) in
  for m = 0 to s - 2 do
    let ybc = Warp.broadcast w !y ~src:(src_of_row m) in
    let act = Array.init p (fun lane -> lane < s && srow.(lane) > m) in
    z := Warp.fma w ~active:act reg.(m) ybc !z
  done;
  (* One subtract + one predicated compare against the tolerance. *)
  Charge.fma w 2.0;
  let ok = ref true in
  for lane = 0 to s - 1 do
    let zv = !z.(lane) in
    let tv = t.(tsrc lane) and ta = tabs.(tsrc lane) in
    let tol = abft_tolerance prec ~s ~tabs:ta ~t:tv ~z:zv in
    if (not (Float.is_finite zv)) || Float.abs (zv -. tv) > tol then
      ok := false
  done;
  if !ok then Fault.Passed else Fault.Failed

(* Shared verify for the kernels whose rows end up physically in pivot
   order (explicit and no pivoting): lane [k] holds packed row [k], and
   [perm.(k)] names the original row whose checksum it must reproduce. *)
let verify_in_place w reg ~s ~perm ~chk ~info =
  match chk with
  | Some (t, tabs) when info = 0 ->
    let p = Warp.size w in
    let srow = Array.init p (fun lane -> if lane < s then lane else p + lane) in
    abft_verify w reg ~s ~srow
      ~src_of_row:(fun m -> m)
      ~tsrc:(fun lane -> perm.(lane))
      ~t ~tabs
  | _ -> Fault.Unchecked

(* All three kernels follow the "freeze on breakdown" rule: the first zero
   pivot at (0-based) step [k] sets [info = k + 1], the elimination loop is
   predicated off and the partial tile is written back unchanged from that
   point on.  The warp itself always completes — no exception ever leaves a
   kernel — so a poisoned problem cannot take down its batch (or, under
   [?pool], its worker domain).  The [Vblu_smallblas.Lu] [_status]
   references freeze at exactly the same point, keeping kernel and
   reference bit-for-bit identical even on singular blocks. *)

let kernel_implicit w gin gout ~off ~s ~abft =
  let p = Warp.size w in
  let reg = load_tile w gin ~off ~s in
  (* Checksums are encoded after the load and before any fault can arm
     (sites arm at [Warp.fault_step]), so a corruption always lands on
     checksum-protected state. *)
  let chk = if abft then Some (abft_encode w reg ~s) else None in
  (* step.(lane) = pivot step of this lane's row; padded lanes start
     "already pivoted" so they never win the pivot search. *)
  let step = Array.init p (fun lane -> if lane < s then -1 else p + lane) in
  let unpivoted () = Array.map (fun x -> x < 0) step in
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       Warp.fault_step w k;
       let mask = unpivoted () in
       let piv = Warp.argmax_abs w ~active:mask reg.(k) in
       let d = Warp.broadcast w reg.(k) ~src:piv in
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       step.(piv) <- k;
       let mask = unpivoted () in
       reg.(k) <- Warp.div w ~active:mask reg.(k) d;
       (* Trailing update over the full padded width: the eager-variant
          padding overhead of Figure 5. *)
       for j = k + 1 to p - 1 do
         let urow = Warp.broadcast w reg.(j) ~src:piv in
         reg.(j) <- Warp.fnma w ~active:mask reg.(k) urow reg.(j)
       done
     done
   with Exit -> ());
  (* On breakdown the still-unpivoted lanes take the remaining steps in
     increasing lane order, so the fused write-back permutation stays
     total (same rule as Lu.factor_implicit_status). *)
  if !info <> 0 then begin
    let next = ref (!info - 1) in
    for lane = 0 to s - 1 do
      if step.(lane) < 0 then begin
        step.(lane) <- !next;
        incr next
      end
    done
  end;
  let perm = Array.make s 0 in
  for lane = 0 to s - 1 do
    perm.(step.(lane)) <- lane
  done;
  let verdict =
    match chk with
    | Some (t, tabs) when !info = 0 ->
      abft_verify w reg ~s ~srow:step
        ~src_of_row:(fun m -> perm.(m))
        ~tsrc:(fun lane -> lane)
        ~t ~tabs
    | _ -> Fault.Unchecked
  in
  (* Fused permutation: lane's row goes to its pivot position. *)
  let dest = Array.init p (fun lane -> if lane < s then step.(lane) else 0) in
  store_tile w gout ~off ~s ~dest reg;
  (perm, !info, verdict)

let kernel_explicit w gin gout ~off ~s ~abft =
  let p = Warp.size w in
  let reg = load_tile w gin ~off ~s in
  let chk = if abft then Some (abft_encode w reg ~s) else None in
  let perm = Array.init s (fun i -> i) in
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       Warp.fault_step w k;
       let active = Array.init p (fun lane -> lane >= k && lane < s) in
       let piv = Warp.argmax_abs w ~active reg.(k) in
       if piv <> k then begin
         (* Physical row exchange: two lanes trade registers column by
            column through shuffles while the rest of the warp idles — the
            cost the implicit scheme removes. *)
         for j = 0 to p - 1 do
           let from_piv = Warp.broadcast w reg.(j) ~src:piv in
           let from_k = Warp.broadcast w reg.(j) ~src:k in
           let r = Array.copy reg.(j) in
           r.(k) <- from_piv.(k);
           r.(piv) <- from_k.(piv);
           reg.(j) <- r
         done;
         let tmp = perm.(k) in
         perm.(k) <- perm.(piv);
         perm.(piv) <- tmp
       end;
       let d = Warp.broadcast w reg.(k) ~src:k in
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let below = Array.init p (fun lane -> lane > k) in
       reg.(k) <- Warp.div w ~active:below reg.(k) d;
       for j = k + 1 to p - 1 do
         let urow = Warp.broadcast w reg.(j) ~src:k in
         reg.(j) <- Warp.fnma w ~active:below reg.(k) urow reg.(j)
       done
     done
   with Exit -> ());
  let verdict = verify_in_place w reg ~s ~perm ~chk ~info:!info in
  let dest = Array.init p (fun lane -> if lane < s then lane else 0) in
  store_tile w gout ~off ~s ~dest reg;
  (perm, !info, verdict)

let kernel_nopivot w gin gout ~off ~s ~abft =
  let p = Warp.size w in
  let reg = load_tile w gin ~off ~s in
  let chk = if abft then Some (abft_encode w reg ~s) else None in
  let info = ref 0 in
  (try
     for k = 0 to s - 1 do
       Warp.fault_step w k;
       let d = Warp.broadcast w reg.(k) ~src:k in
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let below = Array.init p (fun lane -> lane > k) in
       reg.(k) <- Warp.div w ~active:below reg.(k) d;
       for j = k + 1 to p - 1 do
         let urow = Warp.broadcast w reg.(j) ~src:k in
         reg.(j) <- Warp.fnma w ~active:below reg.(k) urow reg.(j)
       done
     done
   with Exit -> ());
  let perm = Array.init s (fun i -> i) in
  let verdict = verify_in_place w reg ~s ~perm ~chk ~info:!info in
  let dest = Array.init p (fun lane -> if lane < s then lane else 0) in
  store_tile w gout ~off ~s ~dest reg;
  (perm, !info, verdict)

let factor ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?(pivoting = Implicit)
    ?faults ?(abft = false) ?obs (b : Batch.t) =
  check_batch cfg b;
  let gin = Gmem.of_array prec b.Batch.values in
  let gout = Gmem.create prec (Batch.total_values b) in
  (* Pivot vectors live in their own device buffer, one entry per row. *)
  let poffsets = Array.make (b.Batch.count + 1) 0 in
  for i = 0 to b.Batch.count - 1 do
    poffsets.(i + 1) <- poffsets.(i) + b.Batch.sizes.(i)
  done;
  let gpiv = Gmem.create prec poffsets.(b.Batch.count) in
  let pivots = Array.make b.Batch.count [||] in
  let info = Array.make b.Batch.count 0 in
  let verdicts = Array.make b.Batch.count Fault.Unchecked in
  let kernel w i =
    let off = b.Batch.offsets.(i) and s = b.Batch.sizes.(i) in
    let perm, inf, verdict =
      match pivoting with
      | Implicit -> kernel_implicit w gin gout ~off ~s ~abft
      | Explicit -> kernel_explicit w gin gout ~off ~s ~abft
      | No_pivoting -> kernel_nopivot w gin gout ~off ~s ~abft
    in
    pivots.(i) <- perm;
    info.(i) <- inf;
    verdicts.(i) <- verdict;
    (* The pivot vector also goes to memory for the subsequent solves. *)
    let p = Warp.size w in
    let active = Array.init p (fun lane -> lane < s) in
    Warp.store w gpiv ~active
      (Array.init p (fun lane -> poffsets.(i) + min (s - 1) lane))
      (Array.init p (fun lane -> if lane < s then float_of_int perm.(lane) else 0.0));
    Counter.credit_flops (Warp.counter w) (Flops.getrf s)
  in
  let name =
    match pivoting with
    | Implicit -> "getrf.implicit"
    | Explicit -> "getrf.explicit"
    | No_pivoting -> "getrf.nopivot"
  in
  let stats =
    Sampling.run ~cfg ~pool ?faults ?obs ~name ~prec ~mode ~sizes:b.Batch.sizes
      ~kernel ()
  in
  Vblu_obs.Ctx.record_verdicts obs verdicts;
  let values = Gmem.to_array gout in
  let factors =
    (* Rebuild a batch sharing the shape of the input. *)
    let out = Batch.create b.Batch.sizes in
    Array.blit values 0 out.Batch.values 0 (Array.length values);
    out
  in
  { factors; pivots; info; verdicts; stats; exact = (mode = Sampling.Exact) }
