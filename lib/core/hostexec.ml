(* Per-domain scratch for the direct-execution fast path: the batch-view
   numerics need a dense tile (implicit-pivoting LU) and two small int
   arrays, and allocating them per problem would forfeit the allocation-free
   hot path the warp arena bought.  One buffer set per domain suffices —
   direct closures run to completion inside [Sampling.run]'s per-problem
   call, never concurrently within a domain. *)

type t = { tile : float array; ints : int array; ints2 : int array }

let max_n = 32

let scratch_key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        tile = Array.make (max_n * max_n) 0.0;
        ints = Array.make max_n 0;
        ints2 = Array.make max_n 0;
      })

let get () = Domain.DLS.get scratch_key
