(** Variable-size batched GEMM for small square blocks.

    The paper's introduction frames batched kernels as the future of BLAS
    functionality ("batched routines … expected to cover a significant
    fraction of the functionality currently supported by BLAS"); this is
    the level-3 representative in the same register style as the LU
    kernel: one warp per problem, thread [i] holds row [i] of [a], [b] and
    [c] in registers, and every multiply-accumulate operand arrives
    through one shuffle — [2 m³] flops from [3 m²] memory traffic.

    Inside this project it also serves the inversion-based block-Jacobi
    variant when preconditioned blocks must be composed (e.g. building
    [D⁻¹·E] coupling products in ablation studies). *)

open Vblu_smallblas
open Vblu_simt

type result = {
  products : Batch.t;
      (** per-block [alpha·a·b + beta·c]; complete in [Exact] mode. *)
  stats : Launch.stats;
  exact : bool;
}

val multiply :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  ?alpha:float ->
  ?beta:float ->
  a:Batch.t ->
  b:Batch.t ->
  ?c:Batch.t ->
  unit ->
  result
(** [multiply ~a ~b ()] computes [alpha·aᵢ·bᵢ + beta·cᵢ] for every block
    [i] (defaults [alpha = 1], [beta = 0], [c] zero).  All batches must
    share sizes.  @raise Invalid_argument otherwise. *)
