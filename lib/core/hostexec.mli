(** Per-domain scratch buffers for the direct-execution fast path.

    The batch-view numerics ([Vblu_smallblas]'s [*_view] functions) take
    caller-owned scratch so their inner loops stay allocation-free; this
    module owns one reusable buffer set per domain, sized for the largest
    warp-kernel problem (n = 32).  Direct closures run sequentially within
    a domain (one per problem, to completion), so a single set per domain
    is race-free. *)

type t = {
  tile : float array;  (** [32 × 32] dense scratch tile. *)
  ints : int array;  (** length-32 integer scratch (e.g. pivot steps). *)
  ints2 : int array;  (** second length-32 integer scratch (e.g. perm). *)
}

val max_n : int
(** The largest problem size the scratch accommodates (32, the warp
    width every kernel in this project assumes). *)

val get : unit -> t
(** This domain's scratch. *)
