(** Counter charging for analytic kernels.

    The small-size LU and TRSV kernels are simulated functionally, lane by
    lane.  The comparison kernels (Gauss-Huard, Gauss-Jordan, the
    cuBLAS-model baseline) compute their numerics on the CPU reference
    path and charge their instruction and memory-traffic counts through
    these helpers instead — the counts follow the kernels' documented
    structure, and DESIGN.md records them as analytic models. *)

open Vblu_simt

val fma : Warp.t -> float -> unit
(** [fma w n] charges [n] warp-wide FMA/ALU instructions. *)

val div : Warp.t -> float -> unit

val shfl : Warp.t -> float -> unit

val smem : Warp.t -> float -> unit
(** Shared-memory access slots (conflict serializations included by the
    caller). *)

val reduction : Warp.t -> unit
(** A warp tree reduction: [log2 32] shuffle + ALU pairs. *)

val gmem_coalesced : Warp.t -> elems:int -> unit
(** One access instruction touching [elems] consecutive scalars: the
    minimal number of transactions.  Under a warp cohort context
    ([Warp.set_cohort], interleaved layouts) the charge becomes this
    problem's [1/width] share of the cohort's collective access. *)

val gmem_strided_read : Warp.t -> elems:int -> stride_bytes:int -> unit
(** A non-coalesced read of [elems] scalars [stride_bytes] apart.  Issue
    cost scales with the lane-address divergence (transaction replays),
    but the DRAM traffic is only the touched footprint: consecutive steps
    of a row-walking kernel re-hit the same sectors and the cache absorbs
    the re-reads.  Under a cohort context each element is a width-wide
    contiguous strip shared by the cohort, charged amortized — strided
    reads stop paying one transaction per element. *)

val gmem_strided_write : Warp.t -> elems:int -> stride_bytes:int -> unit
(** A non-coalesced write: replays {e and} one full sector of traffic per
    lane — stores cannot be coalesced by the cache. *)

val round : Warp.t -> unit
(** One dependent memory round-trip (latency term). *)
