open Vblu_smallblas
open Vblu_simt

type result = {
  inverses : Matrix.t array;
  info : int array;
  stats : Launch.stats;
  exact : bool;
}

type apply_result = {
  products : Batch.vec;
  apply_stats : Launch.stats;
  apply_exact : bool;
}

let charge_invert w ~s =
  let p = Warp.size w in
  for _j = 1 to s do
    Charge.gmem_coalesced w ~elems:s
  done;
  Charge.round w;
  for _k = 0 to s - 1 do
    (* Implicit pivot search, the pivot-row broadcast-and-scale, then a
       rank-1 update of the whole padded tile (GJE transforms every row at
       every step — no lazy saving, hence the 2n³ cost). *)
    Charge.reduction w;
    Charge.div w 1.0;
    for _j = 0 to p - 1 do
      Charge.shfl w 1.0;
      Charge.fma w 1.0
    done
  done;
  for _j = 1 to s do
    Charge.gmem_coalesced w ~elems:s
  done;
  Warp.credit_flops w (Flops.invert s)

let invert ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs (b : Batch.t) =
  Array.iter
    (fun s ->
      if s > cfg.Config.warp_size then
        invalid_arg "Batched_gje.invert: block exceeds warp width")
    b.Batch.sizes;
  let inverses = Array.make b.Batch.count (Matrix.identity 1) in
  let info = Array.make b.Batch.count 0 in
  let kernel w i =
    Staging.set_cohort w b i;
    let inv, inf = Gauss_jordan.invert_status ~prec (Batch.get_matrix b i) in
    inverses.(i) <- inv;
    info.(i) <- inf;
    (* Full charge regardless of breakdown — data-independent instruction
       stream, like the register kernels predicating off a dead problem. *)
    charge_invert w ~s:b.Batch.sizes.(i)
  in
  (* The analytic charge stream is a pure function of the block size and
     the cohort width (elems-based coalescing sees no raw addresses), so
     the layout tag is the whole salt. *)
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"gje.invert"
      ~cache:(fun i -> Batch.cohort_salt b i) ~prec ~mode ~sizes:b.Batch.sizes
      ~kernel ()
  in
  { inverses; info; stats; exact = (mode = Sampling.Exact) }

let charge_apply w ~s =
  Charge.gmem_coalesced w ~elems:s;
  Charge.round w;
  for _j = 1 to s do
    (* One coalesced column load, one shuffle of x_j, one FMA. *)
    Charge.gmem_coalesced w ~elems:s;
    Charge.shfl w 1.0;
    Charge.fma w 1.0
  done;
  Charge.gmem_coalesced w ~elems:s;
  Warp.credit_flops w (Flops.gemv s)

let apply ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?obs (r : result)
    (rhs : Batch.vec) =
  if Array.length r.inverses <> rhs.Batch.vcount then
    invalid_arg "Batched_gje.apply: batch count mismatch";
  let products = Batch.vec_create ~layout:rhs.Batch.vlayout rhs.Batch.vsizes in
  let kernel w i =
    Staging.set_vec_cohort w rhs i;
    let x = Matrix.gemv ~prec r.inverses.(i) (Batch.vec_get rhs i) in
    Batch.vec_set products i x;
    charge_apply w ~s:rhs.Batch.vsizes.(i)
  in
  let stats =
    Sampling.run ~cfg ~pool ?obs ~name:"gje.apply"
      ~cache:(fun i -> Batch.vec_cohort_salt rhs i) ~prec ~mode
      ~sizes:rhs.Batch.vsizes ~kernel ()
  in
  { products; apply_stats = stats; apply_exact = (mode = Sampling.Exact) }
