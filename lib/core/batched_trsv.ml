open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type variant = Eager | Lazy

type result = {
  solutions : Batch.vec;
  info : int array;
  verdicts : Fault.verdict array;
  stats : Launch.stats;
  exact : bool;
}

let lane_active p s = Array.init p (fun lane -> lane < s)

(* ABFT for the triangular solves: with [x] solved, re-evaluate
   r = L·(U·x) from fresh column loads (the factors offer no reuse here,
   so detection honestly re-reads them — roughly doubling the kernel's
   traffic) and compare lanewise against the permuted right-hand side
   captured at load time, before any fault can arm. *)
let abft_check w gmat ~moff ~s ~b0 x =
  let p = Warp.size w in
  let prec = Warp.prec w in
  let ux = ref (Array.make p 0.0) in
  let uabs = Array.make p 0.0 in
  for j = 0 to s - 1 do
    let act = Array.init p (fun lane -> lane <= j && lane < s) in
    let col =
      Warp.load w gmat ~active:act
        (Array.init p (fun lane -> moff + min lane (s - 1) + (j * s)))
    in
    let xj = Warp.broadcast w x ~src:j in
    ux := Warp.fma w ~active:act col xj !ux;
    for lane = 0 to min j (s - 1) do
      uabs.(lane) <- uabs.(lane) +. Float.abs (col.(lane) *. xj.(lane))
    done
  done;
  let r = ref (Array.copy !ux) in
  let rabs = Array.copy uabs in
  for j = 0 to s - 2 do
    let act = Array.init p (fun lane -> lane > j && lane < s) in
    let col =
      Warp.load w gmat ~active:act
        (Array.init p (fun lane -> moff + (if lane < s then lane else 0) + (j * s)))
    in
    let uxj = Warp.broadcast w !ux ~src:j in
    r := Warp.fma w ~active:act col uxj !r;
    for lane = j + 1 to s - 1 do
      rabs.(lane) <- rabs.(lane) +. Float.abs (col.(lane) *. uxj.(lane))
    done
  done;
  (* The |·|-tracking and the final compare, charged as one fused pass. *)
  Charge.fma w (float_of_int (2 * s));
  let eps = Precision.eps prec in
  let ok = ref true in
  for lane = 0 to s - 1 do
    let rv = !r.(lane) and bv = b0.(lane) in
    let tol =
      1024.0 *. float_of_int s *. eps
      *. (rabs.(lane) +. Float.abs bv +. Float.abs rv)
    in
    if (not (Float.is_finite rv)) || Float.abs (rv -. bv) > tol then ok := false
  done;
  if !ok then Fault.Passed else Fault.Failed

(* Eager (AXPY) schedule: per step one coalesced column load, one shuffle
   broadcast of the freshly final solution element, one predicated FNMA. *)
let kernel_eager w gmat gvec gout ~moff ~voff ~s ~perm ~abft =
  let p = Warp.size w in
  let active = lane_active p s in
  (* Fused permutation on load: lane k reads b(perm(k)). *)
  let b =
    Warp.load w gvec ~active
      (Array.init p (fun lane -> voff + if lane < s then perm.(lane) else 0))
  in
  Warp.round_barrier w;
  (* Snapshot of P·b for the ABFT compare — taken before any fault site
     can arm (sites arm at [Warp.fault_step]). *)
  let b0 = if abft then Array.copy b else [||] in
  let b = ref b in
  (* Unit lower triangular solve. *)
  for k = 0 to s - 2 do
    Warp.fault_step w k;
    let below = Array.init p (fun lane -> lane > k && lane < s) in
    let col =
      Warp.load w gmat ~active:below
        (Array.init p (fun lane -> moff + (if lane < s then lane else 0) + (k * s)))
    in
    let bk = Warp.broadcast w !b ~src:k in
    b := Warp.fnma w ~active:below col bk !b
  done;
  (* Upper triangular solve.  A zero diagonal freezes the sweep: info is
     set, the remaining steps are predicated off, and the partial solution
     (steps s-1..k+1 applied) is stored back — the warp always completes. *)
  let info = ref 0 in
  (try
     for k = s - 1 downto 0 do
       Warp.fault_step w k;
       let upto = Array.init p (fun lane -> lane <= k) in
       let col =
         Warp.load w gmat ~active:upto
           (Array.init p (fun lane -> moff + min lane (s - 1) + (k * s)))
       in
       let d = Warp.broadcast w col ~src:k in
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let only_k = Array.init p (fun lane -> lane = k) in
       b := Warp.div w ~active:only_k !b d;
       let bk = Warp.broadcast w !b ~src:k in
       let above = Array.init p (fun lane -> lane < k) in
       b := Warp.fnma w ~active:above col bk !b
     done
   with Exit -> ());
  let verdict =
    if abft && !info = 0 then abft_check w gmat ~moff ~s ~b0 !b
    else Fault.Unchecked
  in
  Warp.store w gout ~active (Array.init p (fun lane -> voff + min lane (s - 1))) !b;
  Counter.credit_flops (Warp.counter w) (Flops.trsv_pair s);
  (!info, verdict)

(* Lazy (DOT) schedule: per step one non-coalesced row load and a warp
   reduction; the ablation showing why the paper prefers the eager form. *)
let kernel_lazy w gmat gvec gout ~moff ~voff ~s ~perm ~abft =
  let p = Warp.size w in
  let active = lane_active p s in
  let b =
    Warp.load w gvec ~active
      (Array.init p (fun lane -> voff + if lane < s then perm.(lane) else 0))
  in
  Warp.round_barrier w;
  let b0 = if abft then Array.copy b else [||] in
  let b = ref b in
  let dot_row ~upto_excl k =
    (* Row k, elements [0..upto_excl), lanewise product then a tree
       reduction (log2 p shuffle+add rounds, charged like argmax). *)
    let act = Array.init p (fun lane -> lane < upto_excl) in
    let row =
      Warp.load w gmat ~active:act
        (Array.init p (fun lane -> moff + k + (min lane (s - 1) * s)))
    in
    let prod = Warp.mul w ~active:act row !b in
    let rounds = 5 in
    let c = Warp.counter w in
    c.Counter.shfl_instrs <- c.Counter.shfl_instrs +. float_of_int rounds;
    c.Counter.fma_instrs <- c.Counter.fma_instrs +. float_of_int rounds;
    let acc = ref 0.0 in
    for lane = 0 to upto_excl - 1 do
      acc := Precision.add (Warp.prec w) prod.(lane) !acc
    done;
    !acc
  in
  (* Unit lower solve, lazy: b(k) -= L(k, 0..k-1) · b(0..k-1). *)
  for k = 1 to s - 1 do
    Warp.fault_step w k;
    let d = dot_row ~upto_excl:k k in
    let bnew = Array.copy !b in
    bnew.(k) <- Precision.sub (Warp.prec w) !b.(k) d;
    (* One predicated subtract on the owning lane. *)
    let c = Warp.counter w in
    c.Counter.fma_instrs <- c.Counter.fma_instrs +. 1.0;
    b := bnew
  done;
  (* Upper solve, lazy.  Same freeze-on-breakdown rule as the eager
     schedule: a zero diagonal sets info and predicates off the rest. *)
  let info = ref 0 in
  (try
     for k = s - 1 downto 0 do
       Warp.fault_step w k;
       (* The diagonal element arrives with the row load of step k via
          lane k — the load mask includes lane k so the access is charged
          like every other row element. *)
       let ld_act = Array.init p (fun lane -> lane >= k && lane < s) in
       let row =
         Warp.load w gmat ~active:ld_act
           (Array.init p (fun lane -> moff + k + (min lane (s - 1) * s)))
       in
       let act = Array.init p (fun lane -> lane > k && lane < s) in
       let prod = Warp.mul w ~active:act row !b in
       let c = Warp.counter w in
       c.Counter.shfl_instrs <- c.Counter.shfl_instrs +. 5.0;
       c.Counter.fma_instrs <- c.Counter.fma_instrs +. 5.0;
       let acc = ref 0.0 in
       for lane = k + 1 to s - 1 do
         acc := Precision.add (Warp.prec w) prod.(lane) !acc
       done;
       let diag = row.(k) in
       if diag = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       let bnew = Array.copy !b in
       bnew.(k) <-
         Precision.div (Warp.prec w)
           (Precision.sub (Warp.prec w) !b.(k) !acc)
           diag;
       c.Counter.div_instrs <- c.Counter.div_instrs +. 1.0;
       b := bnew
     done
   with Exit -> ());
  let verdict =
    if abft && !info = 0 then abft_check w gmat ~moff ~s ~b0 !b
    else Fault.Unchecked
  in
  Warp.store w gout ~active (Array.init p (fun lane -> voff + min lane (s - 1))) !b;
  Counter.credit_flops (Warp.counter w) (Flops.trsv_pair s);
  (!info, verdict)

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?(variant = Eager)
    ?faults ?(abft = false) ?obs ~(factors : Batch.t) ~pivots (rhs : Batch.vec) =
  if factors.Batch.count <> rhs.Batch.vcount then
    invalid_arg "Batched_trsv.solve: batch count mismatch";
  if Array.length pivots <> factors.Batch.count then
    invalid_arg
      (Printf.sprintf
         "Batched_trsv.solve: pivots array has %d entries for %d blocks"
         (Array.length pivots) factors.Batch.count);
  Array.iteri
    (fun i s ->
      if rhs.Batch.vsizes.(i) <> s then
        invalid_arg "Batched_trsv.solve: block size mismatch";
      if Array.length pivots.(i) <> 0 && Array.length pivots.(i) <> s then
        invalid_arg "Batched_trsv.solve: pivot length mismatch")
    factors.Batch.sizes;
  let gmat = Gmem.of_array prec factors.Batch.values in
  let gvec = Gmem.of_array prec rhs.Batch.vvalues in
  let gout = Gmem.create prec (Array.length rhs.Batch.vvalues) in
  let info = Array.make factors.Batch.count 0 in
  let verdicts = Array.make factors.Batch.count Fault.Unchecked in
  let kernel w i =
    let s = factors.Batch.sizes.(i) in
    let perm =
      if Array.length pivots.(i) = 0 then Array.init s (fun k -> k)
      else pivots.(i)
    in
    let moff = factors.Batch.offsets.(i) and voff = rhs.Batch.voffsets.(i) in
    let inf, verdict =
      match variant with
      | Eager -> kernel_eager w gmat gvec gout ~moff ~voff ~s ~perm ~abft
      | Lazy -> kernel_lazy w gmat gvec gout ~moff ~voff ~s ~perm ~abft
    in
    info.(i) <- inf;
    verdicts.(i) <- verdict
  in
  let name =
    match variant with Eager -> "trsv.eager" | Lazy -> "trsv.lazy"
  in
  let stats =
    Sampling.run ~cfg ~pool ?faults ?obs ~name ~prec ~mode
      ~sizes:factors.Batch.sizes ~kernel ()
  in
  Vblu_obs.Ctx.record_verdicts obs verdicts;
  let solutions =
    let out = Batch.vec_create rhs.Batch.vsizes in
    let values = Gmem.to_array gout in
    Array.blit values 0 out.Batch.vvalues 0 (Array.length values);
    out
  in
  { solutions; info; verdicts; stats; exact = (mode = Sampling.Exact) }
