open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type variant = Eager | Lazy

type result = {
  solutions : Batch.vec;
  info : int array;
  verdicts : Fault.verdict array;
  stats : Launch.stats;
  exact : bool;
}

(* Arena slot map: reg 0 = b (solution in progress), 1 = P·b snapshot for
   ABFT, 2 = column/row load, 3 = diagonal broadcast, 4 = solution-element
   broadcast, 5-9 = ABFT temporaries, 10 = lazy dot products.  Mask 0 =
   lane<s, 1 = step-local, 2 = ABFT-local.  Addr 0 = generic addresses. *)
let t_b = 0
let t_b0 = 1
let t_col = 2
let t_d = 3
let t_bk = 4
let t_ux = 5
let t_uabs = 6
let t_r = 7
let t_rabs = 8
let t_xj = 9
let t_prod = 10

let fill_lt w m s =
  let p = Warp.size w in
  for lane = 0 to p - 1 do
    m.(lane) <- lane < s
  done

(* ABFT for the triangular solves: with [x] solved, re-evaluate
   r = L·(U·x) from fresh column loads (the factors offer no reuse here,
   so detection honestly re-reads them — roughly doubling the kernel's
   traffic) and compare lanewise against the permuted right-hand side
   captured at load time, before any fault can arm. *)
let abft_check w gmat ~moff ~mst ~s ~b0 x =
  let p = Warp.size w in
  let prec = Warp.prec w in
  let ux = Warp.reg w t_ux
  and uabs = Warp.reg w t_uabs
  and col = Warp.reg w t_col
  and xj = Warp.reg w t_xj
  and r = Warp.reg w t_r
  and rabs = Warp.reg w t_rabs in
  let act = Warp.mask_slot w 2 in
  let addrs = Warp.addr_slot w 0 in
  Array.fill ux 0 p 0.0;
  Array.fill uabs 0 p 0.0;
  for j = 0 to s - 1 do
    for lane = 0 to p - 1 do
      act.(lane) <- lane <= j && lane < s;
      addrs.(lane) <- moff + (mst * (min lane (s - 1) + (j * s)))
    done;
    Warp.load_into w gmat ~active:act addrs ~dst:col;
    Warp.broadcast_into w ~dst:xj x ~src:j;
    Warp.fma_into w ~active:act ~dst:ux col xj ux;
    for lane = 0 to min j (s - 1) do
      uabs.(lane) <- uabs.(lane) +. Float.abs (col.(lane) *. xj.(lane))
    done
  done;
  Array.blit ux 0 r 0 p;
  Array.blit uabs 0 rabs 0 p;
  for j = 0 to s - 2 do
    for lane = 0 to p - 1 do
      act.(lane) <- lane > j && lane < s;
      addrs.(lane) <- moff + (mst * ((if lane < s then lane else 0) + (j * s)))
    done;
    Warp.load_into w gmat ~active:act addrs ~dst:col;
    Warp.broadcast_into w ~dst:xj ux ~src:j;
    Warp.fma_into w ~active:act ~dst:r col xj r;
    for lane = j + 1 to s - 1 do
      rabs.(lane) <- rabs.(lane) +. Float.abs (col.(lane) *. xj.(lane))
    done
  done;
  (* The |·|-tracking and the final compare, charged as one fused pass. *)
  Charge.fma w (float_of_int (2 * s));
  let eps = Precision.eps prec in
  let ok = ref true in
  for lane = 0 to s - 1 do
    let rv = r.(lane) and bv = b0.(lane) in
    let tol =
      1024.0 *. float_of_int s *. eps
      *. (rabs.(lane) +. Float.abs bv +. Float.abs rv)
    in
    if (not (Float.is_finite rv)) || Float.abs (rv -. bv) > tol then ok := false
  done;
  if !ok then Fault.Passed else Fault.Failed

(* Eager (AXPY) schedule: per step one coalesced column load, one shuffle
   broadcast of the freshly final solution element, one predicated FNMA. *)
let kernel_eager w gmat gvec gout ~moff ~mst ~voff ~vst ~s ~perm ~abft =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  fill_lt w active s;
  let addrs = Warp.addr_slot w 0 in
  let b = Warp.reg w t_b
  and col = Warp.reg w t_col
  and d = Warp.reg w t_d
  and bk = Warp.reg w t_bk in
  let step = Warp.mask_slot w 1 in
  (* Fused permutation on load: lane k reads b(perm(k)). *)
  for lane = 0 to p - 1 do
    addrs.(lane) <- (voff + if lane < s then vst * perm.(lane) else 0)
  done;
  Warp.load_into w gvec ~active addrs ~dst:b;
  Warp.round_barrier w;
  (* Snapshot of P·b for the ABFT compare — taken before any fault site
     can arm (sites arm at [Warp.fault_step]). *)
  let b0 = Warp.reg w t_b0 in
  if abft then Array.blit b 0 b0 0 p;
  (* Unit lower triangular solve. *)
  for k = 0 to s - 2 do
    Warp.fault_step w k;
    for lane = 0 to p - 1 do
      step.(lane) <- lane > k && lane < s;
      addrs.(lane) <- moff + (mst * ((if lane < s then lane else 0) + (k * s)))
    done;
    Warp.load_into w gmat ~active:step addrs ~dst:col;
    Warp.broadcast_into w ~dst:bk b ~src:k;
    Warp.fnma_into w ~active:step ~dst:b col bk b
  done;
  (* Upper triangular solve.  A zero diagonal freezes the sweep: info is
     set, the remaining steps are predicated off, and the partial solution
     (steps s-1..k+1 applied) is stored back — the warp always completes. *)
  let info = ref 0 in
  (try
     for k = s - 1 downto 0 do
       Warp.fault_step w k;
       for lane = 0 to p - 1 do
         step.(lane) <- lane <= k;
         addrs.(lane) <- moff + (mst * (min lane (s - 1) + (k * s)))
       done;
       Warp.load_into w gmat ~active:step addrs ~dst:col;
       Warp.broadcast_into w ~dst:d col ~src:k;
       if d.(0) = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       for lane = 0 to p - 1 do
         step.(lane) <- lane = k
       done;
       Warp.div_into w ~active:step ~dst:b b d;
       Warp.broadcast_into w ~dst:bk b ~src:k;
       for lane = 0 to p - 1 do
         step.(lane) <- lane < k
       done;
       Warp.fnma_into w ~active:step ~dst:b col bk b
     done
   with Exit -> ());
  let verdict =
    if abft && !info = 0 then abft_check w gmat ~moff ~mst ~s ~b0 b
    else Fault.Unchecked
  in
  for lane = 0 to p - 1 do
    addrs.(lane) <- voff + (vst * min lane (s - 1))
  done;
  Warp.store w gout ~active addrs b;
  Warp.credit_flops w (Flops.trsv_pair s);
  (!info, verdict)

(* Lazy (DOT) schedule: per step one non-coalesced row load and a warp
   reduction; the ablation showing why the paper prefers the eager form. *)
let kernel_lazy w gmat gvec gout ~moff ~mst ~voff ~vst ~s ~perm ~abft =
  let p = Warp.size w in
  let active = Warp.mask_slot w 0 in
  fill_lt w active s;
  let addrs = Warp.addr_slot w 0 in
  let b = Warp.reg w t_b
  and row = Warp.reg w t_col
  and prod = Warp.reg w t_prod in
  let act = Warp.mask_slot w 1 in
  for lane = 0 to p - 1 do
    addrs.(lane) <- (voff + if lane < s then vst * perm.(lane) else 0)
  done;
  Warp.load_into w gvec ~active addrs ~dst:b;
  Warp.round_barrier w;
  let b0 = Warp.reg w t_b0 in
  if abft then Array.blit b 0 b0 0 p;
  let dot_row ~upto_excl k =
    (* Row k, elements [0..upto_excl), lanewise product then a tree
       reduction (log2 p shuffle+add rounds, charged like argmax). *)
    for lane = 0 to p - 1 do
      act.(lane) <- lane < upto_excl;
      addrs.(lane) <- moff + (mst * (k + (min lane (s - 1) * s)))
    done;
    Warp.load_into w gmat ~active:act addrs ~dst:row;
    Warp.mul_into w ~active:act ~dst:prod row b;
    let rounds = 5 in
    Warp.charge_shfl w (float_of_int rounds);
    Warp.charge_fma w (float_of_int rounds);
    let acc = ref 0.0 in
    for lane = 0 to upto_excl - 1 do
      acc := Precision.add (Warp.prec w) prod.(lane) !acc
    done;
    !acc
  in
  (* Unit lower solve, lazy: b(k) -= L(k, 0..k-1) · b(0..k-1). *)
  for k = 1 to s - 1 do
    Warp.fault_step w k;
    let d = dot_row ~upto_excl:k k in
    b.(k) <- Precision.sub (Warp.prec w) b.(k) d;
    (* One predicated subtract on the owning lane. *)
    Warp.charge_fma w 1.0
  done;
  (* Upper solve, lazy.  Same freeze-on-breakdown rule as the eager
     schedule: a zero diagonal sets info and predicates off the rest. *)
  let info = ref 0 in
  (try
     for k = s - 1 downto 0 do
       Warp.fault_step w k;
       (* The diagonal element arrives with the row load of step k via
          lane k — the load mask includes lane k so the access is charged
          like every other row element. *)
       for lane = 0 to p - 1 do
         act.(lane) <- lane >= k && lane < s;
         addrs.(lane) <- moff + (mst * (k + (min lane (s - 1) * s)))
       done;
       Warp.load_into w gmat ~active:act addrs ~dst:row;
       for lane = 0 to p - 1 do
         act.(lane) <- lane > k && lane < s
       done;
       Warp.mul_into w ~active:act ~dst:prod row b;
       Warp.charge_shfl w 5.0;
       Warp.charge_fma w 5.0;
       let acc = ref 0.0 in
       for lane = k + 1 to s - 1 do
         acc := Precision.add (Warp.prec w) prod.(lane) !acc
       done;
       let diag = row.(k) in
       if diag = 0.0 then begin
         info := k + 1;
         raise Exit
       end;
       b.(k) <-
         Precision.div (Warp.prec w)
           (Precision.sub (Warp.prec w) b.(k) !acc)
           diag;
       Warp.charge_div w 1.0
     done
   with Exit -> ());
  let verdict =
    if abft && !info = 0 then abft_check w gmat ~moff ~mst ~s ~b0 b
    else Fault.Unchecked
  in
  for lane = 0 to p - 1 do
    addrs.(lane) <- voff + (vst * min lane (s - 1))
  done;
  Warp.store w gout ~active addrs b;
  Warp.credit_flops w (Flops.trsv_pair s);
  (!info, verdict)

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?(variant = Eager)
    ?faults ?(abft = false) ?obs ~(factors : Batch.t) ~pivots (rhs : Batch.vec) =
  if factors.Batch.count <> rhs.Batch.vcount then
    invalid_arg "Batched_trsv.solve: batch count mismatch";
  (* Same layout on both buffers: cohort grouping is a pure function of
     the sizes, so matching layouts guarantee matching cohort geometry —
     one warp cohort context serves factors and right-hand sides. *)
  if Batch.layout factors <> Batch.vec_layout rhs then
    invalid_arg "Batched_trsv.solve: factors/rhs layout mismatch";
  if Array.length pivots <> factors.Batch.count then
    invalid_arg
      (Printf.sprintf
         "Batched_trsv.solve: pivots array has %d entries for %d blocks"
         (Array.length pivots) factors.Batch.count);
  Array.iteri
    (fun i s ->
      if rhs.Batch.vsizes.(i) <> s then
        invalid_arg "Batched_trsv.solve: block size mismatch";
      if Array.length pivots.(i) <> 0 && Array.length pivots.(i) <> s then
        invalid_arg "Batched_trsv.solve: pivot length mismatch")
    factors.Batch.sizes;
  let gmat = Gmem.of_array prec factors.Batch.values in
  let gvec = Gmem.of_array prec rhs.Batch.vvalues in
  let gout = Gmem.create prec (Array.length rhs.Batch.vvalues) in
  let info = Array.make factors.Batch.count 0 in
  let verdicts = Array.make factors.Batch.count Fault.Unchecked in
  let kernel w i =
    Staging.set_cohort w factors i;
    let s = factors.Batch.sizes.(i) in
    let perm =
      if Array.length pivots.(i) = 0 then Array.init s (fun k -> k)
      else pivots.(i)
    in
    let moff = Batch.base factors i
    and mst = Batch.stride factors i
    and voff = Batch.vec_base rhs i
    and vst = Batch.vec_stride rhs i in
    let inf, verdict =
      match variant with
      | Eager ->
        kernel_eager w gmat gvec gout ~moff ~mst ~voff ~vst ~s ~perm ~abft
      | Lazy ->
        kernel_lazy w gmat gvec gout ~moff ~mst ~voff ~vst ~s ~perm ~abft
    in
    info.(i) <- inf;
    verdicts.(i) <- verdict
  in
  let name =
    match variant with Eager -> "trsv.eager" | Lazy -> "trsv.lazy"
  in
  (* Both schedules are data-independent up to breakdown (the permuted
     rhs-load address set is permutation-invariant), so both cache; the
     salt carries the ABFT flag and the alignment classes of the factor
     and vector buffers. *)
  let cache =
    let align = Config.elements_per_transaction cfg prec in
    Some
      (fun i ->
        Staging.mix
          (Staging.mix (Bool.to_int abft) (Batch.salt_class factors i ~align))
          (Batch.vec_salt_class rhs i ~align))
  in
  (* Direct execution: permuted rhs copy into the output segment, then the
     matching batch-view solve pair in place — bitwise the kernel's
     schedule.  ABFT verdicts live in the interpreter, so ABFT launches
     keep the simulated path. *)
  let direct =
    if abft then None
    else begin
      let vmat = Gmem.raw gmat
      and vvec = Gmem.raw gvec
      and vout = Gmem.raw gout in
      Some
        (fun i ->
          let s = factors.Batch.sizes.(i) in
          let moff = Batch.base factors i
          and mst = Batch.stride factors i
          and voff = Batch.vec_base rhs i
          and vst = Batch.vec_stride rhs i in
          let piv = pivots.(i) in
          if Array.length piv = 0 && vst = 1 then
            Array.blit vvec voff vout voff s
          else if Array.length piv = 0 then
            for k = 0 to s - 1 do
              vout.(voff + (vst * k)) <- vvec.(voff + (vst * k))
            done
          else
            for k = 0 to s - 1 do
              vout.(voff + (vst * k)) <- vvec.(voff + (vst * piv.(k)))
            done;
          let inf =
            match variant with
            | Eager ->
              Trsv.pair_eager_view ~prec ~mstride:mst ~bstride:vst ~m:vmat
                ~moff ~n:s ~b:vout ~boff:voff ()
            | Lazy ->
              Trsv.pair_lazy_view ~prec ~mstride:mst ~bstride:vst ~m:vmat
                ~moff ~n:s ~b:vout ~boff:voff ()
          in
          info.(i) <- inf;
          verdicts.(i) <- Fault.Unchecked;
          inf)
    end
  in
  let stats =
    Sampling.run ~cfg ~pool ?faults ?obs ~name ?cache ?direct ~prec ~mode
      ~sizes:factors.Batch.sizes ~kernel ()
  in
  Vblu_obs.Ctx.record_verdicts obs verdicts;
  let solutions =
    let out = Batch.vec_create ~layout:rhs.Batch.vlayout rhs.Batch.vsizes in
    let values = Gmem.to_array gout in
    Array.blit values 0 out.Batch.vvalues 0 (Array.length values);
    out
  in
  {
    solutions;
    info;
    verdicts;
    stats;
    exact = (Sampling.effective_mode ?faults mode = Sampling.Exact);
  }
