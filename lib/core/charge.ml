open Vblu_smallblas
open Vblu_simt

let fma w n =
  let c = Warp.counter w in
  c.Counter.fma_instrs <- c.Counter.fma_instrs +. n

let div w n =
  let c = Warp.counter w in
  c.Counter.div_instrs <- c.Counter.div_instrs +. n

let shfl w n =
  let c = Warp.counter w in
  c.Counter.shfl_instrs <- c.Counter.shfl_instrs +. n

let smem w n =
  let c = Warp.counter w in
  c.Counter.smem_accesses <- c.Counter.smem_accesses +. n

let reduction w =
  shfl w 5.0;
  fma w 5.0

let charge_txns w txns =
  let c = Warp.counter w in
  let cfg = Warp.cfg w in
  c.Counter.gmem_instrs <- c.Counter.gmem_instrs +. 1.0;
  c.Counter.gmem_transactions <-
    c.Counter.gmem_transactions +. float_of_int txns;
  c.Counter.gmem_bytes <-
    c.Counter.gmem_bytes +. float_of_int (txns * cfg.Config.transaction_bytes)

let elems_touched w n =
  let c = Warp.counter w in
  c.Counter.gmem_elems <- c.Counter.gmem_elems +. float_of_int n

let gmem_coalesced w ~elems =
  if elems > 0 then begin
    let cfg = Warp.cfg w in
    let per = Config.elements_per_transaction cfg (Warp.prec w) in
    charge_txns w ((elems + per - 1) / per);
    elems_touched w elems
  end

let charge_custom w ~instrs ~txns =
  let c = Warp.counter w in
  let cfg = Warp.cfg w in
  c.Counter.gmem_instrs <- c.Counter.gmem_instrs +. instrs;
  c.Counter.gmem_transactions <-
    c.Counter.gmem_transactions +. float_of_int txns;
  c.Counter.gmem_bytes <-
    c.Counter.gmem_bytes +. float_of_int (txns * cfg.Config.transaction_bytes)

let gmem_strided_read w ~elems ~stride_bytes =
  if elems > 0 then begin
    elems_touched w elems;
    let cfg = Warp.cfg w in
    let tx = cfg.Config.transaction_bytes in
    let bytes = Precision.bytes (Warp.prec w) in
    if stride_bytes >= tx then
      (* Replays serialize the access (four sectors per issue slot); the
         cache turns repeated sector hits of neighbouring steps into a
         footprint's worth of DRAM traffic. *)
      let span = ((elems - 1) * stride_bytes) + bytes in
      charge_custom w
        ~instrs:(float_of_int (max 1 (elems / 4)))
        ~txns:((span + tx - 1) / tx / max 1 (stride_bytes / bytes))
    else begin
      let span = ((elems - 1) * stride_bytes) + bytes in
      charge_txns w ((span + tx - 1) / tx)
    end
  end

let gmem_strided_write w ~elems ~stride_bytes =
  if elems > 0 then begin
    elems_touched w elems;
    let cfg = Warp.cfg w in
    let tx = cfg.Config.transaction_bytes in
    let bytes = Precision.bytes (Warp.prec w) in
    if stride_bytes >= tx then
      charge_custom w ~instrs:(float_of_int (max 1 (elems / 2))) ~txns:elems
    else begin
      let span = ((elems - 1) * stride_bytes) + bytes in
      charge_txns w ((span + tx - 1) / tx)
    end
  end

let round w = Warp.round_barrier w
