open Vblu_smallblas
open Vblu_simt

(* All analytic charging funnels through Warp.charge_* so that the op-event
   signature and the charge-free replay mode (Launch.Cache) see these
   kernels exactly like the functionally simulated ones. *)

let fma w n = Warp.charge_fma w n
let div w n = Warp.charge_div w n
let shfl w n = Warp.charge_shfl w n
let smem w n = Warp.charge_smem w n

let reduction w =
  shfl w 5.0;
  fma w 5.0

let charge_txns w txns = Warp.charge_gmem w ~instrs:1.0 ~txns

let elems_touched w n = Warp.charge_gmem_elems w n

let gmem_coalesced w ~elems =
  if elems > 0 then begin
    let cfg = Warp.cfg w in
    let per = Config.elements_per_transaction cfg (Warp.prec w) in
    let cw = Warp.cohort_width w in
    if cw <= 1 then charge_txns w ((elems + per - 1) / per)
    else begin
      (* Cohort-cooperative: the cohort collectively streams elems·width
         contiguous elements; this problem pays its 1/width share. *)
      let cwf = float_of_int cw in
      let segs = ((elems * cw) + per - 1) / per in
      Warp.charge_gmem_frac w ~instrs:(1.0 /. cwf)
        ~txns:(float_of_int segs /. cwf)
    end;
    elems_touched w elems
  end

let charge_custom w ~instrs ~txns = Warp.charge_gmem w ~instrs ~txns

let gmem_strided_read w ~elems ~stride_bytes =
  if elems > 0 then begin
    elems_touched w elems;
    let cfg = Warp.cfg w in
    let tx = cfg.Config.transaction_bytes in
    let bytes = Precision.bytes (Warp.prec w) in
    let cw = Warp.cohort_width w in
    if cw > 1 then begin
      (* Interleaved: each strided element is a width-wide strip shared by
         the cohort; per element the strip touches at most
         ceil((width + per - 1) / per) segments, amortized over width. *)
      let per = Config.elements_per_transaction cfg (Warp.prec w) in
      let cwf = float_of_int cw in
      let segs_per_elem = (cw + per - 1 + per - 1) / per in
      Warp.charge_gmem_frac w
        ~instrs:(float_of_int (max 1 (elems / 4)) /. cwf)
        ~txns:(float_of_int (elems * segs_per_elem) /. cwf)
    end
    else if stride_bytes >= tx then
      (* Replays serialize the access (four sectors per issue slot); the
         cache turns repeated sector hits of neighbouring steps into a
         footprint's worth of DRAM traffic. *)
      let span = ((elems - 1) * stride_bytes) + bytes in
      charge_custom w
        ~instrs:(float_of_int (max 1 (elems / 4)))
        ~txns:((span + tx - 1) / tx / max 1 (stride_bytes / bytes))
    else begin
      let span = ((elems - 1) * stride_bytes) + bytes in
      charge_txns w ((span + tx - 1) / tx)
    end
  end

let gmem_strided_write w ~elems ~stride_bytes =
  if elems > 0 then begin
    elems_touched w elems;
    let cfg = Warp.cfg w in
    let tx = cfg.Config.transaction_bytes in
    let bytes = Precision.bytes (Warp.prec w) in
    if stride_bytes >= tx then
      charge_custom w ~instrs:(float_of_int (max 1 (elems / 2))) ~txns:elems
    else begin
      let span = ((elems - 1) * stride_bytes) + bytes in
      charge_txns w ((span + tx - 1) / tx)
    end
  end

let round w = Warp.round_barrier w
