open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type result = {
  factors : Gauss_huard.factors array;
  info : int array;
  verdicts : Fault.verdict array;
  stats : Launch.stats;
  exact : bool;
}

type solve_result = {
  solutions : Batch.vec;
  solve_info : int array;
  solve_verdicts : Fault.verdict array;
  solve_stats : Launch.stats;
  solve_exact : bool;
}

(* Placeholder for blocks skipped in Sampled mode. *)
let dummy_factors =
  lazy (Gauss_huard.factor (Matrix.identity 1))

(* GH numerics run on the CPU reference ([Gauss_huard.factor_status]) with
   analytically charged counters, so fault injection and detection are
   host-level too: a soft error is modelled by corrupting a factor (or
   solution) entry directly, and detection re-derives the entry from the
   untouched input. *)

let inject_into plan ~problem ~size f =
  List.iter
    (fun (site : Fault.site) ->
      if Fault.Plan.claim plan ~problem ~step:site.Fault.step then begin
        f site;
        Fault.Plan.note_injected plan
      end)
    (Fault.Plan.sites_for plan ~problem ~size)

(* Checksum-solve detection (factor phase): solve the factored system
   against the row-sum vector w = A·e and accept iff the residual
   A·u - w stays within the backward-stable envelope rowwise.  A
   corrupted factor entry steers [u] away from [e] by far more than
   O(s·eps) for any reasonably conditioned block. *)
let abft_factor_verdict ~prec m (f : Gauss_huard.factors) =
  let s, _ = Matrix.dims m in
  let e = Array.make s 1.0 in
  let wsum = Matrix.gemv ~prec m e in
  let u, uinf = Gauss_huard.solve_status ~prec f wsum in
  if uinf <> 0 then Fault.Failed
  else begin
    let au = Matrix.gemv ~prec m u in
    let eps = Precision.eps prec in
    let ok = ref true in
    for r = 0 to s - 1 do
      let scale = ref (Float.abs wsum.(r)) in
      for c = 0 to s - 1 do
        scale := !scale +. Float.abs (Matrix.unsafe_get m r c *. u.(c))
      done;
      let tol = 1024.0 *. float_of_int s *. eps *. !scale in
      if (not (Float.is_finite au.(r))) || Float.abs (au.(r) -. wsum.(r)) > tol
      then ok := false
    done;
    if !ok then Fault.Passed else Fault.Failed
  end

let charge_factor w ~s ~storage =
  for _j = 1 to s do
    Charge.gmem_coalesced w ~elems:s
  done;
  Charge.round w;
  for k = 0 to s - 1 do
    (* Implicit column pivoting; unlike LU, every thread replicates the
       list of pivot indices and consults it when addressing its registers
       — the bookkeeping overhead the paper notes implicit LU avoids. *)
    Charge.reduction w;
    Charge.fma w 8.0;
    Charge.shfl w 4.0;
    Charge.smem w 8.0;
    Charge.div w 1.0;
    (* Lazy row-k update and eager column-k elimination: k processed
       columns drive one fused rank-1 register pass each (the shuffle of
       one update dual-issues with the FMA of the other). *)
    Charge.shfl w (float_of_int k);
    Charge.fma w (float_of_int k)
  done;
  (match storage with
  | Gauss_huard.Normal ->
    for _j = 1 to s do
      Charge.gmem_coalesced w ~elems:s
    done
  | Gauss_huard.Transposed ->
    (* Transposed write-back staged through a shared-memory transpose
       (direct strided stores would cost a sector per element); the extra
       price is the staging traffic plus the bank-conflict-free padding
       arithmetic. *)
    for _j = 1 to s do
      Charge.smem w 2.0;
      Charge.fma w 1.0;
      Charge.gmem_coalesced w ~elems:s
    done);
  (* Column-pivot vector. *)
  Charge.gmem_coalesced w ~elems:s;
  Warp.credit_flops w (Flops.gauss_huard_factor s)

let charge_solve w ~s ~storage =
  Charge.gmem_coalesced w ~elems:s;
  Charge.round w;
  let row_access elems =
    if elems > 0 then
      match storage with
      | Gauss_huard.Transposed -> Charge.gmem_coalesced w ~elems
      | Gauss_huard.Normal ->
        Charge.gmem_strided_read w ~elems
          ~stride_bytes:(s * Precision.bytes (Warp.prec w))
  in
  (* Forward sweep: DOT against row k's lower multipliers + pivot div. *)
  for k = 0 to s - 1 do
    row_access (k + 1);
    Charge.reduction w;
    Charge.div w 1.0;
    Charge.fma w 1.0
  done;
  (* Backward sweep with the unit upper part: row reads again. *)
  for k = s - 2 downto 0 do
    row_access (s - 1 - k);
    Charge.reduction w;
    Charge.fma w 1.0
  done;
  Charge.gmem_coalesced w ~elems:s;
  Warp.credit_flops w (Flops.gauss_huard_solve s)

(* Checksum-solve cost: one extra GH solve plus two reference gemv passes
   that re-read A. *)
let charge_abft_factor w ~s ~storage =
  charge_solve w ~s ~storage;
  for _j = 1 to s do
    Charge.gmem_coalesced w ~elems:s
  done;
  Charge.fma w (float_of_int (4 * s))

let factor ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact)
    ?(storage = Gauss_huard.Normal) ?faults ?(abft = false) ?obs (b : Batch.t) =
  Array.iter
    (fun s ->
      if s > cfg.Config.warp_size then
        invalid_arg "Batched_gh.factor: block exceeds warp width")
    b.Batch.sizes;
  let factors = Array.make b.Batch.count (Lazy.force dummy_factors) in
  let info = Array.make b.Batch.count 0 in
  let verdicts = Array.make b.Batch.count Fault.Unchecked in
  let kernel w i =
    Staging.set_cohort w b i;
    let s = b.Batch.sizes.(i) in
    let f, inf = Gauss_huard.factor_status ~prec ~storage (Batch.get_matrix b i) in
    (match faults with
    | None -> ()
    | Some plan ->
      inject_into plan ~problem:i ~size:s (fun site ->
          let r = site.Fault.lane and c = site.Fault.step in
          Matrix.unsafe_set f.Gauss_huard.gh r c
            (Fault.corrupt site.Fault.kind
               (Matrix.unsafe_get f.Gauss_huard.gh r c))));
    factors.(i) <- f;
    info.(i) <- inf;
    (* The analytic model charges the full factorization regardless of a
       breakdown: the simulated warp walks all s steps with the dead
       problem predicated off, so the instruction stream length does not
       depend on the data. *)
    charge_factor w ~s ~storage;
    if abft && inf = 0 then begin
      verdicts.(i) <- abft_factor_verdict ~prec (Batch.get_matrix b i) f;
      charge_abft_factor w ~s ~storage
    end
  in
  let name =
    match storage with
    | Gauss_huard.Normal -> "gh.factor"
    | Gauss_huard.Transposed -> "ght.factor"
  in
  (* Analytic charges depend on size, storage (already in the kernel name)
     and the abft flag; the abft branch is also gated on a clean info, but
     a divergent stream is caught by the op-event signature and rerun
     charging. *)
  (* GH numerics already run on the host; direct execution is the same
     reference factorization minus the analytic charge calls.  The ABFT
     verdict (and its extra charges) lives in the kernel, so ABFT launches
     keep the charged path. *)
  let direct =
    if abft then None
    else
      Some
        (fun i ->
          let f, inf =
            Gauss_huard.factor_status ~prec ~storage (Batch.get_matrix b i)
          in
          factors.(i) <- f;
          info.(i) <- inf;
          verdicts.(i) <- Fault.Unchecked;
          inf)
  in
  let stats =
    Sampling.run ~cfg ~pool ?faults ?obs ~name
      ~cache:(fun i -> Staging.mix (Bool.to_int abft) (Batch.cohort_salt b i))
      ?direct ~prec ~mode ~sizes:b.Batch.sizes ~kernel ()
  in
  Vblu_obs.Ctx.record_verdicts obs verdicts;
  {
    factors;
    info;
    verdicts;
    stats;
    exact = (Sampling.effective_mode ?faults mode = Sampling.Exact);
  }

let solve ?(cfg = Config.p100) ?(pool = Vblu_par.Pool.sequential)
    ?(prec = Precision.Double) ?(mode = Sampling.Exact) ?faults
    ?(abft = false) ?obs (r : result) (rhs : Batch.vec) =
  if Array.length r.factors <> rhs.Batch.vcount then
    invalid_arg "Batched_gh.solve: batch count mismatch";
  let solutions = Batch.vec_create ~layout:rhs.Batch.vlayout rhs.Batch.vsizes in
  let storage =
    if Array.length r.factors = 0 then Gauss_huard.Normal
    else r.factors.(0).Gauss_huard.storage
  in
  let solve_info = Array.make rhs.Batch.vcount 0 in
  let solve_verdicts = Array.make rhs.Batch.vcount Fault.Unchecked in
  let kernel w i =
    Staging.set_vec_cohort w rhs i;
    let s = rhs.Batch.vsizes.(i) in
    let x, inf = Gauss_huard.solve_status ~prec r.factors.(i) (Batch.vec_get rhs i) in
    (match faults with
    | None -> ()
    | Some plan ->
      inject_into plan ~problem:i ~size:s (fun site ->
          x.(site.Fault.lane) <- Fault.corrupt site.Fault.kind x.(site.Fault.lane)));
    Batch.vec_set solutions i x;
    solve_info.(i) <- inf;
    charge_solve w ~s ~storage;
    if abft && inf = 0 then begin
      (* Dual modular redundancy: redo the (deterministic) reference solve
         and compare bitwise — any mismatch is corruption, never roundoff. *)
      let x2, _ =
        Gauss_huard.solve_status ~prec r.factors.(i) (Batch.vec_get rhs i)
      in
      charge_solve w ~s ~storage;
      let ok = ref true in
      for j = 0 to s - 1 do
        if
          not
            (Int64.equal (Int64.bits_of_float x.(j)) (Int64.bits_of_float x2.(j)))
        then ok := false
      done;
      solve_verdicts.(i) <- (if !ok then Fault.Passed else Fault.Failed)
    end
  in
  (* The solve's kernel name does not encode the storage layout, so it
     goes into the salt alongside the abft flag. *)
  let cache i =
    Staging.mix
      (Staging.mix (Bool.to_int abft)
         (match storage with
         | Gauss_huard.Normal -> 0
         | Gauss_huard.Transposed -> 1))
      (Batch.vec_cohort_salt rhs i)
  in
  let direct =
    if abft then None
    else
      Some
        (fun i ->
          let x, inf =
            Gauss_huard.solve_status ~prec r.factors.(i) (Batch.vec_get rhs i)
          in
          Batch.vec_set solutions i x;
          solve_info.(i) <- inf;
          solve_verdicts.(i) <- Fault.Unchecked;
          inf)
  in
  let stats =
    Sampling.run ~cfg ~pool ?faults ?obs ~name:"gh.solve" ~cache ?direct ~prec
      ~mode ~sizes:rhs.Batch.vsizes ~kernel ()
  in
  Vblu_obs.Ctx.record_verdicts obs solve_verdicts;
  { solutions; solve_info; solve_verdicts; solve_stats = stats;
    solve_exact = (Sampling.effective_mode ?faults mode = Sampling.Exact) }
