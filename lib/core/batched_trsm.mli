(** Batched triangular solves with multiple right-hand sides.

    LAPACK's GETRS (and the cuBLAS batched equivalent) accepts [nrhs]
    right-hand sides per system.  For the register kernel this is where
    the triangular factors finally get data reuse: the warp holds all
    [nrhs] vectors in registers (one element of each per lane) and every
    factor column is loaded from memory {e once}, then applied to each
    vector with one shuffle + FNMA pair — so the memory-bound solve cost
    is amortized and throughput grows with [nrhs] until the issue slots
    dominate.  This module generalizes {!Batched_trsv} (which is the
    [nrhs = 1] special case, kept separate because the paper benchmarks
    it). *)

open Vblu_smallblas
open Vblu_simt

type result = {
  solutions : Batch.vec array;  (** one solution set per input set. *)
  info : int array;
      (** per-problem status, shared by all right-hand-side sets of a
          block: [0] on success, [k + 1] for a zero diagonal at (0-based)
          step [k] of the upper sweep (see {!Batched_trsv.result}). *)
  stats : Launch.stats;
  exact : bool;
}

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  factors:Batch.t ->
  pivots:int array array ->
  Batch.vec array ->
  result
(** [solve ~factors ~pivots rhs_sets] solves every block system for every
    right-hand-side set ([rhs_sets.(r)] holds the [r]-th vector of every
    block).  All sets must share the factors' block sizes.  A zero
    diagonal never raises — the problem is flagged in [info] and its
    partial solutions stored.
    @raise Invalid_argument on shape mismatch, an empty set array, or a
    [pivots] array without exactly one (possibly empty) entry per block. *)
