(** The paper's variable-size batched LU factorization (Section III-A).

    One warp per block: thread (lane) [r] holds row [r] of the block in its
    registers, the matrix is read from global memory exactly once (one
    coalesced load per column), the whole factorization runs in registers
    with warp shuffles providing pivot search and pivot-row broadcast, and
    the factors are written back once.

    Blocks smaller than the warp width are padded with zero rows/columns to
    the full 32-wide register tile; the elimination performs only the first
    [size] steps, but every step's trailing update spans the padded width —
    the "eager" overhead the paper measures against lazy Gauss-Huard in
    Figure 5 and promises to remove in future work.

    Three pivoting modes mirror the paper's discussion:
    - {!Implicit} (the contribution): rows never move; each thread tracks
      whether its row has been pivoted, and the accumulated permutation is
      applied for free by scattering rows to their pivot positions during
      the write-back.
    - {!Explicit}: textbook partial pivoting with physical row exchanges —
      two threads swap register contents through shuffles at every step
      while the rest of the warp idles; the ablation baseline.
    - {!No_pivoting}: for blocks known to need none.

    All modes produce identical packed factors ([perm] differs only in how
    it was obtained); the result layout matches
    {!Vblu_smallblas.Lu.factors}. *)

open Vblu_smallblas
open Vblu_simt
open Vblu_fault

type pivoting =
  | Implicit
  | Explicit
  | No_pivoting

type result = {
  factors : Batch.t;
      (** packed LU factors per block, rows in pivot order.  Complete in
          [Exact] mode; in [Sampled] mode only the representative block of
          each size class is populated. *)
  pivots : int array array;
      (** per-block permutation: [pivots.(i).(k)] is the original row index
          of block [i]'s [k]-th pivot row. *)
  info : int array;
      (** LAPACK-style per-problem status: [info.(i) = 0] if block [i]
          factored cleanly, [k + 1] if its first zero pivot appeared at
          (0-based) elimination step [k].  The warp predicates the dead
          problem off and completes deterministically — no exception is
          raised, and the flagged block holds the frozen partial factors
          (steps [0 .. k-1] applied; for implicit pivoting the remaining
          rows take the remaining pivot steps in increasing row order so
          [pivots.(i)] is still a total permutation).  In [Sampled] mode
          only the representative block of each size class is flagged,
          like [factors]. *)
  verdicts : Fault.verdict array;
      (** per-problem ABFT verdict.  [Unchecked] unless [~abft:true] was
          passed (or when the block broke down — a nonzero [info] already
          flags it); [Passed]/[Failed] report whether the factors
          reproduce the row checksums encoded before elimination.  A
          fault injected by [?faults] into a checked problem flips its
          verdict to [Failed]; clean problems stay [Passed]. *)
  stats : Launch.stats;  (** modelled kernel performance. *)
  exact : bool;  (** whether every block was actually computed. *)
}

val factor :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?pivoting:pivoting ->
  ?faults:Fault.Plan.t ->
  ?abft:bool ->
  ?obs:Vblu_obs.Ctx.t ->
  Batch.t ->
  result
(** Factorize every block of the batch.  Defaults: P100 model, double
    precision, [Exact] execution, [Implicit] pivoting.  [?pool] fans the
    independent blocks out over domains ({!Vblu_simt.Sampling.run});
    results are bit-identical to the sequential run (including [info]).
    An empty batch is a no-op returning empty factors and zero-time stats.
    Numerically singular blocks never raise — they are flagged in [info].

    [?faults] (default none) arms a deterministic fault plan: targeted
    problems get bit flips / perturbations during elimination, claims are
    one-shot per (problem, step) so a retry of the same plan runs clean.
    [~abft:true] (default false) encodes row checksums before elimination
    and verifies them from registers at write-back, filling [verdicts];
    the checksum work goes through the normal warp ops so its cost shows
    up in [stats].  With both absent the kernels are bit-identical to the
    unprotected path — no overhead when disabled.

    [?obs] records the launch (a ["getrf.*"] span of the modelled time,
    plus registry counters and ABFT verdict totals) into an observability
    context; absent means nothing is recorded and behaviour is
    bit-identical to the uninstrumented path.
    @raise Invalid_argument if any block exceeds the warp width (32). *)
