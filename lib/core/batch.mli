(** Variable-size batch descriptors.

    A batch is a large collection of independent small problems, each with
    its own size — the data layout all batched routines share.  Matrix
    blocks are stored back-to-back, each column-major, with an offset
    table; right-hand-side collections use the same scheme with one vector
    per problem.  This is the layout the variable-size kernels consume, and
    the cuBLAS-model baseline rejects (it requires uniform sizes, as the
    real library does). *)

open Vblu_smallblas

type t = private {
  count : int;
  sizes : int array;  (** block order per problem ([sizes.(i)] ≥ 1). *)
  offsets : int array;
      (** length [count + 1]; block [i]'s column-major values occupy
          [values.(offsets.(i)) .. values.(offsets.(i+1)) - 1]. *)
  values : float array;
}

val create : int array -> t
(** [create sizes] allocates a zeroed batch with the given block sizes.
    @raise Invalid_argument on a non-positive size. *)

val of_matrices : Matrix.t array -> t
(** Packs square matrices into a batch.  An empty array yields an empty
    batch ([count = 0]), which every batched kernel treats as a no-op.
    @raise Invalid_argument on a non-square input. *)

val to_matrices : t -> Matrix.t array

val get_matrix : t -> int -> Matrix.t
(** Dense copy of block [i]. *)

val set_matrix : t -> int -> Matrix.t -> unit
(** Overwrites block [i].  @raise Invalid_argument on a size mismatch. *)

val count : t -> int

val max_size : t -> int

val total_values : t -> int

val uniform_sizes : count:int -> size:int -> int array
(** The fixed-size batch shape of the kernel benchmarks. *)

(** {2 Random workloads}

    Seeding contract: every [random_*] function called without [?state]
    derives a {e fresh} deterministic state from a per-function seed — no
    hidden global stream is shared between calls.  Consequently unseeded
    calls are pure: the same function with the same arguments returns the
    same data regardless of what ran before, of call order, and of the
    domain it runs on.  Pass an explicit [?state] to draw distinct data
    across calls (thread the state, or derive one per call site). *)

val random_sizes :
  ?state:Random.State.t -> count:int -> min_size:int -> max_size:int -> unit ->
  int array
(** Uniformly random sizes in [\[min_size, max_size\]] — the variable-size
    workload. *)

val random_diagdom : ?state:Random.State.t -> int array -> t
(** One well-conditioned random block per entry of [sizes] — the standard
    benchmark workload (guaranteed factorizable). *)

val random_general : ?state:Random.State.t -> int array -> t
(** Random nonsingular blocks with nontrivial pivoting. *)

(** {1 Vector batches} *)

type vec = private {
  vcount : int;
  vsizes : int array;
  voffsets : int array;
  vvalues : float array;
}

val vec_create : int array -> vec

val vec_of_vectors : Vector.t array -> vec
(** Packs vectors into a vector batch; an empty array yields an empty
    batch. *)

val vec_to_vectors : vec -> Vector.t array

val vec_get : vec -> int -> Vector.t

val vec_set : vec -> int -> Vector.t -> unit

val vec_random : ?state:Random.State.t -> int array -> vec
(** Entries uniform in [(-1, 1)]; follows the seeding contract of the
    [random_*] batch builders above. *)

val vec_of_flat : sizes:int array -> Vector.t -> vec
(** Splits a flat vector (e.g. a Krylov residual) into per-block segments;
    the segment boundaries are the size prefix sums.
    @raise Invalid_argument if the lengths disagree. *)

val vec_to_flat : vec -> Vector.t
(** Concatenation — inverse of {!vec_of_flat}. *)
