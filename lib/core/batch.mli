(** Variable-size batch descriptors.

    A batch is a large collection of independent small problems, each with
    its own size — the data layout all batched routines share.  The
    container is layout-polymorphic:

    {ul
    {- {b Blocked}: matrix blocks stored back-to-back, each column-major,
       with an offset table (the layout the paper's kernels consume, and
       the cuBLAS-model baseline rejects for variable sizes).}
    {- {b Interleaved} (SoA): problems are grouped in batch order into
       same-size cohorts of at most 32 members, and element [e] of every
       cohort member is stored contiguously — one warp access per element
       serves the whole cohort, the coalesced layout of Gloster et al.,
       "Efficient Interleaved Batch Matrix Solvers for CUDA".  Cohort
       bases are 32-element aligned (padding is zero-filled).}}

    Callers should never compute raw offsets: {!base}, {!stride} and
    {!index} give the per-problem addressing in either layout ([element e
    of problem p] lives at [base b p + stride b p * e], with [e = r + j*s]
    column-major).  For blocked batches [stride = 1] and [base] is the
    classic offset-table entry, so the historical field accesses keep
    their meaning. *)

open Vblu_smallblas

type layout = Blocked | Interleaved

val layout_name : layout -> string
(** ["blocked" | "interleaved"] — CLI/report spelling. *)

val layout_of_string : string -> (layout, string) result

type t = private {
  count : int;
  layout : layout;
  sizes : int array;  (** block order per problem ([sizes.(i)] ≥ 1). *)
  offsets : int array;
      (** length [count + 1]; [offsets.(i)] is problem [i]'s base element
          (for [Blocked], the start of its contiguous column-major block;
          for [Interleaved], cohort base + slot) and [offsets.(count)] the
          total storage length, padding included.  Only for [Blocked] is
          the table a prefix sum. *)
  widths : int array;
      (** per-problem element stride = cohort width (all 1 for
          [Blocked]). *)
  slots : int array;  (** per-problem slot within its cohort (0 for
          [Blocked]). *)
  values : float array;
}

val create : ?layout:layout -> int array -> t
(** [create sizes] allocates a zeroed batch with the given block sizes
    ([layout] defaults to [Blocked]).  The storage geometry is a pure
    function of [(layout, sizes)], so two batches over equal sizes and
    layout share offsets, widths and slots.
    @raise Invalid_argument on a non-positive size. *)

val of_matrices : ?layout:layout -> Matrix.t array -> t
(** Packs square matrices into a batch.  An empty array yields an empty
    batch ([count = 0]), which every batched kernel treats as a no-op.
    @raise Invalid_argument on a non-square input. *)

val to_matrices : t -> Matrix.t array

val get_matrix : t -> int -> Matrix.t
(** Dense copy of block [i] (allocating; see {!get_matrix_into} for hot
    paths). *)

val get_matrix_into : t -> int -> Matrix.t -> unit
(** Non-allocating {!get_matrix}: overwrites the caller's matrix with
    block [i].  @raise Invalid_argument on a size mismatch. *)

val set_matrix : t -> int -> Matrix.t -> unit
(** Overwrites block [i].  @raise Invalid_argument on a size mismatch. *)

val with_layout : layout -> t -> t
(** [with_layout l b] is [b] converted to layout [l] — bitwise lossless in
    both directions (padding is freshly zeroed).  Returns [b] itself when
    the layout already matches. *)

(** {2 Layout-polymorphic addressing} *)

val layout : t -> layout

val base : t -> int -> int
(** [base b i] is the element offset of problem [i]'s element 0. *)

val stride : t -> int -> int
(** [stride b i] is the distance between consecutive elements of problem
    [i]: 1 for [Blocked], the cohort width for [Interleaved]. *)

val index : t -> int -> int -> int -> int
(** [index b p r j] is the position of element [(r, j)] (column-major) of
    problem [p] in [values] — [base + stride * (r + j * sizes.(p))]. *)

val cohort : t -> int -> (int * int) option
(** [cohort b i] is [Some (width, slot)] for interleaved batches — the
    cohort-cooperative coalescing context of problem [i] — and [None] for
    blocked ones. *)

val salt_class : t -> int -> align:int -> int
(** Transaction-alignment class for [Launch.Cache] salts, [align] =
    elements per transaction.  Blocked problems map to [base mod align]
    ∈ [0, align); interleaved problems to [align + width] — disjoint
    ranges, so blocked and interleaved launches can never share a cache
    entry. *)

val cohort_salt : t -> int -> int
(** Layout tag for analytically charged kernels (no raw addresses in
    their charge stream): 0 for blocked, the cohort width for
    interleaved. *)

val count : t -> int

val max_size : t -> int

val total_values : t -> int
(** Storage length of [values], interleaved padding included. *)

val uniform_sizes : count:int -> size:int -> int array
(** The fixed-size batch shape of the kernel benchmarks.  [count = 0]
    yields [[||]] (the empty batch is a defined no-op).
    @raise Invalid_argument on a negative count or non-positive size. *)

(** {2 Random workloads}

    Seeding contract: every [random_*] function called without [?state]
    derives a {e fresh} deterministic state from a per-function seed — no
    hidden global stream is shared between calls.  Consequently unseeded
    calls are pure: the same function with the same arguments returns the
    same data regardless of what ran before, of call order, and of the
    domain it runs on.  Pass an explicit [?state] to draw distinct data
    across calls (thread the state, or derive one per call site).  Data is
    drawn per problem in batch order, so the same seed yields bitwise
    identical per-problem data in either layout. *)

val random_sizes :
  ?state:Random.State.t -> count:int -> min_size:int -> max_size:int -> unit ->
  int array
(** Uniformly random sizes in [\[min_size, max_size\]] — the variable-size
    workload.  [count = 0] yields [[||]]. *)

val random_diagdom : ?state:Random.State.t -> ?layout:layout -> int array -> t
(** One well-conditioned random block per entry of [sizes] — the standard
    benchmark workload (guaranteed factorizable). *)

val random_general : ?state:Random.State.t -> ?layout:layout -> int array -> t
(** Random nonsingular blocks with nontrivial pivoting. *)

(** {1 Vector batches} *)

type vec = private {
  vcount : int;
  vlayout : layout;
  vsizes : int array;
  voffsets : int array;
      (** same contract as {!t.offsets}: per-problem base, last entry =
          total storage. *)
  vwidths : int array;
  vslots : int array;
  vvalues : float array;
}

val vec_create : ?layout:layout -> int array -> vec
(** Cohort grouping depends only on the sizes, so a matrix batch and a
    vector batch built from the same sizes and layout agree on widths and
    slots — one warp cohort context serves both buffers. *)

val vec_layout : vec -> layout
val vec_base : vec -> int -> int
val vec_stride : vec -> int -> int

val vec_index : vec -> int -> int -> int
(** [vec_index v p k] is the position of element [k] of problem [p]. *)

val vec_cohort : vec -> int -> (int * int) option
val vec_salt_class : vec -> int -> align:int -> int
val vec_cohort_salt : vec -> int -> int

val vec_with_layout : layout -> vec -> vec
(** Bitwise lossless layout conversion, like {!with_layout}. *)

val vec_of_vectors : ?layout:layout -> Vector.t array -> vec
(** Packs vectors into a vector batch; an empty array yields an empty
    batch. *)

val vec_to_vectors : vec -> Vector.t array

val vec_get : vec -> int -> Vector.t
(** Fresh copy of problem [i]'s vector (allocating; see {!vec_get_into}). *)

val vec_get_into : vec -> int -> Vector.t -> unit
(** Non-allocating {!vec_get}: fills the caller's buffer.
    @raise Invalid_argument on a length mismatch. *)

val vec_set : vec -> int -> Vector.t -> unit

val vec_random : ?state:Random.State.t -> ?layout:layout -> int array -> vec
(** Entries uniform in [(-1, 1)]; follows the seeding contract of the
    [random_*] batch builders above. *)

val vec_of_flat : ?layout:layout -> sizes:int array -> Vector.t -> vec
(** Splits a flat vector (e.g. a Krylov residual) into per-block segments;
    the segment boundaries are the size prefix sums.
    @raise Invalid_argument if the lengths disagree. *)

val vec_to_flat : vec -> Vector.t
(** Concatenation in batch order — inverse of {!vec_of_flat} for either
    layout. *)
