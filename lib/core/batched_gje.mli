(** Batched Gauss-Jordan elimination: the inversion-based block-Jacobi
    variant [Anzt et al., PMAM 2017].

    Setup explicitly inverts every diagonal block ([2 n³] flops — three
    times the LU cost) so the per-iteration preconditioner application
    becomes a dense matrix–vector product: no triangular dependency chain,
    perfectly parallel, but potentially less stable than the
    factorization-based approach.  This is the trade-off the paper's
    Section II-C discusses; the ablation bench quantifies it.

    Numerics via {!Vblu_smallblas.Gauss_jordan}; counters charged
    analytically for the register GJE kernel (lane = row, implicit
    pivoting, every step updates the full padded register tile). *)

open Vblu_smallblas
open Vblu_simt

type result = {
  inverses : Matrix.t array;
      (** complete in [Exact] mode; representatives only in [Sampled]. *)
  info : int array;
      (** per-problem status: [0] on success, [k + 1] for the first zero
          pivot at (0-based) step [k].  A flagged entry of [inverses] holds
          a frozen partial transform and must be discarded. *)
  stats : Launch.stats;
  exact : bool;
}

type apply_result = {
  products : Batch.vec;
  apply_stats : Launch.stats;
  apply_exact : bool;
}

val invert :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  Batch.t ->
  result
(** Invert every block.  Singular blocks never raise — they are flagged
    in [info].  (The GEMV of {!apply} cannot break down, so
    {!apply_result} carries no status.) *)

val apply :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?obs:Vblu_obs.Ctx.t ->
  result ->
  Batch.vec ->
  apply_result
(** Batched GEMV with the precomputed inverses. *)
