(** Restarted GMRES(m) with right preconditioning.

    Long-recurrence baseline: monotone residuals inside a cycle, memory
    proportional to the restart length.  Arnoldi by modified Gram-Schmidt,
    least-squares by Givens rotations, solution update through the
    preconditioner at the end of each cycle. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?restart:int ->
  ?config:Solver.config ->
  ?refresh_precond:(unit -> Preconditioner.t) ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** [solve ~restart:m a b] — default restart 30.  [stats.iterations]
    counts applications of [A].

    [?refresh_precond] arms the soft-error guard ({!Solver.guard}): on a
    non-finite or stagnating least-squares residual the preconditioner is
    rebuilt once and the current cycle is abandoned — its partial Arnoldi
    basis was built against the old preconditioner — letting the next
    restart cycle re-arm from the current iterate; a second trip ends the
    solve with [Breakdown "guard: ..."].  Omitted, the solve is
    bit-identical to previous behavior.

    [?obs] records per-iteration residual samples, guard events and the
    final outcome into an observability context; omitted, nothing is
    recorded.
    @raise Invalid_argument if [restart < 1]. *)
