open Vblu_smallblas
open Vblu_precond

let solve ?(prec = Precision.Double) ?precond
    ?(config = Solver.default_config) ?refresh_precond ?obs a b =
  let ctx = Solver.make_ctx ~prec ?precond ?obs ~name:"cg" a b config in
  let sguard = Option.map Solver.guard refresh_precond in
  let started = Sys.time () in
  let n = Array.length b in
  let x = Vector.create n in
  let r = Vector.copy b in
  let z = Preconditioner.apply ctx.Solver.precond r in
  let p = Vector.copy z in
  let rz = ref (Vector.dot ~prec r z) in
  let iters = ref 0 in
  let outcome = ref None in
  Solver.record ctx (Vector.nrm2 ~prec r);
  if Vector.nrm2 ~prec r <= ctx.Solver.target then outcome := Some Solver.Converged;
  let check_guard rnorm =
    match sguard with
    | None -> ()
    | Some gd -> (
      match Solver.guard_check ctx gd rnorm with
      | `Ok -> ()
      | `Break why -> outcome := Some (Solver.Breakdown why)
      | `Restart _ -> raise Solver.Guard_restart)
  in
  (* Re-arm after a guard-triggered preconditioner refresh: keep the
     iterate (zeroing it if the corruption reached it), recompute the
     true residual and restart the direction recurrence. *)
  let rearm () =
    if Array.exists (fun v -> not (Float.is_finite v)) x then
      Vector.fill x 0.0;
    let ax = ctx.Solver.spmv x in
    incr iters;
    Vector.blit ~src:b ~dst:r;
    Vector.axpy ~prec (-1.0) ax r;
    let z = Preconditioner.apply ctx.Solver.precond r in
    Vector.blit ~src:z ~dst:p;
    rz := Vector.dot ~prec r z;
    let rnorm = Vector.nrm2 ~prec r in
    Solver.record ctx rnorm;
    if rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
    else if !iters >= config.Solver.max_iters then
      outcome := Some Solver.Max_iterations
  in
  let again = ref true in
  while !again do
    again := false;
    try
      while !outcome = None do
        let ap = ctx.Solver.spmv p in
        incr iters;
        let pap = Vector.dot ~prec p ap in
        if pap = 0.0 then outcome := Some (Solver.Breakdown "pᵀAp = 0")
        else begin
          let alpha = Precision.div prec !rz pap in
          Vector.axpy ~prec alpha p x;
          Vector.axpy ~prec (-.alpha) ap r;
          let rnorm = Vector.nrm2 ~prec r in
          Solver.record ctx rnorm;
          if rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
          else if !iters >= config.Solver.max_iters then
            outcome := Some Solver.Max_iterations
          else begin
            check_guard rnorm;
            if !outcome = None then begin
              let z = Preconditioner.apply ctx.Solver.precond r in
              let rz' = Vector.dot ~prec r z in
              if !rz = 0.0 then outcome := Some (Solver.Breakdown "rᵀz = 0")
              else begin
                let beta = Precision.div prec rz' !rz in
                rz := rz';
                for i = 0 to n - 1 do
                  p.(i) <- Precision.fma prec beta p.(i) z.(i)
                done
              end
            end
          end
        end
      done
    with Solver.Guard_restart ->
      rearm ();
      again := true
  done;
  let outcome = match !outcome with Some o -> o | None -> Solver.Max_iterations in
  (x, Solver.finish ctx ~outcome ~iterations:!iters ~x ~b ~started ~a)
