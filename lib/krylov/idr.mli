(** IDR(s) — Induced Dimension Reduction — the paper's outer solver.

    Implementation of the IDR(s) variant with biorthogonalization
    [van Gijzen & Sonneveld, ACM TOMS 2011 ("Algorithm 913")], with the
    residual-smoothing-free preconditioned recurrences and the usual
    ω-stabilization (the |ρ| < 0.7 kappa test).  The paper evaluates
    IDR(4) from MAGMA-sparse; [s = 4] is the default here too.

    IDR(s) draws its shadow space [P] (an [n × s] orthonormalized random
    block) from a deterministic RNG by default so experiments are
    reproducible; pass [~seed] to vary it.

    [~smoothing:true] enables QMR-style residual smoothing [van Gijzen &
    Sonneveld 2011, §5]: a smoothed iterate/residual pair is maintained
    alongside the IDR recurrences, trading a few AXPYs per step for a
    monotonically non-increasing residual norm — useful when IDR's
    characteristically erratic convergence makes stopping tests noisy. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?s:int ->
  ?seed:int ->
  ?smoothing:bool ->
  ?config:Solver.config ->
  ?refresh_precond:(unit -> Preconditioner.t) ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** [solve a b] runs preconditioned IDR(s) from a zero initial guess and
    returns the approximate solution with solve statistics
    ([stats.iterations] counts applications of [A]).

    [?refresh_precond] arms the soft-error guard ({!Solver.guard}): on a
    non-finite residual norm or prolonged stagnation the preconditioner
    is rebuilt once via the callback and the recurrences restart from the
    current iterate (iterations keep accumulating); a second trip ends
    the solve with [Breakdown "guard: ..."].  Without it the solve is
    bit-identical to previous behavior.
    @raise Invalid_argument on dimension mismatches or [s < 1]. *)
