open Vblu_smallblas
open Vblu_precond

let solve ?(prec = Precision.Double) ?precond
    ?(config = Solver.default_config) ?refresh_precond ?obs a b =
  let ctx = Solver.make_ctx ~prec ?precond ?obs ~name:"bicgstab" a b config in
  let sguard = Option.map Solver.guard refresh_precond in
  let started = Sys.time () in
  let n = Array.length b in
  let x = Vector.create n in
  let r = Vector.copy b in
  let rstar = Vector.copy r in
  let p = Vector.create n in
  let v = Vector.create n in
  let rho = ref 1.0 and alpha = ref 1.0 and om = ref 1.0 in
  let iters = ref 0 in
  let outcome = ref None in
  let apply_m y = Preconditioner.apply ctx.Solver.precond y in
  Solver.record ctx (Vector.nrm2 ~prec r);
  if Vector.nrm2 ~prec r <= ctx.Solver.target then outcome := Some Solver.Converged;
  let check_guard rnorm =
    match sguard with
    | None -> ()
    | Some gd -> (
      match Solver.guard_check ctx gd rnorm with
      | `Ok -> ()
      | `Break why -> outcome := Some (Solver.Breakdown why)
      | `Restart _ -> raise Solver.Guard_restart)
  in
  (* Re-arm after a guard-triggered preconditioner refresh: keep the
     iterate (zeroing it if the corruption reached it), recompute the true
     residual, and restart the BiCG recurrences from scratch — fresh
     shadow residual, zero direction vectors, unit scalars. *)
  let rearm () =
    if Array.exists (fun v -> not (Float.is_finite v)) x then
      Vector.fill x 0.0;
    let ax = ctx.Solver.spmv x in
    incr iters;
    Vector.blit ~src:b ~dst:r;
    Vector.axpy ~prec (-1.0) ax r;
    Vector.blit ~src:r ~dst:rstar;
    Vector.fill p 0.0;
    Vector.fill v 0.0;
    rho := 1.0;
    alpha := 1.0;
    om := 1.0;
    let rnorm = Vector.nrm2 ~prec r in
    Solver.record ctx rnorm;
    if rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
    else if !iters >= config.Solver.max_iters then
      outcome := Some Solver.Max_iterations
  in
  let again = ref true in
  while !again do
    again := false;
    try
      while !outcome = None do
    let rho1 = Vector.dot ~prec rstar r in
    if rho1 = 0.0 then outcome := Some (Solver.Breakdown "rho = 0")
    else begin
      let beta = Precision.mul prec (rho1 /. !rho) (!alpha /. !om) in
      (* p = r + beta (p - om v) *)
      for i = 0 to n - 1 do
        p.(i) <-
          Precision.fma prec beta
            (Precision.fma prec (-. !om) v.(i) p.(i))
            r.(i)
      done;
      let phat = apply_m p in
      let v' = ctx.Solver.spmv phat in
      incr iters;
      Array.blit v' 0 v 0 n;
      let denom = Vector.dot ~prec rstar v in
      if denom = 0.0 then outcome := Some (Solver.Breakdown "r*ᵀv = 0")
      else begin
        alpha := Precision.div prec rho1 denom;
        let s = Vector.copy r in
        Vector.axpy ~prec (-. !alpha) v s;
        let snorm = Vector.nrm2 ~prec s in
        if snorm <= ctx.Solver.target then begin
          Vector.axpy ~prec !alpha phat x;
          Solver.record ctx snorm;
          outcome := Some Solver.Converged
        end
        else begin
          let shat = apply_m s in
          let t = ctx.Solver.spmv shat in
          incr iters;
          let tt = Vector.dot ~prec t t in
          if tt = 0.0 then outcome := Some (Solver.Breakdown "t = 0")
          else begin
            om := Precision.div prec (Vector.dot ~prec t s) tt;
            Vector.axpy ~prec !alpha phat x;
            Vector.axpy ~prec !om shat x;
            Array.blit s 0 r 0 n;
            Vector.axpy ~prec (-. !om) t r;
            rho := rho1;
            let rnorm = Vector.nrm2 ~prec r in
            Solver.record ctx rnorm;
            if rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
            else if !iters >= config.Solver.max_iters then
              outcome := Some Solver.Max_iterations
            else if !om = 0.0 then
              outcome := Some (Solver.Breakdown "omega = 0")
            else check_guard rnorm
          end
        end
      end
    end
      done
    with Solver.Guard_restart ->
      rearm ();
      again := true
  done;
  let outcome = match !outcome with Some o -> o | None -> Solver.Max_iterations in
  (x, Solver.finish ctx ~outcome ~iterations:!iters ~x ~b ~started ~a)
