(** Shared types and plumbing for the iterative solvers.

    The stopping rule matches the paper's experiments: start from a zero
    initial guess, stop once the 2-norm of the residual has dropped by
    [rtol] relative to the right-hand side (10⁻⁶ in Table I), give up after
    [max_iters] (10,000 in Table I). *)

open Vblu_smallblas
open Vblu_precond

type config = {
  max_iters : int;
  rtol : float;  (** relative residual reduction target. *)
  record_history : bool;  (** keep per-iteration residual norms. *)
}

val default_config : config
(** 10,000 iterations, [rtol = 1e-6], no history. *)

type outcome =
  | Converged
  | Max_iterations
  | Breakdown of string
      (** the solver hit a zero denominator or stagnated irrecoverably. *)

type stats = {
  outcome : outcome;
  iterations : int;  (** matrix-vector products with [A] consumed. *)
  residual_norm : float;  (** final true-residual 2-norm. *)
  rhs_norm : float;
  solve_seconds : float;
  history : float array;  (** residual norms, if recorded. *)
}

val converged : stats -> bool

val pp_stats : Format.formatter -> stats -> unit

(** {1 Internal helpers for the solver implementations} *)

type ctx = {
  prec : Precision.t;
  spmv : Vector.t -> Vector.t;  (** the operator. *)
  mutable precond : Preconditioner.t;
      (** mutable so the soft-error {!guard} can swap in a freshly built
          preconditioner mid-solve. *)
  b_norm : float;
  target : float;  (** absolute residual target [rtol * ‖b‖]. *)
  cfg : config;
  mutable recorded : float list;
  obs : Vblu_obs.Ctx.t option;
      (** observability context shared by {!record}, {!guard_check} and
          {!finish}; [None] (the default) keeps the solve bit-identical
          to the uninstrumented path. *)
  name : string;  (** trace/metric prefix, e.g. ["idr"]. *)
}

val make_ctx :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?obs:Vblu_obs.Ctx.t ->
  ?name:string ->
  Vblu_sparse.Csr.t ->
  Vector.t ->
  config ->
  ctx
(** Validates shapes and builds the solve context.
    @raise Invalid_argument on a non-square matrix or mismatched sizes. *)

val record : ctx -> float -> unit
(** Append to the residual history (when [record_history]) and, with an
    observability context, emit a ["<name>.residual"] counter sample and
    advance the simulated clock by a nominal deterministic 1 µs — the
    solver itself is host code with no modelled kernel time. *)

exception Guard_restart
(** Raised internally by a solver iteration when {!guard_check} asks for a
    restart; each solver catches it and re-arms its recurrences from the
    current iterate. *)

type guard

val guard : ?window:int -> (unit -> Preconditioner.t) -> guard
(** Soft-error guard state for one solve: trips on a non-finite residual
    norm, or on stagnation — no meaningful residual improvement across
    [window] (default 200) consecutive checks.  Solvers build one only
    when the caller passes [?refresh_precond], so default solves are
    bit-identical to the unguarded path. *)

val guard_check :
  ctx -> guard -> float -> [ `Ok | `Restart of string | `Break of string ]
(** Feed one residual norm to the guard.  [`Restart why] is returned at
    most once per solve: the context's preconditioner has already been
    replaced via the refresh function, and the solver should restart its
    recurrences (conventionally by raising {!Guard_restart}).  A second
    trip yields [`Break "guard: ..."], to be reported as a
    {!Breakdown}. *)

val finish :
  ctx -> outcome:outcome -> iterations:int -> x:Vector.t -> b:Vector.t ->
  started:float -> a:Vblu_sparse.Csr.t -> stats
(** Computes the true final residual (not the recurrence residual) and
    assembles the stats record. *)
