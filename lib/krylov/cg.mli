(** Preconditioned Conjugate Gradients for SPD systems.

    Not part of the paper's evaluation, but the natural smoke test for a
    preconditioner (it is very sensitive to a non-SPD or broken [M⁻¹]) and
    the solver a downstream user will reach for first on SPD workloads. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?config:Solver.config ->
  ?refresh_precond:(unit -> Preconditioner.t) ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** Standard PCG from a zero initial guess; [stats.iterations] counts
    applications of [A].  [?refresh_precond] arms the soft-error guard
    ({!Solver.guard}): one preconditioner rebuild + restart from the
    current iterate on a non-finite or stagnating residual, then
    [Breakdown "guard: ..."] on a second trip; omitted, the solve is
    bit-identical to previous behavior. *)
