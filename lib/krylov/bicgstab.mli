(** Preconditioned BiCGSTAB for general nonsymmetric systems.

    The classic stabilized bi-conjugate gradient method [van der Vorst
    1992; Saad 2003] with right preconditioning — the other short-recurrence
    nonsymmetric solver MAGMA-sparse offers next to IDR(s), included so the
    examples can contrast the two on the same preconditioners. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?config:Solver.config ->
  ?refresh_precond:(unit -> Preconditioner.t) ->
  ?obs:Vblu_obs.Ctx.t ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** [stats.iterations] counts applications of [A] (two per BiCGSTAB
    step).

    [?refresh_precond] arms the soft-error guard ({!Solver.guard}): one
    preconditioner rebuild + recurrence restart from the current iterate
    (fresh shadow residual, zeroed directions) on a non-finite or
    stagnating residual, then [Breakdown "guard: ..."] on a second trip;
    omitted, the solve is bit-identical to previous behavior.

    [?obs] records per-iteration residual samples, guard events and the
    final outcome into an observability context; omitted, nothing is
    recorded. *)
