open Vblu_smallblas
open Vblu_precond

let solve ?(prec = Precision.Double) ?precond ?(restart = 30)
    ?(config = Solver.default_config) ?refresh_precond ?obs a b =
  if restart < 1 then invalid_arg "Gmres.solve: restart < 1";
  let ctx = Solver.make_ctx ~prec ?precond ?obs ~name:"gmres" a b config in
  let sguard = Option.map Solver.guard refresh_precond in
  let started = Sys.time () in
  let n = Array.length b in
  let m = restart in
  let x = Vector.create n in
  let iters = ref 0 in
  let outcome = ref None in
  let apply_m y = Preconditioner.apply ctx.Solver.precond y in
  let check_guard rnorm =
    match sguard with
    | None -> ()
    | Some gd -> (
      match Solver.guard_check ctx gd rnorm with
      | `Ok -> ()
      | `Break why -> outcome := Some (Solver.Breakdown why)
      | `Restart _ -> raise Solver.Guard_restart)
  in
  while !outcome = None do
    (* One restart cycle.  A guard-triggered refresh aborts the cycle (the
       partial Arnoldi basis was built with the old, possibly corrupted
       preconditioner, so its least-squares update is discarded) and the
       next cycle restarts naturally from the current iterate with the
       fresh preconditioner — GMRES's own restart is the re-arm. *)
    try
    let r = Vector.sub ~prec b (ctx.Solver.spmv x) in
    let beta = Vector.nrm2 ~prec r in
    Solver.record ctx beta;
    if beta <= ctx.Solver.target then outcome := Some Solver.Converged
    else begin
      check_guard beta;
      let v = Array.make (m + 1) [||] in
      v.(0) <- Vector.copy r;
      Vector.scal ~prec (1.0 /. beta) v.(0);
      let h = Array.make_matrix (m + 1) m 0.0 in
      (* Givens rotation coefficients and the transformed rhs. *)
      let cs = Array.make m 0.0 and sn = Array.make m 0.0 in
      let g = Array.make (m + 1) 0.0 in
      g.(0) <- beta;
      let j = ref 0 in
      let cycle_done = ref false in
      let exhausted = ref false in
      while (not !cycle_done) && !outcome = None do
        let jj = !j in
        let w = ctx.Solver.spmv (apply_m v.(jj)) in
        incr iters;
        (* Modified Gram-Schmidt. *)
        for i = 0 to jj do
          h.(i).(jj) <- Vector.dot ~prec v.(i) w;
          Vector.axpy ~prec (-.h.(i).(jj)) v.(i) w
        done;
        h.(jj + 1).(jj) <- Vector.nrm2 ~prec w;
        if h.(jj + 1).(jj) <> 0.0 then begin
          v.(jj + 1) <- Vector.copy w;
          Vector.scal ~prec (1.0 /. h.(jj + 1).(jj)) v.(jj + 1)
        end
        else
          (* The Krylov space is exhausted: the least-squares residual can
             only be trusted against the true residual below. *)
          exhausted := true;
        (* Apply previous rotations to the new column, then a new one. *)
        for i = 0 to jj - 1 do
          let t = (cs.(i) *. h.(i).(jj)) +. (sn.(i) *. h.(i + 1).(jj)) in
          h.(i + 1).(jj) <- (-.sn.(i) *. h.(i).(jj)) +. (cs.(i) *. h.(i + 1).(jj));
          h.(i).(jj) <- t
        done;
        let denom = Float.hypot h.(jj).(jj) h.(jj + 1).(jj) in
        if denom = 0.0 then outcome := Some (Solver.Breakdown "Arnoldi breakdown")
        else begin
          cs.(jj) <- h.(jj).(jj) /. denom;
          sn.(jj) <- h.(jj + 1).(jj) /. denom;
          h.(jj).(jj) <- denom;
          h.(jj + 1).(jj) <- 0.0;
          g.(jj + 1) <- -.sn.(jj) *. g.(jj);
          g.(jj) <- cs.(jj) *. g.(jj);
          let resid = Float.abs g.(jj + 1) in
          Solver.record ctx resid;
          if resid <= ctx.Solver.target then begin
            cycle_done := true;
            outcome := Some Solver.Converged
          end
          else if !iters >= config.Solver.max_iters then begin
            cycle_done := true;
            outcome := Some Solver.Max_iterations
          end
          else begin
            if jj = m - 1 || !exhausted then cycle_done := true;
            check_guard resid
          end;
          incr j
        end
      done;
      (* Back-substitute and update x through the preconditioner. *)
      let k = !j in
      if k > 0 then begin
        let y = Array.make k 0.0 in
        for i = k - 1 downto 0 do
          let acc = ref g.(i) in
          for l = i + 1 to k - 1 do
            acc := Precision.fma prec (-.h.(i).(l)) y.(l) !acc
          done;
          y.(i) <- Precision.div prec !acc h.(i).(i)
        done;
        let z = Vector.create n in
        for i = 0 to k - 1 do
          Vector.axpy ~prec y.(i) v.(i) z
        done;
        let mz = apply_m z in
        Vector.axpy ~prec 1.0 mz x
      end;
      (* Re-validate an in-cycle convergence claim against the true
         residual: the least-squares recurrence can hit zero spuriously
         when Arnoldi exhausts the Krylov space (singular or deficient
         operators). *)
      (match !outcome with
      | Some Solver.Converged ->
        let r = Vector.sub ~prec b (ctx.Solver.spmv x) in
        if Vector.nrm2 ~prec r > ctx.Solver.target then
          if !exhausted then
            outcome :=
              Some
                (Solver.Breakdown
                   "Krylov space exhausted before reaching the tolerance")
          else outcome := None
      | _ -> ());
      if !outcome = None && !iters >= config.Solver.max_iters then
        outcome := Some Solver.Max_iterations
    end
    with Solver.Guard_restart ->
      (* Keep the iterate unless the corruption reached it; the next
         cycle recomputes the true residual with the refreshed
         preconditioner. *)
      if Array.exists (fun v -> not (Float.is_finite v)) x then
        Vector.fill x 0.0;
      if !iters >= config.Solver.max_iters then
        outcome := Some Solver.Max_iterations
  done;
  let outcome = match !outcome with Some o -> o | None -> Solver.Max_iterations in
  (x, Solver.finish ctx ~outcome ~iterations:!iters ~x ~b ~started ~a)
