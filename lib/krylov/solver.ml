open Vblu_smallblas
open Vblu_precond

type config = {
  max_iters : int;
  rtol : float;
  record_history : bool;
}

let default_config = { max_iters = 10_000; rtol = 1e-6; record_history = false }

type outcome = Converged | Max_iterations | Breakdown of string

type stats = {
  outcome : outcome;
  iterations : int;
  residual_norm : float;
  rhs_norm : float;
  solve_seconds : float;
  history : float array;
}

let converged s = s.outcome = Converged

let pp_stats ppf s =
  let outcome =
    match s.outcome with
    | Converged -> "converged"
    | Max_iterations -> "max-iterations"
    | Breakdown why -> "breakdown: " ^ why
  in
  Format.fprintf ppf "%s in %d its, ‖r‖=%.3e (‖b‖=%.3e), %.3fs" outcome
    s.iterations s.residual_norm s.rhs_norm s.solve_seconds

type ctx = {
  prec : Precision.t;
  spmv : Vector.t -> Vector.t;
  mutable precond : Preconditioner.t;
  b_norm : float;
  target : float;
  cfg : config;
  mutable recorded : float list;
  obs : Vblu_obs.Ctx.t option;
  name : string;
}

let make_ctx ?(prec = Precision.Double) ?precond ?obs ?(name = "krylov")
    (a : Vblu_sparse.Csr.t) b cfg =
  let n, cols = Vblu_sparse.Csr.dims a in
  if n <> cols then invalid_arg "Krylov: matrix not square";
  if Array.length b <> n then invalid_arg "Krylov: rhs dimension mismatch";
  let precond =
    match precond with Some p -> p | None -> Preconditioner.identity n
  in
  if precond.Preconditioner.dim <> n then
    invalid_arg "Krylov: preconditioner dimension mismatch";
  let b_norm = Vector.nrm2 ~prec b in
  {
    prec;
    spmv = (fun x -> Vblu_sparse.Csr.spmv ~prec a x);
    precond;
    b_norm;
    target = cfg.rtol *. b_norm;
    cfg;
    recorded = [];
    obs;
    name;
  }

let record ctx r =
  if ctx.cfg.record_history then ctx.recorded <- r :: ctx.recorded;
  if Vblu_obs.Ctx.enabled ctx.obs then begin
    (* One deterministic 1 µs tick per recorded iteration: the solver runs
       host-side (no modelled kernel time), and wall-clock must never
       enter a trace, so this nominal tick is what spreads the iteration
       samples along the simulated timeline. *)
    Vblu_obs.Ctx.sample ctx.obs (ctx.name ^ ".residual") (fun () ->
        [ ("rnorm", r) ]);
    Vblu_obs.Ctx.incr ctx.obs "krylov.records" 1.0;
    Vblu_obs.Ctx.advance ctx.obs 1.0
  end

exception Guard_restart

(* NaN/Inf + stagnation guard.  Built only when the caller supplies a
   preconditioner refresh function, so default solves stay bit-identical
   (no guard state, no extra float compares feeding back into the
   recurrences — the checks below read [rnorm] without modifying it). *)
type guard = {
  g_refresh : unit -> Preconditioner.t;
  g_window : int;
  mutable g_best : float;
  mutable g_since : int;
  mutable g_used : bool;
}

let guard ?(window = 200) refresh =
  {
    g_refresh = refresh;
    g_window = window;
    g_best = infinity;
    g_since = 0;
    g_used = false;
  }

let guard_check ctx g rnorm =
  let trip =
    if not (Float.is_finite rnorm) then Some "non-finite residual"
    else begin
      if rnorm < 0.999 *. g.g_best then begin
        g.g_best <- rnorm;
        g.g_since <- 0
      end
      else g.g_since <- g.g_since + 1;
      if g.g_since > g.g_window then Some "stagnation" else None
    end
  in
  match trip with
  | None -> `Ok
  | Some why ->
    if g.g_used then begin
      Vblu_obs.Ctx.instant ctx.obs ~cat:"krylov" "guard.break"
        ~args:[ ("why", Vblu_obs.Trace.Str why) ];
      Vblu_obs.Ctx.incr ctx.obs "krylov.guard.breaks" 1.0;
      `Break (Printf.sprintf "guard: %s" why)
    end
    else begin
      (* One refresh per solve: rebuild the preconditioner (flushing any
         corrupted factors) and let the solver restart its recurrences
         from the current iterate. *)
      g.g_used <- true;
      g.g_best <- infinity;
      g.g_since <- 0;
      Vblu_obs.Ctx.instant ctx.obs ~cat:"krylov" "guard.restart"
        ~args:[ ("why", Vblu_obs.Trace.Str why) ];
      Vblu_obs.Ctx.incr ctx.obs "krylov.guard.restarts" 1.0;
      ctx.precond <- g.g_refresh ();
      `Restart why
    end

let finish ctx ~outcome ~iterations ~x ~b ~started ~a =
  let prec = ctx.prec in
  let r = Vector.sub ~prec b (Vblu_sparse.Csr.spmv ~prec a x) in
  let residual_norm = Vector.nrm2 ~prec r in
  (if Vblu_obs.Ctx.enabled ctx.obs then begin
     let slug =
       match outcome with
       | Converged -> "converged"
       | Max_iterations -> "max_iterations"
       | Breakdown _ -> "breakdown"
     in
     (* [solve_seconds] is wall-clock and deliberately left out of both
        the trace and the registry. *)
     Vblu_obs.Ctx.instant ctx.obs ~cat:"krylov" (ctx.name ^ ".done")
       ~args:
         [
           ("outcome", Vblu_obs.Trace.Str slug);
           ("iterations", Vblu_obs.Trace.Int iterations);
           ("residual_norm", Vblu_obs.Trace.Float residual_norm);
         ];
     Vblu_obs.Ctx.incr_l ctx.obs "krylov.outcome" [ ("outcome", slug) ] 1.0;
     Vblu_obs.Ctx.incr ctx.obs "krylov.solves" 1.0;
     Vblu_obs.Ctx.observe ctx.obs "krylov.iterations" (float_of_int iterations)
   end);
  {
    outcome;
    iterations;
    residual_norm;
    rhs_norm = ctx.b_norm;
    solve_seconds = Sys.time () -. started;
    history = Array.of_list (List.rev ctx.recorded);
  }
