open Vblu_smallblas
open Vblu_precond

type config = {
  max_iters : int;
  rtol : float;
  record_history : bool;
}

let default_config = { max_iters = 10_000; rtol = 1e-6; record_history = false }

type outcome = Converged | Max_iterations | Breakdown of string

type stats = {
  outcome : outcome;
  iterations : int;
  residual_norm : float;
  rhs_norm : float;
  solve_seconds : float;
  history : float array;
}

let converged s = s.outcome = Converged

let pp_stats ppf s =
  let outcome =
    match s.outcome with
    | Converged -> "converged"
    | Max_iterations -> "max-iterations"
    | Breakdown why -> "breakdown: " ^ why
  in
  Format.fprintf ppf "%s in %d its, ‖r‖=%.3e (‖b‖=%.3e), %.3fs" outcome
    s.iterations s.residual_norm s.rhs_norm s.solve_seconds

type ctx = {
  prec : Precision.t;
  spmv : Vector.t -> Vector.t;
  mutable precond : Preconditioner.t;
  b_norm : float;
  target : float;
  cfg : config;
  mutable recorded : float list;
}

let make_ctx ?(prec = Precision.Double) ?precond (a : Vblu_sparse.Csr.t) b cfg =
  let n, cols = Vblu_sparse.Csr.dims a in
  if n <> cols then invalid_arg "Krylov: matrix not square";
  if Array.length b <> n then invalid_arg "Krylov: rhs dimension mismatch";
  let precond =
    match precond with Some p -> p | None -> Preconditioner.identity n
  in
  if precond.Preconditioner.dim <> n then
    invalid_arg "Krylov: preconditioner dimension mismatch";
  let b_norm = Vector.nrm2 ~prec b in
  {
    prec;
    spmv = (fun x -> Vblu_sparse.Csr.spmv ~prec a x);
    precond;
    b_norm;
    target = cfg.rtol *. b_norm;
    cfg;
    recorded = [];
  }

let record ctx r =
  if ctx.cfg.record_history then ctx.recorded <- r :: ctx.recorded

exception Guard_restart

(* NaN/Inf + stagnation guard.  Built only when the caller supplies a
   preconditioner refresh function, so default solves stay bit-identical
   (no guard state, no extra float compares feeding back into the
   recurrences — the checks below read [rnorm] without modifying it). *)
type guard = {
  g_refresh : unit -> Preconditioner.t;
  g_window : int;
  mutable g_best : float;
  mutable g_since : int;
  mutable g_used : bool;
}

let guard ?(window = 200) refresh =
  {
    g_refresh = refresh;
    g_window = window;
    g_best = infinity;
    g_since = 0;
    g_used = false;
  }

let guard_check ctx g rnorm =
  let trip =
    if not (Float.is_finite rnorm) then Some "non-finite residual"
    else begin
      if rnorm < 0.999 *. g.g_best then begin
        g.g_best <- rnorm;
        g.g_since <- 0
      end
      else g.g_since <- g.g_since + 1;
      if g.g_since > g.g_window then Some "stagnation" else None
    end
  in
  match trip with
  | None -> `Ok
  | Some why ->
    if g.g_used then `Break (Printf.sprintf "guard: %s" why)
    else begin
      (* One refresh per solve: rebuild the preconditioner (flushing any
         corrupted factors) and let the solver restart its recurrences
         from the current iterate. *)
      g.g_used <- true;
      g.g_best <- infinity;
      g.g_since <- 0;
      ctx.precond <- g.g_refresh ();
      `Restart why
    end

let finish ctx ~outcome ~iterations ~x ~b ~started ~a =
  let prec = ctx.prec in
  let r = Vector.sub ~prec b (Vblu_sparse.Csr.spmv ~prec a x) in
  {
    outcome;
    iterations;
    residual_norm = Vector.nrm2 ~prec r;
    rhs_norm = ctx.b_norm;
    solve_seconds = Sys.time () -. started;
    history = Array.of_list (List.rev ctx.recorded);
  }
