open Vblu_smallblas
open Vblu_precond

(* Orthonormalize s random columns by modified Gram-Schmidt. *)
let shadow_space ~prec ~seed n s =
  let st = Random.State.make [| 0x1d2; seed |] in
  let cols =
    Array.init s (fun _ ->
        Array.init n (fun _ -> -1.0 +. (2.0 *. Random.State.float st 1.0)))
  in
  for j = 0 to s - 1 do
    for i = 0 to j - 1 do
      let h = Vector.dot ~prec cols.(i) cols.(j) in
      Vector.axpy ~prec (-.h) cols.(i) cols.(j)
    done;
    let nrm = Vector.nrm2 ~prec cols.(j) in
    if nrm > 0.0 then Vector.scal ~prec (1.0 /. nrm) cols.(j)
  done;
  cols

(* Forward substitution with the lower-triangular trailing block
   ms(k.., k..) — the small system of the biortho variant. *)
let solve_lower ~prec ms f k s =
  let c = Array.make (s - k) 0.0 in
  for i = k to s - 1 do
    let acc = ref f.(i) in
    for j = k to i - 1 do
      acc := Precision.fma prec (-.ms.(i).(j)) c.(j - k) !acc
    done;
    if ms.(i).(i) = 0.0 then raise Exit;
    c.(i - k) <- Precision.div prec !acc ms.(i).(i)
  done;
  c

let solve ?(prec = Precision.Double) ?precond ?(s = 4) ?(seed = 1)
    ?(smoothing = false) ?(config = Solver.default_config) ?refresh_precond
    ?obs a b =
  if s < 1 then invalid_arg "Idr.solve: s < 1";
  let ctx = Solver.make_ctx ~prec ?precond ?obs ~name:"idr" a b config in
  let sguard = Option.map Solver.guard refresh_precond in
  let started = Sys.time () in
  let n = Array.length b in
  let x = Vector.create n in
  let r = Vector.copy b in
  let p = shadow_space ~prec ~seed n s in
  let g = Array.init s (fun _ -> Vector.create n) in
  let u = Array.init s (fun _ -> Vector.create n) in
  (* ms is the s×s biorthogonality matrix, lower triangular by
     construction; start from the identity. *)
  let ms = Array.init s (fun i -> Array.init s (fun j -> if i = j then 1.0 else 0.0)) in
  let om = ref 1.0 in
  let iters = ref 0 in
  let rnorm = ref (Vector.nrm2 ~prec r) in
  (* Optional QMR-style smoothing: (xs, rs) is the returned pair and the
     pair the stopping test sees; eta minimizes ‖rs + eta (r - rs)‖. *)
  let xs = Vector.copy x and rs = Vector.copy r in
  let smooth () =
    if smoothing then begin
      let d = Vector.sub ~prec rs r in
      let dd = Vector.dot ~prec d d in
      if dd > 0.0 then begin
        let eta = Precision.div prec (Vector.dot ~prec rs d) dd in
        Vector.axpy ~prec (-.eta) d rs;
        let dx = Vector.sub ~prec xs x in
        Vector.axpy ~prec (-.eta) dx xs
      end;
      rnorm := Vector.nrm2 ~prec rs
    end
  in
  Solver.record ctx !rnorm;
  let outcome = ref None in
  if !rnorm <= ctx.Solver.target then outcome := Some Solver.Converged;
  let apply_m v = Preconditioner.apply ctx.Solver.precond v in
  let check_guard () =
    match sguard with
    | None -> ()
    | Some gd -> (
      match Solver.guard_check ctx gd !rnorm with
      | `Ok -> ()
      | `Break why -> outcome := Some (Solver.Breakdown why)
      | `Restart _ -> raise Solver.Guard_restart)
  in
  (* Re-arm the recurrences after a guard-triggered preconditioner
     refresh: keep the iterate (zeroing it if the corruption reached it),
     recompute the true residual, and drop the Sonneveld-space state. *)
  let rearm () =
    if Array.exists (fun v -> not (Float.is_finite v)) x then
      Vector.fill x 0.0;
    let ax = ctx.Solver.spmv x in
    incr iters;
    Vector.blit ~src:b ~dst:r;
    Vector.axpy ~prec (-1.0) ax r;
    for i = 0 to s - 1 do
      g.(i) <- Vector.create n;
      u.(i) <- Vector.create n;
      for j = 0 to s - 1 do
        ms.(i).(j) <- (if i = j then 1.0 else 0.0)
      done
    done;
    om := 1.0;
    rnorm := Vector.nrm2 ~prec r;
    Vector.blit ~src:x ~dst:xs;
    Vector.blit ~src:r ~dst:rs;
    Solver.record ctx !rnorm;
    if !rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
    else if !iters >= config.Solver.max_iters then
      outcome := Some Solver.Max_iterations
  in
  (try
     let again = ref true in
     while !again do
       again := false;
       try
         while !outcome = None do
       let f = Array.init s (fun i -> Vector.dot ~prec p.(i) r) in
       let k = ref 0 in
       while !outcome = None && !k < s do
         let kk = !k in
         let c =
           match solve_lower ~prec ms f kk s with
           | c -> c
           | exception Exit ->
             outcome := Some (Solver.Breakdown "singular biortho system");
             [||]
         in
         if !outcome = None then begin
           (* v = r - Σ c_i g_i over the trailing directions. *)
           let v = Vector.copy r in
           for i = kk to s - 1 do
             Vector.axpy ~prec (-.c.(i - kk)) g.(i) v
           done;
           let vhat = apply_m v in
           (* u_k = om * vhat + Σ c_i u_i. *)
           let uk = Vector.copy vhat in
           Vector.scal ~prec !om uk;
           for i = kk to s - 1 do
             Vector.axpy ~prec c.(i - kk) u.(i) uk
           done;
           let gk = ctx.Solver.spmv uk in
           incr iters;
           (* Bi-orthogonalize the new direction against p_0..p_{k-1}. *)
           for i = 0 to kk - 1 do
             let alpha =
               Precision.div prec (Vector.dot ~prec p.(i) gk) ms.(i).(i)
             in
             Vector.axpy ~prec (-.alpha) g.(i) gk;
             Vector.axpy ~prec (-.alpha) u.(i) uk
           done;
           u.(kk) <- uk;
           g.(kk) <- gk;
           for i = kk to s - 1 do
             ms.(i).(kk) <- Vector.dot ~prec p.(i) gk
           done;
           if ms.(kk).(kk) = 0.0 then
             outcome := Some (Solver.Breakdown "zero pivot in IDR recurrence")
           else begin
             let beta = Precision.div prec f.(kk) ms.(kk).(kk) in
             Vector.axpy ~prec (-.beta) gk r;
             Vector.axpy ~prec beta uk x;
             rnorm := Vector.nrm2 ~prec r;
             smooth ();
             Solver.record ctx !rnorm;
             if !rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
             else if !iters >= config.Solver.max_iters then
               outcome := Some Solver.Max_iterations;
             if !outcome = None then check_guard ();
             for i = kk + 1 to s - 1 do
               f.(i) <- Precision.fma prec (-.beta) ms.(i).(kk) f.(i)
             done;
             f.(kk) <- 0.0
           end;
           incr k
         end
       done;
       if !outcome = None then begin
         (* Dimension-reduction step into the next Sonneveld space. *)
         let vhat = apply_m r in
         let t = ctx.Solver.spmv vhat in
         incr iters;
         let tt = Vector.dot ~prec t t in
         let tr = Vector.dot ~prec t r in
         if tt = 0.0 then
           outcome := Some (Solver.Breakdown "t = 0 in dimension-reduction step")
         else begin
           (* rho needs the unsmoothed residual norm. *)
           let tn = sqrt tt and rn = Vector.nrm2 ~prec r in
           let rho = if tn *. rn = 0.0 then 0.0 else tr /. (tn *. rn) in
           om := tr /. tt;
           (* The standard ω-stabilization ("maintaining the convergence"). *)
           if Float.abs rho < 0.7 && Float.abs rho > 0.0 then
             om := !om *. 0.7 /. Float.abs rho;
           if !om = 0.0 then
             outcome := Some (Solver.Breakdown "omega = 0")
           else begin
             Vector.axpy ~prec !om vhat x;
             Vector.axpy ~prec (-. !om) t r;
             rnorm := Vector.nrm2 ~prec r;
             smooth ();
             Solver.record ctx !rnorm;
             if !rnorm <= ctx.Solver.target then outcome := Some Solver.Converged
             else if !iters >= config.Solver.max_iters then
               outcome := Some Solver.Max_iterations;
             if !outcome = None then check_guard ()
           end
         end
       end
         done
       with Solver.Guard_restart ->
         rearm ();
         again := true
     done
   with e ->
     outcome := Some (Solver.Breakdown (Printexc.to_string e)));
  let outcome = match !outcome with Some o -> o | None -> Solver.Max_iterations in
  let x = if smoothing then xs else x in
  (x, Solver.finish ctx ~outcome ~iterations:!iters ~x ~b ~started ~a)
