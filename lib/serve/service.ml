open Vblu_smallblas

type config = {
  capacity : int;
  max_batch : int;
  min_fill : int;
  max_wait : float;
  window : float;
  retry : Policy.retry;
  breaker : Policy.breaker_config;
  seed : int;
  prec : Precision.t;
  abft : bool;
  setup_cache : bool;
}

let default_config =
  {
    capacity = 256;
    max_batch = 64;
    min_fill = 16;
    max_wait = 2e-3;
    window = 1e-3;
    retry = Policy.default_retry;
    breaker = Policy.default_breaker;
    seed = 42;
    prec = Precision.Double;
    abft = true;
    setup_cache = false;
  }

type reject_reason =
  | Queue_full of { depth : int; capacity : int }
  | Invalid_problem of string

let reject_reason_text = function
  | Queue_full { depth; capacity } ->
    Printf.sprintf "queue full (%d/%d)" depth capacity
  | Invalid_problem msg -> "invalid problem: " ^ msg

type status =
  | Pending
  | Completed of {
      y : Vector.t;
      degraded : bool;
      demoted : bool;
      latency : float;
      attempts : int;
    }
  | Rejected of reject_reason
  | Shed of { deadline : float }
  | Failed of { reason : string; attempts : int }

type req = {
  id : int;
  tenant : string;
  priority : Policy.priority;
  deadline : float option;
  breakdown : Policy.breakdown;
  problem : Batcher.problem;
  submitted_at : float;
  mutable attempts : int;  (* launches consumed so far *)
  mutable not_before : float;  (* retry backoff gate *)
}

type t = {
  cfg : config;
  pool : Vblu_par.Pool.t;
  faults : Vblu_fault.Fault.Plan.t option;
  cache : Setup_cache.t option;
  obs : Vblu_obs.Ctx.t option;
  clock : Clock.t;
  lock : Mutex.t;
  queue : req Queue.t;
  mutable retries : req list;  (* awaiting their backoff gate *)
  statuses : (int, status) Hashtbl.t;
  tenant_tbl : Tenant.t;
  brk : Policy.breaker;
  mutable next_id : int;
  mutable live : int;  (* submitted, not yet terminal *)
  mutable steps : int;
  mutable launches : int;
  mutable coalesced : int;
  mutable setup_fresh : int;
  mutable setup_reused : int;
  mutable occupancy_sum : float;
  mutable max_step_seconds : float;
  mutable latencies : float list;
}

let create ?(pool = Vblu_par.Pool.sequential) ?faults ?obs ?clock cfg =
  if cfg.capacity < 1 then invalid_arg "Serve.Service.create: capacity < 1";
  if cfg.max_batch < 1 then invalid_arg "Serve.Service.create: max_batch < 1";
  if cfg.min_fill < 0 then invalid_arg "Serve.Service.create: min_fill < 0";
  if not (cfg.window > 0.0) then
    invalid_arg "Serve.Service.create: window must be positive";
  if cfg.max_wait < 0.0 then invalid_arg "Serve.Service.create: max_wait < 0";
  let clock = match clock with Some c -> c | None -> Clock.manual () in
  {
    cfg;
    pool;
    faults;
    cache = (if cfg.setup_cache then Some (Setup_cache.create ()) else None);
    obs;
    clock;
    lock = Mutex.create ();
    queue = Queue.create ~capacity:cfg.capacity;
    retries = [];
    statuses = Hashtbl.create 64;
    tenant_tbl = Tenant.create ();
    brk = Policy.breaker cfg.breaker;
    next_id = 0;
    live = 0;
    steps = 0;
    launches = 0;
    coalesced = 0;
    setup_fresh = 0;
    setup_reused = 0;
    occupancy_sum = 0.0;
    max_step_seconds = 0.0;
    latencies = [];
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Terminal transitions all funnel through here so [live] and the
   per-tenant tallies can never drift from the status table — the
   conservation invariant is enforced structurally. *)
let finish t (r : req) st event =
  Hashtbl.replace t.statuses r.id st;
  t.live <- t.live - 1;
  Tenant.note t.tenant_tbl ~obs:t.obs ~tenant:r.tenant event

let submit t ?(tenant = "default") ?(priority = Policy.Standard) ?deadline
    ?(breakdown = Policy.Identity_block) problem =
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Tenant.note t.tenant_tbl ~obs:t.obs ~tenant Tenant.Submitted;
      let reject reason =
        Hashtbl.replace t.statuses id (Rejected reason);
        Tenant.note t.tenant_tbl ~obs:t.obs ~tenant Tenant.Rejected
      in
      (match Batcher.validate problem with
      | Error msg -> reject (Invalid_problem msg)
      | Ok () ->
        let r =
          {
            id;
            tenant;
            priority;
            deadline;
            breakdown;
            problem;
            submitted_at = Clock.now t.clock;
            attempts = 0;
            not_before = neg_infinity;
          }
        in
        if Queue.submit t.queue ~priority r then begin
          Hashtbl.replace t.statuses id Pending;
          t.live <- t.live + 1
        end
        else
          reject
            (Queue_full
               { depth = Queue.length t.queue; capacity = t.cfg.capacity }));
      id)

let status t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.statuses id with
      | Some st -> st
      | None -> invalid_arg (Printf.sprintf "Serve.Service.status: unknown id %d" id))

let expired now (r : req) =
  match r.deadline with Some d -> d < now | None -> false

let breaker_rank = function
  | Policy.Closed -> 0
  | Policy.Half_open -> 1
  | Policy.Open -> 2

let step_locked ?(force = false) t =
  let now = Clock.now t.clock in
  let pressure =
    float_of_int (Queue.length t.queue) /. float_of_int t.cfg.capacity
  in
  let state = Policy.breaker_state t.brk in
  (* 1. Shed everything whose deadline has already passed — queued and
     backoff-parked alike — before deciding what launches. *)
  let shed (r : req) =
    finish t r
      (Shed { deadline = Option.value r.deadline ~default:now })
      Tenant.Shed
  in
  List.iter shed (Queue.reject_if t.queue (expired now));
  let stale, keep = List.partition (expired now) t.retries in
  t.retries <- keep;
  List.iter shed stale;
  (* 2. Assemble the wave: backoff-expired retries first (oldest id
     first), then the queue in (priority, FIFO) order.  The coalesce
     gate holds small waves back to fill batches — unless forced, the
     oldest waiter has aged past [max_wait], or the breaker is open
     (zero coalesce-wait: drain at full rate every window). *)
  let ready, waiting =
    List.partition (fun r -> r.not_before <= now) t.retries
  in
  let ready = List.sort (fun a b -> compare a.id b.id) ready in
  let oldest_wait =
    match Queue.oldest t.queue with
    | Some r -> now -. r.submitted_at
    | None -> neg_infinity
  in
  let depth = Queue.length t.queue in
  let launch_gate =
    force
    || ready <> []
    || depth >= max 1 t.cfg.min_fill
    || (depth > 0 && (state = Policy.Open || oldest_wait >= t.cfg.max_wait))
  in
  let wave =
    if not launch_gate then []
    else begin
      let rec take n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: tl ->
          let got, rest = take (n - 1) tl in
          (x :: got, rest)
      in
      let taken, leftover = take t.cfg.max_batch ready in
      t.retries <- leftover @ waiting;
      taken @ Queue.drain t.queue ~max:(t.cfg.max_batch - List.length taken)
    end
  in
  if not launch_gate then t.retries <- ready @ waiting;
  (* 3. Under an open breaker, best-effort members of the wave are
     demoted to the identity preconditioner — served immediately,
     without joining the launch. *)
  let demoted, launched =
    if state = Policy.Open then
      List.partition (fun r -> r.priority = Policy.Best_effort) wave
    else ([], wave)
  in
  let launched = Array.of_list launched in
  let report =
    if Array.length launched = 0 then Batcher.empty_report
    else
      Batcher.run ~pool:t.pool ~prec:t.cfg.prec ?faults:t.faults
        ~abft:t.cfg.abft ?cache:t.cache ?obs:t.obs
        (Array.map (fun r -> r.problem) launched)
  in
  let step_seconds = t.cfg.window +. report.Batcher.modelled_seconds in
  let now' = now +. step_seconds in
  List.iter
    (fun (r : req) ->
      Tenant.note t.tenant_tbl ~obs:t.obs ~tenant:r.tenant Tenant.Demoted;
      let latency = now' -. r.submitted_at in
      t.latencies <- latency :: t.latencies;
      Vblu_obs.Ctx.observe t.obs "serve.latency" latency;
      finish t r
        (Completed
           {
             y = Array.copy r.problem.Batcher.rhs;
             degraded = false;
             demoted = true;
             latency;
             attempts = r.attempts;
           })
        Tenant.Completed)
    demoted;
  Array.iteri
    (fun i (r : req) ->
      let o = report.Batcher.outcomes.(i) in
      r.attempts <- r.attempts + 1;
      if o.Batcher.faulted_blocks <> [] then
        if r.attempts <= t.cfg.retry.Policy.budget then begin
          r.not_before <-
            now'
            +. Policy.backoff t.cfg.retry ~seed:t.cfg.seed ~request:r.id
                 ~attempt:r.attempts;
          t.retries <- r :: t.retries;
          Tenant.note t.tenant_tbl ~obs:t.obs ~tenant:r.tenant Tenant.Retried
        end
        else
          finish t r
            (Failed
               {
                 reason =
                   Printf.sprintf
                     "fault verdict persisted after %d retries"
                     t.cfg.retry.Policy.budget;
                 attempts = r.attempts;
               })
            Tenant.Failed
      else if o.Batcher.degraded_blocks <> [] && r.breakdown = Policy.Fail_request
      then
        finish t r
          (Failed
             {
               reason =
                 Printf.sprintf "breakdown in %d diagonal block(s)"
                   (List.length o.Batcher.degraded_blocks);
               attempts = r.attempts;
             })
          Tenant.Failed
      else begin
        let latency = now' -. r.submitted_at in
        t.latencies <- latency :: t.latencies;
        Vblu_obs.Ctx.observe t.obs "serve.latency" latency;
        finish t r
          (Completed
             {
               y = o.Batcher.y;
               degraded = o.Batcher.degraded_blocks <> [];
               demoted = false;
               latency;
               attempts = r.attempts;
             })
          Tenant.Completed
      end)
    launched;
  (* 4. Bookkeeping: breaker observes this window's pressure, stats and
     gauges refresh, virtual time moves past the launch. *)
  ignore (Policy.breaker_note t.brk ~pressure);
  t.steps <- t.steps + 1;
  if Array.length launched > 0 then begin
    t.launches <- t.launches + 1;
    t.coalesced <- t.coalesced + report.Batcher.coalesced_blocks;
    t.setup_fresh <- t.setup_fresh + report.Batcher.setup_fresh_blocks;
    t.setup_reused <- t.setup_reused + report.Batcher.setup_reused_blocks;
    t.occupancy_sum <-
      t.occupancy_sum
      +. (float_of_int (Array.length launched) /. float_of_int t.cfg.max_batch);
    Vblu_obs.Ctx.observe t.obs "serve.launch.occupancy"
      (float_of_int (Array.length launched) /. float_of_int t.cfg.max_batch)
  end;
  if step_seconds > t.max_step_seconds then t.max_step_seconds <- step_seconds;
  Vblu_obs.Ctx.set_gauge t.obs "serve.queue.depth"
    (float_of_int (Queue.length t.queue));
  Vblu_obs.Ctx.set_gauge t.obs "serve.breaker.state"
    (float_of_int (breaker_rank (Policy.breaker_state t.brk)));
  (match t.obs with
  | Some { Vblu_obs.Ctx.metrics = Some m; _ } ->
    Vblu_simt.Launch.Cache.export_gauges m
  | _ -> ());
  Clock.advance t.clock step_seconds

let step ?force t = locked t (fun () -> step_locked ?force t)

let pending t = locked t (fun () -> t.live)

let drain t =
  let budget = ref 1_000_000 in
  while pending t > 0 && !budget > 0 do
    decr budget;
    step ~force:true t
  done;
  if pending t > 0 then
    invalid_arg "Serve.Service.drain: no progress after 1e6 forced steps"

let now t = locked t (fun () -> Clock.now t.clock)

let breaker_state t = locked t (fun () -> Policy.breaker_state t.brk)

type health = {
  h_now : float;
  h_queue_depth : int;
  h_pending : int;
  h_breaker : Policy.breaker_state;
  h_steps : int;
  h_launches : int;
  h_coalesced_blocks : int;
  h_setup_fresh_blocks : int;
  h_setup_reused_blocks : int;
  h_mean_occupancy : float;
  h_p50_latency : float;
  h_p99_latency : float;
  h_max_step_seconds : float;
  h_cache_hits : int;
  h_cache_misses : int;
  h_cache_direct : int;
  h_totals : Tenant.counts;
}

(* Exact nearest-rank percentile: the smallest value with at least
   [q * n] observations at or below it. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let health t =
  locked t (fun () ->
      let lat = Array.of_list t.latencies in
      Array.sort compare lat;
      let hits, misses = Vblu_simt.Launch.Cache.stats () in
      {
        h_now = Clock.now t.clock;
        h_queue_depth = Queue.length t.queue;
        h_pending = t.live;
        h_breaker = Policy.breaker_state t.brk;
        h_steps = t.steps;
        h_launches = t.launches;
        h_coalesced_blocks = t.coalesced;
        h_setup_fresh_blocks = t.setup_fresh;
        h_setup_reused_blocks = t.setup_reused;
        h_mean_occupancy =
          (if t.launches = 0 then 0.0
           else t.occupancy_sum /. float_of_int t.launches);
        h_p50_latency = percentile lat 0.50;
        h_p99_latency = percentile lat 0.99;
        h_max_step_seconds = t.max_step_seconds;
        h_cache_hits = hits;
        h_cache_misses = misses;
        h_cache_direct = Vblu_simt.Launch.Cache.direct_hits ();
        h_totals = Tenant.totals t.tenant_tbl;
      })

let tenants t = locked t (fun () -> Tenant.snapshot t.tenant_tbl)

let pp_health ppf h =
  Format.fprintf ppf
    "@[<v>now            %.6fs@,queue depth    %d@,pending        \
     %d@,breaker        %s@,steps          %d@,launches       \
     %d@,coalesced blks %d@,setup blocks   %d fresh / %d reused@,mean \
     occupancy %.3f@,p50 latency    \
     %.6fs@,p99 latency    %.6fs@,max step       %.6fs@,cache          \
     %d hits / %d misses / %d direct@]"
    h.h_now h.h_queue_depth h.h_pending
    (Policy.state_name h.h_breaker)
    h.h_steps h.h_launches h.h_coalesced_blocks h.h_setup_fresh_blocks
    h.h_setup_reused_blocks h.h_mean_occupancy
    h.h_p50_latency h.h_p99_latency h.h_max_step_seconds h.h_cache_hits
    h.h_cache_misses h.h_cache_direct
