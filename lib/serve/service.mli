(** The solver service: admission, coalescing, dispatch, degradation.

    A long-running front end over the batched kernels.  Clients
    {!submit} independent block-Jacobi problems; the service parks them
    in a bounded priority queue, coalesces waves of them into shared
    {!Batcher} launches, and parks results for asynchronous {!status}
    pickup.  Robustness machinery on the way through:

    - {b admission control}: a full queue or an invalid problem is
      rejected with a queryable reason — never an exception, never a
      silent drop;
    - {b deadlines}: a request whose deadline has passed is shed before
      the launch it would have joined (so overshoot of the completion
      time past a deadline is bounded by one dispatch window plus one
      modelled launch);
    - {b retry with backoff}: a request whose blocks come back with an
      ABFT fault verdict is relaunched after a deterministic jittered
      backoff, up to its retry budget — fault-plan claims are one-shot,
      so the retry runs clean; breakdowns (deterministic) are decided
      immediately by the request's {!Policy.breakdown} policy instead;
    - {b circuit breaker}: sustained queue pressure opens the breaker,
      which zeroes the coalesce-wait (launch every window, maximum
      drain rate) and demotes best-effort requests to the identity
      preconditioner ([y = rhs]) so paying traffic keeps its latency.

    Every request terminates in exactly one of {e completed}, {e
    rejected}, {e shed}, or {e failed} — the conservation invariant the
    CI soak asserts.  Completed (non-demoted) results are bit-identical
    to a direct [Block_jacobi.create ~variant:Lu |> apply].

    Time is read exclusively through {!Clock}: under a manual clock
    every schedule — coalescing, shedding, backoff, breaker — is a pure
    function of the submitted work, reproducible across runs and domain
    counts.  The handle itself is mutex-guarded, so concurrent clients
    may submit while a driver thread steps. *)

open Vblu_smallblas

type config = {
  capacity : int;  (** admission queue bound. *)
  max_batch : int;  (** max problems coalesced into one launch. *)
  min_fill : int;  (** queue depth that triggers a launch. *)
  max_wait : float;
      (** max seconds the oldest queued request coalesces before a
          launch is forced anyway. *)
  window : float;  (** seconds of virtual time per dispatch step. *)
  retry : Policy.retry;
  breaker : Policy.breaker_config;
  seed : int;  (** backoff-jitter seed. *)
  prec : Precision.t;
  abft : bool;
      (** run the launches with ABFT checks (required for fault
          verdicts — without it transient faults go undetected and
          nothing retries). *)
  setup_cache : bool;
      (** keep a {!Setup_cache} across waves so recurring requests
          (fingerprinted by sparsity pattern + blocking bound + family)
          reuse their previous setup and only refactor drifted blocks.
          Results stay bit-identical; only the modelled launch times —
          hence latencies — shrink.  Bypassed while a fault plan is
          armed.  Off by default. *)
}

val default_config : config
(** capacity 256, max_batch 64, min_fill 16, max_wait 2 ms, window
    1 ms, {!Policy.default_retry}, {!Policy.default_breaker}, seed 42,
    double precision, ABFT on, setup cache off. *)

type reject_reason =
  | Queue_full of { depth : int; capacity : int }
  | Invalid_problem of string

val reject_reason_text : reject_reason -> string

type status =
  | Pending  (** queued, awaiting retry, or in flight. *)
  | Completed of {
      y : Vector.t;
      degraded : bool;  (** some block fell back to the identity. *)
      demoted : bool;  (** whole request served as identity under an
                           open breaker. *)
      latency : float;  (** completion time − submission time. *)
      attempts : int;  (** launches consumed (1 = no retries). *)
    }
  | Rejected of reject_reason
  | Shed of { deadline : float }  (** deadline passed before launch. *)
  | Failed of { reason : string; attempts : int }

type t

val create :
  ?pool:Vblu_par.Pool.t ->
  ?faults:Vblu_fault.Fault.Plan.t ->
  ?obs:Vblu_obs.Ctx.t ->
  ?clock:Clock.t ->
  config ->
  t
(** [clock] defaults to a fresh manual clock at 0.
    @raise Invalid_argument on a non-positive capacity/max_batch/window
    or a negative min_fill/max_wait. *)

val submit :
  t ->
  ?tenant:string ->
  ?priority:Policy.priority ->
  ?deadline:float ->
  ?breakdown:Policy.breakdown ->
  Batcher.problem ->
  int
(** Admit a request and return its id (ids are dense, in submission
    order).  Defaults: tenant ["default"], [Standard] priority, no
    deadline, [Identity_block] breakdown policy.  An inadmissible
    request still gets an id — its status is immediately
    [Rejected reason]. *)

val status : t -> int -> status
(** @raise Invalid_argument on an unknown id. *)

val step : ?force:bool -> t -> unit
(** Run one dispatch window: ready retries and queued work coalesce
    into at most one launch, expired requests are shed, the breaker
    observes the window's pressure, and the clock advances by
    [window + modelled launch seconds].  [force] (default false)
    bypasses the coalesce gate and launches whatever is pending — the
    drain path. *)

val drain : t -> unit
(** Step (with [force]) until no request is pending. *)

val now : t -> float

val pending : t -> int
(** Requests submitted but not yet terminal. *)

val breaker_state : t -> Policy.breaker_state

type health = {
  h_now : float;
  h_queue_depth : int;
  h_pending : int;
  h_breaker : Policy.breaker_state;
  h_steps : int;
  h_launches : int;
  h_coalesced_blocks : int;  (** total blocks over all launches. *)
  h_setup_fresh_blocks : int;
      (** blocks factored by the waves' setup launches. *)
  h_setup_reused_blocks : int;
      (** blocks served from the setup cache (0 with the cache off). *)
  h_mean_occupancy : float;
      (** mean problems-per-launch / max_batch, in [0, 1]. *)
  h_p50_latency : float;  (** nearest-rank over completed requests. *)
  h_p99_latency : float;
  h_max_step_seconds : float;
      (** largest single-step virtual-time advance — the batch window
          that bounds deadline overshoot. *)
  h_cache_hits : int;
  h_cache_misses : int;
  h_cache_direct : int;
  h_totals : Tenant.counts;
}

val health : t -> health

val tenants : t -> (string * Tenant.counts) list
(** Per-tenant accounting snapshot, sorted by tenant. *)

val pp_health : Format.formatter -> health -> unit
