(** Service-level robustness policies.

    Three small state machines the service composes:

    - {b priority classes} decide drain order (and who is demoted first
      under overload);
    - {b retry with deterministic jittered backoff} reruns requests whose
      blocks hit transient fault verdicts — breakdowns are deterministic
      and are {e never} retried, the per-request {!breakdown} policy
      decides those immediately;
    - a {b circuit breaker} watches queue pressure per dispatch window
      and, under sustained overload, degrades the batcher (coalesce-wait
      shrinks to zero, best-effort traffic is demoted to the identity
      preconditioner) instead of letting the queue grow unboundedly.

    Everything here is pure or driven by explicit observations, so the
    service stays deterministic under the manual {!Clock}. *)

(** Drain order under load: [Interactive] first, [Best_effort] last (and
    demoted to the identity fallback while the breaker is open). *)
type priority = Interactive | Standard | Best_effort

val priority_rank : priority -> int
(** [0] for [Interactive], [1] for [Standard], [2] for [Best_effort] —
    smaller drains first. *)

val priority_name : priority -> string
(** ["interactive" | "standard" | "best-effort"] — the CLI spelling. *)

val priority_of_string : string -> (priority, string) result

(** What to do with a request one of whose diagonal blocks breaks down
    (a numerically singular block — deterministic, so retrying is
    pointless):

    - {!Identity_block}: keep going with the identity on that block —
      the same degradation {!Vblu_precond.Block_jacobi} applies, and the
      default;
    - {!Fail_request}: fail this request (only this one; batchmates are
      untouched). *)
type breakdown = Identity_block | Fail_request

val breakdown_name : breakdown -> string
(** ["identity" | "fail"]. *)

val breakdown_of_string : string -> (breakdown, string) result

type retry = {
  budget : int;  (** max retries per request; 0 disables retrying. *)
  base_delay : float;  (** seconds before the first retry. *)
  factor : float;  (** exponential growth per attempt. *)
  jitter : float;
      (** fraction of the delay added as deterministic jitter in
          [\[0, jitter)]. *)
}

val default_retry : retry
(** 2 retries, 1 ms base, ×2 growth, 50% jitter. *)

val backoff : retry -> seed:int -> request:int -> attempt:int -> float
(** Delay before retry [attempt] (1-based) of request [request]:
    [base_delay * factor^(attempt-1) * (1 + jitter * u)] where
    [u ∈ [0,1)] is a pure hash of [(seed, request, attempt)] — jittered
    so synchronized retries spread out, deterministic so every run and
    domain count replays the same schedule.
    @raise Invalid_argument when [attempt < 1]. *)

type breaker_config = {
  high_watermark : float;
      (** queue-fill fraction at or above which a window counts as
          overloaded. *)
  trip_after : int;  (** consecutive overloaded windows before opening. *)
  cool_down : int;
      (** consecutive calm windows (while open) before probing. *)
}

val default_breaker : breaker_config
(** Watermark 0.75, trip after 3, cool down 5. *)

(** [Closed] = healthy, [Open] = degraded (zero coalesce-wait,
    best-effort demoted), [Half_open] = probing after a cool-down: one
    calm window closes it, one overloaded window re-opens it. *)
type breaker_state = Closed | Half_open | Open

val state_name : breaker_state -> string

type breaker

val breaker : breaker_config -> breaker

val breaker_state : breaker -> breaker_state

val breaker_note : breaker -> pressure:float -> breaker_state
(** Feed one window's queue pressure (depth / capacity) and return the
    state after the transition. *)
