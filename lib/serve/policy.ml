type priority = Interactive | Standard | Best_effort

let priority_rank = function
  | Interactive -> 0
  | Standard -> 1
  | Best_effort -> 2

let priority_name = function
  | Interactive -> "interactive"
  | Standard -> "standard"
  | Best_effort -> "best-effort"

let priority_of_string s =
  match String.lowercase_ascii s with
  | "interactive" -> Ok Interactive
  | "standard" -> Ok Standard
  | "best-effort" | "best_effort" -> Ok Best_effort
  | _ ->
    Error
      (Printf.sprintf
         "invalid priority %S: expected interactive, standard, or best-effort"
         s)

type breakdown = Identity_block | Fail_request

let breakdown_name = function
  | Identity_block -> "identity"
  | Fail_request -> "fail"

let breakdown_of_string s =
  match String.lowercase_ascii s with
  | "identity" -> Ok Identity_block
  | "fail" -> Ok Fail_request
  | _ ->
    Error
      (Printf.sprintf "invalid breakdown policy %S: expected identity or fail"
         s)

type retry = {
  budget : int;
  base_delay : float;
  factor : float;
  jitter : float;
}

let default_retry =
  { budget = 2; base_delay = 1e-3; factor = 2.0; jitter = 0.5 }

(* splitmix64 finalizer: a high-quality pure int mixer, so the jitter is a
   reproducible function of (seed, request, attempt) with no hidden
   Random state. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let unit_hash ~seed ~request ~attempt =
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (mix64
            (Int64.add
               (Int64.mul (Int64.of_int request) 0xd6e8feb86659fd93L)
               (Int64.of_int attempt))))
  in
  (* 53 high bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let backoff r ~seed ~request ~attempt =
  if attempt < 1 then invalid_arg "Policy.backoff: attempt must be >= 1";
  let u = unit_hash ~seed ~request ~attempt in
  r.base_delay
  *. (r.factor ** float_of_int (attempt - 1))
  *. (1.0 +. (r.jitter *. u))

type breaker_config = {
  high_watermark : float;
  trip_after : int;
  cool_down : int;
}

let default_breaker = { high_watermark = 0.75; trip_after = 3; cool_down = 5 }

type breaker_state = Closed | Half_open | Open

let state_name = function
  | Closed -> "closed"
  | Half_open -> "half-open"
  | Open -> "open"

type breaker = {
  cfg : breaker_config;
  mutable state : breaker_state;
  mutable streak : int;  (* consecutive windows of the relevant kind *)
}

let breaker cfg =
  if cfg.trip_after < 1 || cfg.cool_down < 1 then
    invalid_arg "Policy.breaker: trip_after and cool_down must be >= 1";
  if not (cfg.high_watermark > 0.0) then
    invalid_arg "Policy.breaker: high_watermark must be positive";
  { cfg; state = Closed; streak = 0 }

let breaker_state b = b.state

let breaker_note b ~pressure =
  let hot = pressure >= b.cfg.high_watermark in
  (match b.state with
  | Closed ->
    if hot then begin
      b.streak <- b.streak + 1;
      if b.streak >= b.cfg.trip_after then begin
        b.state <- Open;
        b.streak <- 0
      end
    end
    else b.streak <- 0
  | Open ->
    if hot then b.streak <- 0
    else begin
      b.streak <- b.streak + 1;
      if b.streak >= b.cfg.cool_down then begin
        b.state <- Half_open;
        b.streak <- 0
      end
    end
  | Half_open ->
    b.streak <- 0;
    b.state <- (if hot then Open else Closed));
  b.state
