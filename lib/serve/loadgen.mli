(** Deterministic load generator and overload harness.

    Drives a {!Service} with a seeded synthetic request stream (Poisson
    arrivals over the virtual clock, block-tridiagonal systems of mixed
    sizes across a small tenant/priority mix) and checks the service's
    contract afterwards:

    - {b conservation}: completed + rejected + shed + failed =
      submitted, with nothing left pending after the drain;
    - {b deadline overshoot}: no completed request finished later than
      its deadline plus one batch window (the largest single-step
      virtual-time advance);
    - {b bit-identity}: every completed, non-demoted result equals a
      direct [Block_jacobi.create ~variant:Lu |> apply] (or
      [Block_ilu0.create |> apply] for block-ILU(0) requests) on the
      same problem, float for float; demoted results equal the rhs
      verbatim.

    Everything is a pure function of [(spec, domain count)] — and the
    domain count provably cancels, which is what the CI soak asserts by
    diffing reports across pools. *)

type spec = {
  seed : int;
  requests : int;  (** total submissions. *)
  load : float;
      (** offered load as a multiple of service capacity: 1.0 ≈ arrivals
          match drain rate, 2.0 ≈ the overload soak. *)
  steps_per_window : int;
      (** service steps taken per arrival window (1 = step after each
          arrival batch). *)
  deadline_windows : float;
      (** deadlines as a multiple of the dispatch window (0 = no
          deadlines). *)
  blocks_lo : int;  (** smallest per-request block count. *)
  blocks_hi : int;
  block_size_lo : int;
  block_size_hi : int;  (** ≤ 32. *)
  ilu0_share : float;
      (** fraction of requests asking for the block-ILU(0) family
          (selected deterministically by request index, so the random
          stream is unchanged for any share); the rest are block-Jacobi.
          0..1, default 0. *)
  repeat_share : float;
      (** fraction of requests replaced by a recurring-tenant
          resubmission: the same sparsity pattern as an earlier request
          with slightly drifted values and rhs (again selected by index,
          so every non-repeat request is bit-identical for any share) —
          the workload the service's setup cache
          ({!Service.config}[.setup_cache]) amortizes.  0..1,
          default 0. *)
  verify : bool;  (** recompute every completion directly and compare. *)
}

val default_spec : spec
(** seed 7, 200 requests, load 1.0, 1 step/window, deadlines at 50
    windows, 2–6 blocks of size 4–16, all block-Jacobi, no repeats,
    verify on. *)

type report = {
  submitted : int;
  completed : int;
  rejected : int;
  shed : int;
  failed : int;
  demoted : int;
  retried : int;
  accounted : bool;  (** the conservation invariant held. *)
  goodput : float;  (** completed / virtual second. *)
  shed_rate : float;  (** (shed + rejected) / submitted. *)
  p50_latency : float;
  p99_latency : float;
  mean_occupancy : float;
  max_overshoot : float;
      (** max (completion − deadline) over completed deadline-carrying
          requests; 0 when none overshot. *)
  overshoot_bound : float;  (** the one-batch-window bound. *)
  within_bound : bool;
  verified : bool;  (** bit-identity held (vacuously true when [verify]
                        is off). *)
  elapsed : float;  (** virtual seconds from first submit to drain. *)
}

val checksum : report -> string
(** A stable one-line fingerprint of every field — what the soak diffs
    across domain counts. *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?pool:Vblu_par.Pool.t ->
  ?obs:Vblu_obs.Ctx.t ->
  ?config:Service.config ->
  spec ->
  report
(** Generate, submit, step, drain, audit.  [config] defaults to
    {!Service.default_config}. *)
