(** Cross-wave preconditioner-setup cache for recurring requests.

    Time-stepping tenants resubmit the same problem with drifted values
    wave after wave.  The cache keys each problem by its {e structural
    fingerprint} — dimension, sparsity pattern, blocking bound, family —
    and keeps the previous setup alive so the next wave refactors only
    what moved (see {!Vblu_precond.Block_jacobi.update}):

    - block-Jacobi entries hold the value snapshot plus the per-block
      factors of the last wave; clean blocks skip the coalesced LU
      launch entirely;
    - block-ILU(0) entries hold a live {!Vblu_precond.Block_ilu0.handle}
      whose [update ~tol:0.] re-eliminates only the dirty DAG closure.

    Reused factors are bitwise the ones a fresh setup would compute, so
    cached waves keep the service's bit-identity contract.  Eviction is
    FIFO at [capacity] fingerprints.  Not thread-safe — callers hold the
    service lock. *)

open Vblu_sparse

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 fingerprints. *)

type jacobi_entry = {
  j_values : float array;  (** CSR value snapshot of the cached wave. *)
  j_factors : (Vblu_smallblas.Matrix.t * int array) option array;
      (** per-block packed LU + pivots; [None] = block broke down or was
          fault-flagged, so it must refactor. *)
}

val find_jacobi : t -> a:Csr.t -> max_block_size:int -> jacobi_entry option

val store_jacobi :
  t ->
  a:Csr.t ->
  max_block_size:int ->
  (Vblu_smallblas.Matrix.t * int array) option array ->
  unit

val find_ilu0 :
  t -> a:Csr.t -> max_block_size:int -> Vblu_precond.Block_ilu0.handle option

val store_ilu0 :
  t -> a:Csr.t -> max_block_size:int -> Vblu_precond.Block_ilu0.handle -> unit

val stats : t -> int * int
(** [(hits, misses)] over the cache's lifetime. *)
