type t =
  | Manual of { mutable now : float }
  | System of { epoch : float }

let manual ?(start = 0.0) () = Manual { now = start }
let system () = System { epoch = Sys.time () }

let now = function
  | Manual m -> m.now
  | System s -> Sys.time () -. s.epoch

let advance t dt =
  if (not (Float.is_finite dt)) || dt < 0.0 then
    invalid_arg "Clock.advance: negative or non-finite delta";
  match t with Manual m -> m.now <- m.now +. dt | System _ -> ()

let is_manual = function Manual _ -> true | System _ -> false
