open Vblu_sparse

type jacobi_entry = {
  j_values : float array;
  j_factors : (Vblu_smallblas.Matrix.t * int array) option array;
}

type data =
  | Jacobi of jacobi_entry
  | Ilu0 of Vblu_precond.Block_ilu0.handle

type entry = {
  e_row_ptr : int array;
  e_col_idx : int array;
  mutable e_data : data;
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* insertion order, oldest first *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Serve.Setup_cache.create: capacity < 1";
  { capacity; tbl = Hashtbl.create 64; order = []; hits = 0; misses = 0 }

(* The fingerprint hashes the full pattern (not a sample), so distinct
   patterns practically never collide; the stored pattern arrays are
   still compared on every hit, making a collision harmless rather than
   incorrect. *)
let key ~tag ~max_block_size (a : Csr.t) =
  Digest.string
    (Marshal.to_string
       (tag, a.Csr.n_rows, max_block_size, a.Csr.row_ptr, a.Csr.col_idx)
       [])

let find t ~tag ~max_block_size (a : Csr.t) =
  match Hashtbl.find_opt t.tbl (key ~tag ~max_block_size a) with
  | Some e when e.e_row_ptr = a.Csr.row_ptr && e.e_col_idx = a.Csr.col_idx ->
    t.hits <- t.hits + 1;
    Some e
  | _ ->
    t.misses <- t.misses + 1;
    None

let store t ~tag ~max_block_size (a : Csr.t) data =
  let k = key ~tag ~max_block_size a in
  match Hashtbl.find_opt t.tbl k with
  | Some e -> e.e_data <- data
  | None ->
    if List.length t.order >= t.capacity then begin
      match t.order with
      | oldest :: rest ->
        Hashtbl.remove t.tbl oldest;
        t.order <- rest
      | [] -> ()
    end;
    Hashtbl.replace t.tbl k
      { e_row_ptr = a.Csr.row_ptr; e_col_idx = a.Csr.col_idx; e_data = data };
    t.order <- t.order @ [ k ]

let find_jacobi t ~a ~max_block_size =
  match find t ~tag:0 ~max_block_size a with
  | Some { e_data = Jacobi e; _ } -> Some e
  | _ -> None

let store_jacobi t ~a ~max_block_size factors =
  store t ~tag:0 ~max_block_size a
    (Jacobi { j_values = Array.copy a.Csr.values; j_factors = factors })

let find_ilu0 t ~a ~max_block_size =
  match find t ~tag:1 ~max_block_size a with
  | Some { e_data = Ilu0 h; _ } -> Some h
  | _ -> None

let store_ilu0 t ~a ~max_block_size h = store t ~tag:1 ~max_block_size a (Ilu0 h)

let stats t = (t.hits, t.misses)
