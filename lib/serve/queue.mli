(** Bounded admission queue with priority classes.

    A fixed-capacity buffer between admission control and the batcher.
    Entries drain in (priority rank, FIFO) order — interactive traffic
    coalesces ahead of best-effort — and capacity is enforced at
    {!submit}, which is where the service turns a full queue into a
    reject-with-reason instead of queuing unboundedly.

    The structure itself is {e not} synchronized: the owning service
    serializes every access under its own lock (and the deterministic
    test harness drives it from one thread). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val submit : 'a t -> priority:Policy.priority -> 'a -> bool
(** Enqueue, or return [false] when the queue is at capacity (the caller
    rejects with a reason — nothing is dropped silently). *)

val oldest : 'a t -> 'a option
(** The entry that has waited longest overall (submission order, not
    priority order) — what the batcher's coalesce-wait clock watches. *)

val drain : 'a t -> max:int -> 'a list
(** Remove and return up to [max] entries in (priority rank, FIFO)
    order. *)

val reject_if : 'a t -> ('a -> bool) -> 'a list
(** Remove and return every queued entry satisfying the predicate, in
    submission order — deadline shedding.  Order of the survivors is
    preserved. *)
