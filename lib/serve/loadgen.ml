open Vblu_sparse
open Vblu_precond
open Vblu_workloads

type spec = {
  seed : int;
  requests : int;
  load : float;
  steps_per_window : int;
  deadline_windows : float;
  blocks_lo : int;
  blocks_hi : int;
  block_size_lo : int;
  block_size_hi : int;
  ilu0_share : float;
  repeat_share : float;
  verify : bool;
}

let default_spec =
  {
    seed = 7;
    requests = 200;
    load = 1.0;
    steps_per_window = 1;
    deadline_windows = 50.0;
    blocks_lo = 2;
    blocks_hi = 6;
    block_size_lo = 4;
    block_size_hi = 16;
    ilu0_share = 0.0;
    repeat_share = 0.0;
    verify = true;
  }

type report = {
  submitted : int;
  completed : int;
  rejected : int;
  shed : int;
  failed : int;
  demoted : int;
  retried : int;
  accounted : bool;
  goodput : float;
  shed_rate : float;
  p50_latency : float;
  p99_latency : float;
  mean_occupancy : float;
  max_overshoot : float;
  overshoot_bound : float;
  within_bound : bool;
  verified : bool;
  elapsed : float;
}

let checksum r =
  Printf.sprintf
    "submitted=%d completed=%d rejected=%d shed=%d failed=%d demoted=%d \
     retried=%d accounted=%b goodput=%.17g shed_rate=%.17g p50=%.17g \
     p99=%.17g occupancy=%.17g overshoot=%.17g bound=%.17g within=%b \
     verified=%b elapsed=%.17g"
    r.submitted r.completed r.rejected r.shed r.failed r.demoted r.retried
    r.accounted r.goodput r.shed_rate r.p50_latency r.p99_latency
    r.mean_occupancy r.max_overshoot r.overshoot_bound r.within_bound
    r.verified r.elapsed

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>submitted      %d@,completed      %d@,rejected       %d@,shed     \
     \      %d@,failed         %d@,demoted        %d@,retried        \
     %d@,accounted      %b@,goodput        %.1f req/s@,shed rate      \
     %.3f@,p50 latency    %.6fs@,p99 latency    %.6fs@,mean occupancy \
     %.3f@,max overshoot  %.6fs (bound %.6fs, within %b)@,verified       \
     %b@,elapsed        %.6fs@]"
    r.submitted r.completed r.rejected r.shed r.failed r.demoted r.retried
    r.accounted r.goodput r.shed_rate r.p50_latency r.p99_latency
    r.mean_occupancy r.max_overshoot r.overshoot_bound r.within_bound
    r.verified r.elapsed

type gen_req = {
  g_problem : Batcher.problem;
  g_tenant : string;
  g_priority : Policy.priority;
  g_arrival : float;
}

let tenants_mix = [| "alpha"; "beta"; "gamma" |]

(* All randomness is drawn up front from one seeded state in a fixed
   order, so the generated stream is a pure function of the spec — the
   service then adds no randomness of its own. *)
let generate spec ~window ~max_batch =
  let st = Random.State.make [| spec.seed |] in
  let rate = spec.load *. float_of_int max_batch /. window in
  let t = ref 0.0 in
  Array.init spec.requests (fun i ->
      let blocks =
        spec.blocks_lo + Random.State.int st (spec.blocks_hi - spec.blocks_lo + 1)
      in
      let block_size =
        spec.block_size_lo
        + Random.State.int st (spec.block_size_hi - spec.block_size_lo + 1)
      in
      let a = Generators.block_tridiagonal ~state:st ~blocks ~block_size () in
      let n, _ = Csr.dims a in
      let rhs = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let tenant = tenants_mix.(i mod Array.length tenants_mix) in
      let priority =
        let u = Random.State.float st 1.0 in
        if u < 0.2 then Policy.Interactive
        else if u < 0.8 then Policy.Standard
        else Policy.Best_effort
      in
      let dt = -.Float.log (1.0 -. Random.State.float st 1.0) /. rate in
      t := !t +. dt;
      (* The family is chosen by request index, not by drawing from
         [st]: any [ilu0_share] leaves the generated stream (matrices,
         rhs, arrivals) bit-identical. *)
      let precond =
        if float_of_int (i mod 100) < (spec.ilu0_share *. 100.0) -. 1e-9 then
          Batcher.Ilu0
        else Batcher.Jacobi
      in
      {
        g_problem = { Batcher.a; rhs; max_block_size = 32; precond };
        g_tenant = tenant;
        g_priority = priority;
        g_arrival = !t;
      })

(* A deterministic value drift of a recurring problem: the sparsity
   pattern is shared (fresh arrays with the same contents, so a
   fingerprint cache matches structurally), a sprinkling of entries are
   scaled slightly, the rhs is nudged.  The family and block bound come
   from the source so a recurring tenant exercises one cached setup. *)
let drifted_problem ~i (p : Batcher.problem) =
  let a = p.Batcher.a in
  let values = Array.copy a.Csr.values in
  Array.iteri
    (fun q v -> if ((q * 31) + i) mod 17 = 0 then values.(q) <- v *. 1.000123)
    values;
  let a' =
    Csr.create ~n_rows:a.Csr.n_rows ~n_cols:a.Csr.n_cols
      ~row_ptr:(Array.copy a.Csr.row_ptr) ~col_idx:(Array.copy a.Csr.col_idx)
      ~values
  in
  let rhs =
    Array.mapi
      (fun q v -> v +. (1e-3 *. float_of_int ((q + i) mod 5)))
      p.Batcher.rhs
  in
  { p with Batcher.a = a'; rhs }

(* Recurring-tenant mode: selected requests (by index, so the random
   stream — hence every non-repeat request — is bit-identical for any
   share) are replaced by a drifted resubmission of an earlier request.
   Sources chain: a repeat can drift an earlier repeat, like a
   time-stepping tenant would. *)
let apply_repeats spec reqs =
  if spec.repeat_share > 0.0 then
    Array.iteri
      (fun i r ->
        if
          i > 0
          && float_of_int (i mod 100) < (spec.repeat_share *. 100.0) -. 1e-9
        then begin
          let j = i * 7919 mod i in
          reqs.(i) <-
            { r with g_problem = drifted_problem ~i reqs.(j).g_problem }
        end)
      reqs;
  reqs

let run ?(pool = Vblu_par.Pool.sequential) ?obs
    ?(config = Service.default_config) spec =
  if spec.requests < 0 then invalid_arg "Serve.Loadgen.run: negative requests";
  if not (spec.load > 0.0) then
    invalid_arg "Serve.Loadgen.run: load must be positive";
  if spec.ilu0_share < 0.0 || spec.ilu0_share > 1.0 then
    invalid_arg "Serve.Loadgen.run: ilu0_share outside 0..1";
  if spec.repeat_share < 0.0 || spec.repeat_share > 1.0 then
    invalid_arg "Serve.Loadgen.run: repeat_share outside 0..1";
  let reqs =
    apply_repeats spec
      (generate spec ~window:config.Service.window
         ~max_batch:config.Service.max_batch)
  in
  let svc = Service.create ~pool ?obs config in
  (* Submit each request once virtual time reaches its arrival stamp;
     between submission batches, run the dispatch loop. *)
  let ids = Array.make spec.requests (-1) in
  let submit_times = Array.make spec.requests 0.0 in
  let deadlines = Array.make spec.requests None in
  let idx = ref 0 in
  while !idx < spec.requests do
    let now = Service.now svc in
    while !idx < spec.requests && reqs.(!idx).g_arrival <= now do
      let r = reqs.(!idx) in
      let deadline =
        if spec.deadline_windows > 0.0 then
          Some (now +. (spec.deadline_windows *. config.Service.window))
        else None
      in
      submit_times.(!idx) <- now;
      deadlines.(!idx) <- deadline;
      ids.(!idx) <-
        Service.submit svc ~tenant:r.g_tenant ~priority:r.g_priority ?deadline
          r.g_problem;
      incr idx
    done;
    for _ = 1 to max 1 spec.steps_per_window do
      Service.step svc
    done
  done;
  Service.drain svc;
  let h = Service.health svc in
  let totals = h.Service.h_totals in
  (* Audit: deadline overshoot and bit-identity against direct
     per-request Block_jacobi solves. *)
  let max_overshoot = ref 0.0 in
  let verified = ref true in
  Array.iteri
    (fun i id ->
      match Service.status svc id with
      | Service.Completed { y; demoted; latency; _ } ->
        (match deadlines.(i) with
        | Some d ->
          let completion = submit_times.(i) +. latency in
          if completion -. d > !max_overshoot then
            max_overshoot := completion -. d
        | None -> ());
        if spec.verify then
          if demoted then begin
            if y <> reqs.(i).g_problem.Batcher.rhs then verified := false
          end
          else begin
            let p = reqs.(i).g_problem in
            let direct =
              match p.Batcher.precond with
              | Batcher.Jacobi ->
                let bj, _ =
                  Block_jacobi.create ~prec:config.Service.prec
                    ~variant:Block_jacobi.Lu
                    ~max_block_size:p.Batcher.max_block_size p.Batcher.a
                in
                bj.Preconditioner.apply p.Batcher.rhs
              | Batcher.Ilu0 ->
                let bi, _ =
                  Block_ilu0.create ~prec:config.Service.prec
                    ~max_block_size:p.Batcher.max_block_size p.Batcher.a
                in
                bi.Preconditioner.apply p.Batcher.rhs
            in
            if y <> direct then verified := false
          end
      | _ -> ())
    ids;
  let elapsed = Service.now svc in
  let fi = float_of_int in
  {
    submitted = totals.Tenant.submitted;
    completed = totals.Tenant.completed;
    rejected = totals.Tenant.rejected;
    shed = totals.Tenant.shed;
    failed = totals.Tenant.failed;
    demoted = totals.Tenant.demoted;
    retried = totals.Tenant.retried;
    accounted =
      totals.Tenant.submitted
      = totals.Tenant.completed + totals.Tenant.rejected + totals.Tenant.shed
        + totals.Tenant.failed
      && Service.pending svc = 0;
    goodput = (if elapsed > 0.0 then fi totals.Tenant.completed /. elapsed else 0.0);
    shed_rate =
      (if totals.Tenant.submitted = 0 then 0.0
       else
         fi (totals.Tenant.shed + totals.Tenant.rejected)
         /. fi totals.Tenant.submitted);
    p50_latency = h.Service.h_p50_latency;
    p99_latency = h.Service.h_p99_latency;
    mean_occupancy = h.Service.h_mean_occupancy;
    max_overshoot = !max_overshoot;
    overshoot_bound = h.Service.h_max_step_seconds;
    within_bound = !max_overshoot <= h.Service.h_max_step_seconds +. 1e-12;
    verified = !verified;
    elapsed;
  }
