(** Injectable service clock.

    Everything time-dependent in the service layer — coalesce waits,
    deadlines, retry backoff, breaker windows — reads time through this
    handle, so tests and the CI soak drive a {!manual} clock and replay
    the exact same schedule on every run and every domain count.  The
    {!manual} clock is advanced explicitly (the service advances it by
    each dispatch window plus the modelled execution time of the launch
    it just made, turning the performance model into the service's
    notion of load); the {!system} clock is for interactive serving and
    follows the process clock. *)

type t

val manual : ?start:float -> unit -> t
(** A virtual clock starting at [start] (default 0) that only moves via
    {!advance}. *)

val system : unit -> t
(** Follows [Sys.time] (processor time — the clock the rest of the
    reproduction uses for wall measurements).  {!advance} is a no-op on
    it: real time cannot be steered. *)

val now : t -> float
(** Current time in seconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves a {!manual} clock forward by [dt] seconds; a
    no-op on a {!system} clock.
    @raise Invalid_argument when [dt < 0] or not finite. *)

val is_manual : t -> bool
