open Vblu_smallblas
open Vblu_sparse
open Vblu_core
open Vblu_precond
open Vblu_fault

type precond = Jacobi | Ilu0

type problem = {
  a : Csr.t;
  rhs : Vector.t;
  max_block_size : int;
  precond : precond;
}

let validate p =
  let n, cols = Csr.dims p.a in
  if n <> cols then
    Error (Printf.sprintf "matrix not square (%dx%d)" n cols)
  else if Array.length p.rhs <> n then
    Error
      (Printf.sprintf "rhs length %d does not match dimension %d"
         (Array.length p.rhs) n)
  else if p.max_block_size < 1 || p.max_block_size > 32 then
    Error
      (Printf.sprintf "max_block_size %d outside the warp range 1..32"
         p.max_block_size)
  else Ok ()

type outcome = {
  y : Vector.t;
  blocks : int;
  degraded_blocks : int list;
  faulted_blocks : int list;
}

type launch_report = {
  outcomes : outcome array;
  problems : int;
  coalesced_blocks : int;
  modelled_seconds : float;
}

let empty_report =
  { outcomes = [||]; problems = 0; coalesced_blocks = 0;
    modelled_seconds = 0.0 }

(* One block-ILU(0) request: its own batched setup (elimination waves)
   plus one level-scheduled apply — the bits of a direct
   Block_ilu0.create + apply, priced at its modelled wave times. *)
let run_ilu0 ~pool ~prec ?faults ~abft ?obs (p : problem) =
  let precond, info =
    Block_ilu0.create ~pool ~prec ?faults ~abft ?obs
      ~max_block_size:p.max_block_size p.a
  in
  let y = precond.Preconditioner.apply p.rhs in
  let apply_modelled =
    match !(info.Block_ilu0.last_apply) with
    | Some s -> s.Block_ilu0.modelled_seconds
    | None -> 0.0
  in
  let blocks = Array.length info.Block_ilu0.blocking.Supervariable.starts in
  ( {
      y;
      blocks;
      degraded_blocks = info.Block_ilu0.degraded_blocks;
      faulted_blocks = info.Block_ilu0.corrupt_blocks;
    },
    info.Block_ilu0.setup_modelled_seconds +. apply_modelled )

(* The coalesced block-Jacobi path over a subset of the wave's problems;
   returns one outcome per subset member, in subset order. *)
let run_jacobi ~pool ~prec ?faults ~abft ?obs (problems : problem array) =
  let np = Array.length problems in
  if np = 0 then empty_report
  else begin
    (* Per-problem supervariable partitions, then a flat global block
       table: block [g] belongs to problem [owner.(g)] and starts at row
       [row.(g)] of it.  [first.(p)] is problem [p]'s first global
       block — global minus first recovers the problem-local index. *)
    let blockings =
      Array.map
        (fun p -> Supervariable.blocking ~max_block_size:p.max_block_size p.a)
        problems
    in
    let first = Array.make (np + 1) 0 in
    for p = 0 to np - 1 do
      first.(p + 1) <-
        first.(p) + Array.length blockings.(p).Supervariable.starts
    done;
    let total = first.(np) in
    let owner = Array.make total 0 in
    for p = 0 to np - 1 do
      for j = first.(p) to first.(p + 1) - 1 do
        owner.(j) <- p
      done
    done;
    let local g = g - first.(owner.(g)) in
    (* One shared extraction sweep over every problem's blocks, then one
       matrix batch and one rhs-segment vector batch. *)
    let blocks =
      Vblu_par.Pool.parallel_init pool total (fun g ->
          let p = owner.(g) and j = local g in
          let blk = blockings.(owner.(g)) in
          Csr.extract_block problems.(p).a
            ~row_start:blk.Supervariable.starts.(j)
            ~size:blk.Supervariable.sizes.(j))
    in
    let segments =
      Array.init total (fun g ->
          let p = owner.(g) and j = local g in
          let blk = blockings.(p) in
          Array.sub problems.(p).rhs blk.Supervariable.starts.(j)
            blk.Supervariable.sizes.(j))
    in
    let batch = Batch.of_matrices blocks in
    let rhs_batch = Batch.vec_of_vectors segments in
    (* The coalesced launch pair: one factorization, one solve, shared
       by every problem in the wave. *)
    let lu = Batched_lu.factor ~pool ~prec ?faults ~abft ?obs batch in
    let tr =
      Batched_trsv.solve ~pool ~prec ~abft ?obs ~factors:lu.Batched_lu.factors
        ~pivots:lu.Batched_lu.pivots rhs_batch
    in
    (* Scatter: clean blocks take the batched solution, broken-down ones
       copy the rhs segment through — the same identity fallback (and the
       same bits) as Block_jacobi's degraded path. *)
    let outcomes =
      Array.init np (fun p ->
          let blk = blockings.(p) in
          let k = Array.length blk.Supervariable.starts in
          let n = Array.length problems.(p).rhs in
          let y = Array.make n 0.0 in
          let degraded = ref [] and faulted = ref [] in
          for j = k - 1 downto 0 do
            let g = first.(p) + j in
            let st = blk.Supervariable.starts.(j)
            and s = blk.Supervariable.sizes.(j) in
            let broken =
              lu.Batched_lu.info.(g) <> 0 || tr.Batched_trsv.info.(g) <> 0
            in
            if broken then begin
              degraded := j :: !degraded;
              Array.blit problems.(p).rhs st y st s
            end
            else begin
              let seg = Batch.vec_get tr.Batched_trsv.solutions g in
              Array.blit seg 0 y st s
            end;
            let failed = function Fault.Failed -> true | _ -> false in
            if
              (not broken)
              && (failed lu.Batched_lu.verdicts.(g)
                 || failed tr.Batched_trsv.verdicts.(g))
            then faulted := j :: !faulted
          done;
          { y; blocks = k; degraded_blocks = !degraded;
            faulted_blocks = !faulted })
    in
    let modelled_seconds =
      (lu.Batched_lu.stats.Vblu_simt.Launch.time_us
      +. tr.Batched_trsv.stats.Vblu_simt.Launch.time_us)
      *. 1e-6
    in
    { outcomes; problems = np; coalesced_blocks = total; modelled_seconds }
  end

let run ?(pool = Vblu_par.Pool.sequential) ?(prec = Precision.Double) ?faults
    ?(abft = false) ?obs (problems : problem array) =
  let np = Array.length problems in
  if np = 0 then empty_report
  else begin
    Array.iter
      (fun p ->
        match validate p with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Serve.Batcher.run: " ^ msg))
      problems;
    let jac_idx = ref [] and ilu_idx = ref [] in
    Array.iteri
      (fun i p ->
        match p.precond with
        | Jacobi -> jac_idx := i :: !jac_idx
        | Ilu0 -> ilu_idx := i :: !ilu_idx)
      problems;
    let jac_idx = Array.of_list (List.rev !jac_idx)
    and ilu_idx = Array.of_list (List.rev !ilu_idx) in
    let jac_report =
      run_jacobi ~pool ~prec ?faults ~abft ?obs
        (Array.map (fun i -> problems.(i)) jac_idx)
    in
    let outcomes =
      Array.make np
        { y = [||]; blocks = 0; degraded_blocks = []; faulted_blocks = [] }
    in
    Array.iteri
      (fun j i -> outcomes.(i) <- jac_report.outcomes.(j))
      jac_idx;
    let coalesced = ref jac_report.coalesced_blocks
    and modelled = ref jac_report.modelled_seconds in
    Array.iter
      (fun i ->
        let outcome, seconds =
          run_ilu0 ~pool ~prec ?faults ~abft ?obs problems.(i)
        in
        outcomes.(i) <- outcome;
        coalesced := !coalesced + outcome.blocks;
        modelled := !modelled +. seconds)
      ilu_idx;
    {
      outcomes;
      problems = np;
      coalesced_blocks = !coalesced;
      modelled_seconds = !modelled;
    }
  end
