open Vblu_smallblas
open Vblu_sparse
open Vblu_core
open Vblu_precond
open Vblu_fault

type problem = {
  a : Csr.t;
  rhs : Vector.t;
  max_block_size : int;
}

let validate p =
  let n, cols = Csr.dims p.a in
  if n <> cols then
    Error (Printf.sprintf "matrix not square (%dx%d)" n cols)
  else if Array.length p.rhs <> n then
    Error
      (Printf.sprintf "rhs length %d does not match dimension %d"
         (Array.length p.rhs) n)
  else if p.max_block_size < 1 || p.max_block_size > 32 then
    Error
      (Printf.sprintf "max_block_size %d outside the warp range 1..32"
         p.max_block_size)
  else Ok ()

type outcome = {
  y : Vector.t;
  blocks : int;
  degraded_blocks : int list;
  faulted_blocks : int list;
}

type launch_report = {
  outcomes : outcome array;
  problems : int;
  coalesced_blocks : int;
  modelled_seconds : float;
}

let empty_report =
  { outcomes = [||]; problems = 0; coalesced_blocks = 0;
    modelled_seconds = 0.0 }

let run ?(pool = Vblu_par.Pool.sequential) ?(prec = Precision.Double) ?faults
    ?(abft = false) ?obs (problems : problem array) =
  let np = Array.length problems in
  if np = 0 then empty_report
  else begin
    Array.iter
      (fun p ->
        match validate p with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Serve.Batcher.run: " ^ msg))
      problems;
    (* Per-problem supervariable partitions, then a flat global block
       table: block [g] belongs to problem [owner.(g)] and starts at row
       [row.(g)] of it.  [first.(p)] is problem [p]'s first global
       block — global minus first recovers the problem-local index. *)
    let blockings =
      Array.map
        (fun p -> Supervariable.blocking ~max_block_size:p.max_block_size p.a)
        problems
    in
    let first = Array.make (np + 1) 0 in
    for p = 0 to np - 1 do
      first.(p + 1) <-
        first.(p) + Array.length blockings.(p).Supervariable.starts
    done;
    let total = first.(np) in
    let owner = Array.make total 0 in
    for p = 0 to np - 1 do
      for j = first.(p) to first.(p + 1) - 1 do
        owner.(j) <- p
      done
    done;
    let local g = g - first.(owner.(g)) in
    (* One shared extraction sweep over every problem's blocks, then one
       matrix batch and one rhs-segment vector batch. *)
    let blocks =
      Vblu_par.Pool.parallel_init pool total (fun g ->
          let p = owner.(g) and j = local g in
          let blk = blockings.(owner.(g)) in
          Csr.extract_block problems.(p).a
            ~row_start:blk.Supervariable.starts.(j)
            ~size:blk.Supervariable.sizes.(j))
    in
    let segments =
      Array.init total (fun g ->
          let p = owner.(g) and j = local g in
          let blk = blockings.(p) in
          Array.sub problems.(p).rhs blk.Supervariable.starts.(j)
            blk.Supervariable.sizes.(j))
    in
    let batch = Batch.of_matrices blocks in
    let rhs_batch = Batch.vec_of_vectors segments in
    (* The coalesced launch pair: one factorization, one solve, shared
       by every problem in the wave. *)
    let lu = Batched_lu.factor ~pool ~prec ?faults ~abft ?obs batch in
    let tr =
      Batched_trsv.solve ~pool ~prec ~abft ?obs ~factors:lu.Batched_lu.factors
        ~pivots:lu.Batched_lu.pivots rhs_batch
    in
    (* Scatter: clean blocks take the batched solution, broken-down ones
       copy the rhs segment through — the same identity fallback (and the
       same bits) as Block_jacobi's degraded path. *)
    let outcomes =
      Array.init np (fun p ->
          let blk = blockings.(p) in
          let k = Array.length blk.Supervariable.starts in
          let n = Array.length problems.(p).rhs in
          let y = Array.make n 0.0 in
          let degraded = ref [] and faulted = ref [] in
          for j = k - 1 downto 0 do
            let g = first.(p) + j in
            let st = blk.Supervariable.starts.(j)
            and s = blk.Supervariable.sizes.(j) in
            let broken =
              lu.Batched_lu.info.(g) <> 0 || tr.Batched_trsv.info.(g) <> 0
            in
            if broken then begin
              degraded := j :: !degraded;
              Array.blit problems.(p).rhs st y st s
            end
            else begin
              let seg = Batch.vec_get tr.Batched_trsv.solutions g in
              Array.blit seg 0 y st s
            end;
            let failed = function Fault.Failed -> true | _ -> false in
            if
              (not broken)
              && (failed lu.Batched_lu.verdicts.(g)
                 || failed tr.Batched_trsv.verdicts.(g))
            then faulted := j :: !faulted
          done;
          { y; blocks = k; degraded_blocks = !degraded;
            faulted_blocks = !faulted })
    in
    let modelled_seconds =
      (lu.Batched_lu.stats.Vblu_simt.Launch.time_us
      +. tr.Batched_trsv.stats.Vblu_simt.Launch.time_us)
      *. 1e-6
    in
    { outcomes; problems = np; coalesced_blocks = total; modelled_seconds }
  end
