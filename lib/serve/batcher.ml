open Vblu_smallblas
open Vblu_sparse
open Vblu_core
open Vblu_precond
open Vblu_fault

type precond = Jacobi | Ilu0

type problem = {
  a : Csr.t;
  rhs : Vector.t;
  max_block_size : int;
  precond : precond;
}

let validate p =
  let n, cols = Csr.dims p.a in
  if n <> cols then
    Error (Printf.sprintf "matrix not square (%dx%d)" n cols)
  else if Array.length p.rhs <> n then
    Error
      (Printf.sprintf "rhs length %d does not match dimension %d"
         (Array.length p.rhs) n)
  else if p.max_block_size < 1 || p.max_block_size > 32 then
    Error
      (Printf.sprintf "max_block_size %d outside the warp range 1..32"
         p.max_block_size)
  else Ok ()

type outcome = {
  y : Vector.t;
  blocks : int;
  degraded_blocks : int list;
  faulted_blocks : int list;
}

type launch_report = {
  outcomes : outcome array;
  problems : int;
  coalesced_blocks : int;
  setup_fresh_blocks : int;
  setup_reused_blocks : int;
  modelled_seconds : float;
}

let empty_report =
  { outcomes = [||]; problems = 0; coalesced_blocks = 0;
    setup_fresh_blocks = 0; setup_reused_blocks = 0; modelled_seconds = 0.0 }

(* One block-ILU(0) request: its own batched setup (elimination waves)
   plus one level-scheduled apply — the bits of a direct
   Block_ilu0.create + apply, priced at its modelled wave times.  With a
   cache (fault-free waves only) the setup lives in a Block_ilu0.handle
   keyed by the problem's fingerprint, and a recurring request pays only
   the dirty-closure re-elimination of [Block_ilu0.update ~tol:0.] —
   whose factors are bitwise the fresh ones. *)
let run_ilu0 ~pool ~prec ?faults ~abft ?cache ?obs (p : problem) =
  match cache with
  | Some c when faults = None ->
    let h, fresh, reused, setup_modelled =
      match Setup_cache.find_ilu0 c ~a:p.a ~max_block_size:p.max_block_size with
      | Some h ->
        let u = Block_ilu0.update ~tol:0.0 h p.a in
        ( h,
          u.Block_jacobi.refactored,
          u.Block_jacobi.reused,
          u.Block_jacobi.modelled_seconds )
      | None ->
        let h =
          Block_ilu0.handle ~pool ~prec ?obs ~max_block_size:p.max_block_size
            p.a
        in
        Setup_cache.store_ilu0 c ~a:p.a ~max_block_size:p.max_block_size h;
        let u = Block_ilu0.last_update h in
        (h, u.Block_jacobi.refactored, 0, u.Block_jacobi.modelled_seconds)
    in
    let y = (Block_ilu0.precond h).Preconditioner.apply p.rhs in
    let info = Block_ilu0.handle_info h in
    let apply_modelled =
      match !(info.Block_ilu0.last_apply) with
      | Some s -> s.Block_ilu0.modelled_seconds
      | None -> 0.0
    in
    let blocks = Array.length info.Block_ilu0.blocking.Supervariable.starts in
    ( {
        y;
        blocks;
        degraded_blocks = info.Block_ilu0.degraded_blocks;
        faulted_blocks = [];
      },
      fresh,
      reused,
      setup_modelled +. apply_modelled )
  | _ ->
    let precond, info =
      Block_ilu0.create ~pool ~prec ?faults ~abft ?obs
        ~max_block_size:p.max_block_size p.a
    in
    let y = precond.Preconditioner.apply p.rhs in
    let apply_modelled =
      match !(info.Block_ilu0.last_apply) with
      | Some s -> s.Block_ilu0.modelled_seconds
      | None -> 0.0
    in
    let blocks = Array.length info.Block_ilu0.blocking.Supervariable.starts in
    ( {
        y;
        blocks;
        degraded_blocks = info.Block_ilu0.degraded_blocks;
        faulted_blocks = info.Block_ilu0.corrupt_blocks;
      },
      blocks,
      0,
      info.Block_ilu0.setup_modelled_seconds +. apply_modelled )

(* Bitwise cleanliness of one diagonal block's CSR entries against the
   cached snapshot — the same tol = 0. contract as Block_jacobi.update. *)
let block_clean (a : Csr.t) snapshot ~start ~size =
  let clean = ref true in
  for row = start to start + size - 1 do
    for p = a.Csr.row_ptr.(row) to a.Csr.row_ptr.(row + 1) - 1 do
      let col = a.Csr.col_idx.(p) in
      if
        col >= start
        && col < start + size
        && not
             (Int64.equal
                (Int64.bits_of_float a.Csr.values.(p))
                (Int64.bits_of_float snapshot.(p)))
      then clean := false
    done
  done;
  !clean

(* The coalesced block-Jacobi path over a subset of the wave's problems;
   returns one outcome per subset member, in subset order.  With a cache
   (fault-free waves only), blocks whose cached factors are still
   bitwise valid skip the factorization launch: only the dirty blocks
   join the coalesced LU, while the TRSV wave still covers every block —
   so the scattered solutions stay bitwise identical to the uncached
   path, at a factorization launch sized by the drift. *)
let run_jacobi ~pool ~prec ?faults ~abft ?cache ?obs (problems : problem array)
    =
  let np = Array.length problems in
  if np = 0 then empty_report
  else begin
    (* Per-problem supervariable partitions, then a flat global block
       table: block [g] belongs to problem [owner.(g)] and starts at row
       [row.(g)] of it.  [first.(p)] is problem [p]'s first global
       block — global minus first recovers the problem-local index. *)
    let blockings =
      Array.map
        (fun p -> Supervariable.blocking ~max_block_size:p.max_block_size p.a)
        problems
    in
    let first = Array.make (np + 1) 0 in
    for p = 0 to np - 1 do
      first.(p + 1) <-
        first.(p) + Array.length blockings.(p).Supervariable.starts
    done;
    let total = first.(np) in
    let owner = Array.make total 0 in
    for p = 0 to np - 1 do
      for j = first.(p) to first.(p + 1) - 1 do
        owner.(j) <- p
      done
    done;
    let local g = g - first.(owner.(g)) in
    (* One shared extraction sweep over every problem's blocks, then one
       matrix batch and one rhs-segment vector batch. *)
    let blocks =
      Vblu_par.Pool.parallel_init pool total (fun g ->
          let p = owner.(g) and j = local g in
          let blk = blockings.(owner.(g)) in
          Csr.extract_block problems.(p).a
            ~row_start:blk.Supervariable.starts.(j)
            ~size:blk.Supervariable.sizes.(j))
    in
    let segments =
      Array.init total (fun g ->
          let p = owner.(g) and j = local g in
          let blk = blockings.(p) in
          Array.sub problems.(p).rhs blk.Supervariable.starts.(j)
            blk.Supervariable.sizes.(j))
    in
    (* Cache consultation: [reuse.(g)] carries the cached factors of
       global block [g] when its entries are bitwise unchanged since the
       cached wave.  Fault-injection waves bypass the cache entirely —
       plans address blocks by launch position, which caching would
       shift. *)
    let cache = match cache with Some c when faults = None -> Some c | _ -> None in
    let reuse = Array.make total None in
    (match cache with
    | None -> ()
    | Some c ->
      for p = 0 to np - 1 do
        match
          Setup_cache.find_jacobi c ~a:problems.(p).a
            ~max_block_size:problems.(p).max_block_size
        with
        | None -> ()
        | Some e ->
          let blk = blockings.(p) in
          let k = Array.length blk.Supervariable.starts in
          if Array.length e.Setup_cache.j_factors = k then
            for j = 0 to k - 1 do
              match e.Setup_cache.j_factors.(j) with
              | Some _ as f
                when block_clean problems.(p).a e.Setup_cache.j_values
                       ~start:blk.Supervariable.starts.(j)
                       ~size:blk.Supervariable.sizes.(j) ->
                reuse.(first.(p) + j) <- f
              | _ -> ()
            done
      done);
    let needs =
      Array.of_list
        (List.filter
           (fun g -> reuse.(g) = None)
           (List.init total Fun.id))
    in
    let reused_count = total - Array.length needs in
    let pos = Array.make total (-1) in
    Array.iteri (fun i g -> pos.(g) <- i) needs;
    let rhs_batch = Batch.vec_of_vectors segments in
    (* The coalesced launch pair: one factorization over the blocks that
       actually need it, one solve over every block. *)
    let lu_opt =
      if Array.length needs = 0 then None
      else
        Some
          (Batched_lu.factor ~pool ~prec ?faults ~abft ?obs
             (Batch.of_matrices (Array.map (fun g -> blocks.(g)) needs)))
    in
    let lu_info g =
      match reuse.(g) with
      | Some _ -> 0
      | None -> (Option.get lu_opt).Batched_lu.info.(pos.(g))
    in
    let failed = function Fault.Failed -> true | _ -> false in
    let lu_faulted g =
      match reuse.(g) with
      | Some _ -> false
      | None -> failed (Option.get lu_opt).Batched_lu.verdicts.(pos.(g))
    in
    (* Per-block packed factors feeding the TRSV wave and the cache
       refresh — only materialized when a cache is live. *)
    let factors_all =
      match cache with
      | None -> [||]
      | Some _ ->
        Array.init total (fun g ->
            match reuse.(g) with
            | Some f -> f
            | None ->
              let lu = Option.get lu_opt in
              ( Batch.get_matrix lu.Batched_lu.factors pos.(g),
                lu.Batched_lu.pivots.(pos.(g)) ))
    in
    let tr_factors, tr_pivots =
      match lu_opt with
      | Some lu when reused_count = 0 ->
        (* Nothing reused: the factor batch flows through untouched —
           the historical path, byte for byte. *)
        (lu.Batched_lu.factors, lu.Batched_lu.pivots)
      | _ ->
        ( Batch.of_matrices (Array.map fst factors_all),
          Array.map snd factors_all )
    in
    let tr =
      Batched_trsv.solve ~pool ~prec ~abft ?obs ~factors:tr_factors
        ~pivots:tr_pivots rhs_batch
    in
    (* Scatter: clean blocks take the batched solution, broken-down ones
       copy the rhs segment through — the same identity fallback (and the
       same bits) as Block_jacobi's degraded path. *)
    let outcomes =
      Array.init np (fun p ->
          let blk = blockings.(p) in
          let k = Array.length blk.Supervariable.starts in
          let n = Array.length problems.(p).rhs in
          let y = Array.make n 0.0 in
          let degraded = ref [] and faulted = ref [] in
          for j = k - 1 downto 0 do
            let g = first.(p) + j in
            let st = blk.Supervariable.starts.(j)
            and s = blk.Supervariable.sizes.(j) in
            let broken = lu_info g <> 0 || tr.Batched_trsv.info.(g) <> 0 in
            if broken then begin
              degraded := j :: !degraded;
              Array.blit problems.(p).rhs st y st s
            end
            else begin
              let seg = Batch.vec_get tr.Batched_trsv.solutions g in
              Array.blit seg 0 y st s
            end;
            if
              (not broken)
              && (lu_faulted g || failed tr.Batched_trsv.verdicts.(g))
            then faulted := j :: !faulted
          done;
          { y; blocks = k; degraded_blocks = !degraded;
            faulted_blocks = !faulted })
    in
    (* Refresh the cache: every problem's snapshot and the factors of
       its clean blocks (broken or fault-flagged blocks store [None], so
       a retried request refactors them). *)
    (match cache with
    | None -> ()
    | Some c ->
      for p = 0 to np - 1 do
        let blk = blockings.(p) in
        let k = Array.length blk.Supervariable.starts in
        let factors =
          Array.init k (fun j ->
              let g = first.(p) + j in
              let broken = lu_info g <> 0 || tr.Batched_trsv.info.(g) <> 0 in
              if broken || lu_faulted g || failed tr.Batched_trsv.verdicts.(g)
              then None
              else Some factors_all.(g))
        in
        Setup_cache.store_jacobi c ~a:problems.(p).a
          ~max_block_size:problems.(p).max_block_size factors
      done);
    let modelled_seconds =
      ((match lu_opt with
       | Some lu -> lu.Batched_lu.stats.Vblu_simt.Launch.time_us
       | None -> 0.0)
      +. tr.Batched_trsv.stats.Vblu_simt.Launch.time_us)
      *. 1e-6
    in
    {
      outcomes;
      problems = np;
      coalesced_blocks = total;
      setup_fresh_blocks = Array.length needs;
      setup_reused_blocks = reused_count;
      modelled_seconds;
    }
  end

let run ?(pool = Vblu_par.Pool.sequential) ?(prec = Precision.Double) ?faults
    ?(abft = false) ?cache ?obs (problems : problem array) =
  let np = Array.length problems in
  if np = 0 then empty_report
  else begin
    Array.iter
      (fun p ->
        match validate p with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Serve.Batcher.run: " ^ msg))
      problems;
    let jac_idx = ref [] and ilu_idx = ref [] in
    Array.iteri
      (fun i p ->
        match p.precond with
        | Jacobi -> jac_idx := i :: !jac_idx
        | Ilu0 -> ilu_idx := i :: !ilu_idx)
      problems;
    let jac_idx = Array.of_list (List.rev !jac_idx)
    and ilu_idx = Array.of_list (List.rev !ilu_idx) in
    let jac_report =
      run_jacobi ~pool ~prec ?faults ~abft ?cache ?obs
        (Array.map (fun i -> problems.(i)) jac_idx)
    in
    let outcomes =
      Array.make np
        { y = [||]; blocks = 0; degraded_blocks = []; faulted_blocks = [] }
    in
    Array.iteri
      (fun j i -> outcomes.(i) <- jac_report.outcomes.(j))
      jac_idx;
    let coalesced = ref jac_report.coalesced_blocks
    and modelled = ref jac_report.modelled_seconds in
    let ilu_fresh = ref 0 and ilu_reused = ref 0 in
    Array.iter
      (fun i ->
        let outcome, fresh, reused, seconds =
          run_ilu0 ~pool ~prec ?faults ~abft ?cache ?obs problems.(i)
        in
        outcomes.(i) <- outcome;
        coalesced := !coalesced + outcome.blocks;
        ilu_fresh := !ilu_fresh + fresh;
        ilu_reused := !ilu_reused + reused;
        modelled := !modelled +. seconds)
      ilu_idx;
    if Array.length jac_idx > 0 then
      Vblu_obs.Setup_metrics.record obs ~family:"jacobi"
        ~fresh:jac_report.setup_fresh_blocks
        ~reused:jac_report.setup_reused_blocks
        ~dirty:jac_report.setup_fresh_blocks;
    if Array.length ilu_idx > 0 then
      Vblu_obs.Setup_metrics.record obs ~family:"ilu0" ~fresh:!ilu_fresh
        ~reused:!ilu_reused ~dirty:!ilu_fresh;
    {
      outcomes;
      problems = np;
      coalesced_blocks = !coalesced;
      setup_fresh_blocks = jac_report.setup_fresh_blocks + !ilu_fresh;
      setup_reused_blocks = jac_report.setup_reused_blocks + !ilu_reused;
      modelled_seconds = !modelled;
    }
  end
