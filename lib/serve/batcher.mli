(** Coalesced batch execution for the solver service.

    Takes many independent preconditioner setup+apply problems and runs
    the block-Jacobi ones as {e one} shared variable-size batch launch
    (block-ILU(0) requests ride the same wave through their own batched
    setups): every block-Jacobi problem is
    partitioned with the same supervariable blocking as
    {!Vblu_precond.Block_jacobi.create}, all resulting diagonal blocks
    from all problems are packed into a single {!Vblu_core.Batch.t}, and
    one {!Vblu_core.Batched_lu.factor} plus one
    {!Vblu_core.Batched_trsv.solve} launch serve everyone — the
    amortization the paper's batched kernels exist for.

    Bit-identity contract: the batched warp kernels replicate the
    {!Vblu_smallblas} reference op schedules exactly, so the per-problem
    solutions scattered out of the shared launch are bitwise identical
    to a direct [Block_jacobi.create ~variant:Lu |> apply] on the same
    problem — including the identity fallback for blocks whose LU broke
    down (the rhs segment is copied through unchanged, exactly like
    [Block_jacobi]'s [identity_solver]). *)

open Vblu_smallblas
open Vblu_sparse

(** Which preconditioner family a request asks the service to apply. *)
type precond =
  | Jacobi
      (** decoupled diagonal-block solve — coalesced with every other
          [Jacobi] problem of the wave into one shared LU+TRSV launch
          pair. *)
  | Ilu0
      (** coupled block-ILU(0): per-problem setup whose elimination and
          level-scheduled apply are themselves batched waves (see
          {!Vblu_precond.Block_ilu0}), executed alongside the wave's
          coalesced Jacobi launch. *)

type problem = {
  a : Csr.t;  (** square system matrix. *)
  rhs : Vector.t;  (** right-hand side, length = dimension of [a]. *)
  max_block_size : int;  (** supervariable agglomeration bound, 1..32. *)
  precond : precond;  (** preconditioner family to apply. *)
}

val validate : problem -> (unit, string) result
(** Admission-time shape check: square matrix, matching rhs length,
    block bound within the warp width.  Returns the rejection reason —
    the service refuses invalid work at submit, never mid-launch. *)

type outcome = {
  y : Vector.t;  (** the preconditioner application [M^{-1} rhs]. *)
  blocks : int;  (** diagonal blocks this problem contributed. *)
  degraded_blocks : int list;
      (** problem-local indices of blocks that hit an LU/TRSV breakdown
          and fell back to the identity (rhs copied through). *)
  faulted_blocks : int list;
      (** problem-local indices of blocks whose ABFT verdict came back
          [Failed] — the transient-fault signal the service retries
          on. *)
}

type launch_report = {
  outcomes : outcome array;  (** one per problem, in submission order. *)
  problems : int;
  coalesced_blocks : int;  (** total blocks across the shared batch. *)
  setup_fresh_blocks : int;
      (** blocks (Jacobi) / block rows (ILU0) factored by this wave's
          launches. *)
  setup_reused_blocks : int;
      (** blocks whose cached factors were reused bitwise — 0 without a
          {!Setup_cache}. *)
  modelled_seconds : float;
      (** modelled kernel time of the shared LU + TRSV launches — what
          the service's virtual clock advances by. *)
}

val empty_report : launch_report

val run :
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?faults:Vblu_fault.Fault.Plan.t ->
  ?abft:bool ->
  ?cache:Setup_cache.t ->
  ?obs:Vblu_obs.Ctx.t ->
  problem array ->
  launch_report
(** Execute every problem in the wave: the [Jacobi] problems through one
    coalesced launch pair, each [Ilu0] problem through its own batched
    block-ILU(0) setup and level-scheduled apply (bitwise identical to a
    direct {!Vblu_precond.Block_ilu0.create} + apply).  An empty array
    is a no-op returning {!empty_report}.  Fault plans address [Jacobi]
    problems by {e global block index} within the coalesced batch and
    each [Ilu0] setup independently; claims are one-shot, so re-running
    a faulted request comes back clean.

    [?cache] enables cross-wave setup reuse for recurring problems (see
    {!Setup_cache}): blocks whose fingerprinted setup is bitwise current
    skip the factorization launch, without changing any returned [y] —
    reused factors are the bits a fresh launch would compute.  The cache
    is bypassed whenever a fault plan is armed.  Records
    [precond.setup.*] metrics per family when [?obs] is given.
    @raise Invalid_argument on an invalid problem — callers are expected
    to have {!validate}d at admission. *)
