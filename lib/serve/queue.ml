(* Three FIFO lanes (one per priority class) plus a global submission
   sequence number so [oldest] and [reject_if] can reason about overall
   arrival order.  Entries are (seq, payload). *)

type 'a t = {
  capacity : int;
  lanes : (int * 'a) Stdlib.Queue.t array;  (* index = priority rank *)
  mutable seq : int;
  mutable length : int;
}

let ranks = 3

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Queue.create: capacity must be >= 1";
  {
    capacity;
    lanes = Array.init ranks (fun _ -> Stdlib.Queue.create ());
    seq = 0;
    length = 0;
  }

let capacity t = t.capacity
let length t = t.length
let is_empty t = t.length = 0

let submit t ~priority x =
  if t.length >= t.capacity then false
  else begin
    Stdlib.Queue.push (t.seq, x) t.lanes.(Policy.priority_rank priority);
    t.seq <- t.seq + 1;
    t.length <- t.length + 1;
    true
  end

let oldest t =
  let best = ref None in
  Array.iter
    (fun lane ->
      match Stdlib.Queue.peek_opt lane with
      | None -> ()
      | Some (seq, x) -> (
        match !best with
        | Some (bseq, _) when bseq <= seq -> ()
        | _ -> best := Some (seq, x)))
    t.lanes;
  Option.map snd !best

let drain t ~max =
  let out = ref [] in
  let taken = ref 0 in
  Array.iter
    (fun lane ->
      while !taken < max && not (Stdlib.Queue.is_empty lane) do
        let _, x = Stdlib.Queue.pop lane in
        out := x :: !out;
        incr taken;
        t.length <- t.length - 1
      done)
    t.lanes;
  List.rev !out

let reject_if t pred =
  let rejected = ref [] in
  Array.iter
    (fun lane ->
      let keep = Stdlib.Queue.create () in
      Stdlib.Queue.iter
        (fun (seq, x) ->
          if pred x then begin
            rejected := (seq, x) :: !rejected;
            t.length <- t.length - 1
          end
          else Stdlib.Queue.push (seq, x) keep)
        lane;
      Stdlib.Queue.clear lane;
      Stdlib.Queue.transfer keep lane)
    t.lanes;
  List.sort (fun (a, _) (b, _) -> compare a b) !rejected |> List.map snd
