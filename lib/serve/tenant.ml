type event =
  | Submitted
  | Completed
  | Rejected
  | Shed
  | Failed
  | Retried
  | Demoted

let event_name = function
  | Submitted -> "submitted"
  | Completed -> "completed"
  | Rejected -> "rejected"
  | Shed -> "shed"
  | Failed -> "failed"
  | Retried -> "retried"
  | Demoted -> "demoted"

type counts = {
  submitted : int;
  completed : int;
  rejected : int;
  shed : int;
  failed : int;
  retried : int;
  demoted : int;
}

let zero =
  {
    submitted = 0;
    completed = 0;
    rejected = 0;
    shed = 0;
    failed = 0;
    retried = 0;
    demoted = 0;
  }

let bump c = function
  | Submitted -> { c with submitted = c.submitted + 1 }
  | Completed -> { c with completed = c.completed + 1 }
  | Rejected -> { c with rejected = c.rejected + 1 }
  | Shed -> { c with shed = c.shed + 1 }
  | Failed -> { c with failed = c.failed + 1 }
  | Retried -> { c with retried = c.retried + 1 }
  | Demoted -> { c with demoted = c.demoted + 1 }

let add a b =
  {
    submitted = a.submitted + b.submitted;
    completed = a.completed + b.completed;
    rejected = a.rejected + b.rejected;
    shed = a.shed + b.shed;
    failed = a.failed + b.failed;
    retried = a.retried + b.retried;
    demoted = a.demoted + b.demoted;
  }

type t = (string, counts) Hashtbl.t

let create () : t = Hashtbl.create 8

let note t ~obs ~tenant event =
  let cur = Option.value (Hashtbl.find_opt t tenant) ~default:zero in
  Hashtbl.replace t tenant (bump cur event);
  Vblu_obs.Ctx.incr_l obs
    ("serve." ^ event_name event)
    [ ("tenant", tenant) ]
    1.0

let counts t tenant = Option.value (Hashtbl.find_opt t tenant) ~default:zero

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let totals t = List.fold_left (fun acc (_, c) -> add acc c) zero (snapshot t)

let pp ppf t =
  Format.fprintf ppf "%-12s %9s %9s %8s %6s %6s %7s %7s@." "tenant"
    "submitted" "completed" "rejected" "shed" "failed" "retried" "demoted";
  List.iter
    (fun (name, c) ->
      Format.fprintf ppf "%-12s %9d %9d %8d %6d %6d %7d %7d@." name
        c.submitted c.completed c.rejected c.shed c.failed c.retried c.demoted)
    (snapshot t);
  let tot = totals t in
  Format.fprintf ppf "%-12s %9d %9d %8d %6d %6d %7d %7d@." "TOTAL"
    tot.submitted tot.completed tot.rejected tot.shed tot.failed tot.retried
    tot.demoted
