(** Per-tenant accounting.

    Every request carries a tenant name; every lifecycle event is tallied
    both here (exact integer counts, the source of truth for the
    conservation invariant {e submitted = completed + rejected + shed +
    failed + pending}) and — when an observability context is attached —
    as labelled registry counters [serve.<event>{tenant=...}] via
    {!Vblu_obs.Metrics.labelled}, so one registry snapshot carries the
    whole multi-tenant breakdown. *)

type event =
  | Submitted  (** seen at admission, accepted or not. *)
  | Completed  (** terminal: result delivered (demoted ones included). *)
  | Rejected  (** terminal: refused at admission. *)
  | Shed  (** terminal: deadline expired before launch. *)
  | Failed  (** terminal: breakdown under [Fail_request], or retries
                exhausted. *)
  | Retried  (** non-terminal: one more launch attempt scheduled. *)
  | Demoted  (** non-terminal marker: completed via the identity fallback
                 while the breaker was open (also counted [Completed]). *)

val event_name : event -> string

type counts = {
  submitted : int;
  completed : int;
  rejected : int;
  shed : int;
  failed : int;
  retried : int;
  demoted : int;
}

val zero : counts

type t

val create : unit -> t

val note : t -> obs:Vblu_obs.Ctx.t option -> tenant:string -> event -> unit
(** Bump the tenant's tally and, when [obs] carries a registry, the
    labelled counter [serve.<event>{tenant=<tenant>}]. *)

val counts : t -> string -> counts
(** A tenant's tally ({!zero} if never seen). *)

val totals : t -> counts
(** Sum over all tenants. *)

val snapshot : t -> (string * counts) list
(** All tenants, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** A per-tenant accounting table. *)
