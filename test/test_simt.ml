(* Tests for the SIMT simulator: warp semantics, cost accounting,
   coalescing rules, and the timing model's qualitative behaviour. *)

open Vblu_smallblas
open Vblu_simt

let check_float = Alcotest.(check (float 1e-9))

let fresh ?(prec = Precision.Double) () = Warp.create prec ()

(* ------------------------------------------------------------------ *)
(* Warp arithmetic                                                     *)

let test_lanewise_ops () =
  let w = fresh () in
  let a = Array.init 32 float_of_int in
  let b = Array.make 32 2.0 in
  let c = Warp.mul w a b in
  check_float "mul" 62.0 c.(31);
  let d = Warp.fma w a b c in
  check_float "fma" (62.0 +. 62.0) d.(31);
  let e = Warp.fnma w a b d in
  check_float "fnma" 62.0 e.(31);
  let q = Warp.div w a b in
  check_float "div" 15.5 q.(31);
  Alcotest.(check bool) "fma counted" true
    ((Warp.counter w).Counter.fma_instrs = 3.0);
  Alcotest.(check bool) "div counted" true
    ((Warp.counter w).Counter.div_instrs = 1.0)

let test_predication () =
  let w = fresh () in
  let active = Array.init 32 (fun i -> i < 4) in
  let a = Array.make 32 1.0 and b = Array.make 32 1.0 in
  let c = Warp.add w ~active a b in
  check_float "active lane updated" 2.0 c.(0);
  check_float "inactive lane passthrough" 1.0 c.(31);
  (* Predicated-off lanes still cost a full instruction. *)
  check_float "full warp charged" 1.0 (Warp.counter w).Counter.fma_instrs

let test_single_precision_rounding () =
  let w = fresh ~prec:Precision.Single () in
  let a = Array.make 32 0.1 and b = Array.make 32 0.2 in
  let c = Warp.add w a b in
  check_float "binary32 sum" (Precision.add Precision.Single 0.1 0.2) c.(7)

let test_fnma_and_sqrt () =
  let w = fresh () in
  let a = Array.make 32 3.0 and b = Array.make 32 2.0 and c = Array.make 32 10.0 in
  let r = Warp.fnma w a b c in
  check_float "c - a*b" 4.0 r.(0);
  let s = Warp.sqrt_lanes w (Array.make 32 9.0) in
  check_float "sqrt" 3.0 s.(5);
  (* sqrt is charged at division cost. *)
  check_float "div-class charge" 1.0 (Warp.counter w).Counter.div_instrs

let test_scattered_load_replays () =
  (* A fully scattered load must cost more issue slots than a coalesced
     one of the same width — the divergence replays. *)
  let issue f =
    let w = fresh () in
    let mem = Gmem.create Precision.Double 65536 in
    f w mem;
    (Warp.counter w).Counter.gmem_instrs
  in
  let coalesced =
    issue (fun w mem -> ignore (Warp.load w mem (Array.init 32 (fun i -> i))))
  in
  let scattered =
    issue (fun w mem ->
        ignore (Warp.load w mem (Array.init 32 (fun i -> i * 1024))))
  in
  Alcotest.(check bool)
    (Printf.sprintf "scattered %.1f > coalesced %.1f slots" scattered coalesced)
    true (scattered >= 2.0 *. coalesced)

let test_broadcast () =
  let w = fresh () in
  let x = Array.init 32 float_of_int in
  let y = Warp.broadcast w x ~src:5 in
  Alcotest.(check bool) "all lanes get lane 5" true
    (Array.for_all (fun v -> v = 5.0) y);
  check_float "one shuffle" 1.0 (Warp.counter w).Counter.shfl_instrs

let test_argmax_abs () =
  let w = fresh () in
  let x = Array.init 32 (fun i -> if i = 13 then -9.0 else float_of_int i /. 10.0) in
  Alcotest.(check int) "finds magnitude max" 13 (Warp.argmax_abs w x);
  let active = Array.init 32 (fun i -> i <> 13) in
  Alcotest.(check int) "respects mask" 31 (Warp.argmax_abs w ~active x);
  (* Ties resolve to the lowest lane. *)
  let t = Array.make 32 1.0 in
  Alcotest.(check int) "tie -> lowest" 0 (Warp.argmax_abs w t)

(* ------------------------------------------------------------------ *)
(* Memory and coalescing                                               *)

let test_gmem_roundtrip () =
  let w = fresh () in
  let mem = Gmem.of_array Precision.Double (Array.init 64 float_of_int) in
  let addrs = Array.init 32 (fun i -> i + 8) in
  let v = Warp.load w mem addrs in
  check_float "loaded" 39.0 v.(31);
  Warp.store w mem addrs (Array.make 32 0.5);
  check_float "stored" 0.5 (Gmem.get mem 8)

let test_coalescing_counts () =
  let count f =
    let w = fresh () in
    let mem = Gmem.create Precision.Double 4096 in
    f w mem;
    Counter.transactions (Warp.counter w)
  in
  (* 32 consecutive doubles = 8 transactions of 32 B. *)
  Alcotest.(check int) "coalesced" 8
    (count (fun w mem -> ignore (Warp.load w mem (Array.init 32 (fun i -> i)))));
  (* Stride 32: every lane its own sector. *)
  Alcotest.(check int) "strided" 32
    (count (fun w mem ->
         ignore (Warp.load w mem (Array.init 32 (fun i -> i * 32)))));
  (* Single precision packs twice as many scalars per sector. *)
  let w = fresh ~prec:Precision.Single () in
  let mem = Gmem.create Precision.Single 4096 in
  ignore (Warp.load w mem (Array.init 32 (fun i -> i)));
  Alcotest.(check int) "single coalesced" 4
    (Counter.transactions (Warp.counter w))

let test_inactive_lanes_no_traffic () =
  let w = fresh () in
  let mem = Gmem.create Precision.Double 4096 in
  let active = Array.init 32 (fun i -> i = 0) in
  ignore (Warp.load w mem ~active (Array.init 32 (fun i -> i * 100)));
  Alcotest.(check int) "one active lane = one transaction" 1
    (Counter.transactions (Warp.counter w))

let test_gmem_precision_staging () =
  let mem = Gmem.of_array Precision.Single [| 0.1 |] in
  check_float "rounded on staging"
    (Precision.round Precision.Single 0.1)
    (Gmem.get mem 0)

let test_smem_bank_conflicts () =
  let w = fresh () in
  let sm = Warp.smem_alloc w 2048 in
  (* Conflict-free: consecutive addresses. *)
  Warp.smem_store w sm (Array.init 32 (fun i -> i)) (Array.make 32 1.0);
  check_float "no conflict" 1.0 (Warp.counter w).Counter.smem_accesses;
  (* 32-way conflict: stride 32 hits one bank. *)
  Warp.smem_store w sm (Array.init 32 (fun i -> i * 32)) (Array.make 32 1.0);
  check_float "full conflict adds 32 passes" 33.0
    (Warp.counter w).Counter.smem_accesses;
  check_float "data landed" 1.0 (Warp.smem_read sm 31)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let test_counter_add_scale () =
  let a = Counter.create () in
  a.Counter.fma_instrs <- 2.0;
  a.Counter.gmem_bytes <- 100.0;
  a.Counter.gmem_rounds <- 2;
  let b = Counter.scale_into a 3.0 in
  check_float "scaled fma" 6.0 b.Counter.fma_instrs;
  Alcotest.(check int) "scaled bytes" 300 (Counter.bytes b);
  Alcotest.(check int) "rounds not scaled" 2 b.Counter.gmem_rounds;
  let acc = Counter.create () in
  Counter.add acc a;
  Counter.add acc b;
  check_float "accumulated" 8.0 acc.Counter.fma_instrs

let test_counter_scale_no_ceil () =
  (* Fractional scale factors must accumulate exactly — the old per-class
     [ceil] injected up to one spurious transaction per size class. *)
  let a = Counter.create () in
  a.Counter.gmem_transactions <- 3.0;
  a.Counter.gmem_bytes <- 96.0;
  let b = Counter.scale_into a 2.5 in
  check_float "exact scaled txns" 7.5 b.Counter.gmem_transactions;
  check_float "exact scaled bytes" 240.0 b.Counter.gmem_bytes;
  (* Two half-scaled classes sum back to the exact total. *)
  let acc = Counter.create () in
  Counter.add acc (Counter.scale_into a 0.5);
  Counter.add acc (Counter.scale_into a 0.5);
  Alcotest.(check int) "rounded once at consumption" 3 (Counter.transactions acc)

(* ------------------------------------------------------------------ *)
(* Timing model                                                        *)

let synthetic_counter ~fma ~bytes =
  let c = Counter.create () in
  c.Counter.fma_instrs <- fma;
  c.Counter.gmem_bytes <- float_of_int bytes;
  c.Counter.useful_flops <- fma *. 64.0;
  c

let test_launch_monotone_in_batch () =
  (* More warps of the same work => higher GFLOPS until saturation. *)
  let per_warp = synthetic_counter ~fma:1000.0 ~bytes:1024 in
  let gflops warps =
    let total = Counter.scale_into per_warp (float_of_int warps) in
    (Launch.time ~prec:Precision.Double ~warps ~total ~max_warp:per_warp ())
      .Launch.gflops
  in
  let g100 = gflops 100 and g1000 = gflops 1000 and g40000 = gflops 40_000 in
  Alcotest.(check bool) "ramps up" true (g100 < g1000 && g1000 < g40000);
  (* Saturation: doubling the batch barely moves the rate. *)
  let g80000 = gflops 80_000 in
  Alcotest.(check bool) "saturates" true (g80000 /. g40000 < 1.05)

let test_launch_bandwidth_bound () =
  (* A memory-dominated kernel is limited by effective bandwidth. *)
  let cfg = Config.p100 in
  let per_warp = synthetic_counter ~fma:1.0 ~bytes:(1 lsl 20) in
  let total = Counter.scale_into per_warp 10_000.0 in
  let s =
    Launch.time ~cfg ~prec:Precision.Double ~warps:10_000 ~total
      ~max_warp:per_warp ()
  in
  let eff = cfg.Config.mem_bandwidth_gbs *. cfg.Config.mem_efficiency in
  Alcotest.(check bool) "achieved <= effective peak" true
    (s.Launch.bandwidth_gbs <= eff +. 1e-6);
  Alcotest.(check bool) "actually bandwidth-bound" true
    (s.Launch.bandwidth_gbs > 0.95 *. eff)

let test_launch_precision_ratio () =
  (* Pure-FMA kernels run at the SP:DP throughput ratio when saturated. *)
  let per_warp = synthetic_counter ~fma:10_000.0 ~bytes:64 in
  let t prec =
    let total = Counter.scale_into per_warp 40_000.0 in
    (Launch.time ~prec ~warps:40_000 ~total ~max_warp:per_warp ())
      .Launch.time_us
  in
  let ratio = t Precision.Double /. t Precision.Single in
  Alcotest.(check bool)
    (Printf.sprintf "dp/sp = %.2f in [1.8, 2.2]" ratio)
    true
    (ratio > 1.8 && ratio < 2.2)

let test_launch_serial_floor () =
  (* One warp with many dependent memory rounds: its latency chain must
     floor the kernel time regardless of how little compute it has. *)
  let c = Counter.create () in
  c.Counter.fma_instrs <- 1.0;
  c.Counter.gmem_rounds <- 100;
  c.Counter.useful_flops <- 64.0;
  let cfg = Config.p100 in
  let s = Launch.time ~cfg ~prec:Precision.Double ~warps:1 ~total:c ~max_warp:c () in
  let floor_us =
    100.0 *. cfg.Config.mem_latency_cycles /. (cfg.Config.clock_ghz *. 1e9) *. 1e6
    +. cfg.Config.launch_overhead_us
  in
  Alcotest.(check bool)
    (Printf.sprintf "time %.1f >= latency floor %.1f" s.Launch.time_us floor_us)
    true
    (s.Launch.time_us >= floor_us -. 1e-6)

let test_launch_rejects_empty () =
  Alcotest.check_raises "no warps" (Invalid_argument "Launch.time: no warps")
    (fun () ->
      ignore
        (Launch.time ~prec:Precision.Double ~warps:0 ~total:(Counter.create ())
           ~max_warp:(Counter.create ()) ()))

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)

let test_sampling_exact_vs_sampled () =
  (* A data-independent kernel: Sampled must reproduce Exact's aggregate
     counters exactly when all problems have the same size. *)
  let kernel w _i =
    let a = Array.make 32 1.0 in
    ignore (Warp.fma w a a a);
    Counter.credit_flops (Warp.counter w) 64.0
  in
  let sizes = Array.make 500 16 in
  let run mode = Sampling.run ~prec:Precision.Double ~mode ~sizes ~kernel () in
  let e = run Sampling.Exact and s = run Sampling.Sampled in
  check_float "identical flops" e.Launch.total.Counter.useful_flops
    s.Launch.total.Counter.useful_flops;
  check_float "identical time" e.Launch.time_us s.Launch.time_us

let test_sampling_representatives () =
  (* One kernel execution per distinct size in Sampled mode. *)
  let executed = ref [] in
  let kernel w i =
    executed := i :: !executed;
    ignore (Warp.fma w (Array.make 32 1.0) (Array.make 32 1.0) (Array.make 32 1.0))
  in
  let sizes = [| 4; 8; 4; 16; 8; 4 |] in
  ignore (Sampling.run ~prec:Precision.Double ~mode:Sampling.Sampled ~sizes ~kernel ());
  Alcotest.(check (list int)) "first occurrence of each size" [ 0; 1; 3 ]
    (List.sort compare !executed)

let test_sampling_empty () =
  (* Empty batches are a defined no-op: zero time, zero warps, no kernel
     executions (DESIGN §5 failure injection). *)
  List.iter
    (fun mode ->
      let s =
        Sampling.run ~prec:Precision.Double ~mode ~sizes:[||]
          ~kernel:(fun _ _ -> Alcotest.fail "kernel must not run") ()
      in
      Alcotest.(check int) "no warps" 0 s.Launch.warps;
      check_float "no time" 0.0 s.Launch.time_us;
      check_float "no flops" 0.0 s.Launch.total.Counter.useful_flops)
    [ Sampling.Exact; Sampling.Sampled ]

let test_sampling_parallel_bit_identical () =
  (* The tentpole determinism guarantee: any domain count produces stats
     bit-identical to the sequential run, in both modes. *)
  let kernel w i =
    let x = Array.make 32 (1.0 +. (float_of_int i /. 7.0)) in
    let y = Warp.fma w x x x in
    ignore (Warp.mul w y x);
    Counter.credit_flops (Warp.counter w) (float_of_int (64 + (i mod 5)))
  in
  let sizes = Array.init 37 (fun i -> 4 + (i mod 9)) in
  List.iter
    (fun mode ->
      let seq = Sampling.run ~prec:Precision.Double ~mode ~sizes ~kernel () in
      List.iter
        (fun domains ->
          let pool = Vblu_par.Pool.create ~num_domains:domains () in
          let par =
            Sampling.run ~pool ~prec:Precision.Double ~mode ~sizes ~kernel ()
          in
          let label s = Printf.sprintf "%s (domains=%d)" s domains in
          Alcotest.(check bool)
            (label "bit-identical time")
            true
            (Float.equal par.Launch.time_us seq.Launch.time_us);
          Alcotest.(check bool)
            (label "bit-identical gflops")
            true
            (Float.equal par.Launch.gflops seq.Launch.gflops);
          Alcotest.(check bool)
            (label "bit-identical txns")
            true
            (Float.equal par.Launch.total.Counter.gmem_transactions
               seq.Launch.total.Counter.gmem_transactions))
        [ 2; 4; 7 ])
    [ Sampling.Exact; Sampling.Sampled ]

let qcheck_sampling =
  [
    QCheck.Test.make ~count:50
      ~name:"Sampled = Exact modelled time on uniform batches"
      QCheck.(pair (int_range 1 32) (int_range 1 200))
      (fun (size, count) ->
        let kernel w _i =
          let a = Array.make 32 1.0 in
          let b = Warp.fma w a a a in
          ignore (Warp.add w a b);
          Counter.credit_flops (Warp.counter w) (float_of_int (2 * size * size))
        in
        let sizes = Array.make count size in
        let run mode =
          Sampling.run ~prec:Precision.Double ~mode ~sizes ~kernel ()
        in
        let e = run Sampling.Exact and s = run Sampling.Sampled in
        Float.equal e.Launch.time_us s.Launch.time_us
        && Float.equal e.Launch.gflops s.Launch.gflops
        && Float.equal e.Launch.total.Counter.gmem_transactions
             s.Launch.total.Counter.gmem_transactions);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "simt"
    [
      ( "warp",
        [
          Alcotest.test_case "lanewise ops" `Quick test_lanewise_ops;
          Alcotest.test_case "predication" `Quick test_predication;
          Alcotest.test_case "single rounding" `Quick
            test_single_precision_rounding;
          Alcotest.test_case "fnma/sqrt" `Quick test_fnma_and_sqrt;
          Alcotest.test_case "scattered replays" `Quick
            test_scattered_load_replays;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "argmax" `Quick test_argmax_abs;
        ] );
      ( "memory",
        [
          Alcotest.test_case "gmem roundtrip" `Quick test_gmem_roundtrip;
          Alcotest.test_case "coalescing" `Quick test_coalescing_counts;
          Alcotest.test_case "inactive lanes" `Quick
            test_inactive_lanes_no_traffic;
          Alcotest.test_case "staging precision" `Quick
            test_gmem_precision_staging;
          Alcotest.test_case "bank conflicts" `Quick test_smem_bank_conflicts;
        ] );
      ( "counters",
        [
          Alcotest.test_case "add/scale" `Quick test_counter_add_scale;
          Alcotest.test_case "scale no ceil" `Quick test_counter_scale_no_ceil;
        ] );
      ( "timing",
        [
          Alcotest.test_case "batch ramp" `Quick test_launch_monotone_in_batch;
          Alcotest.test_case "bandwidth bound" `Quick test_launch_bandwidth_bound;
          Alcotest.test_case "precision ratio" `Quick test_launch_precision_ratio;
          Alcotest.test_case "serial floor" `Quick test_launch_serial_floor;
          Alcotest.test_case "rejects empty" `Quick test_launch_rejects_empty;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "exact = sampled" `Quick
            test_sampling_exact_vs_sampled;
          Alcotest.test_case "representatives" `Quick
            test_sampling_representatives;
          Alcotest.test_case "empty" `Quick test_sampling_empty;
          Alcotest.test_case "parallel bit-identical" `Quick
            test_sampling_parallel_bit_identical;
        ]
        @ qcheck_sampling );
    ]
