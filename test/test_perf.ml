(* Tests for the reporting/experiment layer: formatting, CSV export, and
   end-to-end smoke runs of the figure drivers (quick mode, output to a
   buffer) — the integration test that the whole reproduction pipeline
   stays runnable. *)

open Vblu_perf

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let buffer_formatter () =
  let buf = Buffer.create 4096 in
  (buf, Format.formatter_of_buffer buf)

let demo_series =
  {
    Report.title = "demo";
    xlabel = "x";
    columns = [ "a"; "b" ];
    rows = [ (1.0, [ Some 2.5; None ]); (2.0, [ Some 3.5; Some 4.25 ]) ];
  }

let test_series_formatting () =
  let buf, ppf = buffer_formatter () in
  Report.print_series ppf demo_series;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "has title" true (contains out "## demo");
  Alcotest.(check bool) "has value" true (contains out "4.25");
  Alcotest.(check bool) "missing renders as dash" true (contains out " -")

let test_csv_export () =
  let csv = Report.csv_of_series demo_series in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "rows + header" 3 (List.length lines);
  Alcotest.(check string) "header" "x,a,b" (List.hd lines);
  Alcotest.(check bool) "empty cell for missing" true (contains csv "1,2.5,\n")

let test_table_alignment () =
  let buf, ppf = buffer_formatter () in
  Report.print_table ppf ~title:"t" ~header:[ "col"; "value" ]
    ~rows:[ [ "a"; "1" ]; [ "longer"; "22" ] ];
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "header present" true (contains out "col");
  Alcotest.(check bool) "rows present" true (contains out "longer")

let null_formatter () =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* --- shape assertions: the qualitative claims of EXPERIMENTS.md, locked
   into the test suite so a model regression cannot silently break the
   reproduction.  All use the quick sweeps. --- *)

let find_series series fragment =
  match
    List.find_opt (fun (s : Report.series) -> contains s.Report.title fragment) series
  with
  | Some s -> s
  | None -> Alcotest.failf "no series titled like %S" fragment

let value (s : Report.series) ~x ~column =
  let ci =
    match List.find_index (String.equal column) s.Report.columns with
    | Some i -> i
    | None -> Alcotest.failf "no column %s" column
  in
  match List.assoc_opt x s.Report.rows with
  | Some ys -> (
    match List.nth ys ci with
    | Some v -> v
    | None -> Alcotest.failf "missing value at %g/%s" x column)
  | None -> Alcotest.failf "no row x=%g" x

let test_fig4_shapes () =
  let series = Kernel_figs.fig4_series ~quick:true () in
  let dp32 = find_series series "block size 32, double" in
  (* Saturating ramp: monotone growth for every routine. *)
  List.iter
    (fun column ->
      let v b = value dp32 ~x:b ~column in
      Alcotest.(check bool)
        (column ^ " ramps with batch size")
        true
        (v 500.0 < v 5000.0 && v 5000.0 < v 40000.0))
    dp32.Report.columns;
  (* The headline: small-size LU >= 2.5x the cuBLAS model at size 32. *)
  let lu = value dp32 ~x:40000.0 ~column:"small-LU" in
  let cublas = value dp32 ~x:40000.0 ~column:"cuBLAS" in
  Alcotest.(check bool)
    (Printf.sprintf "LU %.0f vs cuBLAS %.0f" lu cublas)
    true
    (lu > 2.5 *. cublas);
  (* GH-T factorization slightly below GH. *)
  let gh = value dp32 ~x:40000.0 ~column:"GH" in
  let ght = value dp32 ~x:40000.0 ~column:"GH-T" in
  Alcotest.(check bool) "GH-T below GH, within 10%" true
    (ght < gh && ght > 0.9 *. gh)

let test_fig5_crossover () =
  let series = Kernel_figs.fig5_series ~quick:true () in
  List.iter
    (fun fragment ->
      let s = find_series series fragment in
      let lu x = value s ~x ~column:"small-LU" in
      let gh x = value s ~x ~column:"GH" in
      Alcotest.(check bool) (fragment ^ ": GH wins at 8") true (gh 8.0 > lu 8.0);
      Alcotest.(check bool) (fragment ^ ": LU wins at 32") true
        (lu 32.0 > gh 32.0);
      Alcotest.(check bool) (fragment ^ ": LU beats cuBLAS at 32") true
        (lu 32.0 > value s ~x:32.0 ~column:"cuBLAS"))
    [ "batch 5000, single"; "batch 5000, double" ]

let test_fig6_ordering () =
  let series = Kernel_figs.fig6_series ~quick:true () in
  let dp32 = find_series series "block size 32, double" in
  let v column = value dp32 ~x:40000.0 ~column in
  Alcotest.(check bool) "LU > GH-T > GH in TRSV at 32" true
    (v "small-LU" > v "GH-T" && v "GH-T" > v "GH")

let test_fig7_gh_flat () =
  let series = Kernel_figs.fig7_series ~quick:true () in
  let dp = find_series series "double" in
  let gh x = value dp ~x ~column:"GH" in
  let lu x = value dp ~x ~column:"small-LU" in
  (* Non-coalesced reads pin GH beyond 16 while LU keeps growing. *)
  Alcotest.(check bool) "GH flat past 16" true (gh 32.0 < 1.6 *. gh 16.0);
  Alcotest.(check bool) "LU grows past 16" true (lu 32.0 > 1.3 *. lu 16.0)

let test_kernel_figs_run () =
  let ppf = null_formatter () in
  Kernel_figs.fig4 ~quick:true ppf;
  Kernel_figs.fig5 ~quick:true ppf;
  Kernel_figs.fig6 ~quick:true ppf;
  Kernel_figs.fig7 ~quick:true ppf;
  Kernel_figs.ablation_pivot ~quick:true ppf;
  Kernel_figs.ablation_trsv ~quick:true ppf;
  Kernel_figs.ablation_extraction ~quick:true ppf;
  Kernel_figs.ablation_cholesky ~quick:true ppf;
  Kernel_figs.ablation_variable_size ~quick:true ppf

let test_solver_study_and_figs () =
  let study = Solver_study.run_suite ~quick:true () in
  (* Quick mode: first 12 matrices, bounds 8 and 32: per matrix one scalar
     run, two variants per bound, plus GH-T and GJE at 32. *)
  Alcotest.(check int) "run count" (12 * 7) (List.length study.Solver_study.runs);
  List.iter
    (fun (r : Solver_study.run) ->
      Alcotest.(check bool) "iterations recorded" true (r.Solver_study.iterations > 0);
      Alcotest.(check bool) "times nonnegative" true
        (Solver_study.total_seconds r >= 0.0))
    study.Solver_study.runs;
  let entry = List.hd Vblu_workloads.Suite.all in
  Alcotest.(check bool) "find works" true
    (Solver_study.find study entry Vblu_precond.Block_jacobi.Lu 8 <> None);
  Alcotest.(check bool) "find misses absent bound" true
    (Solver_study.find study entry Vblu_precond.Block_jacobi.Lu 12 = None);
  let ppf = null_formatter () in
  Solver_figs.fig8 ppf study;
  Solver_figs.fig9 ppf study;
  Solver_figs.table1 ppf study;
  Solver_figs.ablation_variants ppf study

(* The precond study's job fan-out must not perturb results: a
   multi-domain pool produces bitwise the same iteration counts and
   modelled numbers as the sequential loop. *)
let test_precond_study_pool_identity () =
  let entries = List.filteri (fun i _ -> i < 2) Vblu_workloads.Suite.all in
  let families = [ Precond_study.Jacobi; Precond_study.Ilu0 ] in
  let seq = Precond_study.run_suite ~entries ~families () in
  let pool = Vblu_par.Pool.create ~num_domains:3 () in
  let par = Precond_study.run_suite ~entries ~families ~pool () in
  Alcotest.(check int) "run count" (List.length seq.Precond_study.runs)
    (List.length par.Precond_study.runs);
  List.iter2
    (fun (a : Precond_study.run) (b : Precond_study.run) ->
      Alcotest.(check int) "iterations" a.Precond_study.iterations
        b.Precond_study.iterations;
      Alcotest.(check int) "apply transactions"
        a.Precond_study.apply_transactions b.Precond_study.apply_transactions;
      Alcotest.(check bool) "modelled apply bitwise" true
        (Int64.equal
           (Int64.bits_of_float a.Precond_study.modelled_apply_seconds)
           (Int64.bits_of_float b.Precond_study.modelled_apply_seconds)))
    seq.Precond_study.runs par.Precond_study.runs

let () =
  Alcotest.run "perf"
    [
      ( "report",
        [
          Alcotest.test_case "series" `Quick test_series_formatting;
          Alcotest.test_case "csv" `Quick test_csv_export;
          Alcotest.test_case "table" `Quick test_table_alignment;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "fig4: ramp, cuBLAS gap, GH-T" `Quick
            test_fig4_shapes;
          Alcotest.test_case "fig5: LU/GH crossover" `Quick test_fig5_crossover;
          Alcotest.test_case "fig6: TRSV ordering" `Quick test_fig6_ordering;
          Alcotest.test_case "fig7: GH flattens" `Quick test_fig7_gh_flat;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "kernel figures (quick)" `Slow test_kernel_figs_run;
          Alcotest.test_case "solver study (quick)" `Slow
            test_solver_study_and_figs;
          Alcotest.test_case "precond study pool identity" `Quick
            test_precond_study_pool_identity;
        ] );
    ]
