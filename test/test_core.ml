(* Tests for the paper's contribution: batch descriptors, the batched LU /
   TRSV register kernels, the GH / GJE / cuBLAS-model comparison kernels,
   and the extraction kernels — all cross-validated against the CPU
   reference implementations. *)

open Vblu_smallblas
open Vblu_core
open Vblu_sparse
module S = Vblu_simt.Sampling
module L = Vblu_simt.Launch

let check_float = Alcotest.(check (float 1e-12))

let state seed = Random.State.make [| 0xc04e; seed |]

let general_batch seed ~count ~min_size ~max_size =
  let st = state seed in
  let sizes = Batch.random_sizes ~state:st ~count ~min_size ~max_size () in
  Batch.random_general ~state:st sizes

(* ------------------------------------------------------------------ *)
(* Batch                                                               *)

let test_batch_roundtrip () =
  let b = general_batch 1 ~count:10 ~min_size:1 ~max_size:9 in
  let ms = Batch.to_matrices b in
  let b2 = Batch.of_matrices ms in
  check_float "values equal" 0.0
    (Vector.max_abs_diff b.Batch.values b2.Batch.values);
  Alcotest.(check int) "count" 10 (Batch.count b);
  Alcotest.(check bool) "max size" true (Batch.max_size b <= 9)

let test_batch_set_matrix () =
  let b = Batch.create [| 3; 4 |] in
  let m = Matrix.identity 4 in
  Batch.set_matrix b 1 m;
  check_float "written" 0.0 (Matrix.max_abs_diff m (Batch.get_matrix b 1));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Batch.set_matrix: size mismatch") (fun () ->
      Batch.set_matrix b 0 m)

let test_batch_validation () =
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Batch: non-positive block size") (fun () ->
      ignore (Batch.create [| 3; 0 |]));
  (* An empty batch is a legal value, not an error. *)
  let e = Batch.of_matrices [||] in
  Alcotest.(check int) "empty of_matrices" 0 (Batch.count e);
  Alcotest.(check int) "no values" 0 (Array.length e.Batch.values);
  let v = Batch.vec_of_vectors [||] in
  Alcotest.(check int) "empty vec_of_vectors" 0 v.Batch.vcount

let test_empty_batch_noops () =
  (* Every batched kernel must accept an empty batch and return empty
     results with zeroed stats (satellite: empty batches are defined
     no-ops, not crashes). *)
  let e = Batch.create [||] in
  let zero (s : L.stats) =
    Alcotest.(check int) "no warps" 0 s.L.warps;
    check_float "zero time" 0.0 s.L.time_us;
    check_float "zero gflops" 0.0 s.L.gflops
  in
  let lu = Batched_lu.factor e in
  Alcotest.(check int) "lu factors empty" 0 (Batch.count lu.Batched_lu.factors);
  zero lu.Batched_lu.stats;
  let rhs = Batch.vec_create [||] in
  let tr =
    Batched_trsv.solve ~factors:lu.Batched_lu.factors
      ~pivots:lu.Batched_lu.pivots rhs
  in
  Alcotest.(check int) "trsv solutions empty" 0
    tr.Batched_trsv.solutions.Batch.vcount;
  zero tr.Batched_trsv.stats;
  let gh = Batched_gh.factor e in
  zero gh.Batched_gh.stats;
  let gje = Batched_gje.invert e in
  zero gje.Batched_gje.stats;
  let ch = Batched_cholesky.factor e in
  zero ch.Batched_cholesky.stats;
  let gm = Batched_gemm.multiply ~a:e ~b:e () in
  zero gm.Batched_gemm.stats;
  let cb = Cublas_model.factor e in
  Alcotest.(check int) "cublas factors empty" 0
    (Batch.count cb.Cublas_model.factors);
  zero cb.Cublas_model.stats;
  let cbs = Cublas_model.solve cb rhs in
  zero cbs.Cublas_model.solve_stats

let test_pool_matches_sequential () =
  (* Tentpole determinism check at the kernel API: running a batch through
     a multi-domain pool is bit-identical to the sequential path — same
     factors, pivots, and modelled stats. *)
  let b = general_batch 60 ~count:37 ~min_size:1 ~max_size:32 in
  let pool = Vblu_par.Pool.create ~num_domains:4 () in
  let seq = Batched_lu.factor b in
  let par = Batched_lu.factor ~pool b in
  check_float "factors bitwise equal" 0.0
    (Vector.max_abs_diff seq.Batched_lu.factors.Batch.values
       par.Batched_lu.factors.Batch.values);
  Array.iteri
    (fun i p ->
      Alcotest.(check (array int)) "pivots equal" p par.Batched_lu.pivots.(i))
    seq.Batched_lu.pivots;
  Alcotest.(check bool) "time bit-identical" true
    (Float.equal seq.Batched_lu.stats.L.time_us par.Batched_lu.stats.L.time_us);
  Alcotest.(check bool) "gflops bit-identical" true
    (Float.equal seq.Batched_lu.stats.L.gflops par.Batched_lu.stats.L.gflops);
  (* And in sampled mode, where the pool maps over size classes. *)
  let seq_s = Batched_lu.factor ~mode:S.Sampled b in
  let par_s = Batched_lu.factor ~mode:S.Sampled ~pool b in
  Alcotest.(check bool) "sampled time bit-identical" true
    (Float.equal seq_s.Batched_lu.stats.L.time_us
       par_s.Batched_lu.stats.L.time_us)

let test_vec_batch () =
  let v = Batch.vec_of_vectors [| [| 1.0; 2.0 |]; [| 3.0 |] |] in
  check_float "segment" 3.0 (Batch.vec_get v 1).(0);
  let flat = Batch.vec_to_flat v in
  check_float "flat" 2.0 flat.(1);
  let v2 = Batch.vec_of_flat ~sizes:[| 2; 1 |] flat in
  check_float "roundtrip" 0.0
    (Vector.max_abs_diff (Batch.vec_get v 0) (Batch.vec_get v2 0));
  Alcotest.check_raises "flat length"
    (Invalid_argument "Batch.vec_of_flat: length mismatch") (fun () ->
      ignore (Batch.vec_of_flat ~sizes:[| 2 |] flat))

(* ------------------------------------------------------------------ *)
(* Batched LU                                                          *)

let test_batched_lu_matches_reference () =
  let b = general_batch 2 ~count:30 ~min_size:1 ~max_size:32 in
  let r = Batched_lu.factor b in
  Alcotest.(check bool) "exact mode" true r.Batched_lu.exact;
  Array.iteri
    (fun i m ->
      let f = Lu.factor_implicit m in
      check_float "factors bitwise equal" 0.0
        (Matrix.max_abs_diff f.Lu.lu (Batch.get_matrix r.Batched_lu.factors i));
      Alcotest.(check (array int)) "pivots equal" f.Lu.perm
        r.Batched_lu.pivots.(i))
    (Batch.to_matrices b)

let test_batched_lu_pivot_modes_agree () =
  let b = general_batch 3 ~count:12 ~min_size:2 ~max_size:32 in
  let ri = Batched_lu.factor ~pivoting:Batched_lu.Implicit b in
  let re = Batched_lu.factor ~pivoting:Batched_lu.Explicit b in
  check_float "identical factors" 0.0
    (Vector.max_abs_diff ri.Batched_lu.factors.Batch.values
       re.Batched_lu.factors.Batch.values);
  (* Explicit pivoting costs extra shuffles — visible in the model. *)
  Alcotest.(check bool) "explicit charges more shuffles" true
    (re.Batched_lu.stats.L.total.Vblu_simt.Counter.shfl_instrs
    > ri.Batched_lu.stats.L.total.Vblu_simt.Counter.shfl_instrs)

let test_batched_lu_nopivot_on_diagdom () =
  let st = state 4 in
  let sizes = Batch.random_sizes ~state:st ~count:8 ~min_size:2 ~max_size:16 () in
  let b = Batch.random_diagdom ~state:st sizes in
  let r = Batched_lu.factor ~pivoting:Batched_lu.No_pivoting b in
  Array.iteri
    (fun i m ->
      let f = Lu.factor_nopivot m in
      check_float "factors equal" 0.0
        (Matrix.max_abs_diff f.Lu.lu (Batch.get_matrix r.Batched_lu.factors i)))
    (Batch.to_matrices b)

(* A matrix with column [k] zeroed out.  A zero column is invariant under
   the elimination updates (every update subtracts a multiple of its own
   entry), so pivoted LU runs exactly [k] clean steps and meets an exactly
   zero pivot column at step [k]: info = k + 1, with no rounding hazard. *)
let poison_column m k =
  let n, _ = Matrix.dims m in
  let p = Matrix.copy m in
  for r = 0 to n - 1 do
    Matrix.set p r k 0.0
  done;
  p

let test_batched_lu_singular () =
  (* A singular block no longer aborts the batch (tentpole): the kernel
     completes, flags the dead problem in [info], and leaves the healthy
     one bit-identical to the reference. *)
  let b = Batch.of_matrices [| Matrix.identity 4; Matrix.create 4 4 |] in
  let r = Batched_lu.factor b in
  Alcotest.(check (array int)) "info flags block 1 at step 0" [| 0; 1 |]
    r.Batched_lu.info;
  let healthy = Lu.factor_implicit (Matrix.identity 4) in
  check_float "healthy block bit-identical" 0.0
    (Matrix.max_abs_diff healthy.Lu.lu (Batch.get_matrix r.Batched_lu.factors 0))

let test_batched_lu_breakdown_matches_reference () =
  (* Frozen partial factors, the completed permutation, and the info codes
     must all match the CPU status reference bitwise, in every pivot mode
     (the shared freeze contract). *)
  let st = state 70 in
  let ms =
    Array.init 12 (fun i ->
        let n = 2 + Random.State.int st 31 in
        let m = Matrix.random_general ~state:st n in
        if i mod 2 = 0 then poison_column m (Random.State.int st n) else m)
  in
  let b = Batch.of_matrices ms in
  List.iter
    (fun (pivoting, reference) ->
      let r = Batched_lu.factor ~pivoting b in
      Array.iteri
        (fun i m ->
          let f, inf = reference m in
          Alcotest.(check int) "info equal" inf r.Batched_lu.info.(i);
          check_float "frozen factors bitwise equal" 0.0
            (Matrix.max_abs_diff f.Lu.lu
               (Batch.get_matrix r.Batched_lu.factors i));
          Alcotest.(check (array int)) "permutation equal (and total)" f.Lu.perm
            r.Batched_lu.pivots.(i))
        ms)
    [
      (Batched_lu.Implicit, Lu.factor_implicit_status ?prec:None);
      (Batched_lu.Explicit, Lu.factor_explicit_status ?prec:None);
    ]

let test_batched_lu_breakdown_leaves_others_untouched () =
  (* Poisoning one problem must not change any bit of its batch-mates. *)
  let st = state 71 in
  let ms = Array.init 5 (fun _ -> Matrix.random_general ~state:st 16) in
  let clean = Batched_lu.factor (Batch.of_matrices ms) in
  let poisoned = Array.copy ms in
  poisoned.(2) <- poison_column ms.(2) 7;
  let r = Batched_lu.factor (Batch.of_matrices poisoned) in
  Alcotest.(check (array int)) "only problem 2 flagged" [| 0; 0; 8; 0; 0 |]
    r.Batched_lu.info;
  Array.iteri
    (fun i _ ->
      if i <> 2 then
        check_float "unpoisoned problem bit-identical" 0.0
          (Matrix.max_abs_diff
             (Batch.get_matrix clean.Batched_lu.factors i)
             (Batch.get_matrix r.Batched_lu.factors i)))
    ms

let test_breakdown_bitwise_across_domains () =
  (* Tentpole hard invariant: factors AND info are bit-identical for any
     domain count, poisoned blocks included. *)
  let st = state 72 in
  let ms =
    Array.init 21 (fun i ->
        let n = 1 + Random.State.int st 32 in
        let m = Matrix.random_general ~state:st n in
        if i mod 3 = 0 then poison_column m (Random.State.int st n) else m)
  in
  let b = Batch.of_matrices ms in
  let seq = Batched_lu.factor b in
  List.iter
    (fun n ->
      let pool = Vblu_par.Pool.create ~num_domains:n () in
      let par = Batched_lu.factor ~pool b in
      check_float "factors bitwise equal" 0.0
        (Vector.max_abs_diff seq.Batched_lu.factors.Batch.values
           par.Batched_lu.factors.Batch.values);
      Alcotest.(check (array int)) "info identical" seq.Batched_lu.info
        par.Batched_lu.info)
    [ 1; 2; 4 ]

let test_batched_lu_oversize () =
  Alcotest.(check bool) "rejects > warp" true
    (match Batched_lu.factor (Batch.create [| 33 |]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_batched_lu_single_precision () =
  let b = general_batch 5 ~count:6 ~min_size:4 ~max_size:24 in
  let r = Batched_lu.factor ~prec:Precision.Single b in
  Array.iteri
    (fun i m ->
      (* The kernel stages the input into single-precision device memory;
         the CPU reference must see the same rounded data. *)
      let rows, cols = Matrix.dims m in
      let staged =
        Matrix.init rows cols (fun r c ->
            Precision.round Precision.Single (Matrix.unsafe_get m r c))
      in
      let f = Lu.factor_implicit ~prec:Precision.Single staged in
      check_float "single-precision factors bitwise equal" 0.0
        (Matrix.max_abs_diff f.Lu.lu (Batch.get_matrix r.Batched_lu.factors i)))
    (Batch.to_matrices b)

let test_batched_lu_sampled_stats () =
  (* Uniform batch: sampled counters = exact counters. *)
  let st = state 6 in
  let sizes = Batch.uniform_sizes ~count:64 ~size:16 in
  let b = Batch.create sizes in
  let m = Matrix.random_diagdom ~state:st 16 in
  for i = 0 to 63 do
    Batch.set_matrix b i m
  done;
  let e = Batched_lu.factor ~mode:S.Exact b in
  let s = Batched_lu.factor ~mode:S.Sampled b in
  Alcotest.(check bool) "sampled flagged" false s.Batched_lu.exact;
  check_float "same modelled time" e.Batched_lu.stats.L.time_us
    s.Batched_lu.stats.L.time_us

(* ------------------------------------------------------------------ *)
(* Batched TRSV                                                        *)

let test_batched_trsv_solves () =
  let b = general_batch 7 ~count:25 ~min_size:1 ~max_size:32 in
  let rhs = Batch.vec_random ~state:(state 8) b.Batch.sizes in
  let f = Batched_lu.factor b in
  List.iter
    (fun variant ->
      let s =
        Batched_trsv.solve ~variant ~factors:f.Batched_lu.factors
          ~pivots:f.Batched_lu.pivots rhs
      in
      Array.iteri
        (fun i m ->
          let x = Batch.vec_get s.Batched_trsv.solutions i in
          Alcotest.(check bool) "residual" true
            (Diagnostics.solve_residual m x (Batch.vec_get rhs i) < 1e-11))
        (Batch.to_matrices b))
    [ Batched_trsv.Eager; Batched_trsv.Lazy ]

let test_batched_trsv_matches_getrs () =
  let b = general_batch 9 ~count:10 ~min_size:2 ~max_size:32 in
  let rhs = Batch.vec_random ~state:(state 10) b.Batch.sizes in
  let f = Batched_lu.factor b in
  let s =
    Batched_trsv.solve ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
      rhs
  in
  Array.iteri
    (fun i m ->
      let x_ref = Lu.solve (Lu.factor_implicit m) (Batch.vec_get rhs i) in
      check_float "bitwise equal to CPU GETRS" 0.0
        (Vector.max_abs_diff x_ref (Batch.vec_get s.Batched_trsv.solutions i)))
    (Batch.to_matrices b)

let test_batched_trsv_shape_checks () =
  let b = general_batch 11 ~count:3 ~min_size:4 ~max_size:4 in
  let f = Batched_lu.factor b in
  let bad_rhs = Batch.vec_create [| 4; 4 |] in
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Batched_trsv.solve: batch count mismatch") (fun () ->
      ignore
        (Batched_trsv.solve ~factors:f.Batched_lu.factors
           ~pivots:f.Batched_lu.pivots bad_rhs));
  (* Satellite: a pivots array of the wrong length is rejected up front
     with a descriptive message, not an out-of-bounds crash mid-kernel. *)
  let rhs = Batch.vec_create b.Batch.sizes in
  let short = Array.sub f.Batched_lu.pivots 0 2 in
  Alcotest.check_raises "pivots length (trsv)"
    (Invalid_argument
       "Batched_trsv.solve: pivots array has 2 entries for 3 blocks")
    (fun () ->
      ignore
        (Batched_trsv.solve ~factors:f.Batched_lu.factors ~pivots:short rhs));
  Alcotest.check_raises "pivots length (trsm)"
    (Invalid_argument
       "Batched_trsm.solve: pivots array has 2 entries for 3 blocks")
    (fun () ->
      ignore
        (Batched_trsm.solve ~factors:f.Batched_lu.factors ~pivots:short
           [| rhs |]))

let test_batched_trsv_singular_diag_info () =
  (* A frozen factorization (all-zero block) pushed through the solve is
     flagged, not raised: the upper sweep meets the zero diagonal at its
     first step (k = 3 for a 4x4, info = 4), in both variants. *)
  let b = Batch.of_matrices [| Matrix.identity 4; Matrix.create 4 4 |] in
  let f = Batched_lu.factor b in
  let rhs = Batch.vec_random ~state:(state 73) b.Batch.sizes in
  List.iter
    (fun variant ->
      let s =
        Batched_trsv.solve ~variant ~factors:f.Batched_lu.factors
          ~pivots:f.Batched_lu.pivots rhs
      in
      Alcotest.(check (array int)) "solve info" [| 0; 4 |]
        s.Batched_trsv.info)
    [ Batched_trsv.Eager; Batched_trsv.Lazy ]

let test_batched_trsv_gmem_elems_parity () =
  (* Satellite: eager and lazy touch the same logical data — s^2 matrix
     elements plus the rhs loads/stores — so the element counters must
     agree exactly now that the lazy variant charges its diagonal reads.
     (Transaction counts still differ: rows vs columns.) *)
  let b = general_batch 74 ~count:9 ~min_size:1 ~max_size:32 in
  let f = Batched_lu.factor b in
  let rhs = Batch.vec_random ~state:(state 75) b.Batch.sizes in
  let elems variant =
    let s =
      Batched_trsv.solve ~variant ~factors:f.Batched_lu.factors
        ~pivots:f.Batched_lu.pivots rhs
    in
    Vblu_simt.Counter.elems s.Batched_trsv.stats.L.total
  in
  Alcotest.(check int) "same gmem elements" (elems Batched_trsv.Eager)
    (elems Batched_trsv.Lazy)

let test_batched_trsv_eager_coalesced_vs_lazy () =
  (* The eager kernel reads columns (coalesced); the lazy one reads rows —
     it must cost more memory issue slots at size 32. *)
  let st = state 12 in
  let sizes = Batch.uniform_sizes ~count:100 ~size:32 in
  let b = Batch.create sizes in
  Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st 32);
  let f = Batched_lu.factor ~mode:S.Sampled b in
  let rhs = Batch.vec_random ~state:st sizes in
  let run variant =
    (Batched_trsv.solve ~mode:S.Sampled ~variant ~factors:f.Batched_lu.factors
       ~pivots:f.Batched_lu.pivots rhs)
      .Batched_trsv.stats
  in
  let eager = run Batched_trsv.Eager and lazy_ = run Batched_trsv.Lazy in
  Alcotest.(check bool) "lazy slower" true (lazy_.L.time_us > eager.L.time_us)

(* ------------------------------------------------------------------ *)
(* Batched TRSM (multiple right-hand sides)                            *)

let test_batched_trsm_matches_trsv () =
  let b = general_batch 40 ~count:8 ~min_size:2 ~max_size:32 in
  let f = Batched_lu.factor b in
  let sets =
    Array.init 3 (fun r -> Batch.vec_random ~state:(state (41 + r)) b.Batch.sizes)
  in
  let multi =
    Batched_trsm.solve ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
      sets
  in
  Array.iteri
    (fun r rhs ->
      let single =
        Batched_trsv.solve ~factors:f.Batched_lu.factors
          ~pivots:f.Batched_lu.pivots rhs
      in
      check_float "bitwise equal to single-rhs solve" 0.0
        (Vector.max_abs_diff
           multi.Batched_trsm.solutions.(r).Batch.vvalues
           single.Batched_trsv.solutions.Batch.vvalues))
    sets

let test_batched_trsm_amortizes_matrix_reads () =
  (* Factor traffic is paid once for all right-hand sides: 4 rhs must cost
     far less than 4x one rhs. *)
  let st = state 42 in
  let sizes = Batch.uniform_sizes ~count:1000 ~size:32 in
  let b = Batch.create sizes in
  Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st 32);
  let f = Batched_lu.factor ~mode:S.Sampled b in
  let one = [| Batch.vec_random ~state:st sizes |] in
  let four = Array.init 4 (fun _ -> Batch.vec_random ~state:st sizes) in
  let run sets =
    (Batched_trsm.solve ~mode:S.Sampled ~factors:f.Batched_lu.factors
       ~pivots:f.Batched_lu.pivots sets)
      .Batched_trsm.stats
  in
  let t1 = (run one).L.time_us and t4 = (run four).L.time_us in
  Alcotest.(check bool)
    (Printf.sprintf "4 rhs in %.2fx of 1 rhs" (t4 /. t1))
    true
    (t4 < 3.0 *. t1);
  Alcotest.(check bool) "still more than 1 rhs" true (t4 > t1)

let test_batched_trsm_validation () =
  let b = general_batch 43 ~count:2 ~min_size:4 ~max_size:4 in
  let f = Batched_lu.factor b in
  Alcotest.(check bool) "empty sets rejected" true
    (match
       Batched_trsm.solve ~factors:f.Batched_lu.factors
         ~pivots:f.Batched_lu.pivots [||]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Batched GH / GJE                                                    *)

let test_batched_gh_solves () =
  let b = general_batch 13 ~count:15 ~min_size:1 ~max_size:32 in
  let rhs = Batch.vec_random ~state:(state 14) b.Batch.sizes in
  List.iter
    (fun storage ->
      let f = Batched_gh.factor ~storage b in
      let s = Batched_gh.solve f rhs in
      Array.iteri
        (fun i m ->
          Alcotest.(check bool) "residual" true
            (Diagnostics.solve_residual m
               (Batch.vec_get s.Batched_gh.solutions i)
               (Batch.vec_get rhs i)
            < 1e-11))
        (Batch.to_matrices b))
    [ Gauss_huard.Normal; Gauss_huard.Transposed ]

let test_batched_gh_lazy_cost_advantage () =
  (* At small sizes GH executes fewer slots than the padded eager LU —
     the Figure 5 crossover mechanism. *)
  let size = 8 and count = 1000 in
  let st = state 15 in
  let b = Batch.create (Batch.uniform_sizes ~count ~size) in
  Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st size);
  let lu = Batched_lu.factor ~mode:S.Sampled b in
  let gh = Batched_gh.factor ~mode:S.Sampled b in
  Alcotest.(check bool) "GH faster at size 8" true
    (gh.Batched_gh.stats.L.time_us < lu.Batched_lu.stats.L.time_us);
  (* And at 32 the register LU wins. *)
  let b32 = Batch.create (Batch.uniform_sizes ~count ~size:32) in
  Batch.set_matrix b32 0 (Matrix.random_diagdom ~state:st 32);
  let lu32 = Batched_lu.factor ~mode:S.Sampled b32 in
  let gh32 = Batched_gh.factor ~mode:S.Sampled b32 in
  Alcotest.(check bool) "LU faster at size 32" true
    (lu32.Batched_lu.stats.L.time_us < gh32.Batched_gh.stats.L.time_us)

let test_batched_gje_inverts () =
  let b = general_batch 16 ~count:10 ~min_size:1 ~max_size:24 in
  let r = Batched_gje.invert b in
  Array.iteri
    (fun i m ->
      let n, _ = Matrix.dims m in
      Alcotest.(check bool) "inverse" true
        (Matrix.max_abs_diff
           (Matrix.matmul m r.Batched_gje.inverses.(i))
           (Matrix.identity n)
        < 1e-9))
    (Batch.to_matrices b);
  let rhs = Batch.vec_random ~state:(state 17) b.Batch.sizes in
  let a = Batched_gje.apply r rhs in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool) "apply residual" true
        (Diagnostics.solve_residual m
           (Batch.vec_get a.Batched_gje.products i)
           (Batch.vec_get rhs i)
        < 1e-9))
    (Batch.to_matrices b)

let test_gje_setup_costlier_apply_cheaper () =
  let size = 24 and count = 2000 in
  let st = state 18 in
  let b = Batch.create (Batch.uniform_sizes ~count ~size) in
  Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st size);
  let rhs = Batch.vec_random ~state:st b.Batch.sizes in
  let lu = Batched_lu.factor ~mode:S.Sampled b in
  let gje = Batched_gje.invert ~mode:S.Sampled b in
  Alcotest.(check bool) "inversion setup costs more" true
    (gje.Batched_gje.stats.L.time_us > lu.Batched_lu.stats.L.time_us);
  let trsv =
    Batched_trsv.solve ~mode:S.Sampled ~factors:lu.Batched_lu.factors
      ~pivots:lu.Batched_lu.pivots rhs
  in
  let gemv = Batched_gje.apply ~mode:S.Sampled gje rhs in
  Alcotest.(check bool) "gemv apply at least as fast" true
    (gemv.Batched_gje.apply_stats.L.time_us
    <= trsv.Batched_trsv.stats.L.time_us *. 1.05)

(* ------------------------------------------------------------------ *)
(* Batched GEMM                                                        *)

let test_batched_gemm_matches_matmul () =
  let a = general_batch 50 ~count:10 ~min_size:1 ~max_size:32 in
  (* A conformable second batch with a's sizes. *)
  let st = state 52 in
  let b =
    Batch.of_matrices
      (Array.map (fun s -> Matrix.random_general ~state:st s) a.Batch.sizes)
  in
  let r = Batched_gemm.multiply ~a ~b () in
  Array.iteri
    (fun i ma ->
      let expect = Matrix.matmul ma (Batch.get_matrix b i) in
      Alcotest.(check bool) "product matches" true
        (Matrix.max_abs_diff expect (Batch.get_matrix r.Batched_gemm.products i)
        < 1e-12))
    (Batch.to_matrices a)

let test_batched_gemm_alpha_beta () =
  let st = state 53 in
  let sizes = [| 5; 9 |] in
  let mk () =
    Batch.of_matrices (Array.map (fun s -> Matrix.random_general ~state:st s) sizes)
  in
  let a = mk () and b = mk () and c = mk () in
  let r = Batched_gemm.multiply ~alpha:2.0 ~beta:(-0.5) ~a ~b ~c () in
  Array.iteri
    (fun i ma ->
      let ab = Matrix.matmul ma (Batch.get_matrix b i) in
      let expect =
        Matrix.add (Matrix.scale 2.0 ab) (Matrix.scale (-0.5) (Batch.get_matrix c i))
      in
      Alcotest.(check bool) "alpha/beta" true
        (Matrix.max_abs_diff expect (Batch.get_matrix r.Batched_gemm.products i)
        < 1e-11))
    (Batch.to_matrices a)

let test_batched_gemm_validation () =
  let a = Batch.create [| 4 |] and b = Batch.create [| 5 |] in
  Alcotest.(check bool) "size mismatch" true
    (match Batched_gemm.multiply ~a ~b () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Batched Cholesky (future-work kernel)                               *)

let spd_batch seed ~count ~max_size =
  let st = state seed in
  Batch.of_matrices
    (Array.init count (fun _ ->
         let n = 1 + Random.State.int st max_size in
         let b = Matrix.random ~state:st n n in
         let a = Matrix.matmul b (Matrix.transpose b) in
         Matrix.init n n (fun i j ->
             Matrix.get a i j +. if i = j then float_of_int n else 0.0)))

let test_batched_cholesky_matches_reference () =
  let b = spd_batch 30 ~count:15 ~max_size:32 in
  let r = Batched_cholesky.factor b in
  Array.iteri
    (fun i m ->
      let f = Cholesky.factor m in
      check_float "factors bitwise equal" 0.0
        (Matrix.max_abs_diff f.Cholesky.l
           (Batch.get_matrix r.Batched_cholesky.factors i)))
    (Batch.to_matrices b)

let test_batched_cholesky_solve () =
  let b = spd_batch 31 ~count:12 ~max_size:32 in
  let rhs = Batch.vec_random ~state:(state 32) b.Batch.sizes in
  let r = Batched_cholesky.factor b in
  let s = Batched_cholesky.solve ~factors:r.Batched_cholesky.factors rhs in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool) "residual" true
        (Diagnostics.solve_residual m
           (Batch.vec_get s.Batched_trsv.solutions i)
           (Batch.vec_get rhs i)
        < 1e-11))
    (Batch.to_matrices b)

let test_batched_cholesky_not_spd () =
  (* An indefinite block is flagged in [info] (step 1 fails the positivity
     test: d = 1 - 4 < 0), never raised, and the healthy block matches the
     reference bitwise. *)
  let bad = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  let b = Batch.of_matrices [| Matrix.identity 3; bad |] in
  let r = Batched_cholesky.factor b in
  Alcotest.(check (array int)) "info reports block and step" [| 0; 2 |]
    r.Batched_cholesky.info;
  let healthy = Cholesky.factor (Matrix.identity 3) in
  check_float "healthy block bit-identical" 0.0
    (Matrix.max_abs_diff healthy.Cholesky.l
       (Batch.get_matrix r.Batched_cholesky.factors 0));
  (* The frozen partial factor matches the CPU status reference. *)
  let fref, inf = Cholesky.factor_status bad in
  Alcotest.(check int) "reference agrees" inf r.Batched_cholesky.info.(1);
  check_float "frozen factor bitwise equal" 0.0
    (Matrix.max_abs_diff fref.Cholesky.l
       (Batch.get_matrix r.Batched_cholesky.factors 1))

let test_batched_cholesky_cheaper_than_lu () =
  (* Half the factorization work: visibly faster in the model at 32. *)
  let count = 5000 and size = 32 in
  let sizes = Batch.uniform_sizes ~count ~size in
  let b = Batch.create sizes in
  let rep = Batch.get_matrix (spd_batch 33 ~count:1 ~max_size:1) 0 in
  ignore rep;
  let st = state 34 in
  let r = Matrix.random ~state:st size size in
  let spd = Matrix.matmul r (Matrix.transpose r) in
  let spd =
    Matrix.init size size (fun i j ->
        Matrix.get spd i j +. if i = j then 32.0 else 0.0)
  in
  Batch.set_matrix b 0 spd;
  let lu = Batched_lu.factor ~mode:S.Sampled b in
  let ch = Batched_cholesky.factor ~mode:S.Sampled b in
  Alcotest.(check bool) "cholesky faster" true
    (ch.Batched_cholesky.stats.L.time_us < lu.Batched_lu.stats.L.time_us)

(* ------------------------------------------------------------------ *)
(* cuBLAS model                                                        *)

let test_cublas_numerics () =
  let st = state 19 in
  let b =
    Batch.of_matrices (Array.init 8 (fun _ -> Matrix.random_general ~state:st 17))
  in
  let rhs = Batch.vec_random ~state:st b.Batch.sizes in
  let f = Cublas_model.factor b in
  let s = Cublas_model.solve f rhs in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool) "residual" true
        (Diagnostics.solve_residual m
           (Batch.vec_get s.Cublas_model.solutions i)
           (Batch.vec_get rhs i)
        < 1e-11))
    (Batch.to_matrices b)

let test_cublas_info () =
  (* The vendor model reports per-problem info like the real getrfBatched:
     a singular block is flagged, the batch completes. *)
  let b = Batch.of_matrices [| Matrix.identity 4; Matrix.create 4 4 |] in
  let f = Cublas_model.factor b in
  Alcotest.(check (array int)) "factor info" [| 0; 1 |] f.Cublas_model.info;
  let rhs = Batch.vec_random ~state:(state 76) b.Batch.sizes in
  let s = Cublas_model.solve f rhs in
  Alcotest.(check int) "healthy solve ok" 0 s.Cublas_model.solve_info.(0);
  Alcotest.(check bool) "degenerate solve flagged" true
    (s.Cublas_model.solve_info.(1) > 0)

let test_cublas_rejects_variable_sizes () =
  let b = general_batch 20 ~count:4 ~min_size:3 ~max_size:12 in
  Alcotest.(check bool) "variable sizes rejected" true
    (match Cublas_model.factor b with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cublas_slower_than_small_lu () =
  let size = 32 and count = 5000 in
  let st = state 21 in
  let b = Batch.create (Batch.uniform_sizes ~count ~size) in
  Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st size);
  let lu = Batched_lu.factor ~mode:S.Sampled b in
  let cb = Cublas_model.factor ~mode:S.Sampled b in
  let ratio = cb.Cublas_model.stats.L.time_us /. lu.Batched_lu.stats.L.time_us in
  Alcotest.(check bool)
    (Printf.sprintf "cuBLAS ~3.5x slower at 32 (got %.1fx)" ratio)
    true
    (ratio > 2.0 && ratio < 6.0)

let test_cublas_tile_cliff () =
  (* Crossing a tile boundary (16 -> 17) costs a throughput cliff. *)
  let st = state 22 in
  let gf size =
    let b = Batch.create (Batch.uniform_sizes ~count:5000 ~size) in
    Batch.set_matrix b 0 (Matrix.random_diagdom ~state:st size);
    (Cublas_model.factor ~mode:S.Sampled b).Cublas_model.stats.L.gflops
  in
  Alcotest.(check bool) "cliff at 17" true (gf 17 < gf 16)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)

let test_extraction_matches_reference () =
  let a = Vblu_workloads.Generators.circuit_like ~n:256 ~hubs:3 ~hub_degree:50 () in
  let starts = [| 0; 16; 48; 80; 200 |] in
  let sizes = [| 16; 32; 8; 24; 13 |] in
  List.iter
    (fun strategy ->
      let r = Extraction.extract ~strategy a ~block_starts:starts ~block_sizes:sizes in
      Array.iteri
        (fun i st ->
          let expect = Csr.extract_block a ~row_start:st ~size:sizes.(i) in
          check_float "block equal" 0.0
            (Matrix.max_abs_diff expect (Batch.get_matrix r.Extraction.blocks i)))
        starts)
    [ Extraction.Row_per_thread; Extraction.Shared_memory ]

let test_extraction_validation () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:8 ~ny:8 () in
  let bad msg starts sizes =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Extraction.extract a ~block_starts:starts ~block_sizes:sizes))
  in
  bad "Extraction: block size out of range" [| 0 |] [| 33 |];
  bad "Extraction: blocks must be disjoint and sorted" [| 0; 4 |] [| 8; 8 |];
  bad "Extraction: block exceeds matrix" [| 60 |] [| 8 |]

let test_extraction_shared_wins_on_imbalance () =
  let a = Vblu_workloads.Generators.circuit_like ~n:512 ~hubs:8 ~hub_degree:200 () in
  let blk = Array.init 16 (fun i -> i * 32) in
  let sizes = Array.make 16 32 in
  let run strategy =
    (Extraction.extract ~strategy a ~block_starts:blk ~block_sizes:sizes)
      .Extraction.stats
  in
  Alcotest.(check bool) "shared-memory strategy faster" true
    ((run Extraction.Shared_memory).L.time_us
    < (run Extraction.Row_per_thread).L.time_us)

let test_blocks_cover () =
  Alcotest.(check bool) "cover" true
    (Extraction.blocks_cover ~n:10 ~block_starts:[| 0; 4 |] ~block_sizes:[| 4; 6 |]);
  Alcotest.(check bool) "gap" false
    (Extraction.blocks_cover ~n:10 ~block_starts:[| 0; 5 |] ~block_sizes:[| 4; 5 |])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  let gen = QCheck.(pair (int_bound 10_000) (int_range 1 32)) in
  [
    QCheck.Test.make ~count:40 ~name:"batched lu ≡ cpu reference" gen
      (fun (seed, n) ->
        let st = state seed in
        let b = Batch.of_matrices [| Matrix.random_general ~state:st n |] in
        let r = Batched_lu.factor b in
        let f = Lu.factor_implicit (Batch.get_matrix b 0) in
        Matrix.max_abs_diff f.Lu.lu (Batch.get_matrix r.Batched_lu.factors 0)
        = 0.0);
    QCheck.Test.make ~count:40 ~name:"factor+solve round trip" gen
      (fun (seed, n) ->
        let st = state seed in
        let b = Batch.of_matrices [| Matrix.random_general ~state:st n |] in
        let rhs = Batch.vec_random ~state:st b.Batch.sizes in
        let f = Batched_lu.factor b in
        let s =
          Batched_trsv.solve ~factors:f.Batched_lu.factors
            ~pivots:f.Batched_lu.pivots rhs
        in
        Diagnostics.solve_residual (Batch.get_matrix b 0)
          (Batch.vec_get s.Batched_trsv.solutions 0)
          (Batch.vec_get rhs 0)
        < 1e-10);
    QCheck.Test.make ~count:30 ~name:"trsm(nrhs) ≡ nrhs independent trsv"
      (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_range 1 32))
      (fun (seed, n) ->
        let st = state seed in
        let b = Batch.of_matrices [| Matrix.random_general ~state:st n |] in
        let f = Batched_lu.factor b in
        let sets = Array.init 2 (fun _ -> Batch.vec_random ~state:st b.Batch.sizes) in
        let multi =
          Batched_trsm.solve ~factors:f.Batched_lu.factors
            ~pivots:f.Batched_lu.pivots sets
        in
        Array.for_all
          (fun r ->
            let single =
              Batched_trsv.solve ~factors:f.Batched_lu.factors
                ~pivots:f.Batched_lu.pivots sets.(r)
            in
            Vector.max_abs_diff
              (Batch.vec_get multi.Batched_trsm.solutions.(r) 0)
              (Batch.vec_get single.Batched_trsv.solutions 0)
            = 0.0)
          [| 0; 1 |]);
    QCheck.Test.make ~count:30 ~name:"gemm identity is identity"
      (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_range 1 32))
      (fun (seed, n) ->
        let st = state seed in
        let a = Batch.of_matrices [| Matrix.random_general ~state:st n |] in
        let id = Batch.of_matrices [| Matrix.identity n |] in
        let r = Batched_gemm.multiply ~a ~b:id () in
        Matrix.max_abs_diff (Batch.get_matrix a 0)
          (Batch.get_matrix r.Batched_gemm.products 0)
        = 0.0);
    QCheck.Test.make ~count:30 ~name:"cholesky solve ≡ lu solve on spd"
      (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_range 1 32))
      (fun (seed, n) ->
        let st = state seed in
        let r = Matrix.random ~state:st n n in
        let p = Matrix.matmul r (Matrix.transpose r) in
        let spd =
          Matrix.init n n (fun i j ->
              Matrix.get p i j +. if i = j then float_of_int n else 0.0)
        in
        let rhs = Vector.random ~state:st n in
        let x1 = Cholesky.solve (Cholesky.factor spd) rhs in
        let x2 = Lu.solve (Lu.factor_implicit spd) rhs in
        Vector.max_abs_diff x1 x2 /. (1.0 +. Vector.norm_inf x2) < 1e-9);
    QCheck.Test.make ~count:40 ~name:"poisoned column k ⇒ info = k + 1"
      (QCheck.triple (QCheck.int_bound 10_000) (QCheck.int_range 1 32)
         (QCheck.int_bound 31))
      (fun (seed, n, k) ->
        let k = k mod n in
        let st = state seed in
        let ms = Array.init 3 (fun _ -> Matrix.random_general ~state:st n) in
        let clean = Batched_lu.factor (Batch.of_matrices ms) in
        let poisoned = Array.copy ms in
        poisoned.(1) <- poison_column ms.(1) k;
        let r = Batched_lu.factor (Batch.of_matrices poisoned) in
        (* Exactly the poisoned problem is flagged, at exactly step k, and
           the batch-mates are untouched down to the last bit. *)
        r.Batched_lu.info = [| 0; k + 1; 0 |]
        && Matrix.max_abs_diff
             (Batch.get_matrix clean.Batched_lu.factors 0)
             (Batch.get_matrix r.Batched_lu.factors 0)
           = 0.0
        && Matrix.max_abs_diff
             (Batch.get_matrix clean.Batched_lu.factors 2)
             (Batch.get_matrix r.Batched_lu.factors 2)
           = 0.0);
    QCheck.Test.make ~count:40 ~name:"extraction = dense gather"
      (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_range 1 16))
      (fun (seed, bs) ->
        let st = state seed in
        let n = 4 * bs in
        let dense =
          Matrix.init n n (fun i j ->
              if Random.State.float st 1.0 < 0.25 || i = j then
                1.0 +. Random.State.float st 1.0
              else 0.0)
        in
        let a = Csr.of_dense dense in
        let starts = Array.init 4 (fun i -> i * bs) in
        let sizes = Array.make 4 bs in
        let r =
          Extraction.extract ~strategy:Extraction.Shared_memory a
            ~block_starts:starts ~block_sizes:sizes
        in
        Array.for_all
          (fun i ->
            Matrix.max_abs_diff
              (Csr.extract_block a ~row_start:starts.(i) ~size:bs)
              (Batch.get_matrix r.Extraction.blocks i)
            = 0.0)
          (Array.init 4 (fun i -> i)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "batch",
        [
          Alcotest.test_case "roundtrip" `Quick test_batch_roundtrip;
          Alcotest.test_case "set matrix" `Quick test_batch_set_matrix;
          Alcotest.test_case "validation" `Quick test_batch_validation;
          Alcotest.test_case "vector batches" `Quick test_vec_batch;
          Alcotest.test_case "empty batches are no-ops" `Quick
            test_empty_batch_noops;
          Alcotest.test_case "pool = sequential" `Quick
            test_pool_matches_sequential;
        ] );
      ( "batched-lu",
        [
          Alcotest.test_case "matches reference" `Quick
            test_batched_lu_matches_reference;
          Alcotest.test_case "pivot modes agree" `Quick
            test_batched_lu_pivot_modes_agree;
          Alcotest.test_case "nopivot" `Quick test_batched_lu_nopivot_on_diagdom;
          Alcotest.test_case "singular" `Quick test_batched_lu_singular;
          Alcotest.test_case "breakdown matches reference" `Quick
            test_batched_lu_breakdown_matches_reference;
          Alcotest.test_case "breakdown leaves others untouched" `Quick
            test_batched_lu_breakdown_leaves_others_untouched;
          Alcotest.test_case "breakdown bitwise across domains" `Quick
            test_breakdown_bitwise_across_domains;
          Alcotest.test_case "oversize" `Quick test_batched_lu_oversize;
          Alcotest.test_case "single precision" `Quick
            test_batched_lu_single_precision;
          Alcotest.test_case "sampled stats" `Quick test_batched_lu_sampled_stats;
        ] );
      ( "batched-trsv",
        [
          Alcotest.test_case "solves" `Quick test_batched_trsv_solves;
          Alcotest.test_case "matches getrs" `Quick
            test_batched_trsv_matches_getrs;
          Alcotest.test_case "shape checks" `Quick test_batched_trsv_shape_checks;
          Alcotest.test_case "singular diagonal info" `Quick
            test_batched_trsv_singular_diag_info;
          Alcotest.test_case "eager/lazy element parity" `Quick
            test_batched_trsv_gmem_elems_parity;
          Alcotest.test_case "eager vs lazy cost" `Quick
            test_batched_trsv_eager_coalesced_vs_lazy;
        ] );
      ( "batched-trsm",
        [
          Alcotest.test_case "matches trsv" `Quick test_batched_trsm_matches_trsv;
          Alcotest.test_case "amortizes reads" `Quick
            test_batched_trsm_amortizes_matrix_reads;
          Alcotest.test_case "validation" `Quick test_batched_trsm_validation;
        ] );
      ( "batched-gh",
        [
          Alcotest.test_case "solves" `Quick test_batched_gh_solves;
          Alcotest.test_case "lazy advantage" `Quick
            test_batched_gh_lazy_cost_advantage;
        ] );
      ( "batched-gje",
        [
          Alcotest.test_case "inverts" `Quick test_batched_gje_inverts;
          Alcotest.test_case "setup/apply trade-off" `Quick
            test_gje_setup_costlier_apply_cheaper;
        ] );
      ( "batched-gemm",
        [
          Alcotest.test_case "matches matmul" `Quick
            test_batched_gemm_matches_matmul;
          Alcotest.test_case "alpha/beta" `Quick test_batched_gemm_alpha_beta;
          Alcotest.test_case "validation" `Quick test_batched_gemm_validation;
        ] );
      ( "batched-cholesky",
        [
          Alcotest.test_case "matches reference" `Quick
            test_batched_cholesky_matches_reference;
          Alcotest.test_case "solve" `Quick test_batched_cholesky_solve;
          Alcotest.test_case "not spd" `Quick test_batched_cholesky_not_spd;
          Alcotest.test_case "cheaper than lu" `Quick
            test_batched_cholesky_cheaper_than_lu;
        ] );
      ( "cublas-model",
        [
          Alcotest.test_case "numerics" `Quick test_cublas_numerics;
          Alcotest.test_case "per-problem info" `Quick test_cublas_info;
          Alcotest.test_case "fixed size only" `Quick
            test_cublas_rejects_variable_sizes;
          Alcotest.test_case "slower than small-LU" `Quick
            test_cublas_slower_than_small_lu;
          Alcotest.test_case "tile cliff" `Quick test_cublas_tile_cliff;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "matches reference" `Quick
            test_extraction_matches_reference;
          Alcotest.test_case "validation" `Quick test_extraction_validation;
          Alcotest.test_case "shared wins on imbalance" `Quick
            test_extraction_shared_wins_on_imbalance;
          Alcotest.test_case "blocks cover" `Quick test_blocks_cover;
        ] );
      ("properties", qcheck_tests);
    ]
