(* Tests for the amortized preconditioner setup: handle/update dirty-block
   refresh on both families, and the Timestep driver policies. *)

open Vblu_sparse
open Vblu_precond
open Vblu_workloads
module Pool = Vblu_par.Pool
module Batch = Vblu_core.Batch

let bits_equal xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       xs ys

let matrix_bits_equal (m1 : Vblu_smallblas.Matrix.t)
    (m2 : Vblu_smallblas.Matrix.t) =
  m1.Vblu_smallblas.Matrix.rows = m2.Vblu_smallblas.Matrix.rows
  && m1.Vblu_smallblas.Matrix.cols = m2.Vblu_smallblas.Matrix.cols
  && bits_equal m1.Vblu_smallblas.Matrix.a m2.Vblu_smallblas.Matrix.a

let with_pool domains f =
  if domains <= 1 then f None
  else begin
    let pool = Pool.create ~num_domains:domains () in
    Fun.protect ~finally:(fun () -> ignore (Sys.opaque_identity pool))
      (fun () -> f (Some pool))
  end

(* A drifted pair sharing one sparsity pattern. *)
let drift_pair () =
  (Timestep.matrix ~nx:12 ~ny:12 ~step:0 (), Timestep.matrix ~nx:12 ~ny:12 ~step:5 ())

(* {1 Jacobi handles} *)

let check_jacobi_matches_fresh updated fresh =
  let fu = Block_jacobi.handle_factors updated in
  let ff = Block_jacobi.handle_factors fresh in
  Alcotest.(check int) "same block count" (Array.length ff) (Array.length fu);
  Array.iteri
    (fun i f ->
      match (f, ff.(i)) with
      | None, None -> ()
      | Some u, Some v ->
        Alcotest.(check bool)
          (Printf.sprintf "block %d lu bitwise" i)
          true
          (matrix_bits_equal u.Vblu_smallblas.Lu.lu v.Vblu_smallblas.Lu.lu);
        Alcotest.(check (array int))
          (Printf.sprintf "block %d perm" i)
          v.Vblu_smallblas.Lu.perm u.Vblu_smallblas.Lu.perm
      | _ -> Alcotest.failf "block %d outcome differs" i)
    fu;
  let iu = Block_jacobi.handle_info updated in
  let if_ = Block_jacobi.handle_info fresh in
  Alcotest.(check (list int))
    "degraded" if_.Block_jacobi.degraded_blocks iu.Block_jacobi.degraded_blocks

let test_jacobi_update_tol0 ~domains ~layout () =
  with_pool domains @@ fun pool ->
  let a0, a1 = drift_pair () in
  let h = Block_jacobi.handle ?pool ~layout ~max_block_size:8 a0 in
  let stats = Block_jacobi.update ~tol:0.0 h a1 in
  let fresh = Block_jacobi.handle ?pool ~layout ~max_block_size:8 a1 in
  Alcotest.(check bool) "some blocks dirty" true (stats.Block_jacobi.refactored > 0);
  Alcotest.(check bool) "some blocks reused" true (stats.Block_jacobi.reused > 0);
  check_jacobi_matches_fresh h fresh

(* {1 ILU0 handles} *)

let check_ilu0_matches_fresh updated fresh =
  let fu = Block_ilu0.handle_factors updated in
  let ff = Block_ilu0.handle_factors fresh in
  Alcotest.(check int) "same row count" (Array.length ff) (Array.length fu);
  Array.iteri
    (fun i (lu, piv) ->
      let lu', piv' = ff.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "row %d flu bitwise" i)
        true (matrix_bits_equal lu lu');
      Alcotest.(check (array int)) (Printf.sprintf "row %d fpiv" i) piv' piv)
    fu;
  let iu = Block_ilu0.handle_info updated in
  let if_ = Block_ilu0.handle_info fresh in
  Alcotest.(check int) "factor_info" if_.Block_ilu0.factor_info
    iu.Block_ilu0.factor_info;
  Alcotest.(check (list int))
    "degraded" if_.Block_ilu0.degraded_blocks iu.Block_ilu0.degraded_blocks

let test_ilu0_update_tol0 ~domains ~layout () =
  with_pool domains @@ fun pool ->
  let a0, a1 = drift_pair () in
  let h = Block_ilu0.handle ?pool ~layout ~max_block_size:8 a0 in
  let stats = Block_ilu0.update ~tol:0.0 h a1 in
  let fresh = Block_ilu0.handle ?pool ~layout ~max_block_size:8 a1 in
  Alcotest.(check bool) "some rows dirty" true (stats.Block_jacobi.refactored > 0);
  check_ilu0_matches_fresh h fresh

(* A handle updated along the whole drifting trajectory still matches a
   fresh setup on the final operator — errors cannot accumulate. *)
let test_ilu0_trajectory () =
  let a0 = Timestep.matrix ~nx:10 ~ny:10 ~step:0 () in
  let h = Block_ilu0.handle ~max_block_size:8 a0 in
  for step = 1 to 6 do
    let a = Timestep.matrix ~nx:10 ~ny:10 ~step () in
    ignore (Block_ilu0.update ~tol:0.0 h a)
  done;
  let a6 = Timestep.matrix ~nx:10 ~ny:10 ~step:6 () in
  let fresh = Block_ilu0.handle ~max_block_size:8 a6 in
  check_ilu0_matches_fresh h fresh

(* {1 Dirty-set exactness} *)

let perturb_block_diag (a : Csr.t) ~(blk : Supervariable.blocking) k =
  let lo = blk.Supervariable.starts.(k) in
  let hi = lo + blk.Supervariable.sizes.(k) in
  let values = Array.copy a.Csr.values in
  for row = lo to hi - 1 do
    for p = a.Csr.row_ptr.(row) to a.Csr.row_ptr.(row + 1) - 1 do
      let col = a.Csr.col_idx.(p) in
      if col >= lo && col < hi then values.(p) <- values.(p) *. 1.0001
    done
  done;
  Csr.create ~n_rows:a.Csr.n_rows ~n_cols:a.Csr.n_cols ~row_ptr:a.Csr.row_ptr
    ~col_idx:a.Csr.col_idx ~values

let test_jacobi_dirty_exact () =
  let a = Timestep.matrix ~nx:12 ~ny:12 ~step:0 () in
  let h = Block_jacobi.handle ~max_block_size:8 a in
  let blk = Block_jacobi.handle_blocking h in
  let k = Array.length blk.Supervariable.starts / 2 in
  let before = Array.copy (Block_jacobi.handle_factors h) in
  let a' = perturb_block_diag a ~blk k in
  let stats = Block_jacobi.update ~tol:0.0 h a' in
  Alcotest.(check (list int)) "exactly block k dirty" [ k ]
    stats.Block_jacobi.dirty_blocks;
  Alcotest.(check int) "one launch" 1 stats.Block_jacobi.launches;
  let after = Block_jacobi.handle_factors h in
  Array.iteri
    (fun i f ->
      if i <> k then
        Alcotest.(check bool)
          (Printf.sprintf "block %d physically reused" i)
          true (f == before.(i)))
    after

(* Off-diagonal drift does not touch Jacobi's diagonal blocks: zero dirty,
   zero launches. *)
let test_jacobi_offdiag_clean () =
  let a = Timestep.matrix ~nx:12 ~ny:12 ~step:0 () in
  let h = Block_jacobi.handle ~max_block_size:8 a in
  let blk = Block_jacobi.handle_blocking h in
  let values = Array.copy a.Csr.values in
  let touched = ref false in
  Array.iteri
    (fun row _ ->
      if row < a.Csr.n_rows then
        for p = a.Csr.row_ptr.(row) to a.Csr.row_ptr.(row + 1) - 1 do
          let col = a.Csr.col_idx.(p) in
          (* outside every diagonal block? *)
          let inside =
            Array.exists
              (fun k ->
                let lo = blk.Supervariable.starts.(k) in
                let hi = lo + blk.Supervariable.sizes.(k) in
                row >= lo && row < hi && col >= lo && col < hi)
              (Array.init (Array.length blk.Supervariable.starts) Fun.id)
          in
          if (not inside) && not !touched then begin
            values.(p) <- values.(p) *. 2.0;
            touched := true
          end
        done)
    (Array.make a.Csr.n_rows ());
  Alcotest.(check bool) "found an off-diagonal entry" true !touched;
  let a' =
    Csr.create ~n_rows:a.Csr.n_rows ~n_cols:a.Csr.n_cols ~row_ptr:a.Csr.row_ptr
      ~col_idx:a.Csr.col_idx ~values
  in
  let stats = Block_jacobi.update ~tol:0.0 h a' in
  Alcotest.(check (list int)) "no dirty blocks" [] stats.Block_jacobi.dirty_blocks;
  Alcotest.(check int) "no launches" 0 stats.Block_jacobi.launches

(* ILU0 dirty closure: perturbing one block row re-eliminates that row and
   its DAG descendants, never fewer rows than Jacobi's pointwise set. *)
let test_ilu0_dirty_closure () =
  let a = Timestep.matrix ~nx:12 ~ny:12 ~step:0 () in
  let h = Block_ilu0.handle ~max_block_size:8 a in
  let info = Block_ilu0.handle_info h in
  let blk = info.Block_ilu0.blocking in
  let k = Array.length blk.Supervariable.starts / 2 in
  let a' = perturb_block_diag a ~blk k in
  let stats = Block_ilu0.update ~tol:0.0 h a' in
  Alcotest.(check bool) "block k in dirty set" true
    (List.mem k stats.Block_jacobi.dirty_blocks);
  Alcotest.(check bool) "dirty set is a strict subset" true
    (stats.Block_jacobi.reused > 0);
  (* And the refreshed handle matches a fresh build on a'. *)
  check_ilu0_matches_fresh h (Block_ilu0.handle ~max_block_size:8 a')

(* A no-op update (same values) issues no launches for either family. *)
let test_noop_update () =
  let a = Timestep.matrix ~nx:10 ~ny:10 ~step:0 () in
  let hj = Block_jacobi.handle ~max_block_size:8 a in
  let sj = Block_jacobi.update ~tol:0.0 hj a in
  Alcotest.(check int) "jacobi launches" 0 sj.Block_jacobi.launches;
  Alcotest.(check int) "jacobi dirty" 0 sj.Block_jacobi.refactored;
  let hi = Block_ilu0.handle ~max_block_size:8 a in
  let si = Block_ilu0.update ~tol:0.0 hi a in
  Alcotest.(check int) "ilu0 launches" 0 si.Block_jacobi.launches;
  Alcotest.(check int) "ilu0 dirty" 0 si.Block_jacobi.refactored

let test_pattern_mismatch () =
  let a = Timestep.matrix ~nx:10 ~ny:10 ~step:0 () in
  let b = Timestep.matrix ~nx:11 ~ny:10 ~step:0 () in
  let h = Block_jacobi.handle ~max_block_size:8 a in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Block_jacobi.update: dimension mismatch") (fun () ->
      ignore (Block_jacobi.update h b))

(* {1 Timestep driver} *)

let quick_cfg =
  { Vblu_krylov.Solver.default_config with max_iters = 400; rtol = 1e-8 }

let run_ts ?(family = Timestep.Jacobi) ?(refresh = Timestep.Every_step)
    ?(mode = Timestep.Partial 0.0) () =
  Timestep.run ~nx:10 ~ny:10 ~steps:8 ~family ~refresh ~mode ~config:quick_cfg
    ()

let test_partial_cheaper_than_full () =
  List.iter
    (fun family ->
      let partial = run_ts ~family () in
      let full = run_ts ~family ~mode:Timestep.Full () in
      Alcotest.(check bool)
        (Timestep.family_name family ^ " partial fewer setup transactions")
        true
        (partial.Timestep.total_setup_transactions
        < full.Timestep.total_setup_transactions);
      (* tol = 0 partial refresh is bit-identical to the full refresh. *)
      Alcotest.(check bool)
        (Timestep.family_name family ^ " checksum bitwise")
        true
        (Int64.equal
           (Int64.bits_of_float partial.Timestep.solution_checksum)
           (Int64.bits_of_float full.Timestep.solution_checksum));
      Alcotest.(check int)
        (Timestep.family_name family ^ " iterations equal")
        full.Timestep.total_iterations partial.Timestep.total_iterations)
    [ Timestep.Jacobi; Timestep.Ilu0 ]

let test_every_k_refresh_count () =
  let r = run_ts ~refresh:(Timestep.Every_k 4) () in
  (* build + steps 4 (8 steps: refresh at 4 only among 1..7). *)
  Alcotest.(check int) "refreshes" 2 r.Timestep.refreshes;
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "step %d refreshed flag" i)
        (i = 0 || i = 4) s.Timestep.refreshed)
    r.Timestep.steps

let test_on_stall_deterministic () =
  let refresh = Timestep.On_stall { iters_growth = 0 } in
  let r1 = run_ts ~refresh () and r2 = run_ts ~refresh () in
  Alcotest.(check int) "same refreshes" r1.Timestep.refreshes
    r2.Timestep.refreshes;
  Alcotest.(check bool) "same per-step stats" true
    (r1.Timestep.steps = r2.Timestep.steps);
  Alcotest.(check bool) "same checksum bitwise" true
    (Int64.equal
       (Int64.bits_of_float r1.Timestep.solution_checksum)
       (Int64.bits_of_float r2.Timestep.solution_checksum))

let test_driver_converges () =
  List.iter
    (fun family ->
      let r = run_ts ~family () in
      Array.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s step %d converged" (Timestep.family_name family)
               s.Timestep.step)
            true s.Timestep.converged)
        r.Timestep.steps)
    [ Timestep.Jacobi; Timestep.Ilu0 ]

let test_string_roundtrips () =
  List.iter
    (fun r ->
      match Timestep.refresh_of_string (Timestep.refresh_name r) with
      | Ok r' -> Alcotest.(check bool) "refresh roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    [
      Timestep.Every_step;
      Timestep.Every_k 3;
      Timestep.On_stall { iters_growth = 5 };
    ];
  List.iter
    (fun f ->
      match Timestep.family_of_string (Timestep.family_name f) with
      | Ok f' -> Alcotest.(check bool) "family roundtrip" true (f = f')
      | Error e -> Alcotest.fail e)
    [ Timestep.Jacobi; Timestep.Ilu0 ]

(* {1 QCheck properties} *)

let prop_update_equals_fresh =
  QCheck.Test.make ~count:12 ~name:"jacobi update tol:0 == fresh handle"
    QCheck.(pair (int_bound 9) (int_bound 50))
    (fun (step, seed) ->
      let drift = 0.01 +. (0.02 *. float_of_int seed) in
      let a0 = Timestep.matrix ~nx:8 ~ny:8 ~drift ~step:0 () in
      let a1 = Timestep.matrix ~nx:8 ~ny:8 ~drift ~step:(1 + step) () in
      let h = Block_jacobi.handle ~max_block_size:8 a0 in
      ignore (Block_jacobi.update ~tol:0.0 h a1);
      let fresh = Block_jacobi.handle ~max_block_size:8 a1 in
      let fu = Block_jacobi.handle_factors h in
      let ff = Block_jacobi.handle_factors fresh in
      Array.for_all2
        (fun u v ->
          match (u, v) with
          | None, None -> true
          | Some u, Some v ->
            matrix_bits_equal u.Vblu_smallblas.Lu.lu v.Vblu_smallblas.Lu.lu
            && u.Vblu_smallblas.Lu.perm = v.Vblu_smallblas.Lu.perm
          | _ -> false)
        fu ff)

let prop_tolerance_monotone =
  QCheck.Test.make ~count:12 ~name:"larger tol never dirties more blocks"
    QCheck.(int_bound 9)
    (fun step ->
      let a0 = Timestep.matrix ~nx:8 ~ny:8 ~step:0 () in
      let a1 = Timestep.matrix ~nx:8 ~ny:8 ~step:(1 + step) () in
      let h1 = Block_jacobi.handle ~max_block_size:8 a0 in
      let h2 = Block_jacobi.handle ~max_block_size:8 a0 in
      let s1 = Block_jacobi.update ~tol:0.0 h1 a1 in
      let s2 = Block_jacobi.update ~tol:0.05 h2 a1 in
      s2.Block_jacobi.refactored <= s1.Block_jacobi.refactored)

let domain_layout_cases mk =
  List.concat_map
    (fun domains ->
      List.map
        (fun (lname, layout) ->
          Alcotest.test_case
            (Printf.sprintf "domains=%d %s" domains lname)
            `Quick
            (mk ~domains ~layout))
        [ ("blocked", Batch.Blocked); ("interleaved", Batch.Interleaved) ])
    [ 1; 2; 4 ]

let () =
  Alcotest.run "timestep"
    [
      ("jacobi update tol:0 == fresh", domain_layout_cases test_jacobi_update_tol0);
      ("ilu0 update tol:0 == fresh", domain_layout_cases test_ilu0_update_tol0);
      ( "dirty tracking",
        [
          Alcotest.test_case "ilu0 trajectory" `Quick test_ilu0_trajectory;
          Alcotest.test_case "jacobi dirty set exact" `Quick
            test_jacobi_dirty_exact;
          Alcotest.test_case "jacobi off-diagonal clean" `Quick
            test_jacobi_offdiag_clean;
          Alcotest.test_case "ilu0 dirty closure" `Quick test_ilu0_dirty_closure;
          Alcotest.test_case "no-op update launches nothing" `Quick
            test_noop_update;
          Alcotest.test_case "pattern mismatch rejected" `Quick
            test_pattern_mismatch;
        ] );
      ( "driver",
        [
          Alcotest.test_case "partial cheaper than full" `Quick
            test_partial_cheaper_than_full;
          Alcotest.test_case "every:4 refresh count" `Quick
            test_every_k_refresh_count;
          Alcotest.test_case "on-stall deterministic" `Quick
            test_on_stall_deterministic;
          Alcotest.test_case "all steps converge" `Quick test_driver_converges;
          Alcotest.test_case "string roundtrips" `Quick test_string_roundtrips;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_update_equals_fresh; prop_tolerance_monotone ] );
    ]
