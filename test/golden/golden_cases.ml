(* Shared case definitions for the golden counter-parity suite.

   Each case deterministically constructs its own inputs (explicit
   [Random.State] seeds — never the [Batch.random_*] defaults, so the
   goldens survive reseeding of that API) and runs one batched kernel,
   returning the launch stats plus a flat [int64] stream of every
   observable output (values, pivots, info, verdicts).  [golden_gen]
   runs the cases on one engine and records digests; [test_golden_parity]
   re-runs them on the current engine — optionally under a pool and an
   observability context — and checks counters, modelled time and output
   digests bit-for-bit. *)

open Vblu_smallblas
open Vblu_simt
open Vblu_core

type outcome = { stats : Launch.stats; payload : int64 list }

type case = {
  name : string;
  run : ?pool:Vblu_par.Pool.t -> ?obs:Vblu_obs.Ctx.t -> unit -> outcome;
}

let bits = Int64.bits_of_float

let of_floats a = Array.to_list (Array.map bits a)

let of_ints a = Array.to_list (Array.map Int64.of_int a)

let of_matrix m =
  let r, c = Matrix.dims m in
  let out = ref [] in
  for i = r - 1 downto 0 do
    for j = c - 1 downto 0 do
      out := bits (Matrix.get m i j) :: !out
    done
  done;
  Int64.of_int r :: !out

let of_verdicts vs =
  Array.to_list
    (Array.map
       (fun v ->
         match (v : Vblu_fault.Fault.verdict) with
         | Vblu_fault.Fault.Unchecked -> 0L
         | Vblu_fault.Fault.Passed -> 1L
         | Vblu_fault.Fault.Failed -> 2L)
       vs)

let batch_payload (b : Batch.t) = of_floats b.Batch.values

let vec_payload (v : Batch.vec) = of_floats v.Batch.vvalues

let pivots_payload p = List.concat_map of_ints (Array.to_list p)

let gh_payload fs =
  List.concat_map
    (fun (f : Gauss_huard.factors) -> of_matrix f.Gauss_huard.gh)
    (Array.to_list fs)

(* Deterministic inputs, salted per case family so no two cases share a
   stream. *)
let state ~salt ~size = Random.State.make [| 0x90; 0x1d; salt; size |]

let general_batch ?layout ~salt sizes =
  let st = state ~salt ~size:(Array.fold_left ( + ) 0 sizes) in
  Batch.of_matrices ?layout
    (Array.map (fun s -> Matrix.random_general ~state:st s) sizes)

let spd_batch ~salt sizes =
  let st = state ~salt ~size:(Array.fold_left ( + ) 0 sizes) in
  Batch.of_matrices
    (Array.map
       (fun s ->
         let m = Matrix.random_general ~state:st s in
         let p = Matrix.matmul m (Matrix.transpose m) in
         Matrix.init s s (fun i j ->
             Matrix.get p i j +. if i = j then float_of_int s +. 1.0 else 0.0))
       sizes)

let rhs_batch ~salt sizes =
  let st = state ~salt ~size:(Array.fold_left ( + ) 0 sizes) in
  let v = Batch.vec_create sizes in
  for k = 0 to Array.length v.Batch.vvalues - 1 do
    v.Batch.vvalues.(k) <- -1.0 +. (2.0 *. Random.State.float st 1.0)
  done;
  v

(* A block-diagonal CSR (4 dense-ish blocks of order [s]) with off-diagonal
   couplings, for the extraction kernels.  The couplings are ignored by
   extraction but walked by the row streams, so they shape the charges. *)
let extraction_matrix ~s =
  let n = 4 * s in
  let st = state ~salt:77 ~size:s in
  let coo = Vblu_sparse.Coo.create ~n_rows:n ~n_cols:n in
  for b = 0 to 3 do
    let base = b * s in
    for i = 0 to s - 1 do
      for j = 0 to s - 1 do
        if i = j || Random.State.float st 1.0 < 0.6 then
          Vblu_sparse.Coo.add coo (base + i) (base + j)
            (1.0 +. Random.State.float st 1.0)
      done
    done
  done;
  for i = 0 to n - 2 do
    if Random.State.float st 1.0 < 0.3 then
      Vblu_sparse.Coo.add coo i (n - 1 - i) 0.25
  done;
  Vblu_sparse.Coo.to_csr coo

let sizes_for size = Array.make 5 size

(* Copies column 0 over column [size/2] of every even-indexed block, forcing
   a mid-factorization breakdown — covering the frozen-state/info paths. *)
let poison_singular (b : Batch.t) =
  Array.iteri
    (fun i s ->
      if s > 1 && i land 1 = 0 then begin
        let off = b.Batch.offsets.(i) in
        let dup = s / 2 in
        for r = 0 to s - 1 do
          b.Batch.values.(off + r + (dup * s)) <- b.Batch.values.(off + r)
        done
      end)
    b.Batch.sizes

let lu_payload (r : Batched_lu.result) =
  batch_payload r.Batched_lu.factors
  @ pivots_payload r.Batched_lu.pivots
  @ of_ints r.Batched_lu.info
  @ of_verdicts r.Batched_lu.verdicts

let trsv_payload (r : Batched_trsv.result) =
  vec_payload r.Batched_trsv.solutions
  @ of_ints r.Batched_trsv.info
  @ of_verdicts r.Batched_trsv.verdicts

let lu_mixed_case ?layout ?pool ?obs () =
  let b = general_batch ?layout ~salt:2 [| 1; 7; 16; 32; 3 |] in
  let r = Batched_lu.factor ?pool ?obs b in
  { stats = r.Batched_lu.stats; payload = lu_payload r }

(* The interleaved twin covers the SoA address generation end to end: the
   raw [values]/[vvalues] streams digested here are cohort-interleaved, so
   any drift in the layout's offset/stride bookkeeping — not just in the
   numerics — breaks the digest. *)
let trsv_mixed_case ?layout ?pool ?obs () =
  let sz = [| 1; 7; 16; 32; 3 |] in
  let b = general_batch ?layout ~salt:3 sz in
  let rhs =
    Batch.vec_random ~state:(state ~salt:4 ~size:59) ?layout sz
  in
  let f = Batched_lu.factor ?pool b in
  let r =
    Batched_trsv.solve ?pool ?obs ~factors:f.Batched_lu.factors
      ~pivots:f.Batched_lu.pivots rhs
  in
  { stats = r.Batched_trsv.stats; payload = trsv_payload r }

let cases () =
  let sizes = [ 1; 7; 16; 32 ] in
  let precs = [ (Precision.Single, "fp32"); (Precision.Double, "fp64") ] in
  List.concat_map
    (fun (prec, pname) ->
      List.concat_map
        (fun size ->
          let mk name run =
            {
              name = Printf.sprintf "%s/%s/n%d" name pname size;
              run = (fun ?pool ?obs () -> run ?pool ?obs ());
            }
          in
          [
            mk "lu.implicit" (fun ?pool ?obs () ->
                let b = general_batch ~salt:1 (sizes_for size) in
                let r = Batched_lu.factor ~prec ?pool ?obs b in
                { stats = r.Batched_lu.stats; payload = lu_payload r });
            mk "lu.explicit" (fun ?pool ?obs () ->
                let b = general_batch ~salt:1 (sizes_for size) in
                let r =
                  Batched_lu.factor ~prec ~pivoting:Batched_lu.Explicit ?pool
                    ?obs b
                in
                { stats = r.Batched_lu.stats; payload = lu_payload r });
            mk "lu.nopivot" (fun ?pool ?obs () ->
                let b = spd_batch ~salt:24 (sizes_for size) in
                let r =
                  Batched_lu.factor ~prec ~pivoting:Batched_lu.No_pivoting
                    ?pool ?obs b
                in
                { stats = r.Batched_lu.stats; payload = lu_payload r });
            mk "lu.implicit+abft" (fun ?pool ?obs () ->
                let b = general_batch ~salt:1 (sizes_for size) in
                let r = Batched_lu.factor ~prec ~abft:true ?pool ?obs b in
                { stats = r.Batched_lu.stats; payload = lu_payload r });
            mk "lu.breakdown" (fun ?pool ?obs () ->
                let b = general_batch ~salt:23 (sizes_for size) in
                poison_singular b;
                let r = Batched_lu.factor ~prec ?pool ?obs b in
                { stats = r.Batched_lu.stats; payload = lu_payload r });
            mk "trsv.eager" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:3 sz in
                let rhs = rhs_batch ~salt:4 sz in
                let f = Batched_lu.factor ~prec ?pool b in
                let r =
                  Batched_trsv.solve ~prec ?pool ?obs
                    ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
                    rhs
                in
                { stats = r.Batched_trsv.stats; payload = trsv_payload r });
            mk "trsv.eager+abft" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:3 sz in
                let rhs = rhs_batch ~salt:4 sz in
                let f = Batched_lu.factor ~prec ?pool b in
                let r =
                  Batched_trsv.solve ~prec ~abft:true ?pool ?obs
                    ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
                    rhs
                in
                { stats = r.Batched_trsv.stats; payload = trsv_payload r });
            mk "trsv.lazy" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:3 sz in
                let rhs = rhs_batch ~salt:4 sz in
                let f = Batched_lu.factor ~prec ?pool b in
                let r =
                  Batched_trsv.solve ~prec ~variant:Batched_trsv.Lazy ?pool
                    ?obs ~factors:f.Batched_lu.factors
                    ~pivots:f.Batched_lu.pivots rhs
                in
                { stats = r.Batched_trsv.stats; payload = trsv_payload r });
            mk "trsm" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:5 sz in
                let rhs0 = rhs_batch ~salt:6 sz
                and rhs1 = rhs_batch ~salt:7 sz in
                let f = Batched_lu.factor ~prec ?pool b in
                let r =
                  Batched_trsm.solve ~prec ?pool ?obs
                    ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
                    [| rhs0; rhs1 |]
                in
                {
                  stats = r.Batched_trsm.stats;
                  payload =
                    List.concat_map vec_payload
                      (Array.to_list r.Batched_trsm.solutions)
                    @ of_ints r.Batched_trsm.info;
                });
            mk "gemm" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let a = general_batch ~salt:8 sz in
                let b = general_batch ~salt:9 sz in
                let c = general_batch ~salt:10 sz in
                let r =
                  Batched_gemm.multiply ~prec ?pool ?obs ~alpha:1.5 ~beta:0.5
                    ~a ~b ~c ()
                in
                {
                  stats = r.Batched_gemm.stats;
                  payload = batch_payload r.Batched_gemm.products;
                });
            mk "gh.factor" (fun ?pool ?obs () ->
                let b = general_batch ~salt:11 (sizes_for size) in
                let r = Batched_gh.factor ~prec ?pool ?obs b in
                {
                  stats = r.Batched_gh.stats;
                  payload =
                    gh_payload r.Batched_gh.factors
                    @ of_ints r.Batched_gh.info
                    @ of_verdicts r.Batched_gh.verdicts;
                });
            mk "ght.factor" (fun ?pool ?obs () ->
                let b = general_batch ~salt:11 (sizes_for size) in
                let r =
                  Batched_gh.factor ~prec ~storage:Gauss_huard.Transposed
                    ?pool ?obs b
                in
                {
                  stats = r.Batched_gh.stats;
                  payload =
                    gh_payload r.Batched_gh.factors
                    @ of_ints r.Batched_gh.info;
                });
            mk "gh.factor+abft" (fun ?pool ?obs () ->
                let b = general_batch ~salt:11 (sizes_for size) in
                let r = Batched_gh.factor ~prec ~abft:true ?pool ?obs b in
                {
                  stats = r.Batched_gh.stats;
                  payload =
                    of_ints r.Batched_gh.info
                    @ of_verdicts r.Batched_gh.verdicts;
                });
            mk "gh.solve" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:12 sz in
                let rhs = rhs_batch ~salt:13 sz in
                let f = Batched_gh.factor ~prec ?pool b in
                let r = Batched_gh.solve ~prec ?pool ?obs f rhs in
                {
                  stats = r.Batched_gh.solve_stats;
                  payload =
                    vec_payload r.Batched_gh.solutions
                    @ of_ints r.Batched_gh.solve_info;
                });
            mk "gje.invert" (fun ?pool ?obs () ->
                let b = general_batch ~salt:14 (sizes_for size) in
                let r = Batched_gje.invert ~prec ?pool ?obs b in
                {
                  stats = r.Batched_gje.stats;
                  payload =
                    List.concat_map of_matrix
                      (Array.to_list r.Batched_gje.inverses)
                    @ of_ints r.Batched_gje.info;
                });
            mk "gje.apply" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:15 sz in
                let rhs = rhs_batch ~salt:16 sz in
                let inv = Batched_gje.invert ~prec ?pool b in
                let r = Batched_gje.apply ~prec ?pool ?obs inv rhs in
                {
                  stats = r.Batched_gje.apply_stats;
                  payload = vec_payload r.Batched_gje.products;
                });
            mk "potrf" (fun ?pool ?obs () ->
                let b = spd_batch ~salt:17 (sizes_for size) in
                let r = Batched_cholesky.factor ~prec ?pool ?obs b in
                {
                  stats = r.Batched_cholesky.stats;
                  payload =
                    batch_payload r.Batched_cholesky.factors
                    @ of_ints r.Batched_cholesky.info;
                });
            mk "potrs" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = spd_batch ~salt:18 sz in
                let rhs = rhs_batch ~salt:19 sz in
                let f = Batched_cholesky.factor ~prec ?pool b in
                let r =
                  Batched_cholesky.solve ~prec ?pool ?obs
                    ~factors:f.Batched_cholesky.factors rhs
                in
                { stats = r.Batched_trsv.stats; payload = trsv_payload r });
            mk "cublas.getrf" (fun ?pool ?obs () ->
                let b = general_batch ~salt:20 (sizes_for size) in
                let r = Cublas_model.factor ~prec ?pool ?obs b in
                {
                  stats = r.Cublas_model.stats;
                  payload =
                    batch_payload r.Cublas_model.factors
                    @ pivots_payload r.Cublas_model.pivots
                    @ of_ints r.Cublas_model.info;
                });
            mk "cublas.getrs" (fun ?pool ?obs () ->
                let sz = sizes_for size in
                let b = general_batch ~salt:21 sz in
                let rhs = rhs_batch ~salt:22 sz in
                let f = Cublas_model.factor ~prec ?pool b in
                let r = Cublas_model.solve ~prec ?pool ?obs f rhs in
                {
                  stats = r.Cublas_model.solve_stats;
                  payload =
                    vec_payload r.Cublas_model.solutions
                    @ of_ints r.Cublas_model.solve_info;
                });
            mk "extract.shared" (fun ?pool ?obs () ->
                let a = extraction_matrix ~s:size in
                let r =
                  Extraction.extract ~prec ?pool ?obs a
                    ~block_starts:(Array.init 4 (fun i -> i * size))
                    ~block_sizes:(Array.make 4 size)
                in
                {
                  stats = r.Extraction.stats;
                  payload = batch_payload r.Extraction.blocks;
                });
            mk "extract.naive" (fun ?pool ?obs () ->
                let a = extraction_matrix ~s:size in
                let r =
                  Extraction.extract ~prec ~strategy:Extraction.Row_per_thread
                    ?pool ?obs a
                    ~block_starts:(Array.init 4 (fun i -> i * size))
                    ~block_sizes:(Array.make 4 size)
                in
                {
                  stats = r.Extraction.stats;
                  payload = batch_payload r.Extraction.blocks;
                });
          ])
        sizes)
    precs
  @ [
      {
        name = "lu.implicit/mixed-sizes";
        run = (fun ?pool ?obs () -> lu_mixed_case ?pool ?obs ());
      };
      {
        name = "lu.implicit/mixed-sizes/interleaved";
        run =
          (fun ?pool ?obs () ->
            lu_mixed_case ~layout:Batch.Interleaved ?pool ?obs ());
      };
      {
        name = "trsv.eager/mixed-sizes/interleaved";
        run =
          (fun ?pool ?obs () ->
            trsv_mixed_case ~layout:Batch.Interleaved ?pool ?obs ());
      };
    ]

(* FNV-1a over the payload stream, byte by byte. *)
let digest payload =
  let h = ref 0xcbf29ce484222325L in
  List.iter
    (fun x ->
      for shift = 0 to 7 do
        let b = Int64.logand (Int64.shift_right_logical x (shift * 8)) 0xffL in
        h := Int64.mul (Int64.logxor !h b) 0x100000001b3L
      done)
    payload;
  !h

(* Every observable of a launch, as bits: the counter fields that feed the
   timing model plus the modelled stats themselves. *)
let stats_bits (s : Launch.stats) =
  let c = s.Launch.total in
  [|
    bits c.Counter.fma_instrs;
    bits c.Counter.div_instrs;
    bits c.Counter.shfl_instrs;
    bits c.Counter.smem_accesses;
    bits c.Counter.gmem_instrs;
    bits c.Counter.gmem_transactions;
    bits c.Counter.gmem_bytes;
    bits c.Counter.gmem_elems;
    Int64.of_int c.Counter.gmem_rounds;
    bits c.Counter.useful_flops;
    bits s.Launch.time_us;
    bits s.Launch.gflops;
    bits s.Launch.bandwidth_gbs;
    Int64.of_int s.Launch.warps;
    Int64.of_int s.Launch.faults_injected;
  |]
