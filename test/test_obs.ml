(* Tests for the observability subsystem: the JSON codec, RFC-4180 CSV
   quoting, trace golden output and sub/graft determinism, metrics
   registry semantics, cross-domain bit-identity of traces and metrics,
   the None fast path (obs on/off numeric bit-identity), the Gmres /
   BiCGSTAB soft-error guards, and the benchmark-artifact schema +
   regression gate behind `vblu_cli bench-compare`. *)

open Vblu_obs
open Vblu_smallblas
open Vblu_core
module Pool = Vblu_par.Pool
module Bj = Vblu_precond.Block_jacobi

let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "a\"b\\c\n\t");
        ("i", Jsonx.Num 42.0);
        ("f", Jsonx.Num 0.1);
        ("big", Jsonx.Num 1.5e300);
        ("neg", Jsonx.Num (-0.0));
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Num 1.0; Jsonx.Str "x"; Jsonx.Bool false ]);
        ("empty", Jsonx.Obj []);
      ]
  in
  (match Jsonx.of_string (Jsonx.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round-trip" true (v = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  match Jsonx.of_string (Jsonx.to_string ~pretty:true v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_jsonx_errors () =
  let rejects s =
    match Jsonx.of_string s with
    | Ok _ -> Alcotest.failf "parser accepted %S" s
    | Error _ -> ()
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":}";
  rejects "tru";
  rejects "\"unterminated";
  rejects "1 2"

(* ------------------------------------------------------------------ *)
(* CSV quoting (RFC 4180) — satellite                                  *)

let test_csv_quoting () =
  Alcotest.(check string) "plain passes through" "abc" (Csvx.quote "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csvx.quote "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csvx.quote "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Csvx.quote "a\nb");
  Alcotest.(check string) "CR quoted" "\"a\rb\"" (Csvx.quote "a\rb");
  Alcotest.(check string) "row joins" "a,\"b,c\",d" (Csvx.row [ "a"; "b,c"; "d" ])

let test_report_csv_quoting () =
  let series =
    {
      Vblu_perf.Report.title = "t";
      xlabel = "batch, size";
      columns = [ "LU \"implicit\""; "plain" ];
      rows = [ (1.0, [ Some 2.0; None ]) ];
    }
  in
  let csv = Vblu_perf.Report.csv_of_series series in
  let lines = String.split_on_char '\n' (String.trim csv) in
  match lines with
  | header :: data ->
    Alcotest.(check string) "header quoted per RFC 4180"
      "\"batch, size\",\"LU \"\"implicit\"\"\",plain" header;
    Alcotest.(check bool) "one data row" true (List.length data = 1)
  | [] -> Alcotest.fail "empty csv"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_golden () =
  let tr = Trace.create () in
  Trace.span_dur tr ~cat:"kernel"
    ~args:[ ("warps", Trace.Int 4); ("gflops", Trace.Float 1.5) ]
    ~dur:2.5 "getrf";
  Trace.instant tr ~cat:"solver" "done";
  Trace.sample tr "rnorm" [ ("value", 0.5) ];
  check_float "clock advanced by dur" 2.5 (Trace.now tr);
  let expected =
    "{\"schema\":\"vblu-trace/1\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"getrf\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":1,\"dur\":2.5,\"args\":{\"warps\":4,\"gflops\":1.5}},{\"name\":\"done\",\"cat\":\"solver\",\"ph\":\"i\",\"ts\":2.5,\"pid\":1,\"tid\":1,\"s\":\"t\"},{\"name\":\"rnorm\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":2.5,\"pid\":1,\"tid\":1,\"args\":{\"value\":0.5}}]}"
  in
  Alcotest.(check string) "golden chrome trace" expected
    (Jsonx.to_string (Trace.to_chrome_json tr))

let test_trace_span_raise_records_nothing () =
  let tr = Trace.create () in
  (try Trace.with_span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "nothing recorded on raise" 0 (Trace.num_events tr)

let test_trace_merge_shifts () =
  let parent = Trace.create () in
  Trace.span_dur parent ~dur:10.0 "a";
  let child = Trace.create () in
  Trace.span_dur child ~dur:3.0 "b";
  Trace.merge_into ~into:parent child;
  check_float "merge advances parent clock" 13.0 (Trace.now parent);
  match Trace.events parent with
  | [ Trace.Span a; Trace.Span b ] ->
    check_float "parent span at 0" 0.0 a.ts;
    check_float "child span shifted" 10.0 b.ts
  | _ -> Alcotest.fail "expected two spans"

(* Recording a sequence of spans through per-chunk child contexts grafted
   in order must be byte-identical to recording it sequentially — the
   contract behind cross-domain trace determinism. *)
let trace_json_of_ops record ops =
  let tr = Trace.create () and mx = Metrics.create () in
  let obs = Some (Ctx.v ~trace:tr ~metrics:mx ()) in
  record obs ops;
  Jsonx.to_string (Trace.to_chrome_json tr)
  ^ Jsonx.to_string (Metrics.to_json mx)

let record_seq obs ops =
  List.iter
    (fun (name, dur) ->
      Ctx.span_dur obs ~cat:"kernel" ~dur:(float_of_int dur) name;
      Ctx.incr obs "ops" 1.0;
      Ctx.observe obs "dur" (float_of_int dur))
    ops

let qcheck_sub_graft_deterministic =
  QCheck.Test.make ~count:100 ~name:"sub/graft = sequential recording"
    QCheck.(pair (small_list (pair (oneofl [ "a"; "b" ]) (int_bound 50)))
              (int_range 1 5))
    (fun (ops, chunks) ->
      let reference = trace_json_of_ops record_seq ops in
      let chunked obs ops =
        let arr = Array.of_list ops in
        let n = Array.length arr in
        let per = max 1 ((n + chunks - 1) / chunks) in
        let rec go i =
          if i < n then begin
            let child = Ctx.sub obs in
            let stop = min n (i + per) in
            for k = i to stop - 1 do
              record_seq child [ arr.(k) ]
            done;
            Ctx.graft ~into:obs child;
            go stop
          end
        in
        go 0
      in
      String.equal reference (trace_json_of_ops chunked ops))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "c" 2.0;
  Metrics.incr m "c" 3.0;
  check_float "counter sums" 5.0 (Metrics.counter_value m "c");
  Metrics.set_gauge m "g" 1.0;
  Metrics.set_gauge m "g" 7.0;
  Metrics.observe m "h" 3.0;
  Metrics.observe m "h" Float.nan;
  (match Metrics.snapshot m with
  | [ ("c", _); ("g", _); ("h", _) ] -> ()
  | l -> Alcotest.failf "unexpected snapshot of %d instruments" (List.length l));
  (* Kind clashes are programming errors. *)
  (match Metrics.observe m "c" 1.0 with
  | () -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ())

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "c" 1.0;
  Metrics.incr b "c" 2.0;
  Metrics.set_gauge a "g" 1.0;
  Metrics.set_gauge b "g" 9.0;
  Metrics.observe b "h" 4.0;
  Metrics.merge_into ~into:a b;
  check_float "counters sum" 3.0 (Metrics.counter_value a "c");
  let json = Jsonx.to_string (Metrics.to_json a) in
  Alcotest.(check bool) "gauge last-set-wins" true
    (let s =
       match Jsonx.of_string json with
       | Ok (Jsonx.Obj _ as j) -> (
         match Jsonx.member "metrics" j with
         | Some ms -> (
           match Jsonx.member "g" ms with
           | Some gj -> (
             match Jsonx.member "value" gj with
             | Some (Jsonx.Num v) -> v
             | _ -> Float.nan)
           | None -> Float.nan)
         | None -> Float.nan)
       | _ -> Float.nan
     in
     s = 9.0)

let test_metrics_csv () =
  let m = Metrics.create () in
  Metrics.incr m "weird,name" 1.0;
  let csv = Metrics.to_csv m in
  Alcotest.(check bool) "comma'd metric name quoted" true
    (let lines = String.split_on_char '\n' csv in
     List.exists
       (fun l -> String.length l > 0 && l.[0] = '"')
       lines)

(* ------------------------------------------------------------------ *)
(* Cross-domain determinism of the instrumented stack                  *)

let obs_run_factor domains =
  let pool = Pool.create ~num_domains:domains () in
  let st = Random.State.make [| 0x0b5; 1 |] in
  let sizes = Batch.random_sizes ~state:st ~count:48 ~min_size:1 ~max_size:32 () in
  let b = Batch.random_general ~state:st sizes in
  let tr = Trace.create () and mx = Metrics.create () in
  let obs = Ctx.v ~trace:tr ~metrics:mx () in
  let r = Vblu_core.Batched_lu.factor ~pool ~abft:true ~obs b in
  ( r.Vblu_core.Batched_lu.factors.Batch.values,
    Jsonx.to_string (Trace.to_chrome_json tr),
    Jsonx.to_string (Metrics.to_json mx) )

let test_factor_obs_domains () =
  let v1, t1, m1 = obs_run_factor 1 in
  List.iter
    (fun d ->
      let vd, td, md = obs_run_factor d in
      Alcotest.(check bool)
        (Printf.sprintf "values identical at %d domains" d)
        true (v1 = vd);
      Alcotest.(check string)
        (Printf.sprintf "trace identical at %d domains" d)
        t1 td;
      Alcotest.(check string)
        (Printf.sprintf "metrics identical at %d domains" d)
        m1 md)
    [ 2; 4 ]

let fig6_obs domains =
  let pool = Pool.create ~num_domains:domains () in
  let tr = Trace.create () and mx = Metrics.create () in
  let obs = Ctx.v ~trace:tr ~metrics:mx () in
  let _ = Vblu_perf.Kernel_figs.fig6_series ~quick:true ~pool ~obs () in
  ( Jsonx.to_string (Trace.to_chrome_json tr),
    Jsonx.to_string (Metrics.to_json mx) )

let test_fig6_obs_domains () =
  let t1, m1 = fig6_obs 1 in
  List.iter
    (fun d ->
      let td, md = fig6_obs d in
      Alcotest.(check string)
        (Printf.sprintf "fig6 trace identical at %d domains" d)
        t1 td;
      Alcotest.(check string)
        (Printf.sprintf "fig6 metrics identical at %d domains" d)
        m1 md)
    [ 2; 4 ]

let qcheck_factor_obs_domains =
  let reference = lazy (obs_run_factor 1) in
  QCheck.Test.make ~count:8 ~name:"factor trace/metrics domain-invariant"
    QCheck.(oneofl [ 1; 2; 4 ])
    (fun d ->
      let _, t1, m1 = Lazy.force reference in
      let _, td, md = obs_run_factor d in
      String.equal t1 td && String.equal m1 md)

(* Arming obs must not change a single numeric bit. *)
let test_obs_disabled_bit_identical () =
  let st = Random.State.make [| 0x0b5; 2 |] in
  let sizes = Batch.random_sizes ~state:st ~count:16 ~min_size:1 ~max_size:32 () in
  let b = Batch.random_general ~state:st sizes in
  let plain = Vblu_core.Batched_lu.factor ~abft:true b in
  let obs = Ctx.v ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) () in
  let traced = Vblu_core.Batched_lu.factor ~abft:true ~obs b in
  Alcotest.(check bool) "factor values identical" true
    (plain.Vblu_core.Batched_lu.factors.Batch.values
    = traced.Vblu_core.Batched_lu.factors.Batch.values);
  (* Same through a full preconditioned solve. *)
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:10 ~ny:10 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let rhs = Array.make n 1.0 in
  let precond () = fst (Bj.create ~max_block_size:8 a) in
  let x1, s1 = Vblu_krylov.Gmres.solve ~precond:(precond ()) a rhs in
  let x2, s2 =
    let obs = Ctx.v ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) () in
    Vblu_krylov.Gmres.solve ~precond:(precond ()) ~obs a rhs
  in
  check_float "gmres solution identical" 0.0 (Vector.max_abs_diff x1 x2);
  Alcotest.(check int) "gmres iterations identical"
    s1.Vblu_krylov.Solver.iterations s2.Vblu_krylov.Solver.iterations

(* The Krylov obs hooks record residual samples and an outcome. *)
let test_solver_obs_records () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:8 ~ny:8 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let rhs = Array.make n 1.0 in
  let tr = Trace.create () and mx = Metrics.create () in
  let obs = Ctx.v ~trace:tr ~metrics:mx () in
  let _, stats = Vblu_krylov.Bicgstab.solve ~obs a rhs in
  Alcotest.(check bool) "solve converged" true
    (Vblu_krylov.Solver.converged stats);
  check_float "one solve counted" 1.0 (Metrics.counter_value mx "krylov.solves");
  check_float "converged outcome counted" 1.0
    (Metrics.counter_value mx
       (Metrics.labelled "krylov.outcome" [ ("outcome", "converged") ]));
  let has_sample =
    List.exists
      (function Trace.Sample s -> s.name = "bicgstab.residual" | _ -> false)
      (Trace.events tr)
  and has_done =
    List.exists
      (function Trace.Instant i -> i.name = "bicgstab.done" | _ -> false)
      (Trace.events tr)
  in
  Alcotest.(check bool) "residual samples traced" true has_sample;
  Alcotest.(check bool) "done instant traced" true has_done

(* ------------------------------------------------------------------ *)
(* Gmres / BiCGSTAB soft-error guards — satellite                      *)

let poisoned_setup () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:12 ~ny:12 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let b = Array.make n 1.0 in
  let good () = fst (Bj.create ~max_block_size:8 a) in
  let poisoned =
    let g = good () in
    {
      g with
      Vblu_precond.Preconditioner.apply =
        (fun r ->
          let z = g.Vblu_precond.Preconditioner.apply r in
          z.(0) <- Float.nan;
          z);
    }
  in
  (a, b, good, poisoned)

let test_gmres_guard_recovers () =
  let a, b, good, poisoned = poisoned_setup () in
  let x, stats =
    Vblu_krylov.Gmres.solve ~precond:poisoned ~refresh_precond:good a b
  in
  Alcotest.(check bool) "guarded gmres converges" true
    (Vblu_krylov.Solver.converged stats);
  Alcotest.(check bool) "solution finite" true
    (Array.for_all Float.is_finite x);
  let _, unguarded = Vblu_krylov.Gmres.solve ~precond:poisoned a b in
  Alcotest.(check bool) "unguarded gmres fails" false
    (Vblu_krylov.Solver.converged unguarded)

let test_bicgstab_guard_recovers () =
  let a, b, good, poisoned = poisoned_setup () in
  let x, stats =
    Vblu_krylov.Bicgstab.solve ~precond:poisoned ~refresh_precond:good a b
  in
  Alcotest.(check bool) "guarded bicgstab converges" true
    (Vblu_krylov.Solver.converged stats);
  Alcotest.(check bool) "solution finite" true
    (Array.for_all Float.is_finite x);
  let _, unguarded = Vblu_krylov.Bicgstab.solve ~precond:poisoned a b in
  Alcotest.(check bool) "unguarded bicgstab fails" false
    (Vblu_krylov.Solver.converged unguarded)

let test_guard_absent_bit_identical () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:10 ~ny:10 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let b = Array.make n 1.0 in
  let precond () = fst (Bj.create ~max_block_size:8 a) in
  (* Arming a guard over a healthy solve must not change a single bit:
     guard checks only read the residual norm. *)
  let x1, s1 = Vblu_krylov.Gmres.solve ~precond:(precond ()) a b in
  let x2, s2 =
    Vblu_krylov.Gmres.solve ~precond:(precond ()) ~refresh_precond:precond a b
  in
  check_float "gmres same solution" 0.0 (Vector.max_abs_diff x1 x2);
  Alcotest.(check int) "gmres same iterations"
    s1.Vblu_krylov.Solver.iterations s2.Vblu_krylov.Solver.iterations;
  let y1, t1 = Vblu_krylov.Bicgstab.solve ~precond:(precond ()) a b in
  let y2, t2 =
    Vblu_krylov.Bicgstab.solve ~precond:(precond ()) ~refresh_precond:precond a
      b
  in
  check_float "bicgstab same solution" 0.0 (Vector.max_abs_diff y1 y2);
  Alcotest.(check int) "bicgstab same iterations"
    t1.Vblu_krylov.Solver.iterations t2.Vblu_krylov.Solver.iterations

(* ------------------------------------------------------------------ *)
(* Benchmark artifacts and the regression gate                         *)

let entry ?(kernel = "getrf.lu") ?(prec = "fp64") ?(size = 16) ?(batch = 5000)
    ?(gflops = 100.0) () =
  {
    Artifact.kernel;
    prec;
    size;
    batch;
    gflops;
    bandwidth_gbs = 40.0;
    time_us = 10.0;
  }

let base_artifact entries =
  Artifact.make ~git_rev:"deadbeef" ~target:"kernels" ~config:"p100"
    ~domains:1 ~quick:true entries

let test_artifact_golden () =
  let art = base_artifact [ entry ~gflops:12.5 () ] in
  let expected =
    "{\"schema\":\"vblu-bench/1\",\"target\":\"kernels\",\"git_rev\":\"deadbeef\",\"config\":\"p100\",\"domains\":1,\"quick\":true,\"entries\":[{\"kernel\":\"getrf.lu\",\"prec\":\"fp64\",\"size\":16,\"batch\":5000,\"gflops\":12.5,\"bandwidth_gbs\":40,\"time_us\":10}]}"
  in
  Alcotest.(check string) "golden bench artifact" expected
    (Jsonx.to_string (Artifact.to_json art))

let test_artifact_roundtrip_and_schema () =
  let art =
    base_artifact
      [ entry (); entry ~kernel:"trsv.gh" ~prec:"fp32" ~size:32 () ]
  in
  (match Artifact.of_json (Artifact.to_json art) with
  | Ok art' -> Alcotest.(check bool) "round-trips" true (art = art')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  let reject label j =
    match Artifact.of_json j with
    | Ok _ -> Alcotest.failf "accepted %s" label
    | Error _ -> ()
  in
  reject "wrong schema"
    (Jsonx.Obj [ ("schema", Jsonx.Str "vblu-bench/999") ]);
  reject "non-object" (Jsonx.List []);
  (match Jsonx.of_string "{\"schema\":\"vblu-bench/1\",\"target\":\"k\"}" with
  | Ok j -> reject "missing fields" j
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Canonical ordering: entries sort by (kernel, prec, size, batch). *)
  let shuffled =
    base_artifact
      [
        entry ~kernel:"trsv.lu" ();
        entry ~size:32 ();
        entry ();
        entry ~prec:"fp32" ();
      ]
  in
  let keys = List.map Artifact.entry_key shuffled.Artifact.entries in
  Alcotest.(check (list string)) "canonical entry order"
    [
      "getrf.lu/fp32/n16/b5000";
      "getrf.lu/fp64/n16/b5000";
      "getrf.lu/fp64/n32/b5000";
      "trsv.lu/fp64/n16/b5000";
    ]
    keys

let test_compare_gates_regression () =
  let base = base_artifact [ entry ~gflops:100.0 () ] in
  let regressed = base_artifact [ entry ~gflops:89.0 () ] in
  let cmp = Artifact.compare ~tolerance_pct:10.0 ~base ~cur:regressed in
  Alcotest.(check bool) "11% drop fails at 10% tolerance" false
    cmp.Artifact.passed;
  let cmp' = Artifact.compare ~tolerance_pct:15.0 ~base ~cur:regressed in
  Alcotest.(check bool) "11% drop passes at 15% tolerance" true
    cmp'.Artifact.passed;
  (* Improvements and additions never fail; missing entries always do. *)
  let improved =
    base_artifact [ entry ~gflops:200.0 (); entry ~kernel:"trsv.lu" () ]
  in
  let up = Artifact.compare ~tolerance_pct:1.0 ~base ~cur:improved in
  Alcotest.(check bool) "improvement passes" true up.Artifact.passed;
  Alcotest.(check (list string)) "addition reported"
    [ "trsv.lu/fp64/n16/b5000" ] up.Artifact.added;
  let missing = Artifact.compare ~tolerance_pct:50.0 ~base:improved ~cur:base in
  Alcotest.(check bool) "missing entry fails" false missing.Artifact.passed;
  Alcotest.(check (list string)) "missing key reported"
    [ "trsv.lu/fp64/n16/b5000" ] missing.Artifact.missing

let test_artifact_file_io () =
  let art = base_artifact [ entry () ] in
  let path = Filename.temp_file "vblu_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Artifact.write path art;
      match Artifact.read path with
      | Ok art' -> Alcotest.(check bool) "file round-trip" true (art = art')
      | Error e -> Alcotest.failf "read failed: %s" e);
  match Artifact.read "/nonexistent/vblu.json" with
  | Ok _ -> Alcotest.fail "read of missing file succeeded"
  | Error _ -> ()

let test_bench_points_deterministic () =
  let run d =
    Vblu_perf.Kernel_figs.bench_points ~quick:true
      ~pool:(Pool.create ~num_domains:d ())
      ()
  in
  let p1 = run 1 and p3 = run 3 in
  Alcotest.(check bool) "bench points domain-invariant" true (p1 = p3);
  Alcotest.(check bool) "sweep is non-trivial" true (List.length p1 >= 16)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_jsonx_errors;
        ] );
      ( "csv",
        [
          Alcotest.test_case "rfc4180 quoting" `Quick test_csv_quoting;
          Alcotest.test_case "report csv quoting" `Quick
            test_report_csv_quoting;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden chrome json" `Quick test_trace_golden;
          Alcotest.test_case "raise records nothing" `Quick
            test_trace_span_raise_records_nothing;
          Alcotest.test_case "merge shifts clocks" `Quick
            test_trace_merge_shifts;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "csv quoting" `Quick test_metrics_csv;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "factor obs across domains" `Quick
            test_factor_obs_domains;
          Alcotest.test_case "fig6 obs across domains" `Quick
            test_fig6_obs_domains;
          Alcotest.test_case "obs on/off bit-identical" `Quick
            test_obs_disabled_bit_identical;
          Alcotest.test_case "solver obs records" `Quick
            test_solver_obs_records;
        ] );
      ( "guards",
        [
          Alcotest.test_case "gmres guard recovers" `Quick
            test_gmres_guard_recovers;
          Alcotest.test_case "bicgstab guard recovers" `Quick
            test_bicgstab_guard_recovers;
          Alcotest.test_case "absent guard bit-identical" `Quick
            test_guard_absent_bit_identical;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "golden json" `Quick test_artifact_golden;
          Alcotest.test_case "round-trip + schema" `Quick
            test_artifact_roundtrip_and_schema;
          Alcotest.test_case "compare gates regressions" `Quick
            test_compare_gates_regression;
          Alcotest.test_case "file io" `Quick test_artifact_file_io;
          Alcotest.test_case "bench points deterministic" `Quick
            test_bench_points_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_sub_graft_deterministic; qcheck_factor_obs_domains ] );
    ]
