(* Tests for the fault-injection + ABFT stack: the deterministic fault
   plan, zero-overhead disabled paths, checksum detection in the batched
   kernels, recovery policies in block-Jacobi, and the Krylov soft-error
   guard.  The planted-fault assertions mirror the CI fault-injection job:
   with a fixed seed, ABFT must flag exactly the targeted problems. *)

open Vblu_smallblas
open Vblu_core
open Vblu_fault
module Config = Vblu_simt.Config
module Counter = Vblu_simt.Counter
module Bj = Vblu_precond.Block_jacobi

let check_float = Alcotest.(check (float 1e-12))

let state seed = Random.State.make [| 0xfa17; seed |]

let general_batch seed ~count ~min_size ~max_size =
  let st = state seed in
  let sizes = Batch.random_sizes ~state:st ~count ~min_size ~max_size () in
  Batch.random_general ~state:st sizes

let verdict_name = function
  | Fault.Unchecked -> "unchecked"
  | Fault.Passed -> "passed"
  | Fault.Failed -> "failed"

let check_verdicts msg expected actual =
  Alcotest.(check (array string)) msg
    (Array.map verdict_name expected)
    (Array.map verdict_name actual)

let failed_indices verdicts =
  Array.to_list verdicts
  |> List.mapi (fun i v -> (i, v))
  |> List.filter_map (fun (i, v) -> if v = Fault.Failed then Some i else None)

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

let test_spec_roundtrip () =
  let spec = "seed=7,every=3,phase=1,target=gmem,kind=scale:8,at=2.1.0" in
  let plan =
    match Fault.Plan.of_spec spec with
    | Ok p -> p
    | Error msg -> Alcotest.failf "of_spec rejected %S: %s" spec msg
  in
  let plan' =
    match Fault.Plan.of_spec (Fault.Plan.to_spec plan) with
    | Ok p -> p
    | Error msg -> Alcotest.failf "to_spec does not round-trip: %s" msg
  in
  for problem = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "sites of problem %d stable" problem)
      true
      (Fault.Plan.sites_for plan ~problem ~size:16
      = Fault.Plan.sites_for plan' ~problem ~size:16)
  done

let test_spec_errors () =
  let rejected s =
    match Fault.Plan.of_spec s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "negative every" true (rejected "every=-1");
  Alcotest.(check bool) "phase out of range" true (rejected "every=2,phase=5");
  Alcotest.(check bool) "unknown key" true (rejected "frobnicate=3");
  Alcotest.(check bool) "bad target" true (rejected "target=disk");
  Alcotest.(check bool) "bad kind" true (rejected "kind=melt:4");
  Alcotest.(check bool) "bad site" true (rejected "at=1.2");
  Alcotest.(check bool) "flip bit out of range" true (rejected "kind=flip:64")

let test_sites_deterministic_and_clamped () =
  let plan = Fault.Plan.make ~seed:42 ~every:2 () in
  for problem = 0 to 11 do
    for size = 1 to 8 do
      let sites = Fault.Plan.sites_for plan ~problem ~size in
      Alcotest.(check bool) "pure" true
        (sites = Fault.Plan.sites_for plan ~problem ~size);
      List.iter
        (fun (s : Fault.site) ->
          Alcotest.(check bool) "step clamped" true
            (s.Fault.step >= 0 && s.Fault.step < size);
          Alcotest.(check bool) "lane clamped" true
            (s.Fault.lane >= 0 && s.Fault.lane < size))
        sites;
      if problem mod 2 = 1 then
        Alcotest.(check int) "untargeted problem has no sites" 0
          (List.length sites)
    done
  done;
  Alcotest.(check (list int)) "targeted = evens" [ 0; 2; 4 ]
    (Fault.Plan.targeted plan ~problems:6 ~sizes:(Array.make 6 8))

let test_one_shot_claim () =
  let plan = Fault.Plan.make () in
  Alcotest.(check bool) "first claim wins" true
    (Fault.Plan.claim plan ~problem:3 ~step:2);
  Alcotest.(check bool) "second claim loses" false
    (Fault.Plan.claim plan ~problem:3 ~step:2);
  Alcotest.(check bool) "other key unaffected" true
    (Fault.Plan.claim plan ~problem:3 ~step:4);
  Fault.Plan.reset plan;
  Alcotest.(check bool) "reset forgets claims" true
    (Fault.Plan.claim plan ~problem:3 ~step:2);
  Alcotest.(check int) "reset zeroes the count" 0 (Fault.Plan.injected plan)

let test_corrupt_kinds () =
  check_float "scale" 6.0 (Fault.corrupt (Fault.Scale 3.0) 2.0);
  check_float "set" (-1.5) (Fault.corrupt (Fault.Set_value (-1.5)) 42.0);
  let flipped = Fault.corrupt (Fault.Bit_flip 55) 1.0 in
  Alcotest.(check bool) "bit 55 leaves the ballpark" true
    (Float.abs (flipped /. 1.0) > 100.0 || Float.abs (flipped /. 1.0) < 0.01);
  check_float "flip is an involution" 1.0
    (Fault.corrupt (Fault.Bit_flip 55) flipped)

(* ------------------------------------------------------------------ *)
(* Batched LU / TRSV                                                   *)

let test_lu_abft_clean_batch () =
  let b = general_batch 3 ~count:20 ~min_size:1 ~max_size:32 in
  let plain = Batched_lu.factor b in
  let prot = Batched_lu.factor ~abft:true b in
  check_float "abft does not perturb the factors" 0.0
    (Vector.max_abs_diff plain.Batched_lu.factors.Batch.values
       prot.Batched_lu.factors.Batch.values);
  check_verdicts "plain run is unchecked"
    (Array.make 20 Fault.Unchecked)
    plain.Batched_lu.verdicts;
  check_verdicts "clean batch all passes"
    (Array.make 20 Fault.Passed)
    prot.Batched_lu.verdicts

let test_lu_detects_planted_faults () =
  let count = 24 in
  let b = general_batch 4 ~count ~min_size:4 ~max_size:32 in
  let plan = Fault.Plan.make ~seed:11 ~every:3 () in
  let r = Batched_lu.factor ~faults:plan ~abft:true b in
  let targeted =
    Fault.Plan.targeted plan ~problems:count ~sizes:b.Batch.sizes
  in
  Alcotest.(check int) "every planted fault fired"
    (List.length targeted)
    (Fault.Plan.injected plan);
  Alcotest.(check (list int)) "flagged exactly the targeted problems"
    targeted
    (failed_indices r.Batched_lu.verdicts)

let test_lu_one_shot_retry_runs_clean () =
  let b = general_batch 5 ~count:12 ~min_size:2 ~max_size:32 in
  let plan = Fault.Plan.make ~seed:9 ~every:2 () in
  let dirty = Batched_lu.factor ~faults:plan ~abft:true b in
  Alcotest.(check bool) "first pass detects something" true
    (failed_indices dirty.Batched_lu.verdicts <> []);
  (* The same plan again: all claims are spent, so the retry is clean and
     bit-identical to the unfaulted run — the recovery-policy invariant. *)
  let retry = Batched_lu.factor ~faults:plan ~abft:true b in
  let clean = Batched_lu.factor ~abft:true b in
  check_float "retry restores bit-identical factors" 0.0
    (Vector.max_abs_diff retry.Batched_lu.factors.Batch.values
       clean.Batched_lu.factors.Batch.values);
  check_verdicts "retry all passes"
    (Array.make 12 Fault.Passed)
    retry.Batched_lu.verdicts

let test_lu_disabled_injection_zero_impact () =
  (* A plan that targets nothing (every=0, no explicit sites) must leave
     the run bit-identical, fire nothing, and keep verdicts unchecked. *)
  let b = general_batch 6 ~count:8 ~min_size:1 ~max_size:16 in
  let plan = Fault.Plan.make ~every:0 () in
  let r = Batched_lu.factor ~faults:plan b in
  let clean = Batched_lu.factor b in
  check_float "bit-identical" 0.0
    (Vector.max_abs_diff r.Batched_lu.factors.Batch.values
       clean.Batched_lu.factors.Batch.values);
  Alcotest.(check int) "nothing fired" 0 (Fault.Plan.injected plan);
  Alcotest.(check bool) "stats identical" true
    (Float.equal r.Batched_lu.stats.Vblu_simt.Launch.time_us
       clean.Batched_lu.stats.Vblu_simt.Launch.time_us)

let test_lu_fault_deterministic_across_domains () =
  let b = general_batch 7 ~count:30 ~min_size:2 ~max_size:32 in
  let run domains =
    let plan = Fault.Plan.make ~seed:13 ~every:4 () in
    let pool = Vblu_par.Pool.create ~num_domains:domains () in
    Batched_lu.factor ~pool ~faults:plan ~abft:true b
  in
  let one = run 1 and two = run 2 in
  check_float "factors bit-identical across domain counts" 0.0
    (Vector.max_abs_diff one.Batched_lu.factors.Batch.values
       two.Batched_lu.factors.Batch.values);
  check_verdicts "verdicts identical across domain counts"
    one.Batched_lu.verdicts two.Batched_lu.verdicts

let test_trsv_abft_clean_and_planted () =
  let count = 16 in
  let b = general_batch 8 ~count ~min_size:4 ~max_size:32 in
  let rhs = Batch.vec_random ~state:(state 80) b.Batch.sizes in
  let f = Batched_lu.factor b in
  let plain =
    Batched_trsv.solve ~factors:f.Batched_lu.factors
      ~pivots:f.Batched_lu.pivots rhs
  in
  let prot =
    Batched_trsv.solve ~abft:true ~factors:f.Batched_lu.factors
      ~pivots:f.Batched_lu.pivots rhs
  in
  check_float "abft does not perturb the solutions" 0.0
    (Vector.max_abs_diff plain.Batched_trsv.solutions.Batch.vvalues
       prot.Batched_trsv.solutions.Batch.vvalues);
  check_verdicts "clean solve all passes"
    (Array.make count Fault.Passed)
    prot.Batched_trsv.verdicts;
  let plan = Fault.Plan.make ~seed:21 ~every:5 () in
  let dirty =
    Batched_trsv.solve ~faults:plan ~abft:true ~factors:f.Batched_lu.factors
      ~pivots:f.Batched_lu.pivots rhs
  in
  let targeted =
    Fault.Plan.targeted plan ~problems:count ~sizes:b.Batch.sizes
  in
  Alcotest.(check int) "every planted fault fired"
    (List.length targeted)
    (Fault.Plan.injected plan);
  Alcotest.(check (list int)) "flagged exactly the targeted problems"
    targeted
    (failed_indices dirty.Batched_trsv.verdicts)

(* ------------------------------------------------------------------ *)
(* Batched Gauss-Huard (host-level injection)                          *)

let test_gh_abft_clean_and_planted () =
  let count = 15 in
  let b = general_batch 9 ~count ~min_size:2 ~max_size:32 in
  let clean = Batched_gh.factor ~abft:true b in
  check_verdicts "clean batch all passes"
    (Array.make count Fault.Passed)
    clean.Batched_gh.verdicts;
  let plan = Fault.Plan.make ~seed:17 ~every:4 () in
  let dirty = Batched_gh.factor ~faults:plan ~abft:true b in
  let targeted =
    Fault.Plan.targeted plan ~problems:count ~sizes:b.Batch.sizes
  in
  Alcotest.(check (list int)) "flagged exactly the targeted problems"
    targeted
    (failed_indices dirty.Batched_gh.verdicts)

let test_gh_solve_dmr () =
  let count = 10 in
  let b = general_batch 10 ~count ~min_size:2 ~max_size:16 in
  let rhs = Batch.vec_random ~state:(state 100) b.Batch.sizes in
  let f = Batched_gh.factor b in
  let clean = Batched_gh.solve ~abft:true f rhs in
  check_verdicts "clean solve all passes"
    (Array.make count Fault.Passed)
    clean.Batched_gh.solve_verdicts;
  let plan = Fault.Plan.make ~seed:23 ~every:3 () in
  let dirty = Batched_gh.solve ~faults:plan ~abft:true f rhs in
  let targeted =
    Fault.Plan.targeted plan ~problems:count ~sizes:b.Batch.sizes
  in
  Alcotest.(check (list int)) "DMR flags exactly the targeted problems"
    targeted
    (failed_indices dirty.Batched_gh.solve_verdicts)

(* ------------------------------------------------------------------ *)
(* Block-Jacobi recovery                                               *)

let bj_matrix () = Vblu_workloads.Generators.fem_blocks ~nodes:40 ~vars_per_node:4 ()

let apply_to_ones (p : Vblu_precond.Preconditioner.t) =
  Vblu_precond.Preconditioner.apply p (Array.make p.Vblu_precond.Preconditioner.dim 1.0)

let test_bj_recompute_restores_factors () =
  let a = bj_matrix () in
  let clean, _ = Bj.create ~max_block_size:16 a in
  let plan = Fault.Plan.make ~seed:31 ~every:2 () in
  let prot, info =
    Bj.create ~faults:plan ~abft:true ~recovery:(Bj.Recompute 1)
      ~max_block_size:16 a
  in
  Alcotest.(check bool) "faults were detected and recovered" true
    (info.Bj.recovered_blocks <> []);
  Alcotest.(check (list int)) "nothing left corrupt" [] info.Bj.corrupt_blocks;
  check_float "recovered preconditioner is bit-identical" 0.0
    (Vector.max_abs_diff (apply_to_ones clean) (apply_to_ones prot))

let test_bj_recovery_deterministic_across_domains () =
  let a = bj_matrix () in
  let run domains =
    let plan = Fault.Plan.make ~seed:31 ~every:2 () in
    let pool = Vblu_par.Pool.create ~num_domains:domains () in
    Bj.create ~pool ~faults:plan ~abft:true ~recovery:(Bj.Recompute 1)
      ~max_block_size:16 a
  in
  let p1, i1 = run 1 and p2, i2 = run 2 in
  Alcotest.(check (list int)) "recovered blocks identical"
    i1.Bj.recovered_blocks i2.Bj.recovered_blocks;
  check_float "application bit-identical across domain counts" 0.0
    (Vector.max_abs_diff (apply_to_ones p1) (apply_to_ones p2))

let test_bj_degrade_and_fail_policies () =
  let a = bj_matrix () in
  let plan = Fault.Plan.make ~seed:31 ~every:2 () in
  let _, info =
    Bj.create ~faults:plan ~abft:true ~recovery:Bj.Degrade_to_identity
      ~max_block_size:16 a
  in
  Alcotest.(check bool) "degrade reports corrupt blocks" true
    (info.Bj.corrupt_blocks <> []);
  Alcotest.(check bool) "corrupt blocks are degraded" true
    (List.for_all
       (fun b -> List.mem b info.Bj.degraded_blocks)
       info.Bj.corrupt_blocks);
  let plan2 = Fault.Plan.make ~seed:31 ~every:2 () in
  (match
     Bj.create ~faults:plan2 ~abft:true ~recovery:(Bj.Fail : Bj.recovery_policy)
       ~max_block_size:16 a
   with
  | exception Bj.Fault_detected _ -> ()
  | _ -> Alcotest.fail "recovery policy fail did not raise");
  (* Without ABFT the corruption goes undetected — silent data corruption,
     which is exactly what the checksums are for. *)
  let plan3 = Fault.Plan.make ~seed:31 ~every:2 () in
  let silent, sinfo = Bj.create ~faults:plan3 ~max_block_size:16 a in
  Alcotest.(check (list int)) "no detection without abft" []
    sinfo.Bj.corrupt_blocks;
  let clean, _ = Bj.create ~max_block_size:16 a in
  Alcotest.(check bool) "corruption actually landed" true
    (Vector.max_abs_diff (apply_to_ones clean) (apply_to_ones silent) > 0.0)

(* ------------------------------------------------------------------ *)
(* Krylov soft-error guard                                             *)

let test_guard_recovers_poisoned_precond () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:12 ~ny:12 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let b = Array.make n 1.0 in
  let good () = fst (Bj.create ~max_block_size:8 a) in
  let poisoned =
    (* A corrupted operator: scales like M⁻¹ but injects a NaN, the way an
       undetected factor corruption surfaces mid-solve. *)
    let g = good () in
    {
      g with
      Vblu_precond.Preconditioner.apply =
        (fun r ->
          let z = g.Vblu_precond.Preconditioner.apply r in
          z.(0) <- Float.nan;
          z);
    }
  in
  let x, stats =
    Vblu_krylov.Idr.solve ~precond:poisoned ~refresh_precond:good ~s:2 a b
  in
  Alcotest.(check bool) "guarded solve converges" true
    (Vblu_krylov.Solver.converged stats);
  Alcotest.(check bool) "solution is finite" true
    (Array.for_all Float.is_finite x);
  (* Without the guard the poisoned operator is fatal. *)
  let _, unguarded = Vblu_krylov.Idr.solve ~precond:poisoned ~s:2 a b in
  Alcotest.(check bool) "unguarded solve fails" false
    (Vblu_krylov.Solver.converged unguarded)

let test_guard_absent_is_bit_identical () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:10 ~ny:10 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let b = Array.make n 1.0 in
  let precond = fst (Bj.create ~max_block_size:8 a) in
  let x1, s1 = Vblu_krylov.Idr.solve ~precond ~s:4 a b in
  (* Arming the guard on a healthy solve must not change a single bit:
     guard checks only read the residual norm. *)
  let x2, s2 =
    Vblu_krylov.Idr.solve ~precond
      ~refresh_precond:(fun () -> fst (Bj.create ~max_block_size:8 a))
      ~s:4 a b
  in
  check_float "same solution" 0.0 (Vector.max_abs_diff x1 x2);
  Alcotest.(check int) "same iterations" s1.Vblu_krylov.Solver.iterations
    s2.Vblu_krylov.Solver.iterations

(* ------------------------------------------------------------------ *)
(* Config validation (satellite)                                       *)

let test_config_validate () =
  let p = Config.p100 in
  Alcotest.(check string) "p100 is valid" p.Config.name
    (Config.validate p).Config.name;
  let rejects field mutate =
    match Config.validate (mutate p) with
    | _ -> Alcotest.failf "validate accepted bad %s" field
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names %s" field)
        true
        (String.length msg > 0)
  in
  rejects "warp_size" (fun p -> { p with Config.warp_size = 16 });
  rejects "num_sms" (fun p -> { p with Config.num_sms = 0 });
  rejects "clock_ghz" (fun p -> { p with Config.clock_ghz = -1.0 });
  rejects "mem_efficiency" (fun p -> { p with Config.mem_efficiency = 1.5 });
  rejects "max_issue_efficiency" (fun p ->
      { p with Config.max_issue_efficiency = 0.0 });
  rejects "launch_overhead_us" (fun p ->
      { p with Config.launch_overhead_us = -0.1 })

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  [
    (* ISSUE acceptance: a clean QCheck sweep must produce zero false
       positives under ABFT. *)
    QCheck.Test.make ~count:60 ~name:"abft: no false positives on clean lu"
      QCheck.(pair (int_bound 10_000) (int_range 1 32))
      (fun (seed, n) ->
        let st = state seed in
        let b = Batch.of_matrices [| Matrix.random_general ~state:st n |] in
        let r = Batched_lu.factor ~abft:true b in
        match r.Batched_lu.verdicts.(0) with
        | Fault.Failed -> false
        | Fault.Passed -> true
        | Fault.Unchecked -> r.Batched_lu.info.(0) <> 0);
    QCheck.Test.make ~count:60 ~name:"abft: no false positives on clean trsv"
      QCheck.(pair (int_bound 10_000) (int_range 1 32))
      (fun (seed, n) ->
        let st = state seed in
        let b = Batch.of_matrices [| Matrix.random_general ~state:st n |] in
        let rhs = Batch.vec_random ~state:st b.Batch.sizes in
        let f = Batched_lu.factor b in
        let r =
          Batched_trsv.solve ~abft:true ~factors:f.Batched_lu.factors
            ~pivots:f.Batched_lu.pivots rhs
        in
        match r.Batched_trsv.verdicts.(0) with
        | Fault.Failed -> false
        | Fault.Passed -> true
        | Fault.Unchecked -> r.Batched_trsv.info.(0) <> 0);
    (* Satellite: Counter.add round-merging — gmem_rounds aggregates with
       max (critical-path depth), every other field sums. *)
    QCheck.Test.make ~count:200 ~name:"counter.add: rounds max, rest sum"
      QCheck.(
        pair
          (array_of_size (Gen.return 9) pos_float)
          (pair (int_bound 1000) (int_bound 1000)))
      (fun (fs, (r1, r2)) ->
        QCheck.assume (Array.length fs = 9);
        let mk f0 rounds =
          let c = Counter.create () in
          c.Counter.fma_instrs <- fs.(0) +. f0;
          c.Counter.div_instrs <- fs.(1) +. f0;
          c.Counter.shfl_instrs <- fs.(2) +. f0;
          c.Counter.smem_accesses <- fs.(3) +. f0;
          c.Counter.gmem_instrs <- fs.(4) +. f0;
          c.Counter.gmem_transactions <- fs.(5) +. f0;
          c.Counter.gmem_bytes <- fs.(6) +. f0;
          c.Counter.gmem_elems <- fs.(7) +. f0;
          c.Counter.useful_flops <- fs.(8) +. f0;
          c.Counter.gmem_rounds <- rounds;
          c
        in
        let acc = mk 0.0 r1 in
        let x = mk 1.0 r2 in
        Counter.add acc x;
        (* Each summed field must equal acc0 + x0 evaluated in the same
           order [add] uses, so the check is exact, not tolerance-based. *)
        let sums i = fs.(i) +. (fs.(i) +. 1.0) in
        acc.Counter.gmem_rounds = max r1 r2
        && acc.Counter.fma_instrs = sums 0
        && acc.Counter.div_instrs = sums 1
        && acc.Counter.shfl_instrs = sums 2
        && acc.Counter.smem_accesses = sums 3
        && acc.Counter.gmem_instrs = sums 4
        && acc.Counter.gmem_transactions = sums 5
        && acc.Counter.gmem_bytes = sums 6
        && acc.Counter.gmem_elems = sums 7
        && acc.Counter.useful_flops = sums 8);
    (* Fault plans are pure: two plans from the same spec place identical
       sites everywhere. *)
    QCheck.Test.make ~count:100 ~name:"plan sites are a pure function"
      QCheck.(
        triple (int_bound 1000) (int_range 1 8) (pair (int_bound 63) (int_range 1 32)))
      (fun (seed, every, (problem, size)) ->
        let p1 = Fault.Plan.make ~seed ~every ()
        and p2 = Fault.Plan.make ~seed ~every () in
        Fault.Plan.sites_for p1 ~problem ~size
        = Fault.Plan.sites_for p2 ~problem ~size);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "sites deterministic + clamped" `Quick
            test_sites_deterministic_and_clamped;
          Alcotest.test_case "one-shot claims" `Quick test_one_shot_claim;
          Alcotest.test_case "corruption kinds" `Quick test_corrupt_kinds;
        ] );
      ( "batched-lu",
        [
          Alcotest.test_case "clean batch passes" `Quick
            test_lu_abft_clean_batch;
          Alcotest.test_case "planted faults flagged exactly" `Quick
            test_lu_detects_planted_faults;
          Alcotest.test_case "one-shot retry runs clean" `Quick
            test_lu_one_shot_retry_runs_clean;
          Alcotest.test_case "empty plan is zero impact" `Quick
            test_lu_disabled_injection_zero_impact;
          Alcotest.test_case "deterministic across domains" `Quick
            test_lu_fault_deterministic_across_domains;
        ] );
      ( "batched-trsv",
        [
          Alcotest.test_case "clean + planted" `Quick
            test_trsv_abft_clean_and_planted;
        ] );
      ( "batched-gh",
        [
          Alcotest.test_case "factor clean + planted" `Quick
            test_gh_abft_clean_and_planted;
          Alcotest.test_case "solve DMR" `Quick test_gh_solve_dmr;
        ] );
      ( "block-jacobi",
        [
          Alcotest.test_case "recompute restores factors" `Quick
            test_bj_recompute_restores_factors;
          Alcotest.test_case "deterministic across domains" `Quick
            test_bj_recovery_deterministic_across_domains;
          Alcotest.test_case "degrade and fail policies" `Quick
            test_bj_degrade_and_fail_policies;
        ] );
      ( "krylov-guard",
        [
          Alcotest.test_case "recovers a poisoned precond" `Quick
            test_guard_recovers_poisoned_precond;
          Alcotest.test_case "absent guard is bit-identical" `Quick
            test_guard_absent_is_bit_identical;
        ] );
      ( "config",
        [ Alcotest.test_case "validate" `Quick test_config_validate ] );
      ("properties", qcheck_tests);
    ]
