(* Tests for the zero-allocation warp engine and the cross-launch stats
   cache: in-place ops must be bit-identical to the allocating wrappers,
   the generation-stamped segment table must agree with a reference
   distinct-segment count, and Launch.Cache must be value-independent,
   deterministic, bypassed under fault injection, and self-healing on
   divergent (breakdown) charge streams. *)

open Vblu_smallblas
open Vblu_simt
open Vblu_core

let qtest = QCheck_alcotest.to_alcotest

let counters_equal (a : Counter.t) (b : Counter.t) =
  Float.equal a.Counter.fma_instrs b.Counter.fma_instrs
  && Float.equal a.Counter.div_instrs b.Counter.div_instrs
  && Float.equal a.Counter.shfl_instrs b.Counter.shfl_instrs
  && Float.equal a.Counter.gmem_instrs b.Counter.gmem_instrs
  && Float.equal a.Counter.gmem_transactions b.Counter.gmem_transactions
  && Float.equal a.Counter.gmem_bytes b.Counter.gmem_bytes
  && Float.equal a.Counter.gmem_elems b.Counter.gmem_elems
  && Float.equal a.Counter.smem_accesses b.Counter.smem_accesses
  && Float.equal a.Counter.useful_flops b.Counter.useful_flops
  && a.Counter.gmem_rounds = b.Counter.gmem_rounds

let stats_equal (a : Launch.stats) (b : Launch.stats) =
  Float.equal a.Launch.time_us b.Launch.time_us
  && Float.equal a.Launch.gflops b.Launch.gflops
  && Float.equal a.Launch.bandwidth_gbs b.Launch.bandwidth_gbs
  && counters_equal a.Launch.total b.Launch.total

(* ------------------------------------------------------------------ *)
(* In-place ops vs allocating wrappers                                 *)

let lane_arrays =
  QCheck.(
    pair
      (array_of_size (Gen.return 32) (float_range (-100.) 100.))
      (array_of_size (Gen.return 32) bool))

let qcheck_into_parity =
  QCheck.Test.make ~count:100 ~name:"into-ops bit-identical to allocating API"
    QCheck.(pair lane_arrays lane_arrays)
    (fun (((a, active), (b, _)) : (float array * bool array) * (float array * bool array)) ->
      let c = Array.map (fun x -> x +. 1.0) b in
      let w1 = Warp.create Precision.Double () in
      let w2 = Warp.create Precision.Double () in
      (* Allocating path. *)
      let r_fma = Warp.fma w1 ~active a b c in
      let r_fnma = Warp.fnma w1 ~active a b c in
      let r_add = Warp.add w1 ~active a b in
      let r_sub = Warp.sub w1 ~active a b in
      let r_mul = Warp.mul w1 ~active a b in
      let r_div = Warp.div w1 ~active a c in
      let r_bc = Warp.broadcast w1 a ~src:7 in
      (* In-place path into arena slots. *)
      let into op =
        let dst = Warp.reg w2 70 in
        op ~dst;
        Array.copy dst
      in
      let i_fma = into (fun ~dst -> Warp.fma_into w2 ~active ~dst a b c) in
      let i_fnma = into (fun ~dst -> Warp.fnma_into w2 ~active ~dst a b c) in
      let i_add = into (fun ~dst -> Warp.add_into w2 ~active ~dst a b) in
      let i_sub = into (fun ~dst -> Warp.sub_into w2 ~active ~dst a b) in
      let i_mul = into (fun ~dst -> Warp.mul_into w2 ~active ~dst a b) in
      let i_div = into (fun ~dst -> Warp.div_into w2 ~active ~dst a c) in
      let i_bc = into (fun ~dst -> Warp.broadcast_into w2 ~dst a ~src:7) in
      let eq x y = Array.for_all2 (fun u v -> Float.equal u v) x y in
      eq r_fma i_fma && eq r_fnma i_fnma && eq r_add i_add && eq r_sub i_sub
      && eq r_mul i_mul && eq r_div i_div && eq r_bc i_bc
      && counters_equal (Warp.counter w1) (Warp.counter w2))

let qcheck_into_aliasing =
  QCheck.Test.make ~count:100 ~name:"aliased dst matches unaliased result"
    lane_arrays
    (fun (a, active) ->
      let b = Array.map (fun x -> (2.0 *. x) +. 1.0) a in
      let w1 = Warp.create Precision.Double () in
      let w2 = Warp.create Precision.Double () in
      let r = Warp.fma w1 ~active a b a in
      let dst = Warp.reg w2 70 in
      Array.blit a 0 dst 0 32;
      (* dst aliases the addend: fma_into must read before writing. *)
      Warp.fma_into w2 ~active ~dst a b dst;
      Array.for_all2 Float.equal r dst)

(* ------------------------------------------------------------------ *)
(* Generation-stamped segment table vs reference                       *)

let qcheck_segments =
  QCheck.Test.make ~count:200
    ~name:"gen-stamped segment count = Hashtbl reference"
    QCheck.(
      pair
        (array_of_size (Gen.return 32) (int_range 0 4096))
        (array_of_size (Gen.return 32) bool))
    (fun (addrs, active) ->
      QCheck.assume (Array.exists (fun x -> x) active);
      let prec = Precision.Double in
      let cfg = Config.p100 in
      let w = Warp.create ~cfg prec () in
      let mem = Gmem.create prec 8192 in
      ignore (Warp.load w mem ~active addrs);
      (* Reference: distinct segments over a Hashtbl, plus the replay
         formula. *)
      let per = Config.elements_per_transaction cfg prec in
      let seen = Hashtbl.create 64 in
      let n = ref 0 and act = ref 0 in
      Array.iteri
        (fun i a ->
          if active.(i) then begin
            incr act;
            let s = a / per in
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.add seen s ();
              incr n
            end
          end)
        addrs;
      let min_txns = max 1 ((!act + per - 1) / per) in
      let replays =
        Float.max 1.0 (float_of_int !n /. float_of_int min_txns /. 2.0)
      in
      let c = Warp.counter w in
      Float.equal c.Counter.gmem_transactions (float_of_int !n)
      && Float.equal c.Counter.gmem_instrs replays
      && Float.equal c.Counter.gmem_bytes
           (float_of_int (!n * cfg.Config.transaction_bytes))
      && Float.equal c.Counter.gmem_elems (float_of_int !act))

(* ------------------------------------------------------------------ *)
(* Launch.Cache: value-independence, determinism, bypass, healing      *)

let state seed = Random.State.make [| 0xe4c; seed |]

let sized_batch seed =
  let st = state seed in
  let sizes = Batch.random_sizes ~state:st ~count:24 ~min_size:1 ~max_size:32 () in
  (sizes, Batch.random_diagdom ~state:st sizes)

let qcheck_cache_value_independence =
  QCheck.Test.make ~count:20
    ~name:"cached counters independent of matrix values"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let sizes, b1 = sized_batch seed in
      let b2 = Batch.random_diagdom ~state:(state (seed + 5000)) sizes in
      let factor b = Batched_lu.factor ~prec:Precision.Double b in
      (* Cold: b2 with an empty cache. *)
      Launch.Cache.clear ();
      let cold = (factor b2).Batched_lu.stats in
      (* Warm: the cache primed by b1 (same sizes, different values). *)
      Launch.Cache.clear ();
      ignore (factor b1);
      let warm = (factor b2).Batched_lu.stats in
      Launch.Cache.clear ();
      stats_equal cold warm)

let test_cache_hit_determinism () =
  let _, b = sized_batch 42 in
  Launch.Cache.clear ();
  let r1 = Batched_lu.factor b in
  let h1, _ = Launch.Cache.stats () in
  let r2 = Batched_lu.factor b in
  let h2, _ = Launch.Cache.stats () in
  Alcotest.(check bool) "second run hits the cache" true (h2 > h1);
  Alcotest.(check bool) "stats bit-identical" true
    (stats_equal r1.Batched_lu.stats r2.Batched_lu.stats);
  Alcotest.(check (array (float 0.0))) "factors bit-identical"
    r1.Batched_lu.factors.Batch.values r2.Batched_lu.factors.Batch.values;
  Launch.Cache.clear ()

let test_cache_bypass_under_injection () =
  let _, b = sized_batch 7 in
  let plan =
    match
      Vblu_fault.Fault.Plan.of_spec "seed=3,every=2,target=reg,kind=flip:12"
    with
    | Ok p -> p
    | Error m -> Alcotest.failf "bad spec: %s" m
  in
  Launch.Cache.clear ();
  let r = Batched_lu.factor ~faults:plan b in
  let hits, misses = Launch.Cache.stats () in
  Alcotest.(check int) "no cache lookups under injection" 0 (hits + misses);
  Alcotest.(check bool) "faults actually fired" true
    (r.Batched_lu.stats.Launch.faults_injected > 0);
  Launch.Cache.clear ()

let test_cache_disabled_equals_enabled () =
  let _, b = sized_batch 11 in
  Launch.Cache.clear ();
  Launch.Cache.set_enabled false;
  let off = Batched_lu.factor b in
  let h, m = Launch.Cache.stats () in
  Alcotest.(check int) "disabled cache sees no traffic" 0 (h + m);
  Launch.Cache.set_enabled true;
  ignore (Batched_lu.factor b);
  let on2 = Batched_lu.factor b in
  Alcotest.(check bool) "stats equal with and without cache" true
    (stats_equal off.Batched_lu.stats on2.Batched_lu.stats);
  Launch.Cache.clear ()

let test_cache_breakdown_heals () =
  (* Two same-size SPD blocks behind a non-SPD first block: the first
     (cached) execution takes the breakdown early-exit, so the healthy
     replays must detect the event-signature mismatch and rerun charging.
     The resulting stats must match a cache-disabled run bit-for-bit. *)
  let st = state 3 in
  let bad = Matrix.identity 8 in
  Matrix.set bad 0 0 (-1.0);
  let spd () =
    let m = Matrix.random_diagdom ~state:st 8 in
    (* Diagonally dominant with positive diagonal is SPD enough for an
       unflagged Cholesky sweep. *)
    m
  in
  let b = Batch.of_matrices [| bad; spd (); spd () |] in
  Launch.Cache.clear ();
  let cached = Batched_cholesky.factor b in
  Launch.Cache.clear ();
  Launch.Cache.set_enabled false;
  let direct = Batched_cholesky.factor b in
  Launch.Cache.set_enabled true;
  Launch.Cache.clear ();
  Alcotest.(check (array int)) "info agrees" direct.Batched_cholesky.info
    cached.Batched_cholesky.info;
  Alcotest.(check bool) "first block flagged" true
    (cached.Batched_cholesky.info.(0) > 0);
  Alcotest.(check bool) "stats heal to the uncached run" true
    (stats_equal direct.Batched_cholesky.stats cached.Batched_cholesky.stats);
  Alcotest.(check (array (float 0.0))) "factors bit-identical"
    direct.Batched_cholesky.factors.Batch.values
    cached.Batched_cholesky.factors.Batch.values

(* ------------------------------------------------------------------ *)
(* Direct execution: host numerics ≡ interpreted numerics, bitwise     *)

(* Reference result with the cache (and thus the direct path) off. *)
let with_cache_off f =
  Launch.Cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Launch.Cache.set_enabled true) f

(* Fresh-cache run with direct active; returns (result, direct_hits). *)
let with_direct_on f =
  Launch.Cache.clear ();
  let r = f () in
  let dh = Launch.Cache.direct_hits () in
  Launch.Cache.clear ();
  (r, dh)

let direct_kernel_sizes st =
  (* The warp-kernel corner sizes; repeats make cache hits likely, so the
     direct path usually serves problems instead of only certifying. *)
  let picks = [| 1; 7; 16; 32 |] in
  Array.init 20 (fun _ -> picks.(Random.State.int st 4))

let qcheck_direct_lu_parity =
  QCheck.Test.make ~count:25
    ~name:"direct getrf bitwise = simulated (values, pivots, info, stats)"
    QCheck.(pair (int_range 0 1000) bool)
    (fun (seed, single) ->
      let prec = if single then Precision.Single else Precision.Double in
      let st = state seed in
      let sizes = direct_kernel_sizes st in
      let b = Batch.random_diagdom ~state:st sizes in
      let run () = Batched_lu.factor ~prec b in
      let reference = with_cache_off run in
      Launch.Cache.clear ();
      let r = run () in
      let hits, _ = Launch.Cache.stats () in
      let dh = Launch.Cache.direct_hits () in
      Launch.Cache.clear ();
      (* Every hit must be served directly (clean diag-dominant blocks all
         certify), but a size sequence can land each problem in its own
         (size, alignment-salt) class and legitimately see zero hits — the
         deterministic all-kernels test pins the dh > 0 guarantee with a
         repeat-class construction. *)
      dh = hits
      && r.Batched_lu.factors.Batch.values
         = reference.Batched_lu.factors.Batch.values
      && r.Batched_lu.pivots = reference.Batched_lu.pivots
      && r.Batched_lu.info = reference.Batched_lu.info
      && stats_equal r.Batched_lu.stats reference.Batched_lu.stats)

let test_direct_all_kernels () =
  (* Every kernel exposing a direct closure, both precisions: bitwise
     value/info parity against the cache-off interpreter, with the direct
     path actually exercised. *)
  let sizes = [| 8; 8; 8; 16; 16; 32; 7; 7; 1; 1 |] in
  let check name (values_equal, dh) =
    Alcotest.(check bool) (name ^ " bitwise") true values_equal;
    Alcotest.(check bool) (name ^ " exercised direct") true (dh > 0)
  in
  List.iter
    (fun prec ->
      let ps = Precision.to_string prec in
      let st = state 91 in
      let b = Batch.random_diagdom ~state:st sizes in
      let lu = with_cache_off (fun () -> Batched_lu.factor ~prec b) in
      let rhs = Batch.vec_random ~state:st sizes in
      List.iter
        (fun (vname, variant) ->
          let run () =
            Batched_trsv.solve ~prec ~variant ~factors:lu.Batched_lu.factors
              ~pivots:lu.Batched_lu.pivots rhs
          in
          let reference = with_cache_off run in
          let r, dh = with_direct_on run in
          check
            (Printf.sprintf "trsv.%s %s" vname ps)
            ( r.Batched_trsv.solutions.Batch.vvalues
              = reference.Batched_trsv.solutions.Batch.vvalues
              && r.Batched_trsv.info = reference.Batched_trsv.info
              && stats_equal r.Batched_trsv.stats reference.Batched_trsv.stats,
              dh ))
        [ ("eager", Batched_trsv.Eager); ("lazy", Batched_trsv.Lazy) ];
      let rhs_sets = [| rhs; Batch.vec_random ~state:st sizes |] in
      let run_trsm () =
        Batched_trsm.solve ~prec ~factors:lu.Batched_lu.factors
          ~pivots:lu.Batched_lu.pivots rhs_sets
      in
      let reference = with_cache_off run_trsm in
      let r, dh = with_direct_on run_trsm in
      check ("trsm " ^ ps)
        ( Array.for_all2
            (fun (x : Batch.vec) (y : Batch.vec) ->
              x.Batch.vvalues = y.Batch.vvalues)
            r.Batched_trsm.solutions reference.Batched_trsm.solutions
          && r.Batched_trsm.info = reference.Batched_trsm.info,
          dh );
      let ba = Batch.random_general ~state:st sizes
      and bb = Batch.random_general ~state:st sizes in
      let run_gemm () =
        Batched_gemm.multiply ~prec ~alpha:1.25 ~beta:0.5 ~a:ba ~b:bb ~c:b ()
      in
      let reference = with_cache_off run_gemm in
      let r, dh = with_direct_on run_gemm in
      check ("gemm " ^ ps)
        ( r.Batched_gemm.products.Batch.values
          = reference.Batched_gemm.products.Batch.values,
          dh );
      let spd =
        (* Symmetrize (lower triangle wins) and lift the diagonal so every
           block is SPD and the Cholesky sweep runs unflagged — a breakdown
           would de-certify the entry and mask the direct path. *)
        Batch.of_matrices
          (Array.map
             (fun s ->
               let m = Matrix.random_diagdom ~state:st s in
               for r = 0 to s - 1 do
                 for c = 0 to r - 1 do
                   Matrix.set m c r (Matrix.get m r c)
                 done;
                 Matrix.set m r r
                   (Float.abs (Matrix.get m r r) +. float_of_int s)
               done;
               m)
             sizes)
      in
      let ch = with_cache_off (fun () -> Batched_cholesky.factor ~prec spd) in
      let run_potrf () = Batched_cholesky.factor ~prec spd in
      let reference = with_cache_off run_potrf in
      let r, dh = with_direct_on run_potrf in
      check ("potrf " ^ ps)
        ( r.Batched_cholesky.factors.Batch.values
          = reference.Batched_cholesky.factors.Batch.values
          && r.Batched_cholesky.info = reference.Batched_cholesky.info,
          dh );
      let run_potrs () =
        Batched_cholesky.solve ~prec ~factors:ch.Batched_cholesky.factors rhs
      in
      let reference = with_cache_off run_potrs in
      let r, dh = with_direct_on run_potrs in
      check ("potrs " ^ ps)
        ( r.Batched_trsv.solutions.Batch.vvalues
          = reference.Batched_trsv.solutions.Batch.vvalues
          && r.Batched_trsv.info = reference.Batched_trsv.info,
          dh );
      let ghf = with_cache_off (fun () -> Batched_gh.factor ~prec b) in
      let run_ghf () = Batched_gh.factor ~prec b in
      let reference = with_cache_off run_ghf in
      let r, dh = with_direct_on run_ghf in
      check ("gh.factor " ^ ps)
        ( r.Batched_gh.info = reference.Batched_gh.info
          && Array.for_all2
               (fun (x : Gauss_huard.factors) (y : Gauss_huard.factors) ->
                 x.Gauss_huard.gh = y.Gauss_huard.gh
                 && x.Gauss_huard.cperm = y.Gauss_huard.cperm)
               r.Batched_gh.factors reference.Batched_gh.factors,
          dh );
      let run_ghs () = Batched_gh.solve ~prec ghf rhs in
      let reference = with_cache_off run_ghs in
      let r, dh = with_direct_on run_ghs in
      check ("gh.solve " ^ ps)
        ( r.Batched_gh.solutions.Batch.vvalues
          = reference.Batched_gh.solutions.Batch.vvalues
          && r.Batched_gh.solve_info = reference.Batched_gh.solve_info,
          dh ))
    [ Precision.Double; Precision.Single ]

let test_direct_breakdown_heals () =
  (* A singular block between healthy same-size blocks: the certified
     direct run surfaces the breakdown, demotes the hit, and the charging
     interpreter reruns the problem — values, info and stats must land
     exactly on the cache-off result, with the healthy neighbours still
     served directly. *)
  let st = state 23 in
  let mk () = Matrix.random_diagdom ~state:st 8 in
  let bad = Matrix.create 8 8 in
  let b = Batch.of_matrices [| mk (); mk (); bad; mk () |] in
  let run () = Batched_lu.factor b in
  let reference = with_cache_off run in
  let r, dh = with_direct_on run in
  Alcotest.(check bool) "singular block flagged" true (r.Batched_lu.info.(2) > 0);
  Alcotest.(check bool) "healthy blocks served directly" true (dh > 0);
  Alcotest.(check (array (float 0.0))) "factors bit-identical"
    reference.Batched_lu.factors.Batch.values r.Batched_lu.factors.Batch.values;
  Alcotest.(check (array int)) "info bit-identical" reference.Batched_lu.info
    r.Batched_lu.info;
  Alcotest.(check bool) "stats heal to the uncached run" true
    (stats_equal reference.Batched_lu.stats r.Batched_lu.stats)

let test_direct_respects_disabled_cache () =
  let _, b = sized_batch 19 in
  Launch.Cache.clear ();
  ignore (Batched_lu.factor b);
  let primed = Launch.Cache.direct_hits () in
  Launch.Cache.set_enabled false;
  ignore (Batched_lu.factor b);
  Launch.Cache.set_enabled true;
  Alcotest.(check int) "no direct hits while the cache is disabled" primed
    (Launch.Cache.direct_hits ());
  Launch.Cache.clear ()

(* ------------------------------------------------------------------ *)
(* Config fingerprints                                                 *)

let test_config_fingerprints () =
  Alcotest.(check bool) "p100 fingerprint stamped" true
    (Config.p100.Config.fingerprint <> 0);
  let again = Config.validate Config.p100 in
  Alcotest.(check int) "revalidation is idempotent"
    Config.p100.Config.fingerprint again.Config.fingerprint;
  let variant =
    Config.validate
      { Config.p100 with Config.name = "Tesla P100 (variant)"; num_sms = 60 }
  in
  Alcotest.(check bool) "distinct presets get distinct fingerprints" true
    (variant.Config.fingerprint <> Config.p100.Config.fingerprint
    && variant.Config.fingerprint <> 0)

(* ------------------------------------------------------------------ *)
(* Sampled mode with an armed fault plan degrades to Exact             *)

let test_sampled_faults_runs_every_problem () =
  (* Problem 2 is not a size-class representative (index 0 is), so under
     the old semantics its explicit site never fired.  The launch must
     degrade to per-problem execution and inject it. *)
  let st = state 31 in
  let b = Batch.random_diagdom ~state:st [| 8; 8; 8; 8 |] in
  let plan =
    match
      Vblu_fault.Fault.Plan.of_spec "every=0,at=2.3.1,target=reg,kind=flip:12"
    with
    | Ok p -> p
    | Error m -> Alcotest.failf "bad spec: %s" m
  in
  let r = Batched_lu.factor ~mode:Sampling.Sampled ~faults:plan b in
  Alcotest.(check int) "the non-representative site fired" 1
    r.Batched_lu.stats.Launch.faults_injected;
  Alcotest.(check bool) "result reports per-problem execution" true
    r.Batched_lu.exact;
  (* And the armed launch really ran every problem: counters match an
     Exact fault-free run (faults never charge), not a sampled one. *)
  let exact = Batched_lu.factor b in
  Alcotest.(check bool) "counters are the Exact-mode counters" true
    (counters_equal r.Batched_lu.stats.Launch.total
       exact.Batched_lu.stats.Launch.total);
  Launch.Cache.clear ()

(* ------------------------------------------------------------------ *)
(* Batch.random_* seeding contract                                     *)

let test_random_order_independence () =
  let sizes = [| 4; 9; 17; 32 |] in
  let v1 = Batch.vec_random sizes in
  (* Interleave other unseeded draws: they must not perturb the next
     unseeded vec_random. *)
  ignore (Batch.random_diagdom sizes);
  ignore (Batch.random_general sizes);
  ignore (Batch.random_sizes ~count:5 ~min_size:1 ~max_size:8 ());
  let v2 = Batch.vec_random sizes in
  Alcotest.(check (array (float 0.0))) "unseeded vec_random is pure"
    v1.Batch.vvalues v2.Batch.vvalues;
  let b1 = Batch.random_diagdom sizes and b2 = Batch.random_diagdom sizes in
  Alcotest.(check (array (float 0.0))) "unseeded random_diagdom is pure"
    b1.Batch.values b2.Batch.values;
  (* Distinct functions draw from distinct derived streams. *)
  let g = Batch.random_general sizes in
  Alcotest.(check bool) "diagdom and general differ" true
    (b1.Batch.values <> g.Batch.values)

let () =
  Alcotest.run "engine"
    [
      ( "into-ops",
        [ qtest qcheck_into_parity; qtest qcheck_into_aliasing ] );
      ("segments", [ qtest qcheck_segments ]);
      ( "cache",
        [
          qtest qcheck_cache_value_independence;
          Alcotest.test_case "hit determinism" `Quick test_cache_hit_determinism;
          Alcotest.test_case "bypass under injection" `Quick
            test_cache_bypass_under_injection;
          Alcotest.test_case "disabled = enabled" `Quick
            test_cache_disabled_equals_enabled;
          Alcotest.test_case "breakdown stream heals" `Quick
            test_cache_breakdown_heals;
        ] );
      ( "direct",
        [
          qtest qcheck_direct_lu_parity;
          Alcotest.test_case "all kernels bitwise parity" `Quick
            test_direct_all_kernels;
          Alcotest.test_case "breakdown demotes and heals" `Quick
            test_direct_breakdown_heals;
          Alcotest.test_case "disabled cache disables direct" `Quick
            test_direct_respects_disabled_cache;
        ] );
      ( "config",
        [
          Alcotest.test_case "fingerprints" `Quick test_config_fingerprints;
        ] );
      ( "sampled-faults",
        [
          Alcotest.test_case "armed plan runs every problem" `Quick
            test_sampled_faults_runs_every_problem;
        ] );
      ( "seeding",
        [
          Alcotest.test_case "order independence" `Quick
            test_random_order_independence;
        ] );
    ]
