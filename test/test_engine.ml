(* Tests for the zero-allocation warp engine and the cross-launch stats
   cache: in-place ops must be bit-identical to the allocating wrappers,
   the generation-stamped segment table must agree with a reference
   distinct-segment count, and Launch.Cache must be value-independent,
   deterministic, bypassed under fault injection, and self-healing on
   divergent (breakdown) charge streams. *)

open Vblu_smallblas
open Vblu_simt
open Vblu_core

let qtest = QCheck_alcotest.to_alcotest

let counters_equal (a : Counter.t) (b : Counter.t) =
  Float.equal a.Counter.fma_instrs b.Counter.fma_instrs
  && Float.equal a.Counter.div_instrs b.Counter.div_instrs
  && Float.equal a.Counter.shfl_instrs b.Counter.shfl_instrs
  && Float.equal a.Counter.gmem_instrs b.Counter.gmem_instrs
  && Float.equal a.Counter.gmem_transactions b.Counter.gmem_transactions
  && Float.equal a.Counter.gmem_bytes b.Counter.gmem_bytes
  && Float.equal a.Counter.gmem_elems b.Counter.gmem_elems
  && Float.equal a.Counter.smem_accesses b.Counter.smem_accesses
  && Float.equal a.Counter.useful_flops b.Counter.useful_flops
  && a.Counter.gmem_rounds = b.Counter.gmem_rounds

let stats_equal (a : Launch.stats) (b : Launch.stats) =
  Float.equal a.Launch.time_us b.Launch.time_us
  && Float.equal a.Launch.gflops b.Launch.gflops
  && Float.equal a.Launch.bandwidth_gbs b.Launch.bandwidth_gbs
  && counters_equal a.Launch.total b.Launch.total

(* ------------------------------------------------------------------ *)
(* In-place ops vs allocating wrappers                                 *)

let lane_arrays =
  QCheck.(
    pair
      (array_of_size (Gen.return 32) (float_range (-100.) 100.))
      (array_of_size (Gen.return 32) bool))

let qcheck_into_parity =
  QCheck.Test.make ~count:100 ~name:"into-ops bit-identical to allocating API"
    QCheck.(pair lane_arrays lane_arrays)
    (fun (((a, active), (b, _)) : (float array * bool array) * (float array * bool array)) ->
      let c = Array.map (fun x -> x +. 1.0) b in
      let w1 = Warp.create Precision.Double () in
      let w2 = Warp.create Precision.Double () in
      (* Allocating path. *)
      let r_fma = Warp.fma w1 ~active a b c in
      let r_fnma = Warp.fnma w1 ~active a b c in
      let r_add = Warp.add w1 ~active a b in
      let r_sub = Warp.sub w1 ~active a b in
      let r_mul = Warp.mul w1 ~active a b in
      let r_div = Warp.div w1 ~active a c in
      let r_bc = Warp.broadcast w1 a ~src:7 in
      (* In-place path into arena slots. *)
      let into op =
        let dst = Warp.reg w2 70 in
        op ~dst;
        Array.copy dst
      in
      let i_fma = into (fun ~dst -> Warp.fma_into w2 ~active ~dst a b c) in
      let i_fnma = into (fun ~dst -> Warp.fnma_into w2 ~active ~dst a b c) in
      let i_add = into (fun ~dst -> Warp.add_into w2 ~active ~dst a b) in
      let i_sub = into (fun ~dst -> Warp.sub_into w2 ~active ~dst a b) in
      let i_mul = into (fun ~dst -> Warp.mul_into w2 ~active ~dst a b) in
      let i_div = into (fun ~dst -> Warp.div_into w2 ~active ~dst a c) in
      let i_bc = into (fun ~dst -> Warp.broadcast_into w2 ~dst a ~src:7) in
      let eq x y = Array.for_all2 (fun u v -> Float.equal u v) x y in
      eq r_fma i_fma && eq r_fnma i_fnma && eq r_add i_add && eq r_sub i_sub
      && eq r_mul i_mul && eq r_div i_div && eq r_bc i_bc
      && counters_equal (Warp.counter w1) (Warp.counter w2))

let qcheck_into_aliasing =
  QCheck.Test.make ~count:100 ~name:"aliased dst matches unaliased result"
    lane_arrays
    (fun (a, active) ->
      let b = Array.map (fun x -> (2.0 *. x) +. 1.0) a in
      let w1 = Warp.create Precision.Double () in
      let w2 = Warp.create Precision.Double () in
      let r = Warp.fma w1 ~active a b a in
      let dst = Warp.reg w2 70 in
      Array.blit a 0 dst 0 32;
      (* dst aliases the addend: fma_into must read before writing. *)
      Warp.fma_into w2 ~active ~dst a b dst;
      Array.for_all2 Float.equal r dst)

(* ------------------------------------------------------------------ *)
(* Generation-stamped segment table vs reference                       *)

let qcheck_segments =
  QCheck.Test.make ~count:200
    ~name:"gen-stamped segment count = Hashtbl reference"
    QCheck.(
      pair
        (array_of_size (Gen.return 32) (int_range 0 4096))
        (array_of_size (Gen.return 32) bool))
    (fun (addrs, active) ->
      QCheck.assume (Array.exists (fun x -> x) active);
      let prec = Precision.Double in
      let cfg = Config.p100 in
      let w = Warp.create ~cfg prec () in
      let mem = Gmem.create prec 8192 in
      ignore (Warp.load w mem ~active addrs);
      (* Reference: distinct segments over a Hashtbl, plus the replay
         formula. *)
      let per = Config.elements_per_transaction cfg prec in
      let seen = Hashtbl.create 64 in
      let n = ref 0 and act = ref 0 in
      Array.iteri
        (fun i a ->
          if active.(i) then begin
            incr act;
            let s = a / per in
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.add seen s ();
              incr n
            end
          end)
        addrs;
      let min_txns = max 1 ((!act + per - 1) / per) in
      let replays =
        Float.max 1.0 (float_of_int !n /. float_of_int min_txns /. 2.0)
      in
      let c = Warp.counter w in
      Float.equal c.Counter.gmem_transactions (float_of_int !n)
      && Float.equal c.Counter.gmem_instrs replays
      && Float.equal c.Counter.gmem_bytes
           (float_of_int (!n * cfg.Config.transaction_bytes))
      && Float.equal c.Counter.gmem_elems (float_of_int !act))

(* ------------------------------------------------------------------ *)
(* Launch.Cache: value-independence, determinism, bypass, healing      *)

let state seed = Random.State.make [| 0xe4c; seed |]

let sized_batch seed =
  let st = state seed in
  let sizes = Batch.random_sizes ~state:st ~count:24 ~min_size:1 ~max_size:32 () in
  (sizes, Batch.random_diagdom ~state:st sizes)

let qcheck_cache_value_independence =
  QCheck.Test.make ~count:20
    ~name:"cached counters independent of matrix values"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let sizes, b1 = sized_batch seed in
      let b2 = Batch.random_diagdom ~state:(state (seed + 5000)) sizes in
      let factor b = Batched_lu.factor ~prec:Precision.Double b in
      (* Cold: b2 with an empty cache. *)
      Launch.Cache.clear ();
      let cold = (factor b2).Batched_lu.stats in
      (* Warm: the cache primed by b1 (same sizes, different values). *)
      Launch.Cache.clear ();
      ignore (factor b1);
      let warm = (factor b2).Batched_lu.stats in
      Launch.Cache.clear ();
      stats_equal cold warm)

let test_cache_hit_determinism () =
  let _, b = sized_batch 42 in
  Launch.Cache.clear ();
  let r1 = Batched_lu.factor b in
  let h1, _ = Launch.Cache.stats () in
  let r2 = Batched_lu.factor b in
  let h2, _ = Launch.Cache.stats () in
  Alcotest.(check bool) "second run hits the cache" true (h2 > h1);
  Alcotest.(check bool) "stats bit-identical" true
    (stats_equal r1.Batched_lu.stats r2.Batched_lu.stats);
  Alcotest.(check (array (float 0.0))) "factors bit-identical"
    r1.Batched_lu.factors.Batch.values r2.Batched_lu.factors.Batch.values;
  Launch.Cache.clear ()

let test_cache_bypass_under_injection () =
  let _, b = sized_batch 7 in
  let plan =
    match
      Vblu_fault.Fault.Plan.of_spec "seed=3,every=2,target=reg,kind=flip:12"
    with
    | Ok p -> p
    | Error m -> Alcotest.failf "bad spec: %s" m
  in
  Launch.Cache.clear ();
  let r = Batched_lu.factor ~faults:plan b in
  let hits, misses = Launch.Cache.stats () in
  Alcotest.(check int) "no cache lookups under injection" 0 (hits + misses);
  Alcotest.(check bool) "faults actually fired" true
    (r.Batched_lu.stats.Launch.faults_injected > 0);
  Launch.Cache.clear ()

let test_cache_disabled_equals_enabled () =
  let _, b = sized_batch 11 in
  Launch.Cache.clear ();
  Launch.Cache.set_enabled false;
  let off = Batched_lu.factor b in
  let h, m = Launch.Cache.stats () in
  Alcotest.(check int) "disabled cache sees no traffic" 0 (h + m);
  Launch.Cache.set_enabled true;
  ignore (Batched_lu.factor b);
  let on2 = Batched_lu.factor b in
  Alcotest.(check bool) "stats equal with and without cache" true
    (stats_equal off.Batched_lu.stats on2.Batched_lu.stats);
  Launch.Cache.clear ()

let test_cache_breakdown_heals () =
  (* Two same-size SPD blocks behind a non-SPD first block: the first
     (cached) execution takes the breakdown early-exit, so the healthy
     replays must detect the event-signature mismatch and rerun charging.
     The resulting stats must match a cache-disabled run bit-for-bit. *)
  let st = state 3 in
  let bad = Matrix.identity 8 in
  Matrix.set bad 0 0 (-1.0);
  let spd () =
    let m = Matrix.random_diagdom ~state:st 8 in
    (* Diagonally dominant with positive diagonal is SPD enough for an
       unflagged Cholesky sweep. *)
    m
  in
  let b = Batch.of_matrices [| bad; spd (); spd () |] in
  Launch.Cache.clear ();
  let cached = Batched_cholesky.factor b in
  Launch.Cache.clear ();
  Launch.Cache.set_enabled false;
  let direct = Batched_cholesky.factor b in
  Launch.Cache.set_enabled true;
  Launch.Cache.clear ();
  Alcotest.(check (array int)) "info agrees" direct.Batched_cholesky.info
    cached.Batched_cholesky.info;
  Alcotest.(check bool) "first block flagged" true
    (cached.Batched_cholesky.info.(0) > 0);
  Alcotest.(check bool) "stats heal to the uncached run" true
    (stats_equal direct.Batched_cholesky.stats cached.Batched_cholesky.stats);
  Alcotest.(check (array (float 0.0))) "factors bit-identical"
    direct.Batched_cholesky.factors.Batch.values
    cached.Batched_cholesky.factors.Batch.values

(* ------------------------------------------------------------------ *)
(* Batch.random_* seeding contract                                     *)

let test_random_order_independence () =
  let sizes = [| 4; 9; 17; 32 |] in
  let v1 = Batch.vec_random sizes in
  (* Interleave other unseeded draws: they must not perturb the next
     unseeded vec_random. *)
  ignore (Batch.random_diagdom sizes);
  ignore (Batch.random_general sizes);
  ignore (Batch.random_sizes ~count:5 ~min_size:1 ~max_size:8 ());
  let v2 = Batch.vec_random sizes in
  Alcotest.(check (array (float 0.0))) "unseeded vec_random is pure"
    v1.Batch.vvalues v2.Batch.vvalues;
  let b1 = Batch.random_diagdom sizes and b2 = Batch.random_diagdom sizes in
  Alcotest.(check (array (float 0.0))) "unseeded random_diagdom is pure"
    b1.Batch.values b2.Batch.values;
  (* Distinct functions draw from distinct derived streams. *)
  let g = Batch.random_general sizes in
  Alcotest.(check bool) "diagdom and general differ" true
    (b1.Batch.values <> g.Batch.values)

let () =
  Alcotest.run "engine"
    [
      ( "into-ops",
        [ qtest qcheck_into_parity; qtest qcheck_into_aliasing ] );
      ("segments", [ qtest qcheck_segments ]);
      ( "cache",
        [
          qtest qcheck_cache_value_independence;
          Alcotest.test_case "hit determinism" `Quick test_cache_hit_determinism;
          Alcotest.test_case "bypass under injection" `Quick
            test_cache_bypass_under_injection;
          Alcotest.test_case "disabled = enabled" `Quick
            test_cache_disabled_equals_enabled;
          Alcotest.test_case "breakdown stream heals" `Quick
            test_cache_breakdown_heals;
        ] );
      ( "seeding",
        [
          Alcotest.test_case "order independence" `Quick
            test_random_order_independence;
        ] );
    ]
