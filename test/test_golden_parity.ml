(* Golden counter/output parity: every kernel × sizes {1,7,16,32} × both
   precisions must reproduce the seed engine's recorded counters, modelled
   stats and output payloads bit-for-bit — sequentially, under pools of 2
   and 4 domains, and with an observability context attached.  The goldens
   in [Goldens_data] were recorded by [golden_gen] before the engine
   rework; any drift here is a contract violation, not a tolerance issue. *)

open Vblu_obs

let golden_of name =
  match List.assoc_opt name Goldens_data.goldens with
  | Some g -> g
  | None -> Alcotest.failf "no golden recorded for %s" name

let check_outcome name (o : Golden_cases.outcome) =
  let exp_stats, exp_digest, exp_len = golden_of name in
  let got_stats = Golden_cases.stats_bits o.Golden_cases.stats in
  Array.iteri
    (fun i b ->
      if not (Int64.equal b got_stats.(i)) then
        Alcotest.failf "%s: stats slot %d drifted: golden %Lx, got %Lx" name i
          b got_stats.(i))
    exp_stats;
  Alcotest.(check int)
    (name ^ ": payload length")
    exp_len
    (List.length o.Golden_cases.payload);
  let got_digest = Golden_cases.digest o.Golden_cases.payload in
  if not (Int64.equal exp_digest got_digest) then
    Alcotest.failf "%s: payload digest drifted: golden %Lx, got %Lx" name
      exp_digest got_digest

let run_config ?pool ?obs () =
  List.iter
    (fun (c : Golden_cases.case) ->
      check_outcome c.Golden_cases.name (c.Golden_cases.run ?pool ?obs ()))
    (Golden_cases.cases ())

let test_sequential () = run_config ()

let test_with_obs () =
  let obs = Ctx.v ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) () in
  run_config ~obs ()

let test_domains n () =
  let pool = Vblu_par.Pool.create ~num_domains:n () in
  let obs = Ctx.v ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) () in
  run_config ~pool ();
  run_config ~pool ~obs ()

let test_direct_active () =
  (* The parity suite must pass WITH the direct fast path actively taken —
     a run that never certifies an entry would vacuously agree with the
     goldens.  Each case batches same-class problems, so a cleared cache
     still yields certified hits within the run. *)
  Vblu_simt.Launch.Cache.clear ();
  run_config ();
  let dh = Vblu_simt.Launch.Cache.direct_hits () in
  Vblu_simt.Launch.Cache.clear ();
  Alcotest.(check bool) "direct path exercised during parity" true (dh > 0)

let test_no_missing_goldens () =
  (* Every recorded golden corresponds to a live case — catches silently
     dropped coverage when the case list shrinks. *)
  let live =
    List.map (fun (c : Golden_cases.case) -> c.Golden_cases.name)
      (Golden_cases.cases ())
  in
  List.iter
    (fun (name, _) ->
      if not (List.mem name live) then
        Alcotest.failf "golden %s has no live case" name)
    Goldens_data.goldens

let () =
  Alcotest.run "golden-parity"
    [
      ( "parity",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "with-obs" `Quick test_with_obs;
          Alcotest.test_case "domains-2" `Quick (test_domains 2);
          Alcotest.test_case "domains-4" `Quick (test_domains 4);
          Alcotest.test_case "direct-active" `Quick test_direct_active;
          Alcotest.test_case "goldens-cover-cases" `Quick
            test_no_missing_goldens;
        ] );
    ]
