(* Unit and property tests for the dense small-matrix substrate. *)

open Vblu_smallblas

let check_float = Alcotest.(check (float 1e-12))

let matrix_of_seed ?(kind = `General) seed n =
  let st = Random.State.make [| 0xabc; seed |] in
  match kind with
  | `General -> Matrix.random_general ~state:st n
  | `Diagdom -> Matrix.random_diagdom ~state:st n

let vector_of_seed seed n =
  Vector.random ~state:(Random.State.make [| 0xdef; seed |]) n

(* ------------------------------------------------------------------ *)
(* Precision                                                           *)

let test_precision_round () =
  check_float "double is identity" 0.1 (Precision.round Precision.Double 0.1);
  let s = Precision.round Precision.Single 0.1 in
  Alcotest.(check bool) "single 0.1 is rounded" true (s <> 0.1);
  check_float "single round-trip is stable" s (Precision.round Precision.Single s);
  check_float "exact small ints survive single" 42.0
    (Precision.round Precision.Single 42.0)

let test_precision_eps () =
  check_float "double eps" epsilon_float (2.0 *. Precision.eps Precision.Double);
  (* 1 + eps is representable, 1 + eps/2 rounds back to 1. *)
  let eps_s = Precision.eps Precision.Single in
  Alcotest.(check bool) "single eps separates" true
    (Precision.add Precision.Single 1.0 (2.0 *. eps_s) > 1.0);
  check_float "half eps collapses" 1.0
    (Precision.add Precision.Single 1.0 (eps_s /. 2.0))

let test_precision_fma () =
  (* fma in double is a single rounding of the exact product-sum here. *)
  check_float "fma double" 7.0 (Precision.fma Precision.Double 2.0 3.0 1.0);
  Alcotest.(check string) "names" "single" (Precision.to_string Precision.Single)

(* ------------------------------------------------------------------ *)
(* Vector                                                              *)

let test_vector_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; -5.0; 6.0 |] in
  check_float "dot" 12.0 (Vector.dot x y);
  check_float "nrm2" (sqrt 14.0) (Vector.nrm2 x);
  check_float "norm_inf" 6.0 (Vector.norm_inf y);
  let z = Vector.copy y in
  Vector.axpy 2.0 x z;
  check_float "axpy" 6.0 z.(0);
  Vector.scal 0.5 z;
  check_float "scal" 3.0 z.(0);
  check_float "add" 5.0 (Vector.add x y).(0);
  check_float "sub" (-3.0) (Vector.sub x y).(0);
  check_float "max_abs_diff" 7.0 (Vector.max_abs_diff x y)

let test_vector_errors () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vector.dot: dimension mismatch") (fun () ->
      ignore (Vector.dot [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "blit mismatch"
    (Invalid_argument "Vector.blit: dimension mismatch") (fun () ->
      Vector.blit ~src:[| 1.0 |] ~dst:[| 1.0; 2.0 |])

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)

let test_matrix_basics () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check (pair int int)) "dims" (2, 3) (Matrix.dims m);
  check_float "get" 12.0 (Matrix.get m 1 2);
  let t = Matrix.transpose m in
  Alcotest.(check (pair int int)) "transpose dims" (3, 2) (Matrix.dims t);
  check_float "transpose element" 12.0 (Matrix.get t 2 1);
  let id = Matrix.identity 3 in
  check_float "identity multiply keeps matrix" 0.0
    (Matrix.max_abs_diff t (Matrix.matmul t (Matrix.identity 2)));
  check_float "identity norm_inf" 1.0 (Matrix.norm_inf id);
  check_float "frobenius of identity" (sqrt 3.0) (Matrix.norm_frobenius id)

let test_matrix_rows_roundtrip () =
  let rows = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let m = Matrix.of_rows rows in
  Alcotest.(check bool) "roundtrip" true (Matrix.to_rows m = rows);
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows")
    (fun () -> ignore (Matrix.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_matrix_gemv () =
  let m = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Matrix.gemv m [| 1.0; 1.0 |] in
  check_float "gemv 0" 3.0 y.(0);
  check_float "gemv 1" 7.0 y.(1);
  let yt = Matrix.gemv ~trans:true m [| 1.0; 1.0 |] in
  check_float "gemv^T 0" 4.0 yt.(0);
  check_float "gemv^T 1" 6.0 yt.(1)

let test_matrix_permute_rows () =
  let m = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let p = Matrix.permute_rows m [| 1; 0 |] in
  check_float "swapped" 3.0 (Matrix.get p 0 0);
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "Matrix.permute_rows: not a permutation") (fun () ->
      ignore (Matrix.permute_rows m [| 0; 0 |]))

let test_matrix_triangle_predicates () =
  let l = Matrix.of_rows [| [| 1.0; 0.0 |]; [| 5.0; 1.0 |] |] in
  Alcotest.(check bool) "lower unit" true (Matrix.is_lower_unit l);
  Alcotest.(check bool) "not upper" false (Matrix.is_upper l);
  let u = Matrix.of_rows [| [| 2.0; 7.0 |]; [| 0.0; 3.0 |] |] in
  Alcotest.(check bool) "upper" true (Matrix.is_upper u)

let test_matrix_diagdom () =
  for seed = 0 to 9 do
    let n = 1 + (seed mod 8) in
    let m = matrix_of_seed ~kind:`Diagdom seed n in
    for i = 0 to n - 1 do
      let off = ref 0.0 in
      for j = 0 to n - 1 do
        if i <> j then off := !off +. Float.abs (Matrix.get m i j)
      done;
      Alcotest.(check bool) "row dominant" true
        (Float.abs (Matrix.get m i i) > !off)
    done
  done

(* ------------------------------------------------------------------ *)
(* LU                                                                  *)

let test_lu_reconstruct () =
  for seed = 0 to 19 do
    let n = 1 + (seed * 3 mod 32) in
    let a = matrix_of_seed seed n in
    let f = Lu.factor_explicit a in
    Alcotest.(check bool)
      (Printf.sprintf "PA=LU residual small (n=%d)" n)
      true
      (Diagnostics.factor_residual a f < 1e-13)
  done

let test_lu_implicit_equals_explicit () =
  for seed = 0 to 19 do
    let n = 1 + (seed * 5 mod 32) in
    let a = matrix_of_seed seed n in
    let fe = Lu.factor_explicit a in
    let fi = Lu.factor_implicit a in
    check_float "identical factors" 0.0 (Matrix.max_abs_diff fe.Lu.lu fi.Lu.lu);
    Alcotest.(check (array int)) "identical permutations" fe.Lu.perm fi.Lu.perm
  done

let test_lu_solve () =
  for seed = 0 to 9 do
    let n = 2 + (seed * 3 mod 31) in
    let a = matrix_of_seed seed n in
    let b = vector_of_seed seed n in
    let x = Lu.solve (Lu.factor_implicit a) b in
    Alcotest.(check bool) "solve residual" true
      (Diagnostics.solve_residual a x b < 1e-12)
  done

let test_lu_solve_in_place () =
  let a = matrix_of_seed 3 7 in
  let b = vector_of_seed 3 7 in
  let f = Lu.factor_implicit a in
  let x = Lu.solve f b in
  let b' = Vector.copy b in
  Lu.solve_in_place f b';
  check_float "in place agrees" 0.0 (Vector.max_abs_diff x b')

let test_lu_unpack () =
  let a = matrix_of_seed 11 9 in
  let f = Lu.factor_explicit a in
  let l, u = Lu.unpack f in
  Alcotest.(check bool) "L unit lower" true (Matrix.is_lower_unit l);
  Alcotest.(check bool) "U upper" true (Matrix.is_upper u);
  check_float "LU = reconstruct" 0.0
    (Matrix.max_abs_diff (Matrix.matmul l u) (Lu.reconstruct f))

let test_lu_det () =
  let a = Matrix.of_rows [| [| 0.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let d = Lu.det (Lu.factor_explicit a) in
  check_float "det with pivoting sign" (-6.0) d;
  let i3 = Matrix.identity 3 in
  check_float "det of identity" 1.0 (Lu.det (Lu.factor_implicit i3))

let test_lu_singular () =
  let z = Matrix.create 3 3 in
  Alcotest.check_raises "all zero" (Lu.Singular 0) (fun () ->
      ignore (Lu.factor_explicit z));
  Alcotest.check_raises "implicit too" (Lu.Singular 0) (fun () ->
      ignore (Lu.factor_implicit z));
  (* Rank-1 matrix breaks at step 1. *)
  let r1 = Matrix.init 3 3 (fun i j -> float_of_int ((i + 1) * (j + 1))) in
  Alcotest.check_raises "rank one" (Lu.Singular 1) (fun () ->
      ignore (Lu.factor_implicit r1))

let test_lu_nonsquare () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Lu.factor_explicit: matrix not square") (fun () ->
      ignore (Lu.factor_explicit (Matrix.create 2 3)))

let test_lu_nopivot_diagdom () =
  for seed = 0 to 5 do
    let n = 2 + (seed * 6 mod 31) in
    let a = matrix_of_seed ~kind:`Diagdom seed n in
    let f = Lu.factor_nopivot a in
    Alcotest.(check bool) "residual ok on dominant" true
      (Diagnostics.factor_residual a f < 1e-13);
    Alcotest.(check (array int)) "identity permutation"
      (Array.init n (fun i -> i))
      f.Lu.perm
  done

let test_lu_nopivot_needs_pivot () =
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Alcotest.check_raises "zero pivot" (Lu.Singular 0) (fun () ->
      ignore (Lu.factor_nopivot a))

let test_lu_single_precision () =
  let a = matrix_of_seed 21 16 in
  let b = vector_of_seed 21 16 in
  let f = Lu.factor_implicit ~prec:Precision.Single a in
  let x = Lu.solve ~prec:Precision.Single f b in
  let r = Diagnostics.solve_residual a x b in
  Alcotest.(check bool) "single residual ~1e-5" true (r < 1e-4 && r > 1e-12)

(* ------------------------------------------------------------------ *)
(* Trsv                                                                *)

let test_trsv_variants_agree () =
  for seed = 0 to 9 do
    let n = 2 + (seed * 3 mod 31) in
    let a = matrix_of_seed seed n in
    let f = Lu.factor_implicit a in
    let b = vector_of_seed (seed + 100) n in
    let run variant =
      let x = Trsv.apply_perm f.Lu.perm b in
      Trsv.lower_unit_in_place ~variant f.Lu.lu x;
      Trsv.upper_in_place ~variant f.Lu.lu x;
      x
    in
    let xe = run Trsv.Eager and xl = run Trsv.Lazy in
    Alcotest.(check bool) "eager ≈ lazy" true (Vector.max_abs_diff xe xl < 1e-10)
  done

let test_trsv_perm_roundtrip () =
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  let perm = [| 2; 0; 3; 1 |] in
  let pb = Trsv.apply_perm perm b in
  check_float "permuted head" 3.0 pb.(0);
  let back = Trsv.apply_perm_inv perm pb in
  check_float "roundtrip" 0.0 (Vector.max_abs_diff b back)

let test_trsv_singular_diag () =
  let m = Matrix.create 2 2 in
  Alcotest.check_raises "upper zero diag" (Error.Singular 1) (fun () ->
      Trsv.upper_in_place m [| 1.0; 1.0 |])

(* ------------------------------------------------------------------ *)
(* Gauss-Huard                                                         *)

let test_gh_solves () =
  for seed = 0 to 14 do
    let n = 1 + (seed * 4 mod 32) in
    let a = matrix_of_seed seed n in
    let b = vector_of_seed (seed + 7) n in
    let f = Gauss_huard.factor a in
    let x = Gauss_huard.solve f b in
    Alcotest.(check bool) "gh residual" true
      (Diagnostics.solve_residual a x b < 1e-12)
  done

let test_ght_matches_gh () =
  for seed = 0 to 9 do
    let n = 2 + (seed * 3 mod 31) in
    let a = matrix_of_seed seed n in
    let b = vector_of_seed seed n in
    let x = Gauss_huard.solve (Gauss_huard.factor a) b in
    let xt =
      Gauss_huard.solve (Gauss_huard.factor ~storage:Gauss_huard.Transposed a) b
    in
    check_float "identical" 0.0 (Vector.max_abs_diff x xt)
  done

let test_gh_vs_lu () =
  let a = matrix_of_seed 33 24 in
  let b = vector_of_seed 33 24 in
  let x_lu = Lu.solve (Lu.factor_implicit a) b in
  let x_gh = Gauss_huard.solve (Gauss_huard.factor a) b in
  Alcotest.(check bool) "gh ≈ lu" true (Vector.max_abs_diff x_lu x_gh < 1e-10)

let test_gh_singular () =
  Alcotest.check_raises "gh singular" (Error.Singular 0) (fun () ->
      ignore (Gauss_huard.factor (Matrix.create 2 2)))

let test_gh_solve_in_place () =
  let a = matrix_of_seed 5 6 in
  let b = vector_of_seed 5 6 in
  let f = Gauss_huard.factor a in
  let x = Gauss_huard.solve f b in
  let b' = Vector.copy b in
  Gauss_huard.solve_in_place f b';
  check_float "in-place" 0.0 (Vector.max_abs_diff x b')

(* ------------------------------------------------------------------ *)
(* Gauss-Jordan                                                        *)

let test_gje_inverse () =
  for seed = 0 to 9 do
    let n = 1 + (seed * 4 mod 32) in
    let a = matrix_of_seed seed n in
    let inv = Gauss_jordan.invert a in
    let prod = Matrix.matmul a inv in
    Alcotest.(check bool) "A * inv(A) = I" true
      (Matrix.max_abs_diff prod (Matrix.identity n) < 1e-10)
  done

let test_gje_singular () =
  Alcotest.check_raises "gje singular" (Error.Singular 0) (fun () ->
      ignore (Gauss_jordan.invert (Matrix.create 4 4)))

let test_gje_solve_matches_lu () =
  let a = matrix_of_seed 8 12 in
  let b = vector_of_seed 8 12 in
  let x1 = Gauss_jordan.solve (Gauss_jordan.invert a) b in
  let x2 = Lu.solve (Lu.factor_implicit a) b in
  Alcotest.(check bool) "close" true (Vector.max_abs_diff x1 x2 < 1e-10)

(* ------------------------------------------------------------------ *)
(* Cholesky                                                            *)

let spd_of_seed seed n =
  let st = Random.State.make [| 0x59d; seed |] in
  let b = Matrix.random ~state:st n n in
  let a = Matrix.matmul b (Matrix.transpose b) in
  Matrix.init n n (fun i j ->
      Matrix.get a i j +. if i = j then float_of_int n else 0.0)

let test_cholesky_reconstruct () =
  for seed = 0 to 9 do
    let n = 1 + (seed * 4 mod 32) in
    let a = spd_of_seed seed n in
    let f = Cholesky.factor a in
    let llt = Matrix.matmul f.Cholesky.l (Matrix.transpose f.Cholesky.l) in
    Alcotest.(check bool) "LL^T = A" true (Matrix.max_abs_diff llt a /. Matrix.max_abs a < 1e-12)
  done

let test_cholesky_solve () =
  for seed = 0 to 9 do
    let n = 2 + (seed * 3 mod 31) in
    let a = spd_of_seed seed n in
    let b = vector_of_seed seed n in
    let x = Cholesky.solve (Cholesky.factor a) b in
    Alcotest.(check bool) "residual" true (Diagnostics.solve_residual a x b < 1e-12);
    (* agrees with LU *)
    let x_lu = Lu.solve (Lu.factor_implicit a) b in
    Alcotest.(check bool) "matches lu" true
      (Vector.max_abs_diff x x_lu /. (1.0 +. Vector.norm_inf x_lu) < 1e-10)
  done

let test_cholesky_not_spd () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check bool) "indefinite rejected" true
    (match Cholesky.factor a with
    | exception Cholesky.Not_positive_definite 1 -> true
    | _ -> false);
  Alcotest.(check bool) "zero rejected at step 0" true
    (match Cholesky.factor (Matrix.create 3 3) with
    | exception Cholesky.Not_positive_definite 0 -> true
    | _ -> false)

let test_cholesky_ignores_upper () =
  (* Only the lower triangle is read. *)
  let a = spd_of_seed 3 6 in
  let garbled = Matrix.copy a in
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      Matrix.set garbled i j 999.0
    done
  done;
  let f1 = Cholesky.factor a and f2 = Cholesky.factor garbled in
  check_float "same factor" 0.0 (Matrix.max_abs_diff f1.Cholesky.l f2.Cholesky.l)

(* ------------------------------------------------------------------ *)
(* Status (non-raising) API                                            *)

let test_status_matches_raising_on_success () =
  (* On well-conditioned input every status function reports info = 0 and
     produces the same floats as its raising wrapper. *)
  let a = matrix_of_seed 44 12 in
  let b = vector_of_seed 44 12 in
  let f, inf = Lu.factor_implicit_status a in
  Alcotest.(check int) "lu info" 0 inf;
  check_float "lu factors" 0.0
    (Matrix.max_abs_diff f.Lu.lu (Lu.factor_implicit a).Lu.lu);
  let x, sinf = Lu.solve_status f b in
  Alcotest.(check int) "lu solve info" 0 sinf;
  check_float "lu solve" 0.0 (Vector.max_abs_diff x (Lu.solve f b));
  let gf, ginf = Gauss_huard.factor_status a in
  Alcotest.(check int) "gh info" 0 ginf;
  let gx, gsinf = Gauss_huard.solve_status gf b in
  Alcotest.(check int) "gh solve info" 0 gsinf;
  check_float "gh solve" 0.0 (Vector.max_abs_diff gx (Gauss_huard.solve gf b));
  let inv, jinf = Gauss_jordan.invert_status a in
  Alcotest.(check int) "gje info" 0 jinf;
  check_float "gje inverse" 0.0 (Matrix.max_abs_diff inv (Gauss_jordan.invert a));
  let spd = spd_of_seed 44 12 in
  let cf, cinf = Cholesky.factor_status spd in
  Alcotest.(check int) "cholesky info" 0 cinf;
  check_float "cholesky factor" 0.0
    (Matrix.max_abs_diff cf.Cholesky.l (Cholesky.factor spd).Cholesky.l)

let test_status_flags_breakdown () =
  (* info = k + 1 for the first dead pivot at (0-based) step k — the same
     step index the raising wrappers put in their exceptions. *)
  let z2 = Matrix.create 2 2 and z3 = Matrix.create 3 3 in
  Alcotest.(check int) "lu explicit" 1 (snd (Lu.factor_explicit_status z3));
  Alcotest.(check int) "lu implicit" 1 (snd (Lu.factor_implicit_status z3));
  Alcotest.(check int) "lu nopivot" 1 (snd (Lu.factor_nopivot_status z3));
  let r1 = Matrix.init 3 3 (fun i j -> float_of_int ((i + 1) * (j + 1))) in
  Alcotest.(check int) "rank one at step 1" 2
    (snd (Lu.factor_implicit_status r1));
  Alcotest.(check int) "gh" 1 (snd (Gauss_huard.factor_status z2));
  Alcotest.(check int) "gje" 1 (snd (Gauss_jordan.invert_status z3));
  let ind = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check int) "cholesky indefinite at step 1" 2
    (snd (Cholesky.factor_status ind));
  Alcotest.(check int) "cholesky zero at step 0" 1
    (snd (Cholesky.factor_status z3));
  (* The frozen LU still carries a total permutation (the freeze rule
     assigns the remaining rows in order), so a later permuted solve
     cannot index out of bounds. *)
  let f, _ = Lu.factor_implicit_status r1 in
  let sorted = Array.copy f.Lu.perm in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "total permutation" [| 0; 1; 2 |] sorted;
  (* Triangular sweeps flag instead of raising, in both variants. *)
  List.iter
    (fun variant ->
      let x = [| 1.0; 1.0 |] in
      Alcotest.(check int) "trsv upper zero diag" 2
        (Trsv.upper_in_place_status ~variant z2 x))
    [ Trsv.Eager; Trsv.Lazy ]

(* ------------------------------------------------------------------ *)
(* Diagnostics & Flops                                                 *)

let test_growth_factor () =
  let a = Matrix.identity 4 in
  let f = Lu.factor_explicit a in
  check_float "identity growth" 1.0 (Diagnostics.growth_factor a f)

let test_condition_estimate () =
  let id = Matrix.identity 5 in
  check_float "cond(I)" 1.0 (Diagnostics.condition_estimate id);
  Alcotest.(check bool) "singular -> inf" true
    (Diagnostics.condition_estimate (Matrix.create 3 3) = infinity)

let test_flops_formulas () =
  check_float "getrf(1)" 0.0 (Flops.getrf 1);
  (* n=2: one division + one multiply-add pair = 3 flops. *)
  check_float "getrf(2)" 3.0 (Flops.getrf 2);
  check_float "trsv lower" (16.0 *. 15.0) (Flops.trsv_lower_unit 16);
  check_float "trsv upper" ((16.0 *. 15.0) +. 16.0) (Flops.trsv_upper 16);
  check_float "trsv pair = lower + upper"
    (Flops.trsv_lower_unit 16 +. Flops.trsv_upper 16)
    (Flops.trsv_pair 16);
  check_float "inversion" (2.0 *. 27.0) (Flops.invert 3);
  check_float "batch total" (2.0 *. Flops.gemv 4)
    (Flops.batch_total Flops.gemv [| 4; 4 |])

(* ------------------------------------------------------------------ *)
(* Property-based                                                      *)

let qcheck_tests =
  let gen_seed_n = QCheck.(pair (int_bound 10_000) (int_range 1 32)) in
  [
    QCheck.Test.make ~count:100 ~name:"lu: PA = LU backward stable" gen_seed_n
      (fun (seed, n) ->
        let a = matrix_of_seed seed n in
        Diagnostics.factor_residual a (Lu.factor_explicit a) < 1e-12);
    QCheck.Test.make ~count:100 ~name:"lu: implicit ≡ explicit (bitwise)"
      gen_seed_n (fun (seed, n) ->
        let a = matrix_of_seed seed n in
        let fe = Lu.factor_explicit a and fi = Lu.factor_implicit a in
        Matrix.max_abs_diff fe.Lu.lu fi.Lu.lu = 0.0 && fe.Lu.perm = fi.Lu.perm);
    QCheck.Test.make ~count:100 ~name:"lu: perm is a permutation" gen_seed_n
      (fun (seed, n) ->
        let f = Lu.factor_implicit (matrix_of_seed seed n) in
        List.sort_uniq compare (Array.to_list f.Lu.perm)
        = List.init n (fun i -> i));
    QCheck.Test.make ~count:100 ~name:"lu/gh/gje solutions agree" gen_seed_n
      (fun (seed, n) ->
        let a = matrix_of_seed seed n in
        let b = vector_of_seed seed n in
        let x1 = Lu.solve (Lu.factor_implicit a) b in
        let x2 = Gauss_huard.solve (Gauss_huard.factor a) b in
        let x3 = Gauss_jordan.solve (Gauss_jordan.invert a) b in
        let scale = 1.0 +. Vector.norm_inf x1 in
        Vector.max_abs_diff x1 x2 /. scale < 1e-8
        && Vector.max_abs_diff x1 x3 /. scale < 1e-8);
    QCheck.Test.make ~count:100 ~name:"growth factor bounded by 2^(n-1)"
      gen_seed_n (fun (seed, n) ->
        let a = matrix_of_seed seed n in
        let g = Diagnostics.growth_factor a (Lu.factor_explicit a) in
        g <= ldexp 1.0 (n - 1) +. 1e-9);
    QCheck.Test.make ~count:100 ~name:"det(PA) = det(L)det(U) consistency"
      (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_range 1 8))
      (fun (seed, n) ->
        (* Compare against the explicitly permuted product for small n. *)
        let a = matrix_of_seed seed n in
        let f = Lu.factor_explicit a in
        let d1 = Lu.det f in
        let d2 = Lu.det (Lu.factor_explicit (Matrix.transpose a)) in
        Float.abs (d1 -. d2) /. (1.0 +. Float.abs d1) < 1e-8);
    QCheck.Test.make ~count:100 ~name:"single-precision rounding idempotent"
      QCheck.float (fun x ->
        let r = Precision.round Precision.Single x in
        Float.is_nan r || Precision.round Precision.Single r = r);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "smallblas"
    [
      ( "precision",
        [
          Alcotest.test_case "round" `Quick test_precision_round;
          Alcotest.test_case "eps" `Quick test_precision_eps;
          Alcotest.test_case "fma" `Quick test_precision_fma;
        ] );
      ( "vector",
        [
          Alcotest.test_case "ops" `Quick test_vector_ops;
          Alcotest.test_case "errors" `Quick test_vector_errors;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "rows roundtrip" `Quick test_matrix_rows_roundtrip;
          Alcotest.test_case "gemv" `Quick test_matrix_gemv;
          Alcotest.test_case "permute rows" `Quick test_matrix_permute_rows;
          Alcotest.test_case "triangle predicates" `Quick
            test_matrix_triangle_predicates;
          Alcotest.test_case "diagdom generator" `Quick test_matrix_diagdom;
        ] );
      ( "lu",
        [
          Alcotest.test_case "reconstruct" `Quick test_lu_reconstruct;
          Alcotest.test_case "implicit = explicit" `Quick
            test_lu_implicit_equals_explicit;
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "solve in place" `Quick test_lu_solve_in_place;
          Alcotest.test_case "unpack" `Quick test_lu_unpack;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "non-square" `Quick test_lu_nonsquare;
          Alcotest.test_case "nopivot diagdom" `Quick test_lu_nopivot_diagdom;
          Alcotest.test_case "nopivot breakdown" `Quick
            test_lu_nopivot_needs_pivot;
          Alcotest.test_case "single precision" `Quick test_lu_single_precision;
        ] );
      ( "trsv",
        [
          Alcotest.test_case "variants agree" `Quick test_trsv_variants_agree;
          Alcotest.test_case "perm roundtrip" `Quick test_trsv_perm_roundtrip;
          Alcotest.test_case "singular diagonal" `Quick test_trsv_singular_diag;
        ] );
      ( "gauss-huard",
        [
          Alcotest.test_case "solves" `Quick test_gh_solves;
          Alcotest.test_case "transposed matches" `Quick test_ght_matches_gh;
          Alcotest.test_case "matches lu" `Quick test_gh_vs_lu;
          Alcotest.test_case "singular" `Quick test_gh_singular;
          Alcotest.test_case "solve in place" `Quick test_gh_solve_in_place;
        ] );
      ( "gauss-jordan",
        [
          Alcotest.test_case "inverse" `Quick test_gje_inverse;
          Alcotest.test_case "singular" `Quick test_gje_singular;
          Alcotest.test_case "matches lu" `Quick test_gje_solve_matches_lu;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "reconstruct" `Quick test_cholesky_reconstruct;
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "not spd" `Quick test_cholesky_not_spd;
          Alcotest.test_case "ignores upper" `Quick test_cholesky_ignores_upper;
        ] );
      ( "status-api",
        [
          Alcotest.test_case "matches raising on success" `Quick
            test_status_matches_raising_on_success;
          Alcotest.test_case "flags breakdown" `Quick test_status_flags_breakdown;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "growth factor" `Quick test_growth_factor;
          Alcotest.test_case "condition estimate" `Quick test_condition_estimate;
          Alcotest.test_case "flop formulas" `Quick test_flops_formulas;
        ] );
      ("properties", qcheck_tests);
    ]
