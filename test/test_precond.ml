(* Tests for supervariable blocking and the block-Jacobi preconditioner. *)

open Vblu_smallblas
open Vblu_sparse
open Vblu_precond

let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Supervariable blocking                                              *)

let test_supervariables_fem () =
  (* Every node of a FEM system is one supervariable. *)
  let vars = 5 in
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:40 ~vars_per_node:vars () in
  let sv = Supervariable.supervariables a in
  Alcotest.(check int) "one supervariable per node" 40
    (Array.length sv.Supervariable.starts);
  Array.iter (fun s -> Alcotest.(check int) "size" vars s) sv.Supervariable.sizes

let test_supervariables_scalar () =
  (* A tridiagonal system has no repeated patterns: singleton blocks. *)
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:6 ~ny:1 () in
  let sv = Supervariable.supervariables a in
  Alcotest.(check int) "singletons" 6 (Array.length sv.Supervariable.starts)

let test_blocking_respects_bound () =
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:50 ~vars_per_node:4 () in
  List.iter
    (fun bound ->
      let blk = Supervariable.blocking ~max_block_size:bound a in
      let n, _ = Csr.dims a in
      Alcotest.(check bool) "valid tiling" true (Supervariable.validate ~n blk);
      Array.iter
        (fun s -> Alcotest.(check bool) "within bound" true (s <= bound))
        blk.Supervariable.sizes)
    [ 1; 4; 8; 12; 32 ]

let test_blocking_agglomerates () =
  (* With bound 8 and supervariables of 4, blocks pair up. *)
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:40 ~vars_per_node:4 () in
  let blk = Supervariable.blocking ~max_block_size:8 a in
  Array.iter
    (fun s -> Alcotest.(check int) "pairs" 8 s)
    blk.Supervariable.sizes

let test_blocking_splits_oversize () =
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:10 ~vars_per_node:6 () in
  let blk = Supervariable.blocking ~max_block_size:4 a in
  let n, _ = Csr.dims a in
  Alcotest.(check bool) "valid" true (Supervariable.validate ~n blk);
  Array.iter
    (fun s -> Alcotest.(check bool) "split" true (s <= 4))
    blk.Supervariable.sizes

let test_uniform_blocking () =
  let blk = Supervariable.uniform ~n:10 ~block_size:4 in
  Alcotest.(check bool) "valid" true (Supervariable.validate ~n:10 blk);
  Alcotest.(check (array int)) "sizes" [| 4; 4; 2 |] blk.Supervariable.sizes

let test_similarity_relaxed () =
  (* One 4-variable node whose rows share the pattern {0,1,2,3,8}, except
     row 2 where the coupling to column 8 vanished (a boundary element).
     Exact matching breaks the node apart; Jaccard 0.7 (row 2 scores
     4/5 = 0.8 against its neighbours) keeps it together. *)
  let n = 9 in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  for r = 0 to 3 do
    for c = 0 to 3 do
      Coo.add coo r c (if r = c then 4.0 else -1.0)
    done;
    if r <> 2 then Coo.add coo r 8 (-0.5)
  done;
  for r = 4 to n - 1 do
    Coo.add coo r r 1.0
  done;
  let a = Coo.to_csr coo in
  let exact = Supervariable.supervariables a in
  let relaxed = Supervariable.supervariables ~similarity:0.7 a in
  Alcotest.(check (array int)) "exact splits the perturbed node"
    [| 2; 1; 1; 1; 1; 1; 1; 1 |] exact.Supervariable.sizes;
  Alcotest.(check int) "relaxed keeps the node whole" 4
    relaxed.Supervariable.sizes.(0);
  Alcotest.(check bool) "still a valid partition" true
    (Supervariable.validate ~n relaxed);
  (* Threshold 1.0 is exactly the default behaviour. *)
  let one = Supervariable.supervariables ~similarity:1.0 a in
  Alcotest.(check bool) "threshold 1.0 = exact" true
    (one.Supervariable.starts = exact.Supervariable.starts);
  Alcotest.(check bool) "invalid threshold rejected" true
    (match Supervariable.supervariables ~similarity:0.0 a with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_validate_rejects () =
  Alcotest.(check bool) "gap" false
    (Supervariable.validate ~n:8
       { Supervariable.starts = [| 0; 5 |]; sizes = [| 4; 3 |] })

(* ------------------------------------------------------------------ *)
(* Block-Jacobi                                                        *)

let test_exact_on_block_diagonal () =
  (* On a block-diagonal matrix, block-Jacobi with matching blocks IS the
     inverse: one application solves the system. *)
  let st = Random.State.make [| 31 |] in
  let blocks = Array.init 6 (fun _ -> Matrix.random_diagdom ~state:st 4) in
  let n = 24 in
  let dense = Matrix.create n n in
  Array.iteri
    (fun b m ->
      for i = 0 to 3 do
        for j = 0 to 3 do
          Matrix.set dense ((b * 4) + i) ((b * 4) + j) (Matrix.get m i j)
        done
      done)
    blocks;
  let a = Csr.of_dense dense in
  let x_true = Vector.random ~state:st n in
  let b = Csr.spmv a x_true in
  List.iter
    (fun variant ->
      let precond, info =
        Block_jacobi.create ~variant
          ~blocking:(Supervariable.uniform ~n ~block_size:4)
          a
      in
      Alcotest.(check (list int)) "no singular blocks" []
        info.Block_jacobi.singular_blocks;
      let x = Preconditioner.apply precond b in
      Alcotest.(check bool)
        (Block_jacobi.variant_name variant ^ " solves exactly")
        true
        (Vector.max_abs_diff x x_true < 1e-10))
    [ Block_jacobi.Lu; Block_jacobi.Gh; Block_jacobi.Ght;
      Block_jacobi.Gje_inverse; Block_jacobi.Cholesky ]

let test_scalar_jacobi () =
  let a =
    Csr.of_dense (Matrix.of_rows [| [| 2.0; 1.0 |]; [| 0.0; 4.0 |] |])
  in
  let precond, _ = Block_jacobi.create ~variant:Block_jacobi.Scalar a in
  let y = Preconditioner.apply precond [| 2.0; 8.0 |] in
  check_float "d1" 1.0 y.(0);
  check_float "d2" 2.0 y.(1)

let test_singular_block_fallback () =
  (* One 2x2 singular diagonal block: falls back to identity and reports. *)
  let dense =
    Matrix.of_rows
      [|
        [| 1.0; 1.0; 0.0; 0.0 |];
        [| 1.0; 1.0; 0.0; 0.0 |];
        [| 0.0; 0.0; 3.0; 0.0 |];
        [| 0.0; 0.0; 0.0; 3.0 |];
      |]
  in
  let a = Csr.of_dense dense in
  let precond, info =
    Block_jacobi.create ~blocking:(Supervariable.uniform ~n:4 ~block_size:2) a
  in
  Alcotest.(check (list int)) "block 0 singular" [ 0 ]
    info.Block_jacobi.singular_blocks;
  let y = Preconditioner.apply precond [| 5.0; 7.0; 3.0; 6.0 |] in
  check_float "identity on singular block" 5.0 y.(0);
  check_float "solved elsewhere" 1.0 y.(2)

(* Globally nonsingular, but the leading 2x2 diagonal block is exactly
   rank one — every factorization variant must break down on block 0 and
   the breakdown policy decides what happens next. *)
let singular_block_matrix () =
  Csr.of_dense
    (Matrix.of_rows
       [|
         [| 1.0; 1.0; 0.5; 0.0 |];
         [| 1.0; 1.0; 0.0; 0.5 |];
         [| 0.5; 0.0; 3.0; 0.0 |];
         [| 0.0; 0.5; 0.0; 3.0 |];
       |])

let uniform2 = Supervariable.uniform ~n:4 ~block_size:2

let test_breakdown_policy_fail () =
  let a = singular_block_matrix () in
  Alcotest.(check bool) "raises Singular_block with block index" true
    (match
       Block_jacobi.create ~policy:Block_jacobi.Fail ~blocking:uniform2 a
     with
    | exception
        Block_jacobi.Singular_block { block = 0; variant = Block_jacobi.Lu } ->
      true
    | _ -> false)

let test_breakdown_policy_identity () =
  (* The default policy: block 0 degrades to the identity, the healthy
     block still solves, and the legacy [singular_blocks] field keeps
     reporting the same indices as [degraded_blocks]. *)
  let a = singular_block_matrix () in
  List.iter
    (fun variant ->
      let precond, info =
        Block_jacobi.create ~variant ~blocking:uniform2 a
      in
      let name = Block_jacobi.variant_name variant in
      Alcotest.(check (list int)) (name ^ " degraded") [ 0 ]
        info.Block_jacobi.degraded_blocks;
      Alcotest.(check (list int)) (name ^ " back-compat alias")
        info.Block_jacobi.degraded_blocks info.Block_jacobi.singular_blocks;
      Alcotest.(check (list int)) (name ^ " nothing perturbed") []
        info.Block_jacobi.perturbed_blocks;
      let y = Preconditioner.apply precond [| 5.0; 7.0; 3.0; 6.0 |] in
      check_float (name ^ " identity on dead block") 5.0 y.(0);
      check_float (name ^ " solved elsewhere") 1.0 y.(2))
    [ Block_jacobi.Lu; Block_jacobi.Gh; Block_jacobi.Ght;
      Block_jacobi.Gje_inverse; Block_jacobi.Cholesky ]

let test_breakdown_policy_perturb () =
  let a = singular_block_matrix () in
  let precond, info =
    Block_jacobi.create ~policy:(Block_jacobi.Perturb 1e-8) ~blocking:uniform2 a
  in
  Alcotest.(check (list int)) "salvaged" [ 0 ]
    info.Block_jacobi.perturbed_blocks;
  Alcotest.(check (list int)) "nothing degraded" []
    info.Block_jacobi.degraded_blocks;
  (* The shifted block really is factored: applying the preconditioner on
     block 0 is not the identity any more. *)
  let y = Preconditioner.apply precond [| 5.0; 7.0; 3.0; 6.0 |] in
  Alcotest.(check bool) "block 0 actually solved" true
    (Float.abs (y.(0) -. 5.0) > 1.0);
  (* And the preconditioned solver still converges on the full system. *)
  let _, stats = Vblu_krylov.Idr.solve ~precond ~s:4 a (Array.make 4 1.0) in
  Alcotest.(check bool) "idr converges" true
    (Vblu_krylov.Solver.converged stats)

let test_breakdown_policy_scalar () =
  (* The scalar variant honors the policy too: zero diagonal entries. *)
  let a =
    Csr.of_dense (Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |])
  in
  Alcotest.(check bool) "fail raises" true
    (match
       Block_jacobi.create ~variant:Block_jacobi.Scalar
         ~policy:Block_jacobi.Fail a
     with
    | exception
        Block_jacobi.Singular_block
          { block = 0; variant = Block_jacobi.Scalar } ->
      true
    | _ -> false);
  let p_id, info_id = Block_jacobi.create ~variant:Block_jacobi.Scalar a in
  Alcotest.(check (list int)) "both entries degraded" [ 0; 1 ]
    info_id.Block_jacobi.degraded_blocks;
  check_float "identity apply" 7.0 (Preconditioner.apply p_id [| 7.0; 2.0 |]).(0);
  let p_pe, info_pe =
    Block_jacobi.create ~variant:Block_jacobi.Scalar
      ~policy:(Block_jacobi.Perturb 0.5) a
  in
  Alcotest.(check (list int)) "both entries perturbed" [ 0; 1 ]
    info_pe.Block_jacobi.perturbed_blocks;
  check_float "1/eps apply" 14.0 (Preconditioner.apply p_pe [| 7.0; 2.0 |]).(0)

let test_breakdown_deterministic_across_domains () =
  (* The outcome lists and the preconditioned solve are identical whatever
     the domain count (the per-block outcomes are recorded race-free). *)
  let a = singular_block_matrix () in
  let b = [| 5.0; 7.0; 3.0; 6.0 |] in
  let run domains =
    let pool = Vblu_par.Pool.create ~num_domains:domains () in
    let precond, info = Block_jacobi.create ~pool ~blocking:uniform2 a in
    (info.Block_jacobi.degraded_blocks, Preconditioner.apply precond b)
  in
  let d1, y1 = run 1 in
  List.iter
    (fun domains ->
      let d, y = run domains in
      Alcotest.(check (list int)) "same degraded list" d1 d;
      check_float "bit-identical apply" 0.0 (Vector.max_abs_diff y1 y))
    [ 2; 4 ]

let test_variants_agree () =
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:30 ~vars_per_node:4 () in
  let n, _ = Csr.dims a in
  let r = Vector.random ~state:(Random.State.make [| 9 |]) n in
  let apply variant =
    let p, _ = Block_jacobi.create ~variant ~max_block_size:8 a in
    Preconditioner.apply p r
  in
  let lu = apply Block_jacobi.Lu in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Block_jacobi.variant_name v ^ " close to lu")
        true
        (Vector.max_abs_diff lu (apply v) /. (1.0 +. Vector.norm_inf lu) < 1e-10))
    [ Block_jacobi.Gh; Block_jacobi.Ght; Block_jacobi.Gje_inverse ]

let test_dimension_checks () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:4 ~ny:4 () in
  let precond, _ = Block_jacobi.create a in
  Alcotest.check_raises "apply dimension"
    (Invalid_argument "Preconditioner.apply: dimension mismatch") (fun () ->
      ignore (Preconditioner.apply precond [| 1.0 |]));
  Alcotest.(check bool) "invalid blocking rejected" true
    (match
       Block_jacobi.create
         ~blocking:{ Supervariable.starts = [| 0 |]; sizes = [| 3 |] }
         a
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cholesky_variant_on_nonsym_falls_back () =
  (* Nonsymmetric blocks fail the SPD test; the variant falls back to LU
     per block and still produces a working preconditioner. *)
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:20 ~vars_per_node:4 () in
  let n, _ = Csr.dims a in
  let p, info =
    Block_jacobi.create ~variant:Block_jacobi.Cholesky ~max_block_size:8 a
  in
  Alcotest.(check (list int)) "no identity fallbacks" []
    info.Block_jacobi.singular_blocks;
  let r = Vector.random ~state:(Random.State.make [| 2 |]) n in
  let p_lu, _ = Block_jacobi.create ~variant:Block_jacobi.Lu ~max_block_size:8 a in
  Alcotest.(check bool) "equals lu apply" true
    (Vector.max_abs_diff (Preconditioner.apply p r) (Preconditioner.apply p_lu r)
     /. (1.0 +. Vector.norm_inf r)
    < 1e-10)

let test_rcm_then_blocking_pipeline () =
  (* Scramble a FEM system, let RCM restore locality, then block: the
     pipeline of Section II-A on an adversarial ordering. *)
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:40 ~vars_per_node:4 () in
  let n, _ = Csr.dims a in
  let scramble = Vblu_sparse.Reorder.random ~state:(Random.State.make [| 8 |]) n in
  let scrambled = Csr.permute_symmetric a scramble in
  let p = Vblu_sparse.Reorder.reverse_cuthill_mckee scrambled in
  let restored = Csr.permute_symmetric scrambled p in
  Alcotest.(check bool) "rcm shrinks bandwidth" true
    (Csr.bandwidth restored < Csr.bandwidth scrambled);
  (* The restored matrix still admits a valid bounded blocking and a
     working preconditioned solve. *)
  let precond, info = Block_jacobi.create ~max_block_size:16 restored in
  Alcotest.(check bool) "valid blocking" true
    (Supervariable.validate ~n info.Block_jacobi.blocking);
  let b = Array.make n 1.0 in
  let _, stats = Vblu_krylov.Idr.solve ~precond ~s:4 restored b in
  Alcotest.(check bool) "solver converges" true (Vblu_krylov.Solver.converged stats)

let test_identity_preconditioner () =
  let p = Preconditioner.identity 3 in
  let r = [| 1.0; 2.0; 3.0 |] in
  let y = Preconditioner.apply p r in
  check_float "copy" 0.0 (Vector.max_abs_diff r y);
  Alcotest.(check bool) "fresh array" true (y != r)

(* ------------------------------------------------------------------ *)
(* ILU(0)                                                              *)

let test_ilu0_exact_when_no_fill () =
  (* On a tridiagonal matrix ILU(0) has no discarded fill: it IS the LU
     factorization and the solve is exact. *)
  let n = 12 in
  let dense =
    Matrix.init n n (fun i j ->
        if i = j then 3.0
        else if abs (i - j) = 1 then -1.0 +. (0.1 *. float_of_int (min i j))
        else 0.0)
  in
  let a = Csr.of_dense dense in
  let f, finfo = Ilu0.factorize a in
  Alcotest.(check int) "clean factorization" 0 finfo;
  let x_true = Vector.random ~state:(Random.State.make [| 5 |]) n in
  let b = Csr.spmv a x_true in
  let x = Ilu0.solve f b in
  Alcotest.(check bool) "exact on tridiagonal" true
    (Vector.max_abs_diff x x_true < 1e-10)

let test_ilu0_preconditions () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:20 ~ny:20 () in
  let n, _ = Csr.dims a in
  let b = Array.make n 1.0 in
  let p = Ilu0.preconditioner a in
  let _, plain = Vblu_krylov.Cg.solve a b in
  let _, pre = Vblu_krylov.Cg.solve ~precond:p a b in
  Alcotest.(check bool) "both converge" true
    (Vblu_krylov.Solver.converged plain && Vblu_krylov.Solver.converged pre);
  Alcotest.(check bool)
    (Printf.sprintf "ilu0 stronger than nothing (%d vs %d)"
       pre.Vblu_krylov.Solver.iterations plain.Vblu_krylov.Solver.iterations)
    true
    (pre.Vblu_krylov.Solver.iterations < plain.Vblu_krylov.Solver.iterations)

let test_ilu0_errors () =
  (* Structurally missing diagonal is rejected. *)
  let a =
    Csr.create ~n_rows:2 ~n_cols:2 ~row_ptr:[| 0; 1; 2 |] ~col_idx:[| 1; 0 |]
      ~values:[| 1.0; 1.0 |]
  in
  Alcotest.(check bool) "missing diagonal" true
    (match Ilu0.factorize a with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let z = Csr.of_dense (Matrix.identity 3) in
  let zf, zinfo = Ilu0.factorize z in
  Alcotest.(check int) "identity factors cleanly" 0 zinfo;
  Alcotest.(check bool) "identity works" true
    (Vector.max_abs_diff (Ilu0.solve zf [| 1.0; 2.0; 3.0 |]) [| 1.0; 2.0; 3.0 |]
    = 0.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  [
    QCheck.Test.make ~count:20
      ~name:"lower similarity never yields more supervariables"
      QCheck.(pair (int_bound 1000) (int_range 5 20))
      (fun (seed, nodes) ->
        let a =
          Vblu_workloads.Generators.fem_blocks
            ~state:(Random.State.make [| seed |])
            ~nodes ~vars_per_node:3 ()
        in
        let count t =
          Array.length
            (Supervariable.supervariables ~similarity:t a).Supervariable.starts
        in
        count 0.5 <= count 0.9 && count 0.9 <= count 1.0);
    QCheck.Test.make ~count:30 ~name:"blocking always tiles the matrix"
      QCheck.(pair (int_range 1 32) (int_range 5 40))
      (fun (bound, nodes) ->
        let a =
          Vblu_workloads.Generators.fem_blocks
            ~state:(Random.State.make [| nodes |])
            ~nodes ~vars_per_node:3 ()
        in
        let n, _ = Csr.dims a in
        let blk = Supervariable.blocking ~max_block_size:bound a in
        Supervariable.validate ~n blk
        && Array.for_all (fun s -> s <= max bound 1) blk.Supervariable.sizes);
    QCheck.Test.make ~count:20
      ~name:"block-jacobi apply is linear (M⁻¹(αr) = αM⁻¹r)"
      QCheck.(int_bound 1000)
      (fun seed ->
        let a =
          Vblu_workloads.Generators.fem_blocks
            ~state:(Random.State.make [| seed |])
            ~nodes:20 ~vars_per_node:4 ()
        in
        let n, _ = Csr.dims a in
        let p, _ = Block_jacobi.create ~max_block_size:8 a in
        let r = Vector.random ~state:(Random.State.make [| seed + 1 |]) n in
        let y1 = Preconditioner.apply p r in
        let r2 = Array.map (fun v -> 3.0 *. v) r in
        let y2 = Preconditioner.apply p r2 in
        let scaled = Array.map (fun v -> 3.0 *. v) y1 in
        Vector.max_abs_diff y2 scaled /. (1.0 +. Vector.norm_inf scaled) < 1e-10);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "precond"
    [
      ( "supervariable",
        [
          Alcotest.test_case "fem nodes" `Quick test_supervariables_fem;
          Alcotest.test_case "scalar fallback" `Quick test_supervariables_scalar;
          Alcotest.test_case "bound respected" `Quick test_blocking_respects_bound;
          Alcotest.test_case "agglomeration" `Quick test_blocking_agglomerates;
          Alcotest.test_case "oversize split" `Quick test_blocking_splits_oversize;
          Alcotest.test_case "uniform" `Quick test_uniform_blocking;
          Alcotest.test_case "validate" `Quick test_validate_rejects;
          Alcotest.test_case "relaxed similarity" `Quick test_similarity_relaxed;
        ] );
      ( "block-jacobi",
        [
          Alcotest.test_case "exact on block diagonal" `Quick
            test_exact_on_block_diagonal;
          Alcotest.test_case "scalar jacobi" `Quick test_scalar_jacobi;
          Alcotest.test_case "singular fallback" `Quick
            test_singular_block_fallback;
          Alcotest.test_case "policy: fail" `Quick test_breakdown_policy_fail;
          Alcotest.test_case "policy: identity" `Quick
            test_breakdown_policy_identity;
          Alcotest.test_case "policy: perturb" `Quick
            test_breakdown_policy_perturb;
          Alcotest.test_case "policy: scalar variant" `Quick
            test_breakdown_policy_scalar;
          Alcotest.test_case "policy: deterministic across domains" `Quick
            test_breakdown_deterministic_across_domains;
          Alcotest.test_case "variants agree" `Quick test_variants_agree;
          Alcotest.test_case "dimension checks" `Quick test_dimension_checks;
          Alcotest.test_case "identity" `Quick test_identity_preconditioner;
          Alcotest.test_case "cholesky fallback" `Quick
            test_cholesky_variant_on_nonsym_falls_back;
          Alcotest.test_case "rcm + blocking pipeline" `Quick
            test_rcm_then_blocking_pipeline;
        ] );
      ( "ilu0",
        [
          Alcotest.test_case "exact without fill" `Quick
            test_ilu0_exact_when_no_fill;
          Alcotest.test_case "preconditions cg" `Quick test_ilu0_preconditions;
          Alcotest.test_case "errors" `Quick test_ilu0_errors;
        ] );
      ("properties", qcheck_tests);
    ]
