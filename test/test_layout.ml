(* Layout-polymorphic batch tests: Blocked ↔ Interleaved round-trips,
   cross-layout bit-identity of every batched kernel, the coalescing
   advantage of the interleaved layout on the simulated device, and the
   Launch.Cache layout-salt regression. *)

open Vblu_smallblas
open Vblu_core
module L = Vblu_simt.Launch
module C = Vblu_simt.Counter

let state seed = Random.State.make [| 0x1a70; seed |]

let bits = Int64.bits_of_float

let check_bits_arr name (a : float array) (b : float array) =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun k v ->
      if bits v <> bits b.(k) then
        Alcotest.failf "%s: element %d differs (%h vs %h)" name k v b.(k))
    a

(* Bitwise batch comparison through the layout-polymorphic accessors, so
   it works across layouts (padding excluded by construction). *)
let check_batch_bits name (x : Batch.t) (y : Batch.t) =
  Alcotest.(check int) (name ^ " count") (Batch.count x) (Batch.count y);
  for i = 0 to Batch.count x - 1 do
    let s = x.Batch.sizes.(i) in
    Alcotest.(check int) (name ^ " size") s y.Batch.sizes.(i);
    for j = 0 to s - 1 do
      for r = 0 to s - 1 do
        let a = x.Batch.values.(Batch.index x i r j)
        and b = y.Batch.values.(Batch.index y i r j) in
        if bits a <> bits b then
          Alcotest.failf "%s: block %d (%d,%d) differs (%h vs %h)" name i r j
            a b
      done
    done
  done

let check_vec_bits name (x : Batch.vec) (y : Batch.vec) =
  Alcotest.(check int) (name ^ " vcount") x.Batch.vcount y.Batch.vcount;
  for i = 0 to x.Batch.vcount - 1 do
    for k = 0 to x.Batch.vsizes.(i) - 1 do
      let a = x.Batch.vvalues.(Batch.vec_index x i k)
      and b = y.Batch.vvalues.(Batch.vec_index y i k) in
      if bits a <> bits b then
        Alcotest.failf "%s: vec %d elem %d differs (%h vs %h)" name i k a b
    done
  done

let txns (s : L.stats) = s.L.total.C.gmem_transactions

(* ------------------------------------------------------------------ *)
(* Container: empty batches, geometry, round-trips                     *)

let test_empty_sizes () =
  Alcotest.(check (array int)) "uniform count:0" [||]
    (Batch.uniform_sizes ~count:0 ~size:7);
  Alcotest.(check (array int)) "random count:0" [||]
    (Batch.random_sizes ~count:0 ~min_size:1 ~max_size:9 ());
  Alcotest.check_raises "negative count"
    (Invalid_argument "Batch.uniform_sizes: negative count") (fun () ->
      ignore (Batch.uniform_sizes ~count:(-1) ~size:7));
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Batch.uniform_sizes: non-positive size") (fun () ->
      ignore (Batch.uniform_sizes ~count:3 ~size:0));
  (* Empty batches are legal in either layout. *)
  let e = Batch.create ~layout:Batch.Interleaved [||] in
  Alcotest.(check int) "empty interleaved" 0 (Batch.count e);
  Alcotest.(check int) "no storage" 0 (Batch.total_values e)

let test_geometry () =
  let sizes = Batch.random_sizes ~state:(state 1) ~count:200 ~min_size:1
      ~max_size:32 () in
  let b = Batch.create ~layout:Batch.Interleaved sizes in
  for i = 0 to Batch.count b - 1 do
    (match Batch.cohort b i with
    | None -> Alcotest.fail "interleaved problem without cohort"
    | Some (w, slot) ->
        Alcotest.(check bool) "cohort width bounds" true (w >= 1 && w <= 32);
        Alcotest.(check bool) "slot in cohort" true (slot >= 0 && slot < w);
        Alcotest.(check int) "stride = width" w (Batch.stride b i);
        (* Cohort bases are 32-element aligned. *)
        Alcotest.(check int) "aligned cohort base" 0
          ((Batch.base b i - slot) mod 32));
    (* Every element lands inside the storage and the last one exactly at
       base + stride*(s²-1). *)
    let s = sizes.(i) in
    let last = Batch.index b i (s - 1) (s - 1) in
    Alcotest.(check bool) "in bounds" true
      (last < Batch.total_values b
      && last = Batch.base b i + (Batch.stride b i * ((s * s) - 1)))
  done;
  (* A vector batch over the same sizes agrees on cohort geometry, so one
     warp cohort context serves matrix and vector buffers. *)
  let v = Batch.vec_create ~layout:Batch.Interleaved sizes in
  for i = 0 to Batch.count b - 1 do
    Alcotest.(check (option (pair int int))) "matrix/vec cohorts agree"
      (Batch.cohort b i) (Batch.vec_cohort v i)
  done

let test_salt_classes () =
  let sizes = Batch.random_sizes ~state:(state 2) ~count:64 ~min_size:1
      ~max_size:32 () in
  let bb = Batch.random_diagdom ~state:(state 3) sizes in
  let bi = Batch.with_layout Batch.Interleaved bb in
  List.iter
    (fun align ->
      for i = 0 to Batch.count bb - 1 do
        let cb = Batch.salt_class bb i ~align
        and ci = Batch.salt_class bi i ~align in
        Alcotest.(check bool) "blocked class in [0, align)" true
          (cb >= 0 && cb < align);
        Alcotest.(check bool) "interleaved class > align" true (ci > align);
        (* Disjoint ranges: a blocked and an interleaved problem can never
           share a Launch.Cache salt component. *)
        Alcotest.(check bool) "disjoint" true (cb <> ci)
      done)
    [ 4; 8 ]

let qcheck_roundtrip =
  QCheck.Test.make ~count:60 ~name:"layout round-trip is bitwise lossless"
    QCheck.(pair small_int (int_bound 30))
    (fun (seed, n) ->
      let st = state (1000 + seed) in
      let sizes =
        Batch.random_sizes ~state:st ~count:(1 + (n mod 24)) ~min_size:1
          ~max_size:32 ()
      in
      let b = Batch.random_general ~state:st sizes in
      let i = Batch.with_layout Batch.Interleaved b in
      let back = Batch.with_layout Batch.Blocked i in
      check_bits_arr "roundtrip" b.Batch.values back.Batch.values;
      check_batch_bits "accessor equality" b i;
      let v = Batch.vec_random ~state:st sizes in
      let vi = Batch.vec_with_layout Batch.Interleaved v in
      let vback = Batch.vec_with_layout Batch.Blocked vi in
      check_bits_arr "vec roundtrip" v.Batch.vvalues vback.Batch.vvalues;
      check_vec_bits "vec accessor equality" v vi;
      true)

let test_interleaved_builders () =
  (* random_* builders draw per problem in batch order, so the same seed
     yields bitwise identical data in either layout. *)
  let sizes = Batch.random_sizes ~state:(state 4) ~count:40 ~min_size:1
      ~max_size:32 () in
  let bb = Batch.random_diagdom ~state:(state 5) sizes in
  let bi = Batch.random_diagdom ~state:(state 5) ~layout:Batch.Interleaved
      sizes in
  Alcotest.(check bool) "layout tag" true
    (Batch.layout bi = Batch.Interleaved);
  check_batch_bits "diagdom builders agree" bb bi;
  let vb = Batch.vec_random ~state:(state 6) sizes in
  let vi = Batch.vec_random ~state:(state 6) ~layout:Batch.Interleaved sizes in
  check_vec_bits "vec builders agree" vb vi

(* ------------------------------------------------------------------ *)
(* Cross-layout kernel bit-identity                                    *)

let workload prec =
  let seed = match prec with Precision.Double -> 10 | Single -> 11 in
  let st = state seed in
  let sizes = Batch.random_sizes ~state:st ~count:48 ~min_size:1 ~max_size:32
      () in
  let b = Batch.random_general ~state:st sizes in
  (sizes, b, Batch.with_layout Batch.Interleaved b)

let check_info name a b = Alcotest.(check (array int)) name a b

let check_pivots name a b =
  Alcotest.(check bool) name true
    (Array.for_all2 (fun (x : int array) y -> x = y) a b)

let test_lu_parity prec () =
  let _, bb, bi = workload prec in
  List.iter
    (fun pivoting ->
      let rb = Batched_lu.factor ~prec ~pivoting bb in
      let ri = Batched_lu.factor ~prec ~pivoting bi in
      check_batch_bits "factors" rb.Batched_lu.factors ri.Batched_lu.factors;
      check_pivots "pivots" rb.Batched_lu.pivots ri.Batched_lu.pivots;
      check_info "info" rb.Batched_lu.info ri.Batched_lu.info;
      Alcotest.(check bool) "factors inherit layout" true
        (Batch.layout ri.Batched_lu.factors = Batch.Interleaved))
    [ Batched_lu.Implicit; Batched_lu.Explicit; Batched_lu.No_pivoting ]

let test_trsv_parity prec () =
  let sizes, bb, bi = workload prec in
  let lb = Batched_lu.factor ~prec bb in
  let li = Batched_lu.factor ~prec bi in
  let rhs = Batch.vec_random ~state:(state 12) sizes in
  let rhsi = Batch.vec_with_layout Batch.Interleaved rhs in
  List.iter
    (fun variant ->
      let rb =
        Batched_trsv.solve ~prec ~variant ~factors:lb.Batched_lu.factors
          ~pivots:lb.Batched_lu.pivots rhs
      in
      let ri =
        Batched_trsv.solve ~prec ~variant ~factors:li.Batched_lu.factors
          ~pivots:li.Batched_lu.pivots rhsi
      in
      check_vec_bits "solutions" rb.Batched_trsv.solutions
        ri.Batched_trsv.solutions;
      check_info "info" rb.Batched_trsv.info ri.Batched_trsv.info)
    [ Batched_trsv.Eager; Batched_trsv.Lazy ];
  (* Mixing layouts between factors and right-hand sides is a caller bug. *)
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Batched_trsv.solve: factors/rhs layout mismatch")
    (fun () ->
      ignore
        (Batched_trsv.solve ~prec ~factors:li.Batched_lu.factors
           ~pivots:li.Batched_lu.pivots rhs))

let test_trsm_parity prec () =
  let sizes, bb, bi = workload prec in
  let lb = Batched_lu.factor ~prec bb in
  let li = Batched_lu.factor ~prec bi in
  let sets =
    Array.init 3 (fun r -> Batch.vec_random ~state:(state (20 + r)) sizes)
  in
  let seti = Array.map (Batch.vec_with_layout Batch.Interleaved) sets in
  let rb =
    Batched_trsm.solve ~prec ~factors:lb.Batched_lu.factors
      ~pivots:lb.Batched_lu.pivots sets
  in
  let ri =
    Batched_trsm.solve ~prec ~factors:li.Batched_lu.factors
      ~pivots:li.Batched_lu.pivots seti
  in
  check_info "info" rb.Batched_trsm.info ri.Batched_trsm.info;
  Array.iteri
    (fun r sb ->
      check_vec_bits "solutions" sb ri.Batched_trsm.solutions.(r))
    rb.Batched_trsm.solutions

let test_gemm_parity prec () =
  let sizes, ab, ai = workload prec in
  let bbat = Batch.random_general ~state:(state 13) sizes in
  let cbat = Batch.random_general ~state:(state 14) sizes in
  let bi = Batch.with_layout Batch.Interleaved bbat in
  let ci = Batch.with_layout Batch.Interleaved cbat in
  let rb =
    Batched_gemm.multiply ~prec ~alpha:1.5 ~beta:0.5 ~a:ab ~b:bbat ~c:cbat ()
  in
  let ri = Batched_gemm.multiply ~prec ~alpha:1.5 ~beta:0.5 ~a:ai ~b:bi ~c:ci ()
  in
  check_batch_bits "products" rb.Batched_gemm.products ri.Batched_gemm.products

let spd_workload prec =
  let seed = match prec with Precision.Double -> 15 | Single -> 16 in
  let st = state seed in
  let sizes = Batch.random_sizes ~state:st ~count:32 ~min_size:1 ~max_size:32
      () in
  let ms =
    Array.map
      (fun n ->
        let a = Matrix.random_diagdom ~state:st n in
        (* Aᵀ·A + n·I is SPD. *)
        let ata = Matrix.matmul (Matrix.transpose a) a in
        Matrix.add ata (Matrix.scale (float_of_int n) (Matrix.identity n)))
      sizes
  in
  (sizes, Batch.of_matrices ms, Batch.of_matrices ~layout:Batch.Interleaved ms)

let test_cholesky_parity prec () =
  let sizes, bb, bi = spd_workload prec in
  let fb = Batched_cholesky.factor ~prec bb in
  let fi = Batched_cholesky.factor ~prec bi in
  check_batch_bits "factors" fb.Batched_cholesky.factors
    fi.Batched_cholesky.factors;
  check_info "info" fb.Batched_cholesky.info fi.Batched_cholesky.info;
  let rhs = Batch.vec_random ~state:(state 17) sizes in
  let rhsi = Batch.vec_with_layout Batch.Interleaved rhs in
  let sb = Batched_cholesky.solve ~prec ~factors:fb.Batched_cholesky.factors
      rhs in
  let si = Batched_cholesky.solve ~prec ~factors:fi.Batched_cholesky.factors
      rhsi in
  check_vec_bits "solutions" sb.Batched_trsv.solutions
    si.Batched_trsv.solutions;
  check_info "solve info" sb.Batched_trsv.info si.Batched_trsv.info

let test_gh_parity prec () =
  let sizes, bb, bi = workload prec in
  let rb = Batched_gh.factor ~prec bb in
  let ri = Batched_gh.factor ~prec bi in
  check_info "info" rb.Batched_gh.info ri.Batched_gh.info;
  Array.iteri
    (fun i (f : Gauss_huard.factors) ->
      check_bits_arr "gh factors" f.Gauss_huard.gh.Matrix.a
        ri.Batched_gh.factors.(i).Gauss_huard.gh.Matrix.a)
    rb.Batched_gh.factors;
  let rhs = Batch.vec_random ~state:(state 18) sizes in
  let rhsi = Batch.vec_with_layout Batch.Interleaved rhs in
  let sb = Batched_gh.solve ~prec rb rhs in
  let si = Batched_gh.solve ~prec ri rhsi in
  check_vec_bits "solutions" sb.Batched_gh.solutions si.Batched_gh.solutions;
  check_info "solve info" sb.Batched_gh.solve_info si.Batched_gh.solve_info

let test_gje_parity prec () =
  let sizes, bb, bi = workload prec in
  let rb = Batched_gje.invert ~prec bb in
  let ri = Batched_gje.invert ~prec bi in
  check_info "info" rb.Batched_gje.info ri.Batched_gje.info;
  Array.iteri
    (fun i (m : Matrix.t) ->
      check_bits_arr "inverses" m.Matrix.a
        ri.Batched_gje.inverses.(i).Matrix.a)
    rb.Batched_gje.inverses;
  let rhs = Batch.vec_random ~state:(state 19) sizes in
  let rhsi = Batch.vec_with_layout Batch.Interleaved rhs in
  let sb = Batched_gje.apply ~prec rb rhs in
  let si = Batched_gje.apply ~prec ri rhsi in
  check_vec_bits "products" sb.Batched_gje.products si.Batched_gje.products

let test_cublas_parity prec () =
  (* The cuBLAS model only accepts uniform sizes. *)
  let sizes = Batch.uniform_sizes ~count:24 ~size:16 in
  let st = state 21 in
  let bb = Batch.random_general ~state:st sizes in
  let bi = Batch.with_layout Batch.Interleaved bb in
  let rb = Cublas_model.factor ~prec bb in
  let ri = Cublas_model.factor ~prec bi in
  check_batch_bits "factors" rb.Cublas_model.factors ri.Cublas_model.factors;
  check_pivots "pivots" rb.Cublas_model.pivots ri.Cublas_model.pivots;
  check_info "info" rb.Cublas_model.info ri.Cublas_model.info;
  let rhs = Batch.vec_random ~state:(state 22) sizes in
  let rhsi = Batch.vec_with_layout Batch.Interleaved rhs in
  let sb = Cublas_model.solve ~prec rb rhs in
  let si = Cublas_model.solve ~prec ri rhsi in
  check_vec_bits "solutions" sb.Cublas_model.solutions
    si.Cublas_model.solutions;
  check_info "solve info" sb.Cublas_model.solve_info si.Cublas_model.solve_info

(* ------------------------------------------------------------------ *)
(* Coalescing: interleaved must cost strictly fewer transactions        *)

let test_fewer_transactions () =
  (* Variable sizes make blocked bases straddle transaction segments, so
     the cohort-cooperative interleaved layout must win on every strided
     kernel of the LU / TRSV pipeline (the acceptance criterion). *)
  let st = state 30 in
  let sizes = Batch.random_sizes ~state:st ~count:64 ~min_size:5 ~max_size:30
      () in
  let bb = Batch.random_diagdom ~state:st sizes in
  let bi = Batch.with_layout Batch.Interleaved bb in
  let lb = Batched_lu.factor bb and li = Batched_lu.factor bi in
  Alcotest.(check bool)
    (Printf.sprintf "LU: interleaved %.0f < blocked %.0f txns"
       (txns li.Batched_lu.stats) (txns lb.Batched_lu.stats))
    true
    (txns li.Batched_lu.stats < txns lb.Batched_lu.stats);
  let rhs = Batch.vec_random ~state:st sizes in
  let rhsi = Batch.vec_with_layout Batch.Interleaved rhs in
  List.iter
    (fun variant ->
      let tb =
        Batched_trsv.solve ~variant ~factors:lb.Batched_lu.factors
          ~pivots:lb.Batched_lu.pivots rhs
      in
      let ti =
        Batched_trsv.solve ~variant ~factors:li.Batched_lu.factors
          ~pivots:li.Batched_lu.pivots rhsi
      in
      Alcotest.(check bool)
        (Printf.sprintf "TRSV: interleaved %.0f < blocked %.0f txns"
           (txns ti.Batched_trsv.stats) (txns tb.Batched_trsv.stats))
        true
        (txns ti.Batched_trsv.stats < txns tb.Batched_trsv.stats))
    [ Batched_trsv.Eager; Batched_trsv.Lazy ]

let test_cache_layout_salts () =
  (* Regression for the layout/cache collision: a blocked and an
     interleaved launch over the same (kernel, precision, size, config)
     must not share a Launch.Cache entry.  Before the salt ranges were
     made disjoint, whichever layout ran second replayed the counters the
     first had charged — so with the blocked batch run first the
     interleaved one reported blocked transaction counts.  Uniform sizes
     with unaligned blocks make the difference visible. *)
  L.Cache.clear ();
  let sizes = Batch.uniform_sizes ~count:32 ~size:7 in
  let bb = Batch.random_diagdom ~state:(state 31) sizes in
  let bi = Batch.with_layout Batch.Interleaved bb in
  let rb = Batched_lu.factor bb in
  let ri = Batched_lu.factor bi in
  check_batch_bits "values still agree" rb.Batched_lu.factors
    ri.Batched_lu.factors;
  Alcotest.(check bool)
    (Printf.sprintf "distinct counters (interleaved %.0f vs blocked %.0f)"
       (txns ri.Batched_lu.stats) (txns rb.Batched_lu.stats))
    true
    (txns ri.Batched_lu.stats <> txns rb.Batched_lu.stats);
  (* And the same launch replayed is cache-stable. *)
  let ri2 = Batched_lu.factor bi in
  Alcotest.(check bool) "interleaved rerun identical" true
    (Float.equal (txns ri.Batched_lu.stats) (txns ri2.Batched_lu.stats))

let () =
  let q = QCheck_alcotest.to_alcotest in
  let per_prec name f =
    [
      Alcotest.test_case (name ^ " fp64") `Quick (f Precision.Double);
      Alcotest.test_case (name ^ " fp32") `Quick (f Precision.Single);
    ]
  in
  Alcotest.run "layout"
    [
      ( "container",
        [
          Alcotest.test_case "empty sizes" `Quick test_empty_sizes;
          Alcotest.test_case "interleaved geometry" `Quick test_geometry;
          Alcotest.test_case "salt classes" `Quick test_salt_classes;
          q qcheck_roundtrip;
          Alcotest.test_case "builders by layout" `Quick
            test_interleaved_builders;
        ] );
      ( "kernel parity",
        per_prec "lu" test_lu_parity
        @ per_prec "trsv" test_trsv_parity
        @ per_prec "trsm" test_trsm_parity
        @ per_prec "gemm" test_gemm_parity
        @ per_prec "cholesky" test_cholesky_parity
        @ per_prec "gauss-huard" test_gh_parity
        @ per_prec "gauss-jordan" test_gje_parity
        @ per_prec "cublas model" test_cublas_parity );
      ( "coalescing",
        [
          Alcotest.test_case "interleaved fewer transactions" `Quick
            test_fewer_transactions;
          Alcotest.test_case "cache layout salts" `Quick
            test_cache_layout_salts;
        ] );
    ]
