(* Unit and property tests for the sparse substrate. *)

open Vblu_smallblas
open Vblu_sparse

let check_float = Alcotest.(check (float 1e-12))

let small_csr () =
  (* [[4 -1 0]; [-1 4 -1]; [0 -1 4]] *)
  Csr.create ~n_rows:3 ~n_cols:3
    ~row_ptr:[| 0; 2; 5; 7 |]
    ~col_idx:[| 0; 1; 0; 1; 2; 1; 2 |]
    ~values:[| 4.0; -1.0; -1.0; 4.0; -1.0; -1.0; 4.0 |]

let random_dense seed m n =
  let st = Random.State.make [| 0x517; seed |] in
  Matrix.init m n (fun _ _ ->
      if Random.State.float st 1.0 < 0.3 then -1.0 +. Random.State.float st 2.0
      else 0.0)

(* ------------------------------------------------------------------ *)

let test_create_validation () =
  let raises msg f = Alcotest.check_raises "invalid" (Invalid_argument msg) f in
  raises "Csr.create: row_ptr length must be n_rows + 1" (fun () ->
      ignore (Csr.create ~n_rows:2 ~n_cols:2 ~row_ptr:[| 0; 1 |] ~col_idx:[| 0 |]
                ~values:[| 1.0 |]));
  raises "Csr.create: columns not strictly increasing within a row" (fun () ->
      ignore
        (Csr.create ~n_rows:1 ~n_cols:3 ~row_ptr:[| 0; 2 |] ~col_idx:[| 1; 1 |]
           ~values:[| 1.0; 2.0 |]));
  raises "Csr.create: column out of range" (fun () ->
      ignore
        (Csr.create ~n_rows:1 ~n_cols:2 ~row_ptr:[| 0; 1 |] ~col_idx:[| 5 |]
           ~values:[| 1.0 |]))

let test_get () =
  let a = small_csr () in
  check_float "diag" 4.0 (Csr.get a 1 1);
  check_float "off" (-1.0) (Csr.get a 0 1);
  check_float "zero" 0.0 (Csr.get a 0 2);
  Alcotest.(check int) "nnz" 7 (Csr.nnz a)

let test_dense_roundtrip () =
  for seed = 0 to 9 do
    let m = random_dense seed 7 5 in
    let a = Csr.of_dense m in
    check_float "roundtrip" 0.0 (Matrix.max_abs_diff m (Csr.to_dense a))
  done

let test_spmv () =
  let a = small_csr () in
  let y = Csr.spmv a [| 1.0; 1.0; 1.0 |] in
  check_float "row 0" 3.0 y.(0);
  check_float "row 1" 2.0 y.(1);
  (* Against the dense gemv on random matrices. *)
  for seed = 0 to 9 do
    let m = random_dense seed 8 8 in
    let a = Csr.of_dense m in
    let x = Vector.random ~state:(Random.State.make [| seed |]) 8 in
    check_float "spmv = gemv" 0.0
      (Vector.max_abs_diff (Csr.spmv a x) (Matrix.gemv m x))
  done

let test_transpose () =
  for seed = 0 to 9 do
    let m = random_dense seed 6 9 in
    let a = Csr.of_dense m in
    let t = Csr.transpose a in
    check_float "transpose" 0.0
      (Matrix.max_abs_diff (Csr.to_dense t) (Matrix.transpose m));
    Alcotest.(check bool) "double transpose" true
      (Csr.equal a (Csr.transpose t))
  done

let test_diagonal () =
  let a = small_csr () in
  check_float "diag extract" 0.0
    (Vector.max_abs_diff (Csr.diagonal a) [| 4.0; 4.0; 4.0 |])

let test_permute_symmetric () =
  let m = random_dense 5 6 6 in
  let a = Csr.of_dense m in
  let p = [| 3; 1; 5; 0; 2; 4 |] in
  let b = Csr.permute_symmetric a p in
  let expect = Matrix.init 6 6 (fun i j -> Matrix.get m p.(i) p.(j)) in
  check_float "PAP^T" 0.0 (Matrix.max_abs_diff (Csr.to_dense b) expect)

let test_extract_block () =
  let m = random_dense 2 10 10 in
  let a = Csr.of_dense m in
  let blk = Csr.extract_block a ~row_start:3 ~size:4 in
  let expect = Matrix.init 4 4 (fun i j -> Matrix.get m (3 + i) (3 + j)) in
  check_float "block" 0.0 (Matrix.max_abs_diff blk expect);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Csr.extract_block: block out of range") (fun () ->
      ignore (Csr.extract_block a ~row_start:8 ~size:4))

let test_stats () =
  let a = small_csr () in
  Alcotest.(check int) "bandwidth" 1 (Csr.bandwidth a);
  Alcotest.(check bool) "symmetric pattern" true (Csr.is_symmetric_pattern a);
  Alcotest.(check bool) "imbalance mild" true (Csr.row_imbalance a < 1.5)

(* ------------------------------------------------------------------ *)
(* COO                                                                 *)

let test_coo_accumulates () =
  let c = Coo.create ~n_rows:2 ~n_cols:2 in
  Coo.add c 0 0 1.0;
  Coo.add c 0 0 2.0;
  Coo.add c 1 0 5.0;
  Alcotest.(check int) "entries" 3 (Coo.entry_count c);
  let a = Coo.to_csr c in
  check_float "summed" 3.0 (Csr.get a 0 0);
  check_float "kept" 5.0 (Csr.get a 1 0);
  Alcotest.(check int) "nnz merged" 2 (Csr.nnz a)

let test_coo_drop_zeros () =
  let c = Coo.create ~n_rows:1 ~n_cols:2 in
  Coo.add c 0 0 1.0;
  Coo.add c 0 0 (-1.0);
  Coo.add c 0 1 2.0;
  Alcotest.(check int) "kept explicit zero" 2 (Csr.nnz (Coo.to_csr c));
  Alcotest.(check int) "dropped" 1 (Csr.nnz (Coo.to_csr ~drop_zeros:true c))

let test_coo_sym () =
  let c = Coo.create ~n_rows:3 ~n_cols:3 in
  Coo.add_sym c 0 1 2.0;
  Coo.add_sym c 2 2 7.0;
  let a = Coo.to_csr c in
  check_float "mirrored" 2.0 (Csr.get a 1 0);
  check_float "diag once" 7.0 (Csr.get a 2 2)

let test_coo_growth () =
  let c = Coo.create ~n_rows:1 ~n_cols:1000 in
  for j = 0 to 999 do
    Coo.add c 0 j (float_of_int j)
  done;
  let a = Coo.to_csr c in
  Alcotest.(check int) "all entries" 1000 (Csr.nnz a);
  check_float "last" 999.0 (Csr.get a 0 999)

(* ------------------------------------------------------------------ *)
(* Matrix Market                                                       *)

let test_mm_roundtrip () =
  let m = random_dense 9 12 7 in
  let a = Csr.of_dense m in
  let s = Mm_io.write_string a in
  let b = Mm_io.read_string s in
  Alcotest.(check bool) "roundtrip" true (Csr.equal ~tol:1e-15 a b)

let test_mm_symmetric () =
  let s =
    "%%MatrixMarket matrix coordinate real symmetric\n\
     3 3 4\n\
     1 1 2.0\n\
     2 1 -1.0\n\
     3 2 -1.0\n\
     3 3 2.0\n"
  in
  let a = Mm_io.read_string s in
  check_float "mirrored" (-1.0) (Csr.get a 0 1);
  check_float "diag once" 2.0 (Csr.get a 0 0);
  Alcotest.(check int) "expanded nnz" 6 (Csr.nnz a)

let test_mm_pattern () =
  let s = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n" in
  let a = Mm_io.read_string s in
  check_float "pattern value" 1.0 (Csr.get a 1 1)

let test_mm_errors () =
  let rejected_at expect_line s =
    match Mm_io.read_string s with
    | exception Mm_io.Parse_error { line; _ } -> line = expect_line
    | _ -> false
  in
  Alcotest.(check bool) "bad header rejected" true
    (rejected_at 1 "nonsense\n1 1 0\n");
  Alcotest.(check bool) "truncated rejected" true
    (* the missing-entries error is only detectable at end of input, so it
       reports the EOF line (after the trailing newline). *)
    (rejected_at 4
       "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n");
  let hdr = "%%MatrixMarket matrix coordinate real general\n" in
  Alcotest.(check bool) "unsupported format rejected" true
    (rejected_at 1 "%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  Alcotest.(check bool) "non-numeric size rejected" true
    (rejected_at 2 (hdr ^ "two 2 1\n1 1 5.0\n"));
  Alcotest.(check bool) "short size line rejected" true
    (rejected_at 2 (hdr ^ "2 2\n"));
  Alcotest.(check bool) "non-numeric value rejected" true
    (rejected_at 3 (hdr ^ "2 2 1\n1 1 abc\n"));
  Alcotest.(check bool) "row index out of range rejected" true
    (rejected_at 3 (hdr ^ "2 2 1\n3 1 5.0\n"));
  Alcotest.(check bool) "column index 0 rejected" true
    (rejected_at 3 (hdr ^ "2 2 1\n1 0 5.0\n"));
  Alcotest.(check bool) "excess entries rejected" true
    (rejected_at 4 (hdr ^ "2 2 1\n1 1 5.0\n2 2 6.0\n"));
  (match Mm_io.read_string_opt (hdr ^ "2 2 1\n1 1 abc\n") with
  | Error (3, _) -> ()
  | Error (l, m) ->
    Alcotest.failf "read_string_opt: wrong line %d (%s)" l m
  | Ok _ -> Alcotest.fail "read_string_opt accepted a malformed value");
  match Mm_io.read_string_opt (hdr ^ "1 1 1\n1 1 5.0\n") with
  | Ok a -> check_float "read_string_opt ok" 5.0 (Csr.get a 0 0)
  | Error (l, m) -> Alcotest.failf "read_string_opt rejected (line %d: %s)" l m

let test_mm_file_roundtrip () =
  let m = random_dense 4 9 9 in
  let a = Csr.of_dense m in
  let path = Filename.temp_file "vblu" ".mtx" in
  Mm_io.write path a;
  let b = Mm_io.read path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Csr.equal ~tol:1e-15 a b)

(* ------------------------------------------------------------------ *)
(* Reordering                                                          *)

let test_rcm_is_permutation () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:8 ~ny:8 () in
  let p = Reorder.reverse_cuthill_mckee a in
  Alcotest.(check (list int)) "permutation" (List.init 64 (fun i -> i))
    (List.sort compare (Array.to_list p))

let test_rcm_reduces_bandwidth () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:10 ~ny:10 () in
  (* Scramble, then ask RCM to recover locality. *)
  let scramble = Reorder.random ~state:(Random.State.make [| 4 |]) 100 in
  let scrambled = Csr.permute_symmetric a scramble in
  let p = Reorder.reverse_cuthill_mckee scrambled in
  let restored = Csr.permute_symmetric scrambled p in
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth %d -> %d" (Csr.bandwidth scrambled)
       (Csr.bandwidth restored))
    true
    (Csr.bandwidth restored < Csr.bandwidth scrambled)

let test_rcm_disconnected () =
  (* Two disconnected 2x2 blocks. *)
  let m =
    Matrix.of_rows
      [|
        [| 2.0; 1.0; 0.0; 0.0 |];
        [| 1.0; 2.0; 0.0; 0.0 |];
        [| 0.0; 0.0; 2.0; 1.0 |];
        [| 0.0; 0.0; 1.0; 2.0 |];
      |]
  in
  let p = Reorder.reverse_cuthill_mckee (Csr.of_dense m) in
  Alcotest.(check (list int)) "covers all vertices" [ 0; 1; 2; 3 ]
    (List.sort compare (Array.to_list p))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  let gen = QCheck.(pair (int_bound 10_000) (int_range 2 20)) in
  [
    QCheck.Test.make ~count:50 ~name:"spmv matches dense gemv" gen
      (fun (seed, n) ->
        let m = random_dense seed n n in
        let a = Csr.of_dense m in
        let x = Vector.random ~state:(Random.State.make [| seed |]) n in
        Vector.max_abs_diff (Csr.spmv a x) (Matrix.gemv m x) < 1e-12);
    QCheck.Test.make ~count:50 ~name:"transpose involution" gen (fun (seed, n) ->
        let a = Csr.of_dense (random_dense seed n (n + 3)) in
        Csr.equal a (Csr.transpose (Csr.transpose a)));
    QCheck.Test.make ~count:50 ~name:"mm roundtrip" gen (fun (seed, n) ->
        let a = Csr.of_dense (random_dense seed n n) in
        Csr.equal ~tol:1e-14 a (Mm_io.read_string (Mm_io.write_string a)));
    QCheck.Test.make ~count:50 ~name:"symmetric permutation preserves spmv" gen
      (fun (seed, n) ->
        let a = Csr.of_dense (random_dense seed n n) in
        let p = Reorder.random ~state:(Random.State.make [| seed |]) n in
        let b = Csr.permute_symmetric a p in
        let x = Vector.random ~state:(Random.State.make [| seed + 1 |]) n in
        let px = Array.map (fun i -> x.(i)) p in
        let y = Csr.spmv a x in
        let py = Array.map (fun i -> y.(i)) p in
        Vector.max_abs_diff (Csr.spmv b px) py < 1e-12);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sparse"
    [
      ( "csr",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "get" `Quick test_get;
          Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
          Alcotest.test_case "spmv" `Quick test_spmv;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "diagonal" `Quick test_diagonal;
          Alcotest.test_case "permute symmetric" `Quick test_permute_symmetric;
          Alcotest.test_case "extract block" `Quick test_extract_block;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "coo",
        [
          Alcotest.test_case "accumulates" `Quick test_coo_accumulates;
          Alcotest.test_case "drop zeros" `Quick test_coo_drop_zeros;
          Alcotest.test_case "symmetric add" `Quick test_coo_sym;
          Alcotest.test_case "growth" `Quick test_coo_growth;
        ] );
      ( "matrix-market",
        [
          Alcotest.test_case "roundtrip" `Quick test_mm_roundtrip;
          Alcotest.test_case "symmetric" `Quick test_mm_symmetric;
          Alcotest.test_case "pattern" `Quick test_mm_pattern;
          Alcotest.test_case "errors" `Quick test_mm_errors;
          Alcotest.test_case "file roundtrip" `Quick test_mm_file_roundtrip;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "rcm permutation" `Quick test_rcm_is_permutation;
          Alcotest.test_case "rcm bandwidth" `Quick test_rcm_reduces_bandwidth;
          Alcotest.test_case "rcm disconnected" `Quick test_rcm_disconnected;
        ] );
      ("properties", qcheck_tests);
    ]
